package btrblocks

import (
	"bytes"
	"strings"
	"testing"
)

// checkAccounting inspects data and asserts the layout accounts for every
// byte of the file.
func checkAccounting(t *testing.T, data []byte) *FileInfo {
	t.Helper()
	info, err := Inspect(data)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.Size != len(data) {
		t.Fatalf("Size = %d, file is %d bytes", info.Size, len(data))
	}
	if got := info.AccountedBytes(); got != len(data) {
		t.Fatalf("AccountedBytes = %d, file is %d bytes", got, len(data))
	}
	// Every scheme node must satisfy the tree invariant too.
	info.eachColumn(func(c *ColumnInfo) {
		colTotal := c.HeaderBytes + c.ChecksumBytes
		for _, b := range c.Blocks {
			if b.Data.Bytes != b.DataBytes {
				t.Fatalf("block %d of %q: root node %d bytes, data stream %d",
					b.Offset, c.Name, b.Data.Bytes, b.DataBytes)
			}
			b.Data.Walk(func(n *SchemeNode, _ int) {
				sum := n.HeaderBytes + n.PayloadBytes
				for _, ch := range n.Children {
					sum += ch.Bytes
				}
				if sum != n.Bytes {
					t.Fatalf("node %s in %q: Bytes %d != header %d + payload %d + children",
						n.Code, c.Name, n.Bytes, n.HeaderBytes, n.PayloadBytes)
				}
			})
			colTotal += b.Size
		}
		if colTotal != c.Size {
			t.Fatalf("column %q: blocks+header sum %d, Size %d", c.Name, colTotal, c.Size)
		}
	})
	return info
}

func TestInspectColumnFile(t *testing.T) {
	opt := DefaultOptions()
	chunk := makeTestChunk(150000, 7)
	for _, col := range chunk.Columns {
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatal(err)
		}
		info := checkAccounting(t, data)
		if info.Kind != FileKindColumn || len(info.Columns) != 1 {
			t.Fatalf("kind %v, %d columns", info.Kind, len(info.Columns))
		}
		ci := info.Columns[0]
		if ci.Name != col.Name || ci.Type != col.Type || ci.Rows != col.Len() {
			t.Fatalf("column header mismatch: %+v", ci)
		}
		if len(ci.Blocks) != 3 { // 150k rows / 64k block size
			t.Fatalf("%d blocks", len(ci.Blocks))
		}
		// Root schemes must agree with the compressor's own stats.
		for i, b := range ci.Blocks {
			if got := blockRootScheme(data[b.Offset : b.Offset+b.Size]); b.Data.Code != got {
				t.Fatalf("block %d root scheme %v, header says %v", i, b.Data.Code, got)
			}
		}
	}
}

func TestInspectChunkAndStreamFiles(t *testing.T) {
	opt := DefaultOptions()
	chunk := makeTestChunk(100000, 8)
	cc, err := CompressChunk(chunk, opt)
	if err != nil {
		t.Fatal(err)
	}
	file := cc.EncodeFile()
	info := checkAccounting(t, file)
	if info.Kind != FileKindChunk || len(info.Columns) != 3 {
		t.Fatalf("kind %v, %d columns", info.Kind, len(info.Columns))
	}
	for i, ci := range info.Columns {
		if ci.Name != chunk.Columns[i].Name || ci.Rows != 100000 {
			t.Fatalf("column %d: %+v", i, ci)
		}
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf, chunk.Columns, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.WriteChunk(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sinfo := checkAccounting(t, buf.Bytes())
	if sinfo.Kind != FileKindStream || len(sinfo.Chunks) != 2 || len(sinfo.Schema) != 3 {
		t.Fatalf("kind %v, %d chunks, schema %v", sinfo.Kind, len(sinfo.Chunks), sinfo.Schema)
	}
	if sinfo.Rows() != 200000 {
		t.Fatalf("stream rows %d", sinfo.Rows())
	}
	if sinfo.FooterBytes != 13 {
		t.Fatalf("footer %d bytes", sinfo.FooterBytes)
	}
}

func TestInspectEmptyColumn(t *testing.T) {
	data, err := CompressColumn(IntColumn("empty", nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	info := checkAccounting(t, data)
	ci := info.Columns[0]
	if len(ci.Blocks) != 0 || ci.Rows != 0 {
		t.Fatalf("%d blocks, %d rows", len(ci.Blocks), ci.Rows)
	}
	if ci.HeaderBytes+ci.ChecksumBytes != len(data) {
		t.Fatalf("header %d + checksum %d bytes, file %d", ci.HeaderBytes, ci.ChecksumBytes, len(data))
	}
}

func TestInspectSingleBlockColumn(t *testing.T) {
	vals := make([]int32, 1000)
	for i := range vals {
		vals[i] = int32(i % 10)
	}
	data, err := CompressColumn(IntColumn("single", vals), nil)
	if err != nil {
		t.Fatal(err)
	}
	info := checkAccounting(t, data)
	ci := info.Columns[0]
	if len(ci.Blocks) != 1 || ci.Blocks[0].Rows != 1000 {
		t.Fatalf("%d blocks, rows %v", len(ci.Blocks), ci.Blocks)
	}
	if ci.Blocks[0].Data.Values != 1000 {
		t.Fatalf("root node values %d", ci.Blocks[0].Data.Values)
	}
}

func TestInspectAllNullBlock(t *testing.T) {
	vals := make([]float64, 5000)
	col := DoubleColumn("nulls", vals)
	col.Nulls = NewNullMask()
	for i := range vals {
		col.Nulls.SetNull(i)
	}
	data, err := CompressColumn(col, nil)
	if err != nil {
		t.Fatal(err)
	}
	info := checkAccounting(t, data)
	b := info.Columns[0].Blocks[0]
	if b.NullCount != 5000 {
		t.Fatalf("null count %d", b.NullCount)
	}
	if b.NullBytes == 0 {
		t.Fatal("no null bitmap recorded")
	}
	if info.Columns[0].NullCount != 5000 {
		t.Fatalf("column null count %d", info.Columns[0].NullCount)
	}
	// All values were densified to one run: the data stream should be a
	// OneValue leaf.
	if b.Data.Code != SchemeOneValue {
		t.Fatalf("all-null block compressed as %v", b.Data.Code)
	}
}

func TestInspectMaxDepthCascade(t *testing.T) {
	// Long runs over a mid-size distinct set: Dict at the root, RLE on the
	// dictionary codes, bit-packing on the run values/lengths — a cascade
	// that uses all three levels.
	vals := make([]int32, 64000)
	for i := range vals {
		vals[i] = int32((i / 400) * 1000)
	}
	data, err := CompressColumn(IntColumn("deep", vals), nil)
	if err != nil {
		t.Fatal(err)
	}
	info := checkAccounting(t, data)
	root := info.Columns[0].Blocks[0].Data
	if got := root.MaxDepth(); got < 2 {
		tree := &strings.Builder{}
		info.RenderTree(tree)
		t.Fatalf("cascade depth %d < 2:\n%s", got+1, tree)
	}
}

func TestInspectRejectsCorruptInput(t *testing.T) {
	if _, err := Inspect(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := Inspect([]byte("XXXX garbage")); err == nil {
		t.Fatal("bad magic accepted")
	}
	data, err := CompressColumn(IntColumn("x", []int32{1, 2, 3}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Inspect(data[:len(data)-1]); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestInspectRenderAndStats(t *testing.T) {
	chunk := makeTestChunk(70000, 9)
	cc, err := CompressChunk(chunk, nil)
	if err != nil {
		t.Fatal(err)
	}
	info := checkAccounting(t, cc.EncodeFile())
	var tree strings.Builder
	info.RenderTree(&tree)
	for _, want := range []string{"chunk file:", `column "id"`, "block 0:", "n=64000"} {
		if !strings.Contains(tree.String(), want) {
			t.Fatalf("tree output missing %q:\n%s", want, tree.String())
		}
	}
	st := info.Stats()
	if st.Blocks != 6 || st.Columns != 3 || st.Rows != 70000 {
		t.Fatalf("stats: %+v", st)
	}
	total := st.FramingBytes + st.NullBytes + st.ChecksumBytes + st.SchemeHeaderBytes + st.SchemePayloadBytes
	if total != st.Size {
		t.Fatalf("stats byte breakdown sums to %d, file is %d", total, st.Size)
	}
	var rep strings.Builder
	st.Render(&rep)
	if !strings.Contains(rep.String(), "root schemes") {
		t.Fatalf("stats report missing scheme table:\n%s", rep.String())
	}
}
