package btrblocks

// Property harness for the parallel decode engine's hard invariant:
// every parallel path is bit-for-bit equivalent to the serial walk at
// any worker count. Seeded generators sweep column shapes (type, NULL
// density, run length, cardinality, sizes straddling block boundaries)
// and every case asserts three properties:
//
//  1. compress→decompress identity (non-NULL slots; NULL slot content
//     is unspecified by contract),
//  2. compressed bytes identical across Parallelism ∈ {1, 2, 7, NumCPU},
//  3. decompressed vectors — including rewritten NULL slots — identical
//     across the same worker counts.
//
// A companion determinism test pins the engine's min-index error
// contract: with corrupted blocks, the error surfaced at any worker
// count is the one the serial walk hits first.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"btrblocks/internal/testgen"
)

// The seeded shape generators live in internal/testgen so the query
// engine's differential oracle shares the exact same sweep; these
// adapters wrap the generated value/NULL-position pairs into Columns.

// equivWorkerCounts are the Parallelism values every property is checked
// under (see testgen.WorkerCounts).
func equivWorkerCounts() []int { return testgen.WorkerCounts() }

// genSpec aliases testgen.Spec; equivSpecs sweeps the standard
// block-boundary-straddling corners.
type genSpec = testgen.Spec

func equivSpecs() []genSpec { return testgen.Specs() }

// withNulls marks the generated NULL positions on a column.
func withNulls(col Column, nulls []int) Column {
	for _, i := range nulls {
		if col.Nulls == nil {
			col.Nulls = NewNullMask()
		}
		col.Nulls.SetNull(i)
	}
	return col
}

func genIntColumnEquiv(rng *rand.Rand, s genSpec) Column {
	values, nulls := testgen.IntValues(rng, s)
	return withNulls(IntColumn("i", values), nulls)
}

func genInt64ColumnEquiv(rng *rand.Rand, s genSpec) Column {
	values, nulls := testgen.Int64Values(rng, s)
	return withNulls(Int64Column("l", values), nulls)
}

func genDoubleColumnEquiv(rng *rand.Rand, s genSpec) Column {
	values, nulls := testgen.DoubleValues(rng, s)
	return withNulls(DoubleColumn("d", values), nulls)
}

func genStringColumnEquiv(rng *rand.Rand, s genSpec) Column {
	values, nulls := testgen.StringValues(rng, s)
	return withNulls(StringColumn("s", values), nulls)
}

func genColumnEquiv(rng *rand.Rand, typ Type, s genSpec) Column {
	switch typ {
	case TypeInt:
		return genIntColumnEquiv(rng, s)
	case TypeInt64:
		return genInt64ColumnEquiv(rng, s)
	case TypeDouble:
		return genDoubleColumnEquiv(rng, s)
	default:
		return genStringColumnEquiv(rng, s)
	}
}

func nullPositions(m *NullMask) []int {
	var out []int
	m.ForEachNull(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// valueAt renders row i for diagnostics and comparison; doubles compare
// by bit pattern so -0.0 and NaN payloads count.
func valueAt(c *Column, i int) string {
	switch c.Type {
	case TypeInt:
		return fmt.Sprint(c.Ints[i])
	case TypeInt64:
		return fmt.Sprint(c.Ints64[i])
	case TypeDouble:
		return fmt.Sprintf("%016x", math.Float64bits(c.Doubles[i]))
	default:
		return c.Strings.At(i)
	}
}

// requireIdentical asserts a and b are bit-for-bit the same column,
// NULL-slot contents included. This is the serial≡parallel check: both
// decode paths run the same per-block code, so even unspecified slots
// must agree.
func requireIdentical(t *testing.T, label string, a, b Column) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: len %d != %d", label, a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if valueAt(&a, i) != valueAt(&b, i) {
			t.Fatalf("%s: row %d: %q != %q", label, i, valueAt(&a, i), valueAt(&b, i))
		}
	}
	an, bn := nullPositions(a.Nulls), nullPositions(b.Nulls)
	if len(an) != len(bn) {
		t.Fatalf("%s: null count %d != %d", label, len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("%s: null position %d != %d", label, an[i], bn[i])
		}
	}
}

// requireRoundTrip asserts got reproduces orig at every non-NULL row and
// preserves the NULL set exactly.
func requireRoundTrip(t *testing.T, label string, orig, got Column) {
	t.Helper()
	if orig.Len() != got.Len() {
		t.Fatalf("%s: len %d != %d", label, orig.Len(), got.Len())
	}
	for i := 0; i < orig.Len(); i++ {
		if orig.Nulls.IsNull(i) {
			if !got.Nulls.IsNull(i) {
				t.Fatalf("%s: row %d lost its NULL", label, i)
			}
			continue
		}
		if got.Nulls.IsNull(i) {
			t.Fatalf("%s: row %d gained a NULL", label, i)
		}
		if valueAt(&orig, i) != valueAt(&got, i) {
			t.Fatalf("%s: row %d: %q != %q", label, i, valueAt(&orig, i), valueAt(&got, i))
		}
	}
	if orig.Nulls.NullCount() != got.Nulls.NullCount() {
		t.Fatalf("%s: null count %d != %d", label, orig.Nulls.NullCount(), got.Nulls.NullCount())
	}
}

// TestParallelColumnEquivalenceProperty is the core property sweep:
// seeded random columns of every type and shape, compressed and
// decompressed at every worker count.
func TestParallelColumnEquivalenceProperty(t *testing.T) {
	for _, typ := range []Type{TypeInt, TypeInt64, TypeDouble, TypeString} {
		typ := typ
		t.Run(typ.String(), func(t *testing.T) {
			t.Parallel()
			for si, s := range equivSpecs() {
				rng := rand.New(rand.NewSource(int64(1000*int(typ) + si)))
				col := genColumnEquiv(rng, typ, s)

				var baseline []byte
				for _, workers := range equivWorkerCounts() {
					opt := &Options{BlockSize: 1000, Parallelism: workers}
					data, err := CompressColumn(col, opt)
					if err != nil {
						t.Fatalf("%s: compress P=%d: %v", s.Label(), workers, err)
					}
					if baseline == nil {
						baseline = data
					} else if !bytes.Equal(baseline, data) {
						t.Fatalf("%s: compressed bytes differ at P=%d", s.Label(), workers)
					}
				}

				var serial Column
				for _, workers := range equivWorkerCounts() {
					opt := &Options{BlockSize: 1000, Parallelism: workers}
					got, err := DecompressColumn(baseline, opt)
					if err != nil {
						t.Fatalf("%s: decompress P=%d: %v", s.Label(), workers, err)
					}
					if workers == 1 {
						serial = got
						requireRoundTrip(t, s.Label()+"/roundtrip", col, got)
					} else {
						requireIdentical(t, fmt.Sprintf("%s/P=%d", s.Label(), workers), serial, got)
					}
				}
			}
		})
	}
}

// TestParallelEquivalenceRestrictedSchemes re-runs the byte-identity
// property under restricted scheme pools — option variants must not
// reintroduce worker-count dependence.
func TestParallelEquivalenceRestrictedSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	col := genIntColumnEquiv(rng, genSpec{Rows: 2500, NullDensity: 0.1, RunLen: 16, Cardinality: 40})
	pools := [][]Scheme{
		{SchemeUncompressed},
		{SchemeUncompressed, SchemeRLE},
		{SchemeUncompressed, SchemeDict, SchemeFastBP},
	}
	for pi, pool := range pools {
		var baseline []byte
		for _, workers := range equivWorkerCounts() {
			opt := &Options{BlockSize: 1000, Parallelism: workers, IntSchemes: pool}
			data, err := CompressColumn(col, opt)
			if err != nil {
				t.Fatalf("pool %d P=%d: %v", pi, workers, err)
			}
			if baseline == nil {
				baseline = data
			} else if !bytes.Equal(baseline, data) {
				t.Fatalf("pool %d: compressed bytes differ at P=%d", pi, workers)
			}
			if _, err := DecompressColumn(data, opt); err != nil {
				t.Fatalf("pool %d P=%d decompress: %v", pi, workers, err)
			}
		}
	}
}

// equivChunk builds a four-type chunk sized to straddle block
// boundaries at BlockSize 1000.
func equivChunk(seed int64, rows int) *Chunk {
	rng := rand.New(rand.NewSource(seed))
	s := genSpec{Rows: rows, NullDensity: 0.2, RunLen: 8, Cardinality: 64}
	return &Chunk{Columns: []Column{
		genIntColumnEquiv(rng, s),
		genInt64ColumnEquiv(rng, s),
		genDoubleColumnEquiv(rng, s),
		genStringColumnEquiv(rng, s),
	}}
}

// TestParallelChunkEquivalence checks the whole-chunk paths: compressed
// container bytes identical across worker counts, decompressed chunks
// identical to the serial decode.
func TestParallelChunkEquivalence(t *testing.T) {
	chunk := equivChunk(11, 2501)
	var baseline []byte
	var cc *CompressedChunk
	for _, workers := range equivWorkerCounts() {
		opt := &Options{BlockSize: 1000, Parallelism: workers}
		c, err := CompressChunk(chunk, opt)
		if err != nil {
			t.Fatalf("compress P=%d: %v", workers, err)
		}
		file := c.EncodeFile()
		if baseline == nil {
			baseline, cc = file, c
		} else if !bytes.Equal(baseline, file) {
			t.Fatalf("chunk file bytes differ at P=%d", workers)
		}
	}

	var serial *Chunk
	for _, workers := range equivWorkerCounts() {
		opt := &Options{BlockSize: 1000, Parallelism: workers}
		got, err := DecompressChunk(cc, opt)
		if err != nil {
			t.Fatalf("decompress P=%d: %v", workers, err)
		}
		if serial == nil {
			serial = got
			for i := range chunk.Columns {
				requireRoundTrip(t, chunk.Columns[i].Name, chunk.Columns[i], got.Columns[i])
			}
			continue
		}
		if len(got.Columns) != len(serial.Columns) {
			t.Fatalf("P=%d: column count %d != %d", workers, len(got.Columns), len(serial.Columns))
		}
		for i := range serial.Columns {
			requireIdentical(t, fmt.Sprintf("P=%d/%s", workers, serial.Columns[i].Name),
				serial.Columns[i], got.Columns[i])
		}
	}
}

// TestParallelScanEquivalence checks per-block predicate evaluation:
// counts match a ground truth computed from the original vectors
// (non-NULL rows only) at every worker count.
func TestParallelScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := genSpec{Rows: 3503, NullDensity: 0.25, RunLen: 12, Cardinality: 20}

	intCol := genIntColumnEquiv(rng, s)
	int64Col := genInt64ColumnEquiv(rng, s)
	dblCol := genDoubleColumnEquiv(rng, s)
	strCol := genStringColumnEquiv(rng, s)

	// Target each column's row 100 so the predicate always has matches.
	wantInt := intCol.Ints[100]
	wantInt64 := int64Col.Ints64[100]
	wantDbl := dblCol.Doubles[100]
	wantStr := strCol.Strings.At(100)

	truth := func(col *Column, match func(i int) bool) int {
		n := 0
		for i := 0; i < col.Len(); i++ {
			if !col.Nulls.IsNull(i) && match(i) {
				n++
			}
		}
		return n
	}
	truthInt := truth(&intCol, func(i int) bool { return intCol.Ints[i] == wantInt })
	truthInt64 := truth(&int64Col, func(i int) bool { return int64Col.Ints64[i] == wantInt64 })
	truthDbl := truth(&dblCol, func(i int) bool {
		return math.Float64bits(dblCol.Doubles[i]) == math.Float64bits(wantDbl)
	})
	truthStr := truth(&strCol, func(i int) bool { return strCol.Strings.At(i) == wantStr })

	copt := &Options{BlockSize: 1000}
	intData, err := CompressColumn(intCol, copt)
	if err != nil {
		t.Fatal(err)
	}
	int64Data, err := CompressColumn(int64Col, copt)
	if err != nil {
		t.Fatal(err)
	}
	dblData, err := CompressColumn(dblCol, copt)
	if err != nil {
		t.Fatal(err)
	}
	strData, err := CompressColumn(strCol, copt)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range equivWorkerCounts() {
		opt := &Options{BlockSize: 1000, Parallelism: workers}
		if got, err := CountEqualInt32(intData, wantInt, opt); err != nil || got != truthInt {
			t.Fatalf("P=%d int: got %d/%v, want %d", workers, got, err, truthInt)
		}
		if got, err := CountEqualInt64(int64Data, wantInt64, opt); err != nil || got != truthInt64 {
			t.Fatalf("P=%d int64: got %d/%v, want %d", workers, got, err, truthInt64)
		}
		if got, err := CountEqualDouble(dblData, wantDbl, opt); err != nil || got != truthDbl {
			t.Fatalf("P=%d double: got %d/%v, want %d", workers, got, err, truthDbl)
		}
		if got, err := CountEqualString(strData, wantStr, opt); err != nil || got != truthStr {
			t.Fatalf("P=%d string: got %d/%v, want %d", workers, got, err, truthStr)
		}
	}
}

// TestParallelVerifyReportEquality pins Verify's ordered-slot design:
// the deep-walk JSON report is byte-identical at every worker count,
// for clean and corrupted files alike.
func TestParallelVerifyReportEquality(t *testing.T) {
	chunk := equivChunk(31, 2501)
	cc, err := CompressChunk(chunk, &Options{BlockSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	clean := cc.EncodeFile()

	// A corrupted variant: flip one payload byte inside the file body so
	// block verdicts (not just the trailing CRC) diverge.
	corrupt := append([]byte(nil), clean...)
	corrupt[len(corrupt)/2] ^= 0x40

	colData, err := CompressColumn(chunk.Columns[0], &Options{BlockSize: 1000})
	if err != nil {
		t.Fatal(err)
	}

	for name, data := range map[string][]byte{"chunk": clean, "chunk-corrupt": corrupt, "column": colData} {
		var baseline []byte
		for _, workers := range []int{1, 2, 8} {
			rep := Verify(data, &VerifyOptions{Deep: true, Parallelism: workers})
			js, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			if baseline == nil {
				baseline = js
			} else if !bytes.Equal(baseline, js) {
				t.Fatalf("%s: verify report differs at P=%d:\n%s\nvs\n%s", name, workers, baseline, js)
			}
		}
	}
}

// TestParallelFirstErrorDeterminism pins the engine's min-index error
// contract end to end: with multiple corrupted blocks, decompression and
// scans surface the error the serial walk hits first — the lowest block
// index — at every worker count, every time.
func TestParallelFirstErrorDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	col := genIntColumnEquiv(rng, genSpec{Rows: 5000, NullDensity: 0, RunLen: 1, Cardinality: 100000})
	data, err := CompressColumn(col, &Options{BlockSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ParseColumnIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Blocks) != 10 {
		t.Fatalf("want 10 blocks, got %d", len(ix.Blocks))
	}

	// Corrupt blocks 3 and 7: the reported error must always be block 3's.
	corrupt := append([]byte(nil), data...)
	corrupt[ix.Blocks[3].DataOffset()+2] ^= 0xff
	corrupt[ix.Blocks[7].DataOffset()+2] ^= 0xff

	var wantDecode, wantScan string
	for trial := 0; trial < 20; trial++ {
		for _, workers := range []int{1, 2, 8} {
			opt := &Options{BlockSize: 500, Parallelism: workers}
			_, err := DecompressColumn(corrupt, opt)
			if err == nil {
				t.Fatalf("trial %d P=%d: corruption not detected", trial, workers)
			}
			if wantDecode == "" {
				wantDecode = err.Error()
			} else if err.Error() != wantDecode {
				t.Fatalf("trial %d P=%d: decode error %q, want %q", trial, workers, err, wantDecode)
			}
			_, err = CountEqualInt32(corrupt, 1, opt)
			if err == nil {
				t.Fatalf("trial %d P=%d: scan missed corruption", trial, workers)
			}
			if wantScan == "" {
				wantScan = err.Error()
			} else if err.Error() != wantScan {
				t.Fatalf("trial %d P=%d: scan error %q, want %q", trial, workers, err, wantScan)
			}
		}
	}
}

// waitForGoroutines polls until the goroutine count settles back to at
// most base (plus slack for runtime-owned goroutines) or the deadline
// passes.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > base %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelDecodeNoGoroutineLeaks drives every parallel decode path —
// chunk decompression, scans, deep verify — at worker counts above the
// CPU count and checks the pool goroutines are gone afterwards, on both
// success and error paths.
func TestParallelDecodeNoGoroutineLeaks(t *testing.T) {
	chunk := equivChunk(59, 2501)
	cc, err := CompressChunk(chunk, &Options{BlockSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	colData, err := CompressColumn(chunk.Columns[0], &Options{BlockSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), colData...)
	corrupt[len(corrupt)/2] ^= 1

	base := runtime.NumGoroutine()
	opt := &Options{BlockSize: 1000, Parallelism: 8}
	for i := 0; i < 20; i++ {
		if _, err := DecompressChunk(cc, opt); err != nil {
			t.Fatal(err)
		}
		if _, err := CountEqualInt32(colData, 7, opt); err != nil {
			t.Fatal(err)
		}
		if _, err := DecompressColumn(corrupt, opt); err == nil {
			t.Fatal("corruption not detected")
		}
		Verify(cc.EncodeFile(), &VerifyOptions{Deep: true, Parallelism: 8})
	}
	waitForGoroutines(t, base)
}
