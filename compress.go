package btrblocks

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"btrblocks/coldata"
	"btrblocks/internal/core"
	"btrblocks/internal/parallel"
	"btrblocks/internal/roaring"
	"btrblocks/internal/telemetry"
)

// Errors returned by the format layer.
var (
	ErrCorrupt      = errors.New("btrblocks: corrupt file")
	ErrTypeMismatch = errors.New("btrblocks: column type mismatch")
)

const (
	columnMagic = "BTRC"
	fileMagic   = "BTRB"
	// formatVersion1 is the original checksum-free layout; formatVersion2
	// adds a CRC32C after every block and at the end of every container.
	formatVersion1 = 1
	formatVersion2 = 2
	// formatVersion is the version new files are written with unless
	// Options.FormatVersion overrides it.
	formatVersion = formatVersion2
)

// Parallel-path names the worker-pool engine reports to telemetry
// (Recorder.RecordWorkers / ObserveQueueWait).
const (
	pathCompressChunk    = "compress_chunk"
	pathCompressColumn   = "compress_column"
	pathDecompressChunk  = "decompress_chunk"
	pathDecompressColumn = "decompress_column"
	pathScan             = "scan"
	pathVerify           = "verify"
	pathStreamAhead      = "stream_ahead"
)

// observerOf adapts an optional telemetry recorder to the pool's
// Observer interface without handing it a typed nil.
func observerOf(rec *telemetry.Recorder) parallel.Observer {
	if rec == nil {
		return nil
	}
	return rec
}

// CompressColumn compresses one column into a self-contained column file:
// a header followed by independently decompressible blocks of
// opt.BlockSize values, each carrying its NULL bitmap and compressed data
// stream. This is the one-file-per-column layout §6.7 uses on S3.
func CompressColumn(col Column, opt *Options) ([]byte, error) {
	return CompressColumnContext(context.Background(), col, opt)
}

// CompressColumnContext is CompressColumn with a caller context: the
// per-block encode tasks observe cancellation and, when the context
// carries a tracing span (obs.StartChild), record per-block child spans
// tagged with worker id and queue wait.
func CompressColumnContext(ctx context.Context, col Column, opt *Options) ([]byte, error) {
	ver, err := opt.formatVersionOf()
	if err != nil {
		return nil, err
	}
	blocks, err := compressColumnBlocks(ctx, col, opt)
	if err != nil {
		return nil, err
	}
	return assembleColumnFile(col, blocks, ver), nil
}

// compressColumnBlocks produces the per-block payloads of a column.
func compressColumnBlocks(ctx context.Context, col Column, opt *Options) ([][]byte, error) {
	if len(col.Name) > math.MaxUint16 {
		return nil, fmt.Errorf("btrblocks: column name too long (%d bytes)", len(col.Name))
	}
	if opt != nil && opt.BlockSize > core.MaxBlockValues {
		return nil, fmt.Errorf("btrblocks: block size %d exceeds maximum %d", opt.BlockSize, core.MaxBlockValues)
	}
	cfg := opt.coreConfig()
	rec := opt.telemetryRecorder()
	tracer := opt.tracer()
	bs := opt.blockSize()
	n := col.Len()
	numBlocks := (n + bs - 1) / bs
	blocks := make([][]byte, numBlocks)
	// Blocks are independent; encode them on the shared pool. Output
	// lands in per-block slots, so the file bytes are identical at every
	// worker count.
	if err := parallel.Observed(ctx, numBlocks, parallelism(opt), pathCompressColumn, observerOf(rec), func(b int) error {
		lo := b * bs
		hi := lo + bs
		if hi > n {
			hi = n
		}
		blocks[b] = compressBlock(&col, b, lo, hi, cfg, rec, tracer)
		return nil
	}); err != nil {
		return nil, err
	}
	return blocks, nil
}

// compressBlock encodes one block, routing through the observed path
// when a telemetry recorder or a decision tracer is set.
func compressBlock(col *Column, block, lo, hi int, cfg *core.Config, rec *telemetry.Recorder, tracer *Tracer) []byte {
	if rec == nil && tracer == nil {
		return encodeBlock(col, lo, hi, cfg)
	}
	return recordBlock(col, block, lo, hi, cfg, rec, tracer)
}

// encodeBlock encodes rows [lo, hi) of col as:
// rows:u32 nullLen:u32 [roaring bytes] dataLen:u32 data-stream.
func encodeBlock(col *Column, lo, hi int, cfg *core.Config) []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint32(out, uint32(hi-lo))
	nulls := col.Nulls.slice(lo, hi)
	if nulls == nil {
		out = binary.LittleEndian.AppendUint32(out, 0)
	} else {
		nb := nulls.AppendTo(nil)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(nb)))
		out = append(out, nb...)
	}
	lenPos := len(out)
	out = binary.LittleEndian.AppendUint32(out, 0) // patched below
	switch col.Type {
	case TypeInt:
		values := col.Ints[lo:hi]
		if nulls != nil {
			values = densifyInts(values, nulls)
		}
		out = core.CompressInt(out, values, cfg)
	case TypeInt64:
		values := col.Ints64[lo:hi]
		if nulls != nil {
			values = densifyInts64(values, nulls)
		}
		out = core.CompressInt64(out, values, cfg)
	case TypeDouble:
		values := col.Doubles[lo:hi]
		if nulls != nil {
			values = densifyDoubles(values, nulls)
		}
		out = core.CompressDouble(out, values, cfg)
	case TypeString:
		values := col.Strings.Slice(lo, hi)
		if nulls != nil {
			values = densifyStrings(values, nulls)
		}
		out = core.CompressString(out, values, cfg)
	}
	binary.LittleEndian.PutUint32(out[lenPos:], uint32(len(out)-lenPos-4))
	return out
}

// densifyInts rewrites NULL positions to the previous non-null value so
// they form runs instead of noise; NULL content is unspecified by contract.
func densifyInts(src []int32, nulls *roaring.Bitmap) []int32 {
	out := append([]int32(nil), src...)
	var last int32
	haveLast := false
	for i := range out {
		if nulls.Contains(uint32(i)) {
			if haveLast {
				out[i] = last
			} else {
				out[i] = 0
			}
		} else {
			last, haveLast = out[i], true
		}
	}
	return out
}

func densifyInts64(src []int64, nulls *roaring.Bitmap) []int64 {
	out := append([]int64(nil), src...)
	var last int64
	haveLast := false
	for i := range out {
		if nulls.Contains(uint32(i)) {
			if haveLast {
				out[i] = last
			} else {
				out[i] = 0
			}
		} else {
			last, haveLast = out[i], true
		}
	}
	return out
}

func densifyDoubles(src []float64, nulls *roaring.Bitmap) []float64 {
	out := append([]float64(nil), src...)
	var last float64
	haveLast := false
	for i := range out {
		if nulls.Contains(uint32(i)) {
			if haveLast {
				out[i] = last
			} else {
				out[i] = 0
			}
		} else {
			last, haveLast = out[i], true
		}
	}
	return out
}

func densifyStrings(src coldata.Strings, nulls *roaring.Bitmap) coldata.Strings {
	n := src.Len()
	out := coldata.NewStringsBuilder(n, len(src.Data))
	lastIdx := -1
	for i := 0; i < n; i++ {
		if nulls.Contains(uint32(i)) {
			if lastIdx >= 0 {
				out = out.AppendBytes(src.View(lastIdx))
			} else {
				out = out.Append("")
			}
		} else {
			out = out.AppendBytes(src.View(i))
			lastIdx = i
		}
	}
	return out
}

func assembleColumnFile(col Column, blocks [][]byte, ver byte) []byte {
	var out []byte
	out = append(out, columnMagic...)
	out = append(out, ver, byte(col.Type))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(col.Name)))
	out = append(out, col.Name...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(blocks)))
	for _, b := range blocks {
		out = append(out, b...)
		if checksummedVersion(ver) {
			out = binary.LittleEndian.AppendUint32(out, crc32c(b))
		}
	}
	if checksummedVersion(ver) {
		out = appendCRC32C(out)
	}
	return out
}

// DecompressColumn decodes a column file produced by CompressColumn.
// String columns are materialized into an owned Strings vector; use
// DecompressStringViews for the no-copy path.
func DecompressColumn(data []byte, opt *Options) (Column, error) {
	return DecompressColumnContext(context.Background(), data, opt)
}

// DecompressColumnContext is DecompressColumn with a caller context: the
// per-block decode tasks observe cancellation and, when the context
// carries a tracing span, record per-block child spans tagged with
// worker id and queue wait. With no span in the context the decode path
// is byte- and allocation-identical to DecompressColumn.
func DecompressColumnContext(ctx context.Context, data []byte, opt *Options) (Column, error) {
	col, views, err := decompressColumn(ctx, data, opt)
	if err != nil {
		return Column{}, err
	}
	if col.Type == TypeString {
		col.Strings = concatViews(views)
	}
	return col, nil
}

// DecompressStringViews decodes a string column file into per-block
// no-copy view columns (one StringViews per block, pools shared with the
// block dictionaries).
func DecompressStringViews(data []byte, opt *Options) ([]coldata.StringViews, *NullMask, error) {
	col, views, err := decompressColumn(context.Background(), data, opt)
	if err != nil {
		return nil, nil, err
	}
	if col.Type != TypeString {
		return nil, nil, ErrTypeMismatch
	}
	return views, col.Nulls, nil
}

func concatViews(views []coldata.StringViews) coldata.Strings {
	total, count := 0, 0
	for _, v := range views {
		count += v.Len()
		for i := range v.Views {
			total += int(v.Views[i].Len)
		}
	}
	out := coldata.NewStringsBuilder(count, total)
	for _, v := range views {
		for i := 0; i < v.Len(); i++ {
			out = out.AppendBytes(v.Bytes(i))
		}
	}
	return out
}

// blockVectors is the decoded payload of one block, still block-local:
// NULL positions are relative to the block's first row and string views
// are not yet materialized. Workers fill these into per-block slots so
// ordered assembly is independent of decode completion order.
type blockVectors struct {
	ints    []int32
	ints64  []int64
	doubles []float64
	views   coldata.StringViews
	nulls   *roaring.Bitmap
}

// decodeBlockVectors verifies and decodes block b of an indexed column
// file. It is the single per-block decoder behind every decode path —
// serial and parallel modes run exactly this function per block, which
// is what makes their outputs identical by construction. base is copied
// per call, so concurrent workers can share one config. scr, when
// non-nil, supplies the worker's private scratch arena for decode
// temporaries; it must not be shared with a concurrent call.
func decodeBlockVectors(ix *ColumnIndex, data []byte, b int, base *core.Config, scr *core.Scratch, rec *telemetry.Recorder) (blockVectors, error) {
	var out blockVectors
	ref := ix.Blocks[b]
	if ref.End() > len(data) {
		return out, ErrTruncatedFile
	}
	if err := ix.VerifyBlock(data, b); err != nil {
		rec.RecordCorruption(1)
		return out, err
	}
	if ref.NullBytes > 0 {
		bm, used, err := roaring.FromBytes(data[ref.NullOffset() : ref.NullOffset()+ref.NullBytes])
		if err != nil || used != ref.NullBytes {
			return out, ErrCorrupt
		}
		ok := true
		bm.ForEach(func(v uint32) bool {
			if int(v) >= ref.Rows {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return out, ErrCorrupt
		}
		out.nulls = bm
	}
	// Cap decoded value counts at the block's declared row count so a
	// corrupt stream header cannot force a huge allocation.
	cfg := *base
	cfg.MaxDecodedValues = ref.Rows
	cfg.Scratch = scr
	stream := data[ref.DataOffset():ref.End()]
	var start time.Time
	if rec != nil {
		start = time.Now()
	}
	var used int
	var err error
	switch ix.Type {
	case TypeInt:
		out.ints, used, err = core.DecompressInt(nil, stream, &cfg)
		if err == nil && len(out.ints) != ref.Rows {
			err = ErrCorrupt
		}
	case TypeInt64:
		out.ints64, used, err = core.DecompressInt64(nil, stream, &cfg)
		if err == nil && len(out.ints64) != ref.Rows {
			err = ErrCorrupt
		}
	case TypeDouble:
		out.doubles, used, err = core.DecompressDouble(nil, stream, &cfg)
		if err == nil && len(out.doubles) != ref.Rows {
			err = ErrCorrupt
		}
	case TypeString:
		out.views, used, err = core.DecompressString(stream, &cfg)
		if err == nil && out.views.Len() != ref.Rows {
			err = ErrCorrupt
		}
	}
	if err != nil {
		return out, err
	}
	if used != ref.DataBytes {
		return out, ErrCorrupt
	}
	if rec != nil {
		rec.RecordDecode(1, ref.Rows, ref.DataBytes, time.Since(start).Nanoseconds())
	}
	return out, nil
}

// assembleColumn concatenates per-block decode results in block order:
// value vectors are appended block by block and NULL positions rebased
// by each block's start row. String blocks stay as views; the caller
// materializes or keeps them as needed.
func assembleColumn(ix *ColumnIndex, results []blockVectors) (Column, []coldata.StringViews) {
	col := Column{Name: ix.Name, Type: ix.Type}
	if ix.Rows > 0 {
		switch ix.Type {
		case TypeInt:
			col.Ints = make([]int32, 0, ix.Rows)
		case TypeInt64:
			col.Ints64 = make([]int64, 0, ix.Rows)
		case TypeDouble:
			col.Doubles = make([]float64, 0, ix.Rows)
		}
	}
	var viewBlocks []coldata.StringViews
	for b := range results {
		r := &results[b]
		switch ix.Type {
		case TypeInt:
			col.Ints = append(col.Ints, r.ints...)
		case TypeInt64:
			col.Ints64 = append(col.Ints64, r.ints64...)
		case TypeDouble:
			col.Doubles = append(col.Doubles, r.doubles...)
		case TypeString:
			viewBlocks = append(viewBlocks, r.views)
		}
		if r.nulls != nil {
			if col.Nulls == nil {
				col.Nulls = NewNullMask()
			}
			start := ix.Blocks[b].StartRow
			r.nulls.ForEach(func(v uint32) bool {
				col.Nulls.SetNull(start + int(v))
				return true
			})
		}
	}
	return col, viewBlocks
}

func decompressColumn(ctx context.Context, data []byte, opt *Options) (Column, []coldata.StringViews, error) {
	ix, err := ParseColumnIndex(data)
	if err != nil {
		return Column{}, nil, err
	}
	base := opt.coreConfig()
	rec := opt.telemetryRecorder()
	results := make([]blockVectors, len(ix.Blocks))
	scratches := make([]*core.Scratch, parallel.Workers(parallelism(opt)))
	err = parallel.ObservedWorkers(ctx, len(ix.Blocks), parallelism(opt), pathDecompressColumn, observerOf(rec), func(w, b int) error {
		if scratches[w] == nil {
			scratches[w] = new(core.Scratch)
		}
		bv, err := decodeBlockVectors(ix, data, b, base, scratches[w], rec)
		if err != nil {
			return err
		}
		results[b] = bv
		return nil
	})
	if err != nil {
		return Column{}, nil, err
	}
	if ix.Checksummed() {
		if err := verifyTrailingCRC(data, "column file"); err != nil {
			rec.RecordCorruption(1)
			return Column{}, nil, err
		}
	}
	col, viewBlocks := assembleColumn(ix, results)
	return col, viewBlocks, nil
}

// ColumnStats describes one compressed column.
type ColumnStats struct {
	Name              string
	Type              Type
	Rows              int
	UncompressedBytes int
	CompressedBytes   int
	// BlockSchemes is the root scheme chosen for each block.
	BlockSchemes []Scheme
}

// Ratio returns the compression factor.
func (s ColumnStats) Ratio() float64 {
	if s.CompressedBytes == 0 {
		return 0
	}
	return float64(s.UncompressedBytes) / float64(s.CompressedBytes)
}

// CompressedChunk is a compressed chunk: one column file per column.
type CompressedChunk struct {
	Columns [][]byte
	Stats   []ColumnStats
	// Version is the on-disk format version the chunk was compressed
	// with; CompressChunk and DecodeFile set it, and EncodeFile writes it
	// as the container version. Zero means "current" (formatVersion).
	Version byte
}

// CompressedBytes sums the column file sizes.
func (c *CompressedChunk) CompressedBytes() int {
	total := 0
	for _, col := range c.Columns {
		total += len(col)
	}
	return total
}

// CompressChunk compresses all columns of a chunk, parallelizing across
// column blocks (the unit the paper parallelizes on too).
func CompressChunk(chunk *Chunk, opt *Options) (*CompressedChunk, error) {
	if opt != nil && opt.BlockSize > core.MaxBlockValues {
		return nil, fmt.Errorf("btrblocks: block size %d exceeds maximum %d", opt.BlockSize, core.MaxBlockValues)
	}
	ver, err := opt.formatVersionOf()
	if err != nil {
		return nil, err
	}
	type task struct {
		col   int
		block int
	}
	bs := opt.blockSize()
	nCols := len(chunk.Columns)
	blockBufs := make([][][]byte, nCols)
	var tasks []task
	for ci := range chunk.Columns {
		n := chunk.Columns[ci].Len()
		numBlocks := (n + bs - 1) / bs
		blockBufs[ci] = make([][]byte, numBlocks)
		for b := 0; b < numBlocks; b++ {
			tasks = append(tasks, task{ci, b})
		}
	}

	cfg := opt.coreConfig()
	rec := opt.telemetryRecorder()
	tracer := opt.tracer()
	_ = parallel.Observed(context.Background(), len(tasks), parallelism(opt), pathCompressChunk, observerOf(rec), func(i int) error {
		t := tasks[i]
		col := &chunk.Columns[t.col]
		lo := t.block * bs
		hi := lo + bs
		if hi > col.Len() {
			hi = col.Len()
		}
		blockBufs[t.col][t.block] = compressBlock(col, t.block, lo, hi, cfg, rec, tracer)
		return nil
	})

	out := &CompressedChunk{
		Columns: make([][]byte, nCols),
		Stats:   make([]ColumnStats, nCols),
		Version: ver,
	}
	for ci := range chunk.Columns {
		col := &chunk.Columns[ci]
		if len(col.Name) > math.MaxUint16 {
			return nil, fmt.Errorf("btrblocks: column name too long (%d bytes)", len(col.Name))
		}
		out.Columns[ci] = assembleColumnFile(*col, blockBufs[ci], ver)
		st := ColumnStats{
			Name:              col.Name,
			Type:              col.Type,
			Rows:              col.Len(),
			UncompressedBytes: col.UncompressedBytes(),
			CompressedBytes:   len(out.Columns[ci]),
		}
		for _, b := range blockBufs[ci] {
			st.BlockSchemes = append(st.BlockSchemes, blockRootScheme(b))
		}
		out.Stats[ci] = st
	}
	return out, nil
}

// blockRootScheme extracts the root scheme code from a block payload.
func blockRootScheme(block []byte) Scheme {
	// rows:u32 nullLen:u32 [nulls] dataLen:u32 code...
	if len(block) < 8 {
		return SchemeUncompressed
	}
	nullLen := int(binary.LittleEndian.Uint32(block[4:]))
	p := 8 + nullLen + 4
	if len(block) <= p {
		return SchemeUncompressed
	}
	return Scheme(block[p])
}

// DecompressChunk decodes a compressed chunk, fanning out across every
// (column, block) pair — the same task granularity CompressChunk uses —
// and reassembling columns in block order. Output and errors are
// identical at every worker count: a flat task list claimed in index
// order means the pool's minimum-index error is exactly the error a
// column-by-column serial walk would hit first.
func DecompressChunk(cc *CompressedChunk, opt *Options) (*Chunk, error) {
	return DecompressChunkContext(context.Background(), cc, opt)
}

// DecompressChunkContext is DecompressChunk with a caller context: the
// per-(column, block) decode tasks observe cancellation and, when the
// context carries a tracing span, record per-block child spans.
func DecompressChunkContext(ctx context.Context, cc *CompressedChunk, opt *Options) (*Chunk, error) {
	nCols := len(cc.Columns)
	ixs := make([]*ColumnIndex, nCols)
	results := make([][]blockVectors, nCols)
	type blockTask struct{ col, block int }
	var tasks []blockTask
	for ci, data := range cc.Columns {
		ix, err := ParseColumnIndex(data)
		if err != nil {
			return nil, err
		}
		ixs[ci] = ix
		results[ci] = make([]blockVectors, len(ix.Blocks))
		for b := range ix.Blocks {
			tasks = append(tasks, blockTask{ci, b})
		}
	}
	base := opt.coreConfig()
	rec := opt.telemetryRecorder()
	scratches := make([]*core.Scratch, parallel.Workers(parallelism(opt)))
	err := parallel.ObservedWorkers(ctx, len(tasks), parallelism(opt), pathDecompressChunk, observerOf(rec), func(w, i int) error {
		if scratches[w] == nil {
			scratches[w] = new(core.Scratch)
		}
		t := tasks[i]
		bv, err := decodeBlockVectors(ixs[t.col], cc.Columns[t.col], t.block, base, scratches[w], rec)
		if err != nil {
			return err
		}
		results[t.col][t.block] = bv
		return nil
	})
	if err != nil {
		return nil, err
	}
	cols := make([]Column, nCols)
	for ci, ix := range ixs {
		if ix.Checksummed() {
			if err := verifyTrailingCRC(cc.Columns[ci], "column file"); err != nil {
				rec.RecordCorruption(1)
				return nil, err
			}
		}
		col, viewBlocks := assembleColumn(ix, results[ci])
		if ix.Type == TypeString {
			col.Strings = concatViews(viewBlocks)
		}
		cols[ci] = col
	}
	return &Chunk{Columns: cols}, nil
}

func parallelism(opt *Options) int {
	if opt != nil && opt.Parallelism > 0 {
		return opt.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// EncodeFile bundles a compressed chunk into a single byte stream:
// magic, version, column count, column file lengths, column files, and —
// for v2 chunks — a trailing CRC32C over everything before it. The
// container version is the chunk's Version (the version it was
// compressed with), so the container always matches the embedded
// column files; a zero Version encodes as the current formatVersion.
func (c *CompressedChunk) EncodeFile() []byte {
	ver := c.Version
	if ver == 0 {
		ver = formatVersion
	}
	var out []byte
	out = append(out, fileMagic...)
	out = append(out, ver)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(c.Columns)))
	for _, col := range c.Columns {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(col)))
	}
	for _, col := range c.Columns {
		out = append(out, col...)
	}
	if checksummedVersion(ver) {
		out = appendCRC32C(out)
	}
	return out
}

// DecodeFile parses a stream produced by EncodeFile. For v2 files the
// container checksum is verified here; the per-block checksums inside
// the column files are verified when the columns are decompressed.
func DecodeFile(data []byte) (*CompressedChunk, error) {
	if len(data) < 7 || string(data[:4]) != fileMagic {
		return nil, ErrCorrupt
	}
	if !supportedVersion(data[4]) {
		return nil, fmt.Errorf("btrblocks: unsupported version %d", data[4])
	}
	bodyEnd := len(data)
	if checksummedVersion(data[4]) {
		if err := verifyTrailingCRC(data, "chunk file"); err != nil {
			return nil, err
		}
		bodyEnd -= crcBytes
	}
	nCols := int(binary.LittleEndian.Uint16(data[5:]))
	pos := 7
	if bodyEnd < pos+4*nCols {
		return nil, ErrTruncatedFile
	}
	lengths := make([]int, nCols)
	for i := range lengths {
		lengths[i] = int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
	}
	out := &CompressedChunk{Columns: make([][]byte, nCols), Version: data[4]}
	for i, l := range lengths {
		if l < 0 || bodyEnd < pos+l {
			return nil, ErrTruncatedFile
		}
		out.Columns[i] = data[pos : pos+l]
		pos += l
	}
	if pos != bodyEnd {
		return nil, ErrCorrupt
	}
	return out, nil
}

// Choose reports the scheme the selection algorithm would pick for the
// first block of a column, with the estimated compression ratio — handy
// for inspecting selection decisions (Table 4's "Scheme (Root)" column).
func Choose(col Column, opt *Options) (Scheme, float64) {
	cfg := opt.coreConfig()
	bs := opt.blockSize()
	switch col.Type {
	case TypeInt:
		v := col.Ints
		if len(v) > bs {
			v = v[:bs]
		}
		return core.ChooseInt(v, cfg)
	case TypeInt64:
		v := col.Ints64
		if len(v) > bs {
			v = v[:bs]
		}
		return core.ChooseInt64(v, cfg)
	case TypeDouble:
		v := col.Doubles
		if len(v) > bs {
			v = v[:bs]
		}
		return core.ChooseDouble(v, cfg)
	case TypeString:
		v := col.Strings
		if v.Len() > bs {
			v = v.Slice(0, bs)
		}
		return core.ChooseString(v, cfg)
	}
	return SchemeUncompressed, 1
}

// ColumnFileType peeks at a column file header and returns the stored
// column type without decompressing anything.
func ColumnFileType(data []byte) (Type, error) {
	if len(data) < 6 || string(data[:4]) != columnMagic {
		return 0, ErrCorrupt
	}
	t := Type(data[5])
	if t > maxType {
		return 0, ErrCorrupt
	}
	return t, nil
}
