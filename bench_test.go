// Benchmarks mirroring the paper's evaluation (§6): one testing.B target
// per table and figure, operating on the synthetic Public BI / TPC-H
// corpora. `go test -bench=. -benchmem` reports throughput where the
// experiment is about speed and custom metrics (ratio, $/scan, %-correct)
// where it is about compression or cost. `cmd/btrbench` runs the same
// experiments at larger scale with full table output.
package btrblocks_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"btrblocks"
	"btrblocks/coldata"
	"btrblocks/internal/codec"
	"btrblocks/internal/core"
	"btrblocks/internal/experiments"
	"btrblocks/internal/floatbase"
	"btrblocks/internal/orclike"
	"btrblocks/internal/parquetlike"
	"btrblocks/internal/pbi"
	"btrblocks/internal/s3sim"
	"btrblocks/internal/tpch"
)

const benchRows = 16000

var (
	corpusOnce sync.Once
	pbiCorpus  []pbi.Dataset
	tpchCorpus []pbi.Dataset
)

func corpora() ([]pbi.Dataset, []pbi.Dataset) {
	corpusOnce.Do(func() {
		pbiCorpus = pbi.Corpus(benchRows, 42)
		for _, ds := range tpch.Corpus(benchRows, 42) {
			tpchCorpus = append(tpchCorpus, pbi.Dataset{Name: ds.Name, Chunk: ds.Chunk})
		}
	})
	return pbiCorpus, tpchCorpus
}

type blob struct {
	name string
	data []byte
}

func compressAll(b *testing.B, f experiments.Format, corpus []pbi.Dataset) (blobs []blob, unc, comp int) {
	b.Helper()
	for _, ds := range corpus {
		for _, col := range ds.Chunk.Columns {
			data, err := f.Compress(col)
			if err != nil {
				b.Fatal(err)
			}
			blobs = append(blobs, blob{col.Name, data})
			unc += col.UncompressedBytes()
			comp += len(data)
		}
	}
	return blobs, unc, comp
}

func scanAll(b *testing.B, f experiments.Format, blobs []blob) {
	b.Helper()
	for _, bl := range blobs {
		if _, err := f.Scan(bl.data, bl.name); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 1 / Table 5: S3 scan cost ---

func BenchmarkFig1Table5_S3ScanCost(b *testing.B) {
	corpus := pbi.Largest5(benchRows, 42)
	model := s3sim.Default()
	for _, f := range []experiments.Format{
		experiments.BtrFormat(btrblocks.DefaultOptions()),
		experiments.ParquetFormat(codec.None),
		experiments.ParquetFormat(codec.Snappy),
		experiments.ParquetFormat(codec.Heavy),
	} {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			store := s3sim.NewStore()
			var objects []s3sim.Object
			unc := 0
			for _, ds := range corpus {
				for _, col := range ds.Chunk.Columns {
					data, err := f.Compress(col)
					if err != nil {
						b.Fatal(err)
					}
					key := ds.Name + "/" + col.Name
					store.Put(key, data)
					objects = append(objects, s3sim.Object{Key: key})
					unc += col.UncompressedBytes()
				}
			}
			b.SetBytes(int64(unc))
			b.ResetTimer()
			var last *s3sim.ScanResult
			for i := 0; i < b.N; i++ {
				res, err := model.Scan(store, objects, 0, func(key string, data []byte) (int, error) {
					return f.Scan(data, key)
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.CostDollars*1e6, "microdollars/scan")
			b.ReportMetric(last.TcGbps(), "Tc-Gbps")
		})
	}
}

// --- Table 2: compression ratio per format ---

func BenchmarkTable2_Compress(b *testing.B) {
	pbiC, tpchC := corpora()
	for _, part := range []struct {
		name   string
		corpus []pbi.Dataset
	}{{"pbi", pbiC}, {"tpch", tpchC}} {
		for _, f := range experiments.StandardFormats() {
			f := f
			b.Run(part.name+"/"+f.Name, func(b *testing.B) {
				unc := 0
				for _, ds := range part.corpus {
					unc += ds.Chunk.UncompressedBytes()
				}
				b.SetBytes(int64(unc))
				var comp int
				for i := 0; i < b.N; i++ {
					_, u, c := compressAll(b, f, part.corpus)
					_ = u
					comp = c
				}
				b.ReportMetric(float64(unc)/float64(comp), "ratio")
			})
		}
	}
}

// --- Figure 4: scheme pool ablation (decompression side) ---

func BenchmarkFig4_PoolAblation(b *testing.B) {
	pbiC, _ := corpora()
	stages := []struct {
		name string
		opt  *btrblocks.Options
	}{
		{"uncompressed", &btrblocks.Options{
			IntSchemes: []btrblocks.Scheme{}, DoubleSchemes: []btrblocks.Scheme{}, StringSchemes: []btrblocks.Scheme{}}},
		{"light", &btrblocks.Options{
			IntSchemes:    []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeRLE},
			DoubleSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeRLE},
			StringSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue}}},
		{"full", btrblocks.DefaultOptions()},
	}
	for _, st := range stages {
		st := st
		b.Run(st.name, func(b *testing.B) {
			f := experiments.BtrFormat(st.opt)
			blobs, unc, comp := compressAll(b, f, pbiC)
			b.SetBytes(int64(unc))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scanAll(b, f, blobs)
			}
			b.ReportMetric(float64(unc)/float64(comp), "ratio")
		})
	}
}

// --- Figure 5: sampling strategy accuracy ---

func BenchmarkFig5_SamplingStrategies(b *testing.B) {
	pbiC, _ := corpora()
	var cols []btrblocks.Column
	for _, ds := range pbiC[:8] {
		cols = append(cols, ds.Chunk.Columns...)
	}
	for _, st := range []struct {
		name         string
		runs, runLen int
	}{{"single", 640, 1}, {"10x64", 10, 64}, {"range", 1, 640}} {
		st := st
		b.Run(st.name, func(b *testing.B) {
			opt := &btrblocks.Options{SampleRuns: st.runs, SampleRunLen: st.runLen}
			for i := 0; i < b.N; i++ {
				for _, col := range cols {
					btrblocks.Choose(col, opt)
				}
			}
		})
	}
}

// --- Figure 6: sample size vs selection cost ---

func BenchmarkFig6_SampleSizes(b *testing.B) {
	pbiC, _ := corpora()
	var cols []btrblocks.Column
	for _, ds := range pbiC[:8] {
		cols = append(cols, ds.Chunk.Columns...)
	}
	for _, runLen := range []int{8, 64, 512, 4096} {
		runLen := runLen
		b.Run(fmt.Sprintf("10x%d", runLen), func(b *testing.B) {
			opt := &btrblocks.Options{SampleRuns: 10, SampleRunLen: runLen}
			for i := 0; i < b.N; i++ {
				for _, col := range cols {
					btrblocks.Choose(col, opt)
				}
			}
		})
	}
}

// --- Figure 7: compression ratios lineup ---

func BenchmarkFig7_Ratios(b *testing.B) {
	pbiC, _ := corpora()
	for _, f := range []experiments.Format{
		experiments.ParquetFormat(codec.Heavy),
		experiments.BtrFormat(btrblocks.DefaultOptions()),
		experiments.ORCFormat(codec.Snappy),
	} {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			unc := 0
			for _, ds := range pbiC {
				unc += ds.Chunk.UncompressedBytes()
			}
			b.SetBytes(int64(unc))
			var comp int
			for i := 0; i < b.N; i++ {
				_, _, comp = compressAll(b, f, pbiC)
			}
			b.ReportMetric(float64(unc)/float64(comp), "ratio")
		})
	}
}

// --- §6.4: compression speed from binary ---

func BenchmarkCompressionSpeed_FromBinary(b *testing.B) {
	pbiC, _ := corpora()
	lineups := []struct {
		name string
		do   func(col btrblocks.Column) (int, error)
	}{
		{"btrblocks", func(col btrblocks.Column) (int, error) {
			data, err := btrblocks.CompressColumn(col, btrblocks.DefaultOptions())
			return len(data), err
		}},
		{"parquet+snappy", func(col btrblocks.Column) (int, error) {
			data, err := parquetlike.CompressColumn(col, &parquetlike.Options{Codec: codec.Snappy})
			return len(data), err
		}},
		{"orc+zstd*", func(col btrblocks.Column) (int, error) {
			data, err := orclike.CompressColumn(col, &orclike.Options{Codec: codec.Heavy})
			return len(data), err
		}},
	}
	for _, lu := range lineups {
		lu := lu
		b.Run(lu.name, func(b *testing.B) {
			unc := 0
			for _, ds := range pbiC {
				unc += ds.Chunk.UncompressedBytes()
			}
			b.SetBytes(int64(unc))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, ds := range pbiC {
					for _, col := range ds.Chunk.Columns {
						if _, err := lu.do(col); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// --- Table 3: double codecs ---

func BenchmarkTable3_DoubleCodecs(b *testing.B) {
	cols := pbi.Table3Columns(benchRows, 42)
	var all []float64
	for _, nc := range cols {
		all = append(all, nc.Col.Doubles...)
	}
	type c struct {
		name   string
		encode func([]byte, []float64) []byte
	}
	for _, cd := range []c{
		{"fpc", floatbase.FPCEncode},
		{"gorilla", floatbase.GorillaEncode},
		{"chimp", floatbase.ChimpEncode},
		{"chimp128", floatbase.Chimp128Encode},
	} {
		cd := cd
		b.Run(cd.name, func(b *testing.B) {
			b.SetBytes(int64(len(all) * 8))
			var size int
			for i := 0; i < b.N; i++ {
				size = len(cd.encode(nil, all))
			}
			b.ReportMetric(float64(len(all)*8)/float64(size), "ratio")
		})
	}
	b.Run("pde", func(b *testing.B) {
		b.SetBytes(int64(len(all) * 8))
		opt := btrblocks.DefaultOptions()
		var size int
		for i := 0; i < b.N; i++ {
			data, err := btrblocks.CompressColumn(
				btrblocks.DoubleColumn("t3", all), opt)
			if err != nil {
				b.Fatal(err)
			}
			size = len(data)
		}
		b.ReportMetric(float64(len(all)*8)/float64(size), "ratio")
	})
}

// --- §6.5: PDE within the pool (decompression of a PDE column) ---

func BenchmarkPDEPool_Decode(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	src := make([]float64, 64000)
	for i := range src {
		src[i] = float64(rng.Intn(1000000)) / 100
	}
	opt := btrblocks.DefaultOptions()
	data, err := btrblocks.CompressColumn(btrblocks.DoubleColumn("p", src), opt)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := btrblocks.DecompressColumn(data, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 8: in-memory decompression bandwidth ---

func BenchmarkFig8_Decompression(b *testing.B) {
	pbiC, tpchC := corpora()
	for _, part := range []struct {
		name   string
		corpus []pbi.Dataset
	}{{"pbi", pbiC}, {"tpch", tpchC}} {
		for _, f := range experiments.Fig8Formats() {
			f := f
			b.Run(part.name+"/"+f.Name, func(b *testing.B) {
				blobs, unc, comp := compressAll(b, f, part.corpus)
				b.SetBytes(int64(unc))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					scanAll(b, f, blobs)
				}
				b.ReportMetric(float64(unc)/float64(comp), "ratio")
			})
		}
	}
}

// --- Table 4: per-column decode, btr vs parquet+zstd* ---

func BenchmarkTable4_Columns(b *testing.B) {
	cols := pbi.Table4Columns(benchRows, 42)
	btr := experiments.BtrFormat(btrblocks.DefaultOptions())
	zstd := experiments.ParquetFormat(codec.Heavy)
	for _, nc := range cols[:6] { // a representative slice keeps -bench=. fast
		nc := nc
		for _, f := range []experiments.Format{btr, zstd} {
			f := f
			b.Run(nc.Dataset+"_"+nc.Name+"/"+f.Name, func(b *testing.B) {
				data, err := f.Compress(nc.Col)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(nc.Col.UncompressedBytes()))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := f.Scan(data, nc.Col.Name); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(nc.Col.UncompressedBytes())/float64(len(data)), "ratio")
			})
		}
	}
}

// --- §6.7: single-column loads ---

func BenchmarkColumnScan_SingleColumn(b *testing.B) {
	ds := pbi.Largest5(benchRows, 42)[0]
	model := s3sim.Default()
	f := experiments.BtrFormat(btrblocks.DefaultOptions())
	store := s3sim.NewStore()
	col := ds.Chunk.Columns[0]
	data, err := f.Compress(col)
	if err != nil {
		b.Fatal(err)
	}
	store.Put("col", data)
	b.SetBytes(int64(col.UncompressedBytes()))
	for i := 0; i < b.N; i++ {
		if _, err := model.Scan(store, []s3sim.Object{{Key: "col"}}, 1,
			func(key string, d []byte) (int, error) { return f.Scan(d, key) }); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §6.8: scalar ablation ---

func BenchmarkScalar_Ablation(b *testing.B) {
	pbiC, _ := corpora()
	for _, cfgp := range []struct {
		name string
		opt  *btrblocks.Options
	}{
		{"optimized", btrblocks.DefaultOptions()},
		{"scalar", &btrblocks.Options{ScalarDecode: true}},
	} {
		cfgp := cfgp
		b.Run(cfgp.name, func(b *testing.B) {
			f := experiments.BtrFormat(cfgp.opt)
			blobs, unc, _ := compressAll(b, f, pbiC)
			b.SetBytes(int64(unc))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scanAll(b, f, blobs)
			}
		})
	}
}

// --- core compression path, as a plain throughput benchmark ---

func BenchmarkCompressInt64kBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	src := make([]int32, 64000)
	for i := range src {
		src[i] = int32(rng.Intn(1000))
	}
	cfg := core.DefaultConfig()
	b.SetBytes(int64(len(src) * 4))
	for i := 0; i < b.N; i++ {
		core.CompressInt(nil, src, cfg)
	}
}

// --- design-choice ablation: fused Dict+RLE decompression (§5) ---

func BenchmarkFusedDictRLE_Ablation(b *testing.B) {
	// long runs of few strings: the fused path's best case
	rng := rand.New(rand.NewSource(11))
	vals := []string{"01 BRONX", "04 BRONX", "03 QUEENS", "STATEN ISLAND"}
	strs := make([]string, 64000)
	i := 0
	for i < len(strs) {
		v := vals[rng.Intn(len(vals))]
		for k := 0; k < 20+rng.Intn(120) && i < len(strs); k++ {
			strs[i] = v
			i++
		}
	}
	col := btrblocks.StringColumn("board", strs)
	data, err := btrblocks.CompressColumn(col, btrblocks.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, cfgp := range []struct {
		name string
		opt  *btrblocks.Options
	}{
		{"fused", btrblocks.DefaultOptions()},
		{"unfused", &btrblocks.Options{DisableFuseDictRLE: true}},
	} {
		cfgp := cfgp
		b.Run(cfgp.name, func(b *testing.B) {
			b.SetBytes(int64(col.UncompressedBytes()))
			for i := 0; i < b.N; i++ {
				if _, _, err := btrblocks.DecompressStringViews(data, cfgp.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- design-choice ablation: compressed-data predicate vs decode-and-filter ---

func BenchmarkCountEqual_Ablation(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	strs := make([]string, 64000)
	vals := []string{"SHIPPED", "PENDING", "RETURNED"}
	i := 0
	for i < len(strs) {
		v := vals[rng.Intn(len(vals))]
		for k := 0; k < 30+rng.Intn(90) && i < len(strs); k++ {
			strs[i] = v
			i++
		}
	}
	col := btrblocks.StringColumn("status", strs)
	opt := btrblocks.DefaultOptions()
	data, err := btrblocks.CompressColumn(col, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("compressed-count", func(b *testing.B) {
		b.SetBytes(int64(col.UncompressedBytes()))
		for i := 0; i < b.N; i++ {
			if _, err := btrblocks.CountEqualString(data, "SHIPPED", opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-and-filter", func(b *testing.B) {
		b.SetBytes(int64(col.UncompressedBytes()))
		for i := 0; i < b.N; i++ {
			got, err := btrblocks.DecompressColumn(data, opt)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for j := 0; j < got.Len(); j++ {
				if got.Strings.At(j) == "SHIPPED" {
					n++
				}
			}
			_ = n
		}
	})
}

// --- §6.4: parallel decode engine ---

// BenchmarkDecompressParallel measures whole-chunk decompression at
// 1/2/4/8 workers — the §6.4 scaling curve at benchmark scale. On an
// N-core host the workers>1 runs show the parallel decode engine's
// speedup; throughput is the uncompressed bytes produced per second.
func BenchmarkDecompressParallel(b *testing.B) {
	pbiC, _ := corpora()
	type cchunk struct {
		cc  *btrblocks.CompressedChunk
		unc int
	}
	var chunks []cchunk
	total := 0
	for _, ds := range pbiC {
		chunk := ds.Chunk
		cc, err := btrblocks.CompressChunk(&chunk, nil)
		if err != nil {
			b.Fatal(err)
		}
		unc := ds.Chunk.UncompressedBytes()
		chunks = append(chunks, cchunk{cc, unc})
		total += unc
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := &btrblocks.Options{Parallelism: workers}
			b.SetBytes(int64(total))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, c := range chunks {
					if _, err := btrblocks.DecompressChunk(c.cc, opt); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkScanParallel measures compressed-predicate scans over every
// integer column of the corpus at 1/2/4/8 workers (per-block predicate
// evaluation with ordered count merge).
func BenchmarkScanParallel(b *testing.B) {
	pbiC, _ := corpora()
	type icol struct {
		data []byte
		unc  int
	}
	var cols []icol
	total := 0
	for _, ds := range pbiC {
		for _, col := range ds.Chunk.Columns {
			if col.Type != btrblocks.TypeInt {
				continue
			}
			data, err := btrblocks.CompressColumn(col, nil)
			if err != nil {
				b.Fatal(err)
			}
			unc := col.UncompressedBytes()
			cols = append(cols, icol{data, unc})
			total += unc
		}
	}
	if len(cols) == 0 {
		b.Skip("corpus has no integer columns")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := &btrblocks.Options{Parallelism: workers}
			b.SetBytes(int64(total))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, c := range cols {
					if _, err := btrblocks.CountEqualInt32(c.data, 7, opt); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Telemetry overhead ---

// BenchmarkTelemetryOverhead compares block compression with telemetry
// disabled (nil recorder — the default), enabled, and against the
// baseline; "off" must stay within noise (~2%) of the baseline.
func BenchmarkTelemetryOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]int32, 64000)
	for i := range vals {
		vals[i] = int32(rng.Intn(1 << 14))
	}
	col := btrblocks.IntColumn("v", vals)
	run := func(b *testing.B, opt *btrblocks.Options) {
		b.SetBytes(int64(col.UncompressedBytes()))
		for i := 0; i < b.N; i++ {
			if _, err := btrblocks.CompressColumn(col, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, btrblocks.DefaultOptions()) })
	b.Run("on", func(b *testing.B) {
		rec := btrblocks.NewTelemetry()
		run(b, &btrblocks.Options{Telemetry: rec})
	})
}

// --- Per-scheme decode baseline (BENCH_decode.json feedstock) ---

// baselineIntData returns a 64k-value int column tailored so the forced
// scheme is genuinely exercised (runs for RLE, few distinct values for
// Dict, one dominant value for Frequency, narrow range for FastBP, narrow
// range plus outliers for FastPFOR).
func baselineIntData(code core.Code) []int32 {
	rng := rand.New(rand.NewSource(17))
	vals := make([]int32, 64000)
	switch code {
	case core.CodeRLE:
		v := int32(0)
		for i := range vals {
			if rng.Intn(40) == 0 {
				v = int32(rng.Intn(1000))
			}
			vals[i] = v
		}
	case core.CodeDict:
		for i := range vals {
			vals[i] = int32(rng.Intn(64)) * 1000003
		}
	case core.CodeFrequency:
		for i := range vals {
			if rng.Intn(20) == 0 {
				vals[i] = int32(rng.Intn(1 << 20))
			} else {
				vals[i] = 7777
			}
		}
	case core.CodeFastPFOR:
		for i := range vals {
			vals[i] = int32(rng.Intn(1 << 10))
			if rng.Intn(100) == 0 {
				vals[i] = int32(rng.Intn(1 << 28))
			}
		}
	default: // FastBP and friends: dense narrow range
		for i := range vals {
			vals[i] = int32(rng.Intn(1 << 12))
		}
	}
	return vals
}

// BenchmarkDecodeBaseline is the per-scheme, per-type single-core decode
// grid recorded in BENCH_decode.json: each sub-benchmark forces one root
// scheme onto data suited to it and measures decode throughput of the
// full cascade (MB/s of decoded output). `make bench-baseline` runs this
// plus the per-kernel microbenchmarks and snapshots the result;
// `make bench-compare` fails CI tier 2 on >10% regression.
func BenchmarkDecodeBaseline(b *testing.B) {
	cfg := core.DefaultConfig()

	for _, code := range []core.Code{core.CodeRLE, core.CodeDict, core.CodeFrequency, core.CodeFastBP, core.CodeFastPFOR} {
		vals := baselineIntData(code)
		enc := core.CompressIntAs(nil, vals, code, cfg)
		if enc == nil {
			b.Fatalf("int/%v: scheme not applicable to its benchmark data", code)
		}
		if got := core.Code(enc[0]); got != code {
			b.Fatalf("int/%v: stream root is %v", code, got)
		}
		b.Run(fmt.Sprintf("int/%v", code), func(b *testing.B) {
			out := make([]int32, 0, len(vals))
			b.SetBytes(int64(len(vals) * 4))
			for i := 0; i < b.N; i++ {
				var err error
				if out, _, err = core.DecompressInt(out[:0], enc, cfg); err != nil {
					b.Fatal(err)
				}
			}
			if len(out) != len(vals) {
				b.Fatalf("decoded %d values, want %d", len(out), len(vals))
			}
		})
	}

	for _, code := range []core.Code{core.CodeRLE, core.CodeDict, core.CodeFastBP} {
		base := baselineIntData(code)
		vals := make([]int64, len(base))
		for i, v := range base {
			vals[i] = int64(v) * 1000
		}
		c := *cfg
		c.IntSchemes = []core.Code{code}
		enc := core.CompressInt64(nil, vals, &c)
		if got := core.Code(enc[0]); got != code {
			b.Fatalf("int64/%v: stream root is %v", code, got)
		}
		b.Run(fmt.Sprintf("int64/%v", code), func(b *testing.B) {
			out := make([]int64, 0, len(vals))
			b.SetBytes(int64(len(vals) * 8))
			for i := 0; i < b.N; i++ {
				var err error
				if out, _, err = core.DecompressInt64(out[:0], enc, cfg); err != nil {
					b.Fatal(err)
				}
			}
			if len(out) != len(vals) {
				b.Fatalf("decoded %d values, want %d", len(out), len(vals))
			}
		})
	}

	doubleData := func(code core.Code) []float64 {
		rng := rand.New(rand.NewSource(18))
		vals := make([]float64, 64000)
		switch code {
		case core.CodeRLE:
			v := 0.0
			for i := range vals {
				if rng.Intn(40) == 0 {
					v = float64(rng.Intn(1000)) / 100
				}
				vals[i] = v
			}
		case core.CodeDict:
			for i := range vals {
				vals[i] = float64(rng.Intn(64)) * 1.5
			}
		default: // PDE: two-decimal prices
			for i := range vals {
				vals[i] = float64(rng.Intn(100000)) / 100
			}
		}
		return vals
	}
	for _, code := range []core.Code{core.CodeRLE, core.CodeDict, core.CodePDE} {
		vals := doubleData(code)
		enc := core.CompressDoubleAs(nil, vals, code, cfg)
		if enc == nil {
			b.Fatalf("double/%v: scheme not applicable to its benchmark data", code)
		}
		if got := core.Code(enc[0]); got != code {
			b.Fatalf("double/%v: stream root is %v", code, got)
		}
		b.Run(fmt.Sprintf("double/%v", code), func(b *testing.B) {
			out := make([]float64, 0, len(vals))
			b.SetBytes(int64(len(vals) * 8))
			for i := 0; i < b.N; i++ {
				var err error
				if out, _, err = core.DecompressDouble(out[:0], enc, cfg); err != nil {
					b.Fatal(err)
				}
			}
			if len(out) != len(vals) {
				b.Fatalf("decoded %d values, want %d", len(out), len(vals))
			}
		})
	}

	stringData := func(code core.Code) coldata.Strings {
		rng := rand.New(rand.NewSource(19))
		vals := make([]string, 16000)
		if code == core.CodeDict {
			cities := []string{"New York", "Los Angeles", "Chicago", "Houston", "Phoenix", "Philadelphia", "San Antonio", "Dallas"}
			for i := range vals {
				vals[i] = cities[rng.Intn(len(cities))]
			}
		} else {
			for i := range vals {
				vals[i] = fmt.Sprintf("http://api.host.internal/v2/users/%d/orders?page=%d", rng.Intn(4000), rng.Intn(9))
			}
		}
		return coldata.MakeStrings(vals)
	}
	for _, code := range []core.Code{core.CodeDict, core.CodeFSST} {
		vals := stringData(code)
		enc := core.CompressStringAs(nil, vals, code, cfg)
		if enc == nil {
			b.Fatalf("string/%v: scheme not applicable to its benchmark data", code)
		}
		if got := core.Code(enc[0]); got != code {
			b.Fatalf("string/%v: stream root is %v", code, got)
		}
		raw := len(vals.Data) + 4*vals.Len()
		b.Run(fmt.Sprintf("string/%v", code), func(b *testing.B) {
			b.SetBytes(int64(raw))
			for i := 0; i < b.N; i++ {
				views, _, err := core.DecompressString(enc, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if views.Len() != vals.Len() {
					b.Fatalf("decoded %d values, want %d", views.Len(), vals.Len())
				}
			}
		})
	}
}
