package btrblocks

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// mixedTraceColumn builds the golden trace input: three 1000-value
// segments with sharply different shapes, compressed at BlockSize 1000 so
// each lands in its own block — a one-value segment, a runs segment, and
// a uniques segment.
func mixedTraceColumn() Column {
	const seg = 1000
	values := make([]int32, 0, 3*seg)
	for i := 0; i < seg; i++ { // block 0: a single value
		values = append(values, 7)
	}
	for i := 0; i < seg; i++ { // block 1: runs of 100
		values = append(values, int32(i/100))
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < seg; i++ { // block 2: wide-range uniques
		values = append(values, rng.Int31())
	}
	return IntColumn("mixed", values)
}

// traceMixed compresses the golden column with a tracer attached and
// returns the trace next to the compression's own per-block stats.
func traceMixed(t *testing.T) (DecisionTrace, ColumnStats) {
	t.Helper()
	tracer := NewTracer()
	chunk := &Chunk{Columns: []Column{mixedTraceColumn()}}
	cc, err := CompressChunk(chunk, &Options{BlockSize: 1000, Trace: tracer})
	if err != nil {
		t.Fatal(err)
	}
	return tracer.Snapshot(), cc.Stats[0]
}

func TestTraceMixedColumnGolden(t *testing.T) {
	tr, st := traceMixed(t)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks) != 3 {
		t.Fatalf("%d block traces, want 3", len(tr.Blocks))
	}

	// Every traced winner must be the scheme the compression actually
	// wrote (read back from the block payloads).
	for i, bt := range tr.Blocks {
		if bt.Block != i || bt.Column != "mixed" || bt.Rows != 1000 {
			t.Fatalf("block %d identity: %+v", i, bt)
		}
		if got, want := bt.Root.Scheme, st.BlockSchemes[i].String(); got != want {
			t.Errorf("block %d: traced winner %s, compression chose %s", i, got, want)
		}
	}

	// Block 0 (one value): the OneValue fast path wins without trial
	// encodes — a single candidate, marked won.
	b0 := tr.Blocks[0]
	if b0.Root.Scheme != SchemeOneValue.String() {
		t.Errorf("one-value block: winner %s", b0.Root.Scheme)
	}
	if len(b0.Root.Candidates) != 1 || !b0.Root.Candidates[0].Won {
		t.Errorf("one-value block candidates: %+v", b0.Root.Candidates)
	}

	// Block 1 (runs of 100): RLE must win against at least the
	// Uncompressed baseline and the bit-packers, and its two sub-streams
	// (values, lengths) must show up as depth-1 children.
	b1 := tr.Blocks[1]
	if b1.Root.Scheme != SchemeRLE.String() {
		t.Errorf("runs block: winner %s", b1.Root.Scheme)
	}
	if len(b1.Root.Candidates) < 2 {
		t.Errorf("runs block: only %d candidates", len(b1.Root.Candidates))
	}
	assertOneWinner(t, "runs block", b1.Root.Candidates, b1.Root.Scheme)
	if len(b1.Root.Children) != 2 {
		t.Errorf("runs block: %d sub-streams, want 2 (values, lengths)", len(b1.Root.Children))
	}
	for _, c := range b1.Root.Children {
		if c.Depth != 1 {
			t.Errorf("runs block child depth %d", c.Depth)
		}
	}

	// Block 2 (wide-range uniques): every pool scheme gets trial-encoded
	// and the estimates are recorded; nothing can beat bit-packing by
	// much, but the full candidate slate is the point here.
	b2 := tr.Blocks[2]
	if len(b2.Root.Candidates) < 2 {
		t.Errorf("uniques block: only %d candidates", len(b2.Root.Candidates))
	}
	assertOneWinner(t, "uniques block", b2.Root.Candidates, b2.Root.Scheme)
	for _, c := range b2.Root.Candidates {
		if c.EstimatedRatio <= 0 {
			t.Errorf("uniques block: candidate %s estimate %g", c.Scheme, c.EstimatedRatio)
		}
	}
}

func assertOneWinner(t *testing.T, where string, cands []TraceCandidate, scheme string) {
	t.Helper()
	won := 0
	for _, c := range cands {
		if c.Won {
			won++
			if c.Scheme != scheme {
				t.Errorf("%s: candidate %s marked won, node scheme %s", where, c.Scheme, scheme)
			}
		}
	}
	if won != 1 {
		t.Errorf("%s: %d winners among %d candidates", where, won, len(cands))
	}
}

// normalizeTrace zeroes the wall-time fields, which legitimately differ
// between runs; everything else must be byte-identical.
func normalizeTrace(tr *DecisionTrace) {
	var walk func(n *TraceNode)
	walk = func(n *TraceNode) {
		n.PickNanos = 0
		for _, c := range n.Children {
			walk(c)
		}
	}
	for i := range tr.Blocks {
		tr.Blocks[i].CompressNanos = 0
		if tr.Blocks[i].Root != nil {
			walk(tr.Blocks[i].Root)
		}
	}
}

func TestTraceDeterministicAcrossRuns(t *testing.T) {
	a, _ := traceMixed(t)
	b, _ := traceMixed(t)
	normalizeTrace(&a)
	normalizeTrace(&b)
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("traces differ across runs:\n%s\n---\n%s", aj, bj)
	}
}

// TestTraceSharedSinkParallel drives many concurrent compressions into
// one Tracer — the data-race satellite for the compression side (run
// under -race in CI tier 2).
func TestTraceSharedSinkParallel(t *testing.T) {
	tracer := NewTracer()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			col := mixedTraceColumn()
			col.Name = fmt.Sprintf("col-%d", w)
			if _, err := CompressColumn(col, &Options{BlockSize: 1000, Trace: tracer}); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	tr := tracer.Snapshot()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks) != workers*3 {
		t.Fatalf("%d block traces, want %d", len(tr.Blocks), workers*3)
	}
	// Snapshot order is (column, block) regardless of recording order.
	for i := 1; i < len(tr.Blocks); i++ {
		a, b := tr.Blocks[i-1], tr.Blocks[i]
		if a.Column > b.Column || (a.Column == b.Column && a.Block >= b.Block) {
			t.Fatalf("snapshot out of order at %d: %s/%d before %s/%d",
				i, a.Column, a.Block, b.Column, b.Block)
		}
	}
}

// TestTraceDisabledIsDefault asserts the zero-overhead contract: no
// tracer on Options means the compression path records nothing and the
// nil receiver methods stay safe.
func TestTraceDisabledIsDefault(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Record(BlockTrace{}) // must not panic
	snap := tr.Snapshot()
	if len(snap.Blocks) != 0 || snap.Version != TraceVersion {
		t.Fatalf("nil snapshot: %+v", snap)
	}
}
