package btrblocks_test

import (
	"bytes"
	"fmt"
	"io"

	"btrblocks"
)

// ExampleCompressColumn round-trips one integer column through a column
// file.
func ExampleCompressColumn() {
	values := make([]int32, 10000)
	for i := range values {
		values[i] = int32(i / 100) // 100-value runs: an RLE-friendly column
	}
	col := btrblocks.IntColumn("sensor", values)

	data, err := btrblocks.CompressColumn(col, nil)
	if err != nil {
		panic(err)
	}
	got, err := btrblocks.DecompressColumn(data, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d rows -> %d bytes\n", got.Len(), len(data))
	fmt.Printf("round trip ok: %v\n", got.Ints[9999] == values[9999])
	// Output:
	// 10000 rows -> 154 bytes
	// round trip ok: true
}

// ExampleInspect parses a compressed file's layout without decompressing
// it.
func ExampleInspect() {
	values := make([]int32, 10000)
	for i := range values {
		values[i] = int32(i / 100)
	}
	data, err := btrblocks.CompressColumn(btrblocks.IntColumn("sensor", values), nil)
	if err != nil {
		panic(err)
	}

	info, err := btrblocks.Inspect(data)
	if err != nil {
		panic(err)
	}
	col := info.Columns[0]
	fmt.Printf("%s file, %d bytes, accounted %d\n", info.Kind, info.Size, info.AccountedBytes())
	fmt.Printf("column %q: %d rows in %d block(s)\n", col.Name, col.Rows, len(col.Blocks))
	fmt.Printf("root scheme: %s, cascade depth %d\n",
		col.Blocks[0].Data.Code, col.Blocks[0].Data.MaxDepth()+1)
	// Output:
	// column file, 154 bytes, accounted 154
	// column "sensor": 10000 rows in 1 block(s)
	// root scheme: RLE, cascade depth 3
}

// Example_stream writes two chunks into a framed stream and reads them
// back.
func Example_stream() {
	schema := []btrblocks.Column{
		btrblocks.IntColumn("id", nil),
		btrblocks.StringColumn("name", nil),
	}
	var buf bytes.Buffer
	w, err := btrblocks.NewWriter(&buf, schema, nil)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 2; i++ {
		chunk := &btrblocks.Chunk{Columns: []btrblocks.Column{
			btrblocks.IntColumn("id", []int32{1, 2, 3}),
			btrblocks.StringColumn("name", []string{"ada", "bob", "cyd"}),
		}}
		if err := w.WriteChunk(chunk); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}

	r, err := btrblocks.NewReader(&buf, nil)
	if err != nil {
		panic(err)
	}
	rows := 0
	for {
		chunk, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
		rows += chunk.NumRows()
	}
	fmt.Printf("%d chunks, %d rows, schema %s:%s\n",
		r.Chunks(), rows, r.Schema()[1].Name, r.Schema()[1].Type)
	// Output:
	// 2 chunks, 6 rows, schema name:string
}

// Example_telemetry records scheme-selection telemetry during
// compression.
func Example_telemetry() {
	values := make([]int32, 64000)
	for i := range values {
		values[i] = int32(i % 4)
	}
	opt := &btrblocks.Options{Telemetry: btrblocks.NewTelemetry()}
	if _, err := btrblocks.CompressColumn(btrblocks.IntColumn("flags", values), opt); err != nil {
		panic(err)
	}
	snap := opt.Telemetry.Snapshot()
	ev := snap.Events[0]
	fmt.Printf("%d block(s), root scheme %s\n", snap.Blocks, ev.Scheme)
	fmt.Printf("%d -> %d bytes\n", ev.InputBytes, ev.OutputBytes)
	// Output:
	// 1 block(s), root scheme FastBP
	// 256000 -> 16509 bytes
}
