// Package btrblocks is a pure-Go implementation of BtrBlocks (Kuschewski,
// Sauerwein, Alhomssi, Leis — SIGMOD 2023): an open columnar compression
// format for data lakes built from a pool of lightweight encoding schemes,
// a sampling-based scheme selection algorithm, and cascading compression.
//
// A column is compressed in independent blocks of (by default) 64,000
// values. For each block the library estimates the compression ratio of
// every viable scheme on a small sample (ten 64-value runs from
// non-overlapping parts of the block), compresses with the winner, and
// recursively applies the same machinery to the scheme's integer
// sub-streams up to a maximum cascade depth of three.
//
// The package compresses four column types: int32, int64 (timestamps and
// large keys), float64 (bit-exact, including NaN payloads and -0.0, via
// Pseudodecimal Encoding and friends) and variable-length strings
// (dictionary with optional FSST pool compression, or direct FSST). NULLs
// are tracked per block in Roaring bitmaps, orthogonally to value
// compression.
//
// Compressed files are self-describing: Inspect parses a column, chunk,
// or stream file into an exact byte-accounted layout tree without
// decompressing any payload, and Options.Telemetry records per-block
// scheme-selection telemetry during compression. FORMAT.md in the
// repository root specifies the binary format byte by byte.
package btrblocks

import (
	"btrblocks/coldata"
	"btrblocks/internal/core"
	"btrblocks/internal/roaring"
	"btrblocks/internal/sample"
)

// Type identifies a column's data type.
type Type uint8

// Column data types supported by the format.
const (
	TypeInt Type = iota
	TypeDouble
	TypeString
	TypeInt64
)

// maxType is the highest valid Type value, used by format validation.
const maxType = TypeInt64

// String returns the type name.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "integer"
	case TypeDouble:
		return "double"
	case TypeString:
		return "string"
	case TypeInt64:
		return "bigint"
	}
	return "invalid"
}

// Scheme identifies an encoding scheme (re-exported from the scheme
// framework so callers can inspect and restrict the pool).
type Scheme = core.Code

// Encoding schemes (Table 1 of the paper).
const (
	SchemeUncompressed = core.CodeUncompressed
	SchemeOneValue     = core.CodeOneValue
	SchemeRLE          = core.CodeRLE
	SchemeDict         = core.CodeDict
	SchemeFrequency    = core.CodeFrequency
	SchemeFastBP       = core.CodeFastBP
	SchemeFastPFOR     = core.CodeFastPFOR
	SchemePDE          = core.CodePDE
	SchemeFSST         = core.CodeFSST
)

// DefaultBlockSize is the number of values per compression block.
const DefaultBlockSize = 64000

// Options configures compression and decompression. The zero value gives
// the paper's defaults.
type Options struct {
	// BlockSize is the number of values per block (default 64,000).
	BlockSize int
	// MaxCascadeDepth bounds recursive scheme application (default 3).
	MaxCascadeDepth int
	// SampleRuns and SampleRunLen configure the estimation sample
	// (default 10 runs × 64 values = 1% of a default block).
	SampleRuns   int
	SampleRunLen int
	// ScalarDecode switches to the naive per-element decode kernels
	// (the §6.8 ablation).
	ScalarDecode bool
	// DisableFuseDictRLE turns off fused Dict+RLE decompression.
	DisableFuseDictRLE bool
	// IntSchemes/DoubleSchemes/StringSchemes restrict the scheme pool
	// per type; nil means all schemes.
	IntSchemes    []Scheme
	DoubleSchemes []Scheme
	StringSchemes []Scheme
	// Parallelism is the number of worker goroutines for whole-chunk
	// (de)compression; <= 0 means GOMAXPROCS.
	Parallelism int
	// FormatVersion selects the on-disk format version for newly written
	// files: 0 (the default) writes the current version (2, with per-block
	// and whole-file CRC32C checksums); 1 writes the legacy checksum-free
	// layout for consumers that predate the integrity layer. Reading
	// always accepts both versions.
	FormatVersion int
	// Seed makes sampling deterministic (default 42).
	Seed int64
	// Telemetry, when non-nil, records per-block compression telemetry
	// (chosen schemes per cascade level, estimated vs. actual ratios,
	// timings) and decode-side counters (blocks decompressed, values
	// produced, decode time). nil — the default — disables recording
	// entirely and adds no measurable overhead. The recorder is safe to
	// share across concurrent compressions and decompressions; read it
	// with Snapshot.
	Telemetry *Telemetry
	// Trace, when non-nil, records a full cascade decision trace per
	// compressed block: every candidate scheme the picker scored, its
	// sample-estimated ratio, the winner, and the cascade tree. Heavier
	// than Telemetry (it keeps per-candidate detail), meant for debugging
	// scheme selection rather than steady-state monitoring. nil disables
	// tracing with no overhead. Safe to share across concurrent
	// compressions; read it with Snapshot.
	Trace *Tracer
}

// DefaultOptions returns the paper's default configuration.
func DefaultOptions() *Options { return &Options{} }

func (o *Options) blockSize() int {
	if o == nil || o.BlockSize <= 0 {
		return DefaultBlockSize
	}
	return o.BlockSize
}

func (o *Options) coreConfig() *core.Config {
	cfg := core.DefaultConfig()
	if o == nil {
		return cfg
	}
	if o.MaxCascadeDepth > 0 {
		cfg.MaxCascadeDepth = o.MaxCascadeDepth
	}
	if o.SampleRuns > 0 && o.SampleRunLen > 0 {
		cfg.Sample = sample.Strategy{Runs: o.SampleRuns, RunLen: o.SampleRunLen}
	}
	cfg.ScalarDecode = o.ScalarDecode
	cfg.DisableFuseDictRLE = o.DisableFuseDictRLE
	cfg.IntSchemes = o.IntSchemes
	cfg.DoubleSchemes = o.DoubleSchemes
	cfg.StringSchemes = o.StringSchemes
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return cfg
}

// NullMask records which positions of a column block or chunk are NULL.
// The zero value (and nil) is an all-valid mask.
type NullMask struct {
	bm *roaring.Bitmap
}

// NewNullMask returns an empty (all-valid) mask.
func NewNullMask() *NullMask { return &NullMask{bm: roaring.New()} }

// SetNull marks position i as NULL.
func (m *NullMask) SetNull(i int) {
	if m.bm == nil {
		m.bm = roaring.New()
	}
	m.bm.Add(uint32(i))
}

// IsNull reports whether position i is NULL.
func (m *NullMask) IsNull(i int) bool {
	return m != nil && m.bm != nil && m.bm.Contains(uint32(i))
}

// NullCount returns the number of NULL positions.
func (m *NullMask) NullCount() int {
	if m == nil || m.bm == nil {
		return 0
	}
	return m.bm.Cardinality()
}

// ForEachNull calls f with every NULL position in ascending order.
func (m *NullMask) ForEachNull(f func(i int) bool) {
	if m == nil || m.bm == nil {
		return
	}
	m.bm.ForEach(func(v uint32) bool { return f(int(v)) })
}

// slice returns the positions in [lo, hi) rebased to zero, or nil if none.
func (m *NullMask) slice(lo, hi int) *roaring.Bitmap {
	if m == nil || m.bm == nil {
		return nil
	}
	out := roaring.New()
	any := false
	m.bm.ForEach(func(v uint32) bool {
		if int(v) >= hi {
			return false
		}
		if int(v) >= lo {
			out.Add(v - uint32(lo))
			any = true
		}
		return true
	})
	if !any {
		return nil
	}
	out.RunOptimize()
	return out
}

// Column is one typed column of a chunk: a name, a type, the value
// vector matching that type, and an optional NULL mask. Values at NULL
// positions are stored and round-tripped but their content is
// unspecified; the compressor may rewrite them to improve compression.
type Column struct {
	Name    string
	Type    Type
	Ints    []int32
	Ints64  []int64
	Doubles []float64
	Strings coldata.Strings
	Nulls   *NullMask
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	switch c.Type {
	case TypeInt:
		return len(c.Ints)
	case TypeInt64:
		return len(c.Ints64)
	case TypeDouble:
		return len(c.Doubles)
	case TypeString:
		return c.Strings.Len()
	}
	return 0
}

// UncompressedBytes returns the in-memory binary size of the column: four
// bytes per integer, eight per double, and payload plus a 32-bit offset
// per string — the same accounting the paper's "Uncompressed" rows use.
func (c *Column) UncompressedBytes() int {
	switch c.Type {
	case TypeInt:
		return 4 * len(c.Ints)
	case TypeInt64:
		return 8 * len(c.Ints64)
	case TypeDouble:
		return 8 * len(c.Doubles)
	case TypeString:
		return c.Strings.TotalBytes()
	}
	return 0
}

// IntColumn builds an integer column.
func IntColumn(name string, values []int32) Column {
	return Column{Name: name, Type: TypeInt, Ints: values}
}

// Int64Column builds a 64-bit integer column (timestamps, large keys).
func Int64Column(name string, values []int64) Column {
	return Column{Name: name, Type: TypeInt64, Ints64: values}
}

// DoubleColumn builds a double column.
func DoubleColumn(name string, values []float64) Column {
	return Column{Name: name, Type: TypeDouble, Doubles: values}
}

// StringColumn builds a string column from Go strings.
func StringColumn(name string, values []string) Column {
	return Column{Name: name, Type: TypeString, Strings: coldata.MakeStrings(values)}
}

// StringsColumn builds a string column from an already-flattened vector.
func StringsColumn(name string, values coldata.Strings) Column {
	return Column{Name: name, Type: TypeString, Strings: values}
}

// Chunk is a horizontal slice of a relation: a set of equal-length
// columns.
type Chunk struct {
	Columns []Column
}

// NumRows returns the row count (0 for an empty chunk).
func (c *Chunk) NumRows() int {
	if len(c.Columns) == 0 {
		return 0
	}
	return c.Columns[0].Len()
}

// UncompressedBytes sums the uncompressed sizes of all columns.
func (c *Chunk) UncompressedBytes() int {
	total := 0
	for i := range c.Columns {
		total += c.Columns[i].UncompressedBytes()
	}
	return total
}
