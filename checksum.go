package btrblocks

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// This file holds the integrity primitives of format version 2: every
// block of a column file is followed by a CRC32C (Castagnoli) of its
// encoded bytes, and every container — column file, chunk file, stream —
// ends with a CRC32C of everything before it. Version-1 files carry no
// checksums and keep reading unchanged; see FORMAT.md for the exact
// layout and compatibility rules.

// Sentinel errors of the integrity layer. Both wrap ErrCorrupt, so
// errors.Is(err, ErrCorrupt) keeps matching existing handling while
// errors.Is(err, ErrChecksumMismatch) / errors.Is(err, ErrTruncatedFile)
// distinguish the failure mode.
var (
	// ErrChecksumMismatch is returned when a stored CRC32C does not match
	// the bytes it covers: the data was altered after it was written.
	ErrChecksumMismatch = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	// ErrTruncatedFile is returned when a declared length points past the
	// end of the available bytes: the file was cut short.
	ErrTruncatedFile = fmt.Errorf("%w: truncated", ErrCorrupt)
)

// crcBytes is the serialized size of one CRC32C value.
const crcBytes = 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crc32c returns the CRC32C (Castagnoli) checksum of data.
func crc32c(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// appendCRC32C appends the little-endian CRC32C of everything already in
// out — the file-footer convention of format v2.
func appendCRC32C(out []byte) []byte {
	return binary.LittleEndian.AppendUint32(out, crc32c(out))
}

// verifyTrailingCRC checks that the last four bytes of data hold the
// CRC32C of everything before them. what names the container for the
// error message.
func verifyTrailingCRC(data []byte, what string) error {
	if len(data) < crcBytes {
		return fmt.Errorf("%w: %s shorter than its checksum", ErrTruncatedFile, what)
	}
	body := data[:len(data)-crcBytes]
	stored := binary.LittleEndian.Uint32(data[len(body):])
	if got := crc32c(body); got != stored {
		return fmt.Errorf("%w: %s checksum %08x, stored %08x", ErrChecksumMismatch, what, got, stored)
	}
	return nil
}

// supportedVersion reports whether the decoder understands format
// version v.
func supportedVersion(v byte) bool {
	return v == formatVersion1 || v == formatVersion2
}

// checksummedVersion reports whether format version v carries block and
// file checksums.
func checksummedVersion(v byte) bool { return v >= formatVersion2 }

// formatVersionOf validates the Options.FormatVersion knob and resolves
// the version byte new files are written with.
func (o *Options) formatVersionOf() (byte, error) {
	if o == nil || o.FormatVersion == 0 {
		return formatVersion, nil
	}
	if o.FormatVersion < 0 || o.FormatVersion > formatVersion {
		return 0, fmt.Errorf("btrblocks: unsupported format version %d", o.FormatVersion)
	}
	return byte(o.FormatVersion), nil
}
