package btrblocks

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInt64ColumnRoundTrip(t *testing.T) {
	opt := DefaultOptions()
	rng := rand.New(rand.NewSource(1))
	base := int64(1_700_000_000_000) // epoch milliseconds
	values := make([]int64, 150000)  // multiple blocks
	for i := range values {
		values[i] = base + int64(i)*1000 + int64(rng.Intn(999))
	}
	col := Int64Column("event_time", values)
	data, err := CompressColumn(col, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(col.UncompressedBytes()) / float64(len(data)); ratio < 1.5 {
		t.Fatalf("timestamps compressed only %.2fx", ratio)
	}
	got, err := DecompressColumn(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeInt64 || got.Len() != len(values) {
		t.Fatalf("shape: %v %d", got.Type, got.Len())
	}
	for i := range values {
		if got.Ints64[i] != values[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
	if ft, err := ColumnFileType(data); err != nil || ft != TypeInt64 {
		t.Fatalf("ColumnFileType = %v, %v", ft, err)
	}
}

func TestInt64NullsAndCountEqual(t *testing.T) {
	opt := DefaultOptions()
	n := 20000
	values := make([]int64, n)
	nulls := NewNullMask()
	for i := range values {
		values[i] = 7_000_000_000
		if i%4 == 0 {
			nulls.SetNull(i)
			values[i] = 999 // garbage replaced by densification
		}
	}
	col := Int64Column("x", values)
	col.Nulls = nulls
	data, err := CompressColumn(col, opt)
	if err != nil {
		t.Fatal(err)
	}
	count, err := CountEqualInt64(data, 7_000_000_000, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range values {
		if !nulls.IsNull(i) && values[i] == 7_000_000_000 {
			want++
		}
	}
	if count != want {
		t.Fatalf("count = %d, want %d", count, want)
	}
	if count, _ := CountEqualInt64(data, 999, opt); count != 0 {
		t.Fatalf("null garbage counted %d times", count)
	}
	// type mismatch
	if _, err := CountEqualInt64(mustCompress(t, IntColumn("i", []int32{1})), 1, opt); err != ErrTypeMismatch {
		t.Fatalf("err = %v", err)
	}
}

func TestInt64ChunkAndStream(t *testing.T) {
	opt := &Options{BlockSize: 2000}
	values := make([]int64, 9000)
	for i := range values {
		values[i] = int64(i) << 33
	}
	chunk := &Chunk{Columns: []Column{
		Int64Column("big", values),
		IntColumn("small", make([]int32, 9000)),
	}}
	cc, err := CompressChunk(chunk, opt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressChunk(cc, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if back.Columns[0].Ints64[i] != values[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
	if back.Columns[0].Type.String() != "bigint" {
		t.Fatalf("type name = %s", back.Columns[0].Type)
	}
}

func TestInt64Choose(t *testing.T) {
	opt := DefaultOptions()
	same := make([]int64, 10000)
	scheme, _ := Choose(Int64Column("c", same), opt)
	if scheme != SchemeOneValue {
		t.Fatalf("scheme = %v", scheme)
	}
}

func TestInt64Quick(t *testing.T) {
	opt := &Options{BlockSize: 300}
	f := func(values []int64) bool {
		col := Int64Column("q", values)
		data, err := CompressColumn(col, opt)
		if err != nil {
			return false
		}
		got, err := DecompressColumn(data, opt)
		if err != nil || got.Len() != len(values) {
			return false
		}
		for i := range values {
			if got.Ints64[i] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestInt64ExtremesBitExact(t *testing.T) {
	opt := DefaultOptions()
	values := []int64{math.MinInt64, math.MaxInt64, 0, -1, 1, math.MinInt64 + 1}
	data, err := CompressColumn(Int64Column("e", values), opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressColumn(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if got.Ints64[i] != values[i] {
			t.Fatalf("value %d: %d != %d", i, got.Ints64[i], values[i])
		}
	}
}
