package btrblocks

import (
	"encoding/binary"
	"fmt"
	"time"

	"btrblocks/coldata"
	"btrblocks/internal/core"
	"btrblocks/internal/roaring"
)

// This file exposes block-granular access to column files. A ColumnIndex
// is built from the file's headers alone — no payload is decompressed —
// and locates every block so callers can decode, cache and serve blocks
// independently. This is what a networked block server needs: random
// access at block granularity over the one-file-per-column S3 layout of
// §6.7, without materializing whole columns.

// BlockRef locates one block inside a column file without decoding it.
// All offsets are relative to the start of the file.
type BlockRef struct {
	// Offset is the byte offset of the block header (rows:u32 nullLen:u32).
	Offset int
	// StartRow is the block's first row within the column.
	StartRow int
	// Rows is the number of values in the block.
	Rows int
	// NullBytes is the encoded NULL bitmap size (0 = block has no NULLs).
	NullBytes int
	// DataBytes is the compressed data stream size.
	DataBytes int
	// Scheme is the block's root encoding scheme.
	Scheme Scheme
}

// NullOffset returns the offset of the block's NULL bitmap (meaningless
// when NullBytes is 0).
func (b BlockRef) NullOffset() int { return b.Offset + 8 }

// DataOffset returns the offset of the block's compressed data stream.
func (b BlockRef) DataOffset() int { return b.Offset + 8 + b.NullBytes + 4 }

// End returns the offset one past the block's last byte.
func (b BlockRef) End() int { return b.DataOffset() + b.DataBytes }

// CompressedBytes returns the block's total on-disk footprint: header,
// NULL bitmap and data stream.
func (b BlockRef) CompressedBytes() int { return b.End() - b.Offset }

// ColumnIndex is the parsed block directory of a column file.
type ColumnIndex struct {
	Name string
	Type Type
	// Rows is the column's total row count (sum over blocks).
	Rows int
	// Blocks lists the column's blocks in order.
	Blocks []BlockRef
}

// ParseColumnIndex walks a column file's framing and returns its block
// directory without decompressing any payload. Like Inspect, it verifies
// that the framing accounts for every byte of the file.
func ParseColumnIndex(data []byte) (*ColumnIndex, error) {
	if len(data) < 12 || string(data[:4]) != columnMagic || data[4] != formatVersion {
		return nil, ErrCorrupt
	}
	t := Type(data[5])
	if t > maxType {
		return nil, ErrCorrupt
	}
	nameLen := int(binary.LittleEndian.Uint16(data[6:]))
	pos := 8
	if len(data) < pos+nameLen+4 {
		return nil, ErrCorrupt
	}
	ix := &ColumnIndex{Name: string(data[pos : pos+nameLen]), Type: t}
	pos += nameLen
	blockCount := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if blockCount < 0 || blockCount > len(data) {
		return nil, ErrCorrupt
	}
	ix.Blocks = make([]BlockRef, 0, blockCount)
	for b := 0; b < blockCount; b++ {
		if len(data) < pos+8 {
			return nil, ErrCorrupt
		}
		rows := int(binary.LittleEndian.Uint32(data[pos:]))
		nullLen := int(binary.LittleEndian.Uint32(data[pos+4:]))
		if rows > core.MaxBlockValues || nullLen < 0 || len(data) < pos+8+nullLen+4 {
			return nil, ErrCorrupt
		}
		ref := BlockRef{Offset: pos, StartRow: ix.Rows, Rows: rows, NullBytes: nullLen}
		ref.DataBytes = int(binary.LittleEndian.Uint32(data[pos+8+nullLen:]))
		if ref.DataBytes < 0 || ref.End() > len(data) {
			return nil, ErrCorrupt
		}
		if ref.DataBytes > 0 {
			ref.Scheme = Scheme(data[ref.DataOffset()])
		}
		ix.Blocks = append(ix.Blocks, ref)
		ix.Rows += rows
		pos = ref.End()
	}
	if pos != len(data) {
		return nil, ErrCorrupt
	}
	return ix, nil
}

// DecompressBlock decodes block b of the column file the index was parsed
// from, returning it as a standalone Column whose NULL mask is rebased to
// the block (position 0 is the block's first row). String blocks are
// materialized into an owned vector, so the result does not alias data.
// When opt.Telemetry is set, the decode is counted on the recorder.
func (ix *ColumnIndex) DecompressBlock(data []byte, b int, opt *Options) (Column, error) {
	if b < 0 || b >= len(ix.Blocks) {
		return Column{}, fmt.Errorf("btrblocks: block %d out of range [0,%d)", b, len(ix.Blocks))
	}
	ref := ix.Blocks[b]
	if ref.End() > len(data) {
		return Column{}, ErrCorrupt
	}
	col := Column{Name: ix.Name, Type: ix.Type}
	if ref.NullBytes > 0 {
		bm, used, err := roaring.FromBytes(data[ref.NullOffset() : ref.NullOffset()+ref.NullBytes])
		if err != nil || used != ref.NullBytes {
			return Column{}, ErrCorrupt
		}
		col.Nulls = NewNullMask()
		ok := true
		bm.ForEach(func(v uint32) bool {
			if int(v) >= ref.Rows {
				ok = false
				return false
			}
			col.Nulls.SetNull(int(v))
			return true
		})
		if !ok {
			return Column{}, ErrCorrupt
		}
	}
	cfg := opt.coreConfig()
	cfg.MaxDecodedValues = ref.Rows
	stream := data[ref.DataOffset():ref.End()]
	rec := opt.telemetryRecorder()
	var start time.Time
	if rec != nil {
		start = time.Now()
	}
	var used int
	var err error
	switch ix.Type {
	case TypeInt:
		col.Ints, used, err = core.DecompressInt(nil, stream, cfg)
		if err == nil && len(col.Ints) != ref.Rows {
			err = ErrCorrupt
		}
	case TypeInt64:
		col.Ints64, used, err = core.DecompressInt64(nil, stream, cfg)
		if err == nil && len(col.Ints64) != ref.Rows {
			err = ErrCorrupt
		}
	case TypeDouble:
		col.Doubles, used, err = core.DecompressDouble(nil, stream, cfg)
		if err == nil && len(col.Doubles) != ref.Rows {
			err = ErrCorrupt
		}
	case TypeString:
		var views coldata.StringViews
		views, used, err = core.DecompressString(stream, cfg)
		if err == nil && views.Len() != ref.Rows {
			err = ErrCorrupt
		}
		if err == nil {
			col.Strings = views.Materialize()
		}
	}
	if err != nil {
		return Column{}, err
	}
	if used != ref.DataBytes {
		return Column{}, ErrCorrupt
	}
	if rec != nil {
		rec.RecordDecode(1, ref.Rows, ref.DataBytes, time.Since(start).Nanoseconds())
	}
	return col, nil
}
