package btrblocks

import (
	"encoding/binary"
	"fmt"

	"btrblocks/internal/core"
)

// This file exposes block-granular access to column files. A ColumnIndex
// is built from the file's headers alone — no payload is decompressed —
// and locates every block so callers can decode, cache and serve blocks
// independently. This is what a networked block server needs: random
// access at block granularity over the one-file-per-column S3 layout of
// §6.7, without materializing whole columns.

// BlockRef locates one block inside a column file without decoding it.
// All offsets are relative to the start of the file.
type BlockRef struct {
	// Offset is the byte offset of the block header (rows:u32 nullLen:u32).
	Offset int
	// StartRow is the block's first row within the column.
	StartRow int
	// Rows is the number of values in the block.
	Rows int
	// NullBytes is the encoded NULL bitmap size (0 = block has no NULLs).
	NullBytes int
	// DataBytes is the compressed data stream size.
	DataBytes int
	// Scheme is the block's root encoding scheme.
	Scheme Scheme
	// Checksum is the stored CRC32C over the block's bytes (header, NULL
	// bitmap and data stream). Zero and meaningless for v1 files — check
	// ColumnIndex.Checksummed.
	Checksum uint32
}

// NullOffset returns the offset of the block's NULL bitmap (meaningless
// when NullBytes is 0).
func (b BlockRef) NullOffset() int { return b.Offset + 8 }

// DataOffset returns the offset of the block's compressed data stream.
func (b BlockRef) DataOffset() int { return b.Offset + 8 + b.NullBytes + 4 }

// End returns the offset one past the block's last byte.
func (b BlockRef) End() int { return b.DataOffset() + b.DataBytes }

// CompressedBytes returns the block's total on-disk footprint: header,
// NULL bitmap and data stream.
func (b BlockRef) CompressedBytes() int { return b.End() - b.Offset }

// ColumnIndex is the parsed block directory of a column file.
type ColumnIndex struct {
	Name string
	Type Type
	// Version is the file's format version (1 = legacy, 2 = checksummed).
	Version int
	// Rows is the column's total row count (sum over blocks).
	Rows int
	// Blocks lists the column's blocks in order.
	Blocks []BlockRef
}

// Checksummed reports whether the file carries per-block and whole-file
// CRC32C checksums (format v2).
func (ix *ColumnIndex) Checksummed() bool { return checksummedVersion(byte(ix.Version)) }

// VerifyBlock recomputes block b's CRC32C over data — the same buffer the
// index was parsed from — and compares it against the stored checksum.
// It returns nil for v1 files (nothing to verify) and an error wrapping
// ErrChecksumMismatch when the block's bytes no longer match.
func (ix *ColumnIndex) VerifyBlock(data []byte, b int) error {
	if !ix.Checksummed() {
		return nil
	}
	if b < 0 || b >= len(ix.Blocks) {
		return fmt.Errorf("btrblocks: block %d out of range [0,%d)", b, len(ix.Blocks))
	}
	ref := ix.Blocks[b]
	if ref.End() > len(data) {
		return ErrTruncatedFile
	}
	if got := crc32c(data[ref.Offset:ref.End()]); got != ref.Checksum {
		return fmt.Errorf("%w: column %q block %d: computed %08x, stored %08x",
			ErrChecksumMismatch, ix.Name, b, got, ref.Checksum)
	}
	return nil
}

// VerifyFile verifies every block checksum and the whole-file checksum of
// the column file the index was parsed from. Nil for v1 files.
func (ix *ColumnIndex) VerifyFile(data []byte) error {
	if !ix.Checksummed() {
		return nil
	}
	for b := range ix.Blocks {
		if err := ix.VerifyBlock(data, b); err != nil {
			return err
		}
	}
	return verifyTrailingCRC(data, "column file")
}

// ParseColumnIndex walks a column file's framing and returns its block
// directory without decompressing any payload. Like Inspect, it verifies
// that the framing accounts for every byte of the file.
func ParseColumnIndex(data []byte) (*ColumnIndex, error) {
	if len(data) < 12 || string(data[:4]) != columnMagic {
		return nil, ErrCorrupt
	}
	if !supportedVersion(data[4]) {
		return nil, fmt.Errorf("btrblocks: unsupported column file version %d", data[4])
	}
	t := Type(data[5])
	if t > maxType {
		return nil, ErrCorrupt
	}
	checksummed := checksummedVersion(data[4])
	bodyEnd := len(data)
	if checksummed {
		if len(data) < 12+crcBytes {
			return nil, ErrTruncatedFile
		}
		bodyEnd -= crcBytes
	}
	nameLen := int(binary.LittleEndian.Uint16(data[6:]))
	pos := 8
	if bodyEnd < pos+nameLen+4 {
		return nil, ErrTruncatedFile
	}
	ix := &ColumnIndex{Name: string(data[pos : pos+nameLen]), Type: t, Version: int(data[4])}
	pos += nameLen
	blockCount := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if blockCount < 0 || blockCount > len(data) {
		return nil, ErrCorrupt
	}
	// Cap the pre-allocation: every block needs ≥ 12 bytes of framing, so a
	// declared count beyond len(data)/12 is a lie and would over-allocate.
	prealloc := blockCount
	if max := len(data) / 12; prealloc > max {
		prealloc = max
	}
	ix.Blocks = make([]BlockRef, 0, prealloc)
	for b := 0; b < blockCount; b++ {
		if bodyEnd < pos+8 {
			return nil, ErrTruncatedFile
		}
		rows := int(binary.LittleEndian.Uint32(data[pos:]))
		nullLen := int(binary.LittleEndian.Uint32(data[pos+4:]))
		if rows > core.MaxBlockValues || nullLen < 0 || bodyEnd < pos+8+nullLen+4 {
			return nil, ErrCorrupt
		}
		ref := BlockRef{Offset: pos, StartRow: ix.Rows, Rows: rows, NullBytes: nullLen}
		ref.DataBytes = int(binary.LittleEndian.Uint32(data[pos+8+nullLen:]))
		if ref.DataBytes < 0 || ref.End() > bodyEnd {
			return nil, ErrCorrupt
		}
		if ref.DataBytes > 0 {
			ref.Scheme = Scheme(data[ref.DataOffset()])
		}
		pos = ref.End()
		if checksummed {
			if pos+crcBytes > bodyEnd {
				return nil, ErrTruncatedFile
			}
			ref.Checksum = binary.LittleEndian.Uint32(data[pos:])
			pos += crcBytes
		}
		ix.Blocks = append(ix.Blocks, ref)
		ix.Rows += rows
	}
	if pos != bodyEnd {
		return nil, ErrCorrupt
	}
	return ix, nil
}

// DecompressBlock decodes block b of the column file the index was parsed
// from, returning it as a standalone Column whose NULL mask is rebased to
// the block (position 0 is the block's first row). String blocks are
// materialized into an owned vector, so the result does not alias data.
// When opt.Telemetry is set, the decode is counted on the recorder.
func (ix *ColumnIndex) DecompressBlock(data []byte, b int, opt *Options) (Column, error) {
	if b < 0 || b >= len(ix.Blocks) {
		return Column{}, fmt.Errorf("btrblocks: block %d out of range [0,%d)", b, len(ix.Blocks))
	}
	bv, err := decodeBlockVectors(ix, data, b, opt.coreConfig(), nil, opt.telemetryRecorder())
	if err != nil {
		return Column{}, err
	}
	col := Column{
		Name:    ix.Name,
		Type:    ix.Type,
		Ints:    bv.ints,
		Ints64:  bv.ints64,
		Doubles: bv.doubles,
	}
	if ix.Type == TypeString {
		col.Strings = bv.views.Materialize()
	}
	if bv.nulls != nil {
		col.Nulls = NewNullMask()
		bv.nulls.ForEach(func(v uint32) bool {
			col.Nulls.SetNull(int(v))
			return true
		})
	}
	return col, nil
}
