package btrblocks

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"btrblocks/coldata"
	"btrblocks/internal/core"
)

// Native fuzz targets. `go test` runs them on the seed corpus; run
// `go test -fuzz=FuzzDecompressColumn` (etc.) for continuous fuzzing.

func FuzzDecompressColumn(f *testing.F) {
	opt := DefaultOptions()
	seed1, _ := CompressColumn(IntColumn("i", []int32{1, 1, 2, 3, 3, 3}), opt)
	seed2, _ := CompressColumn(DoubleColumn("d", []float64{3.25, 0.99, math.NaN()}), opt)
	seed3, _ := CompressColumn(StringColumn("s", []string{"a", "bb", "a", "bb", "ccc"}), opt)
	f.Add(seed1)
	f.Add(seed2)
	f.Add(seed3)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// must never panic; errors are fine
		_, _ = DecompressColumn(data, opt)
		_, _, _ = DecompressStringViews(data, opt)
		_, _ = CountEqualInt32(data, 1, opt)
		_, _ = CountEqualDouble(data, 0.99, opt)
		_, _ = CountEqualString(data, "a", opt)
	})
}

func FuzzDecompressIntStream(f *testing.F) {
	cfg := core.DefaultConfig()
	f.Add(core.CompressInt(nil, []int32{5, 5, 5, 900, -1}, cfg))
	f.Add(core.CompressInt(nil, make([]int32, 1000), cfg))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = core.DecompressInt(nil, data, cfg)
	})
}

func FuzzDecompressStringStream(f *testing.F) {
	cfg := core.DefaultConfig()
	f.Add(core.CompressString(nil, coldata.MakeStrings([]string{"x", "x", "yz"}), cfg))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = core.DecompressString(data, cfg)
	})
}

func FuzzCompressIntRoundTrip(f *testing.F) {
	cfg := core.DefaultConfig()
	f.Add([]byte{1, 2, 3, 4, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		src := make([]int32, len(raw)/4)
		for i := range src {
			src[i] = int32(raw[4*i]) | int32(raw[4*i+1])<<8 | int32(raw[4*i+2])<<16 | int32(raw[4*i+3])<<24
		}
		enc := core.CompressInt(nil, src, cfg)
		dec, used, err := core.DecompressInt(nil, enc, cfg)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if used != len(enc) || len(dec) != len(src) {
			t.Fatalf("shape mismatch: used %d/%d, n %d/%d", used, len(enc), len(dec), len(src))
		}
		for i := range src {
			if dec[i] != src[i] {
				t.Fatalf("value %d mismatch", i)
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpora under
// testdata/fuzz/ when WRITE_FUZZ_CORPUS=1 is set. The corpora give the
// fuzzers structurally valid starting points (both format versions,
// every column type, damaged and truncated variants) so short CI fuzz
// budgets spend their time mutating deep states instead of rediscovering
// the magic bytes. Without the env var this test is a no-op, so plain
// `go test` never rewrites testdata.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz seed corpora")
	}
	write := func(target, name string, data []byte) {
		t.Helper()
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	corrupt := func(data []byte, off int) []byte {
		bad := append([]byte(nil), data...)
		bad[off%len(bad)] ^= 0xA5
		return bad
	}

	v2 := DefaultOptions()
	v2.BlockSize = 2000
	v1 := DefaultOptions()
	v1.BlockSize = 2000
	v1.FormatVersion = 1

	cols := chaosColumns(5000, 7)
	for _, col := range cols {
		d2, err := CompressColumn(col, v2)
		if err != nil {
			t.Fatal(err)
		}
		d1, err := CompressColumn(col, v1)
		if err != nil {
			t.Fatal(err)
		}
		write("FuzzDecompressColumn", "v2_"+col.Name, d2)
		write("FuzzDecompressColumn", "v1_"+col.Name, d1)
		write("FuzzDecompressColumn", "v2_"+col.Name+"_flip", corrupt(d2, len(d2)/2))
		write("FuzzDecompressColumn", "v2_"+col.Name+"_trunc", d2[:len(d2)*3/4])
	}

	cfg := core.DefaultConfig()
	write("FuzzDecompressIntStream", "rle", core.CompressInt(nil, []int32{5, 5, 5, 5, 900, -1, -1}, cfg))
	write("FuzzDecompressIntStream", "zeros", core.CompressInt(nil, make([]int32, 4000), cfg))
	ramp := make([]int32, 3000)
	for i := range ramp {
		ramp[i] = int32(i * 3)
	}
	write("FuzzDecompressIntStream", "ramp", core.CompressInt(nil, ramp, cfg))
	write("FuzzDecompressStringStream", "dict",
		core.CompressString(nil, coldata.MakeStrings([]string{"x", "x", "yz", "x", "longer-value", "yz"}), cfg))
	write("FuzzCompressIntRoundTrip", "mixed", []byte{1, 2, 3, 4, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F})

	streamFor := func(opt *Options) []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, []Column{
			{Name: "i", Type: TypeInt}, {Name: "d", Type: TypeDouble},
		}, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := w.WriteChunk(&Chunk{Columns: []Column{cols[0], cols[2]}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	s2 := streamFor(v2)
	write("FuzzStreamReader", "v2_stream", s2)
	write("FuzzStreamReader", "v1_stream", streamFor(v1))
	write("FuzzStreamReader", "v2_stream_flip", corrupt(s2, len(s2)/3))
	write("FuzzStreamReader", "v2_stream_trunc", s2[:len(s2)/2])
}

func FuzzStreamReader(f *testing.F) {
	opt := DefaultOptions()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []Column{{Name: "id", Type: TypeInt}}, opt)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.WriteChunk(&Chunk{Columns: []Column{IntColumn("id", []int32{1, 2, 2})}}); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), opt)
		if err != nil {
			return
		}
		for i := 0; i < 100; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}
