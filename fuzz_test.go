package btrblocks

import (
	"bytes"
	"math"
	"testing"

	"btrblocks/coldata"
	"btrblocks/internal/core"
)

// Native fuzz targets. `go test` runs them on the seed corpus; run
// `go test -fuzz=FuzzDecompressColumn` (etc.) for continuous fuzzing.

func FuzzDecompressColumn(f *testing.F) {
	opt := DefaultOptions()
	seed1, _ := CompressColumn(IntColumn("i", []int32{1, 1, 2, 3, 3, 3}), opt)
	seed2, _ := CompressColumn(DoubleColumn("d", []float64{3.25, 0.99, math.NaN()}), opt)
	seed3, _ := CompressColumn(StringColumn("s", []string{"a", "bb", "a", "bb", "ccc"}), opt)
	f.Add(seed1)
	f.Add(seed2)
	f.Add(seed3)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// must never panic; errors are fine
		_, _ = DecompressColumn(data, opt)
		_, _, _ = DecompressStringViews(data, opt)
		_, _ = CountEqualInt32(data, 1, opt)
		_, _ = CountEqualDouble(data, 0.99, opt)
		_, _ = CountEqualString(data, "a", opt)
	})
}

func FuzzDecompressIntStream(f *testing.F) {
	cfg := core.DefaultConfig()
	f.Add(core.CompressInt(nil, []int32{5, 5, 5, 900, -1}, cfg))
	f.Add(core.CompressInt(nil, make([]int32, 1000), cfg))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = core.DecompressInt(nil, data, cfg)
	})
}

func FuzzDecompressStringStream(f *testing.F) {
	cfg := core.DefaultConfig()
	f.Add(core.CompressString(nil, coldata.MakeStrings([]string{"x", "x", "yz"}), cfg))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = core.DecompressString(data, cfg)
	})
}

func FuzzCompressIntRoundTrip(f *testing.F) {
	cfg := core.DefaultConfig()
	f.Add([]byte{1, 2, 3, 4, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		src := make([]int32, len(raw)/4)
		for i := range src {
			src[i] = int32(raw[4*i]) | int32(raw[4*i+1])<<8 | int32(raw[4*i+2])<<16 | int32(raw[4*i+3])<<24
		}
		enc := core.CompressInt(nil, src, cfg)
		dec, used, err := core.DecompressInt(nil, enc, cfg)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if used != len(enc) || len(dec) != len(src) {
			t.Fatalf("shape mismatch: used %d/%d, n %d/%d", used, len(enc), len(dec), len(src))
		}
		for i := range src {
			if dec[i] != src[i] {
				t.Fatalf("value %d mismatch", i)
			}
		}
	})
}

func FuzzStreamReader(f *testing.F) {
	opt := DefaultOptions()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []Column{{Name: "id", Type: TypeInt}}, opt)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.WriteChunk(&Chunk{Columns: []Column{IntColumn("id", []int32{1, 2, 2})}}); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), opt)
		if err != nil {
			return
		}
		for i := 0; i < 100; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}
