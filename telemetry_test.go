package btrblocks

import (
	"bytes"
	"strings"
	"testing"
)

func TestTelemetryRecordsBlocks(t *testing.T) {
	rec := NewTelemetry()
	opt := &Options{Telemetry: rec}
	chunk := makeTestChunk(150000, 11)
	col := chunk.Columns[0]
	data, err := CompressColumn(col, opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if snap.Blocks != 3 {
		t.Fatalf("recorded %d blocks", snap.Blocks)
	}
	if snap.InputBytes != int64(col.UncompressedBytes()) {
		t.Fatalf("input bytes %d, column is %d", snap.InputBytes, col.UncompressedBytes())
	}
	if snap.Ratio() <= 1 {
		t.Fatalf("ratio %.2f", snap.Ratio())
	}

	// The recorded root schemes must agree with what's in the file.
	info, err := Inspect(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range snap.Events {
		if ev.Column != col.Name || ev.Block != i {
			t.Fatalf("event %d: %s/%d", i, ev.Column, ev.Block)
		}
		if got := info.Columns[0].Blocks[i].Data.Code.String(); ev.Scheme != got {
			t.Fatalf("block %d: telemetry says %s, file says %s", i, ev.Scheme, got)
		}
		if ev.CascadeDepth < 1 || len(ev.Levels) == 0 {
			t.Fatalf("block %d: depth %d, %d levels", i, ev.CascadeDepth, len(ev.Levels))
		}
		if ev.EstimatedRatio <= 0 || ev.ActualRatio <= 0 {
			t.Fatalf("block %d: est %.2f actual %.2f", i, ev.EstimatedRatio, ev.ActualRatio)
		}
		if ev.CompressNanos <= 0 || ev.SampleNanos <= 0 || ev.SampleNanos > ev.CompressNanos {
			t.Fatalf("block %d: sample %dns of %dns", i, ev.SampleNanos, ev.CompressNanos)
		}
	}
	if !strings.Contains(snap.Report(), "root scheme picks") {
		t.Fatalf("report missing pick table:\n%s", snap.Report())
	}
}

func TestTelemetryOutputIdenticalToUntracked(t *testing.T) {
	chunk := makeTestChunk(100000, 12)
	for _, col := range chunk.Columns {
		plain, err := CompressColumn(col, nil)
		if err != nil {
			t.Fatal(err)
		}
		tracked, err := CompressColumn(col, &Options{Telemetry: NewTelemetry()})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plain, tracked) {
			t.Fatalf("column %q: telemetry changed the output bytes", col.Name)
		}
	}
}

func TestTelemetryThroughChunkAndStream(t *testing.T) {
	rec := NewTelemetry()
	opt := &Options{Telemetry: rec, Parallelism: 4}
	chunk := makeTestChunk(130000, 13)
	if _, err := CompressChunk(chunk, opt); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if snap.Blocks != 9 { // 3 columns x 3 blocks
		t.Fatalf("recorded %d blocks", snap.Blocks)
	}
	if len(snap.RootPicks) != 3 { // integer, double, string
		t.Fatalf("root picks for %d types: %v", len(snap.RootPicks), snap.RootPicks)
	}

	rec.Reset()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, chunk.Columns, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(chunk); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Snapshot().Blocks; got != 9 {
		t.Fatalf("stream writer recorded %d blocks", got)
	}
}

func TestTelemetryNilIsDefault(t *testing.T) {
	var rec *Telemetry
	if rec.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	opt := &Options{Telemetry: nil}
	if _, err := CompressColumn(IntColumn("x", []int32{1, 2, 3}), opt); err != nil {
		t.Fatal(err)
	}
	if snap := rec.Snapshot(); snap.Blocks != 0 {
		t.Fatalf("nil recorder has %d blocks", snap.Blocks)
	}
}
