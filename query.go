package btrblocks

import (
	"bytes"
	"context"
	"fmt"

	"btrblocks/internal/core"
	"btrblocks/internal/parallel"
	"btrblocks/internal/roaring"
)

// This file generalizes the §7 count-eq pushdown from counts to selection
// vectors and aggregates: Eq/Range/In/NotNull predicates evaluate per
// block directly on the compressed representation where the scheme allows
// (dictionary code mapping, FOR min-max block skipping, RLE run walks,
// OneValue/Frequency short-circuits — see internal/core/select.go),
// producing roaring-backed Selections that compose with And/Or for
// multi-column plans, plus Count/Sum/Min/Max aggregates folded from
// compressed streams without materializing. Plan parsing, metadata-based
// block pruning, and the serving endpoints live in internal/query; this
// layer owns single-column evaluation over one column file.
//
// NULL semantics: value predicates (Eq/Range/In) never select NULL slots
// — the compressor rewrites NULL slot contents, so each NULL-bearing
// block's matches are corrected with the block's NULL bitmap after the
// compressed-domain kernel runs. NotNull selects exactly the non-NULL
// rows. Aggregates fold only non-NULL rows; an aggregate that folded
// zero rows reports Count 0 and zero values for every other field.

// pathQuery names the query engine's worker-pool path in telemetry.
const pathQuery = "query"

// SelectStats reports which evaluation paths fired during a Select or
// Aggregate call — the proof hook for "this predicate never decoded".
type SelectStats = core.SelectStatsSnapshot

type predKind uint8

const (
	predValue predKind = iota
	predNotNull
)

// Predicate is a single-column predicate: a typed Eq/Range/In comparison
// or a NotNull test. Build one with the constructors below.
type Predicate struct {
	kind    predKind
	typ     Type
	intP    *core.IntPred
	int64P  *core.Int64Pred
	doubleP *core.DoublePred
	strP    *core.StringPred
}

// IntEq matches int32 values equal to v.
func IntEq(v int32) Predicate {
	return Predicate{typ: TypeInt, intP: &core.IntPred{Op: core.PredEq, Eq: v}}
}

// IntRange matches int32 values in [lo, hi] (inclusive).
func IntRange(lo, hi int32) Predicate {
	return Predicate{typ: TypeInt, intP: &core.IntPred{Op: core.PredRange, Lo: lo, Hi: hi}}
}

// IntIn matches int32 values in the given set; an empty set matches
// nothing.
func IntIn(vs ...int32) Predicate {
	p := &core.IntPred{Op: core.PredIn, In: append([]int32(nil), vs...)}
	p.Normalize()
	return Predicate{typ: TypeInt, intP: p}
}

// Int64Eq matches int64 values equal to v.
func Int64Eq(v int64) Predicate {
	return Predicate{typ: TypeInt64, int64P: &core.Int64Pred{Op: core.PredEq, Eq: v}}
}

// Int64Range matches int64 values in [lo, hi] (inclusive).
func Int64Range(lo, hi int64) Predicate {
	return Predicate{typ: TypeInt64, int64P: &core.Int64Pred{Op: core.PredRange, Lo: lo, Hi: hi}}
}

// Int64In matches int64 values in the given set.
func Int64In(vs ...int64) Predicate {
	p := &core.Int64Pred{Op: core.PredIn, In: append([]int64(nil), vs...)}
	p.Normalize()
	return Predicate{typ: TypeInt64, int64P: p}
}

// DoubleEq matches doubles bit-exactly equal to v (NaN matches NaN of the
// same payload; 0.0 and -0.0 are distinct), mirroring CountEqualDouble.
func DoubleEq(v float64) Predicate {
	return Predicate{typ: TypeDouble, doubleP: &core.DoublePred{Op: core.PredEq, Eq: v}}
}

// DoubleRange matches doubles in [lo, hi] by float comparison; NaN never
// matches a range.
func DoubleRange(lo, hi float64) Predicate {
	return Predicate{typ: TypeDouble, doubleP: &core.DoublePred{Op: core.PredRange, Lo: lo, Hi: hi}}
}

// DoubleIn matches doubles bit-exactly equal to any set member.
func DoubleIn(vs ...float64) Predicate {
	p := &core.DoublePred{Op: core.PredIn, In: append([]float64(nil), vs...)}
	p.Normalize()
	return Predicate{typ: TypeDouble, doubleP: p}
}

// StringEq matches strings equal to v.
func StringEq(v string) Predicate {
	return Predicate{typ: TypeString, strP: &core.StringPred{Op: core.PredEq, Eq: []byte(v)}}
}

// StringRange matches strings lexicographically in [lo, hi] (inclusive).
func StringRange(lo, hi string) Predicate {
	return Predicate{typ: TypeString, strP: &core.StringPred{Op: core.PredRange, Lo: []byte(lo), Hi: []byte(hi)}}
}

// StringIn matches strings equal to any set member.
func StringIn(vs ...string) Predicate {
	in := make([][]byte, len(vs))
	for i, v := range vs {
		in[i] = []byte(v)
	}
	p := &core.StringPred{Op: core.PredIn, In: in}
	p.Normalize()
	return Predicate{typ: TypeString, strP: p}
}

// NotNull matches every non-NULL row. It applies to a column of any type.
func NotNull() Predicate {
	return Predicate{kind: predNotNull}
}

// Type returns the column type the predicate compares against; typed is
// false for NotNull, which applies to any column.
func (p Predicate) Type() (typ Type, typed bool) {
	return p.typ, p.kind == predValue
}

// Selection is a set of selected row ids within one column (or one
// chunk's shared row space). It wraps a roaring bitmap; the zero value is
// an empty selection. Set operations return new Selections and leave the
// operands untouched.
type Selection struct {
	bm *roaring.Bitmap
}

// NewSelection returns an empty selection.
func NewSelection() Selection { return Selection{bm: roaring.New()} }

// SelectionOfRows builds a selection holding exactly the given rows.
func SelectionOfRows(rows ...uint32) Selection {
	s := NewSelection()
	for _, r := range rows {
		s.bm.Add(r)
	}
	return s
}

// SelectionFromBitmap wraps an existing bitmap (shared, not copied).
func SelectionFromBitmap(bm *roaring.Bitmap) Selection { return Selection{bm: bm} }

// Bitmap exposes the underlying bitmap (nil for a zero-value Selection).
func (s Selection) Bitmap() *roaring.Bitmap { return s.bm }

// Cardinality returns the number of selected rows.
func (s Selection) Cardinality() int {
	if s.bm == nil {
		return 0
	}
	return s.bm.Cardinality()
}

// IsEmpty reports whether no rows are selected.
func (s Selection) IsEmpty() bool { return s.bm == nil || s.bm.IsEmpty() }

// Contains reports whether row is selected.
func (s Selection) Contains(row uint32) bool { return s.bm != nil && s.bm.Contains(row) }

// Rows returns the selected row ids in ascending order.
func (s Selection) Rows() []uint32 {
	if s.bm == nil {
		return nil
	}
	return s.bm.ToArray()
}

// ForEach visits selected rows in ascending order until fn returns false.
func (s Selection) ForEach(fn func(row uint32) bool) {
	if s.bm != nil {
		s.bm.ForEach(fn)
	}
}

func (s Selection) orEmpty() *roaring.Bitmap {
	if s.bm == nil {
		return roaring.New()
	}
	return s.bm
}

// And intersects two selections.
func (s Selection) And(o Selection) Selection {
	return Selection{bm: roaring.And(s.orEmpty(), o.orEmpty())}
}

// Or unions two selections.
func (s Selection) Or(o Selection) Selection {
	return Selection{bm: roaring.Or(s.orEmpty(), o.orEmpty())}
}

// AndNot returns the rows in s but not in o.
func (s Selection) AndNot(o Selection) Selection {
	return Selection{bm: roaring.AndNot(s.orEmpty(), o.orEmpty())}
}

// Clone returns an independent copy.
func (s Selection) Clone() Selection { return Selection{bm: s.orEmpty().Clone()} }

// Equals reports set equality.
func (s Selection) Equals(o Selection) bool { return s.orEmpty().Equals(o.orEmpty()) }

// AppendTo serializes the selection (the roaring wire format, also used
// by the query endpoints to ship selections between processes).
func (s Selection) AppendTo(dst []byte) []byte { return s.orEmpty().AppendTo(dst) }

// SelectionFromBytes deserializes a selection, returning bytes consumed.
func SelectionFromBytes(src []byte) (Selection, int, error) {
	bm, used, err := roaring.FromBytes(src)
	if err != nil {
		return Selection{}, 0, err
	}
	return Selection{bm: bm}, used, nil
}

// Select evaluates p over every block of an indexed column file and
// returns the selected row ids. data must be the buffer the index was
// parsed from.
func (ix *ColumnIndex) Select(data []byte, p Predicate, opt *Options) (Selection, SelectStats, error) {
	return ix.SelectContext(context.Background(), data, p, opt)
}

// SelectContext is Select with a caller context (cancellation + spans).
func (ix *ColumnIndex) SelectContext(ctx context.Context, data []byte, p Predicate, opt *Options) (Selection, SelectStats, error) {
	return ix.SelectBlocksContext(ctx, data, p, nil, opt)
}

// SelectBlocksContext is SelectContext restricted to the given block ids
// (nil = all blocks): rows of unlisted blocks are never selected and
// their bytes are never touched — the hook metadata-based pruning plugs
// into. Blocks are evaluated on the worker pool; per-block results merge
// in block order so the output is identical at every worker count.
func (ix *ColumnIndex) SelectBlocksContext(ctx context.Context, data []byte, p Predicate, blocks []int, opt *Options) (Selection, SelectStats, error) {
	var stats core.SelectStats
	if p.kind == predValue && p.typ != ix.Type {
		return Selection{}, stats.Snapshot(), ErrTypeMismatch
	}
	if blocks == nil {
		blocks = allBlocks(ix)
	}
	base := opt.coreConfig()
	rec := opt.telemetryRecorder()
	parts := make([]*roaring.Bitmap, len(blocks))
	err := parallel.Observed(ctx, len(blocks), parallelism(opt), pathQuery, observerOf(rec), func(i int) error {
		b := blocks[i]
		if b < 0 || b >= len(ix.Blocks) {
			return fmt.Errorf("btrblocks: query block %d out of range [0,%d)", b, len(ix.Blocks))
		}
		ref := ix.Blocks[b]
		if ref.End() > len(data) {
			return ErrTruncatedFile
		}
		if err := ix.VerifyBlock(data, b); err != nil {
			rec.RecordCorruption(1)
			return err
		}
		nulls, err := blockNulls(ix, data, b)
		if err != nil {
			return err
		}
		local := roaring.New()
		if p.kind == predNotNull {
			local.AddRange(0, uint32(ref.Rows))
		} else {
			cfg := *base
			cfg.MaxDecodedValues = ref.Rows
			stream := data[ref.DataOffset():ref.End()]
			var used int
			switch ix.Type {
			case TypeInt:
				used, err = core.SelectInt(stream, p.intP, 0, local, &stats, &cfg)
			case TypeInt64:
				used, err = core.SelectInt64(stream, p.int64P, 0, local, &stats, &cfg)
			case TypeDouble:
				used, err = core.SelectDouble(stream, p.doubleP, 0, local, &stats, &cfg)
			case TypeString:
				used, err = core.SelectString(stream, p.strP, 0, local, &stats, &cfg)
			}
			if err != nil {
				return err
			}
			if used != ref.DataBytes {
				return ErrCorrupt
			}
		}
		// NULL slots are rewritten by the compressor, so whatever the
		// kernel decided about them is meaningless: subtract the NULL
		// bitmap. This is the post-hoc correction that keeps the
		// compressed-domain paths usable on NULL-bearing blocks.
		if nulls != nil {
			nulls.ForEach(func(v uint32) bool {
				local.Remove(v)
				return true
			})
		}
		parts[i] = local
		return nil
	})
	if err != nil {
		return Selection{}, stats.Snapshot(), err
	}
	out := roaring.New()
	for i, part := range parts {
		start := uint32(ix.Blocks[blocks[i]].StartRow)
		// Selected rows cluster into runs; shifting whole runs via
		// AddRange is far cheaper than one sorted-insert per row.
		var runStart, prev uint32
		pending := false
		part.ForEach(func(v uint32) bool {
			if pending && v == prev+1 {
				prev = v
				return true
			}
			if pending {
				out.AddRange(start+runStart, start+prev+1)
			}
			runStart, prev, pending = v, v, true
			return true
		})
		if pending {
			out.AddRange(start+runStart, start+prev+1)
		}
	}
	return Selection{bm: out}, stats.Snapshot(), nil
}

// Aggregate is the Count/Sum/Min/Max fold over a column (or a selected
// subset of it). Count is the number of non-NULL rows folded; when it is
// zero every other field holds its zero value. Integer columns fill the
// Int fields (exact, wrapping int64 arithmetic); double columns fill the
// Float fields with the row-order fold (a NaN poisons Sum, and a leading
// NaN poisons Min/Max — identical to a naive sequential fold); string
// columns fill StrMin/StrMax lexicographically.
type Aggregate struct {
	Type     Type    `json:"type"`
	Count    int64   `json:"count"`
	IntSum   int64   `json:"int_sum,omitempty"`
	IntMin   int64   `json:"int_min,omitempty"`
	IntMax   int64   `json:"int_max,omitempty"`
	FloatSum float64 `json:"float_sum,omitempty"`
	FloatMin float64 `json:"float_min,omitempty"`
	FloatMax float64 `json:"float_max,omitempty"`
	StrMin   string  `json:"str_min,omitempty"`
	StrMax   string  `json:"str_max,omitempty"`
}

// FoldInt folds one int32 value.
func (a *Aggregate) FoldInt(v int32) { a.FoldInt64(int64(v)) }

// FoldInt64 folds one int64 value.
func (a *Aggregate) FoldInt64(v int64) {
	if a.Count == 0 {
		a.IntMin, a.IntMax = v, v
	} else {
		if v < a.IntMin {
			a.IntMin = v
		}
		if v > a.IntMax {
			a.IntMax = v
		}
	}
	a.IntSum += v
	a.Count++
}

// FoldDouble folds one double value (row-order sensitive).
func (a *Aggregate) FoldDouble(v float64) {
	if a.Count == 0 {
		a.FloatMin, a.FloatMax = v, v
	} else {
		if v < a.FloatMin {
			a.FloatMin = v
		}
		if v > a.FloatMax {
			a.FloatMax = v
		}
	}
	a.FloatSum += v
	a.Count++
}

// FoldString folds one string value.
func (a *Aggregate) FoldString(v []byte) {
	if a.Count == 0 {
		a.StrMin, a.StrMax = string(v), string(v)
	} else {
		if bytes.Compare(v, []byte(a.StrMin)) < 0 {
			a.StrMin = string(v)
		}
		if bytes.Compare(v, []byte(a.StrMax)) > 0 {
			a.StrMax = string(v)
		}
	}
	a.Count++
}

// Merge combines another aggregate of the same type into a (block
// order matters for the float fields' NaN semantics, so merge partial
// results in block order).
func (a *Aggregate) Merge(o Aggregate) {
	if o.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = o
		return
	}
	a.Count += o.Count
	a.IntSum += o.IntSum
	if o.IntMin < a.IntMin {
		a.IntMin = o.IntMin
	}
	if o.IntMax > a.IntMax {
		a.IntMax = o.IntMax
	}
	a.FloatSum += o.FloatSum
	if o.FloatMin < a.FloatMin {
		a.FloatMin = o.FloatMin
	}
	if o.FloatMax > a.FloatMax {
		a.FloatMax = o.FloatMax
	}
	if a.Type == TypeString {
		if o.StrMin < a.StrMin {
			a.StrMin = o.StrMin
		}
		if o.StrMax > a.StrMax {
			a.StrMax = o.StrMax
		}
	}
}

func fromIntAgg(g core.IntAgg) Aggregate {
	return Aggregate{Type: TypeInt, Count: int64(g.Count), IntSum: g.Sum, IntMin: int64(g.Min), IntMax: int64(g.Max)}
}

func fromInt64Agg(g core.Int64Agg) Aggregate {
	return Aggregate{Type: TypeInt64, Count: int64(g.Count), IntSum: g.Sum, IntMin: g.Min, IntMax: g.Max}
}

func fromDoubleAgg(g core.DoubleAgg) Aggregate {
	return Aggregate{Type: TypeDouble, Count: int64(g.Count), FloatSum: g.Sum, FloatMin: g.Min, FloatMax: g.Max}
}

// AggregateBlocks folds Count/Sum/Min/Max over the listed blocks (nil =
// all), restricted to sel when non-nil. See AggregateBlocksContext.
func (ix *ColumnIndex) AggregateBlocks(data []byte, blocks []int, sel *Selection, opt *Options) (Aggregate, SelectStats, error) {
	return ix.AggregateBlocksContext(context.Background(), data, blocks, sel, opt)
}

// AggregateBlocksContext folds non-NULL rows of the listed blocks into an
// Aggregate. With no selection, NULL-free numeric blocks fold directly on
// the compressed stream (OneValue in O(1), RLE per run, Frequency by
// split — see internal/core/aggregate.go); blocks with NULLs or a partial
// selection decode and fold the qualifying rows, and string blocks always
// decode. Per-block partials merge in block order, so results are
// identical at every worker count.
func (ix *ColumnIndex) AggregateBlocksContext(ctx context.Context, data []byte, blocks []int, sel *Selection, opt *Options) (Aggregate, SelectStats, error) {
	var stats core.SelectStats
	if blocks == nil {
		blocks = allBlocks(ix)
	}
	base := opt.coreConfig()
	rec := opt.telemetryRecorder()
	locals := localSelections(ix, blocks, sel)
	parts := make([]Aggregate, len(blocks))
	err := parallel.Observed(ctx, len(blocks), parallelism(opt), pathQuery, observerOf(rec), func(i int) error {
		b := blocks[i]
		if b < 0 || b >= len(ix.Blocks) {
			return fmt.Errorf("btrblocks: query block %d out of range [0,%d)", b, len(ix.Blocks))
		}
		ref := ix.Blocks[b]
		if sel != nil && (locals[i] == nil || locals[i].IsEmpty()) {
			return nil // no selected rows in this block; never touch it
		}
		fastEligible := sel == nil && ref.NullBytes == 0 && ix.Type != TypeString
		if fastEligible {
			if ref.End() > len(data) {
				return ErrTruncatedFile
			}
			if err := ix.VerifyBlock(data, b); err != nil {
				rec.RecordCorruption(1)
				return err
			}
			cfg := *base
			cfg.MaxDecodedValues = ref.Rows
			stream := data[ref.DataOffset():ref.End()]
			var (
				agg  Aggregate
				used int
				err  error
			)
			switch ix.Type {
			case TypeInt:
				var g core.IntAgg
				g, used, err = core.AggregateInt(stream, &stats, &cfg)
				agg = fromIntAgg(g)
			case TypeInt64:
				var g core.Int64Agg
				g, used, err = core.AggregateInt64(stream, &stats, &cfg)
				agg = fromInt64Agg(g)
			case TypeDouble:
				var g core.DoubleAgg
				g, used, err = core.AggregateDouble(stream, &stats, &cfg)
				agg = fromDoubleAgg(g)
			}
			if err != nil {
				return err
			}
			if used != ref.DataBytes || agg.Count != int64(ref.Rows) {
				return ErrCorrupt
			}
			parts[i] = agg
			return nil
		}
		bv, err := decodeBlockVectors(ix, data, b, base, nil, rec)
		if err != nil {
			return err
		}
		stats.AggDecoded.Add(1)
		agg := Aggregate{Type: ix.Type}
		include := func(r int) bool {
			if bv.nulls != nil && bv.nulls.Contains(uint32(r)) {
				return false
			}
			return locals[i] == nil || locals[i].Contains(uint32(r))
		}
		switch ix.Type {
		case TypeInt:
			for r, v := range bv.ints {
				if include(r) {
					agg.FoldInt(v)
				}
			}
		case TypeInt64:
			for r, v := range bv.ints64 {
				if include(r) {
					agg.FoldInt64(v)
				}
			}
		case TypeDouble:
			for r, v := range bv.doubles {
				if include(r) {
					agg.FoldDouble(v)
				}
			}
		case TypeString:
			for r := 0; r < bv.views.Len(); r++ {
				if include(r) {
					agg.FoldString(bv.views.Bytes(r))
				}
			}
		}
		parts[i] = agg
		return nil
	})
	if err != nil {
		return Aggregate{}, stats.Snapshot(), err
	}
	total := Aggregate{Type: ix.Type}
	for _, p := range parts {
		total.Merge(p)
	}
	return total, stats.Snapshot(), nil
}

// CountNotNullBlocksContext counts non-NULL rows over the listed blocks
// (nil = all), restricted to sel when non-nil — answered entirely from
// block headers and NULL bitmaps, never touching a data stream.
func (ix *ColumnIndex) CountNotNullBlocksContext(ctx context.Context, data []byte, blocks []int, sel *Selection, opt *Options) (int64, error) {
	if blocks == nil {
		blocks = allBlocks(ix)
	}
	rec := opt.telemetryRecorder()
	locals := localSelections(ix, blocks, sel)
	counts := make([]int64, len(blocks))
	err := parallel.Observed(ctx, len(blocks), parallelism(opt), pathQuery, observerOf(rec), func(i int) error {
		b := blocks[i]
		if b < 0 || b >= len(ix.Blocks) {
			return fmt.Errorf("btrblocks: query block %d out of range [0,%d)", b, len(ix.Blocks))
		}
		ref := ix.Blocks[b]
		if sel != nil && (locals[i] == nil || locals[i].IsEmpty()) {
			return nil
		}
		if ref.End() > len(data) {
			return ErrTruncatedFile
		}
		if err := ix.VerifyBlock(data, b); err != nil {
			rec.RecordCorruption(1)
			return err
		}
		nulls, err := blockNulls(ix, data, b)
		if err != nil {
			return err
		}
		switch {
		case sel == nil && nulls == nil:
			counts[i] = int64(ref.Rows)
		case sel == nil:
			counts[i] = int64(ref.Rows - nulls.Cardinality())
		default:
			n := int64(0)
			locals[i].ForEach(func(v uint32) bool {
				if int(v) < ref.Rows && (nulls == nil || !nulls.Contains(v)) {
					n++
				}
				return true
			})
			counts[i] = n
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	return total, nil
}

func allBlocks(ix *ColumnIndex) []int {
	out := make([]int, len(ix.Blocks))
	for i := range out {
		out[i] = i
	}
	return out
}

// blockNulls parses block b's NULL bitmap, or nil when the block has none.
func blockNulls(ix *ColumnIndex, data []byte, b int) (*roaring.Bitmap, error) {
	ref := ix.Blocks[b]
	if ref.NullBytes == 0 {
		return nil, nil
	}
	nulls, used, err := roaring.FromBytes(data[ref.NullOffset() : ref.NullOffset()+ref.NullBytes])
	if err != nil || used != ref.NullBytes {
		return nil, ErrCorrupt
	}
	return nulls, nil
}

// localSelections splits a column-wide selection into block-local bitmaps
// (positions rebased to each block's start row) for the listed blocks, in
// one ordered pass over the selection. Returns nil when sel is nil.
func localSelections(ix *ColumnIndex, blocks []int, sel *Selection) []*roaring.Bitmap {
	if sel == nil {
		return make([]*roaring.Bitmap, len(blocks))
	}
	// Map block id -> slot for the listed subset.
	slot := make(map[int]int, len(blocks))
	for i, b := range blocks {
		slot[b] = i
	}
	out := make([]*roaring.Bitmap, len(blocks))
	bi := 0 // current block cursor over all blocks (selection is ascending)
	sel.ForEach(func(row uint32) bool {
		for bi < len(ix.Blocks) && int(row) >= ix.Blocks[bi].StartRow+ix.Blocks[bi].Rows {
			bi++
		}
		if bi >= len(ix.Blocks) {
			return false
		}
		if int(row) < ix.Blocks[bi].StartRow {
			return true // row before the current block (shouldn't happen: ascending)
		}
		if i, ok := slot[bi]; ok {
			if out[i] == nil {
				out[i] = roaring.New()
			}
			out[i].Add(row - uint32(ix.Blocks[bi].StartRow))
		}
		return true
	})
	return out
}
