package btrblocks

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomCorruptionNeverPanics flips random bytes in valid compressed
// column files and asserts the decoder either errors or returns data —
// but never panics, hangs, or allocates absurdly. This is the
// failure-injection half of the robustness story: a data lake reads
// blocks written by anyone.
func TestRandomCorruptionNeverPanics(t *testing.T) {
	opt := DefaultOptions()
	rng := rand.New(rand.NewSource(99))

	// one representative column per type, with enough structure that all
	// schemes appear across seeds
	cols := []Column{}
	{
		n := 20000
		ints := make([]int32, n)
		doubles := make([]float64, n)
		strs := make([]string, n)
		vals := []string{"alpha", "beta", "gamma", "delta"}
		for i := 0; i < n; i++ {
			ints[i] = int32(i / 7)
			doubles[i] = float64(rng.Intn(10000)) / 100
			strs[i] = vals[rng.Intn(len(vals))]
		}
		cols = append(cols,
			IntColumn("i", ints),
			DoubleColumn("d", doubles),
			StringColumn("s", strs),
		)
	}

	for _, col := range cols {
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3000; trial++ {
			bad := append([]byte(nil), data...)
			flips := 1 + rng.Intn(8)
			for f := 0; f < flips; f++ {
				bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on corrupted %s column (trial %d): %v", col.Type, trial, r)
					}
				}()
				_, _ = DecompressColumn(bad, opt)
			}()
		}
	}
}

// TestTruncationNeverPanics slices valid files at every prefix length.
func TestTruncationNeverPanics(t *testing.T) {
	opt := DefaultOptions()
	n := 5000
	ints := make([]int32, n)
	for i := range ints {
		ints[i] = int32(i % 100)
	}
	nulls := NewNullMask()
	for i := 0; i < n; i += 17 {
		nulls.SetNull(i)
	}
	col := IntColumn("x", ints)
	col.Nulls = nulls
	data, err := CompressColumn(col, opt)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(data); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", cut, r)
				}
			}()
			_, _ = DecompressColumn(data[:cut], opt)
		}()
	}
}

// TestDecompressAppendsDoNotAliasInput verifies the decoder copies what it
// must: mutating the compressed buffer after decompression must not change
// already-returned values.
func TestDecompressAppendsDoNotAliasInput(t *testing.T) {
	opt := DefaultOptions()
	strs := make([]string, 5000)
	for i := range strs {
		strs[i] = fmt.Sprintf("value-%d", i%5)
	}
	data, err := CompressColumn(StringColumn("s", strs), opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressColumn(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	before := got.Strings.At(0)
	for i := range data {
		data[i] = 0xFF
	}
	if got.Strings.At(0) != before {
		t.Fatal("decompressed strings alias the compressed buffer")
	}
}
