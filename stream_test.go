package btrblocks

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
)

func streamSchema() []Column {
	return []Column{
		{Name: "id", Type: TypeInt},
		{Name: "price", Type: TypeDouble},
		{Name: "city", Type: TypeString},
	}
}

func streamChunk(rows int, seed int64) *Chunk {
	rng := rand.New(rand.NewSource(seed))
	ints := make([]int32, rows)
	doubles := make([]float64, rows)
	strs := make([]string, rows)
	for i := 0; i < rows; i++ {
		ints[i] = int32(rng.Intn(500))
		doubles[i] = float64(rng.Intn(10000)) / 100
		strs[i] = fmt.Sprintf("city-%d", rng.Intn(20))
	}
	return &Chunk{Columns: []Column{
		IntColumn("id", ints),
		DoubleColumn("price", doubles),
		StringColumn("city", strs),
	}}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	opt := &Options{BlockSize: 1000}
	w, err := NewWriter(&buf, streamSchema(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var want []*Chunk
	for i := 0; i < 5; i++ {
		chunk := streamChunk(3000+i*100, int64(i))
		want = append(want, chunk)
		if err := w.WriteChunk(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()), opt)
	if err != nil {
		t.Fatal(err)
	}
	schema := r.Schema()
	if len(schema) != 3 || schema[2].Name != "city" || schema[2].Type != TypeString {
		t.Fatalf("schema = %+v", schema)
	}
	totalRows := 0
	for i := 0; ; i++ {
		chunk, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		wc := want[i]
		if chunk.NumRows() != wc.NumRows() {
			t.Fatalf("chunk %d rows %d != %d", i, chunk.NumRows(), wc.NumRows())
		}
		for ci := range wc.Columns {
			switch wc.Columns[ci].Type {
			case TypeInt:
				for j := range wc.Columns[ci].Ints {
					if chunk.Columns[ci].Ints[j] != wc.Columns[ci].Ints[j] {
						t.Fatalf("chunk %d col %d int %d mismatch", i, ci, j)
					}
				}
			case TypeString:
				if !chunk.Columns[ci].Strings.Equal(wc.Columns[ci].Strings) {
					t.Fatalf("chunk %d col %d strings mismatch", i, ci)
				}
			}
		}
		totalRows += chunk.NumRows()
	}
	if r.Chunks() != 5 || int(r.Rows()) != totalRows {
		t.Fatalf("footer: chunks=%d rows=%d, want 5/%d", r.Chunks(), r.Rows(), totalRows)
	}
	// Next after EOF keeps returning EOF
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err after EOF = %v", err)
	}
}

func TestStreamSchemaEnforcement(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, streamSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// wrong column count
	if err := w.WriteChunk(&Chunk{Columns: []Column{IntColumn("id", nil)}}); err == nil {
		t.Fatal("column count mismatch accepted")
	}
	// wrong type
	bad := streamChunk(10, 1)
	bad.Columns[1] = IntColumn("price", make([]int32, 10))
	if err := w.WriteChunk(bad); err == nil {
		t.Fatal("type mismatch accepted")
	}
	// wrong name
	bad = streamChunk(10, 1)
	bad.Columns[0].Name = "identifier"
	if err := w.WriteChunk(bad); err == nil {
		t.Fatal("name mismatch accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(streamChunk(10, 1)); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestStreamSchemaMismatchSentinel(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, streamSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every mismatch flavor must wrap ErrSchemaMismatch.
	cases := map[string]*Chunk{
		"count": {Columns: []Column{IntColumn("id", nil)}},
	}
	badType := streamChunk(10, 1)
	badType.Columns[1] = IntColumn("price", make([]int32, 10))
	cases["type"] = badType
	badName := streamChunk(10, 1)
	badName.Columns[0].Name = "identifier"
	cases["name"] = badName
	for name, chunk := range cases {
		err := w.WriteChunk(chunk)
		if !errors.Is(err, ErrSchemaMismatch) {
			t.Errorf("%s mismatch: err = %v, want ErrSchemaMismatch", name, err)
		}
		if errors.Is(err, ErrWriterClosed) {
			t.Errorf("%s mismatch wrongly reports writer closed", name)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(streamChunk(10, 1)); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("write after Close: err = %v, want ErrWriterClosed", err)
	}
}

func TestStreamCloseIdempotent(t *testing.T) {
	// A second Close must be a no-op: same bytes, no duplicate footer.
	var once, twice bytes.Buffer
	for _, buf := range []*bytes.Buffer{&once, &twice} {
		w, err := NewWriter(buf, streamSchema(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteChunk(streamChunk(50, 4)); err != nil {
			t.Fatal(err)
		}
		closes := 1
		if buf == &twice {
			closes = 3
		}
		for i := 0; i < closes; i++ {
			if err := w.Close(); err != nil {
				t.Fatalf("Close #%d: %v", i+1, err)
			}
		}
	}
	if !bytes.Equal(once.Bytes(), twice.Bytes()) {
		t.Fatalf("repeated Close changed output: %d vs %d bytes", once.Len(), twice.Len())
	}
	// and the tripled-close stream still parses to the footer
	r, err := NewReader(bytes.NewReader(twice.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if r.Chunks() != 1 {
		t.Fatalf("chunks = %d, want 1", r.Chunks())
	}
}

func TestStreamCorrupt(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, streamSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(streamChunk(100, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// bad magic
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := NewReader(bytes.NewReader(bad), nil); err == nil {
		t.Fatal("bad magic accepted")
	}
	// truncations must error from NewReader or Next, never panic
	for cut := 0; cut < len(data); cut += 3 {
		r, err := NewReader(bytes.NewReader(data[:cut]), nil)
		if err != nil {
			continue
		}
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
	}
	// bad chunk tag
	bad = append([]byte(nil), data...)
	// the first chunk tag is right after the header; find it
	hdrLen := 5 + 2
	for _, col := range streamSchema() {
		hdrLen += 3 + len(col.Name)
	}
	bad[hdrLen] = 'Z'
	r, err := NewReader(bytes.NewReader(bad), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("bad tag accepted")
	}
}

func TestStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, streamSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty stream Next = %v", err)
	}
	if r.Chunks() != 0 || r.Rows() != 0 {
		t.Fatal("empty footer wrong")
	}
}
