package btrblocks

import (
	"time"

	"btrblocks/internal/core"
	"btrblocks/internal/telemetry"
)

// This file connects the compression pipeline to the telemetry recorder:
// Options.Telemetry, when set, receives one BlockEvent per compressed
// block with the full cascade decision trail. The recorder itself lives
// in internal/telemetry; the aliases below make it usable from outside
// the module.

// Telemetry is a thread-safe recorder for per-block compression
// telemetry. Create one with NewTelemetry, set it on Options.Telemetry,
// and read it with its Snapshot or Report methods. A nil *Telemetry is
// valid and records nothing.
type Telemetry = telemetry.Recorder

// TelemetrySnapshot is a consistent copy of a recorder's state: per-block
// events plus aggregate counters (scheme pick frequencies, ratio
// histogram, byte and time totals).
type TelemetrySnapshot = telemetry.Snapshot

// BlockEvent is the telemetry record for one compressed block.
type BlockEvent = telemetry.BlockEvent

// NewTelemetry returns an empty recorder.
func NewTelemetry() *Telemetry { return telemetry.New() }

// telemetryRecorder returns the recorder to use, or nil when disabled.
func (o *Options) telemetryRecorder() *telemetry.Recorder {
	if o == nil {
		return nil
	}
	return o.Telemetry
}

// recordBlock compresses rows [lo, hi) of col with the decision hook
// installed, assembles a BlockEvent from the decision trail, and records
// it. Only called when a recorder is set: the per-block Config copy and
// the timing calls are the telemetry path's cost, not the default
// path's.
func recordBlock(col *Column, block, lo, hi int, cfg *core.Config, rec *telemetry.Recorder) []byte {
	var decisions []core.Decision
	tcfg := *cfg
	tcfg.OnDecision = func(d core.Decision) { decisions = append(decisions, d) }
	start := time.Now()
	out := encodeBlock(col, lo, hi, &tcfg)
	elapsed := time.Since(start)

	ev := telemetry.BlockEvent{
		Column:        col.Name,
		Block:         block,
		Type:          col.Type.String(),
		Rows:          hi - lo,
		CompressNanos: elapsed.Nanoseconds(),
	}
	for _, d := range decisions {
		ev.SampleNanos += d.PickNanos
		if d.Level+1 > ev.CascadeDepth {
			ev.CascadeDepth = d.Level + 1
		}
		ev.Levels = append(ev.Levels, telemetry.Level{
			Depth:          d.Level,
			Kind:           d.Kind.String(),
			Scheme:         d.Code.String(),
			Values:         d.Values,
			InputBytes:     d.InputBytes,
			OutputBytes:    d.OutputBytes,
			EstimatedRatio: d.EstimatedRatio,
			PickNanos:      d.PickNanos,
		})
	}
	// Decisions arrive post-order, so the block's root decision is last.
	if n := len(decisions); n > 0 {
		root := decisions[n-1]
		ev.Scheme = root.Code.String()
		ev.EstimatedRatio = root.EstimatedRatio
		ev.InputBytes = root.InputBytes
		ev.OutputBytes = root.OutputBytes
		if root.OutputBytes > 0 {
			ev.ActualRatio = float64(root.InputBytes) / float64(root.OutputBytes)
		}
	}
	rec.RecordBlock(ev)
	return out
}
