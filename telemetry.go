package btrblocks

import (
	"time"

	"btrblocks/internal/core"
	"btrblocks/internal/obs"
	"btrblocks/internal/telemetry"
)

// This file connects the compression pipeline to the telemetry recorder:
// Options.Telemetry, when set, receives one BlockEvent per compressed
// block with the full cascade decision trail. The recorder itself lives
// in internal/telemetry; the aliases below make it usable from outside
// the module.

// Telemetry is a thread-safe recorder for per-block compression
// telemetry. Create one with NewTelemetry, set it on Options.Telemetry,
// and read it with its Snapshot or Report methods. A nil *Telemetry is
// valid and records nothing.
type Telemetry = telemetry.Recorder

// TelemetrySnapshot is a consistent copy of a recorder's state: per-block
// events plus aggregate counters (scheme pick frequencies, ratio
// histogram, byte and time totals).
type TelemetrySnapshot = telemetry.Snapshot

// BlockEvent is the telemetry record for one compressed block.
type BlockEvent = telemetry.BlockEvent

// NewTelemetry returns an empty recorder.
func NewTelemetry() *Telemetry { return telemetry.New() }

// telemetryRecorder returns the recorder to use, or nil when disabled.
func (o *Options) telemetryRecorder() *telemetry.Recorder {
	if o == nil {
		return nil
	}
	return o.Telemetry
}

// recordBlock compresses rows [lo, hi) of col with the decision hook
// installed and feeds the decision trail to whichever sinks are set: the
// telemetry recorder gets a flat BlockEvent, the tracer gets the full
// cascade tree with candidate estimates. Only called when at least one
// sink is set: the per-block Config copy and the timing calls are the
// observed path's cost, not the default path's.
func recordBlock(col *Column, block, lo, hi int, cfg *core.Config, rec *telemetry.Recorder, tracer *Tracer) []byte {
	var decisions []core.Decision
	tcfg := *cfg
	tcfg.OnDecision = func(d core.Decision) { decisions = append(decisions, d) }
	start := time.Now()
	out := encodeBlock(col, lo, hi, &tcfg)
	elapsed := time.Since(start)

	if rec != nil {
		rec.RecordBlock(blockEvent(col, block, lo, hi, elapsed, decisions))
	}
	if tracer != nil {
		tracer.Record(obs.BlockTraceFromDecisions(
			col.Name, block, col.Type.String(), hi-lo, elapsed.Nanoseconds(), decisions))
	}
	return out
}

// blockEvent assembles the flat telemetry record from a decision trail.
func blockEvent(col *Column, block, lo, hi int, elapsed time.Duration, decisions []core.Decision) telemetry.BlockEvent {
	ev := telemetry.BlockEvent{
		Column:        col.Name,
		Block:         block,
		Type:          col.Type.String(),
		Rows:          hi - lo,
		CompressNanos: elapsed.Nanoseconds(),
	}
	for _, d := range decisions {
		ev.SampleNanos += d.PickNanos
		if d.Level+1 > ev.CascadeDepth {
			ev.CascadeDepth = d.Level + 1
		}
		lv := telemetry.Level{
			Depth:          d.Level,
			Kind:           d.Kind.String(),
			Scheme:         d.Code.String(),
			Values:         d.Values,
			InputBytes:     d.InputBytes,
			OutputBytes:    d.OutputBytes,
			EstimatedRatio: d.EstimatedRatio,
			PickNanos:      d.PickNanos,
		}
		for _, c := range d.Candidates {
			lv.Candidates = append(lv.Candidates, telemetry.Candidate{
				Scheme:         c.Code.String(),
				EstimatedRatio: c.EstimatedRatio,
				SampleBytes:    c.SampleBytes,
			})
		}
		ev.Levels = append(ev.Levels, lv)
	}
	// Decisions arrive post-order, so the block's root decision is last.
	if n := len(decisions); n > 0 {
		root := decisions[n-1]
		ev.Scheme = root.Code.String()
		ev.EstimatedRatio = root.EstimatedRatio
		ev.InputBytes = root.InputBytes
		ev.OutputBytes = root.OutputBytes
		if root.OutputBytes > 0 {
			ev.ActualRatio = float64(root.InputBytes) / float64(root.OutputBytes)
		}
	}
	return ev
}
