package btrblocks

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func appendTestSchema() []Column {
	return []Column{
		{Name: "id", Type: TypeInt64},
		{Name: "name", Type: TypeString},
	}
}

func appendTestChunk(base int64, n int) *Chunk {
	ids := make([]int64, n)
	var names Column
	names.Name, names.Type = "name", TypeString
	for i := 0; i < n; i++ {
		ids[i] = base + int64(i)
		names.Strings = names.Strings.Append("row")
	}
	return &Chunk{Columns: []Column{
		{Name: "id", Type: TypeInt64, Ints64: ids},
		names,
	}}
}

// writeStreamFile writes a stream with the given chunks and returns its
// path.
func writeStreamFile(t *testing.T, opt *Options, chunks ...*Chunk) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.btrs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, appendTestSchema(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if err := w.WriteChunk(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// readAllRows decodes every chunk of a stream file and returns the id
// column values in order.
func readAllRows(t *testing.T, path string) []int64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := NewReader(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for {
		chunk, err := r.Next()
		if err != nil {
			break
		}
		ids = append(ids, chunk.Columns[0].Ints64...)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("reader close: %v", err)
	}
	return ids
}

func TestAppendWriterRoundTrip(t *testing.T) {
	path := writeStreamFile(t, nil, appendTestChunk(0, 10), appendTestChunk(10, 5))

	// Reopen for append and add two more chunks.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewAppendWriter(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(appendTestChunk(15, 7)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(appendTestChunk(22, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ids := readAllRows(t, path)
	if len(ids) != 25 {
		t.Fatalf("stream has %d rows after append, want 25", len(ids))
	}
	for i, v := range ids {
		if v != int64(i) {
			t.Fatalf("row %d = %d", i, v)
		}
	}

	// The appended stream must be indistinguishable from one written in
	// a single session, including its trailing checksum.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyTrailingCRC(data, "stream"); err != nil {
		t.Fatalf("appended stream fails CRC: %v", err)
	}
}

func TestAppendWriterEmptyAppend(t *testing.T) {
	path := writeStreamFile(t, nil, appendTestChunk(0, 4))
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewAppendWriter(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	now, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, now) {
		t.Fatal("open-then-close append rewrote the stream")
	}
}

func TestAppendWriterRejectsV1(t *testing.T) {
	path := writeStreamFile(t, &Options{FormatVersion: 1}, appendTestChunk(0, 4))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := NewAppendWriter(f, nil); !errors.Is(err, ErrAppendVersion) {
		t.Fatalf("v1 append: err = %v, want ErrAppendVersion", err)
	}
}

func TestAppendWriterRejectsDamage(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"trailing garbage": func(b []byte) []byte { return append(b, 0xAA, 0xBB) },
		"flipped byte": func(b []byte) []byte {
			b[len(b)/2] ^= 0xFF
			return b
		},
		"truncated footer": func(b []byte) []byte { return b[:len(b)-6] },
		"not a stream":     func(b []byte) []byte { return []byte("BOGUS DATA") },
		"empty file":       func(b []byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			path := writeStreamFile(t, nil, appendTestChunk(0, 8))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := NewAppendWriter(f, nil); err == nil {
				t.Fatal("damaged stream accepted for append")
			}
		})
	}
}

func TestAppendWriterKeepsStreamVersion(t *testing.T) {
	// A v2 stream appended to with default options stays v2 and remains
	// verifiable; the options the caller passed are not mutated.
	opt := &Options{}
	path := writeStreamFile(t, nil, appendTestChunk(0, 4))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewAppendWriter(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(appendTestChunk(4, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if opt.FormatVersion != 0 {
		t.Fatalf("caller options mutated: FormatVersion = %d", opt.FormatVersion)
	}
	if got := readAllRows(t, path); len(got) != 8 {
		t.Fatalf("rows = %d, want 8", len(got))
	}
}
