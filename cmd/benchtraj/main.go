// Command benchtraj records and compares decode-throughput baselines.
//
// `benchtraj record -o BENCH_decode.json` runs the decode benchmark
// suites (the per-scheme BenchmarkDecodeBaseline grid plus the bitpack
// and FSST kernel microbenchmarks), parses their output, and writes a
// schema'd JSON snapshot: MB/s and ns/op per benchmark, host metadata,
// and the git SHA the numbers were measured at.
//
// `benchtraj compare -baseline BENCH_decode.json` re-runs the same
// suites and fails (exit 1) if any benchmark regressed by more than the
// tolerance — the CI tier-2 gate. The tolerance defaults to 10% and can
// be overridden with -tolerance or the BTR_BENCH_TOLERANCE environment
// variable (a fraction, e.g. 0.15). See PERFORMANCE.md for the schema
// and the baseline-refresh workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is the BENCH_decode.json schema (see PERFORMANCE.md).
type Snapshot struct {
	// Schema identifies the file format; bump on incompatible change.
	Schema string `json:"schema"`
	// RecordedAt is the UTC wall-clock time of the run (RFC 3339).
	RecordedAt string `json:"recorded_at"`
	// GitSHA is the commit the numbers were measured at ("unknown"
	// outside a git checkout).
	GitSHA string `json:"git_sha"`
	// GoVersion, GOOS, GOARCH, CPU, GOMAXPROCS describe the host; a
	// baseline is only comparable on a matching host.
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Benchtime and Count are the `go test` knobs used. Stat is how the
	// Count repetitions were reduced: "median" for committed baselines
	// (the typical speed) and "best" for gate runs (optimistic), so the
	// regression gate only fails when even the best current run is slower
	// than the baseline's typical run by more than the tolerance.
	Benchtime string `json:"benchtime"`
	Count     int    `json:"count"`
	Stat      string `json:"stat"`
	// Results maps "<package>:<benchmark>" (minus the Benchmark prefix
	// and -GOMAXPROCS suffix) to its measurement.
	Results map[string]Result `json:"results"`
}

// Result is one benchmark's measurement.
type Result struct {
	// NsPerOp is time per iteration; MBps is throughput when the
	// benchmark reports bytes (0 otherwise). Regressions are judged on
	// MBps when present, NsPerOp otherwise.
	NsPerOp float64 `json:"ns_per_op"`
	MBps    float64 `json:"mbps,omitempty"`
}

// suites are the benchmark sets a snapshot covers: the end-to-end
// per-scheme grid and the kernel microbenchmarks it is built from.
var suites = []struct {
	pkg     string // go package path
	pattern string // -bench regexp
}{
	{".", "^BenchmarkDecodeBaseline$"},
	{"./internal/bitpack/", "^(BenchmarkUnpack|BenchmarkUnpack64|BenchmarkDecodeFOR)$"},
	{"./internal/fsst/", "^BenchmarkDecodeJumpTable$"},
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?`)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		fs := flag.NewFlagSet("record", flag.ExitOnError)
		out := fs.String("o", "BENCH_decode.json", "output file")
		benchtime := fs.String("benchtime", "0.25s", "per-benchmark time")
		count := fs.Int("count", 5, "runs per benchmark")
		stat := fs.String("stat", "median", "reduction over runs: median or best")
		fs.Parse(os.Args[2:])
		snap, err := record(*benchtime, *count, *stat)
		if err != nil {
			fatal(err)
		}
		if err := writeSnapshot(*out, snap); err != nil {
			fatal(err)
		}
		fmt.Printf("benchtraj: recorded %d benchmarks to %s\n", len(snap.Results), *out)
	case "compare":
		fs := flag.NewFlagSet("compare", flag.ExitOnError)
		baselinePath := fs.String("baseline", "BENCH_decode.json", "committed baseline")
		currentPath := fs.String("current", "", "snapshot to compare (empty = re-run the suites now)")
		tolerance := fs.Float64("tolerance", defaultTolerance(), "max allowed fractional regression")
		benchtime := fs.String("benchtime", "0.25s", "per-benchmark time (when re-running)")
		count := fs.Int("count", 5, "runs per benchmark (when re-running)")
		retries := fs.Int("retries", 3, "re-measure rounds to confirm an apparent regression")
		fs.Parse(os.Args[2:])
		baseline, err := readSnapshot(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var current *Snapshot
		if *currentPath != "" {
			if current, err = readSnapshot(*currentPath); err != nil {
				fatal(err)
			}
		} else if current, err = record(*benchtime, *count, "best"); err != nil {
			fatal(err)
		}
		// Confirm-on-regression: a genuinely slow benchmark fails every
		// re-measurement, while scheduler noise on a busy host usually
		// recovers. Only re-measure when we ran the suites ourselves.
		for i := 0; i < *retries && *currentPath == "" && hasRegression(baseline, current, *tolerance); i++ {
			fmt.Printf("benchtraj: apparent regression — re-measuring to confirm (%d/%d)\n", i+1, *retries)
			// Let a transient noise window (scheduler steal, thermal
			// throttle) pass before re-measuring.
			time.Sleep(10 * time.Second)
			again, err := record(*benchtime, *count, "best")
			if err != nil {
				fatal(err)
			}
			mergeBest(current, again)
		}
		if !compare(baseline, current, *tolerance) {
			os.Exit(1)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchtraj record [-o FILE] [-benchtime T] [-count N]")
	fmt.Fprintln(os.Stderr, "       benchtraj compare [-baseline FILE] [-current FILE] [-tolerance F]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtraj:", err)
	os.Exit(1)
}

// defaultTolerance is 0.10 unless BTR_BENCH_TOLERANCE overrides it.
func defaultTolerance() float64 {
	if v := os.Getenv("BTR_BENCH_TOLERANCE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
		fmt.Fprintf(os.Stderr, "benchtraj: ignoring invalid BTR_BENCH_TOLERANCE=%q\n", v)
	}
	return 0.10
}

func record(benchtime string, count int, stat string) (*Snapshot, error) {
	if stat != "median" && stat != "best" {
		return nil, fmt.Errorf("unknown stat %q (want median or best)", stat)
	}
	snap := &Snapshot{
		Schema:     "btrblocks-bench/v1",
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime,
		Count:      count,
		Stat:       stat,
		Results:    map[string]Result{},
	}
	samples := map[string][]Result{}
	for _, s := range suites {
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", s.pattern, "-benchtime", benchtime,
			"-count", strconv.Itoa(count), s.pkg)
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("bench %s %s: %v\n%s", s.pkg, s.pattern, err, out)
		}
		parseInto(snap, samples, string(out))
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark results parsed")
	}
	for key, runs := range samples {
		snap.Results[key] = reduce(runs, stat)
	}
	return snap, nil
}

// parseInto collects every benchmark sample of one `go test -bench`
// output (repeated -count runs give repeated samples per name).
func parseInto(snap *Snapshot, samples map[string][]Result, out string) {
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			// key results by the last path element: "btrblocks/internal/bitpack" -> "bitpack"
			parts := strings.Split(strings.TrimSpace(rest), "/")
			pkg = parts[len(parts)-1]
			continue
		}
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			snap.CPU = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		key := pkg + ":" + name
		ns, _ := strconv.ParseFloat(m[2], 64)
		var mbps float64
		if m[3] != "" {
			mbps, _ = strconv.ParseFloat(m[3], 64)
		}
		samples[key] = append(samples[key], Result{NsPerOp: ns, MBps: mbps})
	}
}

// reduce folds repeated samples into one Result: the median run (typical
// speed, for baselines) or the best run (for gate comparisons).
func reduce(runs []Result, stat string) Result {
	sort.Slice(runs, func(i, j int) bool { return better(runs[j], runs[i]) }) // slowest first
	if stat == "best" {
		return runs[len(runs)-1]
	}
	return runs[len(runs)/2]
}

// regressed reports whether current c fell more than tolerance below
// baseline b on the gating metric (MB/s when present, else ns/op).
func regressed(b, c Result, tolerance float64) bool {
	if b.MBps > 0 && c.MBps > 0 {
		return c.MBps < b.MBps*(1-tolerance)
	}
	if b.NsPerOp > 0 && c.NsPerOp > 0 {
		return c.NsPerOp > b.NsPerOp*(1+tolerance)
	}
	return false
}

func hasRegression(baseline, current *Snapshot, tolerance float64) bool {
	for k, b := range baseline.Results {
		c, present := current.Results[k]
		if !present || regressed(b, c, tolerance) {
			return true
		}
	}
	return false
}

// mergeBest folds a re-measurement into current, keeping the better
// result per benchmark.
func mergeBest(current, again *Snapshot) {
	for k, r := range again.Results {
		if prev, seen := current.Results[k]; !seen || better(r, prev) {
			current.Results[k] = r
		}
	}
}

func better(a, b Result) bool {
	if a.MBps > 0 || b.MBps > 0 {
		return a.MBps > b.MBps
	}
	return a.NsPerOp < b.NsPerOp
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if s.Schema != "btrblocks-bench/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, s.Schema)
	}
	return &s, nil
}

func writeSnapshot(path string, s *Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compare prints a per-benchmark delta table and reports whether every
// baseline benchmark stayed within tolerance. New benchmarks (in current
// but not baseline) are listed informationally; benchmarks missing from
// the current run fail, so a baseline entry cannot silently disappear.
func compare(baseline, current *Snapshot, tolerance float64) bool {
	keys := make([]string, 0, len(baseline.Results))
	for k := range baseline.Results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if baseline.CPU != current.CPU || baseline.GOARCH != current.GOARCH {
		fmt.Printf("note: host differs from baseline (%q/%s vs %q/%s) — deltas may reflect hardware, not code\n",
			current.CPU, current.GOARCH, baseline.CPU, baseline.GOARCH)
	}
	fmt.Printf("%-44s %12s %12s %8s\n", "benchmark", "baseline", "current", "delta")
	ok := true
	for _, k := range keys {
		b := baseline.Results[k]
		c, present := current.Results[k]
		if !present {
			fmt.Printf("%-44s %12s %12s %8s  MISSING\n", k, fmtResult(b), "-", "-")
			ok = false
			continue
		}
		var delta float64 // positive = improvement
		if b.MBps > 0 && c.MBps > 0 {
			delta = c.MBps/b.MBps - 1
		} else if b.NsPerOp > 0 {
			delta = b.NsPerOp/c.NsPerOp - 1
		}
		flag := ""
		if delta < -tolerance {
			flag = "  REGRESSION"
			ok = false
		}
		fmt.Printf("%-44s %12s %12s %+7.1f%%%s\n", k, fmtResult(b), fmtResult(c), delta*100, flag)
	}
	for k := range current.Results {
		if _, present := baseline.Results[k]; !present {
			fmt.Printf("%-44s %12s %12s %8s  (new, not in baseline)\n", k, "-", fmtResult(current.Results[k]), "-")
		}
	}
	if !ok {
		fmt.Printf("benchtraj: regression beyond %.0f%% tolerance (override with BTR_BENCH_TOLERANCE, skip with BTR_BENCH_SKIP=1)\n", tolerance*100)
	} else {
		fmt.Printf("benchtraj: %d benchmarks within %.0f%% of baseline\n", len(keys), tolerance*100)
	}
	return ok
}

func fmtResult(r Result) string {
	if r.MBps > 0 {
		return fmt.Sprintf("%.0f MB/s", r.MBps)
	}
	return fmt.Sprintf("%.0f ns/op", r.NsPerOp)
}
