// Command btrbench regenerates the tables and figures of the BtrBlocks
// paper's evaluation section (§6) on the synthetic Public BI and TPC-H
// corpora. Each subcommand maps to one experiment; `all` runs everything.
//
// Usage:
//
//	btrbench [-rows N] [-seed S] [-threads T] [-reps R] <experiment>...
//
// Experiments: fig1 table2 schemes fig4 fig5 fig6 fig7 compspeed table3
// pde-pool fig8 table4 table5 colscan scalar kernels selection threads
// serve ingest spans all
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"btrblocks/internal/experiments"
)

var registry = map[string]func(*experiments.Config) error{
	"fig1":      experiments.Fig1,
	"table2":    experiments.Table2,
	"fig4":      experiments.Fig4,
	"fig5":      experiments.Fig5,
	"fig6":      experiments.Fig6,
	"fig7":      experiments.Fig7,
	"compspeed": experiments.CompressionSpeed,
	"table3":    experiments.Table3,
	"pde-pool":  experiments.PDEPool,
	"fig8":      experiments.Fig8,
	"table4":    experiments.Table4,
	"table5":    experiments.Table5,
	"colscan":   experiments.ColumnScan,
	"scalar":    experiments.Scalar,
	"kernels":   experiments.Kernels,
	"selection": experiments.SelectionOverhead,
	"schemes":   experiments.Schemes,
	"serve":     experiments.Serve,
	"threads":   experiments.Threads,
	"ingest":    experiments.Ingest,
	"spans":     experiments.Spans,
	"query":     experiments.Query,
}

// order keeps `all` output in the paper's presentation order.
var order = []string{
	"fig1", "table2", "schemes", "fig4", "fig5", "fig6", "selection", "fig7",
	"compspeed", "table3", "pde-pool", "fig8", "table4", "table5",
	"colscan", "scalar", "kernels", "threads", "serve", "ingest", "spans",
	"query",
}

func main() {
	rows := flag.Int("rows", 64000, "rows per generated table (scales the workload)")
	seed := flag.Int64("seed", 42, "generator seed")
	threads := flag.Int("threads", 0, "decompression parallelism (0 = GOMAXPROCS)")
	reps := flag.Int("reps", 3, "repetitions for timed sections")
	net := flag.Float64("netgbps", 0, "simulated network Gbps for S3 experiments (0 = calibrated default)")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cfg := &experiments.Config{Rows: *rows, Seed: *seed, Threads: *threads, Reps: *reps, NetworkGbps: *net}

	var names []string
	for _, a := range args {
		if a == "all" {
			names = append(names, order...)
			continue
		}
		if _, ok := registry[a]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", a)
			usage()
			os.Exit(2)
		}
		names = append(names, a)
	}
	for _, name := range names {
		if err := registry[name](cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: btrbench [flags] <experiment>...\n\nexperiments:\n")
	var names []string
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "  %s\n", name)
	}
	fmt.Fprintf(os.Stderr, "  all\n\nflags:\n")
	flag.PrintDefaults()
}
