// Command btringest is the write path of the lake: a crash-safe,
// high-throughput ingestion server that accepts row appends over HTTP,
// stages them in a WAL-backed buffer, and publishes compressed BtrBlocks
// column files into the directory btrserved serves.
//
// Usage:
//
//	btringest -dir DIR [-addr HOST:PORT] [flags]
//	btringest -smoke
//
// Appends are acknowledged only after their WAL record is fsynced; a
// kill -9 at any moment loses no acknowledged row — startup replays the
// WAL, discards torn tails, and re-publishes whatever a crash
// interrupted. -smoke proves exactly that: it spawns a child server,
// appends through HTTP, kills the child with SIGKILL mid-append,
// restarts it, and verifies every acknowledged row survived.
//
// With -notify URL[,URL...], each published or replaced file is
// reported to every listed btrserved (or btrrouted) endpoint via
// POST /v1/invalidate/ so no block cache serves stale bytes — a
// replicated cluster lists one endpoint per replica (or the router,
// which fans the invalidation out to the file's replicas itself).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"btrblocks"
	"btrblocks/internal/blockstore"
	"btrblocks/internal/ingest"
	"btrblocks/internal/obs"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9411", "listen address (host:port; port 0 picks a free port)")
		dir        = flag.String("dir", "", "store directory to publish into (required unless -smoke)")
		walDir     = flag.String("wal", "", "WAL directory (default DIR/.wal)")
		chunkRows  = flag.Int("chunk-rows", btrblocks.DefaultBlockSize, "buffered rows that trigger a flush")
		flushIvl   = flag.Duration("flush-interval", time.Second, "periodic flush of non-empty buffers (<0 disables)")
		compactIvl = flag.Duration("compact-interval", 5*time.Second, "background compaction period")
		compactMin = flag.Int("compact-min-chunks", 4, "small chunks that trigger compaction (<0 disables)")
		threads    = flag.Int("threads", 0, "compression parallelism (0 = GOMAXPROCS)")
		notify     = flag.String("notify", "", "comma-separated btrserved/btrrouted base URLs to send cache invalidations to")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening")
		debugAddr  = flag.String("debug-addr", "", "listen address for pprof + expvar (empty disables)")
		spanSample = flag.Int("span-sample", 1, "head-sample 1 in N traces (0 disables span recording)")
		spanSlow   = flag.Duration("span-slow", 250*time.Millisecond, "force-record and warn-log spans at least this slow")
		verbose    = flag.Bool("v", false, "log requests and flushes to stderr")
		smoke      = flag.Bool("smoke", false, "self-test: append, kill -9 a child mid-append, restart, verify no acked row lost")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "btringest smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("btringest smoke: OK")
		return
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "btringest: -dir is required (or -smoke)")
		os.Exit(2)
	}

	logger := slog.New(slog.DiscardHandler)
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	cfg := ingest.Config{
		Dir:              *dir,
		WALDir:           *walDir,
		ChunkRows:        *chunkRows,
		FlushInterval:    *flushIvl,
		CompactInterval:  *compactIvl,
		CompactMinChunks: *compactMin,
		Options:          &btrblocks.Options{Parallelism: *threads},
		Logger:           logger,
	}
	if *spanSample > 0 {
		cfg.Spans = obs.NewSpanRecorder(obs.SpanRecorderConfig{
			Process:       "btringest",
			SampleEvery:   *spanSample,
			SlowThreshold: *spanSlow,
			Logger:        logger,
		})
	}
	if *notify != "" {
		cfg.Invalidator = newRemoteInvalidator(*notify, logger)
	}

	if err := serve(cfg, *addr, *addrFile, *debugAddr, logger); err != nil {
		fmt.Fprintln(os.Stderr, "btringest:", err)
		os.Exit(1)
	}
}

// remoteInvalidator pushes invalidations to one or more btrserved (or
// btrrouted) instances over HTTP — a replicated cluster needs every
// replica's cache dropped, not just one. Failures are logged, not
// fatal: the store directory is the truth, and a restarted btrserved
// reloads it anyway.
type remoteInvalidator struct {
	cls []*blockstore.Client
	log *slog.Logger
}

// newRemoteInvalidator builds an invalidator from a comma-separated
// endpoint list (empty entries are skipped).
func newRemoteInvalidator(endpoints string, log *slog.Logger) *remoteInvalidator {
	ri := &remoteInvalidator{log: log}
	for _, ep := range strings.Split(endpoints, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			ri.cls = append(ri.cls, blockstore.NewClient(ep))
		}
	}
	return ri
}

func (ri *remoteInvalidator) Invalidate(name string) {
	ri.InvalidateContext(context.Background(), name)
}

// InvalidateContext carries the publishing trace across the process
// boundary: blockstore.Client injects the context's traceparent and
// request ID, so the btrserved side of each invalidation shows up in
// the same trace as the append that caused it. Endpoints are notified
// concurrently; one slow or dead replica does not delay the others.
func (ri *remoteInvalidator) InvalidateContext(ctx context.Context, name string) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, cl := range ri.cls {
		wg.Add(1)
		go func(cl *blockstore.Client) {
			defer wg.Done()
			if _, err := cl.Invalidate(ctx, name); err != nil {
				ri.log.Warn("invalidate", "endpoint", cl.Endpoint(), "file", name, "err", err.Error())
			}
		}(cl)
	}
	wg.Wait()
}

// serve runs the ingestion server (and the optional debug server) until
// SIGINT/SIGTERM, then flushes, closes cleanly, and logs a shutdown
// summary.
func serve(cfg ingest.Config, addr, addrFile, debugAddr string, logger *slog.Logger) error {
	svc, err := ingest.Open(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		svc.Close()
		return err
	}
	if addrFile != "" {
		// The file is how -smoke (and scripts) learn the bound port: write
		// to a temp name and rename so a watcher never reads a partial line.
		tmp := addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, addrFile); err != nil {
			return err
		}
	}
	logger.Info("listening", "addr", ln.Addr().String(), "dir", cfg.Dir)
	fmt.Printf("btringest: serving %s on http://%s\n", cfg.Dir, ln.Addr().String())

	srv := &http.Server{Handler: ingest.NewHandler(svc)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 2)
	go func() { errCh <- srv.Serve(ln) }()

	var debug *http.Server
	if debugAddr != "" {
		debug = &http.Server{Addr: debugAddr, Handler: debugMux(svc)}
		go func() {
			logger.Info("debug listening", "addr", "http://"+debugAddr,
				"endpoints", "/debug/pprof/, /debug/vars")
			if err := debug.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errCh <- err
			}
		}()
	}

	start := time.Now()
	select {
	case err := <-errCh:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	if debug != nil {
		_ = debug.Shutdown(shutCtx)
	}
	if err := svc.Close(); err != nil {
		return err
	}
	logSummary(svc, logger, time.Since(start))
	m := svc.Metrics()
	fmt.Printf("btringest: shut down: %d appends, %d rows, %d chunks published, %d compactions\n",
		m.Appends.Load(), m.AppendedRows.Load(), m.Flushes.Load(), m.Compactions.Load())
	return nil
}

// debugMux builds the -debug-addr handler: pprof profiles plus expvar
// with a live btringest section (table stats and span counters), kept
// off the data listener so profiling access can be firewall scoped
// separately.
func debugMux(svc *ingest.Service) *http.ServeMux {
	expvar.Publish("btringest", expvar.Func(func() any {
		out := map[string]any{"tables": svc.Stats()}
		if rec := svc.Spans(); rec.Enabled() {
			out["spans"] = rec.Stats()
		}
		return out
	}))
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// logSummary emits the graceful-shutdown summary: uptime, append and
// publish totals, WAL sync latency, and span recorder counters.
func logSummary(svc *ingest.Service, logger *slog.Logger, uptime time.Duration) {
	m := svc.Metrics()
	attrs := []any{
		"uptime", uptime.Round(time.Millisecond).String(),
		"appends", m.Appends.Load(),
		"appended_rows", m.AppendedRows.Load(),
		"chunks_published", m.Flushes.Load(),
		"published_bytes", m.PublishedBytes.Load(),
		"compactions", m.Compactions.Load(),
		"invalidations", m.Invalidations.Load(),
	}
	if rec := svc.Spans(); rec.Enabled() {
		st := rec.Stats()
		attrs = append(attrs, "spans_recorded", st.Recorded, "spans_evicted", st.Evicted)
	}
	logger.Info("summary", attrs...)
}

// --- smoke test -----------------------------------------------------

// smokeRows is how many single-row appends the smoke test issues before
// and around the kill.
const smokeRows = 400

// runSmoke is the crash-safety self-test: spawn a child btringest, ack
// appends over HTTP, SIGKILL the child mid-append, restart it, and
// verify that after replay every acknowledged row is present exactly
// once in the published chunks (and that at most the one unacked
// in-flight batch rode along). Published files must also pass
// btrblocks.Verify.
func runSmoke() error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "btringest-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store := filepath.Join(dir, "store")

	// Phase 1: start the child and append until roughly half the rows are
	// acked, then SIGKILL it while appends are in flight.
	child, base, err := startChild(self, store, filepath.Join(dir, "addr1"))
	if err != nil {
		return err
	}
	defer child.Process.Kill()

	acked := make(map[int64]bool)
	var inFlight []int64
	killAt := smokeRows / 2
	for v := int64(1); v <= smokeRows; v++ {
		line := fmt.Sprintf("events v=%di,shard=%di", v, v%7)
		if len(acked) < killAt {
			if err := appendLine(base, line); err != nil {
				return fmt.Errorf("append before kill: %v", err)
			}
			acked[v] = true
			continue
		}
		// Mid-append kill: issue the next append and SIGKILL the child
		// while the request is in flight. The row may land anywhere between
		// "never written" and "durable but unacknowledged" — recovery must
		// keep every acked row and at most this one extra.
		inFlight = append(inFlight, v)
		done := make(chan error, 1)
		go func() { done <- appendLine(base, line) }()
		time.Sleep(time.Millisecond)
		if err := child.Process.Kill(); err != nil {
			return fmt.Errorf("kill child: %v", err)
		}
		child.Wait()
		if err := <-done; err == nil {
			// The ack beat the kill: the row is simply acked.
			acked[v] = true
			inFlight = inFlight[:0]
		}
		break
	}
	if len(acked) == 0 {
		return fmt.Errorf("no appends were acknowledged before the kill")
	}

	// Phase 2: restart over the same directory; the WAL replays every
	// acked row, then a flush publishes everything.
	child2, base2, err := startChild(self, store, filepath.Join(dir, "addr2"))
	if err != nil {
		return fmt.Errorf("restart: %v", err)
	}
	defer func() {
		child2.Process.Signal(syscall.SIGTERM)
		child2.Wait()
	}()
	if _, err := httpPost(base2+"/v1/flush", "", nil); err != nil {
		return fmt.Errorf("flush after restart: %v", err)
	}

	// Phase 3: decode the published chunks straight from disk and check
	// the multiset: every acked value exactly once; extras only from the
	// single in-flight batch.
	got, err := publishedValues(filepath.Join(store, "events"))
	if err != nil {
		return err
	}
	for v := range acked {
		if got[v] != 1 {
			return fmt.Errorf("acked row v=%d appears %d times after recovery (want 1)", v, got[v])
		}
	}
	allowed := make(map[int64]bool, len(inFlight))
	for _, v := range inFlight {
		allowed[v] = true
	}
	for v, n := range got {
		if n > 1 {
			return fmt.Errorf("row v=%d appears %d times (duplicate)", v, n)
		}
		if !acked[v] && !allowed[v] {
			return fmt.Errorf("row v=%d was never sent but is published", v)
		}
	}
	fmt.Printf("smoke: killed child after %d acked appends; recovery republished all of them (%d rows total, %d unacked in-flight allowed)\n",
		len(acked), len(got), len(inFlight))

	// Phase 4: cross-process trace continuity — one trace ID must follow
	// an append through WAL, flush, compress, publish, and the remote
	// invalidation into a second server's span store.
	return smokeSpans(self)
}

// smokeSpans proves end-to-end tracing across the process boundary: the
// harness (playing btrserved) runs a span-recording blockstore server,
// spawns a child btringest notifying it, and sends one traced append
// big enough to trigger a threshold flush. The trace ID minted here
// must then be retrievable from BOTH processes' span stores with
// parent/child links intact.
func smokeSpans(self string) error {
	dir, err := os.MkdirTemp("", "btringest-spans-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store := filepath.Join(dir, "store")
	if err := os.MkdirAll(store, 0o755); err != nil {
		return err
	}

	// The harness side of the lake: a blockstore server over the same
	// directory, recording spans, as btrserved would run it. Seed one
	// column file so the store has something to serve before the child
	// publishes (it refuses an empty directory).
	seed, err := btrblocks.CompressColumn(btrblocks.Column{
		Name: "seed", Type: btrblocks.TypeInt, Ints: []int32{1, 2, 3},
	}, nil)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(store, "seed.btr"), seed, 0o644); err != nil {
		return err
	}
	bs, err := blockstore.Open(store, blockstore.Config{})
	if err != nil {
		return err
	}
	defer bs.Close()
	served := obs.NewSpanRecorder(obs.SpanRecorderConfig{Process: "btrserved"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: blockstore.NewServer(bs, blockstore.WithSpans(served))}
	go srv.Serve(ln)
	defer srv.Close()

	// A second serving endpoint over the same directory — the child is
	// given both as a comma-separated -notify list, as it would be in
	// front of a replicated cluster, and the trace must reach both.
	served2 := obs.NewSpanRecorder(obs.SpanRecorderConfig{Process: "btrserved"})
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv2 := &http.Server{Handler: blockstore.NewServer(bs, blockstore.WithSpans(served2))}
	go srv2.Serve(ln2)
	defer srv2.Close()

	child, base, err := startChildArgs(self, store, filepath.Join(dir, "addr"),
		"-notify", "http://"+ln.Addr().String()+",http://"+ln2.Addr().String())
	if err != nil {
		return err
	}
	defer func() {
		child.Process.Signal(syscall.SIGTERM)
		child.Wait()
	}()

	// One traced append crossing the flush threshold (64 rows per
	// startChildArgs), so the WAL write, the async flush, and the remote
	// invalidation all hang off this root span.
	local := obs.NewSpanRecorder(obs.SpanRecorderConfig{Process: "smoke"})
	ctx, root := local.StartRoot(context.Background(), "smoke.append")
	traceID := root.TraceID().String()
	var lines strings.Builder
	for v := 0; v < 80; v++ {
		fmt.Fprintf(&lines, "traced v=%di\n", v)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/write", strings.NewReader(lines.String()))
	if err != nil {
		return err
	}
	obs.InjectTraceparent(ctx, req.Header)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	root.End()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("traced append: %s", resp.Status)
	}

	// The flush is asynchronous; poll the child's span store until the
	// trace contains its invalidate span (the last step of publication).
	cl := blockstore.NewClient(base)
	var ingestSet *obs.SpanSet
	deadline := time.Now().Add(10 * time.Second)
	for {
		ss, err := cl.Spans(context.Background(), traceID, 0)
		if err != nil {
			return fmt.Errorf("child /v1/spans: %v", err)
		}
		if hasSpan(ss, "invalidate") {
			ingestSet = ss
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("trace %s never reached invalidation in the child (have %d spans)", traceID, len(ss.Spans))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := ingestSet.Validate(); err != nil {
		return fmt.Errorf("child span set: %v", err)
	}
	byID := make(map[string]obs.SpanRecord, len(ingestSet.Spans))
	for _, s := range ingestSet.Spans {
		if s.TraceID != traceID {
			return fmt.Errorf("child returned span from trace %s, asked for %s", s.TraceID, traceID)
		}
		byID[s.SpanID] = s
	}
	var serverRoot *obs.SpanRecord
	for i, s := range ingestSet.Spans {
		if s.Name == "btringest/v1/write" {
			serverRoot = &ingestSet.Spans[i]
		}
	}
	if serverRoot == nil {
		return fmt.Errorf("child recorded no btringest/v1/write span for trace %s", traceID)
	}
	if serverRoot.ParentID != root.SpanID().String() {
		return fmt.Errorf("child server span parent %s, want the harness root %s", serverRoot.ParentID, root.SpanID())
	}
	for _, name := range []string{"wal.append", "wal.sync", "ingest.flush", "compress.cascade", "publish.atomic", "invalidate"} {
		if !hasSpan(ingestSet, name) {
			return fmt.Errorf("trace %s is missing a %s span in the child", traceID, name)
		}
	}

	// The same trace ID must appear in the harness server's span store,
	// parented under the child's invalidate span.
	servedSet := served.Snapshot(obs.SpanFilter{TraceID: traceID})
	if err := servedSet.Validate(); err != nil {
		return fmt.Errorf("served span set: %v", err)
	}
	crossed := false
	for _, s := range servedSet.Spans {
		if strings.HasPrefix(s.Name, "btrserved/v1/invalidate") {
			parent, ok := byID[s.ParentID]
			if !ok || parent.Name != "invalidate" {
				return fmt.Errorf("served invalidate span parent %s does not resolve to the child's invalidate span", s.ParentID)
			}
			crossed = true
		}
	}
	if !crossed {
		return fmt.Errorf("trace %s never reached the serving process", traceID)
	}
	// The comma-separated notify list fanned the same traced
	// invalidation out to the second endpoint too.
	served2Set := served2.Snapshot(obs.SpanFilter{TraceID: traceID})
	crossed2 := false
	for _, s := range served2Set.Spans {
		if strings.HasPrefix(s.Name, "btrserved/v1/invalidate") {
			crossed2 = true
		}
	}
	if !crossed2 {
		return fmt.Errorf("trace %s never reached the second -notify endpoint", traceID)
	}
	fmt.Printf("smoke spans: trace %s crossed processes: %d ingest spans, %d+%d served spans across two notify endpoints\n",
		traceID, len(ingestSet.Spans), len(servedSet.Spans), len(served2Set.Spans))
	return nil
}

func hasSpan(ss *obs.SpanSet, name string) bool {
	for _, s := range ss.Spans {
		if s.Name == name {
			return true
		}
	}
	return false
}

// startChild spawns `self -dir store` on a free port and waits for the
// address file.
func startChild(self, store, addrFile string) (*exec.Cmd, string, error) {
	return startChildArgs(self, store, addrFile)
}

// startChildArgs is startChild with extra flags appended (e.g. -notify
// for the span continuity phase).
func startChildArgs(self, store, addrFile string, extra ...string) (*exec.Cmd, string, error) {
	args := []string{
		"-dir", store,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-chunk-rows", "64", // small chunks: force several publishes
		"-flush-interval", "100ms",
		"-compact-interval", "200ms",
		"-compact-min-chunks", "3",
	}
	args = append(args, extra...)
	cmd := exec.Command(self, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrFile); err == nil {
			base := "http://" + strings.TrimSpace(string(data))
			if _, err := http.Get(base + "/healthz"); err == nil {
				return cmd, base, nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	return nil, "", fmt.Errorf("child did not come up within 10s")
}

func appendLine(base, line string) error {
	_, err := httpPost(base+"/v1/write", line, nil)
	return err
}

func httpPost(url, body string, out any) ([]byte, error) {
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("POST %s: %s: %s", url, resp.Status, bytes.TrimSpace(data))
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// publishedValues decodes every committed chunk of the smoke table and
// returns the multiset of values in its "v" column, verifying each
// column file's integrity along the way.
func publishedValues(tableDir string) (map[int64]int, error) {
	entries, err := os.ReadDir(tableDir)
	if err != nil {
		return nil, fmt.Errorf("read table dir: %v", err)
	}
	var markers []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".commit") {
			markers = append(markers, e.Name())
		}
	}
	sort.Strings(markers)
	if len(markers) == 0 {
		return nil, fmt.Errorf("no committed chunks under %s", tableDir)
	}
	got := make(map[int64]int)
	for _, m := range markers {
		data, err := os.ReadFile(filepath.Join(tableDir, m))
		if err != nil {
			return nil, err
		}
		var marker struct {
			Columns []struct {
				Name string `json:"name"`
				File string `json:"file"`
			} `json:"columns"`
		}
		if err := json.Unmarshal(data, &marker); err != nil {
			return nil, fmt.Errorf("%s: %v", m, err)
		}
		for _, c := range marker.Columns {
			if c.Name != "v" {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(tableDir, c.File))
			if err != nil {
				return nil, err
			}
			if rep := btrblocks.Verify(raw, nil); !rep.OK {
				return nil, fmt.Errorf("%s: published file fails verification: %s",
					c.File, strings.Join(rep.Errors, "; "))
			}
			col, err := btrblocks.DecompressColumn(raw, nil)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", c.File, err)
			}
			for _, v := range col.Ints64 {
				got[v]++
			}
		}
	}
	return got, nil
}
