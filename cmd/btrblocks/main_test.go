package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strconv"
	"testing"

	"btrblocks"
	"btrblocks/internal/csvconv"
)

const traceCSV = "../../testdata/trace_smoke.csv"
const traceSchema = "int,int64,double,string"
const traceBlock = "800"

// TestTraceSubcommandJSON is the acceptance gate for `btrblocks trace`:
// on the testdata CSV it must emit a valid JSON decision trace in which
// at least one block shows two or more candidate schemes with estimates,
// and every traced winner matches the scheme an untraced Compress run
// actually chooses for that block.
func TestTraceSubcommandJSON(t *testing.T) {
	var out bytes.Buffer
	err := runTrace([]string{"-schema", traceSchema, "-block", traceBlock, "-validate", traceCSV}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var tr btrblocks.DecisionTrace
	if err := json.Unmarshal(out.Bytes(), &tr); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks) == 0 {
		t.Fatal("empty trace")
	}
	multi := 0
	for _, b := range tr.Blocks {
		if len(b.Root.Candidates) >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no block shows >= 2 candidate schemes")
	}

	// Compress the same CSV without a tracer and compare root schemes
	// block by block: the trace must describe the real choices, not a
	// parallel universe.
	in, err := os.Open(traceCSV)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	types, err := parseSchema(traceSchema)
	if err != nil {
		t.Fatal(err)
	}
	chunk, err := csvconv.ReadChunk(in, types)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := btrblocks.CompressChunk(chunk, &btrblocks.Options{BlockSize: 800})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string) // "col/block" -> scheme
	for _, st := range cc.Stats {
		for b, s := range st.BlockSchemes {
			want[key(st.Name, b)] = s.String()
		}
	}
	if len(tr.Blocks) != len(want) {
		t.Fatalf("trace has %d blocks, compression produced %d", len(tr.Blocks), len(want))
	}
	for _, bt := range tr.Blocks {
		if got, w := bt.Root.Scheme, want[key(bt.Column, bt.Block)]; got != w {
			t.Errorf("%s block %d: traced winner %s, Compress chose %s", bt.Column, bt.Block, got, w)
		}
	}
}

func key(col string, block int) string {
	return col + "/" + strconv.Itoa(block)
}

// TestTraceSubcommandTree checks the human-readable rendering carries
// the winner markers.
func TestTraceSubcommandTree(t *testing.T) {
	var out bytes.Buffer
	err := runTrace([]string{"-schema", traceSchema, "-block", traceBlock, "-format", "tree", traceCSV}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !bytes.Contains(out.Bytes(), []byte("*")) {
		t.Fatalf("tree output has no winner markers:\n%s", s)
	}
}
