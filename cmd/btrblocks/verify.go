package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"btrblocks"
)

// verify implements `btrblocks verify`: fsck over files or directory
// trees. Directories are walked recursively and files that do not start
// with a btrblocks magic are skipped; paths named explicitly are always
// verified (and an unrecognized magic is then damage, not noise).
func verify(args []string) error {
	fsName := flag.NewFlagSet("verify", flag.ExitOnError)
	jsonOut := fsName.Bool("json", false, "print reports as a JSON array")
	deep := fsName.Bool("deep", false, "additionally decode every block (catches corruption in v1 files)")
	par := fsName.Int("parallel", 0, "worker goroutines per file walk (0 = one per CPU, 1 = serial)")
	quiet := fsName.Bool("q", false, "print only damaged files")
	if err := fsName.Parse(args); err != nil {
		return err
	}
	if fsName.NArg() == 0 {
		return fmt.Errorf("verify needs at least one <path>")
	}
	var reports []*btrblocks.VerifyReport
	for _, path := range fsName.Args() {
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		vopt := &btrblocks.VerifyOptions{Deep: *deep, Parallelism: *par}
		if !st.IsDir() {
			rep, err := verifyOne(path, vopt)
			if err != nil {
				return err
			}
			reports = append(reports, rep)
			continue
		}
		err = filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			if _, ok := btrblocks.SniffKind(data); !ok {
				return nil // not a btrblocks file; skip silently
			}
			rep := btrblocks.Verify(data, vopt)
			rep.Path = p
			reports = append(reports, rep)
			return nil
		})
		if err != nil {
			return err
		}
	}
	damaged := 0
	for _, rep := range reports {
		if !rep.OK {
			damaged++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		for _, rep := range reports {
			renderVerifyReport(rep, *quiet)
		}
		fmt.Printf("%d file(s) verified, %d damaged\n", len(reports), damaged)
	}
	if damaged > 0 {
		return fmt.Errorf("%d of %d file(s) damaged", damaged, len(reports))
	}
	return nil
}

func verifyOne(path string, vopt *btrblocks.VerifyOptions) (*btrblocks.VerifyReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := btrblocks.Verify(data, vopt)
	rep.Path = path
	return rep, nil
}

func renderVerifyReport(rep *btrblocks.VerifyReport, quiet bool) {
	if rep.OK {
		if quiet {
			return
		}
		mode := "checksummed"
		if !rep.Checksummed {
			mode = "no checksums (v1)"
		}
		fmt.Printf("%s: ok — %s file, %d bytes, %d block(s), %s\n",
			rep.Path, rep.Kind, rep.Size, rep.BlocksOK, mode)
		return
	}
	fmt.Printf("%s: DAMAGED — %s file, %d bytes, %d ok / %d bad block(s)\n",
		rep.Path, rep.Kind, rep.Size, rep.BlocksOK, rep.BlocksBad)
	for _, e := range rep.Errors {
		fmt.Printf("  file: %s\n", e)
	}
	for _, cv := range rep.Columns {
		if cv.OK {
			continue
		}
		name := cv.Name
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Printf("  chunk %d column %q %s:\n", cv.Chunk, name, cv.Type)
		if cv.Error != "" {
			fmt.Printf("    column: %s\n", cv.Error)
		}
		for _, bv := range cv.Blocks {
			if bv.OK {
				continue
			}
			fmt.Printf("    block %d (offset %d, %d bytes, %d rows): %s\n",
				bv.Block, bv.Offset, bv.Size, bv.Rows, bv.Error)
		}
	}
}
