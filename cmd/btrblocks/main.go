// Command btrblocks is the CLI for the BtrBlocks columnar format:
// compress CSV files into .btr files, decompress them back to CSV, and
// inspect compressed files without decompressing them.
//
// Usage:
//
//	btrblocks compress  -schema int,int64,double,string [-block N] [-stats] <in.csv> <out.btr>
//	btrblocks decompress <in.btr> <out.csv>
//	btrblocks inspect    <in.btr>
//	btrblocks stats      <in.btr>
//	btrblocks trace      -schema int,int64,double,string [-block N] [-format json|tree] [-validate] <in.csv>
//	btrblocks spans      [-format json|tree] [-trace ID] [-min-dur D] [-validate] <spans.json|->
//	btrblocks verify     [-json] [-deep] [-parallel N] [-q] <path>...
//
// inspect prints the full layout tree of a column, chunk, or stream file
// (see FORMAT.md): container framing, per-block NULL bitmap and data
// sizes, and the cascade of schemes with exact byte accounting. stats
// prints aggregate counters over the same layout: where the bytes went
// and which schemes were chosen how often. Both read only headers —
// payloads are never decompressed.
//
// trace compresses a CSV with the cascade decision tracer attached and
// prints, per block, every candidate scheme the picker scored with its
// sample-estimated ratio, the winner, and the cascade tree — as JSON
// (schema in OBSERVABILITY.md) or a human-readable tree. -validate
// checks the trace against the schema and fails on any violation.
//
// spans renders a span snapshot fetched from a server's /v1/spans
// endpoint (btrserved or btringest; "-" reads stdin, pairing with curl)
// as per-trace indented duration trees, so a cross-process trace reads
// as one story. Filters: -trace keeps one trace ID, -min-dur drops
// fast spans; -validate checks the set against the schema in
// OBSERVABILITY.md.
//
// verify is the fsck of the format: it walks files (or directories of
// files), checks every per-block and container CRC32C of v2 files, and
// prints per-block verdicts as text or JSON, exiting nonzero when any
// file is damaged. -deep additionally decodes every block, which is the
// only corruption check available for legacy v1 files; -q prints only
// damaged files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"btrblocks"
	"btrblocks/internal/csvconv"
	"btrblocks/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "compress":
		err = compress(os.Args[2:])
	case "decompress":
		err = decompress(os.Args[2:])
	case "inspect":
		err = inspect(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	case "trace":
		err = trace(os.Args[2:])
	case "spans":
		err = spans(os.Args[2:])
	case "verify":
		err = verify(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "btrblocks:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  btrblocks compress  -schema int,int64,double,string [-block N] [-stats] <in.csv> <out.btr>
  btrblocks decompress <in.btr> <out.csv>
  btrblocks inspect    <in.btr>
  btrblocks stats      <in.btr>
  btrblocks trace      -schema int,int64,double,string [-block N] [-format json|tree] [-validate] <in.csv>
  btrblocks spans      [-format json|tree] [-trace ID] [-min-dur D] [-validate] <spans.json|->
  btrblocks verify     [-json] [-deep] [-parallel N] [-q] <path>...
`)
}

func compress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	schema := fs.String("schema", "", "comma-separated column types (int|int64|double|string)")
	block := fs.Int("block", btrblocks.DefaultBlockSize, "values per block")
	telemetryReport := fs.Bool("stats", false, "print a compression telemetry report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 || *schema == "" {
		return fmt.Errorf("compress needs -schema and <in.csv> <out.btr>")
	}
	types, err := parseSchema(*schema)
	if err != nil {
		return err
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	chunk, err := csvconv.ReadChunk(in, types)
	if err != nil {
		return err
	}
	opt := &btrblocks.Options{BlockSize: *block}
	if *telemetryReport {
		opt.Telemetry = btrblocks.NewTelemetry()
	}
	cc, err := btrblocks.CompressChunk(chunk, opt)
	if err != nil {
		return err
	}
	if err := os.WriteFile(fs.Arg(1), cc.EncodeFile(), 0o644); err != nil {
		return err
	}
	unc := chunk.UncompressedBytes()
	comp := cc.CompressedBytes()
	fmt.Printf("%d rows, %d columns: %d -> %d bytes (%.2fx)\n",
		chunk.NumRows(), len(chunk.Columns), unc, comp, float64(unc)/float64(comp))
	for _, st := range cc.Stats {
		fmt.Printf("  %-30s %-8s %8.2fx  %v\n", st.Name, st.Type, st.Ratio(), st.BlockSchemes)
	}
	if *telemetryReport {
		snap := opt.Telemetry.Snapshot()
		fmt.Println()
		fmt.Print(snap.Report())
	}
	return nil
}

// parseSchema parses the -schema flag into column types.
func parseSchema(schema string) ([]btrblocks.Type, error) {
	var types []btrblocks.Type
	for _, s := range strings.Split(schema, ",") {
		t, err := csvconv.ParseType(s)
		if err != nil {
			return nil, err
		}
		types = append(types, t)
	}
	return types, nil
}

func trace(args []string) error { return runTrace(args, os.Stdout) }

func runTrace(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	schema := fs.String("schema", "", "comma-separated column types (int|int64|double|string)")
	block := fs.Int("block", btrblocks.DefaultBlockSize, "values per block")
	format := fs.String("format", "json", "output format: json or tree")
	validate := fs.Bool("validate", false, "validate the trace against the documented schema")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *schema == "" {
		return fmt.Errorf("trace needs -schema and <in.csv>")
	}
	types, err := parseSchema(*schema)
	if err != nil {
		return err
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	chunk, err := csvconv.ReadChunk(in, types)
	if err != nil {
		return err
	}
	tracer := btrblocks.NewTracer()
	opt := &btrblocks.Options{BlockSize: *block, Trace: tracer}
	if _, err := btrblocks.CompressChunk(chunk, opt); err != nil {
		return err
	}
	tr := tracer.Snapshot()
	if *validate {
		if err := tr.Validate(); err != nil {
			return err
		}
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(tr)
	case "tree":
		tr.RenderTree(w)
		return nil
	default:
		return fmt.Errorf("format must be json or tree")
	}
}

func spans(args []string) error { return runSpans(args, os.Stdout) }

// runSpans renders a /v1/spans snapshot (a file, or "-" for stdin — the
// natural partner of `curl .../v1/spans | btrblocks spans -`) as
// indented per-trace duration trees or re-emitted JSON, optionally
// filtered to one trace ID or a minimum duration.
func runSpans(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	format := fs.String("format", "tree", "output format: json or tree")
	traceID := fs.String("trace", "", "keep only spans of this trace ID")
	minDur := fs.Duration("min-dur", 0, "keep only spans at least this long")
	validate := fs.Bool("validate", false, "validate the span set against the documented schema")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("spans needs <spans.json> (or - for stdin)")
	}
	var data []byte
	var err error
	if fs.Arg(0) == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		return err
	}
	var ss obs.SpanSet
	if err := json.Unmarshal(data, &ss); err != nil {
		return fmt.Errorf("bad span set: %v", err)
	}
	if *validate {
		if err := ss.Validate(); err != nil {
			return err
		}
	}
	if *traceID != "" || *minDur > 0 {
		kept := ss.Spans[:0]
		for _, s := range ss.Spans {
			if *traceID != "" && s.TraceID != *traceID {
				continue
			}
			if s.DurationNanos < int64(*minDur) {
				continue
			}
			kept = append(kept, s)
		}
		ss.Spans = kept
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(ss)
	case "tree":
		ss.RenderTree(w)
		return nil
	default:
		return fmt.Errorf("format must be json or tree")
	}
}

func decompress(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("decompress needs <in.btr> <out.csv>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	cc, err := btrblocks.DecodeFile(data)
	if err != nil {
		return err
	}
	chunk, err := btrblocks.DecompressChunk(cc, btrblocks.DefaultOptions())
	if err != nil {
		return err
	}
	out, err := os.Create(args[1])
	if err != nil {
		return err
	}
	defer out.Close()
	if err := csvconv.WriteChunk(out, chunk); err != nil {
		return err
	}
	fmt.Printf("%d rows, %d columns\n", chunk.NumRows(), len(chunk.Columns))
	return nil
}

func inspect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("inspect needs <in.btr>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	info, err := btrblocks.Inspect(data)
	if err != nil {
		return err
	}
	info.RenderTree(os.Stdout)
	return nil
}

func stats(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("stats needs <in.btr>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	info, err := btrblocks.Inspect(data)
	if err != nil {
		return err
	}
	info.Stats().Render(os.Stdout)
	return nil
}
