// Command btrblocks is the CLI for the BtrBlocks columnar format:
// compress CSV files into .btr files, decompress them back to CSV, and
// inspect compressed files without decompressing them.
//
// Usage:
//
//	btrblocks compress  -schema int,int64,double,string [-block N] [-stats] <in.csv> <out.btr>
//	btrblocks decompress <in.btr> <out.csv>
//	btrblocks inspect    <in.btr>
//	btrblocks stats      <in.btr>
//
// inspect prints the full layout tree of a column, chunk, or stream file
// (see FORMAT.md): container framing, per-block NULL bitmap and data
// sizes, and the cascade of schemes with exact byte accounting. stats
// prints aggregate counters over the same layout: where the bytes went
// and which schemes were chosen how often. Both read only headers —
// payloads are never decompressed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"btrblocks"
	"btrblocks/internal/csvconv"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "compress":
		err = compress(os.Args[2:])
	case "decompress":
		err = decompress(os.Args[2:])
	case "inspect":
		err = inspect(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "btrblocks:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  btrblocks compress  -schema int,int64,double,string [-block N] [-stats] <in.csv> <out.btr>
  btrblocks decompress <in.btr> <out.csv>
  btrblocks inspect    <in.btr>
  btrblocks stats      <in.btr>
`)
}

func compress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	schema := fs.String("schema", "", "comma-separated column types (int|int64|double|string)")
	block := fs.Int("block", btrblocks.DefaultBlockSize, "values per block")
	telemetryReport := fs.Bool("stats", false, "print a compression telemetry report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 || *schema == "" {
		return fmt.Errorf("compress needs -schema and <in.csv> <out.btr>")
	}
	var types []btrblocks.Type
	for _, s := range strings.Split(*schema, ",") {
		t, err := csvconv.ParseType(s)
		if err != nil {
			return err
		}
		types = append(types, t)
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	chunk, err := csvconv.ReadChunk(in, types)
	if err != nil {
		return err
	}
	opt := &btrblocks.Options{BlockSize: *block}
	if *telemetryReport {
		opt.Telemetry = btrblocks.NewTelemetry()
	}
	cc, err := btrblocks.CompressChunk(chunk, opt)
	if err != nil {
		return err
	}
	if err := os.WriteFile(fs.Arg(1), cc.EncodeFile(), 0o644); err != nil {
		return err
	}
	unc := chunk.UncompressedBytes()
	comp := cc.CompressedBytes()
	fmt.Printf("%d rows, %d columns: %d -> %d bytes (%.2fx)\n",
		chunk.NumRows(), len(chunk.Columns), unc, comp, float64(unc)/float64(comp))
	for _, st := range cc.Stats {
		fmt.Printf("  %-30s %-8s %8.2fx  %v\n", st.Name, st.Type, st.Ratio(), st.BlockSchemes)
	}
	if *telemetryReport {
		snap := opt.Telemetry.Snapshot()
		fmt.Println()
		fmt.Print(snap.Report())
	}
	return nil
}

func decompress(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("decompress needs <in.btr> <out.csv>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	cc, err := btrblocks.DecodeFile(data)
	if err != nil {
		return err
	}
	chunk, err := btrblocks.DecompressChunk(cc, btrblocks.DefaultOptions())
	if err != nil {
		return err
	}
	out, err := os.Create(args[1])
	if err != nil {
		return err
	}
	defer out.Close()
	if err := csvconv.WriteChunk(out, chunk); err != nil {
		return err
	}
	fmt.Printf("%d rows, %d columns\n", chunk.NumRows(), len(chunk.Columns))
	return nil
}

func inspect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("inspect needs <in.btr>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	info, err := btrblocks.Inspect(data)
	if err != nil {
		return err
	}
	info.RenderTree(os.Stdout)
	return nil
}

func stats(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("stats needs <in.btr>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	info, err := btrblocks.Inspect(data)
	if err != nil {
		return err
	}
	info.Stats().Render(os.Stdout)
	return nil
}
