// Command btrserved serves a directory of BtrBlocks files over HTTP:
// raw byte ranges for clients that bring their own decoder, decompressed
// blocks (JSON or binary) through a byte-bounded block cache with
// readahead, pushed-down equality predicates answered from the
// compressed representation, and cascade decision traces at
// /v1/trace/NAME. Prometheus metrics at /metrics, cache and decode
// telemetry at /v1/telemetry. Requests are logged as JSON slog records
// with per-request IDs; -debug-addr exposes pprof and expvar on a
// second listener, SIGQUIT dumps a telemetry snapshot without exiting,
// and SIGINT/SIGTERM shut down gracefully with a summary log.
//
// Usage:
//
//	btrserved -dir DATA [-addr HOST:PORT] [-cache-mb N] [-prefetch N]
//	          [-workers N] [-debug-addr HOST:PORT] [-log-level LEVEL]
//	btrserved -smoke
//
// -smoke generates a temporary corpus, serves it on a loopback port
// (debug server included), and verifies every endpoint against direct
// in-process decompression; it exits non-zero on any mismatch. CI runs
// it as an end-to-end gate.
package main

import (
	"bytes"
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"btrblocks"
	"btrblocks/internal/blockstore"
	"btrblocks/internal/obs"
	"btrblocks/internal/pbi"
	"btrblocks/internal/query"
	"btrblocks/metadata"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "listen address for pprof + expvar (empty disables)")
	dir := flag.String("dir", "", "directory of BtrBlocks files to serve")
	cacheMB := flag.Int("cache-mb", 256, "block cache size in MiB (negative disables)")
	prefetch := flag.Int("prefetch", 4, "blocks of readahead per request (0 disables)")
	workers := flag.Int("workers", 2, "readahead worker pool size")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	spanSample := flag.Int("span-sample", 1, "head-sample 1 in N traces (0 disables span recording)")
	spanSlow := flag.Duration("span-slow", 250*time.Millisecond, "force-record and warn-log spans at least this slow")
	smoke := flag.Bool("smoke", false, "self-test: serve a generated corpus and verify every endpoint")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, parseLevel(*logLevel))
	if *smoke {
		if err := runSmoke(*cacheMB, *prefetch, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "btrserved smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("btrserved smoke: OK")
		return
	}

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "btrserved: -dir is required (or -smoke)")
		flag.Usage()
		os.Exit(2)
	}
	store, err := blockstore.Open(*dir, storeConfig(*cacheMB, *prefetch, *workers))
	if err != nil {
		logger.Error("open", "dir", *dir, "err", err.Error())
		os.Exit(1)
	}
	defer store.Close()
	for _, f := range store.Files() {
		logger.Info("serving",
			"file", f.Name, "kind", f.Kind, "bytes", len(f.Data),
			"rows", f.Rows, "blocks", f.Blocks())
	}

	var spans *obs.SpanRecorder
	if *spanSample > 0 {
		spans = obs.NewSpanRecorder(obs.SpanRecorderConfig{
			Process:       "btrserved",
			SampleEvery:   *spanSample,
			SlowThreshold: *spanSlow,
			Logger:        logger,
		})
	}

	if err := serve(store, *addr, *debugAddr, logger, spans); err != nil {
		logger.Error("serve", "err", err.Error())
		os.Exit(1)
	}
}

// serve runs the HTTP server (and the optional debug server) until
// SIGINT/SIGTERM, then shuts down gracefully and logs a summary of the
// run. SIGQUIT dumps a telemetry snapshot to the log without exiting.
func serve(store *blockstore.Store, addr, debugAddr string, logger *slog.Logger, spans *obs.SpanRecorder) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Addr:    addr,
		Handler: blockstore.NewServer(store, blockstore.WithLogger(logger), blockstore.WithSpans(spans)),
	}
	errCh := make(chan error, 2)
	go func() {
		logger.Info("listening", "addr", "http://"+addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	var debug *http.Server
	if debugAddr != "" {
		debug = &http.Server{Addr: debugAddr, Handler: debugMux(store)}
		go func() {
			logger.Info("debug listening", "addr", "http://"+debugAddr,
				"endpoints", "/debug/pprof/, /debug/vars")
			if err := debug.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errCh <- err
			}
		}()
	}

	// SIGQUIT: operator-triggered snapshot, serving continues.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	defer signal.Stop(quitCh)
	go func() {
		for range quitCh {
			dumpSnapshot(store, logger)
		}
	}()

	start := time.Now()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	if debug != nil {
		_ = debug.Shutdown(shutCtx)
	}
	store.Close()
	logSummary(store, logger, time.Since(start))
	return err
}

func parseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// debugMux builds the -debug-addr handler: pprof profiles, expvar (Go
// runtime vars plus a btrserved section with live cache and per-route
// stats), kept off the data listener so profiling access can be firewall
// scoped separately.
func debugMux(store *blockstore.Store) *http.ServeMux {
	expvar.Publish("btrserved", expvar.Func(func() any {
		return map[string]any{
			"cache":     store.Metrics().Cache(),
			"endpoints": store.Metrics().Endpoints(),
		}
	}))
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// dumpSnapshot logs the current cache, route and library-telemetry state.
func dumpSnapshot(store *blockstore.Store, logger *slog.Logger) {
	m := store.Metrics()
	logger.Info("snapshot", "cache", m.Cache())
	for _, ep := range m.Endpoints() {
		logger.Info("snapshot endpoint",
			"route", ep.Route, "requests", ep.Requests, "errors", ep.Errors,
			"latency", ep.Latency.String())
	}
	if opt := store.Options(); opt != nil && opt.Telemetry.Enabled() {
		snap := opt.Telemetry.Snapshot()
		logger.Info("snapshot telemetry",
			"blocks_compressed", snap.Blocks,
			"blocks_decoded", snap.DecodeBlocks,
			"decode_latency", snap.DecodeLatency.String())
	}
}

// logSummary emits the shutdown summary: uptime, cache behavior, and
// per-route request totals with latency quantiles.
func logSummary(store *blockstore.Store, logger *slog.Logger, uptime time.Duration) {
	m := store.Metrics()
	c := m.Cache()
	logger.Info("summary",
		"uptime", uptime.Round(time.Millisecond).String(),
		"cache_hits", c.Hits, "cache_misses", c.Misses,
		"decoded_blocks", c.DecodedBlocks, "decoded_bytes", c.DecodedBytes)
	for _, ep := range m.Endpoints() {
		logger.Info("summary endpoint",
			"route", ep.Route, "requests", ep.Requests, "errors", ep.Errors,
			"latency", ep.Latency.String())
	}
}

func storeConfig(cacheMB, prefetch, workers int) blockstore.Config {
	cacheBytes := int64(cacheMB) << 20
	if cacheMB < 0 {
		cacheBytes = -1
	}
	return blockstore.Config{
		CacheBytes:      cacheBytes,
		PrefetchBlocks:  prefetch,
		PrefetchWorkers: workers,
		Options:         &btrblocks.Options{Telemetry: btrblocks.NewTelemetry()},
	}
}

// smokeColumn is one generated column of the smoke corpus: its served
// name, the compressed file bytes, and the in-memory ground truth.
type smokeColumn struct {
	name string
	data []byte
	col  btrblocks.Column
}

// runSmoke is the end-to-end self-test: write a generated corpus to a
// temp directory, serve it from disk on a loopback port, and check every
// endpoint against direct decompression of the same bytes.
func runSmoke(cacheMB, prefetch, workers int) error {
	const (
		rows = 20000
		seed = 42
	)
	dir, err := os.MkdirTemp("", "btrserved-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Compress every pbi column to its own file, a data-lake directory in
	// miniature. Small blocks so multi-block paths (readahead, per-block
	// endpoints) actually exercise.
	opt := &btrblocks.Options{BlockSize: 4096}
	var columns []smokeColumn
	for _, ds := range pbi.Corpus(rows, seed) {
		for _, col := range ds.Chunk.Columns {
			data, err := btrblocks.CompressColumn(col, opt)
			if err != nil {
				return fmt.Errorf("compress %s/%s: %v", ds.Name, col.Name, err)
			}
			name := ds.Name + "/" + col.Name + ".btr"
			path := filepath.Join(dir, filepath.FromSlash(name))
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			columns = append(columns, smokeColumn{name: name, data: data, col: col})
		}
	}

	// A sorted timestamp column with its BTRM sidecar: the query phase
	// proves range plans prune most of its blocks before any decode.
	ts := make([]int64, rows)
	for i := range ts {
		ts[i] = 1_600_000_000_000 + int64(i)*250
	}
	tsCol := btrblocks.Int64Column("event_ts", ts)
	tsData, err := btrblocks.CompressColumn(tsCol, opt)
	if err != nil {
		return fmt.Errorf("compress timestamp column: %v", err)
	}
	tsName := "events/event_ts.btr"
	tsPath := filepath.Join(dir, filepath.FromSlash(tsName))
	if err := os.MkdirAll(filepath.Dir(tsPath), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(tsPath, tsData, 0o644); err != nil {
		return err
	}
	m := metadata.Build(tsCol, opt)
	if err := os.WriteFile(tsPath+blockstore.MetaSuffix, m.AppendTo(nil), 0o644); err != nil {
		return err
	}
	columns = append(columns, smokeColumn{name: tsName, data: tsData, col: tsCol})

	store, err := blockstore.Open(dir, storeConfig(cacheMB, prefetch, workers))
	if err != nil {
		return err
	}
	defer store.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, slog.LevelWarn)
	spans := obs.NewSpanRecorder(obs.SpanRecorderConfig{Process: "btrserved", Logger: logger})
	srv := &http.Server{Handler: blockstore.NewServer(store,
		blockstore.WithLogger(logger), blockstore.WithSpans(spans))}
	go srv.Serve(ln)
	defer srv.Close()

	// Debug server, as a deployment would run it: pprof + expvar on a
	// separate loopback listener.
	dln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	dsrv := &http.Server{Handler: debugMux(store)}
	go dsrv.Serve(dln)
	defer dsrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cl := blockstore.NewClient("http://" + ln.Addr().String())

	if err := cl.Healthz(ctx); err != nil {
		return err
	}
	metas, err := cl.Files(ctx)
	if err != nil {
		return err
	}
	// Every column file plus the timestamp column's metadata sidecar.
	if len(metas) != len(columns)+1 {
		return fmt.Errorf("/v1/files lists %d files, wrote %d", len(metas), len(columns)+1)
	}

	for _, c := range columns {
		if err := smokeFile(ctx, cl, c.name, c.data, c.col, store.Options()); err != nil {
			return fmt.Errorf("%s: %v", c.name, err)
		}
	}

	// Query plans: /v1/query must agree with an in-process executor over
	// the same bytes, prune via the hosted sidecar, and 400 bad plans.
	if err := smokeQuery(ctx, cl, tsName, tsData, ts, store.Options()); err != nil {
		return fmt.Errorf("query: %v", err)
	}

	// Telemetry and metrics must be live and reflect the traffic above.
	rep, err := cl.Telemetry(ctx)
	if err != nil {
		return err
	}
	if rep.Cache.DecodedBlocks == 0 || rep.Cache.Hits == 0 {
		return fmt.Errorf("telemetry shows no activity: %+v", rep.Cache)
	}
	metrics, err := cl.MetricsText(ctx)
	if err != nil {
		return err
	}
	for _, want := range []string{
		"btrserved_cache_hits_total",
		"btrserved_decoded_blocks_total",
		`btrserved_http_requests_total{route="/v1/block"}`,
		"btrserved_http_request_duration_seconds_bucket",
		"btrserved_spans_recorded_total",
		"btrserved_query_requests_total",
		"btrserved_query_blocks_pruned_total",
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("/metrics missing %s", want)
		}
	}

	// Spans: every request above ran under a recorded server span. The
	// snapshot must validate against the schema and carry roots with
	// their decode children; the telemetry report must link exemplars.
	spanSet, err := cl.Spans(ctx, "", 0)
	if err != nil {
		return err
	}
	if err := spanSet.Validate(); err != nil {
		return err
	}
	if err := checkServerSpans(spanSet); err != nil {
		return err
	}
	if len(rep.SpanExemplars) == 0 {
		return fmt.Errorf("/v1/telemetry has no span exemplars after traffic")
	}

	// Decision traces: the re-derived trace must be valid per the schema
	// and agree with the scheme the stored block actually uses.
	tr, err := cl.Trace(ctx, columns[0].name, 0)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return err
	}
	if len(tr.Blocks) != 1 || tr.Blocks[0].Root == nil {
		return fmt.Errorf("/v1/trace returned %d blocks", len(tr.Blocks))
	}

	// Debug server: pprof index and expvar must answer, and expvar must
	// carry the live btrserved section.
	dbase := "http://" + dln.Addr().String()
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		body, err := httpGet(ctx, dbase+path)
		if err != nil {
			return fmt.Errorf("debug %s: %v", path, err)
		}
		if path == "/debug/vars" && !strings.Contains(body, `"btrserved"`) {
			return fmt.Errorf("debug /debug/vars missing btrserved section")
		}
	}

	// Degraded serving: corrupt one block of a multi-block column on disk,
	// serve it from a fresh store, and check the full failure story —
	// detection, quarantine, partial scan, and the corruption metrics.
	if err := smokeDegraded(ctx, dir, columns, cacheMB, prefetch, workers); err != nil {
		return fmt.Errorf("degraded serving: %v", err)
	}

	fmt.Printf("smoke: %d files, cache hits=%d misses=%d decoded=%d blocks\n",
		len(columns), rep.Cache.Hits, rep.Cache.Misses, rep.Cache.DecodedBlocks)
	return nil
}

// smokeQuery drives POST /v1/query against the sorted timestamp column:
// a narrow range plan must answer exactly (checked against both the
// known row window and an in-process executor over the same bytes),
// skip more than half the blocks via the hosted sidecar, fold
// aggregates correctly, and reject a malformed plan with 400.
func smokeQuery(ctx context.Context, cl *blockstore.Client, name string, data []byte, ts []int64, opt *btrblocks.Options) error {
	const lo, hi = 6200, 7800 // row window: values are sorted, so ids == offsets
	plan := &query.Plan{
		Filter: &query.Node{Op: "range", Column: name,
			Lo: []byte(strconv.FormatInt(ts[lo], 10)),
			Hi: []byte(strconv.FormatInt(ts[hi], 10))},
		Aggregates: []query.AggSpec{
			{Op: "count", Column: name},
			{Op: "min", Column: name},
			{Op: "max", Column: name},
		},
		Rows: true,
	}
	res, err := cl.Query(ctx, plan)
	if err != nil {
		return err
	}
	wantMatched := int64(hi - lo + 1)
	if res.Matched != wantMatched || len(res.RowIDs) != int(wantMatched) ||
		res.RowIDs[0] != lo || res.RowIDs[len(res.RowIDs)-1] != hi {
		return fmt.Errorf("range [%d,%d]: matched=%d rows=%d", lo, hi, res.Matched, len(res.RowIDs))
	}
	for i, want := range []string{
		strconv.FormatInt(wantMatched, 10),
		strconv.FormatInt(ts[lo], 10),
		strconv.FormatInt(ts[hi], 10),
	} {
		if res.Aggregates[i].Value != want || res.Aggregates[i].Count != wantMatched {
			return fmt.Errorf("aggregate %d: %+v, want value %s", i, res.Aggregates[i], want)
		}
	}
	if res.Stats.BlocksPruned*2 <= res.Stats.BlocksTotal {
		return fmt.Errorf("sidecar pruned %d of %d blocks, want >50%%", res.Stats.BlocksPruned, res.Stats.BlocksTotal)
	}
	if res.Stats.BlocksPruned+res.Stats.BlocksScanned != res.Stats.BlocksTotal {
		return fmt.Errorf("pruned+scanned != total: %+v", res.Stats)
	}

	// The served result must be bit-identical to an in-process run over
	// the same compressed bytes (sidecar-free: pruning must not change
	// the answer, only the work).
	ix, err := btrblocks.ParseColumnIndex(data)
	if err != nil {
		return err
	}
	e := &query.Executor{Source: query.MemSource{name: {Index: ix, Data: data}}, Options: opt}
	local, err := e.Run(ctx, plan)
	if err != nil {
		return err
	}
	if local.Matched != res.Matched || len(local.RowIDs) != len(res.RowIDs) {
		return fmt.Errorf("served result diverges from local executor: %d/%d vs %d/%d",
			res.Matched, len(res.RowIDs), local.Matched, len(local.RowIDs))
	}
	for i := range local.Aggregates {
		if local.Aggregates[i] != res.Aggregates[i] {
			return fmt.Errorf("aggregate %d diverges: served %+v, local %+v", i, res.Aggregates[i], local.Aggregates[i])
		}
	}

	// A malformed plan is a 400, never a 500.
	resp, err := http.Post(cl.Endpoint()+"/v1/query", "application/json",
		strings.NewReader(`{"filter":{"op":"between"}}`))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("malformed plan answered %d, want 400", resp.StatusCode)
	}
	fmt.Printf("smoke query: range matched %d rows, %d/%d blocks pruned via sidecar\n",
		res.Matched, res.Stats.BlocksPruned, res.Stats.BlocksTotal)
	return nil
}

// checkServerSpans asserts the smoke traffic produced well-linked
// spans: a /v1/block server root, and a block.decode child whose parent
// chain resolves within the same trace.
func checkServerSpans(ss *obs.SpanSet) error {
	if len(ss.Spans) == 0 {
		return fmt.Errorf("/v1/spans is empty after traffic")
	}
	byID := make(map[string]obs.SpanRecord, len(ss.Spans))
	for _, s := range ss.Spans {
		byID[s.SpanID] = s
	}
	var sawRoot, sawDecodeChild bool
	for _, s := range ss.Spans {
		if s.Name == "btrserved/v1/block" && s.ParentID == "" {
			sawRoot = true
		}
		if s.Name == "block.decode" {
			if p, ok := byID[s.ParentID]; ok && p.TraceID == s.TraceID {
				sawDecodeChild = true
			}
		}
	}
	if !sawRoot {
		return fmt.Errorf("no btrserved/v1/block root span recorded")
	}
	if !sawDecodeChild {
		return fmt.Errorf("no block.decode span linked to a recorded parent")
	}
	return nil
}

// smokeDegraded damages one served block and verifies graceful
// degradation: the corrupt block is refused (422) and quarantined (410),
// a partial scan still returns every healthy block, and the corruption
// counters reach /metrics.
func smokeDegraded(ctx context.Context, dir string, columns []smokeColumn, cacheMB, prefetch, workers int) error {
	// Pick a multi-block column and flip one byte inside a middle block's
	// compressed stream on disk.
	victim := -1
	var ix *btrblocks.ColumnIndex
	for i, c := range columns {
		parsed, err := btrblocks.ParseColumnIndex(c.data)
		if err != nil {
			return err
		}
		if len(parsed.Blocks) >= 2 {
			victim, ix = i, parsed
			break
		}
	}
	if victim < 0 {
		return fmt.Errorf("no multi-block column in the corpus")
	}
	name := columns[victim].name
	badBlock := len(ix.Blocks) / 2
	damaged := append([]byte(nil), columns[victim].data...)
	damaged[ix.Blocks[badBlock].DataOffset()] ^= 0xFF
	path := filepath.Join(dir, filepath.FromSlash(name))
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		return err
	}
	defer os.WriteFile(path, columns[victim].data, 0o644)

	cfg := storeConfig(cacheMB, prefetch, workers)
	cfg.QuarantineThreshold = 1
	store, err := blockstore.Open(dir, cfg)
	if err != nil {
		return err
	}
	defer store.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: blockstore.NewServer(store)}
	go srv.Serve(ln)
	defer srv.Close()
	cl := blockstore.NewClient("http://"+ln.Addr().String(),
		blockstore.WithBackoff(time.Millisecond, 4*time.Millisecond))

	// First touch detects the corruption; the threshold-1 store
	// quarantines immediately, so the second touch is fenced.
	if _, err := cl.Block(ctx, name, badBlock); !blockstore.IsBlockDamage(err) {
		return fmt.Errorf("corrupt block served without damage error: %v", err)
	}
	if _, err := cl.Block(ctx, name, badBlock); !blockstore.IsBlockDamage(err) {
		return fmt.Errorf("quarantined block served without damage error: %v", err)
	}
	if _, err := cl.Block(ctx, name, (badBlock+1)%len(ix.Blocks)); err != nil {
		return fmt.Errorf("healthy block of damaged column: %v", err)
	}

	res, err := cl.ScanColumnPartial(ctx, name, 2)
	if err != nil {
		return err
	}
	wantRows := columns[victim].col.Len() - ix.Blocks[badBlock].Rows
	if !res.Partial || res.Rows != wantRows || len(res.FailedBlocks) != 1 || res.FailedBlocks[0] != badBlock {
		return fmt.Errorf("partial scan: %+v (want partial, %d rows, failed block %d)", res, wantRows, badBlock)
	}

	metrics, err := cl.MetricsText(ctx)
	if err != nil {
		return err
	}
	if !strings.Contains(metrics, "btrserved_quarantined_blocks 1") {
		return fmt.Errorf("/metrics missing quarantine gauge")
	}
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "btrserved_corrupt_blocks_total ") {
			if strings.TrimPrefix(line, "btrserved_corrupt_blocks_total ") == "0" {
				return fmt.Errorf("corruption counter is zero after serving a corrupt block")
			}
			fmt.Printf("smoke degraded: block %d of %s refused and quarantined, partial scan rows=%d, %s\n",
				badBlock, name, res.Rows, line)
			return nil
		}
	}
	return fmt.Errorf("/metrics missing btrserved_corrupt_blocks_total")
}

// httpGet fetches a URL and returns the body, failing on non-200.
func httpGet(ctx context.Context, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", url, resp.Status)
	}
	return buf.String(), nil
}

// smokeFile checks every access granularity of one served column against
// the in-process ground truth.
func smokeFile(ctx context.Context, cl *blockstore.Client, name string, data []byte, col btrblocks.Column, opt *btrblocks.Options) error {
	// Raw: served bytes must be exactly the file written to disk.
	raw, err := cl.Raw(ctx, name)
	if err != nil {
		return err
	}
	if !bytes.Equal(raw, data) {
		return fmt.Errorf("raw bytes differ: got %d bytes, want %d", len(raw), len(data))
	}
	// Range: a middle slice via the S3-style path.
	if len(data) > 64 {
		part, err := cl.RawRange(ctx, name, 16, 32)
		if err != nil {
			return err
		}
		if !bytes.Equal(part, data[16:48]) {
			return fmt.Errorf("range bytes differ")
		}
	}

	// Blocks: reassemble the column from per-block responses (binary and
	// JSON must agree with each other and with the local decode).
	meta, err := cl.FileMeta(ctx, name)
	if err != nil {
		return err
	}
	rowsSeen := 0
	for b := 0; b < meta.Blocks; b++ {
		bin, err := cl.Block(ctx, name, b)
		if err != nil {
			return err
		}
		if bin.StartRow != rowsSeen {
			return fmt.Errorf("block %d starts at %d, want %d", b, bin.StartRow, rowsSeen)
		}
		jsn, err := cl.BlockJSON(ctx, name, b)
		if err != nil {
			return err
		}
		if err := compareBlock(bin, jsn, col, rowsSeen); err != nil {
			return fmt.Errorf("block %d: %v", b, err)
		}
		rowsSeen += bin.Rows
	}
	if rowsSeen != col.Len() {
		return fmt.Errorf("blocks cover %d rows, column has %d", rowsSeen, col.Len())
	}

	// Predicate pushdown: server count must equal the local scan for a
	// probe drawn from the data (guaranteed hits) and for a sure miss.
	for _, probe := range smokeProbes(col) {
		res, err := cl.CountEq(ctx, name, probe)
		if err != nil {
			return err
		}
		want, err := localCount(data, col.Type, probe, opt)
		if err != nil {
			return err
		}
		if res.Count != want {
			return fmt.Errorf("count-eq %q: server %d, local %d", probe, res.Count, want)
		}
	}
	return nil
}

// compareBlock checks a block's wire values (both formats) against rows
// [start, start+rows) of the locally held column.
func compareBlock(bin, jsn *blockstore.BlockValues, col btrblocks.Column, start int) error {
	if bin.Rows != jsn.Rows {
		return fmt.Errorf("binary has %d rows, json %d", bin.Rows, jsn.Rows)
	}
	// NULL positions: identical lists, and matching the source mask.
	if len(bin.Nulls) != len(jsn.Nulls) {
		return fmt.Errorf("null count differs between formats")
	}
	for i := range bin.Nulls {
		if bin.Nulls[i] != jsn.Nulls[i] {
			return fmt.Errorf("null position %d differs between formats", i)
		}
	}
	isNull := make(map[int]bool, len(bin.Nulls))
	for _, p := range bin.Nulls {
		isNull[p] = true
		if col.Nulls == nil || !col.Nulls.IsNull(start+p) {
			return fmt.Errorf("row %d served as NULL but is valid", start+p)
		}
	}
	for i := 0; i < bin.Rows; i++ {
		r := start + i
		if col.Nulls != nil && col.Nulls.IsNull(r) {
			if !isNull[i] {
				return fmt.Errorf("row %d is NULL but served as valid", r)
			}
			continue // NULL slots carry arbitrary (densified) values
		}
		switch col.Type {
		case btrblocks.TypeInt:
			if bin.Ints[i] != col.Ints[r] || jsn.Ints[i] != col.Ints[r] {
				return fmt.Errorf("row %d: got %d/%d, want %d", r, bin.Ints[i], jsn.Ints[i], col.Ints[r])
			}
		case btrblocks.TypeInt64:
			if bin.Ints64[i] != col.Ints64[r] || jsn.Ints64[i] != col.Ints64[r] {
				return fmt.Errorf("row %d: got %d/%d, want %d", r, bin.Ints64[i], jsn.Ints64[i], col.Ints64[r])
			}
		case btrblocks.TypeDouble:
			if bin.Doubles[i] != col.Doubles[r] || jsn.Doubles[i] != col.Doubles[r] {
				return fmt.Errorf("row %d: got %v/%v, want %v", r, bin.Doubles[i], jsn.Doubles[i], col.Doubles[r])
			}
		case btrblocks.TypeString:
			if bin.Strings[i] != col.Strings.At(r) || jsn.Strings[i] != col.Strings.At(r) {
				return fmt.Errorf("row %d: got %q/%q, want %q", r, bin.Strings[i], jsn.Strings[i], col.Strings.At(r))
			}
		}
	}
	return nil
}

// smokeProbes picks predicate values for a column: the first non-NULL
// value (a guaranteed hit) and a sure miss.
func smokeProbes(col btrblocks.Column) []string {
	hit := ""
	for i := 0; i < col.Len(); i++ {
		if col.Nulls != nil && col.Nulls.IsNull(i) {
			continue
		}
		switch col.Type {
		case btrblocks.TypeInt:
			hit = strconv.FormatInt(int64(col.Ints[i]), 10)
		case btrblocks.TypeInt64:
			hit = strconv.FormatInt(col.Ints64[i], 10)
		case btrblocks.TypeDouble:
			hit = strconv.FormatFloat(col.Doubles[i], 'g', -1, 64)
		case btrblocks.TypeString:
			hit = col.Strings.At(i)
		}
		break
	}
	miss := "no-such-value-in-any-generated-corpus"
	if col.Type != btrblocks.TypeString {
		miss = "-987654321"
	}
	probes := []string{miss}
	if hit != "" && hit != miss {
		probes = append(probes, hit)
	}
	return probes
}

// localCount runs the same predicate in-process on the compressed file.
func localCount(data []byte, t btrblocks.Type, value string, opt *btrblocks.Options) (int, error) {
	switch t {
	case btrblocks.TypeInt:
		v, err := strconv.ParseInt(value, 10, 32)
		if err != nil {
			return 0, err
		}
		return btrblocks.CountEqualInt32(data, int32(v), opt)
	case btrblocks.TypeInt64:
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return 0, err
		}
		return btrblocks.CountEqualInt64(data, v, opt)
	case btrblocks.TypeDouble:
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return 0, err
		}
		return btrblocks.CountEqualDouble(data, v, opt)
	default:
		return btrblocks.CountEqualString(data, value, opt)
	}
}
