// Command btrrouted fronts a cluster of btrserved nodes as one logical
// blockstore: column files are placed on R of N nodes by a consistent
// hash over stable node names, reads scatter-gather across the replicas
// with health-aware failover, slow primaries are hedged against a
// second replica (the budget derived from per-replica latency
// histograms), and replicas whose bytes fail their CRC are healed in
// the background by re-pushing a verified good copy from a healthy
// replica. The router speaks the btrserved wire protocol, so existing
// clients point at it unchanged.
//
// Usage:
//
//	btrrouted -nodes "n1=http://h1:8080,n2=http://h2:8080,n3=http://h3:8080"
//	          [-addr HOST:PORT] [-replicas R] [-probe-interval D]
//	          [-hedge-initial D] [-hedge-max D] [-no-hedge]
//	btrrouted -smoke
//
// -smoke is the cluster chaos gate: it generates a corpus, places it
// over three child node processes with R=2, then (1) verifies every
// file scans bit-correct through the router, (2) flips a byte on one
// replica of a multi-block file and proves scans stay correct while
// the repair loop heals the damaged replica, (3) SIGKILLs a node
// mid-scan and proves every scan still returns complete, bit-correct
// results, and (4) proves hedged requests fire and win against a
// latency-skewed replica — with the repair/hedge/failover activity
// visible in /metrics and /v1/spans. It exits non-zero on any miss.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"btrblocks"
	"btrblocks/internal/blockstore"
	"btrblocks/internal/cluster"
	"btrblocks/internal/obs"
	"btrblocks/internal/pbi"
	"btrblocks/internal/query"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9500", "listen address (host:port; port 0 picks a free port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening")
		nodes      = flag.String("nodes", "", "comma-separated cluster members as name=url (required unless -smoke)")
		replicas   = flag.Int("replicas", 2, "replication factor R")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per member (0 = default)")
		probeIvl   = flag.Duration("probe-interval", time.Second, "health probe period (<0 disables)")
		hedgeInit  = flag.Duration("hedge-initial", 25*time.Millisecond, "hedge budget before latency history exists")
		hedgeMax   = flag.Duration("hedge-max", 250*time.Millisecond, "upper clamp on the p95-derived hedge budget")
		noHedge    = flag.Bool("no-hedge", false, "disable hedged block fetches")
		spanSample = flag.Int("span-sample", 1, "head-sample 1 in N traces (0 disables span recording)")
		spanSlow   = flag.Duration("span-slow", 250*time.Millisecond, "force-record and warn-log spans at least this slow")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		smoke      = flag.Bool("smoke", false, "self-test: 3-node cluster, byte-flip repair, mid-scan node kill, hedging")

		// Hidden child mode used by -smoke: serve one directory as a
		// plain blockstore node (a btrserved stand-in in this binary).
		nodeDir = flag.String("node-dir", "", "serve DIR as a single blockstore node (smoke child mode)")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "btrrouted smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("btrrouted smoke: OK")
		return
	}

	logger := obs.NewLogger(os.Stderr, parseLevel(*logLevel))
	if *nodeDir != "" {
		if err := runNode(*nodeDir, *addr, *addrFile, logger); err != nil {
			logger.Error("node", "err", err.Error())
			os.Exit(1)
		}
		return
	}
	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "btrrouted: -nodes is required (or -smoke)")
		flag.Usage()
		os.Exit(2)
	}

	var spans *obs.SpanRecorder
	if *spanSample > 0 {
		spans = obs.NewSpanRecorder(obs.SpanRecorderConfig{
			Process:       "btrrouted",
			SampleEvery:   *spanSample,
			SlowThreshold: *spanSlow,
			Logger:        logger,
		})
	}
	cfg := cluster.Config{
		Nodes:         splitList(*nodes),
		Replicas:      *replicas,
		VirtualNodes:  *vnodes,
		ProbeInterval: *probeIvl,
		HedgeInitial:  *hedgeInit,
		HedgeMax:      *hedgeMax,
		DisableHedge:  *noHedge,
		Log:           logger,
		Spans:         spans,
	}
	if err := serveRouter(cfg, *addr, *addrFile, logger); err != nil {
		logger.Error("serve", "err", err.Error())
		os.Exit(1)
	}
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// serveRouter runs the router until SIGINT/SIGTERM, then shuts down
// gracefully and closes the background loops.
func serveRouter(cfg cluster.Config, addr, addrFile string, logger *slog.Logger) error {
	router, err := cluster.NewRouter(cfg)
	if err != nil {
		return err
	}
	router.Start()
	defer router.Close()
	// Surface dead members before the first request rather than on it.
	probeCtx, probeCancel := context.WithTimeout(context.Background(), 5*time.Second)
	router.Membership().ProbeOnce(probeCtx)
	probeCancel()
	for _, st := range router.Membership().Statuses() {
		logger.Info("member", "node", st.Name, "endpoint", st.Endpoint, "up", st.Up)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if err := writeAddrFile(addrFile, ln.Addr().String()); err != nil {
		return err
	}
	logger.Info("listening", "addr", "http://"+ln.Addr().String(),
		"nodes", len(router.Membership().Nodes()), "replicas", router.Membership().Replicas())

	srv := &http.Server{Handler: cluster.NewServer(router, logger)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}

// runNode serves one directory as a plain blockstore node — the smoke's
// btrserved stand-in so the cluster smoke is self-contained in this
// binary. Spans are enabled so router-originated traces continue here.
func runNode(dir, addr, addrFile string, logger *slog.Logger) error {
	store, err := blockstore.Open(dir, blockstore.Config{
		CacheBytes:          64 << 20,
		PrefetchBlocks:      2,
		PrefetchWorkers:     2,
		QuarantineThreshold: 2,
	})
	if err != nil {
		return err
	}
	defer store.Close()
	spans := obs.NewSpanRecorder(obs.SpanRecorderConfig{Process: "btrserved", Logger: logger})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if err := writeAddrFile(addrFile, ln.Addr().String()); err != nil {
		return err
	}
	srv := &http.Server{Handler: blockstore.NewServer(store, blockstore.WithSpans(spans))}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}

// writeAddrFile publishes the bound address via temp-and-rename so a
// watcher never reads a partial line. Empty path is a no-op.
func writeAddrFile(path, addr string) error {
	if path == "" {
		return nil
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ---------------------------------------------------------------------------
// Smoke: the cluster chaos gate.

// smokeColumn is one generated column: served name, compressed bytes,
// ground truth, and the replica nodes the ring placed it on.
type smokeColumn struct {
	name     string
	data     []byte
	col      btrblocks.Column
	replicas []int // node indices in placement preference order
	blocks   int
}

// smokeNode is one child node process of the smoke cluster.
type smokeNode struct {
	name string
	dir  string
	cmd  *exec.Cmd
	base string
	cl   *blockstore.Client
}

func runSmoke() error {
	const (
		rows     = 8000
		seed     = 42
		replicas = 2
	)
	names := []string{"n1", "n2", "n3"}

	work, err := os.MkdirTemp("", "btrrouted-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	// Generate the corpus and place every column file on R of the N
	// nodes with the same ring the router will build — writers and
	// routers agreeing on placement by node name is the whole point.
	ring, err := cluster.NewRing(names, 0)
	if err != nil {
		return err
	}
	opt := &btrblocks.Options{BlockSize: 4096}
	var columns []smokeColumn
	for _, ds := range pbi.Corpus(rows, seed) {
		for _, col := range ds.Chunk.Columns {
			data, err := btrblocks.CompressColumn(col, opt)
			if err != nil {
				return fmt.Errorf("compress %s/%s: %v", ds.Name, col.Name, err)
			}
			name := ds.Name + "/" + col.Name + ".btr"
			ix, err := btrblocks.ParseColumnIndex(data)
			if err != nil {
				return err
			}
			sc := smokeColumn{name: name, data: data, col: col,
				replicas: ring.Place(name, replicas), blocks: len(ix.Blocks)}
			for _, ni := range sc.replicas {
				path := filepath.Join(work, names[ni], filepath.FromSlash(name))
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					return err
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return err
				}
			}
			columns = append(columns, sc)
		}
	}

	// Spawn the three node processes.
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	nodes := make([]*smokeNode, len(names))
	defer func() {
		for _, n := range nodes {
			if n != nil && n.cmd != nil && n.cmd.Process != nil {
				n.cmd.Process.Kill()
				n.cmd.Wait()
			}
		}
	}()
	for i, name := range names {
		n, err := startNode(self, name, filepath.Join(work, name), filepath.Join(work, name+".addr"))
		if err != nil {
			return err
		}
		nodes[i] = n
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// The router under test: health probes every 100ms so the kill phase
	// converges fast; hedging off so the repair phase's damage detection
	// is deterministic (a dedicated hedge phase covers hedging).
	specs := make([]string, len(nodes))
	for i, n := range nodes {
		specs[i] = n.name + "=" + n.base
	}
	logger := obs.NewLogger(os.Stderr, slog.LevelWarn)
	spans := obs.NewSpanRecorder(obs.SpanRecorderConfig{Process: "btrrouted", Logger: logger})
	router, err := cluster.NewRouter(cluster.Config{
		Nodes:          specs,
		Replicas:       replicas,
		ProbeInterval:  100 * time.Millisecond,
		ProbeTimeout:   time.Second,
		DownTTL:        500 * time.Millisecond,
		AttemptTimeout: 2 * time.Second,
		DisableHedge:   true,
		RepairBackoff:  50 * time.Millisecond,
		Log:            logger,
		Spans:          spans,
	})
	if err != nil {
		return err
	}
	router.Start()
	defer router.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	rsrv := &http.Server{Handler: cluster.NewServer(router, logger)}
	go rsrv.Serve(rln)
	defer rsrv.Close()
	routerBase := "http://" + rln.Addr().String()
	cl := blockstore.NewClient(routerBase)

	// Phase 1: the whole corpus reads complete and bit-correct through
	// the router, and the scatter-gather count agrees with ground truth.
	if err := cl.Healthz(ctx); err != nil {
		return err
	}
	metas, err := cl.Files(ctx)
	if err != nil {
		return err
	}
	if len(metas) != len(columns) {
		return fmt.Errorf("router lists %d files, wrote %d", len(metas), len(columns))
	}
	for i := range columns {
		if err := checkColumn(ctx, cl, &columns[i]); err != nil {
			return fmt.Errorf("phase 1: %s: %v", columns[i].name, err)
		}
	}
	if err := checkScatterCount(ctx, routerBase, columns, opt); err != nil {
		return fmt.Errorf("phase 1 scatter: %v", err)
	}
	if err := checkRoutedQuery(ctx, cl, routerBase, columns, opt); err != nil {
		return fmt.Errorf("phase 1 query: %v", err)
	}
	fmt.Printf("smoke phase 1: %d files scan bit-correct through the router\n", len(columns))

	// Phase 2: flip a byte on one replica and prove scans stay correct
	// while the repair loop heals the flipped copy.
	if err := smokeRepair(ctx, router, cl, nodes, columns); err != nil {
		return fmt.Errorf("phase 2 (repair): %v", err)
	}
	// Check spans now, before phase 3's scan volume evicts the repair
	// span from the recorder's retention ring.
	if err := checkRouterSpans(ctx, cl, "router.repair"); err != nil {
		return err
	}

	// Phase 3: SIGKILL one node mid-scan; every scan still returns
	// complete, bit-correct results off the surviving replicas.
	victim := nodes[len(nodes)-1]
	if err := smokeKill(ctx, routerBase, cl, victim, columns, opt); err != nil {
		return fmt.Errorf("phase 3 (kill): %v", err)
	}

	// The router's metrics and spans must show the failover, damage, and
	// repair activity the phases above caused.
	if err := checkRouterMetrics(ctx, cl, map[string]bool{
		"btrrouted_failovers_total":         true,
		"btrrouted_damage_detected_total":   true,
		"btrrouted_repairs_queued_total":    true,
		"btrrouted_repairs_succeeded_total": true,
		"btrrouted_query_plans_total":       true,
		"btrrouted_query_legs_total":        true,
	}); err != nil {
		return err
	}

	// Phase 4: hedged requests against a latency-skewed replica, on a
	// second router over the two surviving nodes.
	if err := smokeHedge(ctx, specs[:2], columns, logger); err != nil {
		return fmt.Errorf("phase 4 (hedge): %v", err)
	}
	return nil
}

// startNode spawns `self -node-dir dir` on a free port and waits for
// its address file and /healthz.
func startNode(self, name, dir, addrFile string) (*smokeNode, error) {
	cmd := exec.Command(self,
		"-node-dir", dir,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-log-level", "warn",
	)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrFile); err == nil {
			base := "http://" + strings.TrimSpace(string(data))
			if _, err := http.Get(base + "/healthz"); err == nil {
				return &smokeNode{name: name, dir: dir, cmd: cmd, base: base,
					cl: blockstore.NewClient(base)}, nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	return nil, fmt.Errorf("node %s did not come up within 10s", name)
}

// checkColumn scans every block of one column through cl and verifies
// each value (and NULL position) against the in-memory ground truth.
func checkColumn(ctx context.Context, cl *blockstore.Client, sc *smokeColumn) error {
	meta, err := cl.FileMeta(ctx, sc.name)
	if err != nil {
		return err
	}
	if meta.Blocks != sc.blocks {
		return fmt.Errorf("meta lists %d blocks, want %d", meta.Blocks, sc.blocks)
	}
	col := sc.col
	rows := 0
	for b := 0; b < meta.Blocks; b++ {
		blk, err := cl.Block(ctx, sc.name, b)
		if err != nil {
			return fmt.Errorf("block %d: %v", b, err)
		}
		if blk.StartRow != rows {
			return fmt.Errorf("block %d starts at %d, want %d", b, blk.StartRow, rows)
		}
		isNull := make(map[int]bool, len(blk.Nulls))
		for _, p := range blk.Nulls {
			isNull[p] = true
		}
		for i := 0; i < blk.Rows; i++ {
			r := rows + i
			if col.Nulls != nil && col.Nulls.IsNull(r) {
				if !isNull[i] {
					return fmt.Errorf("row %d is NULL but served as valid", r)
				}
				continue
			}
			if isNull[i] {
				return fmt.Errorf("row %d served as NULL but is valid", r)
			}
			switch col.Type {
			case btrblocks.TypeInt:
				if blk.Ints[i] != col.Ints[r] {
					return fmt.Errorf("row %d: got %d, want %d", r, blk.Ints[i], col.Ints[r])
				}
			case btrblocks.TypeInt64:
				if blk.Ints64[i] != col.Ints64[r] {
					return fmt.Errorf("row %d: got %d, want %d", r, blk.Ints64[i], col.Ints64[r])
				}
			case btrblocks.TypeDouble:
				if blk.Doubles[i] != col.Doubles[r] {
					return fmt.Errorf("row %d: got %v, want %v", r, blk.Doubles[i], col.Doubles[r])
				}
			case btrblocks.TypeString:
				if blk.Strings[i] != col.Strings.At(r) {
					return fmt.Errorf("row %d: got %q, want %q", r, blk.Strings[i], col.Strings.At(r))
				}
			}
		}
		rows += blk.Rows
	}
	if rows != col.Len() {
		return fmt.Errorf("blocks cover %d rows, column has %d", rows, col.Len())
	}
	return nil
}

// checkScatterCount asks the router for a cluster-wide equality count
// (GET /v1/count-eq?value=) and verifies the merged total against local
// counting over every matching column.
func checkScatterCount(ctx context.Context, routerBase string, columns []smokeColumn, opt *btrblocks.Options) error {
	probe := ""
	for i := range columns {
		if columns[i].col.Type == btrblocks.TypeString {
			probe = columns[i].col.Strings.At(0)
			break
		}
	}
	if probe == "" {
		return fmt.Errorf("no string column in the corpus")
	}
	want := 0
	for i := range columns {
		if columns[i].col.Type != btrblocks.TypeString {
			continue
		}
		n, err := btrblocks.CountEqualString(columns[i].data, probe, opt)
		if err != nil {
			return err
		}
		want += n
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		routerBase+"/v1/count-eq?value="+url.QueryEscape(probe), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scatter count: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var sc cluster.ScatterCount
	if err := json.Unmarshal(body, &sc); err != nil {
		return err
	}
	if sc.Partial {
		return fmt.Errorf("scatter count is partial: %+v", sc)
	}
	if sc.Count != want {
		return fmt.Errorf("scatter count %q: router %d, local %d", probe, sc.Count, want)
	}
	return nil
}

// sameTable returns indices of columns sharing one dataset prefix and
// row count — the unit a multi-column plan can range over.
func sameTable(columns []smokeColumn) []int {
	byDS := make(map[string][]int)
	best := ""
	for i := range columns {
		ds := columns[i].name[:strings.LastIndex(columns[i].name, "/")]
		key := ds + "\x00" + strconv.Itoa(columns[i].col.Len())
		byDS[key] = append(byDS[key], i)
		if best == "" || len(byDS[key]) > len(byDS[best]) {
			best = key
		}
	}
	return byDS[best]
}

// checkRoutedQuery pushes a multi-column and/or plan with aggregates
// through POST /v1/query on the router and verifies the scatter-
// gathered answer bit-for-bit against one in-process executor over the
// whole table; a malformed plan must answer 400.
func checkRoutedQuery(ctx context.Context, cl *blockstore.Client, routerBase string, columns []smokeColumn, opt *btrblocks.Options) error {
	table := sameTable(columns)
	if len(table) < 2 {
		return fmt.Errorf("no two same-table columns in the corpus")
	}
	a, b := &columns[table[0]], &columns[table[1]]
	probe := firstValueLiteral(a.col)
	plan := &query.Plan{
		Filter: &query.Node{Op: "and", Children: []*query.Node{
			{Op: "notnull", Column: b.name},
			{Op: "or", Children: []*query.Node{
				{Op: "eq", Column: a.name, Value: probe},
				{Op: "notnull", Column: a.name},
			}},
		}},
		Aggregates: []query.AggSpec{
			{Op: "count", Column: a.name},
			{Op: "min", Column: b.name},
			{Op: "max", Column: b.name},
		},
		Rows:   true,
		Return: query.ReturnBitmap,
	}
	routed, err := cl.Query(ctx, plan)
	if err != nil {
		return err
	}
	src := query.MemSource{}
	for _, i := range table {
		ix, err := btrblocks.ParseColumnIndex(columns[i].data)
		if err != nil {
			return err
		}
		src[columns[i].name] = &query.Col{Index: ix, Data: columns[i].data}
	}
	e := &query.Executor{Source: src, Options: opt}
	local, err := e.Run(ctx, plan)
	if err != nil {
		return err
	}
	if routed.Rows != local.Rows || routed.Matched != local.Matched ||
		len(routed.RowIDs) != len(local.RowIDs) || !bytesEqual(routed.Bitmap, local.Bitmap) {
		return fmt.Errorf("routed result diverges: rows=%d/%d matched=%d/%d",
			routed.Rows, local.Rows, routed.Matched, local.Matched)
	}
	for i := range local.Aggregates {
		if routed.Aggregates[i] != local.Aggregates[i] {
			return fmt.Errorf("aggregate %d diverges: routed %+v, local %+v",
				i, routed.Aggregates[i], local.Aggregates[i])
		}
	}
	resp, err := http.Post(routerBase+"/v1/query", "application/json",
		strings.NewReader(`{"filter":{"op":"between"}}`))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("malformed plan answered %d, want 400", resp.StatusCode)
	}
	fmt.Printf("smoke query: routed plan over %s matched %d of %d rows, aggregates agree\n",
		a.name[:strings.LastIndex(a.name, "/")], routed.Matched, routed.Rows)
	return nil
}

// firstValueLiteral renders row 0 of a column as a JSON plan literal.
func firstValueLiteral(col btrblocks.Column) json.RawMessage {
	switch col.Type {
	case btrblocks.TypeInt:
		return json.RawMessage(strconv.FormatInt(int64(col.Ints[0]), 10))
	case btrblocks.TypeInt64:
		return json.RawMessage(strconv.FormatInt(col.Ints64[0], 10))
	case btrblocks.TypeDouble:
		return json.RawMessage(strconv.Quote(strconv.FormatFloat(col.Doubles[0], 'g', -1, 64)))
	default:
		b, _ := json.Marshal(col.Strings.At(0))
		return json.RawMessage(b)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// smokeRepair flips one byte inside a middle block of a multi-block
// column on one replica's disk, reloads that node, and proves (a) the
// routed read of the damaged block is still bit-correct (failover), and
// (b) the repair loop pushes the good copy back so a direct re-scan of
// the healed node succeeds.
func smokeRepair(ctx context.Context, router *cluster.Router, cl *blockstore.Client, nodes []*smokeNode, columns []smokeColumn) error {
	victim := -1
	for i := range columns {
		if columns[i].blocks >= 2 {
			victim = i
			break
		}
	}
	if victim < 0 {
		return fmt.Errorf("no multi-block column in the corpus")
	}
	sc := &columns[victim]
	ix, err := btrblocks.ParseColumnIndex(sc.data)
	if err != nil {
		return err
	}
	badBlock := len(ix.Blocks) / 2
	// With hedging off, FetchBlock rotates the two healthy replicas by
	// block index — flip the copy on the node the rotation makes primary
	// for badBlock, so the routed read deterministically observes the
	// damage (and enqueues the repair) before failing over.
	flipped := nodes[sc.replicas[badBlock%len(sc.replicas)]]
	damaged := append([]byte(nil), sc.data...)
	damaged[ix.Blocks[badBlock].DataOffset()] ^= 0xFF
	path := filepath.Join(flipped.dir, filepath.FromSlash(sc.name))
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		return err
	}
	if _, err := flipped.cl.Invalidate(ctx, sc.name); err != nil {
		return fmt.Errorf("reload flipped replica: %v", err)
	}
	// The flipped node now refuses the block — prove the damage is real.
	if _, err := flipped.cl.Block(ctx, sc.name, badBlock); !blockstore.IsBlockDamage(err) {
		return fmt.Errorf("flipped replica served block %d without damage error: %v", badBlock, err)
	}

	// The routed scan must stay complete and bit-correct: the damaged
	// leg 422s, the router enqueues the repair and fails over.
	if err := checkColumn(ctx, cl, sc); err != nil {
		return fmt.Errorf("routed scan with damaged replica: %v", err)
	}
	m := router.Metrics()
	if m.DamageDetected.Load() == 0 {
		return fmt.Errorf("router scanned past damage without detecting it")
	}

	// A routed query over the damaged column must also stay correct: the
	// leg that lands on the flipped replica 422s and fails over.
	ix2, err := btrblocks.ParseColumnIndex(sc.data)
	if err != nil {
		return err
	}
	qPlan := &query.Plan{
		Filter:     &query.Node{Op: "notnull", Column: sc.name},
		Aggregates: []query.AggSpec{{Op: "count", Column: sc.name}},
	}
	routed, err := cl.Query(ctx, qPlan)
	if err != nil {
		return fmt.Errorf("routed query with damaged replica: %v", err)
	}
	e := &query.Executor{Source: query.MemSource{sc.name: {Index: ix2, Data: sc.data}}}
	local, err := e.Run(ctx, qPlan)
	if err != nil {
		return err
	}
	if routed.Matched != local.Matched || routed.Aggregates[0] != local.Aggregates[0] {
		return fmt.Errorf("routed query diverges under damage: %+v vs %+v", routed, local)
	}

	// The repair loop heals the flipped copy: poll the damaged node
	// directly until its block serves again, then re-scan it end to end.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := flipped.cl.Block(ctx, sc.name, badBlock); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica %s not healed within 15s (repairs: ok=%d failed=%d)",
				flipped.name, m.RepairsSucceeded.Load(), m.RepairsFailed.Load())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := checkColumn(ctx, flipped.cl, sc); err != nil {
		return fmt.Errorf("re-scan of healed node %s: %v", flipped.name, err)
	}
	raw, err := flipped.cl.Raw(ctx, sc.name)
	if err != nil {
		return err
	}
	if len(raw) != len(sc.data) {
		return fmt.Errorf("healed copy is %d bytes, want %d", len(raw), len(sc.data))
	}
	if m.RepairsSucceeded.Load() == 0 {
		return fmt.Errorf("block healed but repairs_succeeded is zero")
	}
	fmt.Printf("smoke phase 2: block %d of %s flipped on %s, scan stayed bit-correct, replica healed (repairs=%d)\n",
		badBlock, sc.name, flipped.name, m.RepairsSucceeded.Load())
	return nil
}

// smokeKill SIGKILLs one node while scans are in flight and proves
// every scan keeps returning complete, bit-correct results, the prober
// marks the node down, and the scatter count still agrees.
func smokeKill(ctx context.Context, routerBase string, cl *blockstore.Client, victim *smokeNode, columns []smokeColumn, opt *btrblocks.Options) error {
	var (
		scans   atomic.Int64
		scanErr error
		errOnce sync.Once
		stop    = make(chan struct{})
		done    = make(chan struct{})
	)
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range columns {
				if err := checkColumn(ctx, cl, &columns[i]); err != nil {
					errOnce.Do(func() { scanErr = fmt.Errorf("%s: %v", columns[i].name, err) })
					return
				}
				scans.Add(1)
			}
		}
	}()

	// Kill the node once scans are demonstrably in flight.
	for scans.Load() == 0 {
		select {
		case <-done:
			close(stop)
			<-done
			return fmt.Errorf("scan loop died before the kill: %v", scanErr)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := victim.cmd.Process.Kill(); err != nil {
		return err
	}
	victim.cmd.Wait()
	killedAt := scans.Load()

	// Scans must keep completing correctly for a while after the kill.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && scans.Load() < killedAt+int64(2*len(columns)) {
		select {
		case <-done:
			close(stop)
			return fmt.Errorf("scan failed after node kill: %v", scanErr)
		case <-time.After(20 * time.Millisecond):
		}
	}
	close(stop)
	<-done
	if scanErr != nil {
		return fmt.Errorf("scan failed after node kill: %v", scanErr)
	}
	if scans.Load() < killedAt+int64(len(columns)) {
		return fmt.Errorf("only %d column scans completed after the kill", scans.Load()-killedAt)
	}

	// The prober must notice the death.
	probeDeadline := time.Now().Add(5 * time.Second)
	for {
		body, err := httpGet(ctx, routerBase+"/v1/nodes")
		if err != nil {
			return err
		}
		var status cluster.ClusterStatus
		if err := json.Unmarshal([]byte(body), &status); err != nil {
			return err
		}
		downSeen := false
		for _, n := range status.Nodes {
			if n.Name == victim.name && !n.Up {
				downSeen = true
			}
		}
		if downSeen {
			break
		}
		if time.Now().After(probeDeadline) {
			return fmt.Errorf("prober did not mark %s down within 5s", victim.name)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Scatter-gather still answers correctly off the survivors.
	if err := checkScatterCount(ctx, routerBase, columns, opt); err != nil {
		return err
	}
	fmt.Printf("smoke phase 3: %s SIGKILLed mid-scan, %d column scans completed bit-correct after the kill\n",
		victim.name, scans.Load()-killedAt)
	return nil
}

// smokeHedge runs a second router over two healthy nodes with a
// latency-skewed transport on the primary-leaning node and an instant
// hedge budget, and proves hedge legs fire, win, and return correct
// data — with the hedge visible in the router's metrics and spans.
func smokeHedge(ctx context.Context, specs []string, columns []smokeColumn, logger *slog.Logger) error {
	// Delay every request through this transport; the other node's
	// requests go straight through, so the hedge leg reliably wins.
	slow := &http.Client{Transport: delayTransport{d: 50 * time.Millisecond}}
	slowName, _, err := cluster.ParseNodeSpec(specs[0])
	if err != nil {
		return err
	}
	spans := obs.NewSpanRecorder(obs.SpanRecorderConfig{Process: "btrrouted", Logger: logger})
	router, err := cluster.NewRouter(cluster.Config{
		Nodes:           specs,
		Replicas:        2,
		ProbeInterval:   -1, // no background churn; both nodes start up
		HedgeInitial:    time.Millisecond,
		HedgeMinSamples: 1 << 30, // pin the budget to HedgeInitial
		Log:             logger,
		Spans:           spans,
		ClientOptions: func(name string) []blockstore.ClientOption {
			if name == slowName {
				return []blockstore.ClientOption{blockstore.WithHTTPClient(slow)}
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	router.Start()
	defer router.Close()

	// Scan a column placed on both remaining nodes (R=2 over 2 nodes
	// places everything on both) through the hedging router directly.
	hedged := false
	m := router.Metrics()
	for i := range columns {
		sc := &columns[i]
		for b := 0; b < sc.blocks; b++ {
			// Root a span per fetch so the replica.fetch children (and
			// their hedge attribute) are recorded.
			fctx, fspan := spans.StartRoot(ctx, "smoke.fetch")
			blk, err := router.FetchBlock(fctx, sc.name, b)
			fspan.End()
			if err != nil {
				return fmt.Errorf("%s block %d: %v", sc.name, b, err)
			}
			if blk.Rows == 0 {
				return fmt.Errorf("%s block %d: empty block", sc.name, b)
			}
		}
		if m.Hedges.Load() > 0 && m.HedgeWins.Load() > 0 {
			hedged = true
			break
		}
	}
	if !hedged {
		return fmt.Errorf("no hedge fired and won (hedges=%d wins=%d)", m.Hedges.Load(), m.HedgeWins.Load())
	}
	// The hedge must be visible in the rendered metrics and in a span.
	var buf strings.Builder
	if _, err := m.WriteTo(&buf); err != nil {
		return err
	}
	if !strings.Contains(buf.String(), "btrrouted_hedged_requests_total") ||
		!strings.Contains(buf.String(), "btrrouted_hedge_wins_total") {
		return fmt.Errorf("hedge counters missing from metrics exposition")
	}
	ss := spans.Snapshot(obs.SpanFilter{})
	if err := ss.Validate(); err != nil {
		return err
	}
	sawHedgeSpan := false
	for _, s := range ss.Spans {
		if s.Name != "replica.fetch" {
			continue
		}
		for _, a := range s.Attrs {
			if a.Key == "hedge" && a.Value == "true" {
				sawHedgeSpan = true
			}
		}
	}
	if !sawHedgeSpan {
		return fmt.Errorf("no replica.fetch span with hedge=true recorded")
	}
	fmt.Printf("smoke phase 4: hedged requests fired=%d won=%d against a %s-skewed replica\n",
		m.Hedges.Load(), m.HedgeWins.Load(), "50ms")
	return nil
}

// delayTransport adds a fixed delay before every round trip.
type delayTransport struct {
	d time.Duration
}

func (t delayTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	select {
	case <-time.After(t.d):
	case <-req.Context().Done():
		return nil, req.Context().Err()
	}
	return http.DefaultTransport.RoundTrip(req)
}

// checkRouterMetrics fetches the router's /metrics and asserts every
// named counter is present with a non-zero value.
func checkRouterMetrics(ctx context.Context, cl *blockstore.Client, want map[string]bool) error {
	text, err := cl.MetricsText(ctx)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if want[fields[0]] {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return fmt.Errorf("metric %s: bad value %q", fields[0], fields[1])
			}
			if v <= 0 {
				return fmt.Errorf("metric %s is zero after the chaos phases", fields[0])
			}
			delete(want, fields[0])
		}
	}
	if len(want) > 0 {
		missing := make([]string, 0, len(want))
		for k := range want {
			missing = append(missing, k)
		}
		return fmt.Errorf("/metrics missing %s", strings.Join(missing, ", "))
	}
	return nil
}

// checkRouterSpans fetches the router's spans, validates them against
// the schema, and asserts a root span with the given name exists plus a
// replica.fetch child resolving to a recorded parent.
func checkRouterSpans(ctx context.Context, cl *blockstore.Client, wantRoot string) error {
	ss, err := cl.Spans(ctx, "", 0)
	if err != nil {
		return err
	}
	if err := ss.Validate(); err != nil {
		return err
	}
	byID := make(map[string]obs.SpanRecord, len(ss.Spans))
	for _, s := range ss.Spans {
		byID[s.SpanID] = s
	}
	sawRoot, sawFetchChild := false, false
	for _, s := range ss.Spans {
		if s.Name == wantRoot && s.ParentID == "" {
			sawRoot = true
		}
		if s.Name == "replica.fetch" {
			if p, ok := byID[s.ParentID]; ok && p.TraceID == s.TraceID {
				sawFetchChild = true
			}
		}
	}
	if !sawRoot {
		return fmt.Errorf("no %s root span recorded", wantRoot)
	}
	if !sawFetchChild {
		return fmt.Errorf("no replica.fetch span linked to a recorded parent")
	}
	return nil
}

// httpGet fetches a URL and returns the body, failing on non-200.
func httpGet(ctx context.Context, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", url, resp.Status)
	}
	return string(body), nil
}
