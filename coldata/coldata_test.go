package coldata

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestMakeStringsAndAccessors(t *testing.T) {
	vals := []string{"", "a", "bb", "", "ccc"}
	s := MakeStrings(vals)
	if s.Len() != len(vals) {
		t.Fatalf("Len = %d", s.Len())
	}
	for i, v := range vals {
		if s.At(i) != v || string(s.View(i)) != v || s.LenAt(i) != len(v) {
			t.Fatalf("accessor mismatch at %d", i)
		}
	}
	if s.TotalBytes() != 6+4*5 {
		t.Fatalf("TotalBytes = %d", s.TotalBytes())
	}
}

func TestAppendFromZeroValue(t *testing.T) {
	var s Strings
	s = s.Append("hello")
	s = s.AppendBytes([]byte("world"))
	if s.Len() != 2 || s.At(0) != "hello" || s.At(1) != "world" {
		t.Fatal("append from zero value broken")
	}
}

func TestSliceRebasesOffsets(t *testing.T) {
	s := MakeStrings([]string{"aa", "bbb", "c", "dddd", "ee"})
	sub := s.Slice(1, 4)
	want := []string{"bbb", "c", "dddd"}
	if sub.Len() != 3 {
		t.Fatalf("sub len %d", sub.Len())
	}
	for i, v := range want {
		if sub.At(i) != v {
			t.Fatalf("sub[%d] = %q, want %q", i, sub.At(i), v)
		}
	}
	if sub.Offsets[0] != 0 {
		t.Fatal("slice must rebase offsets to zero")
	}
	// full-range and empty slices
	if full := s.Slice(0, 5); !full.Equal(s) {
		t.Fatal("full slice should equal original")
	}
	if empty := s.Slice(2, 2); empty.Len() != 0 {
		t.Fatal("empty slice should be empty")
	}
}

func TestEqual(t *testing.T) {
	a := MakeStrings([]string{"x", "yy"})
	b := MakeStrings([]string{"x", "yy"})
	c := MakeStrings([]string{"x", "zz"})
	d := MakeStrings([]string{"x"})
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Fatal("Equal broken")
	}
}

func TestViewsRoundTrip(t *testing.T) {
	s := MakeStrings([]string{"alpha", "", "beta"})
	v := ViewsOf(s)
	if v.Len() != 3 || v.At(0) != "alpha" || v.At(1) != "" || v.At(2) != "beta" {
		t.Fatal("ViewsOf broken")
	}
	m := v.Materialize()
	if !m.Equal(s) {
		t.Fatal("Materialize should reproduce the column")
	}
	if !reflect.DeepEqual(m.Offsets, s.Offsets) {
		t.Fatal("materialized offsets differ")
	}
}

func TestQuickMakeMaterialize(t *testing.T) {
	f := func(vals []string) bool {
		s := MakeStrings(vals)
		if s.Len() != len(vals) {
			return false
		}
		m := ViewsOf(s).Materialize()
		return m.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
