// Package coldata defines the typed column vectors BtrBlocks compresses:
// 32-bit integers, 64-bit floats, and variable-length strings in a
// flattened offsets+data representation. The flattened form is shared by
// the compressor, the decompressor and the baselines, and is what makes
// the paper's copy-free string dictionary decompression possible: a
// decompressed string column can be a set of (offset, length) views into a
// shared pool instead of per-string allocations.
package coldata

// Strings is a flattened string column: value i occupies
// Data[Offsets[i]:Offsets[i+1]]. len(Offsets) == Len()+1; an empty column
// has Offsets == []uint32{0} or nil.
type Strings struct {
	Offsets []uint32
	Data    []byte
}

// MakeStrings flattens a []string into a Strings column.
func MakeStrings(values []string) Strings {
	s := Strings{Offsets: make([]uint32, 1, len(values)+1)}
	total := 0
	for _, v := range values {
		total += len(v)
	}
	s.Data = make([]byte, 0, total)
	for _, v := range values {
		s.Data = append(s.Data, v...)
		s.Offsets = append(s.Offsets, uint32(len(s.Data)))
	}
	return s
}

// NewStringsBuilder returns an empty Strings ready for Append.
func NewStringsBuilder(n, dataHint int) Strings {
	return Strings{
		Offsets: append(make([]uint32, 0, n+1), 0),
		Data:    make([]byte, 0, dataHint),
	}
}

// Len returns the number of strings in the column.
func (s Strings) Len() int {
	if len(s.Offsets) == 0 {
		return 0
	}
	return len(s.Offsets) - 1
}

// At returns value i as a string (copies).
func (s Strings) At(i int) string { return string(s.View(i)) }

// View returns value i as a byte slice into Data (no copy).
func (s Strings) View(i int) []byte {
	return s.Data[s.Offsets[i]:s.Offsets[i+1]]
}

// LenAt returns the length of value i.
func (s Strings) LenAt(i int) int {
	return int(s.Offsets[i+1] - s.Offsets[i])
}

// Append adds a value to the column and returns the updated column.
func (s Strings) Append(v string) Strings {
	if len(s.Offsets) == 0 {
		s.Offsets = append(s.Offsets, 0)
	}
	s.Data = append(s.Data, v...)
	s.Offsets = append(s.Offsets, uint32(len(s.Data)))
	return s
}

// AppendBytes adds a byte-slice value to the column.
func (s Strings) AppendBytes(v []byte) Strings {
	if len(s.Offsets) == 0 {
		s.Offsets = append(s.Offsets, 0)
	}
	s.Data = append(s.Data, v...)
	s.Offsets = append(s.Offsets, uint32(len(s.Data)))
	return s
}

// Slice returns the sub-column [lo, hi) rebased to its own offsets.
func (s Strings) Slice(lo, hi int) Strings {
	out := NewStringsBuilder(hi-lo, 0)
	base := s.Offsets[lo]
	out.Data = s.Data[base:s.Offsets[hi]]
	for i := lo + 1; i <= hi; i++ {
		out.Offsets = append(out.Offsets, s.Offsets[i]-base)
	}
	return out
}

// TotalBytes returns the in-memory footprint used for compression-ratio
// accounting: string payload plus one 32-bit offset per value, matching
// how the paper's uncompressed binary format stores string columns.
func (s Strings) TotalBytes() int {
	return len(s.Data) + 4*s.Len()
}

// Equal reports whether two columns hold identical values.
func (s Strings) Equal(o Strings) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := 0; i < s.Len(); i++ {
		if string(s.View(i)) != string(o.View(i)) {
			return false
		}
	}
	return true
}

// View is one string value as an (offset, length) pair into a shared pool.
// Offset and length form a fixed-size 64-bit tuple, the layout §5 of the
// paper uses so string dictionary decompression never copies string bytes.
type View struct {
	Off uint32
	Len uint32
}

// StringViews is a decompressed string column in no-copy form: Views[i]
// points into Pool. Pool is typically the dictionary's string pool.
type StringViews struct {
	Views []View
	Pool  []byte
}

// Len returns the number of values.
func (v StringViews) Len() int { return len(v.Views) }

// At returns value i as a string (copies).
func (v StringViews) At(i int) string { return string(v.Bytes(i)) }

// Bytes returns value i as a byte slice into Pool (no copy).
func (v StringViews) Bytes(i int) []byte {
	w := v.Views[i]
	return v.Pool[w.Off : w.Off+w.Len]
}

// Materialize converts the view column into an owned Strings column.
func (v StringViews) Materialize() Strings {
	total := 0
	for _, w := range v.Views {
		total += int(w.Len)
	}
	out := NewStringsBuilder(len(v.Views), total)
	for i := range v.Views {
		out = out.AppendBytes(v.Bytes(i))
	}
	return out
}

// ViewsOf converts an owned Strings column into views over its own data.
func ViewsOf(s Strings) StringViews {
	views := make([]View, s.Len())
	for i := range views {
		views[i] = View{Off: s.Offsets[i], Len: s.Offsets[i+1] - s.Offsets[i]}
	}
	return StringViews{Views: views, Pool: s.Data}
}
