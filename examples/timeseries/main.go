// Timeseries: ingest an out-of-memory-sized event log chunk by chunk
// through the streaming writer, using int64 microsecond timestamps —
// the column type int32 cannot hold and FOR + bit-packing compresses
// hardest. Reads the stream back chunk by chunk, so peak memory stays at
// one chunk regardless of table size.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math/rand"

	"btrblocks"
)

func main() {
	schema := []btrblocks.Column{
		{Name: "ts_us", Type: btrblocks.TypeInt64},
		{Name: "sensor", Type: btrblocks.TypeString},
		{Name: "reading", Type: btrblocks.TypeDouble},
	}
	opt := btrblocks.DefaultOptions()

	var blob bytes.Buffer
	w, err := btrblocks.NewWriter(&blob, schema, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Write 4 chunks of 64k events each (a real pipeline would loop over
	// an unbounded source).
	rng := rand.New(rand.NewSource(1))
	ts := int64(1_700_000_000_000_000) // epoch microseconds
	sensors := []string{"turbine-a/temp", "turbine-a/rpm", "turbine-b/temp", "turbine-b/rpm"}
	uncompressed := 0
	for chunkNo := 0; chunkNo < 4; chunkNo++ {
		n := 64000
		times := make([]int64, n)
		names := make([]string, n)
		readings := make([]float64, n)
		for i := 0; i < n; i++ {
			ts += int64(200 + rng.Intn(800)) // ~sub-millisecond cadence
			times[i] = ts
			names[i] = sensors[rng.Intn(len(sensors))]
			readings[i] = float64(rng.Intn(120000)) / 100 // 0.00 .. 1200.00
		}
		chunk := &btrblocks.Chunk{Columns: []btrblocks.Column{
			btrblocks.Int64Column("ts_us", times),
			btrblocks.StringColumn("sensor", names),
			btrblocks.DoubleColumn("reading", readings),
		}}
		uncompressed += chunk.UncompressedBytes()
		if err := w.WriteChunk(chunk); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes for %.1f MB of events (%.2fx)\n",
		blob.Len(), float64(uncompressed)/1e6, float64(uncompressed)/float64(blob.Len()))

	// Read it back chunk by chunk, computing a running aggregate.
	r, err := btrblocks.NewReader(bytes.NewReader(blob.Bytes()), opt)
	if err != nil {
		log.Fatal(err)
	}
	var count int
	var sum float64
	var firstTS, lastTS int64
	for {
		chunk, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		times := chunk.Columns[0].Ints64
		if count == 0 {
			firstTS = times[0]
		}
		lastTS = times[len(times)-1]
		for _, v := range chunk.Columns[2].Doubles {
			sum += v
			count++
		}
	}
	fmt.Printf("scanned %d events spanning %.1f s, avg reading %.2f\n",
		count, float64(lastTS-firstTS)/1e6, sum/float64(count))
	fmt.Printf("stream footer: %d chunks, %d rows\n", r.Chunks(), r.Rows())
}
