// Csv-pipeline: ingest a CSV file, compress it column-by-column into one
// object per column (the data-lake layout), then run a selective scan
// that touches only two of the columns — including the no-copy string
// path, where decompression yields (offset, length) views into the block
// dictionary instead of copied strings.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"btrblocks"
	"btrblocks/internal/csvconv"
	"btrblocks/metadata"
)

func main() {
	dir, err := os.MkdirTemp("", "btrblocks-csv-pipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Write a CSV file (in a real pipeline this already exists).
	csvPath := filepath.Join(dir, "orders.csv")
	var sb strings.Builder
	sb.WriteString("order_id,amount,status,region\n")
	regions := []string{"us-east", "us-west", "eu-central", "ap-south"}
	statuses := []string{"SHIPPED", "PENDING", "RETURNED"}
	for i := 0; i < 150000; i++ {
		fmt.Fprintf(&sb, "%d,%d.%02d,%s,%s\n",
			1000000+i, i%900+10, i%100, statuses[i%3], regions[(i/1000)%4])
	}
	if err := os.WriteFile(csvPath, []byte(sb.String()), 0o644); err != nil {
		log.Fatal(err)
	}

	// 2. Ingest: CSV -> typed columns.
	f, err := os.Open(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	chunk, err := csvconv.ReadChunk(f, []btrblocks.Type{
		btrblocks.TypeInt, btrblocks.TypeDouble, btrblocks.TypeString, btrblocks.TypeString,
	})
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compress one object per column.
	opt := btrblocks.DefaultOptions()
	paths := map[string]string{}
	for _, col := range chunk.Columns {
		data, err := btrblocks.CompressColumn(col, opt)
		if err != nil {
			log.Fatal(err)
		}
		p := filepath.Join(dir, col.Name+".btr")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			log.Fatal(err)
		}
		paths[col.Name] = p
		fmt.Printf("wrote %-10s %8d bytes (%.1fx)\n",
			col.Name, len(data), float64(col.UncompressedBytes())/float64(len(data)))
	}

	// 4. Selective scan: SELECT sum(amount) GROUP BY region touches only
	// two column objects; the rest are never read.
	amountData, err := os.ReadFile(paths["amount"])
	if err != nil {
		log.Fatal(err)
	}
	amounts, err := btrblocks.DecompressColumn(amountData, opt)
	if err != nil {
		log.Fatal(err)
	}
	regionData, err := os.ReadFile(paths["region"])
	if err != nil {
		log.Fatal(err)
	}
	// No-copy string decompression: views into the block dictionaries.
	regionViews, _, err := btrblocks.DecompressStringViews(regionData, opt)
	if err != nil {
		log.Fatal(err)
	}

	sums := map[string]float64{}
	row := 0
	for _, block := range regionViews {
		for i := 0; i < block.Len(); i++ {
			sums[block.At(i)] += amounts.Doubles[row]
			row++
		}
	}
	fmt.Println("\nSELECT region, SUM(amount) FROM orders GROUP BY region:")
	for _, r := range regions {
		fmt.Printf("  %-12s %14.2f\n", r, sums[r])
	}

	// 5. Predicates without decompression: COUNT(*) WHERE status = 'RETURNED'
	// runs directly on the compressed blocks (dictionary lookup + code
	// counting), and the metadata layer prunes blocks before any fetch.
	statusData, err := os.ReadFile(paths["status"])
	if err != nil {
		log.Fatal(err)
	}
	returned, err := btrblocks.CountEqualString(statusData, "RETURNED", opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCOUNT(*) WHERE status='RETURNED' (computed on compressed data): %d\n", returned)

	meta := metadata.Build(chunk.Columns[0], opt) // order_id summaries
	blocks := meta.PruneIntRange(1_100_000, 1_100_999)
	fmt.Printf("metadata pruning: order_id in [1100000,1100999] touches %d of %d blocks\n",
		len(blocks), len(meta.Blocks))
}
