// Float-telemetry: Pseudodecimal Encoding on the kind of double columns
// the paper's analysis of real BI data surfaced — pricing data stored as
// float64 — compared against dictionary-style columns and high-precision
// sensor values where other schemes win. The scheme selection algorithm
// picks a different winner for each distribution.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"btrblocks"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	n := 64000

	// Pricing: high-cardinality two-decimal values ($0.00 .. $999.99).
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = float64(rng.Intn(100000)) / 100
	}
	// Status metric: a handful of distinct readings.
	levels := []float64{0, 0.25, 0.5, 0.75, 1}
	status := make([]float64, n)
	for i := range status {
		status[i] = levels[rng.Intn(len(levels))]
	}
	// Sensor: full-precision physical measurements.
	sensor := make([]float64, n)
	for i := range sensor {
		sensor[i] = rng.NormFloat64() * 9.81
	}

	opt := btrblocks.DefaultOptions()
	for _, c := range []btrblocks.Column{
		btrblocks.DoubleColumn("price_usd", prices),
		btrblocks.DoubleColumn("battery_level", status),
		btrblocks.DoubleColumn("accel_z", sensor),
	} {
		scheme, estimate := btrblocks.Choose(c, opt)
		data, err := btrblocks.CompressColumn(c, opt)
		if err != nil {
			log.Fatal(err)
		}
		back, err := btrblocks.DecompressColumn(data, opt)
		if err != nil {
			log.Fatal(err)
		}
		for i := range c.Doubles {
			if back.Doubles[i] != c.Doubles[i] {
				log.Fatalf("%s: lossy at %d", c.Name, i)
			}
		}
		actual := float64(c.UncompressedBytes()) / float64(len(data))
		fmt.Printf("%-14s chose %-14s estimated %6.2fx, actual %6.2fx (bit-exact)\n",
			c.Name, scheme, estimate, actual)
	}

	fmt.Println("\npricing data rewrites each double as (digits, exponent) integer pairs;")
	fmt.Println("low-cardinality readings dictionary-encode; raw sensor noise stays plain.")
}
