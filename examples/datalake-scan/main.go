// Datalake-scan: the paper's motivating scenario. A table sits in an
// object store behind a 100 Gbit network; a scan downloads and
// decompresses it. With a weakly-compressed format the network is the
// bottleneck; with slow decompression the CPU is. BtrBlocks aims to be
// compact enough to beat the network and fast enough to keep up with it.
//
// This example stores the same table once per format, then simulates a
// scan: decompression time is measured for real, transfer time is modeled
// from the compressed size, and scan cost uses the c5n.18xlarge rates.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"btrblocks/internal/experiments"
	"btrblocks/internal/pbi"
)

const (
	networkGbps     = 100
	dollarsPerHour  = 3.89
	dollarsPer1kGET = 0.0004
	chunkBytes      = 16 << 20
)

func main() {
	// One of the "largest five" synthetic Public BI datasets.
	ds := pbi.Largest5(64000, 42)[0]
	fmt.Printf("dataset %q: %d rows, %d columns, %.1f MB uncompressed\n\n",
		ds.Name, ds.Chunk.NumRows(), len(ds.Chunk.Columns),
		float64(ds.Chunk.UncompressedBytes())/1e6)

	fmt.Printf("%-16s %10s %12s %12s %12s\n", "format", "ratio", "scan [ms]", "Tc [Gbps]", "cost [$]")
	for _, f := range experiments.StandardFormats() {
		var blobs [][]byte
		var names []string
		compressed := 0
		for _, col := range ds.Chunk.Columns {
			data, err := f.Compress(col)
			if err != nil {
				log.Fatal(err)
			}
			blobs = append(blobs, data)
			names = append(names, col.Name)
			compressed += len(data)
		}

		// Measure decompression with all cores, like a scan would.
		start := time.Now()
		type job struct{ i int }
		work := make(chan job)
		done := make(chan error)
		workers := runtime.GOMAXPROCS(0)
		for w := 0; w < workers; w++ {
			go func() {
				for j := range work {
					if _, err := f.Scan(blobs[j.i], names[j.i]); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
		}
		for i := range blobs {
			work <- job{i}
		}
		close(work)
		for w := 0; w < workers; w++ {
			if err := <-done; err != nil {
				log.Fatal(err)
			}
		}
		decompSecs := time.Since(start).Seconds()

		// Model the network side and combine (pipelined).
		transferSecs := float64(compressed) * 8 / (networkGbps * 1e9)
		scanSecs := transferSecs
		if decompSecs > scanSecs {
			scanSecs = decompSecs
		}
		requests := (compressed + chunkBytes - 1) / chunkBytes
		if requests == 0 {
			requests = 1
		}
		cost := scanSecs/3600*dollarsPerHour + float64(requests)/1000*dollarsPer1kGET

		unc := float64(ds.Chunk.UncompressedBytes())
		fmt.Printf("%-16s %10.2f %12.2f %12.2f %12.8f\n",
			f.Name, unc/float64(compressed), scanSecs*1000,
			float64(compressed)*8/1e9/scanSecs, cost)
	}
	fmt.Println("\nTc is throughput over *compressed* bytes: it must exceed the network")
	fmt.Println("bandwidth for the scan to be network-bound rather than CPU-bound (§6.7).")
}
