// Quickstart: compress a three-column chunk with BtrBlocks, decompress
// it, and verify the round trip.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"btrblocks"
)

func main() {
	// Build a chunk: one integer, one double and one string column.
	rng := rand.New(rand.NewSource(1))
	n := 200000
	ids := make([]int32, n)
	prices := make([]float64, n)
	cities := make([]string, n)
	pool := []string{"PHOENIX", "RALEIGH", "BETHESDA", "ATHENS"}
	for i := 0; i < n; i++ {
		ids[i] = int32(i / 3) // runs of 3: RLE territory
		prices[i] = float64(rng.Intn(100000)) / 100
		cities[i] = pool[rng.Intn(len(pool))]
	}
	chunk := &btrblocks.Chunk{Columns: []btrblocks.Column{
		btrblocks.IntColumn("id", ids),
		btrblocks.DoubleColumn("price", prices),
		btrblocks.StringColumn("city", cities),
	}}

	// Compress. Options' zero value gives the paper's defaults:
	// 64,000-value blocks, cascade depth 3, 10×64 sampling.
	opt := btrblocks.DefaultOptions()
	cc, err := btrblocks.CompressChunk(chunk, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d rows: %d -> %d bytes (%.2fx)\n",
		chunk.NumRows(), chunk.UncompressedBytes(), cc.CompressedBytes(),
		float64(chunk.UncompressedBytes())/float64(cc.CompressedBytes()))
	for _, st := range cc.Stats {
		fmt.Printf("  %-8s %-8s %7.2fx  block schemes: %v\n",
			st.Name, st.Type, st.Ratio(), st.BlockSchemes)
	}

	// Decompress and verify.
	back, err := btrblocks.DecompressChunk(cc, opt)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if back.Columns[0].Ints[i] != ids[i] ||
			back.Columns[1].Doubles[i] != prices[i] ||
			back.Columns[2].Strings.At(i) != cities[i] {
			log.Fatalf("round trip mismatch at row %d", i)
		}
	}
	fmt.Println("round trip verified: all values identical")
}
