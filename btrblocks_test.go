package btrblocks

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"btrblocks/coldata"
)

func makeTestChunk(rows int, seed int64) *Chunk {
	rng := rand.New(rand.NewSource(seed))
	ints := make([]int32, rows)
	doubles := make([]float64, rows)
	strs := make([]string, rows)
	cities := []string{"PHOENIX", "RALEIGH", "BETHESDA", "ATHENS", "CURITIBA"}
	for i := 0; i < rows; i++ {
		ints[i] = int32(rng.Intn(1000))
		doubles[i] = float64(rng.Intn(100000)) / 100
		strs[i] = cities[rng.Intn(len(cities))]
	}
	return &Chunk{Columns: []Column{
		IntColumn("id", ints),
		DoubleColumn("price", doubles),
		StringColumn("city", strs),
	}}
}

func TestColumnRoundTripAllTypes(t *testing.T) {
	opt := DefaultOptions()
	chunk := makeTestChunk(150000, 1) // spans multiple 64k blocks
	for _, col := range chunk.Columns {
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecompressColumn(data, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != col.Name || got.Type != col.Type || got.Len() != col.Len() {
			t.Fatalf("column header mismatch: %+v", got)
		}
		switch col.Type {
		case TypeInt:
			for i := range col.Ints {
				if got.Ints[i] != col.Ints[i] {
					t.Fatalf("int %d mismatch", i)
				}
			}
		case TypeDouble:
			for i := range col.Doubles {
				if math.Float64bits(got.Doubles[i]) != math.Float64bits(col.Doubles[i]) {
					t.Fatalf("double %d mismatch", i)
				}
			}
		case TypeString:
			if !got.Strings.Equal(col.Strings) {
				t.Fatal("string column mismatch")
			}
		}
	}
}

func TestChunkRoundTripParallel(t *testing.T) {
	opt := &Options{Parallelism: 4}
	chunk := makeTestChunk(200000, 2)
	cc, err := CompressChunk(chunk, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cc.Stats) != 3 {
		t.Fatalf("stats for %d columns", len(cc.Stats))
	}
	for _, st := range cc.Stats {
		if st.Ratio() < 1 {
			t.Errorf("column %s ratio %.2f < 1", st.Name, st.Ratio())
		}
		if want := (200000 + DefaultBlockSize - 1) / DefaultBlockSize; len(st.BlockSchemes) != want {
			t.Errorf("column %s has %d block schemes, want %d", st.Name, len(st.BlockSchemes), want)
		}
	}
	got, err := DecompressChunk(cc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != chunk.NumRows() {
		t.Fatalf("rows %d != %d", got.NumRows(), chunk.NumRows())
	}
	if !got.Columns[2].Strings.Equal(chunk.Columns[2].Strings) {
		t.Fatal("string column mismatch after parallel round trip")
	}
}

func TestFileEncodeDecode(t *testing.T) {
	opt := DefaultOptions()
	chunk := makeTestChunk(10000, 3)
	cc, err := CompressChunk(chunk, opt)
	if err != nil {
		t.Fatal(err)
	}
	file := cc.EncodeFile()
	got, err := DecodeFile(file)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressChunk(got, opt)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 10000 {
		t.Fatalf("rows = %d", back.NumRows())
	}
	// corrupt file container checks
	if _, err := DecodeFile(file[:5]); err == nil {
		t.Fatal("short file not detected")
	}
	bad := append([]byte(nil), file...)
	bad[0] = 'X'
	if _, err := DecodeFile(bad); err == nil {
		t.Fatal("bad magic not detected")
	}
}

func TestNullMaskRoundTrip(t *testing.T) {
	opt := DefaultOptions()
	rng := rand.New(rand.NewSource(4))
	n := 70000
	ints := make([]int32, n)
	nulls := NewNullMask()
	for i := range ints {
		ints[i] = int32(rng.Intn(100))
		if rng.Float64() < 0.3 {
			nulls.SetNull(i)
		}
	}
	col := IntColumn("x", ints)
	col.Nulls = nulls
	data, err := CompressColumn(col, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressColumn(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nulls.NullCount() != nulls.NullCount() {
		t.Fatalf("null count %d != %d", got.Nulls.NullCount(), nulls.NullCount())
	}
	for i := 0; i < n; i++ {
		if got.Nulls.IsNull(i) != nulls.IsNull(i) {
			t.Fatalf("null flag mismatch at %d", i)
		}
		if !nulls.IsNull(i) && got.Ints[i] != ints[i] {
			t.Fatalf("non-null value changed at %d", i)
		}
	}
}

func TestNullDensificationImprovesCompression(t *testing.T) {
	// A column that is noise except at NULL positions should compress far
	// better once nulls are densified into runs.
	rng := rand.New(rand.NewSource(5))
	n := 64000
	ints := make([]int32, n)
	nulls := NewNullMask()
	for i := range ints {
		if i%4 != 0 {
			nulls.SetNull(i)
			ints[i] = rng.Int31() // garbage at null positions
		} else {
			ints[i] = 100
		}
	}
	col := IntColumn("x", ints)
	col.Nulls = nulls
	withNulls, err := CompressColumn(col, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	colNoMask := IntColumn("x", ints)
	without, err := CompressColumn(colNoMask, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(withNulls) >= len(without) {
		t.Fatalf("densified column (%d bytes) should beat raw garbage (%d bytes)", len(withNulls), len(without))
	}
}

func TestStringViewsNoCopyPath(t *testing.T) {
	opt := DefaultOptions()
	vals := make([]string, 64000)
	for i := range vals {
		vals[i] = fmt.Sprintf("region-%d", i%10)
	}
	col := StringColumn("region", vals)
	data, err := CompressColumn(col, opt)
	if err != nil {
		t.Fatal(err)
	}
	views, _, err := DecompressStringViews(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 {
		t.Fatalf("expected 1 block of views, got %d", len(views))
	}
	// The shared pool must be about dictionary-sized, not data-sized:
	// that is the no-copy guarantee.
	if len(views[0].Pool) > 1000 {
		t.Fatalf("view pool is %d bytes; expected dictionary-sized pool", len(views[0].Pool))
	}
	for i, want := range vals {
		if views[0].At(i) != want {
			t.Fatalf("value %d mismatch", i)
		}
	}
	// Type check on the views API.
	if _, _, err := DecompressStringViews(mustCompress(t, IntColumn("i", []int32{1})), opt); err == nil {
		t.Fatal("expected type mismatch error")
	}
}

func mustCompress(t *testing.T, col Column) []byte {
	t.Helper()
	data, err := CompressColumn(col, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCustomBlockSize(t *testing.T) {
	opt := &Options{BlockSize: 1000}
	ints := make([]int32, 5500)
	for i := range ints {
		ints[i] = int32(i)
	}
	data, err := CompressColumn(IntColumn("seq", ints), opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressColumn(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ints {
		if got.Ints[i] != ints[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestSchemeRestriction(t *testing.T) {
	// With only Uncompressed allowed, output must be bigger than input.
	opt := &Options{IntSchemes: []Scheme{}}
	ints := make([]int32, 64000) // all zeros: normally OneValue
	data, err := CompressColumn(IntColumn("zeros", ints), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 4*len(ints) {
		t.Fatalf("restricted pool still compressed: %d bytes", len(data))
	}
	got, err := DecompressColumn(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(ints) {
		t.Fatal("restricted round trip broken")
	}
}

func TestChooseAPI(t *testing.T) {
	zeros := make([]int32, 64000)
	scheme, ratio := Choose(IntColumn("z", zeros), DefaultOptions())
	if scheme != SchemeOneValue || ratio < 100 {
		t.Fatalf("Choose = %v/%.1f", scheme, ratio)
	}
}

func TestCorruptColumnFile(t *testing.T) {
	opt := DefaultOptions()
	data := mustCompress(t, IntColumn("x", []int32{1, 2, 3, 1, 2, 3}))
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecompressColumn(data[:cut], opt); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	bad := append([]byte(nil), data...)
	bad[4] = 99 // version
	if _, err := DecompressColumn(bad, opt); err == nil {
		t.Fatal("bad version not detected")
	}
}

func TestQuickPublicRoundTrip(t *testing.T) {
	opt := &Options{BlockSize: 100} // small blocks exercise splitting
	f := func(ints []int32, doubles []float64, strs []string) bool {
		cols := []Column{
			IntColumn("a", ints),
			DoubleColumn("b", doubles),
			StringColumn("c", strs),
		}
		for _, col := range cols {
			data, err := CompressColumn(col, opt)
			if err != nil {
				return false
			}
			got, err := DecompressColumn(data, opt)
			if err != nil || got.Len() != col.Len() {
				return false
			}
			switch col.Type {
			case TypeInt:
				for i := range col.Ints {
					if got.Ints[i] != col.Ints[i] {
						return false
					}
				}
			case TypeDouble:
				for i := range col.Doubles {
					if math.Float64bits(got.Doubles[i]) != math.Float64bits(col.Doubles[i]) {
						return false
					}
				}
			case TypeString:
				if !got.Strings.Equal(col.Strings) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyChunk(t *testing.T) {
	opt := DefaultOptions()
	cc, err := CompressChunk(&Chunk{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressChunk(cc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 0 {
		t.Fatal("empty chunk should stay empty")
	}
}

func TestStringsColumnFlattened(t *testing.T) {
	s := coldata.MakeStrings([]string{"a", "bb", "ccc"})
	col := StringsColumn("s", s)
	if col.Len() != 3 || col.UncompressedBytes() != 6+12 {
		t.Fatalf("unexpected column shape: len=%d bytes=%d", col.Len(), col.UncompressedBytes())
	}
}
