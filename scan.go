package btrblocks

import (
	"encoding/binary"
	"math"

	"btrblocks/internal/core"
	"btrblocks/internal/roaring"
)

// This file exposes predicate evaluation on compressed column files —
// the §7 capability: equality predicates are answered from the compressed
// representation where the block's scheme permits (OneValue in O(1), RLE
// by summing run lengths, dictionaries by resolving the value to a code
// once), falling back to decode-and-compare otherwise.

// CountEqualInt32 counts non-NULL rows equal to v in a compressed integer
// column file.
func CountEqualInt32(data []byte, v int32, opt *Options) (int, error) {
	return countEqualColumn(data, opt, TypeInt,
		func(stream []byte, cfg *core.Config) (int, int, error) {
			return core.CountEqualInt(stream, v, cfg)
		},
		func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error) {
			values, _, err := core.DecompressInt(nil, stream, cfg)
			if err != nil {
				return 0, err
			}
			count := 0
			for i, x := range values {
				if x == v && !nulls.Contains(uint32(i)) {
					count++
				}
			}
			return count, nil
		})
}

// CountEqualInt64 counts non-NULL rows equal to v in a compressed int64
// column file.
func CountEqualInt64(data []byte, v int64, opt *Options) (int, error) {
	return countEqualColumn(data, opt, TypeInt64,
		func(stream []byte, cfg *core.Config) (int, int, error) {
			return core.CountEqualInt64(stream, v, cfg)
		},
		func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error) {
			values, _, err := core.DecompressInt64(nil, stream, cfg)
			if err != nil {
				return 0, err
			}
			count := 0
			for i, x := range values {
				if x == v && !nulls.Contains(uint32(i)) {
					count++
				}
			}
			return count, nil
		})
}

// CountEqualDouble counts non-NULL rows bit-exactly equal to v in a
// compressed double column file.
func CountEqualDouble(data []byte, v float64, opt *Options) (int, error) {
	vb := math.Float64bits(v)
	return countEqualColumn(data, opt, TypeDouble,
		func(stream []byte, cfg *core.Config) (int, int, error) {
			return core.CountEqualDouble(stream, v, cfg)
		},
		func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error) {
			values, _, err := core.DecompressDouble(nil, stream, cfg)
			if err != nil {
				return 0, err
			}
			count := 0
			for i, x := range values {
				if math.Float64bits(x) == vb && !nulls.Contains(uint32(i)) {
					count++
				}
			}
			return count, nil
		})
}

// CountEqualString counts non-NULL rows equal to v in a compressed string
// column file.
func CountEqualString(data []byte, v string, opt *Options) (int, error) {
	vb := []byte(v)
	return countEqualColumn(data, opt, TypeString,
		func(stream []byte, cfg *core.Config) (int, int, error) {
			return core.CountEqualString(stream, vb, cfg)
		},
		func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error) {
			views, _, err := core.DecompressString(stream, cfg)
			if err != nil {
				return 0, err
			}
			count := 0
			for i := 0; i < views.Len(); i++ {
				if string(views.Bytes(i)) == v && !nulls.Contains(uint32(i)) {
					count++
				}
			}
			return count, nil
		})
}

// countEqualColumn walks a column file's blocks. Blocks without NULLs use
// the compressed-data fast path; blocks with NULLs must decode, because
// the compressor rewrites NULL slots (their content is unspecified) and a
// rewritten slot could spuriously match.
func countEqualColumn(
	data []byte,
	opt *Options,
	want Type,
	fast func(stream []byte, cfg *core.Config) (int, int, error),
	slow func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error),
) (int, error) {
	cfg := opt.coreConfig()
	if len(data) < 12 || string(data[:4]) != columnMagic || data[4] != formatVersion {
		return 0, ErrCorrupt
	}
	if Type(data[5]) != want {
		return 0, ErrTypeMismatch
	}
	nameLen := int(binary.LittleEndian.Uint16(data[6:]))
	pos := 8 + nameLen
	if len(data) < pos+4 {
		return 0, ErrCorrupt
	}
	blockCount := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4

	total := 0
	for b := 0; b < blockCount; b++ {
		if len(data) < pos+8 {
			return 0, ErrCorrupt
		}
		rows := int(binary.LittleEndian.Uint32(data[pos:]))
		nullLen := int(binary.LittleEndian.Uint32(data[pos+4:]))
		pos += 8
		if rows > core.MaxBlockValues {
			return 0, ErrCorrupt
		}
		cfg.MaxDecodedValues = rows
		var nulls *roaring.Bitmap
		if nullLen > 0 {
			if len(data) < pos+nullLen {
				return 0, ErrCorrupt
			}
			bm, used, err := roaring.FromBytes(data[pos : pos+nullLen])
			if err != nil || used != nullLen {
				return 0, ErrCorrupt
			}
			nulls = bm
			pos += nullLen
		}
		if len(data) < pos+4 {
			return 0, ErrCorrupt
		}
		dataLen := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		if dataLen < 0 || len(data) < pos+dataLen {
			return 0, ErrCorrupt
		}
		stream := data[pos : pos+dataLen]
		if nulls == nil {
			count, used, err := fast(stream, cfg)
			if err != nil {
				return 0, err
			}
			if used != dataLen {
				return 0, ErrCorrupt
			}
			total += count
		} else {
			count, err := slow(stream, nulls, cfg)
			if err != nil {
				return 0, err
			}
			total += count
		}
		pos += dataLen
	}
	if pos != len(data) {
		return 0, ErrCorrupt
	}
	return total, nil
}
