package btrblocks

import (
	"math"
	"time"

	"btrblocks/internal/core"
	"btrblocks/internal/roaring"
)

// This file exposes predicate evaluation on compressed column files —
// the §7 capability: equality predicates are answered from the compressed
// representation where the block's scheme permits (OneValue in O(1), RLE
// by summing run lengths, dictionaries by resolving the value to a code
// once), falling back to decode-and-compare otherwise.

// CountEqualInt32 counts non-NULL rows equal to v in a compressed integer
// column file.
func CountEqualInt32(data []byte, v int32, opt *Options) (int, error) {
	return countEqualColumn(data, opt, TypeInt,
		func(stream []byte, cfg *core.Config) (int, int, error) {
			return core.CountEqualInt(stream, v, cfg)
		},
		func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error) {
			values, _, err := core.DecompressInt(nil, stream, cfg)
			if err != nil {
				return 0, err
			}
			count := 0
			for i, x := range values {
				if x == v && !nulls.Contains(uint32(i)) {
					count++
				}
			}
			return count, nil
		})
}

// CountEqualInt64 counts non-NULL rows equal to v in a compressed int64
// column file.
func CountEqualInt64(data []byte, v int64, opt *Options) (int, error) {
	return countEqualColumn(data, opt, TypeInt64,
		func(stream []byte, cfg *core.Config) (int, int, error) {
			return core.CountEqualInt64(stream, v, cfg)
		},
		func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error) {
			values, _, err := core.DecompressInt64(nil, stream, cfg)
			if err != nil {
				return 0, err
			}
			count := 0
			for i, x := range values {
				if x == v && !nulls.Contains(uint32(i)) {
					count++
				}
			}
			return count, nil
		})
}

// CountEqualDouble counts non-NULL rows bit-exactly equal to v in a
// compressed double column file.
func CountEqualDouble(data []byte, v float64, opt *Options) (int, error) {
	vb := math.Float64bits(v)
	return countEqualColumn(data, opt, TypeDouble,
		func(stream []byte, cfg *core.Config) (int, int, error) {
			return core.CountEqualDouble(stream, v, cfg)
		},
		func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error) {
			values, _, err := core.DecompressDouble(nil, stream, cfg)
			if err != nil {
				return 0, err
			}
			count := 0
			for i, x := range values {
				if math.Float64bits(x) == vb && !nulls.Contains(uint32(i)) {
					count++
				}
			}
			return count, nil
		})
}

// CountEqualString counts non-NULL rows equal to v in a compressed string
// column file.
func CountEqualString(data []byte, v string, opt *Options) (int, error) {
	vb := []byte(v)
	return countEqualColumn(data, opt, TypeString,
		func(stream []byte, cfg *core.Config) (int, int, error) {
			return core.CountEqualString(stream, vb, cfg)
		},
		func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error) {
			views, _, err := core.DecompressString(stream, cfg)
			if err != nil {
				return 0, err
			}
			count := 0
			for i := 0; i < views.Len(); i++ {
				if string(views.Bytes(i)) == v && !nulls.Contains(uint32(i)) {
					count++
				}
			}
			return count, nil
		})
}

// countEqualColumn walks a column file's blocks via its ColumnIndex.
// Blocks without NULLs use the compressed-data fast path; blocks with
// NULLs must decode, because the compressor rewrites NULL slots (their
// content is unspecified) and a rewritten slot could spuriously match.
// Only the decoding slow path counts against Options.Telemetry's decode
// counters — a fast-path-only scan records zero block decodes, which is
// how tests (and the block server's telemetry endpoint) can prove a
// predicate was answered from the compressed representation.
func countEqualColumn(
	data []byte,
	opt *Options,
	want Type,
	fast func(stream []byte, cfg *core.Config) (int, int, error),
	slow func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error),
) (int, error) {
	ix, err := ParseColumnIndex(data)
	if err != nil {
		return 0, err
	}
	if ix.Type != want {
		return 0, ErrTypeMismatch
	}
	cfg := opt.coreConfig()
	rec := opt.telemetryRecorder()
	total := 0
	for b, ref := range ix.Blocks {
		if err := ix.VerifyBlock(data, b); err != nil {
			rec.RecordCorruption(1)
			return 0, err
		}
		cfg.MaxDecodedValues = ref.Rows
		stream := data[ref.DataOffset():ref.End()]
		if ref.NullBytes == 0 {
			count, used, err := fast(stream, cfg)
			if err != nil {
				return 0, err
			}
			if used != ref.DataBytes {
				return 0, ErrCorrupt
			}
			total += count
			continue
		}
		nulls, used, err := roaring.FromBytes(data[ref.NullOffset() : ref.NullOffset()+ref.NullBytes])
		if err != nil || used != ref.NullBytes {
			return 0, ErrCorrupt
		}
		var start time.Time
		if rec != nil {
			start = time.Now()
		}
		count, err := slow(stream, nulls, cfg)
		if err != nil {
			return 0, err
		}
		if rec != nil {
			rec.RecordDecode(1, ref.Rows, ref.DataBytes, time.Since(start).Nanoseconds())
		}
		total += count
	}
	return total, nil
}
