package btrblocks

import (
	"context"
	"math"
	"time"

	"btrblocks/internal/core"
	"btrblocks/internal/parallel"
	"btrblocks/internal/roaring"
)

// This file exposes predicate evaluation on compressed column files —
// the §7 capability: equality predicates are answered from the compressed
// representation where the block's scheme permits (OneValue in O(1), RLE
// by summing run lengths, dictionaries by resolving the value to a code
// once), falling back to decode-and-compare otherwise. Blocks are
// evaluated on the shared worker pool and their counts merged in block
// order, so results (and errors) are identical at every worker count.

// fastCountFn counts matches directly on a block's compressed stream,
// returning (count, bytes consumed, error).
type fastCountFn func(stream []byte, cfg *core.Config) (int, int, error)

// slowCountFn decodes a block and counts matches among non-NULL rows.
type slowCountFn func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error)

func int32Preds(v int32) (fastCountFn, slowCountFn) {
	return func(stream []byte, cfg *core.Config) (int, int, error) {
			return core.CountEqualInt(stream, v, cfg)
		},
		func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error) {
			values, _, err := core.DecompressInt(nil, stream, cfg)
			if err != nil {
				return 0, err
			}
			count := 0
			for i, x := range values {
				if x == v && !nulls.Contains(uint32(i)) {
					count++
				}
			}
			return count, nil
		}
}

func int64Preds(v int64) (fastCountFn, slowCountFn) {
	return func(stream []byte, cfg *core.Config) (int, int, error) {
			return core.CountEqualInt64(stream, v, cfg)
		},
		func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error) {
			values, _, err := core.DecompressInt64(nil, stream, cfg)
			if err != nil {
				return 0, err
			}
			count := 0
			for i, x := range values {
				if x == v && !nulls.Contains(uint32(i)) {
					count++
				}
			}
			return count, nil
		}
}

func doublePreds(v float64) (fastCountFn, slowCountFn) {
	vb := math.Float64bits(v)
	return func(stream []byte, cfg *core.Config) (int, int, error) {
			return core.CountEqualDouble(stream, v, cfg)
		},
		func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error) {
			values, _, err := core.DecompressDouble(nil, stream, cfg)
			if err != nil {
				return 0, err
			}
			count := 0
			for i, x := range values {
				if math.Float64bits(x) == vb && !nulls.Contains(uint32(i)) {
					count++
				}
			}
			return count, nil
		}
}

func stringPreds(v string) (fastCountFn, slowCountFn) {
	vb := []byte(v)
	return func(stream []byte, cfg *core.Config) (int, int, error) {
			return core.CountEqualString(stream, vb, cfg)
		},
		func(stream []byte, nulls *roaring.Bitmap, cfg *core.Config) (int, error) {
			views, _, err := core.DecompressString(stream, cfg)
			if err != nil {
				return 0, err
			}
			count := 0
			for i := 0; i < views.Len(); i++ {
				if string(views.Bytes(i)) == v && !nulls.Contains(uint32(i)) {
					count++
				}
			}
			return count, nil
		}
}

// CountEqualInt32 counts non-NULL rows equal to v in a compressed integer
// column file.
func CountEqualInt32(data []byte, v int32, opt *Options) (int, error) {
	ix, err := ParseColumnIndex(data)
	if err != nil {
		return 0, err
	}
	return ix.CountEqualInt32(data, v, opt)
}

// CountEqualInt64 counts non-NULL rows equal to v in a compressed int64
// column file.
func CountEqualInt64(data []byte, v int64, opt *Options) (int, error) {
	ix, err := ParseColumnIndex(data)
	if err != nil {
		return 0, err
	}
	return ix.CountEqualInt64(data, v, opt)
}

// CountEqualDouble counts non-NULL rows bit-exactly equal to v in a
// compressed double column file.
func CountEqualDouble(data []byte, v float64, opt *Options) (int, error) {
	ix, err := ParseColumnIndex(data)
	if err != nil {
		return 0, err
	}
	return ix.CountEqualDouble(data, v, opt)
}

// CountEqualString counts non-NULL rows equal to v in a compressed string
// column file.
func CountEqualString(data []byte, v string, opt *Options) (int, error) {
	ix, err := ParseColumnIndex(data)
	if err != nil {
		return 0, err
	}
	return ix.CountEqualString(data, v, opt)
}

// CountEqualInt32 is CountEqualInt32 on an already-parsed index: callers
// that hold a ColumnIndex (block servers, caches) skip re-parsing the
// file framing on every predicate. data must be the buffer the index was
// parsed from.
func (ix *ColumnIndex) CountEqualInt32(data []byte, v int32, opt *Options) (int, error) {
	return ix.CountEqualInt32Context(context.Background(), data, v, opt)
}

// CountEqualInt32Context is CountEqualInt32 with a caller context: the
// per-block predicate tasks observe cancellation and, when the context
// carries a tracing span, record per-block child spans tagged with
// worker id and queue wait.
func (ix *ColumnIndex) CountEqualInt32Context(ctx context.Context, data []byte, v int32, opt *Options) (int, error) {
	fast, slow := int32Preds(v)
	return countEqualIndexed(ctx, ix, data, opt, TypeInt, fast, slow)
}

// CountEqualInt64 is CountEqualInt64 on an already-parsed index.
func (ix *ColumnIndex) CountEqualInt64(data []byte, v int64, opt *Options) (int, error) {
	return ix.CountEqualInt64Context(context.Background(), data, v, opt)
}

// CountEqualInt64Context is CountEqualInt64 with a caller context.
func (ix *ColumnIndex) CountEqualInt64Context(ctx context.Context, data []byte, v int64, opt *Options) (int, error) {
	fast, slow := int64Preds(v)
	return countEqualIndexed(ctx, ix, data, opt, TypeInt64, fast, slow)
}

// CountEqualDouble is CountEqualDouble on an already-parsed index.
func (ix *ColumnIndex) CountEqualDouble(data []byte, v float64, opt *Options) (int, error) {
	return ix.CountEqualDoubleContext(context.Background(), data, v, opt)
}

// CountEqualDoubleContext is CountEqualDouble with a caller context.
func (ix *ColumnIndex) CountEqualDoubleContext(ctx context.Context, data []byte, v float64, opt *Options) (int, error) {
	fast, slow := doublePreds(v)
	return countEqualIndexed(ctx, ix, data, opt, TypeDouble, fast, slow)
}

// CountEqualString is CountEqualString on an already-parsed index.
func (ix *ColumnIndex) CountEqualString(data []byte, v string, opt *Options) (int, error) {
	return ix.CountEqualStringContext(context.Background(), data, v, opt)
}

// CountEqualStringContext is CountEqualString with a caller context.
func (ix *ColumnIndex) CountEqualStringContext(ctx context.Context, data []byte, v string, opt *Options) (int, error) {
	fast, slow := stringPreds(v)
	return countEqualIndexed(ctx, ix, data, opt, TypeString, fast, slow)
}

// countEqualIndexed evaluates an equality predicate over a column's
// blocks on the worker pool. Blocks without NULLs use the compressed-data
// fast path; blocks with NULLs must decode, because the compressor
// rewrites NULL slots (their content is unspecified) and a rewritten
// slot could spuriously match. Only the decoding slow path counts
// against Options.Telemetry's decode counters — a fast-path-only scan
// records zero block decodes, which is how tests (and the block server's
// telemetry endpoint) can prove a predicate was answered from the
// compressed representation. Per-block counts land in ordered slots and
// are summed in block order.
func countEqualIndexed(
	ctx context.Context,
	ix *ColumnIndex,
	data []byte,
	opt *Options,
	want Type,
	fast fastCountFn,
	slow slowCountFn,
) (int, error) {
	if ix.Type != want {
		return 0, ErrTypeMismatch
	}
	base := opt.coreConfig()
	rec := opt.telemetryRecorder()
	counts := make([]int, len(ix.Blocks))
	err := parallel.Observed(ctx, len(ix.Blocks), parallelism(opt), pathScan, observerOf(rec), func(b int) error {
		ref := ix.Blocks[b]
		if ref.End() > len(data) {
			return ErrTruncatedFile
		}
		if err := ix.VerifyBlock(data, b); err != nil {
			rec.RecordCorruption(1)
			return err
		}
		cfg := *base
		cfg.MaxDecodedValues = ref.Rows
		stream := data[ref.DataOffset():ref.End()]
		if ref.NullBytes == 0 {
			count, used, err := fast(stream, &cfg)
			if err != nil {
				return err
			}
			if used != ref.DataBytes {
				return ErrCorrupt
			}
			counts[b] = count
			return nil
		}
		nulls, used, err := roaring.FromBytes(data[ref.NullOffset() : ref.NullOffset()+ref.NullBytes])
		if err != nil || used != ref.NullBytes {
			return ErrCorrupt
		}
		var start time.Time
		if rec != nil {
			start = time.Now()
		}
		count, err := slow(stream, nulls, &cfg)
		if err != nil {
			return err
		}
		if rec != nil {
			rec.RecordDecode(1, ref.Rows, ref.DataBytes, time.Since(start).Nanoseconds())
		}
		counts[b] = count
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}
