module btrblocks

go 1.22
