#!/bin/sh
# CI gate. Usage: ci.sh [tier1|tier2|all]
#
#   tier1  fast gate: formatting, build, tests, race tests
#   tier2  deep gate: vet, fuzz smoke, chaos gate, end-to-end smokes
#   all    both (default)
set -eu

tier="${1:-all}"

run_tier1() {
	echo "== gofmt =="
	out="$(gofmt -l .)"
	if [ -n "$out" ]; then
		echo "gofmt needed:"
		echo "$out"
		exit 1
	fi

	echo "== go build =="
	go build ./...

	echo "== go test =="
	go test ./...

	echo "== go test -race =="
	# Promoted from tier 2: the blockstore's retry/quarantine paths and
	# the cache are concurrency-heavy, so races gate every change. -short
	# skips only the full experiments sweep, which re-runs library code
	# the other packages already race-test but takes most of an hour under
	# the race detector.
	go test -race -short -timeout 30m ./...

	echo "== spans smoke =="
	# End-to-end crash safety plus cross-process tracing: btringest
	# spawns a child server, SIGKILLs it mid-append, restarts it, and
	# verifies the published chunks hold exactly the acknowledged rows;
	# it then drives one trace ID through append → WAL → flush →
	# publish → invalidate into a second span-recording server and
	# asserts /v1/spans continuity on both sides. btrserved's smoke
	# validates its own span store and exemplar links the same way.
	make spans-smoke

	echo "== cluster smoke =="
	# Replicated serving: btrrouted scatter-gathers a 3-node cluster
	# (R=2), a byte-flipped replica must fail over and heal via
	# cross-replica repair, a SIGKILLed node must not fail any in-flight
	# scan, and hedged requests must beat a latency-skewed replica.
	# Its smoke also routes a /v1/query plan (leaf scatter + bitmap
	# gather) and re-runs one degraded against the damaged replica.
	make cluster-smoke

	echo "== query smoke =="
	# Query-engine correctness: the differential oracle sweep (random
	# plans over every column type and scheme mix vs a
	# decompress-everything reference), the NULL three-valued-logic
	# matrix, /v1/query's status-code contract on a single node (plan
	# errors 400, missing column 404, corrupt block 422, never 5xx,
	# sidecar pruning live), and cluster scatter-gather equivalence with
	# a damaged replica. The serving smokes above exercise the same
	# engine end to end over HTTP.
	make query-smoke
}

run_tier2() {
	echo "== go vet =="
	go vet ./...

	echo "== fuzz smoke =="
	# Each fuzz target runs for a fixed short budget on top of the
	# committed seed corpora in testdata/fuzz/.
	make fuzz-smoke

	echo "== bench smoke =="
	# Compile-and-single-shot the parallel decode benchmarks so the §6.4
	# scaling harness cannot bit-rot (nothing is timed).
	make bench-smoke

	echo "== bench regression gate =="
	# Re-run the single-core decode suites against the committed
	# BENCH_decode.json baseline; >10% throughput regression fails.
	# BTR_BENCH_TOLERANCE=0.25 loosens the gate (fraction), and
	# BTR_BENCH_SKIP=1 skips it (e.g. on hosts unlike the baseline's).
	if [ "${BTR_BENCH_SKIP:-0}" = "1" ]; then
		echo "skipped (BTR_BENCH_SKIP=1)"
	else
		make bench-compare
	fi

	echo "== chaos gate =="
	# Fault-injection suite: seeded corruption of every container format
	# must be detected, and the served degradation paths must hold.
	make chaos

	echo "== serve smoke =="
	# End-to-end: btrserved serves a generated corpus on a loopback port
	# (debug/pprof server included) and every endpoint — blocks,
	# predicates, traces, metrics — is verified against direct in-process
	# decompression.
	go run ./cmd/btrserved -smoke

	echo "== trace smoke =="
	# The decision-trace CLI must emit a schema-valid trace for the
	# checked-in testdata (see OBSERVABILITY.md for the schema).
	make trace-smoke

	echo "== ingest bench smoke =="
	# Single-shot the ingestion benchmarks (rows/s vs batch size,
	# group-commit scaling) so the harness cannot bit-rot.
	make ingest-bench
}

case "$tier" in
tier1) run_tier1 ;;
tier2) run_tier2 ;;
all)
	run_tier1
	run_tier2
	;;
*)
	echo "usage: ci.sh [tier1|tier2|all]" >&2
	exit 2
	;;
esac

echo "ci: $tier checks passed"
