#!/bin/sh
# Tier-1 gate: formatting, vet, build, tests, race tests.
set -eu

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed:"
	echo "$out"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
# -short skips the full experiments sweep, which re-runs library code
# the other packages already race-test but takes most of an hour under
# the race detector.
go test -race -short -timeout 30m ./...

echo "== serve smoke =="
# End-to-end: btrserved serves a generated corpus on a loopback port and
# every endpoint is verified against direct in-process decompression.
go run ./cmd/btrserved -smoke

echo "ci: all checks passed"
