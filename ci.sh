#!/bin/sh
# CI gate. Usage: ci.sh [tier1|tier2|all]
#
#   tier1  fast gate: formatting, build, tests
#   tier2  deep gate: vet, race tests, end-to-end smokes
#   all    both (default)
set -eu

tier="${1:-all}"

run_tier1() {
	echo "== gofmt =="
	out="$(gofmt -l .)"
	if [ -n "$out" ]; then
		echo "gofmt needed:"
		echo "$out"
		exit 1
	fi

	echo "== go build =="
	go build ./...

	echo "== go test =="
	go test ./...
}

run_tier2() {
	echo "== go vet =="
	go vet ./...

	echo "== go test -race =="
	# -short skips the full experiments sweep, which re-runs library code
	# the other packages already race-test but takes most of an hour under
	# the race detector.
	go test -race -short -timeout 30m ./...

	echo "== serve smoke =="
	# End-to-end: btrserved serves a generated corpus on a loopback port
	# (debug/pprof server included) and every endpoint — blocks,
	# predicates, traces, metrics — is verified against direct in-process
	# decompression.
	go run ./cmd/btrserved -smoke

	echo "== trace smoke =="
	# The decision-trace CLI must emit a schema-valid trace for the
	# checked-in testdata (see OBSERVABILITY.md for the schema).
	make trace-smoke
}

case "$tier" in
tier1) run_tier1 ;;
tier2) run_tier2 ;;
all)
	run_tier1
	run_tier2
	;;
*)
	echo "usage: ci.sh [tier1|tier2|all]" >&2
	exit 2
	;;
esac

echo "ci: $tier checks passed"
