package btrblocks

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"btrblocks/internal/faultfs"
)

// chaosColumns builds one representative column per type with enough
// structure that every scheme family appears across blocks.
func chaosColumns(n int, seed int64) []Column {
	rng := rand.New(rand.NewSource(seed))
	ints := make([]int32, n)
	longs := make([]int64, n)
	doubles := make([]float64, n)
	strs := make([]string, n)
	vals := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < n; i++ {
		ints[i] = int32(i / 7)
		longs[i] = int64(rng.Intn(50)) * 1_000_000_007
		doubles[i] = float64(rng.Intn(10000)) / 100
		strs[i] = vals[rng.Intn(len(vals))]
	}
	nulls := NewNullMask()
	for i := 0; i < n; i += 13 {
		nulls.SetNull(i)
	}
	ic := IntColumn("i", ints)
	ic.Nulls = nulls
	return []Column{
		ic,
		Int64Column("l", longs),
		DoubleColumn("d", doubles),
		StringColumn("s", strs),
	}
}

// TestChaosColumnPayloadDetection is the acceptance gate for the v2
// checksums: every single-byte corruption injected into a compressed
// block payload of a checksummed column file must be detected — by the
// decoder, by the scan path, and by Verify. 500+ seeded iterations per
// column type.
func TestChaosColumnPayloadDetection(t *testing.T) {
	opt := &Options{BlockSize: 2000}
	rng := rand.New(rand.NewSource(1234))
	for _, col := range chaosColumns(6000, 42) {
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := ParseColumnIndex(data)
		if err != nil {
			t.Fatal(err)
		}
		if !ix.Checksummed() {
			t.Fatalf("%s: new files must be checksummed", col.Name)
		}
		const trials = 500
		for trial := 0; trial < trials; trial++ {
			bad := append([]byte(nil), data...)
			ref := ix.Blocks[rng.Intn(len(ix.Blocks))]
			off := faultfs.CorruptOneByte(bad, ref.DataOffset(), ref.End(), rng)
			if off < 0 {
				t.Fatalf("%s: empty payload range", col.Name)
			}
			if _, err := DecompressColumn(bad, opt); err == nil {
				t.Fatalf("%s trial %d: decoder accepted payload flip at %d", col.Name, trial, off)
			}
			if rep := Verify(bad, nil); rep.OK {
				t.Fatalf("%s trial %d: Verify passed payload flip at %d", col.Name, trial, off)
			}
		}
	}
}

// TestChaosColumnAnyByteDetection broadens the injection window to the
// whole file: in v2 every byte is covered by a block CRC, the index CRC
// coverage, or is itself a stored checksum, so any single-byte flip
// anywhere must fail verification.
func TestChaosColumnAnyByteDetection(t *testing.T) {
	opt := &Options{BlockSize: 2000}
	rng := rand.New(rand.NewSource(77))
	for _, col := range chaosColumns(6000, 43) {
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 500; trial++ {
			bad := append([]byte(nil), data...)
			off := faultfs.CorruptOneByte(bad, 0, len(bad), rng)
			rep := Verify(bad, nil)
			if rep.OK {
				t.Fatalf("%s trial %d: Verify passed flip at %d", col.Name, trial, off)
			}
		}
	}
}

// TestChaosStreamDetection flips one byte anywhere in a v2 stream file:
// a full read of the stream must report an error — the framing checks,
// the embedded chunk checksums, or the stream's running CRC at the
// footer catch what the flip damaged.
func TestChaosStreamDetection(t *testing.T) {
	opt := DefaultOptions()
	cols := chaosColumns(3000, 44)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []Column{
		{Name: "i", Type: TypeInt},
		{Name: "l", Type: TypeInt64},
		{Name: "d", Type: TypeDouble},
		{Name: "s", Type: TypeString},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.WriteChunk(&Chunk{Columns: cols}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	readAll := func(b []byte) error {
		r, err := NewReader(bytes.NewReader(b), opt)
		if err != nil {
			return err
		}
		for {
			if _, err := r.Next(); err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
		}
	}
	if err := readAll(data); err != nil {
		t.Fatalf("pristine stream: %v", err)
	}

	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 500; trial++ {
		bad := append([]byte(nil), data...)
		off := faultfs.CorruptOneByte(bad, 0, len(bad), rng)
		if err := readAll(bad); err == nil {
			t.Fatalf("trial %d: stream read survived flip at %d undetected", trial, off)
		}
	}
}

// TestChaosFaultyReaderNeverPanics drives the stream reader through a
// fault-injecting io layer (bit flips, short reads, truncations, I/O
// errors) and asserts the reader fails cleanly — errors, never panics
// or silent success on damaged bytes.
func TestChaosFaultyReaderNeverPanics(t *testing.T) {
	opt := DefaultOptions()
	cols := chaosColumns(2000, 45)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []Column{
		{Name: "i", Type: TypeInt},
		{Name: "d", Type: TypeDouble},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(&Chunk{Columns: []Column{cols[0], cols[2]}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	for seed := int64(0); seed < 200; seed++ {
		ra := faultfs.NewReaderAt(bytes.NewReader(data), faultfs.Config{
			Seed:      seed,
			BitFlip:   0.02,
			Truncate:  0.01,
			ShortRead: 0.05,
			Err:       0.01,
		})
		sr := io.NewSectionReader(ra, 0, int64(len(data)))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: panic: %v", seed, r)
				}
			}()
			r, err := NewReader(sr, opt)
			if err != nil {
				return
			}
			for i := 0; i < 100; i++ {
				if _, err := r.Next(); err != nil {
					return
				}
			}
		}()
		// When the injector touched nothing, the read must have succeeded;
		// when it flipped bytes, detection is asserted by the seeds where
		// Stats shows injected faults — covered by the error returns above.
		_ = ra.Stats()
	}
}

// TestChaosWriterTornWrite pushes stream output through a torn-write
// injector: the resulting (possibly truncated or flipped) file must
// never decode silently as complete when bytes were damaged.
func TestChaosWriterTornWrite(t *testing.T) {
	opt := DefaultOptions()
	cols := chaosColumns(2000, 46)
	for seed := int64(0); seed < 200; seed++ {
		var buf bytes.Buffer
		fw := faultfs.NewWriter(&buf, faultfs.Config{Seed: seed, Truncate: 0.05, BitFlip: 0.05})
		w, err := NewWriter(fw, []Column{{Name: "i", Type: TypeInt}}, opt)
		if err != nil {
			t.Fatal(err)
		}
		werr := w.WriteChunk(&Chunk{Columns: []Column{cols[0]}})
		if werr == nil {
			werr = w.Close()
		}
		if werr != nil {
			continue // injected write error, surfaced — fine
		}
		st := fw.Stats()
		damaged := st.BitFlips > 0 || st.Truncations > 0
		r, err := NewReader(bytes.NewReader(buf.Bytes()), opt)
		if err != nil {
			continue // detected at open
		}
		readErr := func() error {
			for {
				if _, err := r.Next(); err != nil {
					if err == io.EOF {
						return nil
					}
					return err
				}
			}
		}()
		if damaged && readErr == nil {
			t.Fatalf("seed %d: torn write (%+v) decoded cleanly", seed, st)
		}
		if !damaged && readErr != nil {
			t.Fatalf("seed %d: clean write failed to decode: %v", seed, readErr)
		}
	}
}

// TestLegacyV1RoundTrip pins backward compatibility: files written with
// FormatVersion 1 carry no checksums, still round-trip exactly, and
// Verify reports them clean (structure-only).
func TestLegacyV1RoundTrip(t *testing.T) {
	opt := &Options{BlockSize: 2000, FormatVersion: 1}
	for _, col := range chaosColumns(6000, 47) {
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := ParseColumnIndex(data)
		if err != nil {
			t.Fatal(err)
		}
		if ix.Checksummed() {
			t.Fatalf("%s: v1 file reports checksums", col.Name)
		}
		got, err := DecompressColumn(data, nil)
		if err != nil {
			t.Fatalf("%s: decode v1: %v", col.Name, err)
		}
		if got.Len() != col.Len() {
			t.Fatalf("%s: v1 round-trip %d rows, want %d", col.Name, got.Len(), col.Len())
		}
		rep := Verify(data, &VerifyOptions{Deep: true})
		if !rep.OK {
			t.Fatalf("%s: Verify rejects clean v1 file: %v", col.Name, rep.Errors)
		}
		if rep.Checksummed {
			t.Fatalf("%s: Verify claims v1 file is checksummed", col.Name)
		}
		// Corruption of v1 files must never panic (detection is
		// best-effort without checksums).
		rng := rand.New(rand.NewSource(48))
		for trial := 0; trial < 100; trial++ {
			bad := append([]byte(nil), data...)
			faultfs.CorruptOneByte(bad, 0, len(bad), rng)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s trial %d: panic on corrupt v1: %v", col.Name, trial, r)
					}
				}()
				_, _ = DecompressColumn(bad, nil)
				_ = Verify(bad, nil)
			}()
		}
	}
}

// TestChaosChunkFileDetection covers the multi-column chunk container:
// any single-byte flip in a v2 chunk file must fail DecodeFile or
// Verify.
func TestChaosChunkFileDetection(t *testing.T) {
	opt := &Options{BlockSize: 2000}
	cc, err := CompressChunk(&Chunk{Columns: chaosColumns(4000, 49)}, opt)
	if err != nil {
		t.Fatal(err)
	}
	data := cc.EncodeFile()
	if _, err := DecodeFile(data); err != nil {
		t.Fatalf("pristine chunk file: %v", err)
	}
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 500; trial++ {
		bad := append([]byte(nil), data...)
		off := faultfs.CorruptOneByte(bad, 0, len(bad), rng)
		_, decErr := DecodeFile(bad)
		rep := Verify(bad, nil)
		if decErr == nil && rep.OK {
			t.Fatalf("trial %d: chunk flip at %d undetected", trial, off)
		}
	}
}

// TestVerifyMagicOnlyFile is a regression test: a file truncated to
// exactly its 4-byte magic must produce a failing report, not a panic
// (the version byte at data[4] is missing).
func TestVerifyMagicOnlyFile(t *testing.T) {
	for _, magic := range []string{columnMagic, fileMagic, streamMagic} {
		rep := Verify([]byte(magic), nil)
		if rep.OK {
			t.Fatalf("%q: magic-only file verified OK", magic)
		}
		if len(rep.Errors) == 0 {
			t.Fatalf("%q: no error recorded for truncated header", magic)
		}
	}
}

// TestEncodeFileVersionMatchesChunk proves the container version comes
// from the chunk's resolved format version, not from sniffing column
// bytes: a v1 chunk — even one with zero columns — encodes as a v1
// container, and DecodeFile preserves the version across a re-encode.
func TestEncodeFileVersionMatchesChunk(t *testing.T) {
	opt := &Options{BlockSize: 2000, FormatVersion: 1}
	for _, cols := range [][]Column{chaosColumns(100, 51), nil} {
		cc, err := CompressChunk(&Chunk{Columns: cols}, opt)
		if err != nil {
			t.Fatal(err)
		}
		data := cc.EncodeFile()
		if data[4] != formatVersion1 {
			t.Fatalf("%d-column v1 chunk encoded as container version %d", len(cols), data[4])
		}
		dec, err := DecodeFile(data)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Version != formatVersion1 {
			t.Fatalf("DecodeFile version = %d, want %d", dec.Version, formatVersion1)
		}
		if re := dec.EncodeFile(); !bytes.Equal(re, data) {
			t.Fatalf("%d-column chunk: re-encode changed bytes", len(cols))
		}
	}
}
