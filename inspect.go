package btrblocks

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"btrblocks/internal/core"
	"btrblocks/internal/roaring"
)

// This file implements file introspection: parsing a compressed column,
// chunk, or stream file into a structured layout tree — container
// framing, per-block scheme tags, NULL-bitmap sizes, payload sizes, and
// the full cascade structure — without decompressing any payload. The
// layout is the ground truth behind FORMAT.md; `btrblocks inspect`
// renders it.
//
// Byte accounting is exact: every FileInfo section sums to the file
// size (see FileInfo.AccountedBytes), which the tests assert on every
// corpus file.

// SchemeNode describes one compressed stream of a block's cascade tree:
// its scheme, value count, byte breakdown, and sub-streams. It is an
// alias of the core layout walker's node type.
type SchemeNode = core.Layout

// FileKind identifies which container format a file uses.
type FileKind uint8

// Container kinds distinguished by Inspect.
const (
	// FileKindColumn is a single-column file ("BTRC", CompressColumn).
	FileKindColumn FileKind = iota
	// FileKindChunk is a multi-column chunk file ("BTRB", EncodeFile).
	FileKindChunk
	// FileKindStream is a framed multi-chunk stream ("BTRS", Writer).
	FileKindStream
)

// String returns the kind name.
func (k FileKind) String() string {
	switch k {
	case FileKindColumn:
		return "column"
	case FileKindChunk:
		return "chunk"
	case FileKindStream:
		return "stream"
	}
	return "invalid"
}

// BlockInfo describes one block of a compressed column.
type BlockInfo struct {
	// Offset is the block's byte offset from the start of the file;
	// Size is its total encoded size including the block header.
	Offset int
	Size   int
	// Rows is the block's value count.
	Rows int
	// NullCount is the number of NULL positions recorded in the block's
	// bitmap; NullBytes is the serialized bitmap size (0 when the block
	// has no NULLs).
	NullCount int
	NullBytes int
	// DataBytes is the size of the block's compressed data stream, and
	// Data is that stream's cascade layout tree.
	DataBytes int
	Data      *SchemeNode
	// ChecksumBytes is the trailing per-block CRC32C (4 in format v2,
	// 0 in v1), included in Size. Inspect verifies it.
	ChecksumBytes int
}

// blockHeaderBytes is the fixed per-block framing: rows:u32 nullLen:u32
// dataLen:u32.
const blockHeaderBytes = 12

// ColumnInfo describes one compressed column within a file.
type ColumnInfo struct {
	Name string
	Type Type
	// Offset is the column file's byte offset from the start of the
	// containing file (0 for a standalone column file); Size is its
	// total size; HeaderBytes is the column header (magic, version,
	// type, name, block count).
	Offset      int
	Size        int
	HeaderBytes int
	// Rows and NullCount sum over all blocks.
	Rows      int
	NullCount int
	Blocks    []*BlockInfo
	// ChecksumBytes is the column file's trailing whole-file CRC32C
	// (4 in format v2, 0 in v1), included in Size. Inspect verifies it.
	ChecksumBytes int
}

// ChunkInfo describes one chunk of a stream file.
type ChunkInfo struct {
	// Offset and Size cover the chunk including its stream framing;
	// FrameBytes is that framing ('C' tag + length), and HeaderBytes is
	// the embedded chunk file's header (magic, version, column count,
	// per-column length table).
	Offset      int
	Size        int
	FrameBytes  int
	HeaderBytes int
	// ChecksumBytes is the embedded chunk file's trailing CRC32C
	// (4 in format v2, 0 in v1).
	ChecksumBytes int
	Columns       []*ColumnInfo
}

// FileInfo is the parsed layout of a compressed file.
type FileInfo struct {
	// Kind is the container format, detected from the magic bytes.
	Kind FileKind
	// Size is the total file size in bytes.
	Size int
	// HeaderBytes is the container header: 0 for a column file (the
	// header belongs to Columns[0]), the chunk header plus length table
	// for a chunk file, and the stream header including the schema for
	// a stream file. FooterBytes is the stream footer (0 otherwise).
	HeaderBytes int
	FooterBytes int
	// Version is the container's format version (1 = legacy, 2 =
	// checksummed).
	Version int
	// ChecksumBytes is the container-level trailing CRC32C: 4 for a v2
	// chunk or stream file, 0 otherwise (a column file's CRC is counted
	// on its ColumnInfo). Inspect verifies it.
	ChecksumBytes int
	// Columns holds the file's columns: exactly one for a column file,
	// all columns for a chunk file, nil for a stream file (see Chunks).
	Columns []*ColumnInfo
	// Chunks holds a stream file's chunks in order.
	Chunks []*ChunkInfo
	// Schema holds a stream file's column names and types.
	Schema []Column
}

// Inspect parses a compressed file — column ("BTRC"), chunk ("BTRB") or
// stream ("BTRS") — into its layout tree without decompressing any
// payload. The returned FileInfo accounts for every byte of the file:
// AccountedBytes() == Size, or Inspect returns ErrCorrupt.
func Inspect(data []byte) (*FileInfo, error) {
	if len(data) < 4 {
		return nil, ErrCorrupt
	}
	switch string(data[:4]) {
	case columnMagic:
		col, err := inspectColumn(data, 0)
		if err != nil {
			return nil, err
		}
		if col.Size != len(data) {
			return nil, ErrCorrupt
		}
		return &FileInfo{Kind: FileKindColumn, Size: len(data), Version: int(data[4]),
			Columns: []*ColumnInfo{col}}, nil
	case fileMagic:
		return inspectChunkFile(data)
	case streamMagic:
		return inspectStreamFile(data)
	}
	return nil, ErrCorrupt
}

// inspectColumn parses one column file starting at data[0]; base is the
// absolute offset used for Offset fields.
func inspectColumn(data []byte, base int) (*ColumnInfo, error) {
	if len(data) < 12 || string(data[:4]) != columnMagic {
		return nil, ErrCorrupt
	}
	if !supportedVersion(data[4]) {
		return nil, fmt.Errorf("btrblocks: unsupported version %d", data[4])
	}
	checksummed := checksummedVersion(data[4])
	ci := &ColumnInfo{Offset: base, Type: Type(data[5])}
	if ci.Type > maxType {
		return nil, ErrCorrupt
	}
	nameLen := int(binary.LittleEndian.Uint16(data[6:]))
	pos := 8
	if len(data) < pos+nameLen+4 {
		return nil, ErrCorrupt
	}
	ci.Name = string(data[pos : pos+nameLen])
	pos += nameLen
	blockCount := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	ci.HeaderBytes = pos
	for b := 0; b < blockCount; b++ {
		bi, err := inspectBlock(data, pos, base, ci.Type, checksummed)
		if err != nil {
			return nil, err
		}
		pos += bi.Size
		ci.Rows += bi.Rows
		ci.NullCount += bi.NullCount
		ci.Blocks = append(ci.Blocks, bi)
	}
	if checksummed {
		if len(data) < pos+crcBytes {
			return nil, ErrTruncatedFile
		}
		if err := verifyTrailingCRC(data[:pos+crcBytes], "column file"); err != nil {
			return nil, err
		}
		ci.ChecksumBytes = crcBytes
		pos += crcBytes
	}
	ci.Size = pos
	return ci, nil
}

// inspectBlock parses one block at data[pos]; offsets are reported
// relative to base.
func inspectBlock(data []byte, pos, base int, t Type, checksummed bool) (*BlockInfo, error) {
	bi := &BlockInfo{Offset: base + pos}
	blockStart := pos
	if len(data) < pos+8 {
		return nil, ErrCorrupt
	}
	bi.Rows = int(binary.LittleEndian.Uint32(data[pos:]))
	bi.NullBytes = int(binary.LittleEndian.Uint32(data[pos+4:]))
	pos += 8
	if bi.Rows > core.MaxBlockValues || bi.NullBytes < 0 || len(data) < pos+bi.NullBytes+4 {
		return nil, ErrCorrupt
	}
	if bi.NullBytes > 0 {
		bm, used, err := roaring.FromBytes(data[pos : pos+bi.NullBytes])
		if err != nil || used != bi.NullBytes {
			return nil, ErrCorrupt
		}
		bi.NullCount = bm.Cardinality()
		pos += bi.NullBytes
	}
	bi.DataBytes = int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if bi.DataBytes < 0 || len(data) < pos+bi.DataBytes {
		return nil, ErrCorrupt
	}
	node, used, err := core.InspectStream(streamKind(t), data[pos:pos+bi.DataBytes])
	if err != nil {
		return nil, err
	}
	if used != bi.DataBytes || node.Values != bi.Rows {
		return nil, ErrCorrupt
	}
	bi.Data = node
	bi.Size = blockHeaderBytes + bi.NullBytes + bi.DataBytes
	if checksummed {
		blockEnd := blockStart + bi.Size
		if len(data) < blockEnd+crcBytes {
			return nil, ErrTruncatedFile
		}
		stored := binary.LittleEndian.Uint32(data[blockEnd:])
		if got := crc32c(data[blockStart:blockEnd]); got != stored {
			return nil, fmt.Errorf("%w: block at offset %d: computed %08x, stored %08x",
				ErrChecksumMismatch, bi.Offset, got, stored)
		}
		bi.ChecksumBytes = crcBytes
		bi.Size += crcBytes
	}
	return bi, nil
}

// streamKind maps a column type to its core stream kind.
func streamKind(t Type) core.Kind {
	switch t {
	case TypeInt:
		return core.KindInt
	case TypeInt64:
		return core.KindInt64
	case TypeDouble:
		return core.KindDouble
	default:
		return core.KindString
	}
}

func inspectChunkFile(data []byte) (*FileInfo, error) {
	fi := &FileInfo{Kind: FileKindChunk, Size: len(data), Version: int(data[4])}
	cols, headerBytes, csumBytes, err := inspectChunkBody(data, 0)
	if err != nil {
		return nil, err
	}
	fi.Columns = cols
	fi.HeaderBytes = headerBytes
	fi.ChecksumBytes = csumBytes
	total := headerBytes + csumBytes
	for _, c := range cols {
		total += c.Size
	}
	if total != len(data) {
		return nil, ErrCorrupt
	}
	return fi, nil
}

// inspectChunkBody parses a chunk file ("BTRB") located at data[0],
// returning its columns, header size, and trailing-checksum size (4 for a
// v2 chunk, 0 for v1); base offsets the Offset fields.
func inspectChunkBody(data []byte, base int) ([]*ColumnInfo, int, int, error) {
	if len(data) < 7 || string(data[:4]) != fileMagic {
		return nil, 0, 0, ErrCorrupt
	}
	if !supportedVersion(data[4]) {
		return nil, 0, 0, fmt.Errorf("btrblocks: unsupported version %d", data[4])
	}
	checksummed := checksummedVersion(data[4])
	bodyEnd := len(data)
	csumBytes := 0
	if checksummed {
		if len(data) < 7+crcBytes {
			return nil, 0, 0, ErrTruncatedFile
		}
		if err := verifyTrailingCRC(data, "chunk file"); err != nil {
			return nil, 0, 0, err
		}
		csumBytes = crcBytes
		bodyEnd -= crcBytes
	}
	nCols := int(binary.LittleEndian.Uint16(data[5:]))
	pos := 7
	if bodyEnd < pos+4*nCols {
		return nil, 0, 0, ErrCorrupt
	}
	lengths := make([]int, nCols)
	for i := range lengths {
		lengths[i] = int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
	}
	headerBytes := pos
	cols := make([]*ColumnInfo, nCols)
	for i, l := range lengths {
		if l < 0 || bodyEnd < pos+l {
			return nil, 0, 0, ErrCorrupt
		}
		ci, err := inspectColumn(data[pos:pos+l], base+pos)
		if err != nil {
			return nil, 0, 0, err
		}
		if ci.Size != l {
			return nil, 0, 0, ErrCorrupt
		}
		cols[i] = ci
		pos += l
	}
	if pos != bodyEnd {
		return nil, 0, 0, ErrCorrupt
	}
	return cols, headerBytes, csumBytes, nil
}

func inspectStreamFile(data []byte) (*FileInfo, error) {
	fi := &FileInfo{Kind: FileKindStream, Size: len(data)}
	if len(data) < 7 || string(data[:4]) != streamMagic {
		return nil, ErrCorrupt
	}
	if !supportedVersion(data[4]) {
		return nil, fmt.Errorf("btrblocks: unsupported version %d", data[4])
	}
	fi.Version = int(data[4])
	checksummed := checksummedVersion(data[4])
	if checksummed {
		if err := verifyTrailingCRC(data, "stream file"); err != nil {
			return nil, err
		}
	}
	nCols := int(binary.LittleEndian.Uint16(data[5:]))
	pos := 7
	for i := 0; i < nCols; i++ {
		if len(data) < pos+3 {
			return nil, ErrCorrupt
		}
		t := Type(data[pos])
		if t > maxType {
			return nil, ErrCorrupt
		}
		nameLen := int(binary.LittleEndian.Uint16(data[pos+1:]))
		pos += 3
		if len(data) < pos+nameLen {
			return nil, ErrCorrupt
		}
		fi.Schema = append(fi.Schema, Column{Name: string(data[pos : pos+nameLen]), Type: t})
		pos += nameLen
	}
	fi.HeaderBytes = pos
	for {
		if len(data) < pos+1 {
			return nil, ErrCorrupt
		}
		switch data[pos] {
		case 'C':
			if len(data) < pos+5 {
				return nil, ErrCorrupt
			}
			payloadLen := int(binary.LittleEndian.Uint32(data[pos+1:]))
			if payloadLen < 0 || len(data) < pos+5+payloadLen {
				return nil, ErrCorrupt
			}
			cols, headerBytes, csumBytes, err := inspectChunkBody(data[pos+5:pos+5+payloadLen], pos+5)
			if err != nil {
				return nil, err
			}
			total := headerBytes + csumBytes
			for _, c := range cols {
				total += c.Size
			}
			if total != payloadLen {
				return nil, ErrCorrupt
			}
			fi.Chunks = append(fi.Chunks, &ChunkInfo{
				Offset: pos, Size: 5 + payloadLen, FrameBytes: 5,
				HeaderBytes: headerBytes, ChecksumBytes: csumBytes, Columns: cols,
			})
			pos += 5 + payloadLen
		case 'E':
			want := pos + 13
			if checksummed {
				want += crcBytes
				fi.ChecksumBytes = crcBytes
			}
			if len(data) != want {
				return nil, ErrCorrupt
			}
			fi.FooterBytes = 13
			return fi, nil
		default:
			return nil, ErrCorrupt
		}
	}
}

// AccountedBytes sums every section of the layout: container header and
// footer, per-column headers, block framing, NULL bitmaps, and every
// scheme node's header and payload bytes. A well-formed file satisfies
// AccountedBytes() == Size; Inspect guarantees it for the layouts it
// returns.
func (f *FileInfo) AccountedBytes() int {
	total := f.HeaderBytes + f.FooterBytes + f.ChecksumBytes
	for _, c := range f.Columns {
		total += columnAccountedBytes(c)
	}
	for _, ch := range f.Chunks {
		total += ch.FrameBytes + ch.HeaderBytes + ch.ChecksumBytes
		for _, c := range ch.Columns {
			total += columnAccountedBytes(c)
		}
	}
	return total
}

func columnAccountedBytes(c *ColumnInfo) int {
	total := c.HeaderBytes + c.ChecksumBytes
	for _, b := range c.Blocks {
		total += blockHeaderBytes + b.NullBytes + b.ChecksumBytes
		b.Data.Walk(func(n *SchemeNode, _ int) {
			total += n.HeaderBytes + n.PayloadBytes
		})
	}
	return total
}

// eachColumn visits every column in the file, across chunks for stream
// files.
func (f *FileInfo) eachColumn(fn func(*ColumnInfo)) {
	for _, c := range f.Columns {
		fn(c)
	}
	for _, ch := range f.Chunks {
		for _, c := range ch.Columns {
			fn(c)
		}
	}
}

// Rows returns the total row count of the file's first column (all
// columns of a chunk have equal length; a stream sums across chunks).
func (f *FileInfo) Rows() int {
	rows := 0
	if len(f.Columns) > 0 {
		return f.Columns[0].Rows
	}
	for _, ch := range f.Chunks {
		if len(ch.Columns) > 0 {
			rows += ch.Columns[0].Rows
		}
	}
	return rows
}

// RenderTree writes the full layout tree — containers, columns, blocks,
// and per-block cascade structure with byte counts — as indented text.
func (f *FileInfo) RenderTree(w io.Writer) {
	fmt.Fprintf(w, "%s file: %d bytes", f.Kind, f.Size)
	switch f.Kind {
	case FileKindColumn:
		fmt.Fprintf(w, "\n")
	case FileKindChunk:
		fmt.Fprintf(w, ", %d columns, header %dB\n", len(f.Columns), f.HeaderBytes)
	case FileKindStream:
		fmt.Fprintf(w, ", %d chunks, header %dB, footer %dB\n", len(f.Chunks), f.HeaderBytes, f.FooterBytes)
		fmt.Fprintf(w, "schema:")
		for _, col := range f.Schema {
			fmt.Fprintf(w, " %s:%s", col.Name, col.Type)
		}
		fmt.Fprintf(w, "\n")
	}
	for _, c := range f.Columns {
		renderColumn(w, c, "")
	}
	for i, ch := range f.Chunks {
		fmt.Fprintf(w, "chunk %d: offset %d, %d bytes (frame %dB, header %dB), %d columns\n",
			i, ch.Offset, ch.Size, ch.FrameBytes, ch.HeaderBytes, len(ch.Columns))
		for _, c := range ch.Columns {
			renderColumn(w, c, "  ")
		}
	}
}

func renderColumn(w io.Writer, c *ColumnInfo, indent string) {
	fmt.Fprintf(w, "%scolumn %q %s: offset %d, %d bytes (header %dB), %d rows, %d blocks",
		indent, c.Name, c.Type, c.Offset, c.Size, c.HeaderBytes, c.Rows, len(c.Blocks))
	if c.NullCount > 0 {
		fmt.Fprintf(w, ", %d nulls", c.NullCount)
	}
	fmt.Fprintf(w, "\n")
	for i, b := range c.Blocks {
		fmt.Fprintf(w, "%s  block %d: offset %d, %d bytes (header %dB, nulls %dB, data %dB), %d rows",
			indent, i, b.Offset, b.Size, blockHeaderBytes, b.NullBytes, b.DataBytes, b.Rows)
		if b.NullCount > 0 {
			fmt.Fprintf(w, ", %d nulls", b.NullCount)
		}
		fmt.Fprintf(w, "\n")
		b.Data.Walk(func(n *SchemeNode, level int) {
			fmt.Fprintf(w, "%s  %s", indent, spaces(2*(level+1)))
			if n.Role != "" {
				fmt.Fprintf(w, "%s: ", n.Role)
			}
			fmt.Fprintf(w, "%s n=%d %dB (header %dB, payload %dB)", n.Code, n.Values, n.Bytes, n.HeaderBytes, n.PayloadBytes)
			if n.Detail != "" {
				fmt.Fprintf(w, " — %s", n.Detail)
			}
			fmt.Fprintf(w, "\n")
		})
	}
}

func spaces(n int) string {
	const pad = "                                                                "
	for n > len(pad) {
		n = len(pad)
	}
	return pad[:n]
}

// FileStats aggregates a FileInfo into summary counters: where the bytes
// went (framing, NULL bitmaps, scheme headers, payloads) and which
// schemes were chosen how often — the on-disk analogue of the
// compression telemetry.
type FileStats struct {
	Size    int
	Rows    int
	Columns int
	Chunks  int
	Blocks  int
	Nulls   int
	// FramingBytes counts container/column/block headers and footers;
	// NullBytes the serialized NULL bitmaps; ChecksumBytes the CRC32C
	// trailers (0 for v1 files); SchemeHeaderBytes and
	// SchemePayloadBytes the scheme-node breakdown.
	FramingBytes       int
	NullBytes          int
	ChecksumBytes      int
	SchemeHeaderBytes  int
	SchemePayloadBytes int
	// RootSchemes counts blocks by column type and root scheme
	// (type → scheme → blocks). StreamSchemes counts every cascade
	// stream by kind and scheme, and StreamSchemeBytes sums each
	// scheme's own bytes (header + payload, sub-streams excluded).
	RootSchemes       map[string]map[string]int
	StreamSchemes     map[string]map[string]int
	StreamSchemeBytes map[string]map[string]int
}

// Stats aggregates the layout into summary counters.
func (f *FileInfo) Stats() *FileStats {
	s := &FileStats{
		Size:              f.Size,
		Rows:              f.Rows(),
		Chunks:            len(f.Chunks),
		FramingBytes:      f.HeaderBytes + f.FooterBytes,
		ChecksumBytes:     f.ChecksumBytes,
		RootSchemes:       make(map[string]map[string]int),
		StreamSchemes:     make(map[string]map[string]int),
		StreamSchemeBytes: make(map[string]map[string]int),
	}
	for _, ch := range f.Chunks {
		s.FramingBytes += ch.FrameBytes + ch.HeaderBytes
		s.ChecksumBytes += ch.ChecksumBytes
	}
	f.eachColumn(func(c *ColumnInfo) {
		s.Columns++
		s.Nulls += c.NullCount
		s.FramingBytes += c.HeaderBytes
		s.ChecksumBytes += c.ChecksumBytes
		for _, b := range c.Blocks {
			s.Blocks++
			s.FramingBytes += blockHeaderBytes
			s.NullBytes += b.NullBytes
			s.ChecksumBytes += b.ChecksumBytes
			statsBump(s.RootSchemes, c.Type.String(), b.Data.Code.String(), 1)
			b.Data.Walk(func(n *SchemeNode, _ int) {
				s.SchemeHeaderBytes += n.HeaderBytes
				s.SchemePayloadBytes += n.PayloadBytes
				statsBump(s.StreamSchemes, n.Kind.String(), n.Code.String(), 1)
				statsBump(s.StreamSchemeBytes, n.Kind.String(), n.Code.String(), n.HeaderBytes+n.PayloadBytes)
			})
		}
	})
	return s
}

func statsBump(m map[string]map[string]int, outer, inner string, by int) {
	mm := m[outer]
	if mm == nil {
		mm = make(map[string]int)
		m[outer] = mm
	}
	mm[inner] += by
}

// Render writes the stats as a text report.
func (s *FileStats) Render(w io.Writer) {
	fmt.Fprintf(w, "size: %d bytes, %d rows, %d columns, %d blocks", s.Size, s.Rows, s.Columns, s.Blocks)
	if s.Chunks > 0 {
		fmt.Fprintf(w, ", %d chunks", s.Chunks)
	}
	if s.Nulls > 0 {
		fmt.Fprintf(w, ", %d nulls", s.Nulls)
	}
	fmt.Fprintf(w, "\n")
	fmt.Fprintf(w, "byte breakdown: framing %d, null bitmaps %d, checksums %d, scheme headers %d, payloads %d\n",
		s.FramingBytes, s.NullBytes, s.ChecksumBytes, s.SchemeHeaderBytes, s.SchemePayloadBytes)
	renderCountTable(w, "root schemes (blocks, by column type)", s.RootSchemes, nil)
	renderCountTable(w, "cascade streams (count and bytes, by stream kind)", s.StreamSchemes, s.StreamSchemeBytes)
}

func renderCountTable(w io.Writer, title string, counts, bytes map[string]map[string]int) {
	if len(counts) == 0 {
		return
	}
	fmt.Fprintf(w, "%s:\n", title)
	outer := make([]string, 0, len(counts))
	for k := range counts {
		outer = append(outer, k)
	}
	sort.Strings(outer)
	for _, o := range outer {
		fmt.Fprintf(w, "  %s:\n", o)
		inner := make([]string, 0, len(counts[o]))
		for k := range counts[o] {
			inner = append(inner, k)
		}
		sort.Slice(inner, func(i, j int) bool {
			if counts[o][inner[i]] != counts[o][inner[j]] {
				return counts[o][inner[i]] > counts[o][inner[j]]
			}
			return inner[i] < inner[j]
		})
		for _, k := range inner {
			fmt.Fprintf(w, "    %-14s %6d", k, counts[o][k])
			if bytes != nil {
				fmt.Fprintf(w, " %10dB", bytes[o][k])
			}
			fmt.Fprintf(w, "\n")
		}
	}
}
