package btrblocks

import (
	"context"
	"encoding/binary"
	"fmt"

	"btrblocks/internal/parallel"
)

// This file implements verification (fsck) for compressed files: a
// best-effort walk over a column, chunk, or stream file that checks every
// per-block and container checksum and reports per-block verdicts instead
// of stopping at the first problem. `btrblocks verify` renders the
// report; the blockstore uses the same per-block primitives
// (ColumnIndex.VerifyBlock) on its serving path.

// VerifyOptions configures Verify.
type VerifyOptions struct {
	// Deep additionally decodes every block payload. This is the only way
	// to catch corruption in v1 files (which carry no checksums), and for
	// v2 files it also exercises the decoder on top of the CRC check.
	Deep bool
	// Parallelism bounds the worker goroutines per file walk (columns
	// within a chunk, blocks within a column). <= 0 means one worker per
	// CPU (runtime.GOMAXPROCS); 1 restores the serial walk. The report is
	// byte-identical at every worker count — verdicts land in ordered
	// slots and counters are folded in file order.
	Parallelism int
}

func (vo *VerifyOptions) workers() int {
	if vo == nil {
		return parallel.Workers(0)
	}
	return parallel.Workers(vo.Parallelism)
}

// BlockVerdict is the verification result for one block.
type BlockVerdict struct {
	Block  int    `json:"block"`
	Offset int    `json:"offset"`
	Size   int    `json:"size"`
	Rows   int    `json:"rows"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
}

// ColumnVerdict is the verification result for one column of a file.
type ColumnVerdict struct {
	// Chunk is the index of the containing stream chunk (0 for column and
	// chunk files).
	Chunk int    `json:"chunk"`
	Name  string `json:"name"`
	Type  string `json:"type"`
	OK    bool   `json:"ok"`
	// Error reports a column-level problem: unparseable framing or a
	// failed whole-file checksum. Block-level problems live in Blocks.
	Error  string         `json:"error,omitempty"`
	Blocks []BlockVerdict `json:"blocks,omitempty"`
}

// VerifyReport is the result of verifying one file.
type VerifyReport struct {
	Path string `json:"path,omitempty"`
	Kind string `json:"kind"`
	Size int    `json:"size"`
	// Version is the container format version; Checksummed reports
	// whether it carries CRCs (v2). A v1 report with OK=true only means
	// the framing is consistent (and, with Deep, that payloads decode).
	Version     int  `json:"version"`
	Checksummed bool `json:"checksummed"`
	OK          bool `json:"ok"`
	// Errors lists container-level problems (bad magic, broken stream
	// framing, failed container checksum).
	Errors  []string        `json:"errors,omitempty"`
	Columns []ColumnVerdict `json:"columns,omitempty"`
	// BlocksOK / BlocksBad count block verdicts across all columns.
	BlocksOK  int `json:"blocks_ok"`
	BlocksBad int `json:"blocks_bad"`
}

func (r *VerifyReport) fail(format string, args ...any) {
	r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
	r.OK = false
}

// SniffKind detects the container format from a file's magic bytes.
func SniffKind(data []byte) (FileKind, bool) {
	if len(data) < 4 {
		return 0, false
	}
	switch string(data[:4]) {
	case columnMagic:
		return FileKindColumn, true
	case fileMagic:
		return FileKindChunk, true
	case streamMagic:
		return FileKindStream, true
	}
	return 0, false
}

// Verify checks a compressed file's integrity and returns a best-effort
// report: it keeps walking past damaged blocks so a single report covers
// every block of every column. It never panics on arbitrary input and
// does not return an error — problems are recorded in the report.
func Verify(data []byte, vo *VerifyOptions) *VerifyReport {
	rep := &VerifyReport{Size: len(data), OK: true}
	kind, ok := SniffKind(data)
	if !ok {
		rep.Kind = "unknown"
		rep.fail("not a btrblocks file (unrecognized magic)")
		return rep
	}
	rep.Kind = kind.String()
	if len(data) < 5 {
		rep.fail("truncated header: %d bytes, version byte missing", len(data))
		return rep
	}
	if !supportedVersion(data[4]) {
		rep.fail("unsupported format version %d", data[4])
		return rep
	}
	rep.Version = int(data[4])
	rep.Checksummed = checksummedVersion(data[4])
	switch kind {
	case FileKindColumn:
		foldColumn(rep, columnVerdict(data, 0, 0, vo))
	case FileKindChunk:
		verifyChunkBody(rep, data, 0, 0, vo)
	case FileKindStream:
		verifyStream(rep, data, vo)
	}
	return rep
}

// columnVerdict verifies one column file located at data[0] and returns
// its self-contained verdict; base is the column's absolute offset in
// the containing file, chunkIdx the containing stream chunk (0 outside
// streams). Blocks are checked on the worker pool into ordered verdict
// slots, so the verdict is identical at every worker count.
func columnVerdict(data []byte, base, chunkIdx int, vo *VerifyOptions) ColumnVerdict {
	cv := ColumnVerdict{Chunk: chunkIdx, OK: true}
	ix, err := ParseColumnIndex(data)
	if err != nil {
		cv.OK = false
		cv.Error = fmt.Sprintf("unparseable column framing: %v", err)
		return cv
	}
	cv.Name, cv.Type = ix.Name, ix.Type.String()
	deep := vo != nil && vo.Deep
	if len(ix.Blocks) > 0 {
		cv.Blocks = make([]BlockVerdict, len(ix.Blocks))
	}
	// The walk is best-effort by contract — block checks never return an
	// error to the pool, so damage in one block cannot stop the others.
	_ = parallel.Run(context.Background(), len(ix.Blocks), vo.workers(), func(b int) error {
		ref := ix.Blocks[b]
		bv := BlockVerdict{Block: b, Offset: base + ref.Offset, Size: ref.CompressedBytes(), Rows: ref.Rows, OK: true}
		if err := ix.VerifyBlock(data, b); err != nil {
			bv.OK = false
			bv.Error = err.Error()
		} else if deep {
			if _, err := ix.DecompressBlock(data, b, nil); err != nil {
				bv.OK = false
				bv.Error = fmt.Sprintf("decode: %v", err)
			}
		}
		cv.Blocks[b] = bv
		return nil
	})
	for _, bv := range cv.Blocks {
		if !bv.OK {
			cv.OK = false
		}
	}
	if ix.Checksummed() {
		if err := verifyTrailingCRC(data, "column file"); err != nil {
			cv.OK = false
			if cv.Error == "" {
				cv.Error = err.Error()
			}
		}
	}
	return cv
}

// foldColumn merges a column verdict into the report, updating the
// block counters in file order.
func foldColumn(rep *VerifyReport, cv ColumnVerdict) {
	for _, bv := range cv.Blocks {
		if bv.OK {
			rep.BlocksOK++
		} else {
			rep.BlocksBad++
		}
	}
	if !cv.OK {
		rep.OK = false
	}
	rep.Columns = append(rep.Columns, cv)
}

// verifyChunkBody verifies a chunk file ("BTRB") located at data[0].
// Columns are verified concurrently into ordered slots and folded into
// the report in file order.
func verifyChunkBody(rep *VerifyReport, data []byte, base, chunkIdx int, vo *VerifyOptions) {
	if len(data) < 7 {
		rep.fail("chunk at offset %d: truncated header", base)
		return
	}
	checksummed := checksummedVersion(data[4])
	bodyEnd := len(data)
	if checksummed {
		if err := verifyTrailingCRC(data, "chunk file"); err != nil {
			rep.fail("chunk at offset %d: %v", base, err)
			// The CRC trailer is still structurally present; keep walking
			// so per-column verdicts localize the damage.
		}
		bodyEnd -= crcBytes
	}
	nCols := int(binary.LittleEndian.Uint16(data[5:]))
	pos := 7
	if bodyEnd < pos+4*nCols {
		rep.fail("chunk at offset %d: truncated length table", base)
		return
	}
	lengths := make([]int, nCols)
	for i := range lengths {
		lengths[i] = int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
	}
	// Pre-walk the length table so every column's extent is known before
	// the fan-out; like the serial walk, columns after the first overrun
	// are not reported.
	offsets := make([]int, 0, nCols)
	overrun := -1
	for i, l := range lengths {
		if l < 0 || bodyEnd < pos+l {
			overrun = i
			break
		}
		offsets = append(offsets, pos)
		pos += l
	}
	verdicts := make([]ColumnVerdict, len(offsets))
	_ = parallel.Run(context.Background(), len(offsets), vo.workers(), func(i int) error {
		off := offsets[i]
		verdicts[i] = columnVerdict(data[off:off+lengths[i]], base+off, chunkIdx, vo)
		return nil
	})
	for _, cv := range verdicts {
		foldColumn(rep, cv)
	}
	if overrun >= 0 {
		rep.fail("chunk at offset %d: column %d length %d overruns file", base, overrun, lengths[overrun])
		return
	}
	if pos != bodyEnd {
		rep.fail("chunk at offset %d: %d trailing bytes", base, bodyEnd-pos)
	}
}

// verifyStream verifies a stream file ("BTRS"): header, every chunk, the
// footer, and the stream checksum.
func verifyStream(rep *VerifyReport, data []byte, vo *VerifyOptions) {
	if rep.Checksummed {
		if err := verifyTrailingCRC(data, "stream file"); err != nil {
			rep.fail("%v", err)
		}
	}
	if len(data) < 7 {
		rep.fail("truncated stream header")
		return
	}
	nCols := int(binary.LittleEndian.Uint16(data[5:]))
	pos := 7
	for i := 0; i < nCols; i++ {
		if len(data) < pos+3 {
			rep.fail("truncated stream schema")
			return
		}
		nameLen := int(binary.LittleEndian.Uint16(data[pos+1:]))
		pos += 3 + nameLen
		if len(data) < pos {
			rep.fail("truncated stream schema")
			return
		}
	}
	chunkIdx := 0
	for {
		if len(data) < pos+1 {
			rep.fail("stream ends without footer")
			return
		}
		switch data[pos] {
		case 'C':
			if len(data) < pos+5 {
				rep.fail("chunk %d: truncated frame", chunkIdx)
				return
			}
			payloadLen := int(binary.LittleEndian.Uint32(data[pos+1:]))
			if payloadLen < 0 || len(data) < pos+5+payloadLen {
				rep.fail("chunk %d: frame length %d overruns file", chunkIdx, payloadLen)
				return
			}
			verifyChunkBody(rep, data[pos+5:pos+5+payloadLen], pos+5, chunkIdx, vo)
			pos += 5 + payloadLen
			chunkIdx++
		case 'E':
			want := pos + 13
			if rep.Checksummed {
				want += crcBytes
			}
			if len(data) != want {
				rep.fail("footer: file has %d bytes, framing accounts for %d", len(data), want)
			}
			return
		default:
			rep.fail("chunk %d: unknown frame tag %#x at offset %d", chunkIdx, data[pos], pos)
			return
		}
	}
}
