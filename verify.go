package btrblocks

import (
	"encoding/binary"
	"fmt"
)

// This file implements verification (fsck) for compressed files: a
// best-effort walk over a column, chunk, or stream file that checks every
// per-block and container checksum and reports per-block verdicts instead
// of stopping at the first problem. `btrblocks verify` renders the
// report; the blockstore uses the same per-block primitives
// (ColumnIndex.VerifyBlock) on its serving path.

// VerifyOptions configures Verify.
type VerifyOptions struct {
	// Deep additionally decodes every block payload. This is the only way
	// to catch corruption in v1 files (which carry no checksums), and for
	// v2 files it also exercises the decoder on top of the CRC check.
	Deep bool
}

// BlockVerdict is the verification result for one block.
type BlockVerdict struct {
	Block  int    `json:"block"`
	Offset int    `json:"offset"`
	Size   int    `json:"size"`
	Rows   int    `json:"rows"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
}

// ColumnVerdict is the verification result for one column of a file.
type ColumnVerdict struct {
	// Chunk is the index of the containing stream chunk (0 for column and
	// chunk files).
	Chunk int    `json:"chunk"`
	Name  string `json:"name"`
	Type  string `json:"type"`
	OK    bool   `json:"ok"`
	// Error reports a column-level problem: unparseable framing or a
	// failed whole-file checksum. Block-level problems live in Blocks.
	Error  string         `json:"error,omitempty"`
	Blocks []BlockVerdict `json:"blocks,omitempty"`
}

// VerifyReport is the result of verifying one file.
type VerifyReport struct {
	Path string `json:"path,omitempty"`
	Kind string `json:"kind"`
	Size int    `json:"size"`
	// Version is the container format version; Checksummed reports
	// whether it carries CRCs (v2). A v1 report with OK=true only means
	// the framing is consistent (and, with Deep, that payloads decode).
	Version     int  `json:"version"`
	Checksummed bool `json:"checksummed"`
	OK          bool `json:"ok"`
	// Errors lists container-level problems (bad magic, broken stream
	// framing, failed container checksum).
	Errors  []string        `json:"errors,omitempty"`
	Columns []ColumnVerdict `json:"columns,omitempty"`
	// BlocksOK / BlocksBad count block verdicts across all columns.
	BlocksOK  int `json:"blocks_ok"`
	BlocksBad int `json:"blocks_bad"`
}

func (r *VerifyReport) fail(format string, args ...any) {
	r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
	r.OK = false
}

// SniffKind detects the container format from a file's magic bytes.
func SniffKind(data []byte) (FileKind, bool) {
	if len(data) < 4 {
		return 0, false
	}
	switch string(data[:4]) {
	case columnMagic:
		return FileKindColumn, true
	case fileMagic:
		return FileKindChunk, true
	case streamMagic:
		return FileKindStream, true
	}
	return 0, false
}

// Verify checks a compressed file's integrity and returns a best-effort
// report: it keeps walking past damaged blocks so a single report covers
// every block of every column. It never panics on arbitrary input and
// does not return an error — problems are recorded in the report.
func Verify(data []byte, vo *VerifyOptions) *VerifyReport {
	rep := &VerifyReport{Size: len(data), OK: true}
	deep := vo != nil && vo.Deep
	kind, ok := SniffKind(data)
	if !ok {
		rep.Kind = "unknown"
		rep.fail("not a btrblocks file (unrecognized magic)")
		return rep
	}
	rep.Kind = kind.String()
	if len(data) < 5 {
		rep.fail("truncated header: %d bytes, version byte missing", len(data))
		return rep
	}
	if !supportedVersion(data[4]) {
		rep.fail("unsupported format version %d", data[4])
		return rep
	}
	rep.Version = int(data[4])
	rep.Checksummed = checksummedVersion(data[4])
	switch kind {
	case FileKindColumn:
		verifyColumn(rep, data, 0, 0, deep)
	case FileKindChunk:
		verifyChunkBody(rep, data, 0, 0, deep)
	case FileKindStream:
		verifyStream(rep, data, deep)
	}
	return rep
}

// verifyColumn verifies one column file located at data[0]; base is its
// absolute offset in the containing file, chunkIdx the containing stream
// chunk (0 outside streams).
func verifyColumn(rep *VerifyReport, data []byte, base, chunkIdx int, deep bool) {
	cv := ColumnVerdict{Chunk: chunkIdx, OK: true}
	defer func() { rep.Columns = append(rep.Columns, cv) }()
	ix, err := ParseColumnIndex(data)
	if err != nil {
		cv.OK = false
		cv.Error = fmt.Sprintf("unparseable column framing: %v", err)
		rep.OK = false
		return
	}
	cv.Name, cv.Type = ix.Name, ix.Type.String()
	for b, ref := range ix.Blocks {
		bv := BlockVerdict{Block: b, Offset: base + ref.Offset, Size: ref.CompressedBytes(), Rows: ref.Rows, OK: true}
		if err := ix.VerifyBlock(data, b); err != nil {
			bv.OK = false
			bv.Error = err.Error()
		} else if deep {
			if _, err := ix.DecompressBlock(data, b, nil); err != nil {
				bv.OK = false
				bv.Error = fmt.Sprintf("decode: %v", err)
			}
		}
		if bv.OK {
			rep.BlocksOK++
		} else {
			rep.BlocksBad++
			cv.OK = false
			rep.OK = false
		}
		cv.Blocks = append(cv.Blocks, bv)
	}
	if ix.Checksummed() {
		if err := verifyTrailingCRC(data, "column file"); err != nil {
			cv.OK = false
			rep.OK = false
			if cv.Error == "" {
				cv.Error = err.Error()
			}
		}
	}
}

// verifyChunkBody verifies a chunk file ("BTRB") located at data[0].
func verifyChunkBody(rep *VerifyReport, data []byte, base, chunkIdx int, deep bool) {
	if len(data) < 7 {
		rep.fail("chunk at offset %d: truncated header", base)
		return
	}
	checksummed := checksummedVersion(data[4])
	bodyEnd := len(data)
	if checksummed {
		if err := verifyTrailingCRC(data, "chunk file"); err != nil {
			rep.fail("chunk at offset %d: %v", base, err)
			// The CRC trailer is still structurally present; keep walking
			// so per-column verdicts localize the damage.
		}
		bodyEnd -= crcBytes
	}
	nCols := int(binary.LittleEndian.Uint16(data[5:]))
	pos := 7
	if bodyEnd < pos+4*nCols {
		rep.fail("chunk at offset %d: truncated length table", base)
		return
	}
	lengths := make([]int, nCols)
	for i := range lengths {
		lengths[i] = int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
	}
	for i, l := range lengths {
		if l < 0 || bodyEnd < pos+l {
			rep.fail("chunk at offset %d: column %d length %d overruns file", base, i, l)
			return
		}
		verifyColumn(rep, data[pos:pos+l], base+pos, chunkIdx, deep)
		pos += l
	}
	if pos != bodyEnd {
		rep.fail("chunk at offset %d: %d trailing bytes", base, bodyEnd-pos)
	}
}

// verifyStream verifies a stream file ("BTRS"): header, every chunk, the
// footer, and the stream checksum.
func verifyStream(rep *VerifyReport, data []byte, deep bool) {
	if rep.Checksummed {
		if err := verifyTrailingCRC(data, "stream file"); err != nil {
			rep.fail("%v", err)
		}
	}
	if len(data) < 7 {
		rep.fail("truncated stream header")
		return
	}
	nCols := int(binary.LittleEndian.Uint16(data[5:]))
	pos := 7
	for i := 0; i < nCols; i++ {
		if len(data) < pos+3 {
			rep.fail("truncated stream schema")
			return
		}
		nameLen := int(binary.LittleEndian.Uint16(data[pos+1:]))
		pos += 3 + nameLen
		if len(data) < pos {
			rep.fail("truncated stream schema")
			return
		}
	}
	chunkIdx := 0
	for {
		if len(data) < pos+1 {
			rep.fail("stream ends without footer")
			return
		}
		switch data[pos] {
		case 'C':
			if len(data) < pos+5 {
				rep.fail("chunk %d: truncated frame", chunkIdx)
				return
			}
			payloadLen := int(binary.LittleEndian.Uint32(data[pos+1:]))
			if payloadLen < 0 || len(data) < pos+5+payloadLen {
				rep.fail("chunk %d: frame length %d overruns file", chunkIdx, payloadLen)
				return
			}
			verifyChunkBody(rep, data[pos+5:pos+5+payloadLen], pos+5, chunkIdx, deep)
			pos += 5 + payloadLen
			chunkIdx++
		case 'E':
			want := pos + 13
			if rep.Checksummed {
				want += crcBytes
			}
			if len(data) != want {
				rep.fail("footer: file has %d bytes, framing accounts for %d", len(data), want)
			}
			return
		default:
			rep.fail("chunk %d: unknown frame tag %#x at offset %d", chunkIdx, data[pos], pos)
			return
		}
	}
}
