package btrblocks

import (
	"fmt"
	"math/rand"
	"testing"
)

// indexTestColumns builds one multi-block column per type, with NULLs.
func indexTestColumns(t *testing.T) []Column {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	const n = 10000
	nulls := NewNullMask()
	for i := 0; i < n; i += 7 {
		nulls.SetNull(i)
	}
	ints := make([]int32, n)
	ints64 := make([]int64, n)
	doubles := make([]float64, n)
	strs := make([]string, n)
	for i := 0; i < n; i++ {
		ints[i] = int32(rng.Intn(1000))
		ints64[i] = int64(rng.Intn(1000)) << 20
		doubles[i] = float64(rng.Intn(40000)) / 100
		strs[i] = fmt.Sprintf("value-%d", rng.Intn(64))
	}
	cols := []Column{
		IntColumn("i", ints),
		Int64Column("l", ints64),
		DoubleColumn("d", doubles),
		StringColumn("s", strs),
	}
	for i := range cols {
		cols[i].Nulls = nulls
	}
	return cols
}

func TestParseColumnIndexShape(t *testing.T) {
	opt := &Options{BlockSize: 3000} // 10000 rows -> 4 blocks
	for _, col := range indexTestColumns(t) {
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatalf("%s: %v", col.Name, err)
		}
		ix, err := ParseColumnIndex(data)
		if err != nil {
			t.Fatalf("%s: %v", col.Name, err)
		}
		if ix.Name != col.Name || ix.Type != col.Type {
			t.Fatalf("%s: index says %s %v", col.Name, ix.Name, ix.Type)
		}
		if ix.Rows != col.Len() {
			t.Fatalf("%s: index rows %d, want %d", col.Name, ix.Rows, col.Len())
		}
		if len(ix.Blocks) != 4 {
			t.Fatalf("%s: %d blocks, want 4", col.Name, len(ix.Blocks))
		}
		start := 0
		for b, ref := range ix.Blocks {
			if ref.StartRow != start {
				t.Fatalf("%s block %d: StartRow %d, want %d", col.Name, b, ref.StartRow, start)
			}
			start += ref.Rows
			if ref.End() > len(data) {
				t.Fatalf("%s block %d: End %d past file end %d", col.Name, b, ref.End(), len(data))
			}
			if ref.NullBytes == 0 {
				t.Fatalf("%s block %d: expected a NULL bitmap", col.Name, b)
			}
		}
		// In format v2 the last block is followed by its 4-byte block CRC
		// and the whole-file CRC.
		if want := len(data) - 2*4; ix.Blocks[3].End() != want {
			t.Fatalf("%s: last block ends at %d, want %d (file has %d)", col.Name, ix.Blocks[3].End(), want, len(data))
		}
	}
}

func TestDecompressBlockMatchesFullDecode(t *testing.T) {
	opt := &Options{BlockSize: 3000}
	for _, col := range indexTestColumns(t) {
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatalf("%s: %v", col.Name, err)
		}
		full, err := DecompressColumn(data, opt)
		if err != nil {
			t.Fatalf("%s: %v", col.Name, err)
		}
		ix, err := ParseColumnIndex(data)
		if err != nil {
			t.Fatalf("%s: %v", col.Name, err)
		}
		for b, ref := range ix.Blocks {
			blk, err := ix.DecompressBlock(data, b, opt)
			if err != nil {
				t.Fatalf("%s block %d: %v", col.Name, b, err)
			}
			if blk.Len() != ref.Rows {
				t.Fatalf("%s block %d: %d rows, want %d", col.Name, b, blk.Len(), ref.Rows)
			}
			for i := 0; i < blk.Len(); i++ {
				r := ref.StartRow + i
				if blk.Nulls.IsNull(i) != full.Nulls.IsNull(r) {
					t.Fatalf("%s block %d row %d: NULL mask mismatch", col.Name, b, i)
				}
				if blk.Nulls.IsNull(i) {
					continue
				}
				var same bool
				switch col.Type {
				case TypeInt:
					same = blk.Ints[i] == full.Ints[r]
				case TypeInt64:
					same = blk.Ints64[i] == full.Ints64[r]
				case TypeDouble:
					same = blk.Doubles[i] == full.Doubles[r]
				case TypeString:
					same = blk.Strings.At(i) == full.Strings.At(r)
				}
				if !same {
					t.Fatalf("%s block %d row %d: value mismatch", col.Name, b, i)
				}
			}
		}
	}
}

func TestDecompressBlockOutOfRange(t *testing.T) {
	data := mustCompress(t, IntColumn("x", []int32{1, 2, 3}))
	ix, err := ParseColumnIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{-1, 1, 99} {
		if _, err := ix.DecompressBlock(data, b, nil); err == nil {
			t.Fatalf("block %d: no error", b)
		}
	}
}

func TestParseColumnIndexCorrupt(t *testing.T) {
	data := mustCompress(t, IntColumn("x", []int32{1, 2, 3, 4, 5, 6}))
	// Every truncation must be rejected — the index walk is header-only
	// but still bounds-checks the whole file.
	for cut := 0; cut < len(data); cut++ {
		if _, err := ParseColumnIndex(data[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	// Trailing garbage is corruption, not slack.
	if _, err := ParseColumnIndex(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing byte not detected")
	}
	bad := append([]byte(nil), data...)
	bad[4] = 99 // version
	if _, err := ParseColumnIndex(bad); err == nil {
		t.Fatal("bad version not detected")
	}
}

func TestDecompressBlockRecordsTelemetry(t *testing.T) {
	opt := &Options{BlockSize: 3000, Telemetry: NewTelemetry()}
	col := indexTestColumns(t)[0]
	data, err := CompressColumn(col, opt)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ParseColumnIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	opt.Telemetry.Reset()
	if _, err := ix.DecompressBlock(data, 2, opt); err != nil {
		t.Fatal(err)
	}
	snap := opt.Telemetry.Snapshot()
	if snap.DecodeBlocks != 1 || snap.DecodeValues != int64(ix.Blocks[2].Rows) {
		t.Fatalf("decode telemetry = %d blocks / %d values, want 1 / %d",
			snap.DecodeBlocks, snap.DecodeValues, ix.Blocks[2].Rows)
	}
}
