package btrblocks

import (
	"btrblocks/internal/obs"
)

// This file connects the compression pipeline to the cascade decision
// tracer: Options.Trace, when set, receives one BlockTrace per
// compressed block describing every candidate scheme the picker scored,
// the sample estimates, the winner, and the full cascade tree. Where
// Options.Telemetry answers "what was chosen, how often", Options.Trace
// answers "why was it chosen over the alternatives" — the data needed to
// debug scheme-pool ablations (paper §3, Figure 8).

// Tracer is a thread-safe sink for per-block cascade decision traces.
// Create one with NewTracer, set it on Options.Trace, and read it back
// with Snapshot. A nil *Tracer is valid and records nothing.
type Tracer = obs.Tracer

// DecisionTrace is the exported decision-trace document: one BlockTrace
// per block, ordered by (column, block), with a schema version. Its JSON
// encoding is specified in OBSERVABILITY.md; Validate checks a document
// against that schema and RenderTree prints it for humans.
type DecisionTrace = obs.Trace

// BlockTrace is the decision trace of one compressed block: the cascade
// tree of scheme selections, each with its candidate estimates.
type BlockTrace = obs.BlockTrace

// TraceNode is one scheme-selection decision in a block's cascade tree.
type TraceNode = obs.Node

// TraceCandidate is one scheme the picker scored for a stream.
type TraceCandidate = obs.Candidate

// TraceVersion is the decision-trace JSON schema version (see
// OBSERVABILITY.md).
const TraceVersion = obs.TraceVersion

// NewTracer returns an empty decision tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// tracer returns the configured tracer, or nil when tracing is off.
func (o *Options) tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}
