package btrblocks

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// countRef is the reference implementation: decompress and compare.
func countRefInt(col Column, v int32) int {
	n := 0
	for i, x := range col.Ints {
		if x == v && !col.Nulls.IsNull(i) {
			n++
		}
	}
	return n
}

func TestCountEqualInt32AllSchemes(t *testing.T) {
	opt := DefaultOptions()
	rng := rand.New(rand.NewSource(1))

	makers := map[string]func(n int) []int32{
		"onevalue": func(n int) []int32 { return make([]int32, n) },
		"runs": func(n int) []int32 {
			out := make([]int32, 0, n)
			for len(out) < n {
				v := int32(rng.Intn(10))
				for k := 0; k < 20+rng.Intn(100) && len(out) < n; k++ {
					out = append(out, v)
				}
			}
			return out
		},
		"smallrange": func(n int) []int32 {
			out := make([]int32, n)
			for i := range out {
				out[i] = int32(rng.Intn(64))
			}
			return out
		},
		"skewed": func(n int) []int32 {
			out := make([]int32, n)
			for i := range out {
				if rng.Float64() < 0.9 {
					out[i] = 7
				} else {
					out[i] = rng.Int31()
				}
			}
			return out
		},
		"outliers": func(n int) []int32 {
			out := make([]int32, n)
			for i := range out {
				out[i] = int32(rng.Intn(16))
				if i%97 == 0 {
					out[i] = 1 << 29
				}
			}
			return out
		},
	}
	for name, mk := range makers {
		values := mk(64000)
		col := IntColumn("c", values)
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, probe := range []int32{0, 7, 5, 1 << 29, -1, values[100]} {
			got, err := CountEqualInt32(data, probe, opt)
			if err != nil {
				t.Fatalf("%s probe %d: %v", name, probe, err)
			}
			if want := countRefInt(col, probe); got != want {
				t.Fatalf("%s probe %d: got %d, want %d", name, probe, got, want)
			}
		}
	}
}

func TestCountEqualDoubleSchemes(t *testing.T) {
	opt := DefaultOptions()
	rng := rand.New(rand.NewSource(2))
	makers := map[string]func(n int) []float64{
		"pricing": func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(rng.Intn(500)) / 4 // quarters: exact
			}
			return out
		},
		"dict": func(n int) []float64 {
			vals := []float64{0, 1.5, math.Pi, 99.99}
			out := make([]float64, n)
			for i := range out {
				out[i] = vals[rng.Intn(len(vals))]
			}
			return out
		},
		"runs": func(n int) []float64 {
			out := make([]float64, 0, n)
			for len(out) < n {
				v := float64(rng.Intn(8))
				for k := 0; k < 30+rng.Intn(60) && len(out) < n; k++ {
					out = append(out, v)
				}
			}
			return out
		},
	}
	for name, mk := range makers {
		values := mk(64000)
		col := DoubleColumn("c", values)
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, probe := range []float64{0, 1.5, values[5], -7.25, math.Pi} {
			got, err := CountEqualDouble(data, probe, opt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want := 0
			pb := math.Float64bits(probe)
			for _, x := range values {
				if math.Float64bits(x) == pb {
					want++
				}
			}
			if got != want {
				t.Fatalf("%s probe %v: got %d, want %d", name, probe, got, want)
			}
		}
	}
}

func TestCountEqualStringSchemes(t *testing.T) {
	opt := DefaultOptions()
	rng := rand.New(rand.NewSource(3))
	makers := map[string]func(n int) []string{
		"onevalue": func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = "CABLE"
			}
			return out
		},
		"dict": func(n int) []string {
			vals := []string{"PHOENIX", "RALEIGH", "ATHENS"}
			out := make([]string, n)
			for i := range out {
				out[i] = vals[rng.Intn(len(vals))]
			}
			return out
		},
		"dictRuns": func(n int) []string {
			vals := []string{"01 BRONX", "04 BRONX", "03 QUEENS"}
			out := make([]string, 0, n)
			for len(out) < n {
				v := vals[rng.Intn(len(vals))]
				for k := 0; k < 40+rng.Intn(80) && len(out) < n; k++ {
					out = append(out, v)
				}
			}
			return out
		},
		"fsst": func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = fmt.Sprintf("https://example.com/products/item-%d", i)
			}
			return out
		},
	}
	for name, mk := range makers {
		values := mk(30000)
		col := StringColumn("c", values)
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, probe := range []string{"CABLE", "PHOENIX", "01 BRONX", values[7], "missing-value"} {
			got, err := CountEqualString(data, probe, opt)
			if err != nil {
				t.Fatalf("%s probe %q: %v", name, probe, err)
			}
			want := 0
			for _, x := range values {
				if x == probe {
					want++
				}
			}
			if got != want {
				t.Fatalf("%s probe %q: got %d, want %d", name, probe, got, want)
			}
		}
	}
}

func TestCountEqualRespectsNulls(t *testing.T) {
	// NULL slots are rewritten by densification and must never count.
	opt := DefaultOptions()
	n := 10000
	values := make([]int32, n)
	nulls := NewNullMask()
	for i := range values {
		values[i] = 5
		if i%3 == 0 {
			nulls.SetNull(i)
			values[i] = 999 // garbage that densification replaces
		}
	}
	col := IntColumn("c", values)
	col.Nulls = nulls
	data, err := CompressColumn(col, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CountEqualInt32(data, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := countRefInt(col, 5); got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
	// 999 slots are NULL; they must not be observable as matches
	got999, err := CountEqualInt32(data, 999, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got999 != 0 {
		t.Fatalf("NULL garbage matched %d times", got999)
	}
}

func TestCountEqualTypeMismatch(t *testing.T) {
	opt := DefaultOptions()
	data, err := CompressColumn(IntColumn("c", []int32{1, 2, 3}), opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CountEqualString(data, "x", opt); err != ErrTypeMismatch {
		t.Fatalf("err = %v, want type mismatch", err)
	}
	if _, err := CountEqualDouble(data, 1, opt); err != ErrTypeMismatch {
		t.Fatalf("err = %v, want type mismatch", err)
	}
}

func TestCountEqualQuick(t *testing.T) {
	opt := &Options{BlockSize: 500}
	f := func(values []int32, probe int32) bool {
		// push values into a small range so matches actually occur
		for i := range values {
			values[i] &= 15
		}
		probe &= 15
		col := IntColumn("c", values)
		data, err := CompressColumn(col, opt)
		if err != nil {
			return false
		}
		got, err := CountEqualInt32(data, probe, opt)
		if err != nil {
			return false
		}
		return got == countRefInt(col, probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
