package btrblocks

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// countRef is the reference implementation: decompress and compare.
func countRefInt(col Column, v int32) int {
	n := 0
	for i, x := range col.Ints {
		if x == v && !col.Nulls.IsNull(i) {
			n++
		}
	}
	return n
}

func TestCountEqualInt32AllSchemes(t *testing.T) {
	opt := DefaultOptions()
	rng := rand.New(rand.NewSource(1))

	makers := map[string]func(n int) []int32{
		"onevalue": func(n int) []int32 { return make([]int32, n) },
		"runs": func(n int) []int32 {
			out := make([]int32, 0, n)
			for len(out) < n {
				v := int32(rng.Intn(10))
				for k := 0; k < 20+rng.Intn(100) && len(out) < n; k++ {
					out = append(out, v)
				}
			}
			return out
		},
		"smallrange": func(n int) []int32 {
			out := make([]int32, n)
			for i := range out {
				out[i] = int32(rng.Intn(64))
			}
			return out
		},
		"skewed": func(n int) []int32 {
			out := make([]int32, n)
			for i := range out {
				if rng.Float64() < 0.9 {
					out[i] = 7
				} else {
					out[i] = rng.Int31()
				}
			}
			return out
		},
		"outliers": func(n int) []int32 {
			out := make([]int32, n)
			for i := range out {
				out[i] = int32(rng.Intn(16))
				if i%97 == 0 {
					out[i] = 1 << 29
				}
			}
			return out
		},
	}
	for name, mk := range makers {
		values := mk(64000)
		col := IntColumn("c", values)
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, probe := range []int32{0, 7, 5, 1 << 29, -1, values[100]} {
			got, err := CountEqualInt32(data, probe, opt)
			if err != nil {
				t.Fatalf("%s probe %d: %v", name, probe, err)
			}
			if want := countRefInt(col, probe); got != want {
				t.Fatalf("%s probe %d: got %d, want %d", name, probe, got, want)
			}
		}
	}
}

func TestCountEqualDoubleSchemes(t *testing.T) {
	opt := DefaultOptions()
	rng := rand.New(rand.NewSource(2))
	makers := map[string]func(n int) []float64{
		"pricing": func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(rng.Intn(500)) / 4 // quarters: exact
			}
			return out
		},
		"dict": func(n int) []float64 {
			vals := []float64{0, 1.5, math.Pi, 99.99}
			out := make([]float64, n)
			for i := range out {
				out[i] = vals[rng.Intn(len(vals))]
			}
			return out
		},
		"runs": func(n int) []float64 {
			out := make([]float64, 0, n)
			for len(out) < n {
				v := float64(rng.Intn(8))
				for k := 0; k < 30+rng.Intn(60) && len(out) < n; k++ {
					out = append(out, v)
				}
			}
			return out
		},
	}
	for name, mk := range makers {
		values := mk(64000)
		col := DoubleColumn("c", values)
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, probe := range []float64{0, 1.5, values[5], -7.25, math.Pi} {
			got, err := CountEqualDouble(data, probe, opt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want := 0
			pb := math.Float64bits(probe)
			for _, x := range values {
				if math.Float64bits(x) == pb {
					want++
				}
			}
			if got != want {
				t.Fatalf("%s probe %v: got %d, want %d", name, probe, got, want)
			}
		}
	}
}

func TestCountEqualStringSchemes(t *testing.T) {
	opt := DefaultOptions()
	rng := rand.New(rand.NewSource(3))
	makers := map[string]func(n int) []string{
		"onevalue": func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = "CABLE"
			}
			return out
		},
		"dict": func(n int) []string {
			vals := []string{"PHOENIX", "RALEIGH", "ATHENS"}
			out := make([]string, n)
			for i := range out {
				out[i] = vals[rng.Intn(len(vals))]
			}
			return out
		},
		"dictRuns": func(n int) []string {
			vals := []string{"01 BRONX", "04 BRONX", "03 QUEENS"}
			out := make([]string, 0, n)
			for len(out) < n {
				v := vals[rng.Intn(len(vals))]
				for k := 0; k < 40+rng.Intn(80) && len(out) < n; k++ {
					out = append(out, v)
				}
			}
			return out
		},
		"fsst": func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = fmt.Sprintf("https://example.com/products/item-%d", i)
			}
			return out
		},
	}
	for name, mk := range makers {
		values := mk(30000)
		col := StringColumn("c", values)
		data, err := CompressColumn(col, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, probe := range []string{"CABLE", "PHOENIX", "01 BRONX", values[7], "missing-value"} {
			got, err := CountEqualString(data, probe, opt)
			if err != nil {
				t.Fatalf("%s probe %q: %v", name, probe, err)
			}
			want := 0
			for _, x := range values {
				if x == probe {
					want++
				}
			}
			if got != want {
				t.Fatalf("%s probe %q: got %d, want %d", name, probe, got, want)
			}
		}
	}
}

func TestCountEqualRespectsNulls(t *testing.T) {
	// NULL slots are rewritten by densification and must never count.
	opt := DefaultOptions()
	n := 10000
	values := make([]int32, n)
	nulls := NewNullMask()
	for i := range values {
		values[i] = 5
		if i%3 == 0 {
			nulls.SetNull(i)
			values[i] = 999 // garbage that densification replaces
		}
	}
	col := IntColumn("c", values)
	col.Nulls = nulls
	data, err := CompressColumn(col, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CountEqualInt32(data, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := countRefInt(col, 5); got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
	// 999 slots are NULL; they must not be observable as matches
	got999, err := CountEqualInt32(data, 999, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got999 != 0 {
		t.Fatalf("NULL garbage matched %d times", got999)
	}
}

func TestCountEqualTypeMismatch(t *testing.T) {
	opt := DefaultOptions()
	data, err := CompressColumn(IntColumn("c", []int32{1, 2, 3}), opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CountEqualString(data, "x", opt); err != ErrTypeMismatch {
		t.Fatalf("err = %v, want type mismatch", err)
	}
	if _, err := CountEqualDouble(data, 1, opt); err != ErrTypeMismatch {
		t.Fatalf("err = %v, want type mismatch", err)
	}
}

func TestCountEqualQuick(t *testing.T) {
	opt := &Options{BlockSize: 500}
	f := func(values []int32, probe int32) bool {
		// push values into a small range so matches actually occur
		for i := range values {
			values[i] &= 15
		}
		probe &= 15
		col := IntColumn("c", values)
		data, err := CompressColumn(col, opt)
		if err != nil {
			return false
		}
		got, err := CountEqualInt32(data, probe, opt)
		if err != nil {
			return false
		}
		return got == countRefInt(col, probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCountEqualStringDictMissNoDecode(t *testing.T) {
	// A probe absent from a Dict block's dictionary is decided by the
	// dictionary probe alone; the compressed codes are never decoded. The
	// decode telemetry counter is the witness: it is bumped only where
	// values are actually materialized.
	rng := rand.New(rand.NewSource(11))
	vals := []string{"PHOENIX", "RALEIGH", "ATHENS", "CURITIBA"}
	values := make([]string, 30000)
	for i := range values {
		values[i] = vals[rng.Intn(len(vals))]
	}
	opt := &Options{Telemetry: NewTelemetry()}
	data, err := CompressColumn(StringColumn("c", values), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Telemetry.Reset()

	got, err := CountEqualString(data, "no-such-city", opt)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("dict miss counted %d matches", got)
	}
	if snap := opt.Telemetry.Snapshot(); snap.DecodeBlocks != 0 {
		t.Fatalf("dict-miss probe decoded %d blocks; want 0", snap.DecodeBlocks)
	}

	// The same scan for a present value must still be exact — and still
	// decode-free on the fast path (the column has no NULLs).
	want := 0
	for _, x := range values {
		if x == "ATHENS" {
			want++
		}
	}
	got, err = CountEqualString(data, "ATHENS", opt)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("dict hit: got %d, want %d", got, want)
	}
	if snap := opt.Telemetry.Snapshot(); snap.DecodeBlocks != 0 {
		t.Fatalf("NULL-free scan decoded %d blocks; want 0", snap.DecodeBlocks)
	}
}

func TestCountEqualNullsExcludedEverySchemePath(t *testing.T) {
	// Every scheme's slow path must exclude NULL rows. Each sub-test pins
	// the scheme pool and plants NULL slots whose garbage value equals the
	// probe, so any path that forgets the mask overcounts.
	const n = 12000
	nulls := NewNullMask()
	for i := 0; i < n; i += 3 {
		nulls.SetNull(i)
	}
	rng := rand.New(rand.NewSource(12))

	t.Run("int", func(t *testing.T) {
		for _, tc := range []struct {
			scheme string
			pool   []Scheme
			mk     func(i int) int32
		}{
			{"uncompressed", []Scheme{}, func(i int) int32 { return rng.Int31() }},
			{"onevalue", []Scheme{SchemeOneValue}, func(i int) int32 { return 7 }},
			{"rle", []Scheme{SchemeRLE}, func(i int) int32 { return int32(i / 500) }},
			{"dict", []Scheme{SchemeDict}, func(i int) int32 { return int32(rng.Intn(5)) * 1000 }},
			{"frequency", []Scheme{SchemeFrequency}, func(i int) int32 {
				if rng.Float64() < 0.95 {
					return 7
				}
				return rng.Int31()
			}},
			{"fastbp", []Scheme{SchemeFastBP}, func(i int) int32 { return int32(rng.Intn(1000)) }},
			{"fastpfor", []Scheme{SchemeFastPFOR}, func(i int) int32 {
				v := int32(rng.Intn(64))
				if i%97 == 0 {
					v = 1 << 28
				}
				return v
			}},
		} {
			values := make([]int32, n)
			for i := range values {
				values[i] = tc.mk(i)
			}
			probe := values[1] // a real value; NULL slots get the same one
			for i := 0; i < n; i += 3 {
				values[i] = probe // garbage in NULL slots, equal to probe
			}
			col := IntColumn("c", values)
			col.Nulls = nulls
			opt := &Options{IntSchemes: tc.pool}
			data, err := CompressColumn(col, opt)
			if err != nil {
				t.Fatalf("%s: %v", tc.scheme, err)
			}
			got, err := CountEqualInt32(data, probe, opt)
			if err != nil {
				t.Fatalf("%s: %v", tc.scheme, err)
			}
			if want := countRefInt(col, probe); got != want {
				t.Errorf("%s: got %d, want %d (NULL rows leaked into the count)", tc.scheme, got, want)
			}
		}
	})

	t.Run("double", func(t *testing.T) {
		for _, tc := range []struct {
			scheme string
			pool   []Scheme
			mk     func(i int) float64
		}{
			{"uncompressed", []Scheme{}, func(i int) float64 { return rng.NormFloat64() }},
			{"onevalue", []Scheme{SchemeOneValue}, func(i int) float64 { return 2.5 }},
			{"rle", []Scheme{SchemeRLE}, func(i int) float64 { return float64(i / 500) }},
			{"dict", []Scheme{SchemeDict}, func(i int) float64 { return float64(rng.Intn(4)) + 0.5 }},
			{"frequency", []Scheme{SchemeFrequency}, func(i int) float64 {
				if rng.Float64() < 0.95 {
					return 99.99
				}
				return rng.NormFloat64()
			}},
			{"pde", []Scheme{SchemePDE}, func(i int) float64 { return float64(rng.Intn(50000)) / 100 }},
		} {
			values := make([]float64, n)
			for i := range values {
				values[i] = tc.mk(i)
			}
			probe := values[1]
			for i := 0; i < n; i += 3 {
				values[i] = probe
			}
			col := DoubleColumn("c", values)
			col.Nulls = nulls
			opt := &Options{DoubleSchemes: tc.pool}
			data, err := CompressColumn(col, opt)
			if err != nil {
				t.Fatalf("%s: %v", tc.scheme, err)
			}
			got, err := CountEqualDouble(data, probe, opt)
			if err != nil {
				t.Fatalf("%s: %v", tc.scheme, err)
			}
			want := 0
			pb := math.Float64bits(probe)
			for i, x := range values {
				if math.Float64bits(x) == pb && !nulls.IsNull(i) {
					want++
				}
			}
			if got != want {
				t.Errorf("%s: got %d, want %d (NULL rows leaked into the count)", tc.scheme, got, want)
			}
		}
	})

	t.Run("string", func(t *testing.T) {
		for _, tc := range []struct {
			scheme string
			pool   []Scheme
			mk     func(i int) string
		}{
			{"uncompressed", []Scheme{}, func(i int) string { return fmt.Sprintf("row-%d", rng.Intn(1<<20)) }},
			{"onevalue", []Scheme{SchemeOneValue}, func(i int) string { return "CABLE" }},
			{"dict", []Scheme{SchemeDict}, func(i int) string {
				return []string{"PHOENIX", "RALEIGH", "ATHENS"}[rng.Intn(3)]
			}},
			{"fsst", []Scheme{SchemeFSST}, func(i int) string {
				return fmt.Sprintf("https://example.com/products/item-%d", rng.Intn(1000))
			}},
		} {
			values := make([]string, n)
			for i := range values {
				values[i] = tc.mk(i)
			}
			probe := values[1]
			for i := 0; i < n; i += 3 {
				values[i] = probe
			}
			col := StringColumn("c", values)
			col.Nulls = nulls
			opt := &Options{StringSchemes: tc.pool}
			data, err := CompressColumn(col, opt)
			if err != nil {
				t.Fatalf("%s: %v", tc.scheme, err)
			}
			got, err := CountEqualString(data, probe, opt)
			if err != nil {
				t.Fatalf("%s: %v", tc.scheme, err)
			}
			want := 0
			for i, x := range values {
				if x == probe && !nulls.IsNull(i) {
					want++
				}
			}
			if got != want {
				t.Errorf("%s: got %d, want %d (NULL rows leaked into the count)", tc.scheme, got, want)
			}
		}
	})
}
