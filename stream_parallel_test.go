package btrblocks

// Tests for the stream Reader's decode-ahead pipeline: serial≡parallel
// chunk equivalence, Close-as-cancellation (including a producer blocked
// on backpressure), sticky terminal errors, and goroutine hygiene. All
// run under -race in CI.

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"sync"
	"testing"
)

// buildStream writes chunks chunks of ~rows rows and returns the encoded
// stream bytes.
func buildStream(t *testing.T, chunks, rows int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, streamSchema(), &Options{BlockSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < chunks; i++ {
		if err := w.WriteChunk(streamChunk(rows+i*37, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drain reads a stream to io.EOF and returns its chunks.
func drain(t *testing.T, data []byte, opt *Options) ([]*Chunk, *Reader) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data), opt)
	if err != nil {
		t.Fatal(err)
	}
	var out []*Chunk
	for {
		chunk, err := r.Next()
		if err == io.EOF {
			return out, r
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, chunk)
	}
}

// TestStreamDecodeAheadEquivalence: the pipelined reader yields the same
// chunks, in the same order, with the same footer totals, as the serial
// reader.
func TestStreamDecodeAheadEquivalence(t *testing.T) {
	data := buildStream(t, 5, 2500)
	serialChunks, serialR := drain(t, data, &Options{BlockSize: 1000, Parallelism: 1})
	aheadChunks, aheadR := drain(t, data, &Options{BlockSize: 1000, Parallelism: 8})
	defer aheadR.Close()

	if len(serialChunks) != len(aheadChunks) {
		t.Fatalf("chunk count %d != %d", len(aheadChunks), len(serialChunks))
	}
	for i := range serialChunks {
		for ci := range serialChunks[i].Columns {
			requireIdentical(t, serialChunks[i].Columns[ci].Name,
				serialChunks[i].Columns[ci], aheadChunks[i].Columns[ci])
		}
	}
	if serialR.Rows() != aheadR.Rows() || serialR.Chunks() != aheadR.Chunks() {
		t.Fatalf("footer (%d rows, %d chunks) != (%d rows, %d chunks)",
			aheadR.Rows(), aheadR.Chunks(), serialR.Rows(), serialR.Chunks())
	}
	// EOF is sticky on both.
	if _, err := aheadR.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
}

// TestStreamReaderCloseMidStream: Close is the consumer's cancellation —
// reads after it fail with ErrReaderClosed even when decoded chunks are
// still buffered, and Close is idempotent.
func TestStreamReaderCloseMidStream(t *testing.T) {
	data := buildStream(t, 6, 2000)
	base := runtime.NumGoroutine()
	r, err := NewReader(bytes.NewReader(data), &Options{BlockSize: 1000, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Next(); !errors.Is(err, ErrReaderClosed) {
			t.Fatalf("Next after Close = %v, want ErrReaderClosed", err)
		}
	}
	if err := r.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	waitForGoroutines(t, base)
}

// TestStreamReaderAbandonedUnblocksProducer: a consumer that never reads
// leaves the producer blocked on the bounded channel; Close must unblock
// it and reap the goroutine.
func TestStreamReaderAbandonedUnblocksProducer(t *testing.T) {
	data := buildStream(t, aheadDepth+4, 2000)
	base := runtime.NumGoroutine()
	r, err := NewReader(bytes.NewReader(data), &Options{BlockSize: 1000, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, base)
}

// TestStreamReaderFullConsumptionNoLeak: draining to io.EOF ends the
// producer on its own; Close is unnecessary (but still safe).
func TestStreamReaderFullConsumptionNoLeak(t *testing.T) {
	data := buildStream(t, 4, 2000)
	base := runtime.NumGoroutine()
	_, r := drain(t, data, &Options{BlockSize: 1000, Parallelism: 8})
	waitForGoroutines(t, base)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamDecodeAheadErrorSticky: a mid-stream error surfaces through
// the pipeline with the same message the serial reader reports, and
// repeats on every subsequent Next.
func TestStreamDecodeAheadErrorSticky(t *testing.T) {
	data := buildStream(t, 3, 2000)
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x20

	readErr := func(parallelism int) string {
		r, err := NewReader(bytes.NewReader(corrupt), &Options{BlockSize: 1000, Parallelism: parallelism})
		if err != nil {
			// Header corruption fails construction identically either way.
			return "ctor: " + err.Error()
		}
		defer r.Close()
		for {
			_, err := r.Next()
			if err == nil {
				continue
			}
			if err == io.EOF {
				t.Fatal("corrupt stream read to clean EOF")
			}
			// Sticky: the same terminal error again.
			if _, err2 := r.Next(); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("terminal error not sticky: %v then %v", err, err2)
			}
			return err.Error()
		}
	}
	serial := readErr(1)
	for _, p := range []int{2, 8} {
		if got := readErr(p); got != serial {
			t.Fatalf("P=%d error %q, want serial's %q", p, got, serial)
		}
	}
}

// TestStreamReaderConcurrentCloseRace drives Next and Close from
// different goroutines; the race detector owns the assertion, the test
// only requires a sane terminal outcome.
func TestStreamReaderConcurrentCloseRace(t *testing.T) {
	data := buildStream(t, 6, 2000)
	base := runtime.NumGoroutine()
	for trial := 0; trial < 10; trial++ {
		r, err := NewReader(bytes.NewReader(data), &Options{BlockSize: 1000, Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Close()
		}()
		for {
			_, err := r.Next()
			if err == io.EOF || errors.Is(err, ErrReaderClosed) {
				break
			}
			if err != nil {
				t.Errorf("trial %d: unexpected error %v", trial, err)
				break
			}
		}
		wg.Wait()
	}
	waitForGoroutines(t, base)
}
