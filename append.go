package btrblocks

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrAppendVersion is returned by NewAppendWriter for streams that carry
// no trailing checksum (format v1): appending would have to rewrite a
// footer whose integrity cannot be verified first, so v1 streams must be
// rewritten, not appended to.
var ErrAppendVersion = errors.New("btrblocks: append requires a checksummed (v2) stream")

// NewAppendWriter opens an existing v2 stream for appending: the stream
// is re-read in full, its framing walked and its trailing CRC32C
// verified, and the returned Writer is positioned over the old footer
// with the running checksum, chunk count and row count restored — so
// WriteChunk continues the stream exactly as if the original Writer had
// never closed it. Close writes a fresh footer and checksum.
//
// The rewrite is safe against crashes mid-append in the same way the
// original write is not: until the new footer lands, the stream has no
// valid terminator and readers report it corrupt. Callers who need
// atomicity should append to a copy and rename, or use the ingest WAL.
//
// Appending to a v1 stream returns ErrAppendVersion; a damaged stream
// (bad framing, checksum mismatch, trailing garbage) returns an error
// wrapping ErrCorrupt.
func NewAppendWriter(rw io.ReadWriteSeeker, opt *Options) (*Writer, error) {
	if _, err := rw.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	data, err := io.ReadAll(rw)
	if err != nil {
		return nil, err
	}
	if len(data) < len(streamMagic)+1 || string(data[:4]) != streamMagic {
		return nil, fmt.Errorf("%w: not a stream", ErrCorrupt)
	}
	ver := data[4]
	if !supportedVersion(ver) {
		return nil, fmt.Errorf("btrblocks: unsupported stream version %d", ver)
	}
	if !checksummedVersion(ver) {
		return nil, fmt.Errorf("%w: stream is format v%d", ErrAppendVersion, ver)
	}

	// Parse the schema header.
	r := data[5:]
	off := 5
	if len(r) < 2 {
		return nil, fmt.Errorf("%w: stream schema", ErrTruncatedFile)
	}
	ncols := int(binary.LittleEndian.Uint16(r))
	off += 2
	schema := make([]Column, ncols)
	for i := range schema {
		if off+3 > len(data) {
			return nil, fmt.Errorf("%w: stream schema", ErrTruncatedFile)
		}
		schema[i].Type = Type(data[off])
		if schema[i].Type > maxType {
			return nil, fmt.Errorf("%w: stream schema type %d", ErrCorrupt, data[off])
		}
		nameLen := int(binary.LittleEndian.Uint16(data[off+1 : off+3]))
		off += 3
		if off+nameLen > len(data) {
			return nil, fmt.Errorf("%w: stream schema", ErrTruncatedFile)
		}
		schema[i].Name = string(data[off : off+nameLen])
		off += nameLen
	}

	// Walk the chunk frames to the footer.
	seenChunks := 0
	for {
		if off >= len(data) {
			return nil, fmt.Errorf("%w: stream has no footer", ErrTruncatedFile)
		}
		tag := data[off]
		if tag == 'E' {
			break
		}
		if tag != 'C' {
			return nil, fmt.Errorf("%w: stream frame tag %q", ErrCorrupt, tag)
		}
		if off+5 > len(data) {
			return nil, fmt.Errorf("%w: chunk frame", ErrTruncatedFile)
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
		if payloadLen < 0 || off+5+payloadLen > len(data) {
			return nil, fmt.Errorf("%w: chunk payload", ErrTruncatedFile)
		}
		off += 5 + payloadLen
		seenChunks++
	}

	// Footer: 'E' chunkCount:u32 rowCount:u64, then the stream CRC.
	const footerLen = 1 + 4 + 8
	if off+footerLen+crcBytes > len(data) {
		return nil, fmt.Errorf("%w: stream footer", ErrTruncatedFile)
	}
	if off+footerLen+crcBytes != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after stream checksum",
			ErrCorrupt, len(data)-off-footerLen-crcBytes)
	}
	chunks := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
	rows := binary.LittleEndian.Uint64(data[off+5 : off+13])
	if chunks != seenChunks {
		return nil, fmt.Errorf("%w: footer counts %d chunks, stream has %d",
			ErrCorrupt, chunks, seenChunks)
	}
	if err := verifyTrailingCRC(data, "stream"); err != nil {
		return nil, err
	}

	// The writer resumes over the old footer: its running CRC covers
	// everything before the 'E' tag, and the first WriteChunk (or Close)
	// overwrites the footer in place. The replacement is always at least
	// as long as the 17 bytes it overwrites, so no stale tail survives a
	// completed Close.
	if _, err := rw.Seek(int64(off), io.SeekStart); err != nil {
		return nil, err
	}
	wopt := opt
	if v, err := opt.formatVersionOf(); err != nil {
		return nil, err
	} else if v != ver {
		// The appended chunks must carry the stream's version; clone the
		// options rather than mutating the caller's.
		o := Options{}
		if opt != nil {
			o = *opt
		}
		o.FormatVersion = int(ver)
		wopt = &o
	}
	return &Writer{
		w:      bufio.NewWriter(rw),
		opt:    wopt,
		schema: schema,
		ver:    ver,
		sum:    crc32c(data[:off]),
		chunks: chunks,
		rows:   rows,
	}, nil
}
