package btrblocks

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Sentinel errors of the stream writer, in the style of ErrCorrupt:
// returned wrapped with context, so test with errors.Is.
var (
	// ErrSchemaMismatch is returned by Writer.WriteChunk when the chunk's
	// columns do not match the stream schema in count, name or type.
	ErrSchemaMismatch = errors.New("btrblocks: chunk does not match stream schema")
	// ErrWriterClosed is returned by Writer.WriteChunk after Close.
	ErrWriterClosed = errors.New("btrblocks: write after Close")
	// ErrReaderClosed is returned by Reader.Next after Close.
	ErrReaderClosed = errors.New("btrblocks: read after Close")
)

// This file implements a streaming table format on top of the chunk
// format: a Writer consumes chunks (e.g. one per 64k-row ingest batch)
// and emits a framed sequence the Reader consumes chunk by chunk, so
// tables larger than memory round-trip through ordinary io.Writer /
// io.Reader plumbing.
//
//	stream  := magic "BTRS" version:u8 schema chunk* footer [streamCRC:u32]
//	schema  := colCount:u16 (type:u8 nameLen:u16 name)*
//	chunk   := 'C' chunkLen:u32 <CompressedChunk file bytes>
//	footer  := 'E' chunkCount:u32 rowCount:u64
//
// In format v2 the stream ends with a CRC32C over every preceding byte
// (magic through footer inclusive); v1 streams have no trailing checksum.

const streamMagic = "BTRS"

// Writer writes a stream of compressed chunks with a fixed schema.
type Writer struct {
	w        *bufio.Writer
	opt      *Options
	schema   []Column // names/types only
	ver      byte
	sum      uint32 // running CRC32C over all bytes written (v2 only)
	chunks   int
	rows     uint64
	finished bool
}

// writeBytes writes b and, for checksummed streams, folds it into the
// running stream CRC. All stream bytes must go through here (or
// writeByte) so the footer checksum covers everything.
func (w *Writer) writeBytes(b []byte) error {
	if checksummedVersion(w.ver) {
		w.sum = crc32.Update(w.sum, castagnoli, b)
	}
	_, err := w.w.Write(b)
	return err
}

func (w *Writer) writeByte(b byte) error {
	return w.writeBytes([]byte{b})
}

// NewWriter starts a stream with the schema taken from the given columns
// (their data is ignored; only Name and Type matter).
func NewWriter(w io.Writer, schema []Column, opt *Options) (*Writer, error) {
	ver, err := opt.formatVersionOf()
	if err != nil {
		return nil, err
	}
	sw := &Writer{w: bufio.NewWriter(w), opt: opt, schema: schema, ver: ver}
	var hdr []byte
	hdr = append(hdr, streamMagic...)
	hdr = append(hdr, ver)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(schema)))
	for _, col := range schema {
		hdr = append(hdr, byte(col.Type))
		hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(col.Name)))
		hdr = append(hdr, col.Name...)
	}
	if err := sw.writeBytes(hdr); err != nil {
		return nil, err
	}
	return sw, nil
}

// WriteChunk compresses and appends one chunk. The chunk's columns must
// match the writer's schema in order, name and type.
func (w *Writer) WriteChunk(chunk *Chunk) error {
	if w.finished {
		return ErrWriterClosed
	}
	if len(chunk.Columns) != len(w.schema) {
		return fmt.Errorf("%w: chunk has %d columns, schema has %d",
			ErrSchemaMismatch, len(chunk.Columns), len(w.schema))
	}
	for i := range chunk.Columns {
		if chunk.Columns[i].Name != w.schema[i].Name || chunk.Columns[i].Type != w.schema[i].Type {
			return fmt.Errorf("%w: column %d (%s %s) does not match schema (%s %s)",
				ErrSchemaMismatch, i, chunk.Columns[i].Name, chunk.Columns[i].Type,
				w.schema[i].Name, w.schema[i].Type)
		}
	}
	cc, err := CompressChunk(chunk, w.opt)
	if err != nil {
		return err
	}
	payload := cc.EncodeFile()
	if err := w.writeByte('C'); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if err := w.writeBytes(lenBuf[:]); err != nil {
		return err
	}
	if err := w.writeBytes(payload); err != nil {
		return err
	}
	w.chunks++
	w.rows += uint64(chunk.NumRows())
	return nil
}

// Close writes the footer and flushes. It does not close the underlying
// writer. Close is idempotent: calls after the first return nil without
// writing a second footer.
func (w *Writer) Close() error {
	if w.finished {
		return nil
	}
	w.finished = true
	if err := w.writeByte('E'); err != nil {
		return err
	}
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(w.chunks))
	binary.LittleEndian.PutUint64(buf[4:], w.rows)
	if err := w.writeBytes(buf[:]); err != nil {
		return err
	}
	if checksummedVersion(w.ver) {
		var crcBuf [crcBytes]byte
		binary.LittleEndian.PutUint32(crcBuf[:], w.sum)
		if _, err := w.w.Write(crcBuf[:]); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Reader reads a stream written by Writer. When Options.Parallelism
// allows more than one worker, the Reader runs a decode-ahead pipeline:
// a background goroutine reads and decompresses the next chunks while
// the caller consumes the current one, with backpressure from a bounded
// buffer. Call Close to release the pipeline when abandoning a stream
// before io.EOF; a fully consumed stream needs no Close.
type Reader struct {
	r      *bufio.Reader
	opt    *Options
	schema []Column
	ver    byte
	sum    uint32 // running CRC32C over all bytes consumed (v2 only)
	chunks int
	rows   uint64
	done   bool

	// Decode-ahead pipeline state. ahead is nil for serial readers.
	// chunks/rows/done above are producer-owned while the pipeline runs;
	// the consumer observes them only after the terminal channel send.
	ahead    chan aheadResult
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	termErr  error // consumer-owned: sticky terminal error after pipeline end
}

// aheadResult is one decode-ahead pipeline item: a decoded chunk or the
// terminal error (io.EOF after a clean footer).
type aheadResult struct {
	chunk *Chunk
	err   error
}

// aheadDepth is how many decoded chunks the pipeline may buffer ahead
// of the consumer (one more may be in flight inside the goroutine).
const aheadDepth = 2

// readFull fills buf from the stream and folds the consumed bytes into
// the running CRC. Hashing happens here — at the parse layer, not on the
// underlying reader — so bufio's readahead does not poison the sum.
func (r *Reader) readFull(buf []byte) error {
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return err
	}
	if checksummedVersion(r.ver) {
		r.sum = crc32.Update(r.sum, castagnoli, buf)
	}
	return nil
}

// NewReader parses the stream header and returns a Reader positioned at
// the first chunk.
func NewReader(r io.Reader, opt *Options) (*Reader, error) {
	sr := &Reader{r: bufio.NewReader(r), opt: opt}
	var magic [5]byte
	if _, err := io.ReadFull(sr.r, magic[:]); err != nil {
		return nil, ErrCorrupt
	}
	if string(magic[:4]) != streamMagic {
		return nil, ErrCorrupt
	}
	if !supportedVersion(magic[4]) {
		return nil, fmt.Errorf("btrblocks: unsupported stream version %d", magic[4])
	}
	sr.ver = magic[4]
	if checksummedVersion(sr.ver) {
		sr.sum = crc32.Update(0, castagnoli, magic[:])
	}
	var cnt [2]byte
	if err := sr.readFull(cnt[:]); err != nil {
		return nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint16(cnt[:]))
	schema := make([]Column, n)
	for i := range schema {
		var hdr [3]byte
		if err := sr.readFull(hdr[:]); err != nil {
			return nil, ErrCorrupt
		}
		schema[i].Type = Type(hdr[0])
		if schema[i].Type > maxType {
			return nil, ErrCorrupt
		}
		nameLen := int(binary.LittleEndian.Uint16(hdr[1:]))
		name := make([]byte, nameLen)
		if err := sr.readFull(name); err != nil {
			return nil, ErrCorrupt
		}
		schema[i].Name = string(name)
	}
	sr.schema = schema
	sr.stop = make(chan struct{})
	if parallelism(opt) > 1 {
		// Decode-ahead pipeline: one goroutine reads and decompresses
		// chunks sequentially (stream framing is inherently serial — the
		// running CRC orders the reads) while DecompressChunk inside it
		// fans out across blocks. The bounded channel is the backpressure:
		// at most aheadDepth decoded chunks wait for the consumer.
		sr.ahead = make(chan aheadResult, aheadDepth)
		opt.telemetryRecorder().RecordWorkers(pathStreamAhead, aheadDepth)
		sr.wg.Add(1)
		go func() {
			defer sr.wg.Done()
			defer close(sr.ahead)
			for {
				chunk, err := sr.readChunk()
				select {
				case sr.ahead <- aheadResult{chunk, err}:
				case <-sr.stop:
					return
				}
				if err != nil {
					return
				}
			}
		}()
	}
	return sr, nil
}

// Schema returns the stream's column names and types.
func (r *Reader) Schema() []Column { return r.schema }

// Next decompresses and returns the next chunk, or io.EOF after the
// footer has been consumed (Rows/Chunks are then valid). Any non-EOF
// error is terminal: subsequent calls return it again.
func (r *Reader) Next() (*Chunk, error) {
	if r.ahead == nil {
		if r.termErr != nil {
			return nil, r.termErr
		}
		chunk, err := r.readChunk()
		if err != nil && err != io.EOF {
			// Latch the error: resuming the walk after a failed frame would
			// misparse whatever follows.
			r.termErr = err
		}
		return chunk, err
	}
	if r.termErr != nil {
		return nil, r.termErr
	}
	// Check stop first: after Close, a select between the closed stop
	// channel and a buffered pipeline result would pick randomly — reads
	// after Close must deterministically fail, not drain leftovers.
	select {
	case <-r.stop:
		return nil, ErrReaderClosed
	default:
	}
	select {
	case res, ok := <-r.ahead:
		if !ok {
			r.termErr = io.EOF
			return nil, io.EOF
		}
		if res.err != nil {
			r.termErr = res.err
			return nil, res.err
		}
		return res.chunk, nil
	case <-r.stop:
		return nil, ErrReaderClosed
	}
}

// readChunk reads and decompresses the next chunk frame from the
// underlying stream — the serial core both the direct path and the
// decode-ahead goroutine run.
func (r *Reader) readChunk() (*Chunk, error) {
	if r.done {
		return nil, io.EOF
	}
	var tagBuf [1]byte
	if err := r.readFull(tagBuf[:]); err != nil {
		return nil, ErrCorrupt
	}
	switch tagBuf[0] {
	case 'C':
		var lenBuf [4]byte
		if err := r.readFull(lenBuf[:]); err != nil {
			return nil, ErrCorrupt
		}
		payloadLen := int64(binary.LittleEndian.Uint32(lenBuf[:]))
		if payloadLen > 1<<31 {
			return nil, ErrCorrupt
		}
		// Grow the payload buffer only as bytes actually arrive: a corrupt
		// length field must not trigger a giant up-front allocation.
		var payloadBuf bytes.Buffer
		if payloadLen < 1<<20 {
			payloadBuf.Grow(int(payloadLen))
		}
		if n, err := io.CopyN(&payloadBuf, r.r, payloadLen); err != nil || n != payloadLen {
			return nil, fmt.Errorf("%w: chunk payload", ErrTruncatedFile)
		}
		payload := payloadBuf.Bytes()
		if checksummedVersion(r.ver) {
			r.sum = crc32.Update(r.sum, castagnoli, payload)
		}
		cc, err := DecodeFile(payload)
		if err != nil {
			return nil, err
		}
		chunk, err := DecompressChunk(cc, r.opt)
		if err != nil {
			return nil, err
		}
		if len(chunk.Columns) != len(r.schema) {
			return nil, ErrCorrupt
		}
		return chunk, nil
	case 'E':
		var buf [12]byte
		if err := r.readFull(buf[:]); err != nil {
			return nil, ErrCorrupt
		}
		r.chunks = int(binary.LittleEndian.Uint32(buf[:4]))
		r.rows = binary.LittleEndian.Uint64(buf[4:])
		if checksummedVersion(r.ver) {
			var crcBuf [crcBytes]byte
			if _, err := io.ReadFull(r.r, crcBuf[:]); err != nil {
				return nil, fmt.Errorf("%w: stream checksum", ErrTruncatedFile)
			}
			stored := binary.LittleEndian.Uint32(crcBuf[:])
			if stored != r.sum {
				r.opt.telemetryRecorder().RecordCorruption(1)
				return nil, fmt.Errorf("%w: stream checksum %08x, stored %08x",
					ErrChecksumMismatch, r.sum, stored)
			}
		}
		r.done = true
		return nil, io.EOF
	}
	return nil, ErrCorrupt
}

// Close stops the decode-ahead pipeline and waits for its goroutine to
// exit. It is idempotent, safe to call on serial readers (a no-op), and
// unnecessary when the stream was consumed through io.EOF — but always
// safe. It does not close the underlying reader.
func (r *Reader) Close() error {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	return nil
}

// Rows returns the footer's total row count; valid after Next returned
// io.EOF.
func (r *Reader) Rows() uint64 { return r.rows }

// Chunks returns the footer's chunk count; valid after Next returned
// io.EOF.
func (r *Reader) Chunks() int { return r.chunks }
