package btrblocks

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Sentinel errors of the stream writer, in the style of ErrCorrupt:
// returned wrapped with context, so test with errors.Is.
var (
	// ErrSchemaMismatch is returned by Writer.WriteChunk when the chunk's
	// columns do not match the stream schema in count, name or type.
	ErrSchemaMismatch = errors.New("btrblocks: chunk does not match stream schema")
	// ErrWriterClosed is returned by Writer.WriteChunk after Close.
	ErrWriterClosed = errors.New("btrblocks: write after Close")
)

// This file implements a streaming table format on top of the chunk
// format: a Writer consumes chunks (e.g. one per 64k-row ingest batch)
// and emits a framed sequence the Reader consumes chunk by chunk, so
// tables larger than memory round-trip through ordinary io.Writer /
// io.Reader plumbing.
//
//	stream  := magic "BTRS" version:u8 schema chunk* footer
//	schema  := colCount:u16 (type:u8 nameLen:u16 name)*
//	chunk   := 'C' chunkLen:u32 <CompressedChunk file bytes>
//	footer  := 'E' chunkCount:u32 rowCount:u64

const streamMagic = "BTRS"

// Writer writes a stream of compressed chunks with a fixed schema.
type Writer struct {
	w        *bufio.Writer
	opt      *Options
	schema   []Column // names/types only
	chunks   int
	rows     uint64
	finished bool
}

// NewWriter starts a stream with the schema taken from the given columns
// (their data is ignored; only Name and Type matter).
func NewWriter(w io.Writer, schema []Column, opt *Options) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(streamMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(formatVersion); err != nil {
		return nil, err
	}
	var hdr []byte
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(schema)))
	for _, col := range schema {
		hdr = append(hdr, byte(col.Type))
		hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(col.Name)))
		hdr = append(hdr, col.Name...)
	}
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	return &Writer{w: bw, opt: opt, schema: schema}, nil
}

// WriteChunk compresses and appends one chunk. The chunk's columns must
// match the writer's schema in order, name and type.
func (w *Writer) WriteChunk(chunk *Chunk) error {
	if w.finished {
		return ErrWriterClosed
	}
	if len(chunk.Columns) != len(w.schema) {
		return fmt.Errorf("%w: chunk has %d columns, schema has %d",
			ErrSchemaMismatch, len(chunk.Columns), len(w.schema))
	}
	for i := range chunk.Columns {
		if chunk.Columns[i].Name != w.schema[i].Name || chunk.Columns[i].Type != w.schema[i].Type {
			return fmt.Errorf("%w: column %d (%s %s) does not match schema (%s %s)",
				ErrSchemaMismatch, i, chunk.Columns[i].Name, chunk.Columns[i].Type,
				w.schema[i].Name, w.schema[i].Type)
		}
	}
	cc, err := CompressChunk(chunk, w.opt)
	if err != nil {
		return err
	}
	payload := cc.EncodeFile()
	if err := w.w.WriteByte('C'); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := w.w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	w.chunks++
	w.rows += uint64(chunk.NumRows())
	return nil
}

// Close writes the footer and flushes. It does not close the underlying
// writer. Close is idempotent: calls after the first return nil without
// writing a second footer.
func (w *Writer) Close() error {
	if w.finished {
		return nil
	}
	w.finished = true
	if err := w.w.WriteByte('E'); err != nil {
		return err
	}
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(w.chunks))
	binary.LittleEndian.PutUint64(buf[4:], w.rows)
	if _, err := w.w.Write(buf[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader reads a stream written by Writer.
type Reader struct {
	r      *bufio.Reader
	opt    *Options
	schema []Column
	chunks int
	rows   uint64
	done   bool
}

// NewReader parses the stream header and returns a Reader positioned at
// the first chunk.
func NewReader(r io.Reader, opt *Options) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, ErrCorrupt
	}
	if string(magic[:4]) != streamMagic || magic[4] != formatVersion {
		return nil, ErrCorrupt
	}
	var cnt [2]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint16(cnt[:]))
	schema := make([]Column, n)
	for i := range schema {
		var hdr [3]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, ErrCorrupt
		}
		schema[i].Type = Type(hdr[0])
		if schema[i].Type > maxType {
			return nil, ErrCorrupt
		}
		nameLen := int(binary.LittleEndian.Uint16(hdr[1:]))
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, ErrCorrupt
		}
		schema[i].Name = string(name)
	}
	return &Reader{r: br, opt: opt, schema: schema}, nil
}

// Schema returns the stream's column names and types.
func (r *Reader) Schema() []Column { return r.schema }

// Next decompresses and returns the next chunk, or io.EOF after the
// footer has been consumed (Rows/Chunks are then valid).
func (r *Reader) Next() (*Chunk, error) {
	if r.done {
		return nil, io.EOF
	}
	tag, err := r.r.ReadByte()
	if err != nil {
		return nil, ErrCorrupt
	}
	switch tag {
	case 'C':
		var lenBuf [4]byte
		if _, err := io.ReadFull(r.r, lenBuf[:]); err != nil {
			return nil, ErrCorrupt
		}
		payloadLen := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if payloadLen < 0 || payloadLen > 1<<31 {
			return nil, ErrCorrupt
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(r.r, payload); err != nil {
			return nil, ErrCorrupt
		}
		cc, err := DecodeFile(payload)
		if err != nil {
			return nil, err
		}
		chunk, err := DecompressChunk(cc, r.opt)
		if err != nil {
			return nil, err
		}
		if len(chunk.Columns) != len(r.schema) {
			return nil, ErrCorrupt
		}
		return chunk, nil
	case 'E':
		var buf [12]byte
		if _, err := io.ReadFull(r.r, buf[:]); err != nil {
			return nil, ErrCorrupt
		}
		r.chunks = int(binary.LittleEndian.Uint32(buf[:4]))
		r.rows = binary.LittleEndian.Uint64(buf[4:])
		r.done = true
		return nil, io.EOF
	default:
		return nil, ErrCorrupt
	}
}

// Rows returns the footer's total row count; valid after Next returned
// io.EOF.
func (r *Reader) Rows() uint64 { return r.rows }

// Chunks returns the footer's chunk count; valid after Next returned
// io.EOF.
func (r *Reader) Chunks() int { return r.chunks }
