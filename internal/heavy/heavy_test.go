package heavy

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte("x"),
		[]byte(strings.Repeat("heavyweight compression ", 5000)),
	}
	rng := rand.New(rand.NewSource(61))
	random := make([]byte, 50000)
	rng.Read(random)
	inputs = append(inputs, random)
	for _, src := range inputs {
		enc := Encode(nil, src)
		dec, err := Decode(nil, enc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestBeatsSnappyClassRatioOnText(t *testing.T) {
	src := []byte(strings.Repeat("the compression ratio of entropy coded formats is better ", 2000))
	enc := Encode(nil, src)
	if len(enc) > len(src)/10 {
		t.Fatalf("expected strong compression on repetitive text: %d -> %d", len(src), len(enc))
	}
}

func TestCorrupt(t *testing.T) {
	if _, err := Decode(nil, []byte{0xff, 0x00, 0x01}); err == nil {
		t.Fatal("garbage not detected")
	}
}

func TestQuick(t *testing.T) {
	f := func(src []byte) bool {
		dec, err := Decode(nil, Encode(nil, src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
