// Package heavy provides the heavyweight general-purpose codec slot that
// the paper fills with Zstd. The Go standard library has no Zstd, so this
// wraps compress/flate (DEFLATE at maximum compression): like Zstd it is an
// entropy-coded LZ with a clearly better ratio and clearly slower
// decompression than the byte-oriented Snappy/LZ4 — the two properties the
// paper's comparisons depend on. See DESIGN.md §4 for the substitution note.
package heavy

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
	"sync"
)

// ErrCorrupt is returned for malformed compressed data.
var ErrCorrupt = errors.New("heavy: corrupt input")

var writerPool = sync.Pool{
	New: func() any {
		w, err := flate.NewWriter(io.Discard, flate.BestCompression)
		if err != nil {
			panic(err)
		}
		return w
	},
}

// Encode compresses src and appends the result to dst.
func Encode(dst, src []byte) []byte {
	var buf bytes.Buffer
	w := writerPool.Get().(*flate.Writer)
	w.Reset(&buf)
	if _, err := w.Write(src); err != nil {
		panic(err) // bytes.Buffer writes cannot fail
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	writerPool.Put(w)
	return append(dst, buf.Bytes()...)
}

// Decode decompresses src entirely and appends to dst.
func Decode(dst, src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return dst, ErrCorrupt
	}
	return append(dst, out...), nil
}
