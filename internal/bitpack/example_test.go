package bitpack_test

import (
	"fmt"

	"btrblocks/internal/bitpack"
)

// Pack stores only the low `width` bits of each value; Unpack dispatches
// to a width-specialized kernel for full 128-value blocks and falls back
// to the generic loop for the tail.
func ExampleUnpack() {
	src := []uint32{1, 5, 2, 7, 0, 3}
	width := bitpack.MaxWidth(src) // bits needed for the largest value

	packed := bitpack.Pack(nil, src, width)
	dst := make([]uint32, len(src))
	if _, err := bitpack.Unpack(dst, packed, len(src), width); err != nil {
		panic(err)
	}
	fmt.Println("width:", width)
	fmt.Println("decoded:", dst)
	// Output:
	// width: 3
	// decoded: [1 5 2 7 0 3]
}

// EncodeFOR rebases each 128-value block on its minimum (the frame of
// reference) so only the small deltas are bit-packed; DecodeFOR undoes
// both steps.
func ExampleDecodeFOR() {
	src := []int32{1000007, 1000003, 1000000, 1000009}

	enc := bitpack.EncodeFOR(nil, src)
	dec, used, err := bitpack.DecodeFOR(nil, enc)
	if err != nil {
		panic(err)
	}
	fmt.Println("decoded:", dec)
	fmt.Println("bytes consumed == len(enc):", used == len(enc))
	// Output:
	// decoded: [1000007 1000003 1000000 1000009]
	// bytes consumed == len(enc): true
}
