// Package bitpack implements frame-of-reference (FOR) encoding and
// fixed-width bit packing of 32-bit integers in 128-value blocks.
//
// The layout mirrors the structure of SIMD-FastBP128 from Lemire &
// Boytsov: values are grouped into blocks of 128, each block stores its
// own bit width, and within a block all values are packed at that width.
// Value i of a block occupies bits [i*w, (i+1)*w) of a little-endian
// stream of 64-bit words, so a full block at width w is exactly 2*w
// words — block payloads are always word-aligned and a value straddles
// at most one word boundary.
//
// Decoding dispatches on the width through a table of generated,
// fully unrolled kernels (kernels32_gen.go / kernels64_gen.go, one
// straight-line function per width covering a whole 128-value block);
// these replace the SIMD lane shuffles of the original with word-level
// constant-shift extraction. Partial tail blocks and the §6.8 scalar
// ablation use the retained accumulator loop ([UnpackGeneric]), which
// the kernels are tested bit-identical against for every width and
// tail length.
package bitpack

//go:generate go run ./gen

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

// BlockLen is the number of values per packed block.
const BlockLen = 128

var (
	// ErrCorrupt is returned when a packed stream is malformed.
	ErrCorrupt = errors.New("bitpack: corrupt stream")
)

// Width returns the number of bits needed to represent v.
func Width(v uint32) uint { return uint(bits.Len32(v)) }

// MaxWidth returns the number of bits needed for the largest value in src.
func MaxWidth(src []uint32) uint {
	var m uint32
	for _, v := range src {
		m |= v
	}
	return uint(bits.Len32(m))
}

// Pack appends the low `width` bits of every value in src to dst.
// Values are packed little-endian into 64-bit words: value i occupies bits
// [i*width, (i+1)*width) of the conceptual bit stream. width must be in
// [0, 32]. Returns the extended dst.
func Pack(dst []byte, src []uint32, width uint) []byte {
	if width == 0 {
		return dst
	}
	totalBits := uint64(len(src)) * uint64(width)
	nWords := (totalBits + 63) / 64
	start := len(dst)
	dst = append(dst, make([]byte, nWords*8)...)
	out := dst[start:]

	var acc uint64
	var nacc uint
	wi := 0
	for _, v := range src {
		acc |= uint64(v&mask32(width)) << nacc
		nacc += width
		if nacc >= 64 {
			binary.LittleEndian.PutUint64(out[wi*8:], acc)
			wi++
			nacc -= 64
			if nacc > 0 {
				acc = uint64(v&mask32(width)) >> (width - nacc)
			} else {
				acc = 0
			}
		}
	}
	if nacc > 0 {
		binary.LittleEndian.PutUint64(out[wi*8:], acc)
	}
	return dst
}

// Unpack reads n values of `width` bits from src into dst (which must have
// length >= n) and returns the number of bytes consumed. Full 128-value
// blocks decode through the width-specialized kernel table; short (tail)
// blocks fall back to the generic loop.
func Unpack(dst []uint32, src []byte, n int, width uint) (int, error) {
	if width == 0 {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return 0, nil
	}
	if n == BlockLen && width <= 32 && len(dst) >= BlockLen {
		nBytes := BlockLen / 8 * int(width) // 2*width words
		if len(src) < nBytes {
			return 0, ErrCorrupt
		}
		kernels32[width]((*[BlockLen]uint32)(dst), src)
		return nBytes, nil
	}
	return UnpackGeneric(dst, src, n, width)
}

// UnpackGeneric is the width-generic accumulator-loop decoder: the
// reference implementation the kernels must match bit for bit, the tail
// path for partial blocks, and the "scalar" side of the §6.8 ablation.
func UnpackGeneric(dst []uint32, src []byte, n int, width uint) (int, error) {
	if width == 0 {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return 0, nil
	}
	totalBits := uint64(n) * uint64(width)
	nWords := int((totalBits + 63) / 64)
	if len(src) < nWords*8 {
		return 0, ErrCorrupt
	}
	var acc uint64
	var nacc uint
	wi := 0
	m := mask64(width)
	for i := 0; i < n; i++ {
		if nacc >= width {
			dst[i] = uint32(acc & m)
			acc >>= width
			nacc -= width
			continue
		}
		// refill from the next word
		next := binary.LittleEndian.Uint64(src[wi*8:])
		wi++
		v := acc | next<<nacc
		dst[i] = uint32(v & m)
		consumedFromNext := width - nacc
		acc = 0
		if consumedFromNext < 64 {
			acc = next >> consumedFromNext
		}
		nacc = 64 - consumedFromNext
	}
	return nWords * 8, nil
}

func mask32(width uint) uint32 {
	if width >= 32 {
		return ^uint32(0)
	}
	return (1 << width) - 1
}

func mask64(width uint) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (1 << width) - 1
}

// EncodeFOR compresses src using frame-of-reference plus per-128-block bit
// packing and appends the result to dst. Layout:
//
//	n:u32  base:u32(min, as uint32 of the int32 min)  then per block:
//	width:u8  packed payload (ceil(blockLen*width/64) words)
//
// Signed inputs are handled by rebasing on the minimum value, so all
// packed deltas are non-negative.
func EncodeFOR(dst []byte, src []int32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
	if len(src) == 0 {
		return dst
	}
	base := src[0]
	for _, v := range src {
		if v < base {
			base = v
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(base))
	var deltas [BlockLen]uint32
	for off := 0; off < len(src); off += BlockLen {
		end := off + BlockLen
		if end > len(src) {
			end = len(src)
		}
		blk := src[off:end]
		for i, v := range blk {
			deltas[i] = uint32(int64(v) - int64(base))
		}
		w := MaxWidth(deltas[:len(blk)])
		dst = append(dst, byte(w))
		dst = Pack(dst, deltas[:len(blk)], w)
	}
	return dst
}

// DecodeFOR decompresses a stream produced by EncodeFOR, appending the
// values to dst. It returns the extended dst and the number of input bytes
// consumed.
func DecodeFOR(dst []int32, src []byte) ([]int32, int, error) {
	return decodeFOR(dst, src, Unpack)
}

// DecodeFORGeneric is DecodeFOR on the generic unpack loop — the scalar
// side of the §6.8 ablation. Output is bit-identical to DecodeFOR.
func DecodeFORGeneric(dst []int32, src []byte) ([]int32, int, error) {
	return decodeFOR(dst, src, UnpackGeneric)
}

func decodeFOR(dst []int32, src []byte, unpack func([]uint32, []byte, int, uint) (int, error)) ([]int32, int, error) {
	if len(src) < 4 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	pos := 4
	if n == 0 {
		return dst, pos, nil
	}
	if len(src) < 8 {
		return dst, 0, ErrCorrupt
	}
	// Every block needs at least its width byte, so n values require at
	// least ceil(n/BlockLen) more input bytes: reject implausible counts
	// before allocating the output (a corrupt header must not cause a
	// multi-gigabyte allocation).
	if n < 0 || (n+BlockLen-1)/BlockLen > len(src)-8 {
		return dst, 0, ErrCorrupt
	}
	base := int32(binary.LittleEndian.Uint32(src[pos:]))
	pos += 4
	var deltas [BlockLen]uint32
	out := len(dst)
	dst = append(dst, make([]int32, n)...)
	for got := 0; got < n; got += BlockLen {
		cnt := n - got
		if cnt > BlockLen {
			cnt = BlockLen
		}
		if pos >= len(src) {
			return dst, 0, ErrCorrupt
		}
		w := uint(src[pos])
		pos++
		if w > 32 {
			return dst, 0, ErrCorrupt
		}
		used, err := unpack(deltas[:cnt], src[pos:], cnt, w)
		if err != nil {
			return dst, 0, err
		}
		pos += used
		// base + delta wraps mod 2^32 either way, so int32 addition is
		// exactly the old widen-add-truncate.
		blk := dst[out+got : out+got+cnt]
		for i := range blk {
			blk[i] = base + int32(deltas[i])
		}
	}
	return dst, pos, nil
}

// EncodedSizeFOR returns the exact encoded size of EncodeFOR(nil, src)
// without materializing it. Used by the scheme estimator.
func EncodedSizeFOR(src []int32) int {
	if len(src) == 0 {
		return 4
	}
	base := src[0]
	for _, v := range src {
		if v < base {
			base = v
		}
	}
	size := 8
	var deltas [BlockLen]uint32
	for off := 0; off < len(src); off += BlockLen {
		end := off + BlockLen
		if end > len(src) {
			end = len(src)
		}
		blk := src[off:end]
		for i, v := range blk {
			deltas[i] = uint32(int64(v) - int64(base))
		}
		w := MaxWidth(deltas[:len(blk)])
		bits := uint64(len(blk)) * uint64(w)
		size += 1 + int((bits+63)/64)*8
	}
	return size
}
