package bitpack

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPackUnpackWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for width := uint(0); width <= 32; width++ {
		for _, n := range []int{0, 1, 7, 63, 64, 65, 128, 129, 1000} {
			src := make([]uint32, n)
			for i := range src {
				src[i] = rng.Uint32() & mask32(width)
			}
			packed := Pack(nil, src, width)
			got := make([]uint32, n)
			used, err := Unpack(got, packed, n, width)
			if err != nil {
				t.Fatalf("width=%d n=%d: %v", width, n, err)
			}
			if used != len(packed) {
				t.Fatalf("width=%d n=%d: consumed %d of %d bytes", width, n, used, len(packed))
			}
			if !reflect.DeepEqual(src, got) {
				t.Fatalf("width=%d n=%d: round trip mismatch", width, n)
			}
		}
	}
}

func TestPackAllOnesBoundary(t *testing.T) {
	src := make([]uint32, 200)
	for i := range src {
		src[i] = math.MaxUint32
	}
	packed := Pack(nil, src, 32)
	got := make([]uint32, len(src))
	if _, err := Unpack(got, packed, len(src), 32); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != math.MaxUint32 {
			t.Fatalf("value %d = %#x", i, v)
		}
	}
}

func TestFORRoundTrip(t *testing.T) {
	cases := [][]int32{
		nil,
		{},
		{0},
		{42},
		{-5, -5, -5},
		{math.MinInt32, math.MaxInt32},
		{100, 101, 113, 105, 118},
		{-1000000, 0, 1000000},
	}
	rng := rand.New(rand.NewSource(2))
	long := make([]int32, 64000)
	for i := range long {
		long[i] = int32(rng.Intn(1 << 20))
	}
	cases = append(cases, long)

	for ci, src := range cases {
		enc := EncodeFOR(nil, src)
		if want := EncodedSizeFOR(src); want != len(enc) {
			t.Fatalf("case %d: EncodedSizeFOR=%d, actual=%d", ci, want, len(enc))
		}
		dec, used, err := DecodeFOR(nil, enc)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if used != len(enc) {
			t.Fatalf("case %d: consumed %d of %d", ci, used, len(enc))
		}
		if len(dec) != len(src) {
			t.Fatalf("case %d: got %d values, want %d", ci, len(dec), len(src))
		}
		for i := range src {
			if dec[i] != src[i] {
				t.Fatalf("case %d: value %d = %d, want %d", ci, i, dec[i], src[i])
			}
		}
	}
}

func TestFORAppendsToDst(t *testing.T) {
	src := []int32{7, 8, 9}
	enc := EncodeFOR([]byte{0xee}, src)
	if enc[0] != 0xee {
		t.Fatal("encode must append to dst")
	}
	dec, _, err := DecodeFOR([]int32{-1}, enc[1:])
	if err != nil {
		t.Fatal(err)
	}
	if dec[0] != -1 || len(dec) != 4 {
		t.Fatal("decode must append to dst")
	}
}

func TestFORCorruptInputs(t *testing.T) {
	enc := EncodeFOR(nil, []int32{1, 2, 3, 4, 5})
	for cut := 0; cut < len(enc); cut++ {
		if cut == 4 {
			continue // a 4-byte prefix with n=0 is a valid empty stream
		}
		if _, _, err := DecodeFOR(nil, enc[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[8] = 99 // impossible width
	if _, _, err := DecodeFOR(nil, bad); err == nil {
		t.Fatal("bad width not detected")
	}
}

func TestFORQuick(t *testing.T) {
	f := func(src []int32) bool {
		enc := EncodeFOR(nil, src)
		dec, used, err := DecodeFOR(nil, enc)
		if err != nil || used != len(enc) || len(dec) != len(src) {
			return false
		}
		for i := range src {
			if dec[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWidth(t *testing.T) {
	if Width(0) != 0 || Width(1) != 1 || Width(255) != 8 || Width(256) != 9 || Width(math.MaxUint32) != 32 {
		t.Fatal("Width wrong")
	}
	if MaxWidth([]uint32{1, 2, 1024}) != 11 {
		t.Fatal("MaxWidth wrong")
	}
	if MaxWidth(nil) != 0 {
		t.Fatal("MaxWidth(nil) wrong")
	}
}

func BenchmarkUnpack16(b *testing.B) {
	src := make([]uint32, 64000)
	rng := rand.New(rand.NewSource(3))
	for i := range src {
		src[i] = uint32(rng.Intn(1 << 16))
	}
	packed := Pack(nil, src, 16)
	dst := make([]uint32, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(dst, packed, len(src), 16); err != nil {
			b.Fatal(err)
		}
	}
}
