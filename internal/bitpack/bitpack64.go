package bitpack

import (
	"encoding/binary"
	"math/bits"
)

// 64-bit variants of the FOR + block bit-packing codec, for int64 columns
// (timestamps, large keys). Same layout as the 32-bit version with widths
// up to 64 bits.

// Width64 returns the number of bits needed to represent v.
func Width64(v uint64) uint { return uint(bits.Len64(v)) }

// MaxWidth64 returns the bits needed for the largest value in src.
func MaxWidth64(src []uint64) uint {
	var m uint64
	for _, v := range src {
		m |= v
	}
	return uint(bits.Len64(m))
}

// Pack64 appends the low `width` bits of every value in src to dst,
// little-endian into 64-bit words. width must be in [0, 64].
func Pack64(dst []byte, src []uint64, width uint) []byte {
	if width == 0 {
		return dst
	}
	totalBits := uint64(len(src)) * uint64(width)
	nWords := (totalBits + 63) / 64
	start := len(dst)
	dst = append(dst, make([]byte, nWords*8)...)
	out := dst[start:]

	var acc uint64
	var nacc uint
	wi := 0
	for _, v := range src {
		v &= mask64(width)
		acc |= v << nacc
		nacc += width
		if nacc >= 64 {
			binary.LittleEndian.PutUint64(out[wi*8:], acc)
			wi++
			nacc -= 64
			if nacc > 0 {
				acc = v >> (width - nacc)
			} else {
				acc = 0
			}
		}
	}
	if nacc > 0 {
		binary.LittleEndian.PutUint64(out[wi*8:], acc)
	}
	return dst
}

// Unpack64 reads n values of `width` bits from src into dst and returns
// the number of bytes consumed. Like Unpack, full 128-value blocks
// dispatch to the width-specialized kernel table and tails fall back to
// the generic loop.
func Unpack64(dst []uint64, src []byte, n int, width uint) (int, error) {
	if width == 0 {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return 0, nil
	}
	if n == BlockLen && width <= 64 && len(dst) >= BlockLen {
		nBytes := BlockLen / 8 * int(width)
		if len(src) < nBytes {
			return 0, ErrCorrupt
		}
		kernels64[width]((*[BlockLen]uint64)(dst), src)
		return nBytes, nil
	}
	return Unpack64Generic(dst, src, n, width)
}

// Unpack64Generic is the width-generic accumulator loop behind Unpack64:
// reference implementation, tail path, and scalar-ablation decoder.
func Unpack64Generic(dst []uint64, src []byte, n int, width uint) (int, error) {
	if width == 0 {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return 0, nil
	}
	totalBits := uint64(n) * uint64(width)
	nWords := int((totalBits + 63) / 64)
	if len(src) < nWords*8 {
		return 0, ErrCorrupt
	}
	var acc uint64
	var nacc uint
	wi := 0
	m := mask64(width)
	for i := 0; i < n; i++ {
		if nacc >= width {
			dst[i] = acc & m
			acc >>= width
			nacc -= width
			continue
		}
		next := binary.LittleEndian.Uint64(src[wi*8:])
		wi++
		v := acc
		if nacc < 64 {
			v |= next << nacc
		}
		dst[i] = v & m
		consumedFromNext := width - nacc
		acc = 0
		if consumedFromNext < 64 {
			acc = next >> consumedFromNext
		}
		nacc = 64 - consumedFromNext
	}
	return nWords * 8, nil
}

// EncodeFOR64 compresses src using frame-of-reference plus per-128-block
// bit packing: n:u32 base:u64 then per block width:u8 + packed payload.
func EncodeFOR64(dst []byte, src []int64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
	if len(src) == 0 {
		return dst
	}
	base := src[0]
	for _, v := range src {
		if v < base {
			base = v
		}
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(base))
	var deltas [BlockLen]uint64
	for off := 0; off < len(src); off += BlockLen {
		end := off + BlockLen
		if end > len(src) {
			end = len(src)
		}
		blk := src[off:end]
		for i, v := range blk {
			deltas[i] = uint64(v) - uint64(base)
		}
		w := MaxWidth64(deltas[:len(blk)])
		dst = append(dst, byte(w))
		dst = Pack64(dst, deltas[:len(blk)], w)
	}
	return dst
}

// DecodeFOR64 decompresses an EncodeFOR64 stream, appending values to dst
// and returning the extended dst and bytes consumed.
func DecodeFOR64(dst []int64, src []byte) ([]int64, int, error) {
	return decodeFOR64(dst, src, Unpack64)
}

// DecodeFOR64Generic is DecodeFOR64 on the generic unpack loop (the
// scalar ablation). Output is bit-identical to DecodeFOR64.
func DecodeFOR64Generic(dst []int64, src []byte) ([]int64, int, error) {
	return decodeFOR64(dst, src, Unpack64Generic)
}

func decodeFOR64(dst []int64, src []byte, unpack func([]uint64, []byte, int, uint) (int, error)) ([]int64, int, error) {
	if len(src) < 4 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	pos := 4
	if n == 0 {
		return dst, pos, nil
	}
	if len(src) < 12 {
		return dst, 0, ErrCorrupt
	}
	if n < 0 || (n+BlockLen-1)/BlockLen > len(src)-12 {
		return dst, 0, ErrCorrupt
	}
	base := int64(binary.LittleEndian.Uint64(src[pos:]))
	pos += 8
	var deltas [BlockLen]uint64
	out := len(dst)
	dst = append(dst, make([]int64, n)...)
	for got := 0; got < n; got += BlockLen {
		cnt := n - got
		if cnt > BlockLen {
			cnt = BlockLen
		}
		if pos >= len(src) {
			return dst, 0, ErrCorrupt
		}
		w := uint(src[pos])
		pos++
		if w > 64 {
			return dst, 0, ErrCorrupt
		}
		used, err := unpack(deltas[:cnt], src[pos:], cnt, w)
		if err != nil {
			return dst, 0, err
		}
		pos += used
		for i := 0; i < cnt; i++ {
			dst[out+got+i] = int64(uint64(base) + deltas[i])
		}
	}
	return dst, pos, nil
}

// EncodedSizeFOR64 returns the exact size EncodeFOR64(nil, src) produces.
func EncodedSizeFOR64(src []int64) int {
	if len(src) == 0 {
		return 4
	}
	base := src[0]
	for _, v := range src {
		if v < base {
			base = v
		}
	}
	size := 12
	var deltas [BlockLen]uint64
	for off := 0; off < len(src); off += BlockLen {
		end := off + BlockLen
		if end > len(src) {
			end = len(src)
		}
		blk := src[off:end]
		for i, v := range blk {
			deltas[i] = uint64(v) - uint64(base)
		}
		w := MaxWidth64(deltas[:len(blk)])
		bits := uint64(len(blk)) * uint64(w)
		size += 1 + int((bits+63)/64)*8
	}
	return size
}
