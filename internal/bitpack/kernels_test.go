package bitpack

import (
	"fmt"
	"math/rand"
	"testing"
)

// blockPatterns returns the test blocks for one width: all-zeros,
// all-max (every value at the width's maximum), and seeded random
// values within the width.
func blockPatterns(width uint, rng *rand.Rand) [][]uint32 {
	maxv := mask32(width)
	zeros := make([]uint32, BlockLen)
	maxs := make([]uint32, BlockLen)
	random := make([]uint32, BlockLen)
	for i := 0; i < BlockLen; i++ {
		maxs[i] = maxv
		random[i] = rng.Uint32() & maxv
	}
	return [][]uint32{zeros, maxs, random}
}

func blockPatterns64(width uint, rng *rand.Rand) [][]uint64 {
	maxv := mask64(width)
	zeros := make([]uint64, BlockLen)
	maxs := make([]uint64, BlockLen)
	random := make([]uint64, BlockLen)
	for i := 0; i < BlockLen; i++ {
		maxs[i] = maxv
		random[i] = rng.Uint64() & maxv
	}
	return [][]uint64{zeros, maxs, random}
}

// TestKernelEquivalence proves that for every width 0..32 the
// specialized full-block kernel and the generic fallback decode
// bit-identically, on full blocks and on every partial tail length
// 1..127 (tails always take the generic path through Unpack, but the
// sweep also checks the generic loop against the packed source).
func TestKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for width := uint(0); width <= 32; width++ {
		for pi, src := range blockPatterns(width, rng) {
			packed := Pack(nil, src, width)
			viaKernel := make([]uint32, BlockLen)
			viaGeneric := make([]uint32, BlockLen)
			usedK, err := Unpack(viaKernel, packed, BlockLen, width)
			if err != nil {
				t.Fatalf("width %d pattern %d: kernel: %v", width, pi, err)
			}
			usedG, err := UnpackGeneric(viaGeneric, packed, BlockLen, width)
			if err != nil {
				t.Fatalf("width %d pattern %d: generic: %v", width, pi, err)
			}
			if usedK != usedG {
				t.Fatalf("width %d pattern %d: consumed %d (kernel) != %d (generic)", width, pi, usedK, usedG)
			}
			for i := range src {
				if viaKernel[i] != src[i] || viaGeneric[i] != src[i] {
					t.Fatalf("width %d pattern %d value %d: src %#x kernel %#x generic %#x",
						width, pi, i, src[i], viaKernel[i], viaGeneric[i])
				}
			}
		}
		// every tail length 1..127 must round-trip through the generic path
		full := blockPatterns(width, rng)[2]
		for n := 1; n < BlockLen; n++ {
			packed := Pack(nil, full[:n], width)
			got := make([]uint32, n)
			if _, err := Unpack(got, packed, n, width); err != nil {
				t.Fatalf("width %d tail %d: %v", width, n, err)
			}
			for i := 0; i < n; i++ {
				if got[i] != full[i] {
					t.Fatalf("width %d tail %d value %d: got %#x want %#x", width, n, i, got[i], full[i])
				}
			}
		}
	}
}

// TestKernelEquivalence64 is the 64-bit sweep: widths 0..64, the same
// patterns and every tail length.
func TestKernelEquivalence64(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for width := uint(0); width <= 64; width++ {
		for pi, src := range blockPatterns64(width, rng) {
			packed := Pack64(nil, src, width)
			viaKernel := make([]uint64, BlockLen)
			viaGeneric := make([]uint64, BlockLen)
			usedK, err := Unpack64(viaKernel, packed, BlockLen, width)
			if err != nil {
				t.Fatalf("width %d pattern %d: kernel: %v", width, pi, err)
			}
			usedG, err := Unpack64Generic(viaGeneric, packed, BlockLen, width)
			if err != nil {
				t.Fatalf("width %d pattern %d: generic: %v", width, pi, err)
			}
			if usedK != usedG {
				t.Fatalf("width %d pattern %d: consumed %d (kernel) != %d (generic)", width, pi, usedK, usedG)
			}
			for i := range src {
				if viaKernel[i] != src[i] || viaGeneric[i] != src[i] {
					t.Fatalf("width %d pattern %d value %d: src %#x kernel %#x generic %#x",
						width, pi, i, src[i], viaKernel[i], viaGeneric[i])
				}
			}
		}
		full := blockPatterns64(width, rng)[2]
		for n := 1; n < BlockLen; n++ {
			packed := Pack64(nil, full[:n], width)
			got := make([]uint64, n)
			if _, err := Unpack64(got, packed, n, width); err != nil {
				t.Fatalf("width %d tail %d: %v", width, n, err)
			}
			for i := 0; i < n; i++ {
				if got[i] != full[i] {
					t.Fatalf("width %d tail %d value %d: got %#x want %#x", width, n, i, got[i], full[i])
				}
			}
		}
	}
}

// TestKernelShortInput verifies the kernel dispatch path rejects inputs
// shorter than a full block's payload instead of reading out of bounds.
func TestKernelShortInput(t *testing.T) {
	for width := uint(1); width <= 32; width++ {
		need := BlockLen / 8 * int(width)
		dst := make([]uint32, BlockLen)
		if _, err := Unpack(dst, make([]byte, need-1), BlockLen, width); err == nil {
			t.Fatalf("width %d: expected error on %d-byte input", width, need-1)
		}
	}
	for width := uint(1); width <= 64; width++ {
		need := BlockLen / 8 * int(width)
		dst := make([]uint64, BlockLen)
		if _, err := Unpack64(dst, make([]byte, need-1), BlockLen, width); err == nil {
			t.Fatalf("width %d: expected error on %d-byte input", width, need-1)
		}
	}
}

// TestDecodeFORGenericEquivalence pins DecodeFOR == DecodeFORGeneric on
// mixed-width multi-block streams including a partial tail block.
func TestDecodeFORGenericEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, n := range []int{1, 127, 128, 129, 1000, 4096 + 17} {
		src := make([]int32, n)
		for i := range src {
			// vary magnitude per block so block widths differ
			src[i] = int32(rng.Intn(1 << (uint(i/BlockLen)%30 + 1)))
			if rng.Intn(7) == 0 {
				src[i] = -src[i]
			}
		}
		enc := EncodeFOR(nil, src)
		fast, usedF, err := DecodeFOR(nil, enc)
		if err != nil {
			t.Fatal(err)
		}
		slow, usedS, err := DecodeFORGeneric(nil, enc)
		if err != nil {
			t.Fatal(err)
		}
		if usedF != usedS || len(fast) != len(slow) {
			t.Fatalf("n=%d: used %d/%d len %d/%d", n, usedF, usedS, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i] != slow[i] || fast[i] != src[i] {
				t.Fatalf("n=%d value %d: src %d kernel %d generic %d", n, i, src[i], fast[i], slow[i])
			}
		}
	}

	for _, n := range []int{1, 127, 128, 129, 1000, 4096 + 17} {
		src := make([]int64, n)
		for i := range src {
			src[i] = int64(rng.Uint64() >> (uint(i/BlockLen)*7%63 + 1))
			if rng.Intn(7) == 0 {
				src[i] = -src[i]
			}
		}
		enc := EncodeFOR64(nil, src)
		fast, usedF, err := DecodeFOR64(nil, enc)
		if err != nil {
			t.Fatal(err)
		}
		slow, usedS, err := DecodeFOR64Generic(nil, enc)
		if err != nil {
			t.Fatal(err)
		}
		if usedF != usedS || len(fast) != len(slow) {
			t.Fatalf("n=%d: used %d/%d len %d/%d", n, usedF, usedS, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i] != slow[i] || fast[i] != src[i] {
				t.Fatalf("n=%d value %d: src %d kernel %d generic %d", n, i, src[i], fast[i], slow[i])
			}
		}
	}
}

// --- per-kernel microbenchmarks (the BENCH_decode.json feedstock) ---

const benchBlocks = 512 // 64k values per op

func benchSrc32(width uint) ([]byte, []uint32) {
	rng := rand.New(rand.NewSource(7))
	src := make([]uint32, BlockLen*benchBlocks)
	for i := range src {
		src[i] = rng.Uint32() & mask32(width)
	}
	var packed []byte
	for b := 0; b < benchBlocks; b++ {
		packed = Pack(packed, src[b*BlockLen:(b+1)*BlockLen], width)
	}
	return packed, src
}

// BenchmarkUnpack decodes 512 full blocks per op at each width, kernel
// vs generic — the ≥2x acceptance gate of the PR 6 trajectory work.
func BenchmarkUnpack(b *testing.B) {
	dst := make([]uint32, BlockLen)
	for _, width := range []uint{1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 27, 32} {
		packed, src := benchSrc32(width)
		stride := BlockLen / 8 * int(width)
		for _, v := range []struct {
			name   string
			unpack func([]uint32, []byte, int, uint) (int, error)
		}{{"kernel", Unpack}, {"generic", UnpackGeneric}} {
			b.Run(fmt.Sprintf("width=%02d/%s", width, v.name), func(b *testing.B) {
				b.SetBytes(int64(len(src) * 4))
				for i := 0; i < b.N; i++ {
					for blk := 0; blk < benchBlocks; blk++ {
						if _, err := v.unpack(dst, packed[blk*stride:], BlockLen, width); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

func benchSrc64(width uint) ([]byte, []uint64) {
	rng := rand.New(rand.NewSource(7))
	src := make([]uint64, BlockLen*benchBlocks)
	for i := range src {
		src[i] = rng.Uint64() & mask64(width)
	}
	var packed []byte
	for b := 0; b < benchBlocks; b++ {
		packed = Pack64(packed, src[b*BlockLen:(b+1)*BlockLen], width)
	}
	return packed, src
}

// BenchmarkUnpack64 is the 64-bit kernel curve over a width subset.
func BenchmarkUnpack64(b *testing.B) {
	dst := make([]uint64, BlockLen)
	for _, width := range []uint{2, 4, 8, 16, 24, 33, 48, 64} {
		packed, src := benchSrc64(width)
		stride := BlockLen / 8 * int(width)
		for _, v := range []struct {
			name   string
			unpack func([]uint64, []byte, int, uint) (int, error)
		}{{"kernel", Unpack64}, {"generic", Unpack64Generic}} {
			b.Run(fmt.Sprintf("width=%02d/%s", width, v.name), func(b *testing.B) {
				b.SetBytes(int64(len(src) * 8))
				for i := 0; i < b.N; i++ {
					for blk := 0; blk < benchBlocks; blk++ {
						if _, err := v.unpack(dst, packed[blk*stride:], BlockLen, width); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkDecodeFOR measures the whole FOR decode (header walk, kernel
// dispatch, base re-add) end to end at a representative 12-bit width.
func BenchmarkDecodeFOR(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	src := make([]int32, 64000)
	for i := range src {
		src[i] = int32(rng.Intn(1 << 12))
	}
	enc := EncodeFOR(nil, src)
	out := make([]int32, 0, len(src))
	for _, v := range []struct {
		name   string
		decode func([]int32, []byte) ([]int32, int, error)
	}{{"kernel", DecodeFOR}, {"generic", DecodeFORGeneric}} {
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(len(src) * 4))
			for i := 0; i < b.N; i++ {
				var err error
				if out, _, err = v.decode(out[:0], enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
