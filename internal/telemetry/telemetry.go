// Package telemetry collects per-block compression observability data:
// which scheme the sampling-based selection algorithm chose at every
// cascade level, the estimated versus achieved compression ratio, byte
// counts, cascade depth, and where the compression time went (scheme
// selection versus encoding).
//
// The entry point is Recorder. A nil *Recorder is valid and disables all
// collection: every method is a no-op on nil, so the compression path can
// call RecordBlock unconditionally behind a single pointer check. The
// recorder is safe for concurrent use — CompressChunk records from many
// worker goroutines.
//
// Snapshot returns an immutable aggregate view (the data behind the
// paper's Table 2 and Figure 2), and Snapshot.Report renders it as text.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"btrblocks/internal/obs"
)

// Candidate is one scheme the picker scored for a stream, with its
// sample-based compression-ratio estimate — the "why" behind a Level's
// chosen scheme.
type Candidate struct {
	// Scheme is the candidate's name.
	Scheme string
	// EstimatedRatio is the sample-based ratio estimate it scored.
	EstimatedRatio float64
	// SampleBytes is the trial encoding's size (0 when scored without a
	// trial, e.g. the OneValue fast path).
	SampleBytes int
}

// Level records one scheme-selection decision inside a block: the scheme
// chosen for one stream of the cascade and what it did to that stream.
type Level struct {
	// Depth is the cascade level: 0 for the block's root stream, 1 for
	// its direct sub-streams (RLE lengths, dictionary codes, …), etc.
	Depth int
	// Kind is the value kind of the stream ("int", "int64", "double",
	// "string"). Sub-streams of a string or double block are usually
	// integer streams.
	Kind string
	// Scheme is the chosen scheme's name (e.g. "Dictionary", "FastBP").
	Scheme string
	// Values is the number of values in the stream.
	Values int
	// InputBytes and OutputBytes are the stream's uncompressed and
	// encoded sizes (including the scheme tag byte).
	InputBytes  int
	OutputBytes int
	// EstimatedRatio is the sample-based ratio estimate that won the
	// scheme the pick (1 when selection fell through to Uncompressed).
	EstimatedRatio float64
	// PickNanos is the time spent deciding: statistics, sampling and
	// trial-encoding the candidate schemes.
	PickNanos int64
	// Candidates lists every scheme the picker scored for the stream, in
	// evaluation order (the chosen scheme included).
	Candidates []Candidate
}

// BlockEvent is the telemetry record for one compressed block.
type BlockEvent struct {
	// Column and Block identify the block: column name and zero-based
	// block index within the column.
	Column string
	Block  int
	// Type is the column's type name ("integer", "double", …).
	Type string
	// Rows is the number of values in the block.
	Rows int
	// Scheme is the root scheme chosen for the block.
	Scheme string
	// EstimatedRatio is the root pick's sample-based estimate;
	// ActualRatio is InputBytes/OutputBytes as achieved.
	EstimatedRatio float64
	ActualRatio    float64
	// InputBytes and OutputBytes are the block's uncompressed size and
	// the size of its encoded data stream (excluding the block framing
	// and NULL bitmap).
	InputBytes  int
	OutputBytes int
	// CascadeDepth is the number of cascade levels actually used
	// (1 = the root scheme had no compressed sub-streams).
	CascadeDepth int
	// SampleNanos is the total scheme-selection time across all levels;
	// CompressNanos is the block's total wall-clock compression time
	// (selection included).
	SampleNanos   int64
	CompressNanos int64
	// Levels lists every selection decision in the block, root first.
	Levels []Level
}

// ratioBuckets are the upper bounds of the compression-ratio histogram;
// the last bucket is unbounded.
var ratioBuckets = [...]float64{1, 2, 4, 8, 16, 32, 64, 128}

// RatioHistogram counts blocks by achieved compression ratio in
// power-of-two buckets: [0,1), [1,2), [2,4), … [128,∞).
type RatioHistogram struct {
	Counts [len(ratioBuckets) + 1]int
}

func (h *RatioHistogram) add(ratio float64) {
	for i, ub := range ratioBuckets {
		if ratio < ub {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(ratioBuckets)]++
}

// BucketLabel returns the human-readable range of bucket i.
func (h *RatioHistogram) BucketLabel(i int) string {
	if i == 0 {
		return fmt.Sprintf("<%gx", ratioBuckets[0])
	}
	if i == len(ratioBuckets) {
		return fmt.Sprintf(">=%gx", ratioBuckets[len(ratioBuckets)-1])
	}
	return fmt.Sprintf("%g-%gx", ratioBuckets[i-1], ratioBuckets[i])
}

// Total returns the number of blocks counted.
func (h *RatioHistogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Recorder accumulates block events and aggregate counters. The zero
// value is ready to use; a nil *Recorder discards everything.
type Recorder struct {
	mu     sync.Mutex
	events []BlockEvent

	blocks        int
	inputBytes    int64
	outputBytes   int64
	sampleNanos   int64
	compressNanos int64
	// rootPicks counts root-scheme choices per column type; cascadePicks
	// counts choices at every level per stream kind.
	rootPicks    map[string]map[string]int
	cascadePicks map[string]map[string]int
	depthHist    map[int]int
	ratioHist    RatioHistogram

	// decode-side counters (RecordDecode)
	decodeBlocks int64
	decodeValues int64
	decodeBytes  int64
	decodeNanos  int64
	// corruption counter (RecordCorruption): blocks or containers whose
	// checksum verification failed on a decode path
	corruptBlocks int64

	// Per-block latency distributions: sums alone hide tail behavior, so
	// compress and decode wall times also feed shared log-scale
	// histograms (p50/p95/p99 in Snapshot).
	compressHist obs.Histogram
	decodeHist   obs.Histogram

	// Parallel-path scheduling stats (RecordWorkers / ObserveQueueWait),
	// keyed by path name ("decompress_chunk", "scan", …). Histograms
	// contain atomics, so entries are held by pointer.
	parallelPaths map[string]*parallelPath
}

// parallelPath aggregates pool scheduling data for one named path.
type parallelPath struct {
	workers   int // worker count of the most recent run
	runs      int64
	queueWait obs.Histogram
}

// New returns an empty enabled recorder.
func New() *Recorder { return &Recorder{} }

// Enabled reports whether the recorder collects anything (i.e. is
// non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// RecordBlock adds one block event. Safe for concurrent use; a no-op on
// a nil receiver.
func (r *Recorder) RecordBlock(ev BlockEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
	r.blocks++
	r.inputBytes += int64(ev.InputBytes)
	r.outputBytes += int64(ev.OutputBytes)
	r.sampleNanos += ev.SampleNanos
	r.compressNanos += ev.CompressNanos
	if r.rootPicks == nil {
		r.rootPicks = make(map[string]map[string]int)
		r.cascadePicks = make(map[string]map[string]int)
		r.depthHist = make(map[int]int)
	}
	bump(r.rootPicks, ev.Type, ev.Scheme)
	for _, lv := range ev.Levels {
		bump(r.cascadePicks, lv.Kind, lv.Scheme)
	}
	r.depthHist[ev.CascadeDepth]++
	r.ratioHist.add(ev.ActualRatio)
	r.compressHist.Observe(time.Duration(ev.CompressNanos))
}

func bump(m map[string]map[string]int, outer, inner string) {
	mm := m[outer]
	if mm == nil {
		mm = make(map[string]int)
		m[outer] = mm
	}
	mm[inner]++
}

// RecordDecode adds decode-side counters: blocks decoded, values
// produced, compressed payload bytes consumed, and decode wall time.
// The file layer calls it once per decompressed block, so decoders of
// served columns can be audited (e.g. a block cache proving that
// concurrent requests for one block decoded it exactly once). Safe for
// concurrent use; a no-op on a nil receiver.
func (r *Recorder) RecordDecode(blocks, values, compressedBytes int, nanos int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.decodeBlocks += int64(blocks)
	r.decodeValues += int64(values)
	r.decodeBytes += int64(compressedBytes)
	r.decodeNanos += nanos
	r.decodeHist.Observe(time.Duration(nanos))
}

// RecordCorruption counts blocks (or containers) that failed checksum
// verification on a decode path. Damage is thereby observable on the
// same recorder that watches the healthy traffic. Safe for concurrent
// use; a no-op on a nil receiver.
func (r *Recorder) RecordCorruption(blocks int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.corruptBlocks += int64(blocks)
}

// RecordWorkers notes one worker-pool run on the named parallel path
// with the given worker count. Called by the format layer's pool engine
// once per run; satisfies parallel.Observer. Safe for concurrent use; a
// no-op on a nil receiver.
func (r *Recorder) RecordWorkers(path string, workers int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.parallelPath(path)
	p.workers = workers
	p.runs++
}

// ObserveQueueWait records how long one task of the named parallel path
// waited between pool start and a worker claiming it. Safe for
// concurrent use; a no-op on a nil receiver.
func (r *Recorder) ObserveQueueWait(path string, wait time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	p := r.parallelPath(path)
	r.mu.Unlock()
	// The histogram is atomic; observing outside the lock keeps the hot
	// claim path cheap.
	p.queueWait.Observe(wait)
}

// parallelPath returns the named path entry, creating it. Caller holds
// r.mu.
func (r *Recorder) parallelPath(path string) *parallelPath {
	if r.parallelPaths == nil {
		r.parallelPaths = make(map[string]*parallelPath)
	}
	p := r.parallelPaths[path]
	if p == nil {
		p = &parallelPath{}
		r.parallelPaths[path] = p
	}
	return p
}

// Reset discards all recorded data.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
	r.blocks = 0
	r.inputBytes, r.outputBytes = 0, 0
	r.sampleNanos, r.compressNanos = 0, 0
	r.rootPicks, r.cascadePicks, r.depthHist = nil, nil, nil
	r.ratioHist = RatioHistogram{}
	r.decodeBlocks, r.decodeValues, r.decodeBytes, r.decodeNanos = 0, 0, 0, 0
	r.corruptBlocks = 0
	r.compressHist.Reset()
	r.decodeHist.Reset()
	r.parallelPaths = nil
}

// Snapshot is an immutable copy of a Recorder's state.
type Snapshot struct {
	// Blocks is the number of blocks recorded.
	Blocks int
	// InputBytes and OutputBytes sum the per-block byte counts.
	InputBytes  int64
	OutputBytes int64
	// SampleNanos and CompressNanos sum selection and total compression
	// time across blocks.
	SampleNanos   int64
	CompressNanos int64
	// RootPicks counts root-scheme choices per column type
	// (type → scheme → blocks); CascadePicks counts every cascade-level
	// choice per stream kind (kind → scheme → streams).
	RootPicks    map[string]map[string]int
	CascadePicks map[string]map[string]int
	// DepthHist counts blocks by used cascade depth.
	DepthHist map[int]int
	// RatioHist buckets blocks by achieved compression ratio.
	RatioHist RatioHistogram
	// DecodeBlocks, DecodeValues, DecodeBytes and DecodeNanos are the
	// decode-side counters: blocks decompressed, values produced,
	// compressed payload bytes consumed and decode wall time.
	DecodeBlocks int64
	DecodeValues int64
	DecodeBytes  int64
	DecodeNanos  int64
	// CorruptBlocks counts checksum-verification failures seen on decode
	// paths (RecordCorruption).
	CorruptBlocks int64
	// CompressLatency and DecodeLatency summarize the per-block wall-time
	// distributions (count, sum, estimated p50/p95/p99).
	CompressLatency obs.HistogramSnapshot
	DecodeLatency   obs.HistogramSnapshot
	// Parallel summarizes worker-pool scheduling per parallel path
	// (path name → workers, runs, queue-wait distribution).
	Parallel map[string]ParallelPathStats `json:",omitempty"`
	// Events holds every block event, ordered by (column, block).
	Events []BlockEvent
}

// ParallelPathStats summarizes worker-pool scheduling for one parallel
// path: the most recent worker count, how many pool runs it has seen,
// and the distribution of task queue-wait times.
type ParallelPathStats struct {
	Workers   int
	Runs      int64
	QueueWait obs.HistogramSnapshot
}

// Snapshot returns a copy of the recorder's aggregate state. Events are
// sorted by (column, block index) so concurrent recording yields a
// deterministic snapshot. Returns a zero Snapshot on a nil receiver.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Blocks:          r.blocks,
		InputBytes:      r.inputBytes,
		OutputBytes:     r.outputBytes,
		SampleNanos:     r.sampleNanos,
		CompressNanos:   r.compressNanos,
		RootPicks:       copyCounts(r.rootPicks),
		CascadePicks:    copyCounts(r.cascadePicks),
		DepthHist:       make(map[int]int, len(r.depthHist)),
		RatioHist:       r.ratioHist,
		DecodeBlocks:    r.decodeBlocks,
		DecodeValues:    r.decodeValues,
		DecodeBytes:     r.decodeBytes,
		DecodeNanos:     r.decodeNanos,
		CorruptBlocks:   r.corruptBlocks,
		CompressLatency: r.compressHist.Snapshot(),
		DecodeLatency:   r.decodeHist.Snapshot(),
		Events:          append([]BlockEvent(nil), r.events...),
	}
	for d, c := range r.depthHist {
		s.DepthHist[d] = c
	}
	if len(r.parallelPaths) > 0 {
		s.Parallel = make(map[string]ParallelPathStats, len(r.parallelPaths))
		for path, p := range r.parallelPaths {
			s.Parallel[path] = ParallelPathStats{
				Workers:   p.workers,
				Runs:      p.runs,
				QueueWait: p.queueWait.Snapshot(),
			}
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool {
		if s.Events[i].Column != s.Events[j].Column {
			return s.Events[i].Column < s.Events[j].Column
		}
		return s.Events[i].Block < s.Events[j].Block
	})
	return s
}

func copyCounts(m map[string]map[string]int) map[string]map[string]int {
	out := make(map[string]map[string]int, len(m))
	for k, mm := range m {
		c := make(map[string]int, len(mm))
		for k2, v := range mm {
			c[k2] = v
		}
		out[k] = c
	}
	return out
}

// Ratio returns the overall achieved compression factor.
func (s *Snapshot) Ratio() float64 {
	if s.OutputBytes == 0 {
		return 0
	}
	return float64(s.InputBytes) / float64(s.OutputBytes)
}

// SampleFraction returns the share of compression time spent on scheme
// selection (statistics + sampling + trial encodes), the §3.1 overhead.
func (s *Snapshot) SampleFraction() float64 {
	if s.CompressNanos == 0 {
		return 0
	}
	return float64(s.SampleNanos) / float64(s.CompressNanos)
}

// Report renders the snapshot as a multi-section text table: totals,
// scheme-pick frequencies per type (root and all cascade levels), the
// cascade-depth distribution, and the ratio histogram.
func (s *Snapshot) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "blocks: %d\n", s.Blocks)
	fmt.Fprintf(&b, "bytes: %d -> %d (%.2fx)\n", s.InputBytes, s.OutputBytes, s.Ratio())
	if s.CompressNanos > 0 {
		fmt.Fprintf(&b, "compress time: %v (%.1f%% scheme selection)\n",
			time.Duration(s.CompressNanos), 100*s.SampleFraction())
	}
	if s.CompressLatency.Count > 0 {
		fmt.Fprintf(&b, "compress per block: %s\n", s.CompressLatency)
	}
	if s.DecodeBlocks > 0 {
		fmt.Fprintf(&b, "decoded: %d blocks, %d values, %d compressed bytes in %v\n",
			s.DecodeBlocks, s.DecodeValues, s.DecodeBytes, time.Duration(s.DecodeNanos))
	}
	if s.DecodeLatency.Count > 0 {
		fmt.Fprintf(&b, "decode per block: %s\n", s.DecodeLatency)
	}
	if s.CorruptBlocks > 0 {
		fmt.Fprintf(&b, "corrupt blocks detected: %d\n", s.CorruptBlocks)
	}
	if len(s.Parallel) > 0 {
		b.WriteString("parallel paths:\n")
		paths := make([]string, 0, len(s.Parallel))
		for p := range s.Parallel {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			st := s.Parallel[p]
			fmt.Fprintf(&b, "  %-18s workers=%d runs=%d", p, st.Workers, st.Runs)
			if st.QueueWait.Count > 0 {
				fmt.Fprintf(&b, " queue-wait %s", st.QueueWait)
			}
			b.WriteByte('\n')
		}
	}
	writePickTable(&b, "root scheme picks (blocks)", s.RootPicks)
	writePickTable(&b, "cascade scheme picks (streams, all levels)", s.CascadePicks)
	if len(s.DepthHist) > 0 {
		b.WriteString("cascade depth used:\n")
		for _, d := range sortedIntKeys(s.DepthHist) {
			fmt.Fprintf(&b, "  %d: %d\n", d, s.DepthHist[d])
		}
	}
	if s.RatioHist.Total() > 0 {
		b.WriteString("achieved ratio histogram:\n")
		for i, c := range s.RatioHist.Counts {
			if c == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-8s %d\n", s.RatioHist.BucketLabel(i), c)
		}
	}
	return b.String()
}

func writePickTable(b *strings.Builder, title string, m map[string]map[string]int) {
	if len(m) == 0 {
		return
	}
	fmt.Fprintf(b, "%s:\n", title)
	for _, typ := range sortedKeys(m) {
		picks := m[typ]
		total := 0
		for _, c := range picks {
			total += c
		}
		fmt.Fprintf(b, "  %s:\n", typ)
		for _, scheme := range sortedByCount(picks) {
			c := picks[scheme]
			fmt.Fprintf(b, "    %-14s %6d (%5.1f%%)\n", scheme, c, 100*float64(c)/float64(total))
		}
	}
}

func sortedKeys(m map[string]map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedIntKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sortedByCount orders scheme names by descending count, then name.
func sortedByCount(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}
