package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.RecordBlock(BlockEvent{Column: "x"})
	r.Reset()
	s := r.Snapshot()
	if s.Blocks != 0 || len(s.Events) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", s)
	}
}

func TestAggregation(t *testing.T) {
	r := New()
	r.RecordBlock(BlockEvent{
		Column: "a", Block: 0, Type: "integer", Rows: 10,
		Scheme: "RLE", EstimatedRatio: 5, ActualRatio: 4.5,
		InputBytes: 40, OutputBytes: 9, CascadeDepth: 2,
		SampleNanos: 100, CompressNanos: 400,
		Levels: []Level{
			{Depth: 0, Kind: "int", Scheme: "RLE"},
			{Depth: 1, Kind: "int", Scheme: "OneValue"},
			{Depth: 1, Kind: "int", Scheme: "FastBP"},
		},
	})
	r.RecordBlock(BlockEvent{
		Column: "a", Block: 1, Type: "integer", Rows: 10,
		Scheme: "FastBP", EstimatedRatio: 2, ActualRatio: 1.8,
		InputBytes: 40, OutputBytes: 22, CascadeDepth: 1,
		SampleNanos: 50, CompressNanos: 100,
		Levels: []Level{{Depth: 0, Kind: "int", Scheme: "FastBP"}},
	})
	s := r.Snapshot()
	if s.Blocks != 2 {
		t.Fatalf("blocks = %d, want 2", s.Blocks)
	}
	if s.InputBytes != 80 || s.OutputBytes != 31 {
		t.Fatalf("bytes = %d -> %d, want 80 -> 31", s.InputBytes, s.OutputBytes)
	}
	if got := s.RootPicks["integer"]["RLE"]; got != 1 {
		t.Fatalf("root RLE picks = %d, want 1", got)
	}
	if got := s.CascadePicks["int"]["FastBP"]; got != 2 {
		t.Fatalf("cascade FastBP picks = %d, want 2", got)
	}
	if got := s.DepthHist[2]; got != 1 {
		t.Fatalf("depth-2 blocks = %d, want 1", got)
	}
	// 4.5 lands in [4,8), 1.8 in [1,2).
	if s.RatioHist.Counts[1] != 1 || s.RatioHist.Counts[3] != 1 {
		t.Fatalf("ratio histogram = %v", s.RatioHist.Counts)
	}
	if s.SampleFraction() != 150.0/500.0 {
		t.Fatalf("sample fraction = %v", s.SampleFraction())
	}
	rep := s.Report()
	for _, want := range []string{"blocks: 2", "RLE", "FastBP", "cascade depth used"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestSnapshotEventOrderDeterministic(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.RecordBlock(BlockEvent{Column: "c", Block: i, ActualRatio: 1})
		}(i)
	}
	wg.Wait()
	s := r.Snapshot()
	for i, ev := range s.Events {
		if ev.Block != i {
			t.Fatalf("event %d has block %d; snapshot not sorted", i, ev.Block)
		}
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.RecordBlock(BlockEvent{Column: "a", ActualRatio: 2})
	r.Reset()
	if s := r.Snapshot(); s.Blocks != 0 || len(s.Events) != 0 {
		t.Fatalf("reset left data: %+v", s)
	}
}

func TestParallelPathStats(t *testing.T) {
	var nilRec *Recorder
	nilRec.RecordWorkers("x", 4)
	nilRec.ObserveQueueWait("x", time.Millisecond)

	r := New()
	r.RecordWorkers("decompress_chunk", 4)
	r.RecordWorkers("decompress_chunk", 8)
	r.RecordWorkers("scan", 2)
	r.ObserveQueueWait("decompress_chunk", 5*time.Microsecond)
	r.ObserveQueueWait("decompress_chunk", 9*time.Microsecond)
	s := r.Snapshot()
	dc, ok := s.Parallel["decompress_chunk"]
	if !ok {
		t.Fatalf("snapshot missing decompress_chunk path: %+v", s.Parallel)
	}
	if dc.Workers != 8 || dc.Runs != 2 {
		t.Fatalf("decompress_chunk stats = workers %d runs %d, want 8/2", dc.Workers, dc.Runs)
	}
	if dc.QueueWait.Count != 2 {
		t.Fatalf("queue-wait count = %d, want 2", dc.QueueWait.Count)
	}
	if sc := s.Parallel["scan"]; sc.Workers != 2 || sc.Runs != 1 {
		t.Fatalf("scan stats = %+v", sc)
	}
	rep := s.Report()
	for _, want := range []string{"parallel paths:", "decompress_chunk", "workers=8 runs=2", "queue-wait"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	r.Reset()
	if s := r.Snapshot(); len(s.Parallel) != 0 {
		t.Fatalf("reset left parallel stats: %+v", s.Parallel)
	}
}

func TestParallelPathConcurrentObserve(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.RecordWorkers("p", 4)
			for j := 0; j < 100; j++ {
				r.ObserveQueueWait("p", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Parallel["p"].QueueWait.Count; got != 1600 {
		t.Fatalf("queue-wait count = %d, want 1600", got)
	}
	if got := s.Parallel["p"].Runs; got != 16 {
		t.Fatalf("runs = %d, want 16", got)
	}
}
