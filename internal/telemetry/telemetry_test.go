package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.RecordBlock(BlockEvent{Column: "x"})
	r.Reset()
	s := r.Snapshot()
	if s.Blocks != 0 || len(s.Events) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", s)
	}
}

func TestAggregation(t *testing.T) {
	r := New()
	r.RecordBlock(BlockEvent{
		Column: "a", Block: 0, Type: "integer", Rows: 10,
		Scheme: "RLE", EstimatedRatio: 5, ActualRatio: 4.5,
		InputBytes: 40, OutputBytes: 9, CascadeDepth: 2,
		SampleNanos: 100, CompressNanos: 400,
		Levels: []Level{
			{Depth: 0, Kind: "int", Scheme: "RLE"},
			{Depth: 1, Kind: "int", Scheme: "OneValue"},
			{Depth: 1, Kind: "int", Scheme: "FastBP"},
		},
	})
	r.RecordBlock(BlockEvent{
		Column: "a", Block: 1, Type: "integer", Rows: 10,
		Scheme: "FastBP", EstimatedRatio: 2, ActualRatio: 1.8,
		InputBytes: 40, OutputBytes: 22, CascadeDepth: 1,
		SampleNanos: 50, CompressNanos: 100,
		Levels: []Level{{Depth: 0, Kind: "int", Scheme: "FastBP"}},
	})
	s := r.Snapshot()
	if s.Blocks != 2 {
		t.Fatalf("blocks = %d, want 2", s.Blocks)
	}
	if s.InputBytes != 80 || s.OutputBytes != 31 {
		t.Fatalf("bytes = %d -> %d, want 80 -> 31", s.InputBytes, s.OutputBytes)
	}
	if got := s.RootPicks["integer"]["RLE"]; got != 1 {
		t.Fatalf("root RLE picks = %d, want 1", got)
	}
	if got := s.CascadePicks["int"]["FastBP"]; got != 2 {
		t.Fatalf("cascade FastBP picks = %d, want 2", got)
	}
	if got := s.DepthHist[2]; got != 1 {
		t.Fatalf("depth-2 blocks = %d, want 1", got)
	}
	// 4.5 lands in [4,8), 1.8 in [1,2).
	if s.RatioHist.Counts[1] != 1 || s.RatioHist.Counts[3] != 1 {
		t.Fatalf("ratio histogram = %v", s.RatioHist.Counts)
	}
	if s.SampleFraction() != 150.0/500.0 {
		t.Fatalf("sample fraction = %v", s.SampleFraction())
	}
	rep := s.Report()
	for _, want := range []string{"blocks: 2", "RLE", "FastBP", "cascade depth used"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestSnapshotEventOrderDeterministic(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.RecordBlock(BlockEvent{Column: "c", Block: i, ActualRatio: 1})
		}(i)
	}
	wg.Wait()
	s := r.Snapshot()
	for i, ev := range s.Events {
		if ev.Block != i {
			t.Fatalf("event %d has block %d; snapshot not sorted", i, ev.Block)
		}
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.RecordBlock(BlockEvent{Column: "a", ActualRatio: 2})
	r.Reset()
	if s := r.Snapshot(); s.Blocks != 0 || len(s.Events) != 0 {
		t.Fatalf("reset left data: %+v", s)
	}
}
