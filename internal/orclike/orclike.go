// Package orclike implements the ORC-like baseline format of the
// evaluation: stripes instead of rowgroups, byte-oriented RLEv1 integer
// encoding with varint values and delta runs, a dictionary-threshold rule
// for strings (dictionary_key_size_threshold = 0.8, the Hive default the
// paper configures), and stream-level general-purpose compression. Its
// per-value varint decode work is what makes ORC decompression measurably
// slower than Parquet's in §6.6 — a property of the format, reproduced
// here, not simulated.
package orclike

import (
	"encoding/binary"
	"errors"
	"math"

	"btrblocks"
	"btrblocks/coldata"
	"btrblocks/internal/codec"
)

// DefaultStripeSize is the rows-per-stripe default.
const DefaultStripeSize = 1 << 16

// DictKeySizeThreshold mirrors ORC's dictionary_key_size_threshold=0.8:
// dictionary encoding is used only when distinct/rows <= threshold.
const DictKeySizeThreshold = 0.8

// ErrCorrupt is returned for malformed files.
var ErrCorrupt = errors.New("orclike: corrupt file")

const (
	encDirect = 0
	encDict   = 1
)

// Options configures the writer.
type Options struct {
	StripeSize int
	Codec      codec.Kind
}

func (o *Options) stripe() int {
	if o == nil || o.StripeSize <= 0 {
		return DefaultStripeSize
	}
	return o.StripeSize
}

func (o *Options) codec() codec.Kind {
	if o == nil {
		return codec.None
	}
	return o.Codec
}

// CompressColumn writes one column as stripes:
// codec:u8 type:u8 stripeCount:u32, then per stripe rows:u32 len:u32 body.
func CompressColumn(col btrblocks.Column, opt *Options) ([]byte, error) {
	ss := opt.stripe()
	k := opt.codec()
	n := col.Len()
	var out []byte
	out = append(out, byte(k), byte(col.Type))
	stripes := (n + ss - 1) / ss
	out = binary.LittleEndian.AppendUint32(out, uint32(stripes))
	for s := 0; s < stripes; s++ {
		lo := s * ss
		hi := lo + ss
		if hi > n {
			hi = n
		}
		raw := encodeStripe(&col, lo, hi)
		comp, err := codec.Encode(nil, raw, k)
		if err != nil {
			return nil, err
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(hi-lo))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(comp)))
		out = append(out, comp...)
	}
	return out, nil
}

func encodeStripe(col *btrblocks.Column, lo, hi int) []byte {
	switch col.Type {
	case btrblocks.TypeInt:
		return appendRLEv1(nil, col.Ints[lo:hi])
	case btrblocks.TypeDouble:
		var out []byte
		for _, v := range col.Doubles[lo:hi] {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
		return out
	case btrblocks.TypeString:
		return encodeStringStripe(col.Strings.Slice(lo, hi))
	}
	return nil
}

// --- RLEv1 integers: delta runs of 3..130 values or literal groups ---

// appendRLEv1 writes ORC's RLE version 1: a header byte h where
// 0 <= h <= 127 introduces a run of h+3 values (varint base + signed
// delta byte), and -128 <= h <= -1 (two's complement) introduces -h
// literal zigzag-varint values.
func appendRLEv1(dst []byte, src []int32) []byte {
	i := 0
	for i < len(src) {
		// probe for a delta run (constant difference, length >= 3)
		runLen := 1
		var delta int64
		if i+1 < len(src) {
			delta = int64(src[i+1]) - int64(src[i])
			if delta >= -128 && delta <= 127 {
				runLen = 2
				for i+runLen < len(src) && runLen < 130 &&
					int64(src[i+runLen])-int64(src[i+runLen-1]) == delta {
					runLen++
				}
			}
		}
		if runLen >= 3 {
			dst = append(dst, byte(runLen-3))
			dst = append(dst, byte(int8(delta)))
			dst = binary.AppendVarint(dst, int64(src[i]))
			i += runLen
			continue
		}
		// literal group: scan forward until a run of >= 3 starts
		start := i
		for i < len(src) && i-start < 128 {
			if i+2 < len(src) {
				d1 := int64(src[i+1]) - int64(src[i])
				d2 := int64(src[i+2]) - int64(src[i+1])
				if d1 == d2 && d1 >= -128 && d1 <= 127 {
					break
				}
			}
			i++
		}
		count := i - start
		if count == 0 { // ended exactly at a run start edge case
			count = 1
			i++
		}
		dst = append(dst, byte(int8(-count)))
		for j := start; j < start+count; j++ {
			dst = binary.AppendVarint(dst, int64(src[j]))
		}
	}
	return dst
}

// decodeRLEv1 reads n values, returning them and bytes consumed.
func decodeRLEv1(src []byte, n int) ([]int32, int, error) {
	out := make([]int32, 0, n)
	pos := 0
	for len(out) < n {
		if pos >= len(src) {
			return nil, 0, ErrCorrupt
		}
		h := int8(src[pos])
		pos++
		if h >= 0 {
			runLen := int(h) + 3
			if pos >= len(src) {
				return nil, 0, ErrCorrupt
			}
			delta := int64(int8(src[pos]))
			pos++
			base, read := binary.Varint(src[pos:])
			if read <= 0 {
				return nil, 0, ErrCorrupt
			}
			pos += read
			if len(out)+runLen > n {
				return nil, 0, ErrCorrupt
			}
			v := base
			for k := 0; k < runLen; k++ {
				if v < math.MinInt32 || v > math.MaxInt32 {
					return nil, 0, ErrCorrupt
				}
				out = append(out, int32(v))
				v += delta
			}
			continue
		}
		count := -int(h) // widen before negating: int8(-128) must become 128
		if count <= 0 || len(out)+count > n {
			return nil, 0, ErrCorrupt
		}
		for k := 0; k < count; k++ {
			v, read := binary.Varint(src[pos:])
			if read <= 0 || v < math.MinInt32 || v > math.MaxInt32 {
				return nil, 0, ErrCorrupt
			}
			pos += read
			out = append(out, int32(v))
		}
	}
	return out, pos, nil
}

// --- string stripes ---

func encodeStringStripe(src coldata.Strings) []byte {
	n := src.Len()
	seen := make(map[string]int32, 1024)
	var dict []string
	for i := 0; i < n; i++ {
		v := src.At(i)
		if _, ok := seen[v]; !ok {
			seen[v] = int32(len(dict))
			dict = append(dict, v)
		}
	}
	if n == 0 || float64(len(dict))/float64(n) > DictKeySizeThreshold {
		// DIRECT: lengths as RLEv1 + concatenated bytes
		out := []byte{encDirect}
		lengths := make([]int32, n)
		for i := range lengths {
			lengths[i] = int32(src.LenAt(i))
		}
		out = appendRLEv1(out, lengths)
		return append(out, src.Data...)
	}
	// DICTIONARY: dict lengths RLEv1 + dict bytes + codes RLEv1
	out := []byte{encDict}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(dict)))
	lengths := make([]int32, len(dict))
	total := 0
	for i, v := range dict {
		lengths[i] = int32(len(v))
		total += len(v)
	}
	out = appendRLEv1(out, lengths)
	for _, v := range dict {
		out = append(out, v...)
	}
	_ = total
	codes := make([]int32, n)
	for i := 0; i < n; i++ {
		codes[i] = seen[src.At(i)]
	}
	return appendRLEv1(out, codes)
}

// DecompressColumn reads a column written by CompressColumn.
func DecompressColumn(data []byte, name string) (btrblocks.Column, error) {
	var col btrblocks.Column
	col.Name = name
	if len(data) < 6 {
		return col, ErrCorrupt
	}
	k := codec.Kind(data[0])
	col.Type = btrblocks.Type(data[1])
	if col.Type > btrblocks.TypeString {
		return col, ErrCorrupt
	}
	stripes := int(binary.LittleEndian.Uint32(data[2:]))
	pos := 6
	for s := 0; s < stripes; s++ {
		if len(data) < pos+8 {
			return col, ErrCorrupt
		}
		rows := int(binary.LittleEndian.Uint32(data[pos:]))
		bodyLen := int(binary.LittleEndian.Uint32(data[pos+4:]))
		pos += 8
		if bodyLen < 0 || len(data) < pos+bodyLen {
			return col, ErrCorrupt
		}
		raw, err := codec.Decode(nil, data[pos:pos+bodyLen], k)
		if err != nil {
			return col, ErrCorrupt
		}
		pos += bodyLen
		if err := decodeStripe(&col, raw, rows); err != nil {
			return col, err
		}
	}
	if pos != len(data) {
		return col, ErrCorrupt
	}
	return col, nil
}

func decodeStripe(col *btrblocks.Column, raw []byte, rows int) error {
	switch col.Type {
	case btrblocks.TypeInt:
		vals, _, err := decodeRLEv1(raw, rows)
		if err != nil {
			return err
		}
		col.Ints = append(col.Ints, vals...)
		return nil
	case btrblocks.TypeDouble:
		if len(raw) < 8*rows {
			return ErrCorrupt
		}
		for i := 0; i < rows; i++ {
			col.Doubles = append(col.Doubles, math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:])))
		}
		return nil
	case btrblocks.TypeString:
		return decodeStringStripe(col, raw, rows)
	}
	return ErrCorrupt
}

func decodeStringStripe(col *btrblocks.Column, raw []byte, rows int) error {
	if len(raw) < 1 {
		return ErrCorrupt
	}
	enc := raw[0]
	body := raw[1:]
	switch enc {
	case encDirect:
		lengths, used, err := decodeRLEv1(body, rows)
		if err != nil {
			return err
		}
		pos := used
		for _, l := range lengths {
			if l < 0 || len(body) < pos+int(l) {
				return ErrCorrupt
			}
			col.Strings = col.Strings.AppendBytes(body[pos : pos+int(l)])
			pos += int(l)
		}
		return nil
	case encDict:
		if len(body) < 4 {
			return ErrCorrupt
		}
		dictN := int(binary.LittleEndian.Uint32(body))
		if dictN < 0 || dictN > rows {
			return ErrCorrupt
		}
		pos := 4
		lengths, used, err := decodeRLEv1(body[pos:], dictN)
		if err != nil {
			return err
		}
		pos += used
		dict := make([][]byte, dictN)
		for i, l := range lengths {
			if l < 0 || len(body) < pos+int(l) {
				return ErrCorrupt
			}
			dict[i] = body[pos : pos+int(l)]
			pos += int(l)
		}
		codes, _, err := decodeRLEv1(body[pos:], rows)
		if err != nil {
			return err
		}
		for _, c := range codes {
			if c < 0 || int(c) >= dictN {
				return ErrCorrupt
			}
			col.Strings = col.Strings.AppendBytes(dict[c])
		}
		return nil
	}
	return ErrCorrupt
}
