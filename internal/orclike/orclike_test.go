package orclike

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"btrblocks"
	"btrblocks/internal/codec"
)

func roundTrip(t *testing.T, col btrblocks.Column, opt *Options) int {
	t.Helper()
	data, err := CompressColumn(col, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressColumn(data, col.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != col.Len() || got.Type != col.Type {
		t.Fatalf("shape mismatch")
	}
	switch col.Type {
	case btrblocks.TypeInt:
		for i := range col.Ints {
			if got.Ints[i] != col.Ints[i] {
				t.Fatalf("int %d: %d != %d", i, got.Ints[i], col.Ints[i])
			}
		}
	case btrblocks.TypeDouble:
		for i := range col.Doubles {
			if math.Float64bits(got.Doubles[i]) != math.Float64bits(col.Doubles[i]) {
				t.Fatalf("double %d mismatch", i)
			}
		}
	case btrblocks.TypeString:
		if !got.Strings.Equal(col.Strings) {
			t.Fatal("string mismatch")
		}
	}
	return len(data)
}

func TestRLEv1DeltaRuns(t *testing.T) {
	// ascending sequences are RLEv1's best case (delta runs)
	n := 100000
	ints := make([]int32, n)
	for i := range ints {
		ints[i] = int32(i)
	}
	size := roundTrip(t, btrblocks.IntColumn("seq", ints), &Options{})
	if size > n/10 {
		t.Fatalf("sequential ints should delta-run compress, got %d bytes", size)
	}
}

func TestRLEv1Literals(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ints := make([]int32, 50001)
	for i := range ints {
		ints[i] = rng.Int31() - (1 << 30)
	}
	roundTrip(t, btrblocks.IntColumn("noise", ints), &Options{})
}

func TestRLEv1MixedRunsAndLiterals(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var ints []int32
	for len(ints) < 80000 {
		switch rng.Intn(3) {
		case 0: // constant run
			v := int32(rng.Intn(1000))
			for k := 0; k < 5+rng.Intn(300); k++ {
				ints = append(ints, v)
			}
		case 1: // delta run
			v := int32(rng.Intn(1000000))
			d := int32(rng.Intn(20) - 10)
			for k := 0; k < 5+rng.Intn(100); k++ {
				ints = append(ints, v)
				v += d
			}
		default: // noise
			for k := 0; k < rng.Intn(50); k++ {
				ints = append(ints, rng.Int31())
			}
		}
	}
	roundTrip(t, btrblocks.IntColumn("mix", ints), &Options{})
}

func TestStringDictionaryThreshold(t *testing.T) {
	// low-cardinality: dictionary stripe
	strs := make([]string, 65536)
	for i := range strs {
		strs[i] = fmt.Sprintf("city-%d", i%40)
	}
	size := roundTrip(t, btrblocks.StringColumn("city", strs), &Options{})
	if raw := 65536 * 7; size > raw/3 {
		t.Fatalf("dictionary stripe too large: %d", size)
	}
	// high-cardinality: must go direct (threshold 0.8)
	for i := range strs {
		strs[i] = fmt.Sprintf("unique-%d", i)
	}
	roundTrip(t, btrblocks.StringColumn("unique", strs), &Options{})
}

func TestDoubleAndCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	doubles := make([]float64, 150000)
	for i := range doubles {
		doubles[i] = float64(rng.Intn(10000)) / 100
	}
	col := btrblocks.DoubleColumn("price", doubles)
	for _, k := range []codec.Kind{codec.None, codec.Snappy, codec.LZ4, codec.Heavy} {
		roundTrip(t, col, &Options{Codec: k})
	}
}

func TestCorrupt(t *testing.T) {
	data, err := CompressColumn(btrblocks.IntColumn("x", []int32{9, 9, 9, 9, 1, 5}), &Options{})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecompressColumn(data[:cut], "x"); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestQuick(t *testing.T) {
	opt := &Options{StripeSize: 64, Codec: codec.LZ4}
	f := func(ints []int32, strs []string) bool {
		data, err := CompressColumn(btrblocks.IntColumn("i", ints), opt)
		if err != nil {
			return false
		}
		got, err := DecompressColumn(data, "i")
		if err != nil || got.Len() != len(ints) {
			return false
		}
		for i := range ints {
			if got.Ints[i] != ints[i] {
				return false
			}
		}
		sc := btrblocks.StringColumn("s", strs)
		data, err = CompressColumn(sc, opt)
		if err != nil {
			return false
		}
		gs, err := DecompressColumn(data, "s")
		return err == nil && gs.Strings.Equal(sc.Strings)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
