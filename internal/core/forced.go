package core

import (
	"math"

	"btrblocks/coldata"
)

// CompressIntAs forces a specific root scheme (sub-streams still go
// through normal selection). Returns nil if the scheme is not applicable
// to the data (e.g. OneValue on a multi-value block). Used by the
// sampling-accuracy experiments, which need the exhaustive-best scheme as
// ground truth.
func CompressIntAs(dst []byte, src []int32, code Code, cfg *Config) []byte {
	c := cfg.normalized()
	if !intApplicable(code, src) {
		return nil
	}
	return encodeIntAs(dst, src, code, &c, c.MaxCascadeDepth, c.rng())
}

// CompressDoubleAs is CompressIntAs for doubles.
func CompressDoubleAs(dst []byte, src []float64, code Code, cfg *Config) []byte {
	c := cfg.normalized()
	if !doubleApplicable(code, src) {
		return nil
	}
	return encodeDoubleAs(dst, src, code, &c, c.MaxCascadeDepth, c.rng())
}

// CompressStringAs is CompressIntAs for strings.
func CompressStringAs(dst []byte, src coldata.Strings, code Code, cfg *Config) []byte {
	c := cfg.normalized()
	if !stringApplicable(code, src) {
		return nil
	}
	return encodeStringAs(dst, src, code, &c, c.MaxCascadeDepth, c.rng())
}

// IntSchemes lists every root scheme applicable to integer blocks.
func IntSchemes() []Code { return append([]Code{CodeUncompressed}, intPoolOrder...) }

// DoubleSchemes lists every root scheme applicable to double blocks.
func DoubleSchemes() []Code { return append([]Code{CodeUncompressed}, doublePoolOrder...) }

// StringSchemes lists every root scheme applicable to string blocks.
func StringSchemes() []Code { return append([]Code{CodeUncompressed}, stringPoolOrder...) }

func intApplicable(code Code, src []int32) bool {
	if len(src) == 0 {
		return code == CodeUncompressed
	}
	switch code {
	case CodeOneValue:
		for _, v := range src {
			if v != src[0] {
				return false
			}
		}
	case CodeRLE, CodeDict, CodeFrequency, CodeFastBP, CodeFastPFOR, CodeUncompressed:
	default:
		return false
	}
	return true
}

func doubleApplicable(code Code, src []float64) bool {
	if len(src) == 0 {
		return code == CodeUncompressed
	}
	switch code {
	case CodeOneValue:
		first := math.Float64bits(src[0])
		for _, v := range src {
			if math.Float64bits(v) != first {
				return false
			}
		}
	case CodeRLE, CodeDict, CodeFrequency, CodePDE, CodeUncompressed:
	default:
		return false
	}
	return true
}

func stringApplicable(code Code, src coldata.Strings) bool {
	if src.Len() == 0 {
		return code == CodeUncompressed
	}
	switch code {
	case CodeOneValue:
		first := src.At(0)
		for i := 1; i < src.Len(); i++ {
			if src.At(i) != first {
				return false
			}
		}
	case CodeDict, CodeFSST, CodeUncompressed:
	default:
		return false
	}
	return true
}
