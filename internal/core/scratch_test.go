package core

import (
	"math/rand"
	"testing"
)

// scratchTestStream builds a compressed int stream that exercises the
// arena-fed decoders (RLE and Dict cascade temporaries).
func scratchTestStream(t *testing.T) ([]byte, []int32) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	src := make([]int32, 40000)
	v := int32(0)
	for i := range src {
		if rng.Intn(20) == 0 {
			v = int32(rng.Intn(50))
		}
		src[i] = v
	}
	enc := CompressInt(nil, src, DefaultConfig())
	return enc, src
}

// TestScratchEquivalence pins that decoding with an arena is
// bit-identical to decoding without one, including when the same arena
// is reused across many decodes (the per-worker steady state).
func TestScratchEquivalence(t *testing.T) {
	enc, src := scratchTestStream(t)
	plain := DefaultConfig()
	withArena := DefaultConfig()
	withArena.Scratch = new(Scratch)
	want, _, err := DecompressInt(nil, enc, plain)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		got, _, err := DecompressInt(nil, enc, withArena)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d values, want %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d value %d: got %d want %d (src %d)", round, i, got[i], want[i], src[i])
			}
		}
	}
}

// TestScratchNilSafe covers the nil-receiver contract: a nil *Scratch
// must behave as "no arena" on every accessor.
func TestScratchNilSafe(t *testing.T) {
	var s *Scratch
	if b := s.getInt32(); b != nil {
		t.Fatal("nil scratch returned a buffer")
	}
	s.putInt32(make([]int32, 4))
	if b := s.getInt64(); b != nil {
		t.Fatal("nil scratch returned a buffer")
	}
	s.putInt64(make([]int64, 4))
	if b := s.getFloat64(); b != nil {
		t.Fatal("nil scratch returned a buffer")
	}
	s.putFloat64(make([]float64, 4))
}

// TestScratchReuse checks the free-list mechanics: a put buffer comes
// back with its capacity, the list is LIFO, and the size cap holds.
func TestScratchReuse(t *testing.T) {
	s := new(Scratch)
	b := append(s.getInt32(), make([]int32, 100)...)
	s.putInt32(b)
	got := s.getInt32()
	if cap(got) < 100 {
		t.Fatalf("recycled capacity %d, want >= 100", cap(got))
	}
	if len(got) != 0 {
		t.Fatalf("recycled length %d, want 0", len(got))
	}
	if again := s.getInt32(); again != nil {
		t.Fatal("empty free list returned a buffer")
	}
	for i := 0; i < 2*maxScratchSlices; i++ {
		s.putInt32(make([]int32, 8))
	}
	if len(s.i32) > maxScratchSlices {
		t.Fatalf("free list grew to %d, cap is %d", len(s.i32), maxScratchSlices)
	}
	// zero-capacity buffers are not worth keeping
	empty := new(Scratch)
	empty.putInt32(nil)
	if len(empty.i32) != 0 {
		t.Fatal("nil buffer was retained")
	}
}

// BenchmarkDecompressIntScratch measures the arena's effect on the
// end-to-end int decode path (allocations and throughput).
func BenchmarkDecompressIntScratch(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	src := make([]int32, 65536)
	v := int32(0)
	for i := range src {
		if rng.Intn(20) == 0 {
			v = int32(rng.Intn(50))
		}
		src[i] = v
	}
	enc := CompressInt(nil, src, DefaultConfig())
	for _, tc := range []struct {
		name string
		scr  *Scratch
	}{{"no-arena", nil}, {"arena", new(Scratch)}} {
		b.Run(tc.name, func(b *testing.B) {
			c := DefaultConfig()
			c.Scratch = tc.scr
			out := make([]int32, 0, len(src))
			b.SetBytes(int64(len(src) * 4))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				if out, _, err = DecompressInt(out[:0], enc, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
