package core

import (
	"encoding/binary"
	"math/rand"
	"slices"
	"time"

	"btrblocks/internal/bitpack"
	"btrblocks/internal/roaring"
	"btrblocks/internal/sample"
	"btrblocks/internal/stats"
)

// int64 columns (timestamps, surrogate keys) get the same scheme pool as
// int32 minus FastPFOR (FOR+bit-packing with per-128-block widths already
// absorbs the outlier cost at 64-bit widths). Sub-streams — RLE lengths
// and dictionary codes — are int32 and re-enter the 32-bit cascade.
var int64PoolOrder = []Code{CodeOneValue, CodeFastBP, CodeRLE, CodeDict, CodeFrequency}

// CompressInt64 compresses a block of int64 values into a self-describing
// stream.
func CompressInt64(dst []byte, src []int64, cfg *Config) []byte {
	c := cfg.normalized()
	return compressInt64(dst, src, &c, c.MaxCascadeDepth, c.rng())
}

// ChooseInt64 reports the scheme the selection algorithm picks for src.
func ChooseInt64(src []int64, cfg *Config) (Code, float64) {
	c := cfg.normalized()
	code, est, _ := pickInt64(src, &c, c.MaxCascadeDepth, c.rng())
	return code, est
}

// EstimateOnlyInt64 mirrors EstimateOnlyInt for int64 blocks.
func EstimateOnlyInt64(src []int64, cfg *Config) {
	c := cfg.normalized()
	pickInt64(src, &c, c.MaxCascadeDepth, c.rng())
}

func compressInt64(dst []byte, src []int64, cfg *Config, depth int, rng *rand.Rand) []byte {
	if cfg.OnDecision == nil {
		code, _, _ := pickInt64(src, cfg, depth, rng)
		return encodeInt64As(dst, src, code, cfg, depth, rng)
	}
	t0 := time.Now()
	code, est, cands := pickInt64(src, cfg, depth, rng)
	pickNanos := time.Since(t0).Nanoseconds()
	before := len(dst)
	dst = encodeInt64As(dst, src, code, cfg, depth, rng)
	cfg.OnDecision(Decision{
		Kind: KindInt64, Level: cfg.MaxCascadeDepth - depth, Code: code,
		Values: len(src), InputBytes: 8 * len(src), OutputBytes: len(dst) - before,
		EstimatedRatio: est, PickNanos: pickNanos, Candidates: cands,
	})
	return dst
}

func pickInt64(src []int64, cfg *Config, depth int, rng *rand.Rand) (Code, float64, []CandidateEstimate) {
	if depth <= 0 || len(src) == 0 {
		return CodeUncompressed, 1, nil
	}
	collect := cfg.OnDecision != nil
	cfg = quiet(cfg)
	st := stats.ComputeInt64(src)
	if st.Distinct == 1 && cfg.intEnabled(CodeOneValue) {
		est := float64(len(src)*8) / 13
		var cands []CandidateEstimate
		if collect {
			cands = []CandidateEstimate{{Code: CodeOneValue, EstimatedRatio: est}}
		}
		return CodeOneValue, est, cands
	}
	smp := sample.Ints64(src, cfg.Sample, rng)
	rawBytes := float64(len(smp) * 8)
	best, bestRatio := CodeUncompressed, 1.0
	var cands []CandidateEstimate
	if collect {
		cands = append(cands, CandidateEstimate{Code: CodeUncompressed, EstimatedRatio: 1, SampleBytes: 5 + 8*len(smp)})
	}
	for _, code := range int64PoolOrder {
		if !cfg.intEnabled(code) || !int64Viable(code, &st) {
			continue
		}
		enc := encodeInt64As(nil, smp, code, cfg, depth, rng)
		ratio := rawBytes / float64(len(enc))
		if collect {
			cands = append(cands, CandidateEstimate{Code: code, EstimatedRatio: ratio, SampleBytes: len(enc)})
		}
		if ratio > bestRatio {
			best, bestRatio = code, ratio
		}
	}
	return best, bestRatio, cands
}

func int64Viable(code Code, st *stats.Int64) bool {
	switch code {
	case CodeOneValue:
		return st.Distinct == 1
	case CodeRLE:
		return st.AvgRunLen >= 2
	case CodeDict:
		return st.Distinct > 1 && st.Distinct < st.N
	case CodeFrequency:
		return st.UniqueFrac <= 0.5 && st.TopCount*2 >= st.N
	case CodeFastBP:
		return true
	default:
		return false
	}
}

func encodeInt64As(dst []byte, src []int64, code Code, cfg *Config, depth int, rng *rand.Rand) []byte {
	dst = append(dst, byte(code))
	switch code {
	case CodeUncompressed:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
		for _, v := range src {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
		return dst
	case CodeOneValue:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
		return binary.LittleEndian.AppendUint64(dst, uint64(src[0]))
	case CodeRLE:
		values, lengths := runsOfInt64s(src)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(values)))
		dst = compressInt64(dst, values, cfg, depth-1, rng)
		return compressInt(dst, lengths, cfg, depth-1, rng)
	case CodeDict:
		dict, codes := buildInt64Dict(src)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(dict)))
		dst = compressInt64(dst, dict, cfg, depth-1, rng)
		return compressInt(dst, codes, cfg, depth-1, rng)
	case CodeFrequency:
		return encodeInt64Frequency(dst, src, cfg, depth, rng)
	case CodeFastBP:
		return bitpack.EncodeFOR64(dst, src)
	}
	panic("unreachable scheme code " + code.String())
}

func runsOfInt64s(src []int64) (values []int64, lengths []int32) {
	if len(src) == 0 {
		return nil, nil
	}
	cur, n := src[0], int32(0)
	for _, v := range src {
		if v == cur {
			n++
			continue
		}
		values = append(values, cur)
		lengths = append(lengths, n)
		cur, n = v, 1
	}
	values = append(values, cur)
	lengths = append(lengths, n)
	return values, lengths
}

func buildInt64Dict(src []int64) (dict []int64, codes []int32) {
	seen := make(map[int64]int32, 1024)
	for _, v := range src {
		if _, ok := seen[v]; !ok {
			seen[v] = 0
			dict = append(dict, v)
		}
	}
	slices.Sort(dict)
	for i, v := range dict {
		seen[v] = int32(i)
	}
	codes = make([]int32, len(src))
	for i, v := range src {
		codes[i] = seen[v]
	}
	return dict, codes
}

func encodeInt64Frequency(dst []byte, src []int64, cfg *Config, depth int, rng *rand.Rand) []byte {
	st := stats.ComputeInt64(src)
	top := st.TopValue
	bm := roaring.New()
	var exceptions []int64
	for i, v := range src {
		if v == top {
			bm.Add(uint32(i))
		} else {
			exceptions = append(exceptions, v)
		}
	}
	bm.RunOptimize()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(top))
	dst = bm.AppendTo(dst)
	return compressInt64(dst, exceptions, cfg, depth-1, rng)
}

// DecompressInt64 decodes one int64 stream, appending values to dst and
// returning the bytes consumed.
func DecompressInt64(dst []int64, src []byte, cfg *Config) ([]int64, int, error) {
	c := cfg.normalized()
	return decompressInt64(dst, src, &c)
}

func decompressInt64(dst []int64, src []byte, cfg *Config) ([]int64, int, error) {
	if len(src) < 1 {
		return dst, 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeUncompressed:
		if len(body) < 4 {
			return dst, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > maxBlockValues || len(body) < 4+8*n {
			return dst, 0, ErrCorrupt
		}
		for i := 0; i < n; i++ {
			dst = append(dst, int64(binary.LittleEndian.Uint64(body[4+8*i:])))
		}
		return dst, 1 + 4 + 8*n, nil
	case CodeOneValue:
		if len(body) < 12 {
			return dst, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return dst, 0, ErrCorrupt
		}
		v := int64(binary.LittleEndian.Uint64(body[4:]))
		for i := 0; i < n; i++ {
			dst = append(dst, v)
		}
		return dst, 13, nil
	case CodeRLE:
		out, used, err := decodeInt64RLE(dst, body, cfg)
		return out, used + 1, err
	case CodeDict:
		out, used, err := decodeInt64Dict(dst, body, cfg)
		return out, used + 1, err
	case CodeFrequency:
		out, used, err := decodeInt64Frequency(dst, body, cfg)
		return out, used + 1, err
	case CodeFastBP:
		decode := bitpack.DecodeFOR64
		if cfg.ScalarDecode {
			decode = bitpack.DecodeFOR64Generic
		}
		out, used, err := decode(dst, body)
		if err != nil {
			return dst, 0, ErrCorrupt
		}
		return out, used + 1, nil
	default:
		return dst, 0, ErrCorrupt
	}
}

func decodeInt64RLE(dst []int64, src []byte, cfg *Config) ([]int64, int, error) {
	if len(src) < 8 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	runCount := int(binary.LittleEndian.Uint32(src[4:]))
	if n > cfg.maxN() || runCount > n {
		return dst, 0, ErrCorrupt
	}
	pos := 8
	values, used, err := decompressInt64(cfg.Scratch.getInt64(), src[pos:], cfg)
	defer cfg.Scratch.putInt64(values)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	lengths, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(lengths)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	if len(values) != runCount || len(lengths) != runCount {
		return dst, 0, ErrCorrupt
	}
	out := len(dst)
	dst = append(dst, make([]int64, n)...)
	o := dst[out:]
	i := 0
	for r, v := range values {
		l := int(lengths[r])
		if l < 0 || i+l > n {
			return dst, 0, ErrCorrupt
		}
		if cfg.ScalarDecode || l <= 16 {
			for k := 0; k < l; k++ {
				o[i] = v
				i++
			}
			continue
		}
		run := o[i : i+l]
		run[0] = v
		for filled := 1; filled < l; filled *= 2 {
			copy(run[filled:], run[:filled])
		}
		i += l
	}
	if i != n {
		return dst, 0, ErrCorrupt
	}
	return dst, pos, nil
}

func decodeInt64Dict(dst []int64, src []byte, cfg *Config) ([]int64, int, error) {
	if len(src) < 8 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	dictN := int(binary.LittleEndian.Uint32(src[4:]))
	if n > cfg.maxN() || dictN > n {
		return dst, 0, ErrCorrupt
	}
	pos := 8
	dict, used, err := decompressInt64(cfg.Scratch.getInt64(), src[pos:], cfg)
	defer cfg.Scratch.putInt64(dict)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	if len(dict) != dictN {
		return dst, 0, ErrCorrupt
	}
	codes, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(codes)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	if len(codes) != n {
		return dst, 0, ErrCorrupt
	}
	out := len(dst)
	dst = append(dst, make([]int64, n)...)
	o := dst[out:]
	for i, c := range codes {
		if uint32(c) >= uint32(dictN) {
			return dst, 0, ErrCorrupt
		}
		o[i] = dict[c]
	}
	return dst, pos, nil
}

func decodeInt64Frequency(dst []int64, src []byte, cfg *Config) ([]int64, int, error) {
	if len(src) < 12 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	if n > cfg.maxN() {
		return dst, 0, ErrCorrupt
	}
	top := int64(binary.LittleEndian.Uint64(src[4:]))
	pos := 12
	bm, used, err := roaring.FromBytes(src[pos:])
	if err != nil {
		return dst, 0, ErrCorrupt
	}
	pos += used
	exceptions, used, err := decompressInt64(cfg.Scratch.getInt64(), src[pos:], cfg)
	defer cfg.Scratch.putInt64(exceptions)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	if bm.Cardinality()+len(exceptions) != n {
		return dst, 0, ErrCorrupt
	}
	out := len(dst)
	dst = append(dst, make([]int64, n)...)
	o := dst[out:]
	ei := 0
	next := 0
	okBM := true
	bm.ForEach(func(v uint32) bool {
		if int(v) >= n {
			okBM = false
			return false
		}
		for next < int(v) {
			o[next] = exceptions[ei]
			ei++
			next++
		}
		o[next] = top
		next++
		return true
	})
	if !okBM {
		return dst, 0, ErrCorrupt
	}
	for next < n {
		o[next] = exceptions[ei]
		ei++
		next++
	}
	return dst, pos, nil
}

// CountEqualInt64 counts occurrences of v in one compressed int64 stream,
// exploiting the compressed form where the scheme permits.
func CountEqualInt64(src []byte, v int64, cfg *Config) (int, int, error) {
	c := cfg.normalized()
	return countEqualInt64(src, v, &c)
}

func countEqualInt64(src []byte, v int64, cfg *Config) (int, int, error) {
	if len(src) < 1 {
		return 0, 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeOneValue:
		if len(body) < 12 {
			return 0, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > maxBlockValues {
			return 0, 0, ErrCorrupt
		}
		if int64(binary.LittleEndian.Uint64(body[4:])) == v {
			return n, 13, nil
		}
		return 0, 13, nil
	case CodeRLE:
		if len(body) < 8 {
			return 0, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		runCount := int(binary.LittleEndian.Uint32(body[4:]))
		if n > maxBlockValues || runCount > n {
			return 0, 0, ErrCorrupt
		}
		pos := 1 + 8
		values, used, err := decompressInt64(nil, src[pos:], cfg)
		if err != nil {
			return 0, 0, err
		}
		pos += used
		lengths, used, err := decompressInt(nil, src[pos:], cfg)
		if err != nil {
			return 0, 0, err
		}
		pos += used
		if len(values) != runCount || len(lengths) != runCount {
			return 0, 0, ErrCorrupt
		}
		count := 0
		for i, rv := range values {
			if rv == v {
				count += int(lengths[i])
			}
		}
		return count, pos, nil
	case CodeDict:
		if len(body) < 8 {
			return 0, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		dictN := int(binary.LittleEndian.Uint32(body[4:]))
		if n > maxBlockValues || dictN > n {
			return 0, 0, ErrCorrupt
		}
		pos := 1 + 8
		dict, used, err := decompressInt64(nil, src[pos:], cfg)
		if err != nil {
			return 0, 0, err
		}
		pos += used
		target := int32(-1)
		for i, dv := range dict {
			if dv == v {
				target = int32(i)
				break
			}
		}
		if target < 0 {
			_, used, err := decompressInt(nil, src[pos:], cfg)
			if err != nil {
				return 0, 0, err
			}
			return 0, pos + used, nil
		}
		count, used, err := countEqualInt(src[pos:], target, cfg)
		if err != nil {
			return 0, 0, err
		}
		return count, pos + used, nil
	case CodeFrequency:
		if len(body) < 12 {
			return 0, 0, ErrCorrupt
		}
		top := int64(binary.LittleEndian.Uint64(body[4:]))
		pos := 1 + 12
		bm, used, err := roaring.FromBytes(src[pos:])
		if err != nil {
			return 0, 0, ErrCorrupt
		}
		pos += used
		if top == v {
			_, used, err := decompressInt64(nil, src[pos:], cfg)
			if err != nil {
				return 0, 0, err
			}
			return bm.Cardinality(), pos + used, nil
		}
		count, used, err := countEqualInt64(src[pos:], v, cfg)
		if err != nil {
			return 0, 0, err
		}
		return count, pos + used, nil
	default:
		values, used, err := decompressInt64(nil, src, cfg)
		if err != nil {
			return 0, 0, err
		}
		count := 0
		for _, x := range values {
			if x == v {
				count++
			}
		}
		return count, used, nil
	}
}
