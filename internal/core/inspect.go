package core

import (
	"encoding/binary"
	"fmt"

	"btrblocks/internal/bitpack"
	"btrblocks/internal/fastpfor"
	"btrblocks/internal/fsst"
	"btrblocks/internal/roaring"
)

// Layout describes the structure of one compressed stream — the scheme
// tag, header fields, leaf payloads, and cascade sub-streams — obtained
// by walking headers only, without decoding any value payload. It is the
// building block of the public Inspect API and of FORMAT.md's worked
// examples.
//
// Byte accounting is exact by construction:
//
//	Bytes == HeaderBytes + PayloadBytes + Σ Children[i].Bytes
//
// and Bytes equals what the matching decoder would consume.
type Layout struct {
	// Code is the stream's scheme tag.
	Code Code
	// Kind is the stream's value kind.
	Kind Kind
	// Role says which sub-stream of the parent scheme this is ("run
	// values", "codes", "exceptions", …); empty for a block root.
	Role string
	// Values is the value count declared by the stream header.
	Values int
	// Bytes is the stream's total encoded size, tag byte included.
	Bytes int
	// HeaderBytes counts the tag byte plus fixed header fields.
	// PayloadBytes counts leaf payload bytes owned directly by this
	// stream: packed words, string pools, bitmaps, patches.
	HeaderBytes  int
	PayloadBytes int
	// Detail holds scheme-specific extras (bit widths, exception counts,
	// pool encoding) for human-readable rendering.
	Detail string
	// Children are the cascade sub-streams, in on-disk order.
	Children []*Layout
}

// seal computes Bytes from the parts and returns the layout.
func (l *Layout) seal() *Layout {
	l.Bytes = l.HeaderBytes + l.PayloadBytes
	for _, c := range l.Children {
		l.Bytes += c.Bytes
	}
	return l
}

// MaxDepth returns the number of cascade levels in the tree rooted at l
// (1 for a leaf scheme with no sub-streams).
func (l *Layout) MaxDepth() int {
	depth := 1
	for _, c := range l.Children {
		if d := 1 + c.MaxDepth(); d > depth {
			depth = d
		}
	}
	return depth
}

// Walk calls f for l and every descendant in pre-order, passing the
// node's cascade level (0 for l itself).
func (l *Layout) Walk(f func(node *Layout, level int)) {
	l.walk(f, 0)
}

func (l *Layout) walk(f func(*Layout, int), level int) {
	f(l, level)
	for _, c := range l.Children {
		c.walk(f, level+1)
	}
}

// InspectStream parses the layout of one compressed stream of the given
// kind. It validates framing exactly as the decoders do but never
// decodes payloads, so it is cheap even on large blocks. Returns the
// layout and the number of bytes consumed.
func InspectStream(kind Kind, src []byte) (*Layout, int, error) {
	var l *Layout
	var err error
	switch kind {
	case KindInt:
		l, err = walkInt(src, "")
	case KindInt64:
		l, err = walkInt64(src, "")
	case KindDouble:
		l, err = walkDouble(src, "")
	case KindString:
		l, err = walkString(src, "")
	default:
		return nil, 0, ErrCorrupt
	}
	if err != nil {
		return nil, 0, err
	}
	return l, l.Bytes, nil
}

func walkInt(src []byte, role string) (*Layout, error) {
	if len(src) < 1 {
		return nil, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	l := &Layout{Code: code, Kind: KindInt, Role: role}
	switch code {
	case CodeUncompressed:
		if len(body) < 4 {
			return nil, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > maxBlockValues || len(body) < 4+4*n {
			return nil, ErrCorrupt
		}
		l.Values, l.HeaderBytes, l.PayloadBytes = n, 1+4, 4*n
	case CodeOneValue:
		if len(body) < 8 {
			return nil, ErrCorrupt
		}
		l.Values = int(binary.LittleEndian.Uint32(body))
		l.HeaderBytes = 1 + 8
	case CodeRLE:
		return walkRLE(l, body, walkInt)
	case CodeDict:
		return walkDictCodes(l, body, walkInt)
	case CodeFrequency:
		if len(body) < 8 {
			return nil, ErrCorrupt
		}
		l.Values = int(binary.LittleEndian.Uint32(body))
		l.HeaderBytes = 1 + 8
		if err := walkFrequencyTail(l, body[8:], walkInt); err != nil {
			return nil, err
		}
	case CodeFastBP:
		if err := walkFOR(l, body, 4, 32); err != nil {
			return nil, err
		}
	case CodeFastPFOR:
		if err := walkPFOR(l, body); err != nil {
			return nil, err
		}
	default:
		return nil, ErrCorrupt
	}
	return l.seal(), nil
}

func walkInt64(src []byte, role string) (*Layout, error) {
	if len(src) < 1 {
		return nil, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	l := &Layout{Code: code, Kind: KindInt64, Role: role}
	switch code {
	case CodeUncompressed:
		if len(body) < 4 {
			return nil, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > maxBlockValues || len(body) < 4+8*n {
			return nil, ErrCorrupt
		}
		l.Values, l.HeaderBytes, l.PayloadBytes = n, 1+4, 8*n
	case CodeOneValue:
		if len(body) < 12 {
			return nil, ErrCorrupt
		}
		l.Values = int(binary.LittleEndian.Uint32(body))
		l.HeaderBytes = 1 + 12
	case CodeRLE:
		return walkRLE(l, body, walkInt64)
	case CodeDict:
		return walkDictCodes(l, body, walkInt64)
	case CodeFrequency:
		if len(body) < 12 {
			return nil, ErrCorrupt
		}
		l.Values = int(binary.LittleEndian.Uint32(body))
		l.HeaderBytes = 1 + 12
		if err := walkFrequencyTail(l, body[12:], walkInt64); err != nil {
			return nil, err
		}
	case CodeFastBP:
		if err := walkFOR(l, body, 8, 64); err != nil {
			return nil, err
		}
	default:
		return nil, ErrCorrupt
	}
	return l.seal(), nil
}

func walkDouble(src []byte, role string) (*Layout, error) {
	if len(src) < 1 {
		return nil, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	l := &Layout{Code: code, Kind: KindDouble, Role: role}
	switch code {
	case CodeUncompressed:
		if len(body) < 4 {
			return nil, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > maxBlockValues || len(body) < 4+8*n {
			return nil, ErrCorrupt
		}
		l.Values, l.HeaderBytes, l.PayloadBytes = n, 1+4, 8*n
	case CodeOneValue:
		if len(body) < 12 {
			return nil, ErrCorrupt
		}
		l.Values = int(binary.LittleEndian.Uint32(body))
		l.HeaderBytes = 1 + 12
	case CodeRLE:
		return walkRLE(l, body, walkDouble)
	case CodeDict:
		return walkDictCodes(l, body, walkDouble)
	case CodeFrequency:
		if len(body) < 12 {
			return nil, ErrCorrupt
		}
		l.Values = int(binary.LittleEndian.Uint32(body))
		l.HeaderBytes = 1 + 12
		if err := walkFrequencyTail(l, body[12:], walkDouble); err != nil {
			return nil, err
		}
	case CodePDE:
		if err := walkPDE(l, body); err != nil {
			return nil, err
		}
	default:
		return nil, ErrCorrupt
	}
	return l.seal(), nil
}

func walkString(src []byte, role string) (*Layout, error) {
	if len(src) < 1 {
		return nil, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	l := &Layout{Code: code, Kind: KindString, Role: role}
	switch code {
	case CodeUncompressed:
		if len(body) < 8 {
			return nil, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		dataLen := int(binary.LittleEndian.Uint32(body[4:]))
		if n > maxBlockValues || dataLen < 0 || len(body) < 8+4*(n+1)+dataLen {
			return nil, ErrCorrupt
		}
		l.Values, l.HeaderBytes, l.PayloadBytes = n, 1+8, 4*(n+1)+dataLen
		l.Detail = fmt.Sprintf("offsets %dB, data %dB", 4*(n+1), dataLen)
	case CodeOneValue:
		if len(body) < 8 {
			return nil, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		strLen := int(binary.LittleEndian.Uint32(body[4:]))
		if n > maxBlockValues || strLen < 0 || len(body) < 8+strLen {
			return nil, ErrCorrupt
		}
		l.Values, l.HeaderBytes, l.PayloadBytes = n, 1+8, strLen
	case CodeDict:
		if err := walkStringDict(l, body); err != nil {
			return nil, err
		}
	case CodeFSST:
		if err := walkStringFSST(l, body); err != nil {
			return nil, err
		}
	default:
		return nil, ErrCorrupt
	}
	return l.seal(), nil
}

// walkRLE parses the shared RLE header and the (values, lengths)
// sub-streams; values have the parent's kind, lengths are int32.
func walkRLE(l *Layout, body []byte, walkValues func([]byte, string) (*Layout, error)) (*Layout, error) {
	if len(body) < 8 {
		return nil, ErrCorrupt
	}
	l.Values = int(binary.LittleEndian.Uint32(body))
	runCount := int(binary.LittleEndian.Uint32(body[4:]))
	if l.Values > maxBlockValues || runCount > l.Values {
		return nil, ErrCorrupt
	}
	l.HeaderBytes = 1 + 8
	l.Detail = fmt.Sprintf("%d runs", runCount)
	values, err := walkValues(body[8:], "run values")
	if err != nil {
		return nil, err
	}
	lengths, err := walkInt(body[8+values.Bytes:], "run lengths")
	if err != nil {
		return nil, err
	}
	if values.Values != runCount || lengths.Values != runCount {
		return nil, ErrCorrupt
	}
	l.Children = []*Layout{values, lengths}
	return l.seal(), nil
}

// walkDictCodes parses the shared Dict header and the (dictionary,
// codes) sub-streams; the dictionary has the parent's kind, codes are
// int32.
func walkDictCodes(l *Layout, body []byte, walkValues func([]byte, string) (*Layout, error)) (*Layout, error) {
	if len(body) < 8 {
		return nil, ErrCorrupt
	}
	l.Values = int(binary.LittleEndian.Uint32(body))
	dictN := int(binary.LittleEndian.Uint32(body[4:]))
	if l.Values > maxBlockValues || dictN > l.Values {
		return nil, ErrCorrupt
	}
	l.HeaderBytes = 1 + 8
	l.Detail = fmt.Sprintf("%d distinct", dictN)
	dict, err := walkValues(body[8:], "dictionary")
	if err != nil {
		return nil, err
	}
	codes, err := walkInt(body[8+dict.Bytes:], "codes")
	if err != nil {
		return nil, err
	}
	if dict.Values != dictN || codes.Values != l.Values {
		return nil, ErrCorrupt
	}
	l.Children = []*Layout{dict, codes}
	return l.seal(), nil
}

// walkFrequencyTail parses a Frequency payload after the fixed header:
// the top-value position bitmap, then the cascaded exceptions stream.
func walkFrequencyTail(l *Layout, tail []byte, walkValues func([]byte, string) (*Layout, error)) error {
	if l.Values > maxBlockValues {
		return ErrCorrupt
	}
	bm, used, err := roaring.FromBytes(tail)
	if err != nil {
		return ErrCorrupt
	}
	l.PayloadBytes = used
	l.Detail = fmt.Sprintf("top value at %d positions, bitmap %dB", bm.Cardinality(), used)
	exceptions, err := walkValues(tail[used:], "exceptions")
	if err != nil {
		return err
	}
	if bm.Cardinality()+exceptions.Values != l.Values {
		return ErrCorrupt
	}
	l.Children = []*Layout{exceptions}
	return nil
}

// walkFOR sizes a FOR + per-128-block bit-packed payload (FastBP):
// n:u32 [base:u32|u64, then per block width:u8 + packed words].
func walkFOR(l *Layout, body []byte, baseBytes, maxWidth int) error {
	if len(body) < 4 {
		return ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(body))
	l.Values = n
	if n == 0 {
		l.HeaderBytes = 1 + 4
		return nil
	}
	if n > maxBlockValues || len(body) < 4+baseBytes {
		return ErrCorrupt
	}
	l.HeaderBytes = 1 + 4 + baseBytes
	pos := 4 + baseBytes
	minW, maxW := maxWidth, 0
	for got := 0; got < n; got += bitpack.BlockLen {
		cnt := min(n-got, bitpack.BlockLen)
		if pos >= len(body) {
			return ErrCorrupt
		}
		w := int(body[pos])
		if w > maxWidth {
			return ErrCorrupt
		}
		minW, maxW = min(minW, w), max(maxW, w)
		packed := (cnt*w + 63) / 64 * 8
		pos += 1 + packed
		if pos > len(body) {
			return ErrCorrupt
		}
		l.PayloadBytes += 1 + packed
	}
	l.Detail = fmt.Sprintf("bit widths %d..%d", minW, maxW)
	return nil
}

// walkPFOR sizes a FastPFOR payload: n:u32 base:u32, then per block
// b:u8 maxb:u8 exc:u8 + packed lows + positions + packed highs.
func walkPFOR(l *Layout, body []byte) error {
	if len(body) < 4 {
		return ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(body))
	l.Values = n
	if n == 0 {
		l.HeaderBytes = 1 + 4
		return nil
	}
	if n > maxBlockValues || len(body) < 8 {
		return ErrCorrupt
	}
	l.HeaderBytes = 1 + 8
	pos := 8
	totalExc := 0
	for got := 0; got < n; got += fastpfor.BlockLen {
		cnt := min(n-got, fastpfor.BlockLen)
		if pos+3 > len(body) {
			return ErrCorrupt
		}
		b := int(body[pos])
		maxb := int(body[pos+1])
		exc := int(body[pos+2])
		if b > 32 || maxb > 32 || b > maxb || exc > cnt {
			return ErrCorrupt
		}
		totalExc += exc
		blockBytes := 3 + (cnt*b+63)/64*8 + exc + (exc*(maxb-b)+63)/64*8
		pos += blockBytes
		if pos > len(body) {
			return ErrCorrupt
		}
		l.PayloadBytes += blockBytes
	}
	l.Detail = fmt.Sprintf("%d exceptions", totalExc)
	return nil
}

// walkPDE parses a Pseudodecimal payload: n:u32, cascaded digits and
// exponents streams, the patch-position bitmap, and the raw patches.
func walkPDE(l *Layout, body []byte) error {
	if len(body) < 4 {
		return ErrCorrupt
	}
	l.Values = int(binary.LittleEndian.Uint32(body))
	if l.Values > maxBlockValues {
		return ErrCorrupt
	}
	l.HeaderBytes = 1 + 4
	pos := 4
	digits, err := walkInt(body[pos:], "digits")
	if err != nil {
		return err
	}
	pos += digits.Bytes
	exps, err := walkInt(body[pos:], "exponents")
	if err != nil {
		return err
	}
	pos += exps.Bytes
	if digits.Values != l.Values || exps.Values != l.Values {
		return ErrCorrupt
	}
	bm, used, err := roaring.FromBytes(body[pos:])
	if err != nil {
		return ErrCorrupt
	}
	pos += used
	patches := bm.Cardinality()
	if len(body) < pos+8*patches {
		return ErrCorrupt
	}
	l.PayloadBytes = used + 8*patches
	l.Detail = fmt.Sprintf("%d patches, bitmap %dB", patches, used)
	l.Children = []*Layout{digits, exps}
	return nil
}

// walkStringDict parses a string Dict payload: the pool (raw or
// FSST-compressed), then cascaded pool-lengths and codes streams.
func walkStringDict(l *Layout, body []byte) error {
	if len(body) < 9 {
		return ErrCorrupt
	}
	l.Values = int(binary.LittleEndian.Uint32(body))
	dictN := int(binary.LittleEndian.Uint32(body[4:]))
	if l.Values > maxBlockValues || dictN > l.Values {
		return ErrCorrupt
	}
	kind := body[8]
	l.HeaderBytes = 1 + 9
	pos := 9
	switch kind {
	case poolRaw:
		if len(body) < pos+4 {
			return ErrCorrupt
		}
		poolLen := int(binary.LittleEndian.Uint32(body[pos:]))
		if poolLen < 0 || len(body) < pos+4+poolLen {
			return ErrCorrupt
		}
		l.HeaderBytes += 4
		l.PayloadBytes = poolLen
		l.Detail = fmt.Sprintf("%d distinct, raw pool %dB", dictN, poolLen)
		pos += 4 + poolLen
	case poolFSST:
		table, used, err := fsst.TableFromBytes(body[pos:])
		if err != nil {
			return ErrCorrupt
		}
		pos += used
		if len(body) < pos+8 {
			return ErrCorrupt
		}
		rawLen := int(binary.LittleEndian.Uint32(body[pos:]))
		encLen := int(binary.LittleEndian.Uint32(body[pos+4:]))
		if rawLen < 0 || encLen < 0 || len(body) < pos+8+encLen {
			return ErrCorrupt
		}
		l.HeaderBytes += 8
		l.PayloadBytes = used + encLen
		l.Detail = fmt.Sprintf("%d distinct, FSST pool %dB -> %dB (table %d symbols, %dB)",
			dictN, rawLen, encLen, table.NumSymbols(), used)
		pos += 8 + encLen
	default:
		return ErrCorrupt
	}
	lengths, err := walkInt(body[pos:], "pool lengths")
	if err != nil {
		return err
	}
	pos += lengths.Bytes
	codes, err := walkInt(body[pos:], "codes")
	if err != nil {
		return err
	}
	if lengths.Values != dictN || codes.Values != l.Values {
		return ErrCorrupt
	}
	l.Children = []*Layout{lengths, codes}
	return nil
}

// walkStringFSST parses a direct-FSST payload: symbol table, compressed
// pool, and the cascaded string-lengths stream.
func walkStringFSST(l *Layout, body []byte) error {
	if len(body) < 4 {
		return ErrCorrupt
	}
	l.Values = int(binary.LittleEndian.Uint32(body))
	if l.Values > maxBlockValues {
		return ErrCorrupt
	}
	l.HeaderBytes = 1 + 4
	pos := 4
	table, used, err := fsst.TableFromBytes(body[pos:])
	if err != nil {
		return ErrCorrupt
	}
	pos += used
	if len(body) < pos+8 {
		return ErrCorrupt
	}
	rawLen := int(binary.LittleEndian.Uint32(body[pos:]))
	encLen := int(binary.LittleEndian.Uint32(body[pos+4:]))
	if rawLen < 0 || encLen < 0 || len(body) < pos+8+encLen {
		return ErrCorrupt
	}
	l.HeaderBytes += 8
	l.PayloadBytes = used + encLen
	l.Detail = fmt.Sprintf("pool %dB -> %dB (table %d symbols, %dB)",
		rawLen, encLen, table.NumSymbols(), used)
	pos += 8 + encLen
	lengths, err := walkInt(body[pos:], "string lengths")
	if err != nil {
		return err
	}
	if lengths.Values != l.Values {
		return ErrCorrupt
	}
	l.Children = []*Layout{lengths}
	return nil
}
