package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"btrblocks/coldata"
	"btrblocks/internal/roaring"
)

// Per-stream differential tests for the selection and aggregation
// kernels: every (data shape × forced scheme × predicate) cell compares
// the compressed-domain kernel against decode-then-filter on the same
// stream. The root-level oracle in the query package covers plans,
// NULLs, and pruning; this file pins the kernels themselves.

func intShapes(rng *rand.Rand) map[string][]int32 {
	shapes := map[string][]int32{
		"empty":    {},
		"constant": make([]int32, 900),
		"negative": {-5, -5, -5, -1, 0, 3, 3, 3, 900, -1000000},
	}
	for i := range shapes["constant"] {
		shapes["constant"][i] = 42
	}
	runs := make([]int32, 0, 1200)
	for len(runs) < 1200 {
		v := int32(rng.Intn(9) - 4)
		l := 1 + rng.Intn(40)
		for j := 0; j < l && len(runs) < 1200; j++ {
			runs = append(runs, v)
		}
	}
	shapes["runs"] = runs
	lowCard := make([]int32, 1500)
	for i := range lowCard {
		lowCard[i] = int32(rng.Intn(12)) * 1000
	}
	shapes["lowcard"] = lowCard
	skew := make([]int32, 1500)
	for i := range skew {
		if rng.Intn(10) < 9 {
			skew[i] = 777
		} else {
			skew[i] = int32(rng.Intn(100000))
		}
	}
	shapes["skew"] = skew
	sorted := make([]int32, 2000)
	v := int32(-500)
	for i := range sorted {
		v += int32(rng.Intn(5))
		sorted[i] = v
	}
	shapes["sorted"] = sorted
	wide := make([]int32, 800)
	for i := range wide {
		wide[i] = int32(rng.Uint32())
	}
	shapes["wide"] = wide
	return shapes
}

func intPreds(values []int32, rng *rand.Rand) map[string]*IntPred {
	pick := func() int32 {
		if len(values) == 0 {
			return 7
		}
		return values[rng.Intn(len(values))]
	}
	lo, hi := pick(), pick()
	if lo > hi {
		lo, hi = hi, lo
	}
	in := []int32{pick(), pick(), pick(), -123456789, pick()}
	preds := map[string]*IntPred{
		"eq-hit":      {Op: PredEq, Eq: pick()},
		"eq-miss":     {Op: PredEq, Eq: -987654321},
		"range":       {Op: PredRange, Lo: lo, Hi: hi},
		"range-all":   {Op: PredRange, Lo: math.MinInt32, Hi: math.MaxInt32},
		"range-empty": {Op: PredRange, Lo: 10, Hi: 9},
		"in":          {Op: PredIn, In: in},
		"in-empty":    {Op: PredIn},
	}
	for _, p := range preds {
		p.Normalize()
	}
	return preds
}

func refBitmap(n int, match func(i int) bool, base uint32) *roaring.Bitmap {
	out := roaring.New()
	for i := 0; i < n; i++ {
		if match(i) {
			out.Add(base + uint32(i))
		}
	}
	return out
}

func TestSelectIntDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := &Config{}
	for shape, values := range intShapes(rng) {
		encodings := map[string][]byte{"auto": CompressInt(nil, values, cfg)}
		for _, code := range IntSchemes() {
			if enc := CompressIntAs(nil, values, code, cfg); enc != nil {
				encodings[fmt.Sprintf("forced-%d", code)] = enc
			}
		}
		for encName, enc := range encodings {
			for predName, p := range intPreds(values, rng) {
				name := shape + "/" + encName + "/" + predName
				const base = 1 << 16
				got := roaring.New()
				var st SelectStats
				used, err := SelectInt(enc, p, base, got, &st, cfg)
				if err != nil {
					t.Fatalf("%s: SelectInt: %v", name, err)
				}
				if used != len(enc) {
					t.Fatalf("%s: consumed %d of %d bytes", name, used, len(enc))
				}
				want := refBitmap(len(values), func(i int) bool { return p.Match(values[i]) }, base)
				if !got.Equals(want) {
					t.Fatalf("%s: selection mismatch: got %d want %d matches",
						name, got.Cardinality(), want.Cardinality())
				}
			}
		}
	}
}

func TestSelectIntFORSkipsBlocks(t *testing.T) {
	// FOR deltas are relative to one global base, so a packed block's
	// envelope is [base, base+2^w): blocks whose width-bound stays below
	// the predicate cannot match. On a sorted ramp that means a range
	// near the top skips every early (narrow-width) block unread.
	values := make([]int32, 4096)
	for i := range values {
		values[i] = int32(i * 3)
	}
	cfg := &Config{}
	enc := CompressIntAs(nil, values, CodeFastBP, cfg)
	if enc == nil {
		t.Fatal("FastBP not applicable to sorted ramp")
	}
	p := &IntPred{Op: PredRange, Lo: 12000, Hi: 12060}
	got := roaring.New()
	var st SelectStats
	if _, err := SelectInt(enc, p, 0, got, &st, cfg); err != nil {
		t.Fatal(err)
	}
	want := refBitmap(len(values), func(i int) bool { return p.Match(values[i]) }, 0)
	if !got.Equals(want) {
		t.Fatalf("selection mismatch: got %d want %d", got.Cardinality(), want.Cardinality())
	}
	if st.FORSkipped.Load() == 0 {
		t.Fatal("no packed blocks were min-max skipped")
	}
	if st.FORScanned.Load() >= st.FORSkipped.Load() {
		t.Fatalf("expected mostly skips: scanned %d skipped %d",
			st.FORScanned.Load(), st.FORSkipped.Load())
	}
}

func TestSelectInt64Differential(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	shapes := map[string][]int64{
		"empty":    {},
		"constant": {9e12, 9e12, 9e12, 9e12},
		"extremes": {math.MinInt64, math.MaxInt64, 0, -1, 1, math.MaxInt64, math.MinInt64},
	}
	runs := make([]int64, 0, 1200)
	for len(runs) < 1200 {
		v := int64(rng.Intn(7))*1e10 - 3e10
		l := 1 + rng.Intn(30)
		for j := 0; j < l && len(runs) < 1200; j++ {
			runs = append(runs, v)
		}
	}
	shapes["runs"] = runs
	sorted := make([]int64, 2000)
	v := int64(1700000000)
	for i := range sorted {
		v += int64(rng.Intn(90))
		sorted[i] = v
	}
	shapes["sorted"] = sorted
	wide := make([]int64, 700)
	for i := range wide {
		wide[i] = int64(rng.Uint64())
	}
	shapes["wide"] = wide

	for shape, values := range shapes {
		// Force each root scheme via the pool restriction; the encoder
		// falls back when inapplicable, which is fine — the reference
		// check below holds either way.
		cfgs := map[string]*Config{"auto": {}}
		for _, code := range IntSchemes() {
			cfgs[fmt.Sprintf("restrict-%d", code)] = &Config{IntSchemes: []Code{code, CodeUncompressed}}
		}
		for cfgName, cfg := range cfgs {
			enc := CompressInt64(nil, values, cfg)
			pick := func() int64 {
				if len(values) == 0 {
					return 5
				}
				return values[rng.Intn(len(values))]
			}
			lo, hi := pick(), pick()
			if lo > hi {
				lo, hi = hi, lo
			}
			preds := map[string]*Int64Pred{
				"eq-hit":   {Op: PredEq, Eq: pick()},
				"eq-miss":  {Op: PredEq, Eq: -314159265358979},
				"range":    {Op: PredRange, Lo: lo, Hi: hi},
				"range-hi": {Op: PredRange, Lo: math.MaxInt64 - 3, Hi: math.MaxInt64},
				"in":       {Op: PredIn, In: []int64{pick(), pick(), 4}},
				"in-empty": {Op: PredIn},
			}
			for predName, p := range preds {
				p.Normalize()
				name := shape + "/" + cfgName + "/" + predName
				got := roaring.New()
				used, err := SelectInt64(enc, p, 0, got, nil, cfg)
				if err != nil {
					t.Fatalf("%s: SelectInt64: %v", name, err)
				}
				if used != len(enc) {
					t.Fatalf("%s: consumed %d of %d bytes", name, used, len(enc))
				}
				want := refBitmap(len(values), func(i int) bool { return p.Match(values[i]) }, 0)
				if !got.Equals(want) {
					t.Fatalf("%s: selection mismatch: got %d want %d",
						name, got.Cardinality(), want.Cardinality())
				}
			}
		}
	}
}

func TestSelectDoubleDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	shapes := map[string][]float64{
		"empty":    {},
		"constant": {2.5, 2.5, 2.5, 2.5, 2.5},
		"special":  {0.0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1), 1.5, math.NaN()},
	}
	runs := make([]float64, 0, 1000)
	for len(runs) < 1000 {
		v := float64(rng.Intn(6)) * 0.25
		l := 1 + rng.Intn(25)
		for j := 0; j < l && len(runs) < 1000; j++ {
			runs = append(runs, v)
		}
	}
	shapes["runs"] = runs
	lowCard := make([]float64, 1200)
	for i := range lowCard {
		lowCard[i] = float64(rng.Intn(10)) * 1.1
	}
	shapes["lowcard"] = lowCard
	dec2 := make([]float64, 1200)
	for i := range dec2 {
		dec2[i] = float64(rng.Intn(100000)) / 100
	}
	shapes["decimal"] = dec2

	cfg := &Config{}
	for shape, values := range shapes {
		encodings := map[string][]byte{"auto": CompressDouble(nil, values, cfg)}
		for _, code := range DoubleSchemes() {
			if enc := CompressDoubleAs(nil, values, code, cfg); enc != nil {
				encodings[fmt.Sprintf("forced-%d", code)] = enc
			}
		}
		pick := func() float64 {
			if len(values) == 0 {
				return 1.25
			}
			return values[rng.Intn(len(values))]
		}
		lo, hi := pick(), pick()
		if lo > hi {
			lo, hi = hi, lo
		}
		preds := map[string]*DoublePred{
			"eq-hit":   {Op: PredEq, Eq: pick()},
			"eq-nan":   {Op: PredEq, Eq: math.NaN()},
			"eq-miss":  {Op: PredEq, Eq: -1e300},
			"range":    {Op: PredRange, Lo: lo, Hi: hi},
			"in":       {Op: PredIn, In: []float64{pick(), pick(), math.NaN()}},
			"in-empty": {Op: PredIn},
		}
		for encName, enc := range encodings {
			for predName, p := range preds {
				p.Normalize()
				name := shape + "/" + encName + "/" + predName
				got := roaring.New()
				used, err := SelectDouble(enc, p, 0, got, nil, cfg)
				if err != nil {
					t.Fatalf("%s: SelectDouble: %v", name, err)
				}
				if used != len(enc) {
					t.Fatalf("%s: consumed %d of %d bytes", name, used, len(enc))
				}
				want := refBitmap(len(values), func(i int) bool { return p.Match(values[i]) }, 0)
				if !got.Equals(want) {
					t.Fatalf("%s: selection mismatch: got %d want %d",
						name, got.Cardinality(), want.Cardinality())
				}
			}
		}
	}
}

func TestSelectStringDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	words := []string{"", "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "omega", "zzz"}
	build := func(n int, card int) (coldata.Strings, []string) {
		s := coldata.NewStringsBuilder(n, n*6)
		vals := make([]string, n)
		for i := 0; i < n; i++ {
			w := words[rng.Intn(card)]
			s = s.Append(w)
			vals[i] = w
		}
		return s, vals
	}
	shapes := map[string]int{"lowcard": 4, "full": len(words)}
	cfg := &Config{}
	for shape, card := range shapes {
		col, vals := build(1100, card)
		encodings := map[string][]byte{"auto": CompressString(nil, col, cfg)}
		for _, code := range StringSchemes() {
			if enc := CompressStringAs(nil, col, code, cfg); enc != nil {
				encodings[fmt.Sprintf("forced-%d", code)] = enc
			}
		}
		preds := map[string]*StringPred{
			"eq-hit":   {Op: PredEq, Eq: []byte("beta")},
			"eq-empty": {Op: PredEq, Eq: []byte("")},
			"eq-miss":  {Op: PredEq, Eq: []byte("nope")},
			"range":    {Op: PredRange, Lo: []byte("b"), Hi: []byte("e")},
			"in":       {Op: PredIn, In: [][]byte{[]byte("gamma"), []byte("zzz"), []byte("x")}},
			"in-empty": {Op: PredIn},
		}
		for encName, enc := range encodings {
			for predName, p := range preds {
				p.Normalize()
				name := shape + "/" + encName + "/" + predName
				got := roaring.New()
				used, err := SelectString(enc, p, 0, got, nil, cfg)
				if err != nil {
					t.Fatalf("%s: SelectString: %v", name, err)
				}
				if used != len(enc) {
					t.Fatalf("%s: consumed %d of %d bytes", name, used, len(enc))
				}
				want := refBitmap(len(vals), func(i int) bool { return p.Match([]byte(vals[i])) }, 0)
				if !got.Equals(want) {
					t.Fatalf("%s: selection mismatch: got %d want %d",
						name, got.Cardinality(), want.Cardinality())
				}
			}
		}
	}
}

func TestAggregateDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cfg := &Config{}

	for shape, values := range intShapes(rng) {
		var want IntAgg
		for _, v := range values {
			want.Fold(v)
		}
		encodings := map[string][]byte{"auto": CompressInt(nil, values, cfg)}
		for _, code := range IntSchemes() {
			if enc := CompressIntAs(nil, values, code, cfg); enc != nil {
				encodings[fmt.Sprintf("forced-%d", code)] = enc
			}
		}
		for encName, enc := range encodings {
			got, used, err := AggregateInt(enc, nil, cfg)
			if err != nil {
				t.Fatalf("int/%s/%s: %v", shape, encName, err)
			}
			if used != len(enc) {
				t.Fatalf("int/%s/%s: consumed %d of %d", shape, encName, used, len(enc))
			}
			if got != want {
				t.Fatalf("int/%s/%s: got %+v want %+v", shape, encName, got, want)
			}
		}
	}

	i64 := []int64{1 << 40, -(1 << 40), 7, 7, 7, math.MaxInt64, math.MinInt64, 0}
	var want64 Int64Agg
	for _, v := range i64 {
		want64.Fold(v)
	}
	for _, code := range IntSchemes() {
		cfg64 := &Config{IntSchemes: []Code{code, CodeUncompressed}}
		enc := CompressInt64(nil, i64, cfg64)
		got, used, err := AggregateInt64(enc, nil, cfg64)
		if err != nil {
			t.Fatalf("int64/restrict-%d: %v", code, err)
		}
		if used != len(enc) || got != want64 {
			t.Fatalf("int64/restrict-%d: got %+v (used %d) want %+v", code, got, used, want64)
		}
	}

	doubles := map[string][]float64{
		"plain":   {1.5, -2.25, 1.5, 1.5, 100.0, 0.125},
		"special": {math.NaN(), 1.0, math.Inf(-1), math.Inf(1), math.Copysign(0, -1)},
		"runs":    {0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 2.0, 2.0, 2.0},
		"empty":   {},
	}
	for shape, vals := range doubles {
		var wantD DoubleAgg
		for _, v := range vals {
			wantD.Fold(v)
		}
		encodings := map[string][]byte{"auto": CompressDouble(nil, vals, cfg)}
		for _, code := range DoubleSchemes() {
			if enc := CompressDoubleAs(nil, vals, code, cfg); enc != nil {
				encodings[fmt.Sprintf("forced-%d", code)] = enc
			}
		}
		for encName, enc := range encodings {
			got, used, err := AggregateDouble(enc, nil, cfg)
			if err != nil {
				t.Fatalf("double/%s/%s: %v", shape, encName, err)
			}
			if used != len(enc) {
				t.Fatalf("double/%s/%s: consumed %d of %d", shape, encName, used, len(enc))
			}
			// Bit-level comparison so NaN sums and -0.0 vs 0.0 are pinned.
			if got.Count != wantD.Count ||
				math.Float64bits(got.Sum) != math.Float64bits(wantD.Sum) ||
				math.Float64bits(got.Min) != math.Float64bits(wantD.Min) ||
				math.Float64bits(got.Max) != math.Float64bits(wantD.Max) {
				t.Fatalf("double/%s/%s: got %+v want %+v", shape, encName, got, wantD)
			}
		}
	}
}
