package core

import (
	"math"
	"math/rand"
	"testing"

	"btrblocks/coldata"
)

// forcedIntData exercises every forced root scheme on suitable inputs.
func TestForcedIntSchemesRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	inputs := map[Code][]int32{
		CodeUncompressed: {1, -2, 3},
		CodeOneValue:     {7, 7, 7, 7},
		CodeRLE:          {1, 1, 1, 2, 2, 3, 3, 3, 3},
		CodeDict:         {100, 200, 100, 300, 200},
		CodeFrequency:    {5, 5, 5, 5, 9, 5, 5, 1},
		CodeFastBP:       {1000, 1001, 1002, 1003},
		CodeFastPFOR:     {1, 2, 1 << 28, 3, 4},
	}
	long := make([]int32, 10000)
	for i := range long {
		long[i] = int32(rng.Intn(50))
	}
	for code, src := range inputs {
		enc := CompressIntAs(nil, src, code, cfg)
		if enc == nil {
			t.Fatalf("%s: not applicable to its own test input", code)
		}
		if Code(enc[0]) != code {
			t.Fatalf("%s: wrong root scheme %s", code, Code(enc[0]))
		}
		dec, used, err := DecompressInt(nil, enc, cfg)
		if err != nil || used != len(enc) {
			t.Fatalf("%s: decode failed: %v (used %d/%d)", code, err, used, len(enc))
		}
		for i := range src {
			if dec[i] != src[i] {
				t.Fatalf("%s: value %d mismatch", code, i)
			}
		}
	}
	// inapplicable scheme returns nil
	if CompressIntAs(nil, []int32{1, 2}, CodeOneValue, cfg) != nil {
		t.Fatal("OneValue on multi-value block must be inapplicable")
	}
	if CompressIntAs(nil, []int32{1}, CodePDE, cfg) != nil {
		t.Fatal("PDE is not an int scheme")
	}
	if CompressIntAs(nil, nil, CodeRLE, cfg) != nil {
		t.Fatal("empty input only supports Uncompressed")
	}
}

func TestForcedDoubleSchemesRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	nan := math.NaN()
	inputs := map[Code][]float64{
		CodeUncompressed: {1.5, -2.25},
		CodeOneValue:     {nan, nan, nan}, // bit-identical NaNs are one value
		CodeRLE:          {3.5, 3.5, 18, 18, 3.5, 3.5},
		CodeDict:         {0.5, 1.5, 0.5, 2.5},
		CodeFrequency:    {9.75, 9.75, 9.75, 1.25, 9.75},
		CodePDE:          {3.25, 0.99, -6.425, 5.5e-42},
	}
	for code, src := range inputs {
		enc := CompressDoubleAs(nil, src, code, cfg)
		if enc == nil {
			t.Fatalf("%s: not applicable to its own test input", code)
		}
		if Code(enc[0]) != code {
			t.Fatalf("%s: wrong root scheme", code)
		}
		dec, used, err := DecompressDouble(nil, enc, cfg)
		if err != nil || used != len(enc) {
			t.Fatalf("%s: decode failed: %v", code, err)
		}
		for i := range src {
			if math.Float64bits(dec[i]) != math.Float64bits(src[i]) {
				t.Fatalf("%s: value %d mismatch", code, i)
			}
		}
	}
	if CompressDoubleAs(nil, []float64{1, 2}, CodeOneValue, cfg) != nil {
		t.Fatal("OneValue on multi-value block must be inapplicable")
	}
	if CompressDoubleAs(nil, []float64{1}, CodeFSST, cfg) != nil {
		t.Fatal("FSST is not a double scheme")
	}
}

func TestForcedDoubleRLELongRuns(t *testing.T) {
	// Exercises the optimized double run expansion (doubling copy) and
	// the scalar variant on the same stream.
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(3))
	src := make([]float64, 0, 50000)
	for len(src) < 50000 {
		v := float64(rng.Intn(5))
		l := 1 + rng.Intn(200) // mixes short (unrolled) and long (doubling) runs
		for k := 0; k < l && len(src) < 50000; k++ {
			src = append(src, v)
		}
	}
	enc := CompressDoubleAs(nil, src, CodeRLE, cfg)
	if enc == nil {
		t.Fatal("RLE must be applicable")
	}
	fast, _, err := DecompressDouble(nil, enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scalar, _, err := DecompressDouble(nil, enc, &Config{ScalarDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if fast[i] != src[i] || scalar[i] != src[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestForcedStringSchemesRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	inputs := map[Code][]string{
		CodeUncompressed: {"a", "bb"},
		CodeOneValue:     {"same", "same", "same"},
		CodeDict:         {"x", "y", "x", "z"},
		CodeFSST:         {"http://a.example/1", "http://a.example/2", "http://a.example/3"},
	}
	for code, vals := range inputs {
		src := coldata.MakeStrings(vals)
		enc := CompressStringAs(nil, src, code, cfg)
		if enc == nil {
			t.Fatalf("%s: not applicable to its own test input", code)
		}
		views, used, err := DecompressString(enc, cfg)
		if err != nil || used != len(enc) {
			t.Fatalf("%s: decode failed: %v", code, err)
		}
		for i := range vals {
			if views.At(i) != vals[i] {
				t.Fatalf("%s: value %d mismatch", code, i)
			}
		}
	}
	if CompressStringAs(nil, coldata.MakeStrings([]string{"a", "b"}), CodeOneValue, cfg) != nil {
		t.Fatal("OneValue on multi-value block must be inapplicable")
	}
	if CompressStringAs(nil, coldata.MakeStrings([]string{"a"}), CodeRLE, cfg) != nil {
		t.Fatal("RLE is not a string root scheme")
	}
}

func TestSchemeListsAndNames(t *testing.T) {
	if len(IntSchemes()) != 7 || len(DoubleSchemes()) != 6 || len(StringSchemes()) != 4 {
		t.Fatalf("scheme list sizes: %d/%d/%d",
			len(IntSchemes()), len(DoubleSchemes()), len(StringSchemes()))
	}
	for c := CodeUncompressed; c < numCodes; c++ {
		if c.String() == "Invalid" || c.String() == "" {
			t.Fatalf("code %d has no name", c)
		}
	}
	if Code(200).String() != "Invalid" {
		t.Fatal("out-of-range code must stringify as Invalid")
	}
}

func TestEstimateOnlySmoke(t *testing.T) {
	cfg := DefaultConfig()
	EstimateOnlyInt(make([]int32, 5000), cfg)
	EstimateOnlyDouble(make([]float64, 5000), cfg)
	EstimateOnlyString(coldata.MakeStrings([]string{"a", "a", "b"}), cfg)
}

func TestCountEqualCoreLevel(t *testing.T) {
	cfg := DefaultConfig()
	// RLE path: counts come from run lengths, not expansion.
	src := []int32{4, 4, 4, 9, 9, 4, 4}
	enc := CompressIntAs(nil, src, CodeRLE, cfg)
	count, used, err := CountEqualInt(enc, 4, cfg)
	if err != nil || used != len(enc) || count != 5 {
		t.Fatalf("RLE count = %d (err %v)", count, err)
	}
	// Frequency path: top value answered from the bitmap.
	freqSrc := []int32{7, 7, 7, 7, 2, 7, 7, 3}
	enc = CompressIntAs(nil, freqSrc, CodeFrequency, cfg)
	count, _, err = CountEqualInt(enc, 7, cfg)
	if err != nil || count != 6 {
		t.Fatalf("Frequency top count = %d (err %v)", count, err)
	}
	count, _, err = CountEqualInt(enc, 3, cfg)
	if err != nil || count != 1 {
		t.Fatalf("Frequency exception count = %d (err %v)", count, err)
	}
	// Double dict path.
	dsrc := []float64{1.5, 2.5, 1.5, 1.5}
	denc := CompressDoubleAs(nil, dsrc, CodeDict, cfg)
	dcount, _, err := CountEqualDouble(denc, 1.5, cfg)
	if err != nil || dcount != 3 {
		t.Fatalf("double dict count = %d (err %v)", dcount, err)
	}
	if dcount, _, _ := CountEqualDouble(denc, 9.0, cfg); dcount != 0 {
		t.Fatalf("absent double counted %d", dcount)
	}
	// String dict path.
	ssrc := coldata.MakeStrings([]string{"a", "b", "a", "a", "c"})
	senc := CompressStringAs(nil, ssrc, CodeDict, cfg)
	scount, _, err := CountEqualString(senc, []byte("a"), cfg)
	if err != nil || scount != 3 {
		t.Fatalf("string dict count = %d (err %v)", scount, err)
	}
	if scount, _, _ := CountEqualString(senc, []byte("zz"), cfg); scount != 0 {
		t.Fatalf("absent string counted %d", scount)
	}
	// Errors on garbage.
	if _, _, err := CountEqualInt([]byte{}, 1, cfg); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, _, err := CountEqualString([]byte{99}, []byte("x"), cfg); err == nil {
		t.Fatal("bad scheme code accepted")
	}
}
