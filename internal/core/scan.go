package core

import (
	"bytes"
	"encoding/binary"
	"math"

	"btrblocks/internal/roaring"
)

// This file implements predicate evaluation directly on compressed
// streams — the capability §7 of the paper notes BtrBlocks can support
// when the chosen schemes permit it. Equality counting exploits the
// compressed representation:
//
//   - OneValue answers in O(1)
//   - RLE sums run lengths without expanding runs
//   - Dictionary resolves the value to a code once and counts codes
//   - Frequency answers the top value from the bitmap cardinality
//   - bit-packed/plain streams fall back to decode-and-count
//
// All functions return the match count and the bytes consumed.

// CountEqualInt counts occurrences of v in one compressed int stream.
func CountEqualInt(src []byte, v int32, cfg *Config) (int, int, error) {
	c := cfg.normalized()
	return countEqualInt(src, v, &c)
}

func countEqualInt(src []byte, v int32, cfg *Config) (int, int, error) {
	if len(src) < 1 {
		return 0, 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeOneValue:
		if len(body) < 8 {
			return 0, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > maxBlockValues {
			return 0, 0, ErrCorrupt
		}
		stored := int32(binary.LittleEndian.Uint32(body[4:]))
		if stored == v {
			return n, 9, nil
		}
		return 0, 9, nil
	case CodeRLE:
		values, lengths, used, err := decodeRLEParts(src, cfg)
		if err != nil {
			return 0, 0, err
		}
		count := 0
		for i, rv := range values {
			if rv == v {
				count += int(lengths[i])
			}
		}
		return count, used, nil
	case CodeDict:
		if len(body) < 8 {
			return 0, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		dictN := int(binary.LittleEndian.Uint32(body[4:]))
		if n > maxBlockValues || dictN > n {
			return 0, 0, ErrCorrupt
		}
		pos := 1 + 8
		dict, used, err := decompressInt(nil, src[pos:], cfg)
		if err != nil {
			return 0, 0, err
		}
		pos += used
		target := int32(-1)
		for i, dv := range dict {
			if dv == v {
				target = int32(i)
				break
			}
		}
		if target < 0 {
			// value absent: skip the codes stream without counting
			_, used, err := decompressInt(nil, src[pos:], cfg)
			if err != nil {
				return 0, 0, err
			}
			return 0, pos + used, nil
		}
		count, used, err := countEqualInt(src[pos:], target, cfg)
		if err != nil {
			return 0, 0, err
		}
		return count, pos + used, nil
	case CodeFrequency:
		if len(body) < 8 {
			return 0, 0, ErrCorrupt
		}
		top := int32(binary.LittleEndian.Uint32(body[4:]))
		pos := 1 + 8
		bm, used, err := roaring.FromBytes(src[pos:])
		if err != nil {
			return 0, 0, ErrCorrupt
		}
		pos += used
		if top == v {
			// still must skip the exceptions stream
			_, used, err := decompressInt(nil, src[pos:], cfg)
			if err != nil {
				return 0, 0, err
			}
			return bm.Cardinality(), pos + used, nil
		}
		count, used, err := countEqualInt(src[pos:], v, cfg)
		if err != nil {
			return 0, 0, err
		}
		return count, pos + used, nil
	default:
		// terminal bit-packed/plain streams: decode and count
		values, used, err := decompressInt(nil, src, cfg)
		if err != nil {
			return 0, 0, err
		}
		count := 0
		for _, x := range values {
			if x == v {
				count++
			}
		}
		return count, used, nil
	}
}

// CountEqualDouble counts bit-exact occurrences of v in one compressed
// double stream.
func CountEqualDouble(src []byte, v float64, cfg *Config) (int, int, error) {
	c := cfg.normalized()
	return countEqualDouble(src, v, &c)
}

func countEqualDouble(src []byte, v float64, cfg *Config) (int, int, error) {
	if len(src) < 1 {
		return 0, 0, ErrCorrupt
	}
	vb := math.Float64bits(v)
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeOneValue:
		if len(body) < 12 {
			return 0, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > maxBlockValues {
			return 0, 0, ErrCorrupt
		}
		if binary.LittleEndian.Uint64(body[4:]) == vb {
			return n, 13, nil
		}
		return 0, 13, nil
	case CodeRLE:
		if len(body) < 8 {
			return 0, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		runCount := int(binary.LittleEndian.Uint32(body[4:]))
		if n > maxBlockValues || runCount > n {
			return 0, 0, ErrCorrupt
		}
		pos := 1 + 8
		values, used, err := decompressDouble(nil, src[pos:], cfg)
		if err != nil {
			return 0, 0, err
		}
		pos += used
		lengths, used, err := decompressInt(nil, src[pos:], cfg)
		if err != nil {
			return 0, 0, err
		}
		pos += used
		if len(values) != runCount || len(lengths) != runCount {
			return 0, 0, ErrCorrupt
		}
		count := 0
		for i, rv := range values {
			if math.Float64bits(rv) == vb {
				count += int(lengths[i])
			}
		}
		return count, pos, nil
	case CodeDict:
		if len(body) < 8 {
			return 0, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		dictN := int(binary.LittleEndian.Uint32(body[4:]))
		if n > maxBlockValues || dictN > n {
			return 0, 0, ErrCorrupt
		}
		pos := 1 + 8
		dict, used, err := decompressDouble(nil, src[pos:], cfg)
		if err != nil {
			return 0, 0, err
		}
		pos += used
		target := int32(-1)
		for i, dv := range dict {
			if math.Float64bits(dv) == vb {
				target = int32(i)
				break
			}
		}
		if target < 0 {
			_, used, err := decompressInt(nil, src[pos:], cfg)
			if err != nil {
				return 0, 0, err
			}
			return 0, pos + used, nil
		}
		count, used, err := countEqualInt(src[pos:], target, cfg)
		if err != nil {
			return 0, 0, err
		}
		return count, pos + used, nil
	case CodeFrequency:
		if len(body) < 12 {
			return 0, 0, ErrCorrupt
		}
		top := binary.LittleEndian.Uint64(body[4:])
		pos := 1 + 12
		bm, used, err := roaring.FromBytes(src[pos:])
		if err != nil {
			return 0, 0, ErrCorrupt
		}
		pos += used
		if top == vb {
			_, used, err := decompressDouble(nil, src[pos:], cfg)
			if err != nil {
				return 0, 0, err
			}
			return bm.Cardinality(), pos + used, nil
		}
		count, used, err := countEqualDouble(src[pos:], v, cfg)
		if err != nil {
			return 0, 0, err
		}
		return count, pos + used, nil
	default:
		values, used, err := decompressDouble(nil, src, cfg)
		if err != nil {
			return 0, 0, err
		}
		count := 0
		for _, x := range values {
			if math.Float64bits(x) == vb {
				count++
			}
		}
		return count, used, nil
	}
}

// CountEqualString counts occurrences of value in one compressed string
// stream.
func CountEqualString(src []byte, value []byte, cfg *Config) (int, int, error) {
	c := cfg.normalized()
	return countEqualString(src, value, &c)
}

func countEqualString(src []byte, value []byte, cfg *Config) (int, int, error) {
	if len(src) < 1 {
		return 0, 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeOneValue:
		if len(body) < 8 {
			return 0, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		l := int(binary.LittleEndian.Uint32(body[4:]))
		if n > maxBlockValues || l < 0 || len(body) < 8+l {
			return 0, 0, ErrCorrupt
		}
		if bytes.Equal(body[8:8+l], value) {
			return n, 1 + 8 + l, nil
		}
		return 0, 1 + 8 + l, nil
	case CodeDict:
		// Resolve the value against the dictionary once, then count the
		// matching code in the (typically RLE/bit-packed) code stream
		// without touching string bytes again.
		views, err := decodeStringDictViews(body, cfg)
		if err != nil {
			return 0, 0, err
		}
		target := int32(-1)
		for i := 0; i < views.dict.Len(); i++ {
			if bytes.Equal(views.dict.Bytes(i), value) {
				target = int32(i)
				break
			}
		}
		codesStream := body[views.codesOff:]
		if target < 0 {
			_, cUsed, err := decompressInt(nil, codesStream, cfg)
			if err != nil {
				return 0, 0, err
			}
			return 0, 1 + views.codesOff + cUsed, nil
		}
		count, cUsed, err := countEqualInt(codesStream, target, cfg)
		if err != nil {
			return 0, 0, err
		}
		return count, 1 + views.codesOff + cUsed, nil
	default:
		// FSST / plain: decode views and compare bytes
		views, used, err := decompressString(src, cfg)
		if err != nil {
			return 0, 0, err
		}
		count := 0
		for i := 0; i < views.Len(); i++ {
			if bytes.Equal(views.Bytes(i), value) {
				count++
			}
		}
		return count, used, nil
	}
}
