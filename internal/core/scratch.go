package core

// Scratch is a per-worker arena of reusable decode buffers. The cascade
// decoders allocate short-lived temporaries on every block — RLE run
// values and lengths, dictionary entries and codes, frequency exceptions,
// string length vectors — and in the parallel engine those allocations
// dominate the per-block decode path. A Scratch turns them into free-list
// reuse: decoders take a zero-length slice with retained capacity via
// getInt32/getInt64/getFloat64 and return it with the matching put once
// the block is expanded.
//
// Ownership rules (see PERFORMANCE.md):
//
//   - A Scratch is single-owner state. It is NOT safe for concurrent use;
//     the parallel engine gives each worker its own instance and a worker
//     never touches another worker's arena.
//   - Only temporaries that die before the decoder returns may come from
//     the arena. Anything that escapes into the decoded output (or into a
//     cached pool) must be allocated normally.
//   - A nil *Scratch is valid everywhere and means "allocate as before":
//     get returns nil (append allocates fresh) and put is a no-op, so the
//     serial path and external callers pay nothing.
type Scratch struct {
	i32 [][]int32
	i64 [][]int64
	f64 [][]float64
}

// maxScratchSlices bounds each free list so a pathological cascade cannot
// pin an unbounded number of buffers per worker.
const maxScratchSlices = 16

func (s *Scratch) getInt32() []int32 {
	if s == nil || len(s.i32) == 0 {
		return nil
	}
	b := s.i32[len(s.i32)-1]
	s.i32 = s.i32[:len(s.i32)-1]
	return b[:0]
}

func (s *Scratch) putInt32(b []int32) {
	if s == nil || cap(b) == 0 || len(s.i32) >= maxScratchSlices {
		return
	}
	s.i32 = append(s.i32, b[:0])
}

func (s *Scratch) getInt64() []int64 {
	if s == nil || len(s.i64) == 0 {
		return nil
	}
	b := s.i64[len(s.i64)-1]
	s.i64 = s.i64[:len(s.i64)-1]
	return b[:0]
}

func (s *Scratch) putInt64(b []int64) {
	if s == nil || cap(b) == 0 || len(s.i64) >= maxScratchSlices {
		return
	}
	s.i64 = append(s.i64, b[:0])
}

func (s *Scratch) getFloat64() []float64 {
	if s == nil || len(s.f64) == 0 {
		return nil
	}
	b := s.f64[len(s.f64)-1]
	s.f64 = s.f64[:len(s.f64)-1]
	return b[:0]
}

func (s *Scratch) putFloat64(b []float64) {
	if s == nil || cap(b) == 0 || len(s.f64) >= maxScratchSlices {
		return
	}
	s.f64 = append(s.f64, b[:0])
}
