package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTripInt64(t *testing.T, src []int64, cfg *Config) []byte {
	t.Helper()
	enc := CompressInt64(nil, src, cfg)
	dec, used, err := DecompressInt64(nil, enc, cfg)
	if err != nil {
		t.Fatalf("decompress (%s): %v", Code(enc[0]), err)
	}
	if used != len(enc) || len(dec) != len(src) {
		t.Fatalf("shape mismatch (%s): used %d/%d, n %d/%d",
			Code(enc[0]), used, len(enc), len(dec), len(src))
	}
	for i := range src {
		if dec[i] != src[i] {
			t.Fatalf("value %d = %d, want %d (%s)", i, dec[i], src[i], Code(enc[0]))
		}
	}
	return enc
}

func TestInt64OneValue(t *testing.T) {
	cfg := DefaultConfig()
	src := make([]int64, 64000)
	for i := range src {
		src[i] = math.MaxInt64 - 12345
	}
	enc := roundTripInt64(t, src, cfg)
	if Code(enc[0]) != CodeOneValue {
		t.Fatalf("scheme = %s", Code(enc[0]))
	}
}

func TestInt64TimestampsChooseFOR(t *testing.T) {
	// Microsecond timestamps over one hour: huge absolute values, narrow
	// range — exactly what FOR+bit-packing solves and int32 cannot hold.
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	base := int64(1_700_000_000_000_000)
	src := make([]int64, 64000)
	for i := range src {
		src[i] = base + int64(rng.Intn(3_600_000_000))
	}
	enc := roundTripInt64(t, src, cfg)
	if Code(enc[0]) != CodeFastBP {
		t.Fatalf("scheme = %s, want FastBP on timestamps", Code(enc[0]))
	}
	if ratio := float64(len(src)*8) / float64(len(enc)); ratio < 1.8 {
		t.Fatalf("timestamp ratio only %.2f", ratio)
	}
}

func TestInt64RunsAndDict(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(2))
	src := make([]int64, 0, 64000)
	for len(src) < 64000 {
		v := int64(rng.Intn(30)) * 1_000_000_007
		for k := 0; k < 20+rng.Intn(100) && len(src) < 64000; k++ {
			src = append(src, v)
		}
	}
	enc := roundTripInt64(t, src, cfg)
	if got := Code(enc[0]); got != CodeRLE && got != CodeDict {
		t.Fatalf("scheme = %s, want RLE/Dict", got)
	}
	if ratio := float64(len(src)*8) / float64(len(enc)); ratio < 20 {
		t.Fatalf("run data compressed only %.1fx", ratio)
	}
}

func TestInt64FrequencyForced(t *testing.T) {
	cfg := &Config{IntSchemes: []Code{CodeFrequency}}
	rng := rand.New(rand.NewSource(3))
	src := make([]int64, 30000)
	for i := range src {
		if rng.Float64() < 0.9 {
			src[i] = -42
		} else {
			src[i] = rng.Int63()
		}
	}
	enc := roundTripInt64(t, src, cfg)
	if Code(enc[0]) != CodeFrequency {
		t.Fatalf("scheme = %s", Code(enc[0]))
	}
}

func TestInt64EdgeValues(t *testing.T) {
	cfg := DefaultConfig()
	roundTripInt64(t, nil, cfg)
	roundTripInt64(t, []int64{0}, cfg)
	roundTripInt64(t, []int64{math.MinInt64, math.MaxInt64, 0, -1, 1}, cfg)
}

func TestInt64ScalarMatchesOptimized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := make([]int64, 0, 30000)
	for len(src) < 30000 {
		v := rng.Int63()
		for k := 0; k < 1+rng.Intn(60) && len(src) < 30000; k++ {
			src = append(src, v)
		}
	}
	enc := CompressInt64(nil, src, DefaultConfig())
	fast, _, err := DecompressInt64(nil, enc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	scalar, _, err := DecompressInt64(nil, enc, &Config{ScalarDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if fast[i] != src[i] || scalar[i] != src[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestInt64Truncation(t *testing.T) {
	cfg := DefaultConfig()
	src := make([]int64, 5000)
	for i := range src {
		src[i] = int64(i % 50)
	}
	enc := CompressInt64(nil, src, cfg)
	for cut := 0; cut < len(enc); cut += 5 {
		dec, used, err := DecompressInt64(nil, enc[:cut], cfg)
		if err == nil && used == len(enc) {
			t.Fatalf("truncation at %d: decoded %d values silently", cut, len(dec))
		}
	}
}

func TestInt64Quick(t *testing.T) {
	cfg := DefaultConfig()
	f := func(src []int64) bool {
		enc := CompressInt64(nil, src, cfg)
		dec, used, err := DecompressInt64(nil, enc, cfg)
		if err != nil || used != len(enc) || len(dec) != len(src) {
			return false
		}
		for i := range src {
			if dec[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInt64CountEqual(t *testing.T) {
	cfg := DefaultConfig()
	src := []int64{5, 5, 5, 1 << 40, 5, 5, -9}
	for _, code := range []Code{CodeRLE, CodeFrequency} {
		restricted := &Config{IntSchemes: []Code{code}}
		enc := CompressInt64(nil, src, restricted)
		count, used, err := CountEqualInt64(enc, 5, cfg)
		if err != nil || used != len(enc) || count != 5 {
			t.Fatalf("%s: count = %d (err %v)", code, count, err)
		}
		if count, _, _ := CountEqualInt64(enc, 1<<40, cfg); count != 1 {
			t.Fatalf("%s: outlier count = %d", code, count)
		}
		if count, _, _ := CountEqualInt64(enc, 12345, cfg); count != 0 {
			t.Fatalf("%s: absent count = %d", code, count)
		}
	}
	// dict path
	dsrc := make([]int64, 1000)
	for i := range dsrc {
		dsrc[i] = int64(i%7) * 1e15
	}
	enc := CompressInt64(nil, dsrc, &Config{IntSchemes: []Code{CodeDict}})
	if count, _, err := CountEqualInt64(enc, 2e15, cfg); err != nil || count != 143 {
		t.Fatalf("dict count = %d (err %v)", count, err)
	}
}
