package core

import (
	"fmt"
	"math/rand"
	"testing"

	"btrblocks/coldata"
)

// checkLayout inspects a compressed stream and asserts the layout tree
// consumes exactly the same bytes as the decoder and satisfies the size
// invariant at every node.
func checkLayout(t *testing.T, kind Kind, enc []byte, wantValues int) *Layout {
	t.Helper()
	l, used, err := InspectStream(kind, enc)
	if err != nil {
		t.Fatalf("InspectStream (%s): %v", Code(enc[0]), err)
	}
	if used != len(enc) {
		t.Fatalf("inspect consumed %d of %d (%s)", used, len(enc), Code(enc[0]))
	}
	if l.Values != wantValues {
		t.Fatalf("root values %d, want %d (%s)", l.Values, wantValues, Code(enc[0]))
	}
	l.Walk(func(n *Layout, _ int) {
		sum := n.HeaderBytes + n.PayloadBytes
		for _, c := range n.Children {
			sum += c.Bytes
		}
		if sum != n.Bytes {
			t.Fatalf("node %s: Bytes %d != header %d + payload %d + children %d",
				n.Code, n.Bytes, n.HeaderBytes, n.PayloadBytes, sum-n.HeaderBytes-n.PayloadBytes)
		}
		if n.Bytes < 0 || n.HeaderBytes < 0 || n.PayloadBytes < 0 {
			t.Fatalf("node %s: negative sizes %+v", n.Code, n)
		}
	})
	return l
}

// intCases covers every integer scheme's trigger pattern.
func intCases(rng *rand.Rand) map[string][]int32 {
	runs := make([]int32, 20000)
	for i := range runs {
		runs[i] = int32(i / 500)
	}
	dict := make([]int32, 20000)
	for i := range dict {
		dict[i] = int32(rng.Intn(40) * 977)
	}
	freq := make([]int32, 20000)
	for i := range freq {
		if rng.Intn(100) < 95 {
			freq[i] = 7
		} else {
			freq[i] = rng.Int31()
		}
	}
	small := make([]int32, 20000)
	for i := range small {
		small[i] = rng.Int31n(1 << 12)
	}
	outliers := make([]int32, 20000)
	for i := range outliers {
		if i%100 == 3 {
			outliers[i] = rng.Int31()
		} else {
			outliers[i] = rng.Int31n(64)
		}
	}
	random := make([]int32, 20000)
	for i := range random {
		random[i] = rng.Int31() - rng.Int31()
	}
	one := make([]int32, 20000)
	for i := range one {
		one[i] = 42
	}
	return map[string][]int32{
		"runs": runs, "dict": dict, "freq": freq, "small": small,
		"outliers": outliers, "random": random, "one": one,
		"empty": nil, "tiny": {1, 2, 3},
	}
}

func TestInspectIntStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig()
	for name, src := range intCases(rng) {
		enc := roundTripInt(t, src, cfg)
		checkLayout(t, KindInt, enc, len(src))
		// Forced schemes exercise walkers the sampler may not pick.
		for _, code := range AllCodes() {
			fcfg := *cfg
			fcfg.IntSchemes = []Code{code}
			fenc := CompressInt(nil, src, &fcfg)
			if _, _, err := DecompressInt(nil, fenc, cfg); err != nil {
				continue // scheme not viable for this data; encoder fell back
			}
			checkLayout(t, KindInt, fenc, len(src))
		}
		_ = name
	}
}

func TestInspectInt64Streams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := DefaultConfig()
	cases := map[string][]int64{
		"empty": nil,
		"one":   {123456789012345, 123456789012345, 123456789012345},
	}
	ts := make([]int64, 20000)
	base := int64(1_600_000_000_000_000)
	for i := range ts {
		ts[i] = base + int64(i)*1000 + int64(rng.Intn(50))
	}
	cases["timestamps"] = ts
	wide := make([]int64, 20000)
	for i := range wide {
		wide[i] = rng.Int63() - rng.Int63()
	}
	cases["random"] = wide
	freq := make([]int64, 20000)
	for i := range freq {
		if rng.Intn(100) < 95 {
			freq[i] = base
		} else {
			freq[i] = rng.Int63()
		}
	}
	cases["freq"] = freq
	for name, src := range cases {
		enc := roundTripInt64(t, src, cfg)
		checkLayout(t, KindInt64, enc, len(src))
		_ = name
	}
}

func TestInspectDoubleStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultConfig()
	prices := make([]float64, 20000)
	for i := range prices {
		prices[i] = float64(rng.Intn(1000000)) / 100
	}
	random := make([]float64, 20000)
	for i := range random {
		random[i] = rng.NormFloat64() * 1e17
	}
	one := make([]float64, 5000)
	for i := range one {
		one[i] = 3.25
	}
	for _, src := range [][]float64{prices, random, one, nil, {1.5}} {
		enc := roundTripDouble(t, src, cfg)
		checkLayout(t, KindDouble, enc, len(src))
	}
}

func TestInspectStringStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := DefaultConfig()
	cities := []string{"PHOENIX", "RALEIGH", "BETHESDA", "ATHENS", "CURITIBA"}
	catVals := make([]string, 20000)
	for i := range catVals {
		catVals[i] = cities[rng.Intn(len(cities))]
	}
	textVals := make([]string, 8000)
	for i := range textVals {
		textVals[i] = fmt.Sprintf("http://example.com/%d/page-%d.html", rng.Intn(500), i)
	}
	oneVals := make([]string, 3000)
	for i := range oneVals {
		oneVals[i] = "constant"
	}
	for _, vals := range [][]string{catVals, textVals, oneVals, nil, {"a", "bb", "ccc"}} {
		src := coldata.MakeStrings(vals)
		enc := roundTripString(t, src, cfg)
		checkLayout(t, KindString, enc, len(vals))
	}
}

func TestInspectStreamRejectsCorrupt(t *testing.T) {
	cfg := DefaultConfig()
	src := make([]int32, 5000)
	for i := range src {
		src[i] = int32(i % 100)
	}
	enc := CompressInt(nil, src, cfg)
	if _, _, err := InspectStream(KindInt, enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, _, err := InspectStream(KindInt, nil); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, _, err := InspectStream(KindInt, []byte{200, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestDecisionHookFires(t *testing.T) {
	cfg := DefaultConfig()
	var decisions []Decision
	cfg.OnDecision = func(d Decision) { decisions = append(decisions, d) }
	src := make([]int32, 20000)
	for i := range src {
		src[i] = int32(i / 500)
	}
	enc := CompressInt(nil, src, cfg)
	if len(decisions) == 0 {
		t.Fatal("no decisions delivered")
	}
	root := decisions[len(decisions)-1]
	if root.Level != 0 {
		t.Fatalf("last decision level %d, want 0 (post-order)", root.Level)
	}
	if root.Code != Code(enc[0]) {
		t.Fatalf("root decision %v, stream is %v", root.Code, Code(enc[0]))
	}
	if root.Kind != KindInt || root.Values != len(src) || root.InputBytes != 4*len(src) {
		t.Fatalf("root decision: %+v", root)
	}
	if root.OutputBytes != len(enc) {
		t.Fatalf("root output %d, stream is %d", root.OutputBytes, len(enc))
	}
	for _, d := range decisions[:len(decisions)-1] {
		if d.Level <= 0 {
			t.Fatalf("non-root decision at level %d", d.Level)
		}
	}

	// Hook output must not change the encoding.
	plain := CompressInt(nil, src, DefaultConfig())
	if string(plain) != string(enc) {
		t.Fatal("decision hook changed the output")
	}
}

func TestSchemeRegistry(t *testing.T) {
	if len(AllCodes()) != 9 {
		t.Fatalf("%d codes", len(AllCodes()))
	}
	for _, c := range AllCodes() {
		if !c.Valid() {
			t.Fatalf("code %d invalid", c)
		}
		got, ok := CodeFromName(c.String())
		if !ok || got != c {
			t.Fatalf("round trip of %q failed", c.String())
		}
	}
	if _, ok := CodeFromName("NoSuchScheme"); ok {
		t.Fatal("bogus name resolved")
	}
	if got, ok := CodeFromName("dictionary"); !ok || got != CodeDict {
		t.Fatal("case-insensitive lookup failed")
	}
}
