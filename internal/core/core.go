// Package core implements the heart of BtrBlocks: the pool of cascading
// encoding schemes per data type, the sampling-based scheme selection
// algorithm (Listing 1 of the paper), and the self-describing compressed
// stream format. Every compressed stream is one scheme-code byte followed
// by a scheme-specific payload whose sub-streams are themselves streams
// chosen by the same algorithm with one less cascade level.
package core

import (
	"errors"
	"math/rand"

	"btrblocks/internal/sample"
)

// Code identifies an encoding scheme in a compressed stream.
type Code uint8

// Scheme codes. The set mirrors Table 1 / Figure 3 of the paper.
const (
	CodeUncompressed Code = iota
	CodeOneValue
	CodeRLE
	CodeDict
	CodeFrequency
	CodeFastBP   // FOR + 128-lane bit packing (SIMD-FastBP128 stand-in)
	CodeFastPFOR // patched FOR (SIMD-FastPFOR stand-in)
	CodePDE      // Pseudodecimal Encoding
	CodeFSST     // Fast Static Symbol Table (strings)
	numCodes
)

var codeNames = [numCodes]string{
	"Uncompressed", "OneValue", "RLE", "Dictionary", "Frequency",
	"FastBP", "FastPFOR", "Pseudodecimal", "FSST",
}

// String returns the human-readable scheme name.
func (c Code) String() string {
	if int(c) < len(codeNames) {
		return codeNames[c]
	}
	return "Invalid"
}

// ErrCorrupt is returned by the decompressors for malformed streams.
var ErrCorrupt = errors.New("btrblocks: corrupt stream")

// DefaultMaxCascadeDepth is the paper's default maximum recursion depth.
const DefaultMaxCascadeDepth = 3

// Config controls scheme selection and decoding behaviour.
type Config struct {
	// MaxCascadeDepth bounds recursive scheme application (default 3).
	MaxCascadeDepth int
	// Sample is the sampling strategy for ratio estimation (default 10×64).
	Sample sample.Strategy
	// ScalarDecode selects the naive per-element decode kernels instead of
	// the optimized ones — the Go analog of the §6.8 SIMD ablation.
	ScalarDecode bool
	// DisableFuseDictRLE turns off the fused Dict+RLE decompression of §5.
	DisableFuseDictRLE bool
	// IntSchemes / DoubleSchemes / StringSchemes restrict the scheme pool;
	// nil means "all schemes for that type". CodeUncompressed is always an
	// implicit candidate. Used by the Figure 4 pool-ablation experiments.
	IntSchemes    []Code
	DoubleSchemes []Code
	StringSchemes []Code
	// Seed makes sampling deterministic.
	Seed int64
	// MaxDecodedValues caps the value count a decoder will accept from a
	// stream header (0 = MaxBlockValues). The file layer sets it to the
	// block's declared row count so corrupt streams cannot claim huge
	// outputs.
	MaxDecodedValues int
}

// maxN returns the effective decode cap.
func (c *Config) maxN() int {
	if c.MaxDecodedValues > 0 && c.MaxDecodedValues < maxBlockValues {
		return c.MaxDecodedValues
	}
	return maxBlockValues
}

// DefaultConfig returns the paper's default configuration.
func DefaultConfig() *Config {
	return &Config{
		MaxCascadeDepth: DefaultMaxCascadeDepth,
		Sample:          sample.Default,
		Seed:            42,
	}
}

func (c *Config) normalized() Config {
	out := *c
	if out.MaxCascadeDepth <= 0 {
		out.MaxCascadeDepth = DefaultMaxCascadeDepth
	}
	if out.Sample.Runs <= 0 || out.Sample.RunLen <= 0 {
		out.Sample = sample.Default
	}
	return out
}

func (c *Config) rng() *rand.Rand {
	return rand.New(rand.NewSource(c.Seed))
}

func (c *Config) intEnabled(code Code) bool    { return enabled(c.IntSchemes, code) }
func (c *Config) doubleEnabled(code Code) bool { return enabled(c.DoubleSchemes, code) }
func (c *Config) stringEnabled(code Code) bool { return enabled(c.StringSchemes, code) }

func enabled(pool []Code, code Code) bool {
	if pool == nil {
		return true
	}
	for _, p := range pool {
		if p == code {
			return true
		}
	}
	return false
}

// MaxBlockValues bounds per-stream value counts: blocks larger than this
// cannot be compressed, and decoders reject claimed counts above it so a
// corrupt header cannot trigger an enormous allocation or a multi-second
// zero-fill (found by fuzzing).
const MaxBlockValues = 1 << 22

const maxBlockValues = MaxBlockValues
