// Package core implements the heart of BtrBlocks: the pool of cascading
// encoding schemes per data type, the sampling-based scheme selection
// algorithm (Listing 1 of the paper), and the self-describing compressed
// stream format. Every compressed stream is one scheme-code byte followed
// by a scheme-specific payload whose sub-streams are themselves streams
// chosen by the same algorithm with one less cascade level.
package core

import (
	"errors"
	"math/rand"
	"strings"

	"btrblocks/internal/sample"
)

// Code identifies an encoding scheme in a compressed stream.
type Code uint8

// Scheme codes. The set mirrors Table 1 / Figure 3 of the paper.
const (
	CodeUncompressed Code = iota
	CodeOneValue
	CodeRLE
	CodeDict
	CodeFrequency
	CodeFastBP   // FOR + 128-lane bit packing (SIMD-FastBP128 stand-in)
	CodeFastPFOR // patched FOR (SIMD-FastPFOR stand-in)
	CodePDE      // Pseudodecimal Encoding
	CodeFSST     // Fast Static Symbol Table (strings)
	numCodes
)

var codeNames = [numCodes]string{
	"Uncompressed", "OneValue", "RLE", "Dictionary", "Frequency",
	"FastBP", "FastPFOR", "Pseudodecimal", "FSST",
}

// String returns the human-readable scheme name.
func (c Code) String() string {
	if int(c) < len(codeNames) {
		return codeNames[c]
	}
	return "Invalid"
}

// Valid reports whether c is a defined scheme code.
func (c Code) Valid() bool { return c < numCodes }

// AllCodes returns every defined scheme code in tag order.
func AllCodes() []Code {
	out := make([]Code, numCodes)
	for i := range out {
		out[i] = Code(i)
	}
	return out
}

// CodeFromName resolves a scheme name (as returned by Code.String) back
// to its code. The lookup is case-insensitive.
func CodeFromName(name string) (Code, bool) {
	for i, n := range codeNames {
		if strings.EqualFold(n, name) {
			return Code(i), true
		}
	}
	return 0, false
}

// Kind identifies the value kind of a compressed stream. Sub-streams of
// a cascade may have a different kind than their parent: RLE run lengths
// and dictionary codes are 32-bit integer streams regardless of the
// parent's kind.
type Kind uint8

// Stream value kinds.
const (
	KindInt Kind = iota
	KindInt64
	KindDouble
	KindString
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindInt64:
		return "int64"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	}
	return "invalid"
}

// CandidateEstimate records one scheme the picker considered for a
// stream: the sample-based compression-ratio estimate it scored and the
// encoded size of the sample trial. The implicit Uncompressed baseline
// is reported with ratio 1. Candidates are only collected when
// Config.OnDecision is set; the default path allocates nothing.
type CandidateEstimate struct {
	// Code is the candidate scheme.
	Code Code
	// EstimatedRatio is the sample-based compression-ratio estimate
	// (sample raw bytes / trial-encoded bytes).
	EstimatedRatio float64
	// SampleBytes is the trial encoding's size in bytes (0 when the
	// candidate was scored without a trial, e.g. the OneValue fast path).
	SampleBytes int
}

// Decision describes one scheme-selection outcome: the scheme chosen for
// one stream (the block root or a cascade sub-stream) and what it did.
// Decisions are delivered to Config.OnDecision in post-order — a
// stream's sub-stream decisions arrive before its own.
type Decision struct {
	// Kind is the stream's value kind.
	Kind Kind
	// Level is the cascade level: 0 for the block root, 1 for its direct
	// sub-streams, and so on.
	Level int
	// Code is the chosen scheme.
	Code Code
	// Values is the stream's value count.
	Values int
	// InputBytes is the stream's raw binary size (4 or 8 bytes per
	// value; strings count payload plus one 32-bit offset per value).
	// OutputBytes is the encoded size including the scheme tag.
	InputBytes  int
	OutputBytes int
	// EstimatedRatio is the sample-based estimate that won the pick
	// (1 when no scheme beat Uncompressed).
	EstimatedRatio float64
	// PickNanos is the time spent selecting the scheme: statistics,
	// sampling, and trial-encoding every viable candidate.
	PickNanos int64
	// Candidates lists every scheme the picker scored for this stream
	// (the statistics-viable pool plus the Uncompressed baseline), in
	// evaluation order. Empty on the depth-0 fallthrough, where no
	// selection ran.
	Candidates []CandidateEstimate
}

// ErrCorrupt is returned by the decompressors for malformed streams.
var ErrCorrupt = errors.New("btrblocks: corrupt stream")

// DefaultMaxCascadeDepth is the paper's default maximum recursion depth.
const DefaultMaxCascadeDepth = 3

// Config controls scheme selection and decoding behaviour.
type Config struct {
	// MaxCascadeDepth bounds recursive scheme application (default 3).
	MaxCascadeDepth int
	// Sample is the sampling strategy for ratio estimation (default 10×64).
	Sample sample.Strategy
	// ScalarDecode selects the naive per-element decode kernels instead of
	// the optimized ones — the Go analog of the §6.8 SIMD ablation.
	ScalarDecode bool
	// DisableFuseDictRLE turns off the fused Dict+RLE decompression of §5.
	DisableFuseDictRLE bool
	// IntSchemes / DoubleSchemes / StringSchemes restrict the scheme pool;
	// nil means "all schemes for that type". CodeUncompressed is always an
	// implicit candidate. Used by the Figure 4 pool-ablation experiments.
	IntSchemes    []Code
	DoubleSchemes []Code
	StringSchemes []Code
	// Seed makes sampling deterministic.
	Seed int64
	// Scratch, when non-nil, supplies reusable buffers for the decoders'
	// short-lived temporaries (run values/lengths, dictionary codes,
	// frequency exceptions). A Scratch is single-owner: it must never be
	// shared between concurrently running decodes — the parallel engine
	// hands each worker its own. Nil means "allocate per decode".
	Scratch *Scratch
	// MaxDecodedValues caps the value count a decoder will accept from a
	// stream header (0 = MaxBlockValues). The file layer sets it to the
	// block's declared row count so corrupt streams cannot claim huge
	// outputs.
	MaxDecodedValues int
	// OnDecision, when non-nil, is called once per scheme-selection
	// decision during compression — the block root and every cascade
	// sub-stream, in post-order. Sampling trial encodes do not fire the
	// hook. A nil hook adds no measurable cost to the compression path;
	// a non-nil hook additionally times each selection.
	OnDecision func(Decision)
}

// maxN returns the effective decode cap.
func (c *Config) maxN() int {
	if c.MaxDecodedValues > 0 && c.MaxDecodedValues < maxBlockValues {
		return c.MaxDecodedValues
	}
	return maxBlockValues
}

// DefaultConfig returns the paper's default configuration.
func DefaultConfig() *Config {
	return &Config{
		MaxCascadeDepth: DefaultMaxCascadeDepth,
		Sample:          sample.Default,
		Seed:            42,
	}
}

func (c *Config) normalized() Config {
	out := *c
	if out.MaxCascadeDepth <= 0 {
		out.MaxCascadeDepth = DefaultMaxCascadeDepth
	}
	if out.Sample.Runs <= 0 || out.Sample.RunLen <= 0 {
		out.Sample = sample.Default
	}
	return out
}

func (c *Config) rng() *rand.Rand {
	return rand.New(rand.NewSource(c.Seed))
}

func (c *Config) intEnabled(code Code) bool    { return enabled(c.IntSchemes, code) }
func (c *Config) doubleEnabled(code Code) bool { return enabled(c.DoubleSchemes, code) }
func (c *Config) stringEnabled(code Code) bool { return enabled(c.StringSchemes, code) }

func enabled(pool []Code, code Code) bool {
	if pool == nil {
		return true
	}
	for _, p := range pool {
		if p == code {
			return true
		}
	}
	return false
}

// MaxBlockValues bounds per-stream value counts: blocks larger than this
// cannot be compressed, and decoders reject claimed counts above it so a
// corrupt header cannot trigger an enormous allocation or a multi-second
// zero-fill (found by fuzzing).
const MaxBlockValues = 1 << 22

const maxBlockValues = MaxBlockValues
