package core

import (
	"encoding/binary"
	"math/rand"
	"slices"
	"time"

	"btrblocks/internal/bitpack"
	"btrblocks/internal/fastpfor"
	"btrblocks/internal/roaring"
	"btrblocks/internal/sample"
	"btrblocks/internal/stats"
)

// quiet returns cfg with the decision hook stripped, so the trial encodes
// a pick function runs on samples are not reported as real decisions.
func quiet(cfg *Config) *Config {
	if cfg.OnDecision == nil {
		return cfg
	}
	c := *cfg
	c.OnDecision = nil
	return &c
}

// intPoolOrder is the fixed candidate order; on estimate ties the earlier
// (cheaper to decode) scheme wins.
var intPoolOrder = []Code{CodeOneValue, CodeFastBP, CodeFastPFOR, CodeRLE, CodeDict, CodeFrequency}

// CompressInt compresses a block of int32 values into a self-describing
// stream using sampling-based scheme selection with cascading.
func CompressInt(dst []byte, src []int32, cfg *Config) []byte {
	c := cfg.normalized()
	return compressInt(dst, src, &c, c.MaxCascadeDepth, c.rng())
}

// ChooseInt reports which scheme the selection algorithm would pick for
// src and the estimated compression ratio, without compressing the block.
func ChooseInt(src []int32, cfg *Config) (Code, float64) {
	c := cfg.normalized()
	code, est, _ := pickInt(src, &c, c.MaxCascadeDepth, c.rng())
	return code, est
}

func compressInt(dst []byte, src []int32, cfg *Config, depth int, rng *rand.Rand) []byte {
	if cfg.OnDecision == nil {
		code, _, _ := pickInt(src, cfg, depth, rng)
		return encodeIntAs(dst, src, code, cfg, depth, rng)
	}
	t0 := time.Now()
	code, est, cands := pickInt(src, cfg, depth, rng)
	pickNanos := time.Since(t0).Nanoseconds()
	before := len(dst)
	dst = encodeIntAs(dst, src, code, cfg, depth, rng)
	cfg.OnDecision(Decision{
		Kind: KindInt, Level: cfg.MaxCascadeDepth - depth, Code: code,
		Values: len(src), InputBytes: 4 * len(src), OutputBytes: len(dst) - before,
		EstimatedRatio: est, PickNanos: pickNanos, Candidates: cands,
	})
	return dst
}

// EstimateOnlyInt runs just the statistics + sampling + per-scheme
// estimation for a block, without compressing it. Used to measure the
// §3.1 selection overhead.
func EstimateOnlyInt(src []int32, cfg *Config) {
	c := cfg.normalized()
	pickInt(src, &c, c.MaxCascadeDepth, c.rng())
}

// pickInt is the scheme-picking algorithm of Listing 1: filter by
// statistics, estimate each viable scheme's ratio on a sample, take the
// best. Depth 0 always yields Uncompressed. Candidate estimates are
// collected only when the caller's decision hook is set, so the default
// path allocates nothing extra.
func pickInt(src []int32, cfg *Config, depth int, rng *rand.Rand) (Code, float64, []CandidateEstimate) {
	if depth <= 0 || len(src) == 0 {
		return CodeUncompressed, 1, nil
	}
	collect := cfg.OnDecision != nil
	cfg = quiet(cfg)
	st := stats.ComputeInt(src)
	if st.Distinct == 1 && cfg.intEnabled(CodeOneValue) {
		est := float64(len(src)*4) / 9
		var cands []CandidateEstimate
		if collect {
			cands = []CandidateEstimate{{Code: CodeOneValue, EstimatedRatio: est}}
		}
		return CodeOneValue, est, cands
	}
	smp := sample.Ints(src, cfg.Sample, rng)
	rawBytes := float64(len(smp) * 4)
	best, bestRatio := CodeUncompressed, 1.0
	var cands []CandidateEstimate
	if collect {
		cands = append(cands, CandidateEstimate{Code: CodeUncompressed, EstimatedRatio: 1, SampleBytes: 5 + 4*len(smp)})
	}
	for _, code := range intPoolOrder {
		if !cfg.intEnabled(code) || !intViable(code, &st) {
			continue
		}
		enc := encodeIntAs(nil, smp, code, cfg, depth, rng)
		ratio := rawBytes / float64(len(enc))
		if collect {
			cands = append(cands, CandidateEstimate{Code: code, EstimatedRatio: ratio, SampleBytes: len(enc)})
		}
		if ratio > bestRatio {
			best, bestRatio = code, ratio
		}
	}
	return best, bestRatio, cands
}

// intViable applies the statistics-based filters of §3 (step 2): e.g. RLE
// is excluded when the average run length is < 2, Frequency when more than
// half the values are unique.
func intViable(code Code, st *stats.Int) bool {
	switch code {
	case CodeOneValue:
		return st.Distinct == 1
	case CodeRLE:
		return st.AvgRunLen >= 2
	case CodeDict:
		return st.Distinct > 1 && st.Distinct < st.N
	case CodeFrequency:
		return st.UniqueFrac <= 0.5 && st.TopCount*2 >= st.N
	case CodeFastBP, CodeFastPFOR:
		return true
	default:
		return false
	}
}

func encodeIntAs(dst []byte, src []int32, code Code, cfg *Config, depth int, rng *rand.Rand) []byte {
	dst = append(dst, byte(code))
	switch code {
	case CodeUncompressed:
		return encodeIntPlain(dst, src)
	case CodeOneValue:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
		return binary.LittleEndian.AppendUint32(dst, uint32(src[0]))
	case CodeRLE:
		values, lengths := runsOfInts(src)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(values)))
		dst = compressInt(dst, values, cfg, depth-1, rng)
		return compressInt(dst, lengths, cfg, depth-1, rng)
	case CodeDict:
		dict, codes := buildIntDict(src)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(dict)))
		dst = compressInt(dst, dict, cfg, depth-1, rng)
		return compressInt(dst, codes, cfg, depth-1, rng)
	case CodeFrequency:
		return encodeIntFrequency(dst, src, cfg, depth, rng)
	case CodeFastBP:
		return bitpack.EncodeFOR(dst, src)
	case CodeFastPFOR:
		return fastpfor.Encode(dst, src)
	}
	panic("unreachable scheme code " + code.String())
}

func encodeIntPlain(dst []byte, src []int32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
	for _, v := range src {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// runsOfInts splits src into RLE (value, length) arrays. Lengths are
// int32 so they can re-enter the integer cascade.
func runsOfInts(src []int32) (values, lengths []int32) {
	if len(src) == 0 {
		return nil, nil
	}
	cur, n := src[0], int32(0)
	for _, v := range src {
		if v == cur {
			n++
			continue
		}
		values = append(values, cur)
		lengths = append(lengths, n)
		cur, n = v, 1
	}
	values = append(values, cur)
	lengths = append(lengths, n)
	return values, lengths
}

// buildIntDict returns the sorted distinct values and per-row codes.
// Sorting keeps the dictionary itself highly compressible with FOR.
func buildIntDict(src []int32) (dict []int32, codes []int32) {
	seen := make(map[int32]int32, 1024)
	for _, v := range src {
		if _, ok := seen[v]; !ok {
			seen[v] = 0
			dict = append(dict, v)
		}
	}
	slices.Sort(dict)
	for i, v := range dict {
		seen[v] = int32(i)
	}
	codes = make([]int32, len(src))
	for i, v := range src {
		codes[i] = seen[v]
	}
	return dict, codes
}

// encodeIntFrequency stores the dominant value, a bitmap marking the
// positions holding it, and a cascaded stream of the exception values.
func encodeIntFrequency(dst []byte, src []int32, cfg *Config, depth int, rng *rand.Rand) []byte {
	st := stats.ComputeInt(src)
	top := st.TopValue
	bm := roaring.New()
	var exceptions []int32
	for i, v := range src {
		if v == top {
			bm.Add(uint32(i))
		} else {
			exceptions = append(exceptions, v)
		}
	}
	bm.RunOptimize()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(top))
	dst = bm.AppendTo(dst)
	return compressInt(dst, exceptions, cfg, depth-1, rng)
}

// DecompressInt decodes one integer stream, appending values to dst and
// returning the number of input bytes consumed.
func DecompressInt(dst []int32, src []byte, cfg *Config) ([]int32, int, error) {
	c := cfg.normalized()
	return decompressInt(dst, src, &c)
}

func decompressInt(dst []int32, src []byte, cfg *Config) ([]int32, int, error) {
	if len(src) < 1 {
		return dst, 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeUncompressed:
		out, used, err := decodeIntPlain(dst, body)
		return out, used + 1, err
	case CodeOneValue:
		if len(body) < 8 {
			return dst, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return dst, 0, ErrCorrupt
		}
		v := int32(binary.LittleEndian.Uint32(body[4:]))
		for i := 0; i < n; i++ {
			dst = append(dst, v)
		}
		return dst, 9, nil
	case CodeRLE:
		out, used, err := decodeIntRLE(dst, body, cfg)
		return out, used + 1, err
	case CodeDict:
		out, used, err := decodeIntDict(dst, body, cfg)
		return out, used + 1, err
	case CodeFrequency:
		out, used, err := decodeIntFrequency(dst, body, cfg)
		return out, used + 1, err
	case CodeFastBP:
		decode := bitpack.DecodeFOR
		if cfg.ScalarDecode {
			decode = bitpack.DecodeFORGeneric
		}
		out, used, err := decode(dst, body)
		if err != nil {
			return dst, 0, ErrCorrupt
		}
		return out, used + 1, nil
	case CodeFastPFOR:
		decode := fastpfor.Decode
		if cfg.ScalarDecode {
			decode = fastpfor.DecodeGeneric
		}
		out, used, err := decode(dst, body)
		if err != nil {
			return dst, 0, ErrCorrupt
		}
		return out, used + 1, nil
	default:
		return dst, 0, ErrCorrupt
	}
}

func decodeIntPlain(dst []int32, src []byte) ([]int32, int, error) {
	if len(src) < 4 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	if len(src) < 4+4*n {
		return dst, 0, ErrCorrupt
	}
	for i := 0; i < n; i++ {
		dst = append(dst, int32(binary.LittleEndian.Uint32(src[4+4*i:])))
	}
	return dst, 4 + 4*n, nil
}

func decodeIntRLE(dst []int32, src []byte, cfg *Config) ([]int32, int, error) {
	if len(src) < 8 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	runCount := int(binary.LittleEndian.Uint32(src[4:]))
	if n > cfg.maxN() || runCount > n {
		return dst, 0, ErrCorrupt
	}
	pos := 8
	values, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(values)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	lengths, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(lengths)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	if len(values) != runCount || len(lengths) != runCount {
		return dst, 0, ErrCorrupt
	}
	out := len(dst)
	dst = append(dst, make([]int32, n)...)
	if cfg.ScalarDecode {
		err = expandRunsScalarInt(dst[out:], values, lengths)
	} else {
		err = expandRunsInt(dst[out:], values, lengths)
	}
	if err != nil {
		return dst, 0, err
	}
	return dst, pos, nil
}

// expandRunsInt is the optimized run expansion: short runs are written
// with an unrolled 4-wide store (the Go analog of the paper's AVX2 run
// replication with overwrite-past-the-end), long runs with doubling copy.
func expandRunsInt(dst []int32, values, lengths []int32) error {
	o := 0
	for r, v := range values {
		l := int(lengths[r])
		if l < 0 || o+l > len(dst) {
			return ErrCorrupt
		}
		target := o + l
		if l <= 16 {
			// Write in groups of 4 past the run end when space allows
			// (the next run overwrites the spill, as in Listing 3).
			for o+4 <= len(dst) && o < target {
				dst[o] = v
				dst[o+1] = v
				dst[o+2] = v
				dst[o+3] = v
				o += 4
			}
			for o < target {
				dst[o] = v
				o++
			}
			o = target
			continue
		}
		run := dst[o:target]
		run[0] = v
		for filled := 1; filled < l; filled *= 2 {
			copy(run[filled:], run[:filled])
		}
		o = target
	}
	if o != len(dst) {
		return ErrCorrupt
	}
	return nil
}

// expandRunsScalarInt is the naive one-element-at-a-time expansion used by
// the scalar ablation.
func expandRunsScalarInt(dst []int32, values, lengths []int32) error {
	o := 0
	for r, v := range values {
		l := int(lengths[r])
		if l < 0 || o+l > len(dst) {
			return ErrCorrupt
		}
		for i := 0; i < l; i++ {
			dst[o] = v
			o++
		}
	}
	if o != len(dst) {
		return ErrCorrupt
	}
	return nil
}

func decodeIntDict(dst []int32, src []byte, cfg *Config) ([]int32, int, error) {
	if len(src) < 8 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	dictN := int(binary.LittleEndian.Uint32(src[4:]))
	if n > cfg.maxN() || dictN > n {
		return dst, 0, ErrCorrupt
	}
	pos := 8
	dict, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(dict)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	if len(dict) != dictN {
		return dst, 0, ErrCorrupt
	}
	codes, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(codes)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	if len(codes) != n {
		return dst, 0, ErrCorrupt
	}
	out := len(dst)
	dst = append(dst, make([]int32, n)...)
	o := dst[out:]
	if cfg.ScalarDecode {
		for i, c := range codes {
			if int(c) < 0 || int(c) >= dictN {
				return dst, 0, ErrCorrupt
			}
			o[i] = dict[c]
		}
		return dst, pos, nil
	}
	// Optimized gather: 4-wide unrolled lookup (Listing 3 bottom).
	i := 0
	for ; i+4 <= n; i += 4 {
		c0, c1, c2, c3 := codes[i], codes[i+1], codes[i+2], codes[i+3]
		if uint32(c0) >= uint32(dictN) || uint32(c1) >= uint32(dictN) ||
			uint32(c2) >= uint32(dictN) || uint32(c3) >= uint32(dictN) {
			return dst, 0, ErrCorrupt
		}
		o[i] = dict[c0]
		o[i+1] = dict[c1]
		o[i+2] = dict[c2]
		o[i+3] = dict[c3]
	}
	for ; i < n; i++ {
		c := codes[i]
		if uint32(c) >= uint32(dictN) {
			return dst, 0, ErrCorrupt
		}
		o[i] = dict[c]
	}
	return dst, pos, nil
}

func decodeIntFrequency(dst []int32, src []byte, cfg *Config) ([]int32, int, error) {
	if len(src) < 8 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	if n > cfg.maxN() {
		return dst, 0, ErrCorrupt
	}
	top := int32(binary.LittleEndian.Uint32(src[4:]))
	pos := 8
	bm, used, err := roaring.FromBytes(src[pos:])
	if err != nil {
		return dst, 0, ErrCorrupt
	}
	pos += used
	exceptions, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(exceptions)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	if bm.Cardinality()+len(exceptions) != n {
		return dst, 0, ErrCorrupt
	}
	out := len(dst)
	dst = append(dst, make([]int32, n)...)
	o := dst[out:]
	// Fill the gaps between marked (top-value) positions with exceptions
	// in one ascending pass over the bitmap.
	ei := 0
	next := 0
	okBM := true
	bm.ForEach(func(v uint32) bool {
		if int(v) >= n {
			okBM = false
			return false
		}
		for next < int(v) {
			o[next] = exceptions[ei]
			ei++
			next++
		}
		o[next] = top
		next++
		return true
	})
	if !okBM {
		return dst, 0, ErrCorrupt
	}
	for next < n {
		o[next] = exceptions[ei]
		ei++
		next++
	}
	return dst, pos, nil
}
