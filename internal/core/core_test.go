package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"btrblocks/coldata"
)

func roundTripInt(t *testing.T, src []int32, cfg *Config) []byte {
	t.Helper()
	enc := CompressInt(nil, src, cfg)
	dec, used, err := DecompressInt(nil, enc, cfg)
	if err != nil {
		t.Fatalf("decompress (%s): %v", Code(enc[0]), err)
	}
	if used != len(enc) {
		t.Fatalf("consumed %d of %d (%s)", used, len(enc), Code(enc[0]))
	}
	if len(dec) != len(src) {
		t.Fatalf("got %d values, want %d (%s)", len(dec), len(src), Code(enc[0]))
	}
	for i := range src {
		if dec[i] != src[i] {
			t.Fatalf("value %d = %d, want %d (%s)", i, dec[i], src[i], Code(enc[0]))
		}
	}
	return enc
}

func roundTripDouble(t *testing.T, src []float64, cfg *Config) []byte {
	t.Helper()
	enc := CompressDouble(nil, src, cfg)
	dec, used, err := DecompressDouble(nil, enc, cfg)
	if err != nil {
		t.Fatalf("decompress (%s): %v", Code(enc[0]), err)
	}
	if used != len(enc) {
		t.Fatalf("consumed %d of %d (%s)", used, len(enc), Code(enc[0]))
	}
	if len(dec) != len(src) {
		t.Fatalf("got %d values, want %d (%s)", len(dec), len(src), Code(enc[0]))
	}
	for i := range src {
		if math.Float64bits(dec[i]) != math.Float64bits(src[i]) {
			t.Fatalf("value %d = %v, want %v (%s)", i, dec[i], src[i], Code(enc[0]))
		}
	}
	return enc
}

func roundTripString(t *testing.T, src coldata.Strings, cfg *Config) []byte {
	t.Helper()
	enc := CompressString(nil, src, cfg)
	views, used, err := DecompressString(enc, cfg)
	if err != nil {
		t.Fatalf("decompress (%s): %v", Code(enc[0]), err)
	}
	if used != len(enc) {
		t.Fatalf("consumed %d of %d (%s)", used, len(enc), Code(enc[0]))
	}
	if views.Len() != src.Len() {
		t.Fatalf("got %d values, want %d (%s)", views.Len(), src.Len(), Code(enc[0]))
	}
	for i := 0; i < src.Len(); i++ {
		if views.At(i) != src.At(i) {
			t.Fatalf("value %d = %q, want %q (%s)", i, views.At(i), src.At(i), Code(enc[0]))
		}
	}
	return enc
}

// --- integer scheme selection & round trips ---

func TestIntOneValueColumn(t *testing.T) {
	cfg := DefaultConfig()
	src := make([]int32, 64000) // the paper's all-zero "New Build?" column
	enc := roundTripInt(t, src, cfg)
	if Code(enc[0]) != CodeOneValue {
		t.Fatalf("scheme = %s, want OneValue", Code(enc[0]))
	}
	if ratio := float64(len(src)*4) / float64(len(enc)); ratio < 10000 {
		t.Fatalf("one-value ratio only %.0f", ratio)
	}
}

func TestIntRunsChooseRLE(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(71))
	src := make([]int32, 0, 64000)
	for len(src) < 64000 {
		v := int32(rng.Intn(50))
		l := 20 + rng.Intn(200)
		for i := 0; i < l && len(src) < 64000; i++ {
			src = append(src, v)
		}
	}
	enc := roundTripInt(t, src, cfg)
	if got := Code(enc[0]); got != CodeRLE && got != CodeDict {
		t.Fatalf("scheme = %s, want RLE (or Dict over RLE codes)", got)
	}
	if ratio := float64(len(src)*4) / float64(len(enc)); ratio < 20 {
		t.Fatalf("run data compressed only %.1fx", ratio)
	}
}

func TestIntSmallRangeChoosesBitpack(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(72))
	src := make([]int32, 64000)
	for i := range src {
		src[i] = 1000000 + int32(rng.Intn(256))
	}
	enc := roundTripInt(t, src, cfg)
	if got := Code(enc[0]); got != CodeFastBP && got != CodeFastPFOR {
		t.Fatalf("scheme = %s, want FastBP/FastPFOR", got)
	}
	if ratio := float64(len(src)*4) / float64(len(enc)); ratio < 3 {
		t.Fatalf("8-bit range compressed only %.2fx", ratio)
	}
}

func TestIntOutliersChooseFastPFOR(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(73))
	src := make([]int32, 64000)
	for i := range src {
		src[i] = int32(rng.Intn(64))
		if i%100 == 0 {
			src[i] = int32(1 << 28)
		}
	}
	enc := roundTripInt(t, src, cfg)
	if got := Code(enc[0]); got != CodeFastPFOR {
		t.Fatalf("scheme = %s, want FastPFOR on outlier-heavy data", got)
	}
}

func TestIntFrequencySkew(t *testing.T) {
	cfg := &Config{IntSchemes: []Code{CodeFrequency}}
	rng := rand.New(rand.NewSource(74))
	src := make([]int32, 64000)
	for i := range src {
		if rng.Float64() < 0.9 {
			src[i] = 7777
		} else {
			src[i] = rng.Int31()
		}
	}
	enc := roundTripInt(t, src, cfg)
	if Code(enc[0]) != CodeFrequency {
		t.Fatalf("scheme = %s, want Frequency with restricted pool", Code(enc[0]))
	}
	if ratio := float64(len(src)*4) / float64(len(enc)); ratio < 3 {
		t.Fatalf("frequency ratio only %.2f", ratio)
	}
}

func TestIntEmptyAndTiny(t *testing.T) {
	cfg := DefaultConfig()
	roundTripInt(t, nil, cfg)
	roundTripInt(t, []int32{}, cfg)
	roundTripInt(t, []int32{42}, cfg)
	roundTripInt(t, []int32{math.MinInt32, math.MaxInt32}, cfg)
}

func TestIntScalarDecodeMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	src := make([]int32, 0, 30000)
	for len(src) < 30000 {
		v := int32(rng.Intn(100))
		for i := 0; i < 1+rng.Intn(50) && len(src) < 30000; i++ {
			src = append(src, v)
		}
	}
	enc := CompressInt(nil, src, DefaultConfig())
	fast, _, err := DecompressInt(nil, enc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	scalar, _, err := DecompressInt(nil, enc, &Config{ScalarDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if fast[i] != scalar[i] || fast[i] != src[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestIntQuick(t *testing.T) {
	cfg := DefaultConfig()
	f := func(src []int32) bool {
		enc := CompressInt(nil, src, cfg)
		dec, used, err := DecompressInt(nil, enc, cfg)
		if err != nil || used != len(enc) || len(dec) != len(src) {
			return false
		}
		for i := range src {
			if dec[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	src := make([]int32, 0, 5000)
	for len(src) < 5000 {
		v := int32(rng.Intn(30))
		for i := 0; i < 1+rng.Intn(20) && len(src) < 5000; i++ {
			src = append(src, v)
		}
	}
	cfg := DefaultConfig()
	enc := CompressInt(nil, src, cfg)
	for cut := 0; cut < len(enc); cut += 7 {
		dec, used, err := DecompressInt(nil, enc[:cut], cfg)
		if err == nil && used == len(enc) {
			t.Fatalf("truncation at %d: decoded %d values without error", cut, len(dec))
		}
	}
}

// --- double scheme selection & round trips ---

func TestDoublePaperCascadeExample(t *testing.T) {
	// §3.2's example input: RLE over doubles with cascaded sub-streams.
	cfg := DefaultConfig()
	src := []float64{3.5, 3.5, 18, 18, 3.5, 3.5}
	roundTripDouble(t, src, cfg)
}

func TestDoublePricingChoosesPDEOrDict(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(81))
	src := make([]float64, 64000)
	for i := range src {
		src[i] = float64(10000+rng.Intn(4000000)) / 100
	}
	enc := roundTripDouble(t, src, cfg)
	if got := Code(enc[0]); got != CodePDE {
		t.Fatalf("scheme = %s, want Pseudodecimal on high-cardinality prices", got)
	}
	if ratio := float64(len(src)*8) / float64(len(enc)); ratio < 1.5 {
		t.Fatalf("pricing doubles compressed only %.2fx", ratio)
	}
}

func TestDoubleLowCardinalityChoosesDictOrRLE(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(82))
	vals := []float64{0, 0.5, 99.99, 12.25}
	src := make([]float64, 64000)
	for i := range src {
		src[i] = vals[rng.Intn(len(vals))]
	}
	enc := roundTripDouble(t, src, cfg)
	if got := Code(enc[0]); got != CodeDict && got != CodeFrequency {
		t.Fatalf("scheme = %s, want Dict/Frequency on low-cardinality doubles", got)
	}
}

func TestDoubleSpecialValues(t *testing.T) {
	cfg := DefaultConfig()
	src := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0, 1e300, 5.5e-42}
	roundTripDouble(t, src, cfg)
}

func TestDoubleScalarDecodeMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	src := make([]float64, 64000)
	for i := range src {
		src[i] = float64(rng.Intn(100000)) / 100
		if i%977 == 0 {
			src[i] = math.NaN()
		}
	}
	enc := CompressDouble(nil, src, DefaultConfig())
	fast, _, err := DecompressDouble(nil, enc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	scalar, _, err := DecompressDouble(nil, enc, &Config{ScalarDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if math.Float64bits(fast[i]) != math.Float64bits(src[i]) ||
			math.Float64bits(scalar[i]) != math.Float64bits(src[i]) {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestDoubleQuick(t *testing.T) {
	cfg := DefaultConfig()
	f := func(raw []uint64) bool {
		src := make([]float64, len(raw))
		for i, b := range raw {
			src[i] = math.Float64frombits(b)
		}
		enc := CompressDouble(nil, src, cfg)
		dec, used, err := DecompressDouble(nil, enc, cfg)
		if err != nil || used != len(enc) || len(dec) != len(src) {
			return false
		}
		for i := range src {
			if math.Float64bits(dec[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- string scheme selection & round trips ---

func makeStringCol(n int, gen func(i int) string) coldata.Strings {
	out := coldata.NewStringsBuilder(n, 0)
	for i := 0; i < n; i++ {
		out = out.Append(gen(i))
	}
	return out
}

func TestStringOneValue(t *testing.T) {
	cfg := DefaultConfig()
	src := makeStringCol(64000, func(int) string { return "CABLE" })
	enc := roundTripString(t, src, cfg)
	if Code(enc[0]) != CodeOneValue {
		t.Fatalf("scheme = %s, want OneValue", Code(enc[0]))
	}
}

func TestStringLowCardinalityChoosesDict(t *testing.T) {
	cfg := DefaultConfig()
	cities := []string{"PHOENIX", "RALEIGH", "BETHESDA", "ATHENS", "All Residential"}
	rng := rand.New(rand.NewSource(91))
	src := makeStringCol(64000, func(int) string { return cities[rng.Intn(len(cities))] })
	enc := roundTripString(t, src, cfg)
	if Code(enc[0]) != CodeDict {
		t.Fatalf("scheme = %s, want Dictionary", Code(enc[0]))
	}
	if ratio := float64(src.TotalBytes()) / float64(len(enc)); ratio < 10 {
		t.Fatalf("low-cardinality strings compressed only %.1fx", ratio)
	}
}

func TestStringStructuredHighCardinality(t *testing.T) {
	// URLs with shared prefixes but mostly unique: FSST territory (direct
	// or via a dictionary pool).
	cfg := DefaultConfig()
	src := makeStringCol(20000, func(i int) string {
		return fmt.Sprintf("https://www.shop.example/products/category-%d/item-%d", i%37, i)
	})
	enc := roundTripString(t, src, cfg)
	got := Code(enc[0])
	if got != CodeFSST && got != CodeDict {
		t.Fatalf("scheme = %s, want FSST or Dict+FSST", got)
	}
	if ratio := float64(src.TotalBytes()) / float64(len(enc)); ratio < 2 {
		t.Fatalf("structured URLs compressed only %.2fx", ratio)
	}
}

func TestStringDictRLEFusedPath(t *testing.T) {
	// long runs of few values: dict codes get RLE, triggering the fused
	// decode; verify it agrees with the unfused and scalar paths.
	src := coldata.NewStringsBuilder(60000, 0)
	rng := rand.New(rand.NewSource(92))
	vals := []string{"01 BRONX", "04 BRONX", "03 QUEENS", "STATEN ISLAND"}
	for src.Len() < 60000 {
		v := vals[rng.Intn(len(vals))]
		l := 10 + rng.Intn(100)
		for i := 0; i < l && src.Len() < 60000; i++ {
			src = src.Append(v)
		}
	}
	enc := CompressString(nil, src, DefaultConfig())
	fused, _, err := DecompressString(enc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	unfused, _, err := DecompressString(enc, &Config{DisableFuseDictRLE: true})
	if err != nil {
		t.Fatal(err)
	}
	scalar, _, err := DecompressString(enc, &Config{ScalarDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < src.Len(); i++ {
		want := src.At(i)
		if fused.At(i) != want || unfused.At(i) != want || scalar.At(i) != want {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestStringEmptyValuesAndEmptyColumn(t *testing.T) {
	cfg := DefaultConfig()
	roundTripString(t, coldata.Strings{}, cfg)
	roundTripString(t, coldata.MakeStrings([]string{"", "", ""}), cfg)
	roundTripString(t, coldata.MakeStrings([]string{"", "a", "", "bb", ""}), cfg)
}

func TestStringQuick(t *testing.T) {
	cfg := DefaultConfig()
	f := func(values []string) bool {
		src := coldata.MakeStrings(values)
		enc := CompressString(nil, src, cfg)
		views, used, err := DecompressString(enc, cfg)
		if err != nil || used != len(enc) || views.Len() != src.Len() {
			return false
		}
		for i := 0; i < src.Len(); i++ {
			if views.At(i) != src.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringTruncation(t *testing.T) {
	cfg := DefaultConfig()
	src := makeStringCol(5000, func(i int) string {
		return fmt.Sprintf("value-%d", i%7)
	})
	enc := CompressString(nil, src, cfg)
	for cut := 0; cut < len(enc); cut += 3 {
		views, used, err := DecompressString(enc[:cut], cfg)
		if err == nil && used == len(enc) {
			t.Fatalf("truncation at %d: decoded %d values without error", cut, views.Len())
		}
	}
}

// --- cascading behaviour ---

func TestCascadeDepthZeroIsPlain(t *testing.T) {
	cfg := &Config{MaxCascadeDepth: -1}
	// normalized() restores the default, so use depth 1 then inspect
	cfg = &Config{MaxCascadeDepth: 1, IntSchemes: []Code{CodeRLE}}
	src := make([]int32, 1000) // all zero: RLE viable at depth 1
	enc := CompressInt(nil, src, cfg)
	// At depth 1, RLE's sub-streams must be Uncompressed (depth 0).
	if Code(enc[0]) != CodeRLE {
		t.Skipf("RLE not chosen (%s)", Code(enc[0]))
	}
	if Code(enc[9]) != CodeUncompressed {
		t.Fatalf("values sub-stream at depth 0 = %s, want Uncompressed", Code(enc[9]))
	}
	dec, _, err := DecompressInt(nil, enc, cfg)
	if err != nil || len(dec) != len(src) {
		t.Fatalf("depth-1 round trip broken: %v", err)
	}
}

func TestDeepCascadeRespectsMaxDepth(t *testing.T) {
	// Count the maximum nesting by decoding recursively: with depth 3, a
	// stream's sub-sub-sub-streams must be Uncompressed or terminal.
	rng := rand.New(rand.NewSource(95))
	src := make([]int32, 0, 64000)
	for len(src) < 64000 {
		v := int32(rng.Intn(10))
		for i := 0; i < 30+rng.Intn(100) && len(src) < 64000; i++ {
			src = append(src, v)
		}
	}
	cfg := DefaultConfig()
	enc := CompressInt(nil, src, cfg)
	if d := maxIntStreamDepth(t, enc); d > cfg.MaxCascadeDepth {
		t.Fatalf("cascade depth %d exceeds max %d", d, cfg.MaxCascadeDepth)
	}
}

// maxIntStreamDepth walks the nested stream structure of an int stream.
func maxIntStreamDepth(t *testing.T, enc []byte) int {
	t.Helper()
	code := Code(enc[0])
	switch code {
	case CodeRLE:
		v := 1 + 8
		inner, used, err := DecompressInt(nil, enc[v:], DefaultConfig())
		_ = inner
		if err != nil {
			t.Fatal(err)
		}
		d1 := maxIntStreamDepth(t, enc[v:v+used])
		d2 := maxIntStreamDepth(t, enc[v+used:])
		return 1 + max(d1, d2)
	case CodeDict:
		v := 1 + 8
		_, used, err := DecompressInt(nil, enc[v:], DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		d1 := maxIntStreamDepth(t, enc[v:v+used])
		d2 := maxIntStreamDepth(t, enc[v+used:])
		return 1 + max(d1, d2)
	default:
		return 1
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- choose reporting ---

func TestChooseReportsScheme(t *testing.T) {
	cfg := DefaultConfig()
	src := make([]int32, 64000)
	code, ratio := ChooseInt(src, cfg)
	if code != CodeOneValue || ratio < 1000 {
		t.Fatalf("ChooseInt = %s/%.1f", code, ratio)
	}
	dsrc := make([]float64, 1000)
	for i := range dsrc {
		dsrc[i] = 1.5
	}
	dcode, _ := ChooseDouble(dsrc, cfg)
	if dcode != CodeOneValue {
		t.Fatalf("ChooseDouble = %s", dcode)
	}
	scol := makeStringCol(1000, func(i int) string { return "x" })
	scode, _ := ChooseString(scol, cfg)
	if scode != CodeOneValue {
		t.Fatalf("ChooseString = %s", scode)
	}
}

func BenchmarkDecompressIntRLE(b *testing.B) {
	rng := rand.New(rand.NewSource(101))
	src := make([]int32, 0, 64000)
	for len(src) < 64000 {
		v := int32(rng.Intn(50))
		for i := 0; i < 20+rng.Intn(100) && len(src) < 64000; i++ {
			src = append(src, v)
		}
	}
	cfg := DefaultConfig()
	enc := CompressInt(nil, src, cfg)
	dst := make([]int32, 0, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = DecompressInt(dst[:0], enc, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressStringDict(b *testing.B) {
	cities := []string{"PHOENIX", "RALEIGH", "BETHESDA", "ATHENS", "5777 E MAYO BLVD"}
	rng := rand.New(rand.NewSource(102))
	src := coldata.NewStringsBuilder(64000, 0)
	for src.Len() < 64000 {
		src = src.Append(cities[rng.Intn(len(cities))])
	}
	cfg := DefaultConfig()
	enc := CompressString(nil, src, cfg)
	b.SetBytes(int64(src.TotalBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecompressString(enc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
