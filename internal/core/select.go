package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"slices"
	"sync/atomic"

	"btrblocks/internal/bitpack"
	"btrblocks/internal/roaring"
)

// This file implements selection-vector predicate evaluation directly on
// compressed streams — the generalization of the count-eq pushdown in
// scan.go from counts to positions. Each Select* kernel walks one
// compressed stream and adds the positions of matching values (offset by
// base) to a roaring bitmap:
//
//   - OneValue answers the whole stream in O(1) (one range add)
//   - RLE tests each run value once and adds whole runs
//   - Dict maps the predicate over the sorted dictionary to a code
//     predicate and recurses into the codes stream (dict-code set mapping)
//   - Frequency splits into the top-value bitmap and a recursive select
//     over the exceptions stream, then walks positions without decoding
//   - FOR/bit-packed streams compare the predicate's value bounds against
//     each 128-value block's [reference, reference+2^width) envelope and
//     skip whole packed blocks that cannot match (min-max arithmetic)
//   - everything else decodes and filters
//
// NULL handling is the caller's job: NULL slots are rewritten by the
// compressor, so a caller evaluating a NULL-bearing block subtracts the
// block's NULL bitmap from the kernel's output (AndNot). That keeps the
// compressed-domain paths usable even when NULLs are present — unlike
// counts, a position set can be corrected after the fact.

// PredOp is the comparison class of a predicate.
type PredOp uint8

// Predicate operators.
const (
	PredEq PredOp = iota
	PredRange
	PredIn
)

// SelectStats counts which evaluation paths fired during Select*/
// Aggregate* calls. Counters are atomic so one stats value can be shared
// across the per-block workers of a parallel scan. The restricted-scheme
// oracle tests use these to prove a compressed-domain path actually
// executed rather than silently falling back to decode.
type SelectStats struct {
	OneValue    atomic.Int64 // OneValue short-circuits
	RLE         atomic.Int64 // RLE run walks (no expansion)
	Dict        atomic.Int64 // dictionary predicate mappings
	Frequency   atomic.Int64 // Frequency bitmap/exception splits
	FORSkipped  atomic.Int64 // packed 128-value blocks skipped by min-max
	FORScanned  atomic.Int64 // packed 128-value blocks unpacked and tested
	Decoded     atomic.Int64 // terminal streams decoded and filtered
	AggFast     atomic.Int64 // aggregates answered from compressed form
	AggDecoded  atomic.Int64 // aggregates that decoded values
	noopDiscard [0]byte
}

// SelectStatsSnapshot is a plain-value copy of SelectStats, suitable for
// JSON and for summing across scans.
type SelectStatsSnapshot struct {
	OneValue   int64 `json:"one_value"`
	RLE        int64 `json:"rle"`
	Dict       int64 `json:"dict"`
	Frequency  int64 `json:"frequency"`
	FORSkipped int64 `json:"for_skipped"`
	FORScanned int64 `json:"for_scanned"`
	Decoded    int64 `json:"decoded"`
	AggFast    int64 `json:"agg_fast"`
	AggDecoded int64 `json:"agg_decoded"`
}

// Snapshot returns a plain-value copy of the counters.
func (s *SelectStats) Snapshot() SelectStatsSnapshot {
	return SelectStatsSnapshot{
		OneValue:   s.OneValue.Load(),
		RLE:        s.RLE.Load(),
		Dict:       s.Dict.Load(),
		Frequency:  s.Frequency.Load(),
		FORSkipped: s.FORSkipped.Load(),
		FORScanned: s.FORScanned.Load(),
		Decoded:    s.Decoded.Load(),
		AggFast:    s.AggFast.Load(),
		AggDecoded: s.AggDecoded.Load(),
	}
}

// Add accumulates o into s.
func (s *SelectStatsSnapshot) Add(o SelectStatsSnapshot) {
	s.OneValue += o.OneValue
	s.RLE += o.RLE
	s.Dict += o.Dict
	s.Frequency += o.Frequency
	s.FORSkipped += o.FORSkipped
	s.FORScanned += o.FORScanned
	s.Decoded += o.Decoded
	s.AggFast += o.AggFast
	s.AggDecoded += o.AggDecoded
}

// discardStats is the sink used when a caller passes nil stats; atomic
// counters make concurrent discarding writes harmless.
var discardStats SelectStats

func (s *SelectStats) orDiscard() *SelectStats {
	if s == nil {
		return &discardStats
	}
	return s
}

func maskU32(w uint) uint32 {
	if w >= 32 {
		return ^uint32(0)
	}
	return (1 << w) - 1
}

func maskU64of(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << w) - 1
}

// --- int32 predicates ---

// IntPred is a predicate over int32 values. Range bounds are inclusive.
// In must be sorted ascending (use Normalize). An empty In matches
// nothing.
type IntPred struct {
	Op     PredOp
	Eq     int32
	Lo, Hi int32
	In     []int32
}

// Normalize sorts and dedupes the In set.
func (p *IntPred) Normalize() {
	if p.Op == PredIn {
		slices.Sort(p.In)
		p.In = slices.Compact(p.In)
	}
}

// Match reports whether v satisfies the predicate.
func (p *IntPred) Match(v int32) bool {
	switch p.Op {
	case PredEq:
		return v == p.Eq
	case PredRange:
		return v >= p.Lo && v <= p.Hi
	default:
		_, ok := slices.BinarySearch(p.In, v)
		return ok
	}
}

// Bounds returns the inclusive value envelope outside which nothing can
// match. An unsatisfiable predicate returns lo > hi.
func (p *IntPred) Bounds() (lo, hi int64) {
	switch p.Op {
	case PredEq:
		return int64(p.Eq), int64(p.Eq)
	case PredRange:
		return int64(p.Lo), int64(p.Hi)
	default:
		if len(p.In) == 0 {
			return math.MaxInt64, math.MinInt64
		}
		return int64(p.In[0]), int64(p.In[len(p.In)-1])
	}
}

// codesPred maps p over a sorted dictionary to a predicate on dictionary
// codes, exploiting the sorted order: Eq binary-searches, Range becomes a
// contiguous code range, In becomes a sorted code set.
func (p *IntPred) codesPred(dict []int32) *IntPred {
	switch p.Op {
	case PredEq:
		if i, ok := slices.BinarySearch(dict, p.Eq); ok {
			return &IntPred{Op: PredEq, Eq: int32(i)}
		}
		return &IntPred{Op: PredIn}
	case PredRange:
		lo, _ := slices.BinarySearch(dict, p.Lo)
		hi, ok := slices.BinarySearch(dict, p.Hi)
		if !ok {
			hi--
		}
		if lo > hi {
			return &IntPred{Op: PredIn}
		}
		return &IntPred{Op: PredRange, Lo: int32(lo), Hi: int32(hi)}
	default:
		var codes []int32
		for _, v := range p.In {
			if i, ok := slices.BinarySearch(dict, v); ok {
				codes = append(codes, int32(i))
			}
		}
		return codesPredFromSorted(codes)
	}
}

// codesPredFromSorted builds the cheapest predicate holding exactly the
// given ascending code list: a contiguous list becomes a range (so the
// codes stream's FOR blocks can still be min-max skipped), otherwise an
// In set.
func codesPredFromSorted(codes []int32) *IntPred {
	switch {
	case len(codes) == 0:
		return &IntPred{Op: PredIn}
	case len(codes) == 1:
		return &IntPred{Op: PredEq, Eq: codes[0]}
	case int(codes[len(codes)-1]-codes[0]) == len(codes)-1:
		return &IntPred{Op: PredRange, Lo: codes[0], Hi: codes[len(codes)-1]}
	default:
		return &IntPred{Op: PredIn, In: codes}
	}
}

// --- int64 predicates ---

// Int64Pred is a predicate over int64 values (inclusive bounds; In sorted).
type Int64Pred struct {
	Op     PredOp
	Eq     int64
	Lo, Hi int64
	In     []int64
}

// Normalize sorts and dedupes the In set.
func (p *Int64Pred) Normalize() {
	if p.Op == PredIn {
		slices.Sort(p.In)
		p.In = slices.Compact(p.In)
	}
}

// Match reports whether v satisfies the predicate.
func (p *Int64Pred) Match(v int64) bool {
	switch p.Op {
	case PredEq:
		return v == p.Eq
	case PredRange:
		return v >= p.Lo && v <= p.Hi
	default:
		_, ok := slices.BinarySearch(p.In, v)
		return ok
	}
}

// Bounds returns the inclusive match envelope; unsatisfiable → lo > hi.
func (p *Int64Pred) Bounds() (lo, hi int64) {
	switch p.Op {
	case PredEq:
		return p.Eq, p.Eq
	case PredRange:
		return p.Lo, p.Hi
	default:
		if len(p.In) == 0 {
			return math.MaxInt64, math.MinInt64
		}
		return p.In[0], p.In[len(p.In)-1]
	}
}

func (p *Int64Pred) codesPred(dict []int64) *IntPred {
	switch p.Op {
	case PredEq:
		if i, ok := slices.BinarySearch(dict, p.Eq); ok {
			return &IntPred{Op: PredEq, Eq: int32(i)}
		}
		return &IntPred{Op: PredIn}
	case PredRange:
		lo, _ := slices.BinarySearch(dict, p.Lo)
		hi, ok := slices.BinarySearch(dict, p.Hi)
		if !ok {
			hi--
		}
		if lo > hi {
			return &IntPred{Op: PredIn}
		}
		return &IntPred{Op: PredRange, Lo: int32(lo), Hi: int32(hi)}
	default:
		var codes []int32
		for _, v := range p.In {
			if i, ok := slices.BinarySearch(dict, v); ok {
				codes = append(codes, int32(i))
			}
		}
		return codesPredFromSorted(codes)
	}
}

// --- double predicates ---

// DoublePred is a predicate over float64 values. Eq and In compare
// bit-exactly (NaN payloads and -0.0 vs 0.0 are distinct, matching
// CountEqualDouble); Range uses ordinary float comparison, so NaN never
// matches a range.
type DoublePred struct {
	Op     PredOp
	Eq     float64
	Lo, Hi float64
	In     []float64
	inBits []uint64 // sorted bit patterns of In, built by Normalize
}

// Normalize prepares the bit-pattern set for In matching.
func (p *DoublePred) Normalize() {
	if p.Op != PredIn {
		return
	}
	p.inBits = p.inBits[:0]
	for _, v := range p.In {
		p.inBits = append(p.inBits, math.Float64bits(v))
	}
	slices.Sort(p.inBits)
	p.inBits = slices.Compact(p.inBits)
}

// Match reports whether v satisfies the predicate.
func (p *DoublePred) Match(v float64) bool {
	switch p.Op {
	case PredEq:
		return math.Float64bits(v) == math.Float64bits(p.Eq)
	case PredRange:
		return v >= p.Lo && v <= p.Hi
	default:
		_, ok := slices.BinarySearch(p.inBits, math.Float64bits(v))
		return ok
	}
}

// codesPred maps p over a double dictionary (sorted by bit pattern, not
// numerically) by testing every entry, returning the matching code set.
func (p *DoublePred) codesPred(dict []float64) *IntPred {
	var codes []int32
	for i, v := range dict {
		if p.Match(v) {
			codes = append(codes, int32(i))
		}
	}
	return codesPredFromSorted(codes)
}

// --- string predicates ---

// StringPred is a predicate over string values (byte comparisons; Range
// is lexicographic and inclusive; In must be sorted with Normalize).
type StringPred struct {
	Op     PredOp
	Eq     []byte
	Lo, Hi []byte
	In     [][]byte
}

// Normalize sorts and dedupes the In set lexicographically.
func (p *StringPred) Normalize() {
	if p.Op != PredIn {
		return
	}
	slices.SortFunc(p.In, bytes.Compare)
	p.In = slices.CompactFunc(p.In, bytes.Equal)
}

// Match reports whether v satisfies the predicate.
func (p *StringPred) Match(v []byte) bool {
	switch p.Op {
	case PredEq:
		return bytes.Equal(v, p.Eq)
	case PredRange:
		return bytes.Compare(v, p.Lo) >= 0 && bytes.Compare(v, p.Hi) <= 0
	default:
		_, ok := slices.BinarySearchFunc(p.In, v, bytes.Compare)
		return ok
	}
}

// --- shared helpers ---

// frequencyPositions walks a Frequency stream's position structure: bm
// marks the positions holding the top value, the remaining positions hold
// exceptions in ascending order. topMatch selects every marked position;
// excSel (a bitmap over exception *indexes*) selects the corresponding
// gap positions. Mirrors decodeIntFrequency's gap-filling walk, but never
// touches values.
func frequencyPositions(n int, bm *roaring.Bitmap, topMatch bool, excSel *roaring.Bitmap, base uint32, out *roaring.Bitmap) error {
	ei := 0
	next := 0
	ok := true
	bm.ForEach(func(v uint32) bool {
		if int(v) >= n {
			ok = false
			return false
		}
		for next < int(v) {
			if excSel != nil && excSel.Contains(uint32(ei)) {
				out.Add(base + uint32(next))
			}
			ei++
			next++
		}
		if topMatch {
			out.Add(base + uint32(next))
		}
		next++
		return true
	})
	if !ok {
		return ErrCorrupt
	}
	for next < n {
		if excSel != nil && excSel.Contains(uint32(ei)) {
			out.Add(base + uint32(next))
		}
		ei++
		next++
	}
	return nil
}

// --- int32 kernel ---

// SelectInt evaluates p over one compressed int stream, adding the
// positions of matching values (offset by base) to out. Returns the bytes
// consumed. st may be nil.
func SelectInt(src []byte, p *IntPred, base uint32, out *roaring.Bitmap, st *SelectStats, cfg *Config) (int, error) {
	c := cfg.normalized()
	return selectInt(src, p, base, out, st.orDiscard(), &c)
}

func selectInt(src []byte, p *IntPred, base uint32, out *roaring.Bitmap, st *SelectStats, cfg *Config) (int, error) {
	if len(src) < 1 {
		return 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeOneValue:
		if len(body) < 8 {
			return 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return 0, ErrCorrupt
		}
		st.OneValue.Add(1)
		if p.Match(int32(binary.LittleEndian.Uint32(body[4:]))) {
			out.AddRange(base, base+uint32(n))
		}
		return 9, nil
	case CodeRLE:
		n := int(binary.LittleEndian.Uint32(body))
		values, lengths, used, err := decodeRLEParts(src, cfg)
		if err != nil {
			return 0, err
		}
		defer cfg.Scratch.putInt32(values)
		defer cfg.Scratch.putInt32(lengths)
		st.RLE.Add(1)
		off := 0
		for i, rv := range values {
			l := int(lengths[i])
			if l < 0 || off+l > n {
				return 0, ErrCorrupt
			}
			if p.Match(rv) {
				out.AddRange(base+uint32(off), base+uint32(off+l))
			}
			off += l
		}
		if off != n {
			return 0, ErrCorrupt
		}
		return used, nil
	case CodeDict:
		if len(body) < 8 {
			return 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		dictN := int(binary.LittleEndian.Uint32(body[4:]))
		if n > cfg.maxN() || dictN > n {
			return 0, ErrCorrupt
		}
		pos := 1 + 8
		dict, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
		defer cfg.Scratch.putInt32(dict)
		if err != nil {
			return 0, err
		}
		if len(dict) != dictN {
			return 0, ErrCorrupt
		}
		pos += used
		st.Dict.Add(1)
		used, err = selectInt(src[pos:], p.codesPred(dict), base, out, st, cfg)
		if err != nil {
			return 0, err
		}
		return pos + used, nil
	case CodeFrequency:
		if len(body) < 8 {
			return 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return 0, ErrCorrupt
		}
		top := int32(binary.LittleEndian.Uint32(body[4:]))
		pos := 1 + 8
		bm, used, err := roaring.FromBytes(src[pos:])
		if err != nil {
			return 0, ErrCorrupt
		}
		pos += used
		st.Frequency.Add(1)
		excSel := roaring.New()
		used, err = selectInt(src[pos:], p, 0, excSel, st, cfg)
		if err != nil {
			return 0, err
		}
		pos += used
		if err := frequencyPositions(n, bm, p.Match(top), excSel, base, out); err != nil {
			return 0, err
		}
		return pos, nil
	case CodeFastBP:
		used, err := selectIntFOR(body, p, base, out, st, cfg)
		if err != nil {
			return 0, err
		}
		return 1 + used, nil
	default:
		values, used, err := decompressInt(cfg.Scratch.getInt32(), src, cfg)
		defer cfg.Scratch.putInt32(values)
		if err != nil {
			return 0, err
		}
		st.Decoded.Add(1)
		for i, v := range values {
			if p.Match(v) {
				out.Add(base + uint32(i))
			}
		}
		return used, nil
	}
}

// selectIntFOR walks a FOR/bit-packed body (scheme byte already
// stripped), skipping whole 128-value packed blocks whose
// [reference, reference+2^width) envelope cannot intersect the
// predicate's bounds, and unpacking only the rest.
func selectIntFOR(body []byte, p *IntPred, base uint32, out *roaring.Bitmap, st *SelectStats, cfg *Config) (int, error) {
	if len(body) < 4 {
		return 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(body))
	pos := 4
	if n == 0 {
		return pos, nil
	}
	if n < 0 || n > cfg.maxN() || len(body) < 8 {
		return 0, ErrCorrupt
	}
	ref := int32(binary.LittleEndian.Uint32(body[pos:]))
	pos += 4
	plo, phi := p.Bounds()
	unpack := bitpack.Unpack
	if cfg.ScalarDecode {
		unpack = bitpack.UnpackGeneric
	}
	var deltas [bitpack.BlockLen]uint32
	for got := 0; got < n; got += bitpack.BlockLen {
		cnt := n - got
		if cnt > bitpack.BlockLen {
			cnt = bitpack.BlockLen
		}
		if pos >= len(body) {
			return 0, ErrCorrupt
		}
		w := uint(body[pos])
		pos++
		if w > 32 {
			return 0, ErrCorrupt
		}
		nBytes := (cnt*int(w) + 63) / 64 * 8
		if len(body) < pos+nBytes {
			return 0, ErrCorrupt
		}
		// Envelope check: every value in this packed block lies in
		// [ref, ref+mask(w)] — disjoint from the predicate bounds means
		// the block cannot contain a match and is skipped unread.
		if phi < int64(ref) || plo > int64(ref)+int64(maskU32(w)) {
			st.FORSkipped.Add(1)
			pos += nBytes
			continue
		}
		st.FORScanned.Add(1)
		used, err := unpack(deltas[:cnt], body[pos:], cnt, w)
		if err != nil {
			return 0, ErrCorrupt
		}
		pos += used
		for i := 0; i < cnt; i++ {
			if p.Match(ref + int32(deltas[i])) {
				out.Add(base + uint32(got+i))
			}
		}
	}
	return pos, nil
}

// --- int64 kernel ---

// SelectInt64 evaluates p over one compressed int64 stream (see
// SelectInt).
func SelectInt64(src []byte, p *Int64Pred, base uint32, out *roaring.Bitmap, st *SelectStats, cfg *Config) (int, error) {
	c := cfg.normalized()
	return selectInt64(src, p, base, out, st.orDiscard(), &c)
}

func selectInt64(src []byte, p *Int64Pred, base uint32, out *roaring.Bitmap, st *SelectStats, cfg *Config) (int, error) {
	if len(src) < 1 {
		return 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeOneValue:
		if len(body) < 12 {
			return 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return 0, ErrCorrupt
		}
		st.OneValue.Add(1)
		if p.Match(int64(binary.LittleEndian.Uint64(body[4:]))) {
			out.AddRange(base, base+uint32(n))
		}
		return 13, nil
	case CodeRLE:
		if len(body) < 8 {
			return 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		runCount := int(binary.LittleEndian.Uint32(body[4:]))
		if n > cfg.maxN() || runCount > n {
			return 0, ErrCorrupt
		}
		pos := 1 + 8
		values, used, err := decompressInt64(cfg.Scratch.getInt64(), src[pos:], cfg)
		defer cfg.Scratch.putInt64(values)
		if err != nil {
			return 0, err
		}
		pos += used
		lengths, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
		defer cfg.Scratch.putInt32(lengths)
		if err != nil {
			return 0, err
		}
		pos += used
		if len(values) != runCount || len(lengths) != runCount {
			return 0, ErrCorrupt
		}
		st.RLE.Add(1)
		off := 0
		for i, rv := range values {
			l := int(lengths[i])
			if l < 0 || off+l > n {
				return 0, ErrCorrupt
			}
			if p.Match(rv) {
				out.AddRange(base+uint32(off), base+uint32(off+l))
			}
			off += l
		}
		if off != n {
			return 0, ErrCorrupt
		}
		return pos, nil
	case CodeDict:
		if len(body) < 8 {
			return 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		dictN := int(binary.LittleEndian.Uint32(body[4:]))
		if n > cfg.maxN() || dictN > n {
			return 0, ErrCorrupt
		}
		pos := 1 + 8
		dict, used, err := decompressInt64(cfg.Scratch.getInt64(), src[pos:], cfg)
		defer cfg.Scratch.putInt64(dict)
		if err != nil {
			return 0, err
		}
		if len(dict) != dictN {
			return 0, ErrCorrupt
		}
		pos += used
		st.Dict.Add(1)
		used, err = selectInt(src[pos:], p.codesPred(dict), base, out, st, cfg)
		if err != nil {
			return 0, err
		}
		return pos + used, nil
	case CodeFrequency:
		if len(body) < 12 {
			return 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return 0, ErrCorrupt
		}
		top := int64(binary.LittleEndian.Uint64(body[4:]))
		pos := 1 + 12
		bm, used, err := roaring.FromBytes(src[pos:])
		if err != nil {
			return 0, ErrCorrupt
		}
		pos += used
		st.Frequency.Add(1)
		excSel := roaring.New()
		used, err = selectInt64(src[pos:], p, 0, excSel, st, cfg)
		if err != nil {
			return 0, err
		}
		pos += used
		if err := frequencyPositions(n, bm, p.Match(top), excSel, base, out); err != nil {
			return 0, err
		}
		return pos, nil
	case CodeFastBP:
		used, err := selectInt64FOR(body, p, base, out, st, cfg)
		if err != nil {
			return 0, err
		}
		return 1 + used, nil
	default:
		values, used, err := decompressInt64(cfg.Scratch.getInt64(), src, cfg)
		defer cfg.Scratch.putInt64(values)
		if err != nil {
			return 0, err
		}
		st.Decoded.Add(1)
		for i, v := range values {
			if p.Match(v) {
				out.Add(base + uint32(i))
			}
		}
		return used, nil
	}
}

func selectInt64FOR(body []byte, p *Int64Pred, base uint32, out *roaring.Bitmap, st *SelectStats, cfg *Config) (int, error) {
	if len(body) < 4 {
		return 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(body))
	pos := 4
	if n == 0 {
		return pos, nil
	}
	if n < 0 || n > cfg.maxN() || len(body) < 12 {
		return 0, ErrCorrupt
	}
	ref := int64(binary.LittleEndian.Uint64(body[pos:]))
	pos += 8
	plo, phi := p.Bounds()
	unpack := bitpack.Unpack64
	if cfg.ScalarDecode {
		unpack = bitpack.Unpack64Generic
	}
	var deltas [bitpack.BlockLen]uint64
	for got := 0; got < n; got += bitpack.BlockLen {
		cnt := n - got
		if cnt > bitpack.BlockLen {
			cnt = bitpack.BlockLen
		}
		if pos >= len(body) {
			return 0, ErrCorrupt
		}
		w := uint(body[pos])
		pos++
		if w > 64 {
			return 0, ErrCorrupt
		}
		nBytes := ((cnt*int(w) + 63) / 64) * 8
		if len(body) < pos+nBytes {
			return 0, ErrCorrupt
		}
		// Envelope upper bound ref+mask(w), saturating at MaxInt64: a
		// width-64 block (or one whose envelope overflows) is never
		// skipped by the upper bound, which keeps the skip sound.
		hiBound := int64(math.MaxInt64)
		if w < 64 {
			if d := int64(maskU64of(w)); ref <= math.MaxInt64-d {
				hiBound = ref + d
			}
		}
		if phi < ref || plo > hiBound {
			st.FORSkipped.Add(1)
			pos += nBytes
			continue
		}
		st.FORScanned.Add(1)
		used, err := unpack(deltas[:cnt], body[pos:], cnt, w)
		if err != nil {
			return 0, ErrCorrupt
		}
		pos += used
		for i := 0; i < cnt; i++ {
			if p.Match(ref + int64(deltas[i])) {
				out.Add(base + uint32(got+i))
			}
		}
	}
	return pos, nil
}

// --- double kernel ---

// SelectDouble evaluates p over one compressed double stream (see
// SelectInt).
func SelectDouble(src []byte, p *DoublePred, base uint32, out *roaring.Bitmap, st *SelectStats, cfg *Config) (int, error) {
	c := cfg.normalized()
	return selectDouble(src, p, base, out, st.orDiscard(), &c)
}

func selectDouble(src []byte, p *DoublePred, base uint32, out *roaring.Bitmap, st *SelectStats, cfg *Config) (int, error) {
	if len(src) < 1 {
		return 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeOneValue:
		if len(body) < 12 {
			return 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return 0, ErrCorrupt
		}
		st.OneValue.Add(1)
		if p.Match(math.Float64frombits(binary.LittleEndian.Uint64(body[4:]))) {
			out.AddRange(base, base+uint32(n))
		}
		return 13, nil
	case CodeRLE:
		if len(body) < 8 {
			return 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		runCount := int(binary.LittleEndian.Uint32(body[4:]))
		if n > cfg.maxN() || runCount > n {
			return 0, ErrCorrupt
		}
		pos := 1 + 8
		values, used, err := decompressDouble(cfg.Scratch.getFloat64(), src[pos:], cfg)
		defer cfg.Scratch.putFloat64(values)
		if err != nil {
			return 0, err
		}
		pos += used
		lengths, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
		defer cfg.Scratch.putInt32(lengths)
		if err != nil {
			return 0, err
		}
		pos += used
		if len(values) != runCount || len(lengths) != runCount {
			return 0, ErrCorrupt
		}
		st.RLE.Add(1)
		off := 0
		for i, rv := range values {
			l := int(lengths[i])
			if l < 0 || off+l > n {
				return 0, ErrCorrupt
			}
			if p.Match(rv) {
				out.AddRange(base+uint32(off), base+uint32(off+l))
			}
			off += l
		}
		if off != n {
			return 0, ErrCorrupt
		}
		return pos, nil
	case CodeDict:
		if len(body) < 8 {
			return 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		dictN := int(binary.LittleEndian.Uint32(body[4:]))
		if n > cfg.maxN() || dictN > n {
			return 0, ErrCorrupt
		}
		pos := 1 + 8
		dict, used, err := decompressDouble(cfg.Scratch.getFloat64(), src[pos:], cfg)
		defer cfg.Scratch.putFloat64(dict)
		if err != nil {
			return 0, err
		}
		if len(dict) != dictN {
			return 0, ErrCorrupt
		}
		pos += used
		st.Dict.Add(1)
		used, err = selectInt(src[pos:], p.codesPred(dict), base, out, st, cfg)
		if err != nil {
			return 0, err
		}
		return pos + used, nil
	case CodeFrequency:
		if len(body) < 12 {
			return 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return 0, ErrCorrupt
		}
		top := math.Float64frombits(binary.LittleEndian.Uint64(body[4:]))
		pos := 1 + 12
		bm, used, err := roaring.FromBytes(src[pos:])
		if err != nil {
			return 0, ErrCorrupt
		}
		pos += used
		st.Frequency.Add(1)
		excSel := roaring.New()
		used, err = selectDouble(src[pos:], p, 0, excSel, st, cfg)
		if err != nil {
			return 0, err
		}
		pos += used
		if err := frequencyPositions(n, bm, p.Match(top), excSel, base, out); err != nil {
			return 0, err
		}
		return pos, nil
	default:
		values, used, err := decompressDouble(cfg.Scratch.getFloat64(), src, cfg)
		defer cfg.Scratch.putFloat64(values)
		if err != nil {
			return 0, err
		}
		st.Decoded.Add(1)
		for i, v := range values {
			if p.Match(v) {
				out.Add(base + uint32(i))
			}
		}
		return used, nil
	}
}

// --- string kernel ---

// SelectString evaluates p over one compressed string stream (see
// SelectInt). Dictionary streams map the predicate over the
// lexicographically sorted dictionary to a code predicate; other schemes
// decode views and filter.
func SelectString(src []byte, p *StringPred, base uint32, out *roaring.Bitmap, st *SelectStats, cfg *Config) (int, error) {
	c := cfg.normalized()
	return selectString(src, p, base, out, st.orDiscard(), &c)
}

func selectString(src []byte, p *StringPred, base uint32, out *roaring.Bitmap, st *SelectStats, cfg *Config) (int, error) {
	if len(src) < 1 {
		return 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeOneValue:
		if len(body) < 8 {
			return 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		l := int(binary.LittleEndian.Uint32(body[4:]))
		if n > cfg.maxN() || l < 0 || len(body) < 8+l {
			return 0, ErrCorrupt
		}
		st.OneValue.Add(1)
		if p.Match(body[8 : 8+l]) {
			out.AddRange(base, base+uint32(n))
		}
		return 1 + 8 + l, nil
	case CodeDict:
		views, err := decodeStringDictViews(body, cfg)
		if err != nil {
			return 0, err
		}
		var codes []int32
		for i := 0; i < views.dict.Len(); i++ {
			if p.Match(views.dict.Bytes(i)) {
				codes = append(codes, int32(i))
			}
		}
		st.Dict.Add(1)
		used, err := selectInt(body[views.codesOff:], codesPredFromSorted(codes), base, out, st, cfg)
		if err != nil {
			return 0, err
		}
		return 1 + views.codesOff + used, nil
	default:
		views, used, err := decompressString(src, cfg)
		if err != nil {
			return 0, err
		}
		st.Decoded.Add(1)
		for i := 0; i < views.Len(); i++ {
			if p.Match(views.Bytes(i)) {
				out.Add(base + uint32(i))
			}
		}
		return used, nil
	}
}
