package core

import (
	"encoding/binary"
	"math"
	"math/rand"
	"slices"
	"time"

	"btrblocks/internal/pde"
	"btrblocks/internal/roaring"
	"btrblocks/internal/sample"
	"btrblocks/internal/stats"
)

// doublePoolOrder is the fixed candidate order for double schemes; on
// estimate ties the earlier (cheaper to decode) scheme wins. This is the
// double branch of the Figure 3 decision tree.
var doublePoolOrder = []Code{CodeOneValue, CodeDict, CodeRLE, CodeFrequency, CodePDE}

// CompressDouble compresses a block of float64 values into a
// self-describing stream. The round trip is bit-exact (NaN payloads and
// -0.0 included).
func CompressDouble(dst []byte, src []float64, cfg *Config) []byte {
	c := cfg.normalized()
	return compressDouble(dst, src, &c, c.MaxCascadeDepth, c.rng())
}

// ChooseDouble reports the scheme the selection algorithm picks for src
// and its estimated ratio.
func ChooseDouble(src []float64, cfg *Config) (Code, float64) {
	c := cfg.normalized()
	code, est, _ := pickDouble(src, &c, c.MaxCascadeDepth, c.rng())
	return code, est
}

func compressDouble(dst []byte, src []float64, cfg *Config, depth int, rng *rand.Rand) []byte {
	if cfg.OnDecision == nil {
		code, _, _ := pickDouble(src, cfg, depth, rng)
		return encodeDoubleAs(dst, src, code, cfg, depth, rng)
	}
	t0 := time.Now()
	code, est, cands := pickDouble(src, cfg, depth, rng)
	pickNanos := time.Since(t0).Nanoseconds()
	before := len(dst)
	dst = encodeDoubleAs(dst, src, code, cfg, depth, rng)
	cfg.OnDecision(Decision{
		Kind: KindDouble, Level: cfg.MaxCascadeDepth - depth, Code: code,
		Values: len(src), InputBytes: 8 * len(src), OutputBytes: len(dst) - before,
		EstimatedRatio: est, PickNanos: pickNanos, Candidates: cands,
	})
	return dst
}

// EstimateOnlyDouble mirrors EstimateOnlyInt for doubles.
func EstimateOnlyDouble(src []float64, cfg *Config) {
	c := cfg.normalized()
	pickDouble(src, &c, c.MaxCascadeDepth, c.rng())
}

func pickDouble(src []float64, cfg *Config, depth int, rng *rand.Rand) (Code, float64, []CandidateEstimate) {
	if depth <= 0 || len(src) == 0 {
		return CodeUncompressed, 1, nil
	}
	collect := cfg.OnDecision != nil
	cfg = quiet(cfg)
	st := stats.ComputeDouble(src)
	if st.Distinct == 1 && cfg.doubleEnabled(CodeOneValue) {
		est := float64(len(src)*8) / 13
		var cands []CandidateEstimate
		if collect {
			cands = []CandidateEstimate{{Code: CodeOneValue, EstimatedRatio: est}}
		}
		return CodeOneValue, est, cands
	}
	smp := sample.Doubles(src, cfg.Sample, rng)
	rawBytes := float64(len(smp) * 8)
	best, bestRatio := CodeUncompressed, 1.0
	var cands []CandidateEstimate
	if collect {
		cands = append(cands, CandidateEstimate{Code: CodeUncompressed, EstimatedRatio: 1, SampleBytes: 5 + 8*len(smp)})
	}
	for _, code := range doublePoolOrder {
		if !cfg.doubleEnabled(code) || !doubleViable(code, &st) {
			continue
		}
		enc := encodeDoubleAs(nil, smp, code, cfg, depth, rng)
		ratio := rawBytes / float64(len(enc))
		if collect {
			cands = append(cands, CandidateEstimate{Code: code, EstimatedRatio: ratio, SampleBytes: len(enc)})
		}
		if ratio > bestRatio {
			best, bestRatio = code, ratio
		}
	}
	return best, bestRatio, cands
}

// doubleViable applies the §3/§4.2 statistics filters. Pseudodecimal is
// excluded below 10% unique values, where a dictionary compresses almost
// as well and decompresses much faster.
func doubleViable(code Code, st *stats.Double) bool {
	switch code {
	case CodeOneValue:
		return st.Distinct == 1
	case CodeRLE:
		return st.AvgRunLen >= 2
	case CodeDict:
		return st.Distinct > 1 && st.Distinct < st.N
	case CodeFrequency:
		return st.UniqueFrac <= 0.5 && st.TopCount*2 >= st.N
	case CodePDE:
		return st.UniqueFrac >= 0.1
	default:
		return false
	}
}

func encodeDoubleAs(dst []byte, src []float64, code Code, cfg *Config, depth int, rng *rand.Rand) []byte {
	dst = append(dst, byte(code))
	switch code {
	case CodeUncompressed:
		return encodeDoublePlain(dst, src)
	case CodeOneValue:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(src[0]))
	case CodeRLE:
		values, lengths := runsOfDoubles(src)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(values)))
		dst = compressDouble(dst, values, cfg, depth-1, rng)
		return compressInt(dst, lengths, cfg, depth-1, rng)
	case CodeDict:
		dict, codes := buildDoubleDict(src)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(dict)))
		dst = compressDouble(dst, dict, cfg, depth-1, rng)
		return compressInt(dst, codes, cfg, depth-1, rng)
	case CodeFrequency:
		return encodeDoubleFrequency(dst, src, cfg, depth, rng)
	case CodePDE:
		return encodeDoublePDE(dst, src, cfg, depth, rng)
	}
	panic("unreachable scheme code " + code.String())
}

func encodeDoublePlain(dst []byte, src []float64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
	for _, v := range src {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// runsOfDoubles splits src into (value, length) arrays using bit equality
// so NaN runs and -0.0/0.0 distinctions survive the round trip.
func runsOfDoubles(src []float64) (values []float64, lengths []int32) {
	if len(src) == 0 {
		return nil, nil
	}
	cur := math.Float64bits(src[0])
	n := int32(0)
	for _, v := range src {
		b := math.Float64bits(v)
		if b == cur {
			n++
			continue
		}
		values = append(values, math.Float64frombits(cur))
		lengths = append(lengths, n)
		cur, n = b, 1
	}
	values = append(values, math.Float64frombits(cur))
	lengths = append(lengths, n)
	return values, lengths
}

// buildDoubleDict returns distinct values (sorted by bit pattern for
// determinism) and per-row codes. Bit-pattern identity keeps NaNs and
// -0.0 as distinct dictionary entries.
func buildDoubleDict(src []float64) (dict []float64, codes []int32) {
	seen := make(map[uint64]int32, 1024)
	var bitsList []uint64
	for _, v := range src {
		b := math.Float64bits(v)
		if _, ok := seen[b]; !ok {
			seen[b] = 0
			bitsList = append(bitsList, b)
		}
	}
	slices.Sort(bitsList)
	dict = make([]float64, len(bitsList))
	for i, b := range bitsList {
		seen[b] = int32(i)
		dict[i] = math.Float64frombits(b)
	}
	codes = make([]int32, len(src))
	for i, v := range src {
		codes[i] = seen[math.Float64bits(v)]
	}
	return dict, codes
}

func encodeDoubleFrequency(dst []byte, src []float64, cfg *Config, depth int, rng *rand.Rand) []byte {
	st := stats.ComputeDouble(src)
	topBits := math.Float64bits(st.TopValue)
	bm := roaring.New()
	var exceptions []float64
	for i, v := range src {
		if math.Float64bits(v) == topBits {
			bm.Add(uint32(i))
		} else {
			exceptions = append(exceptions, v)
		}
	}
	bm.RunOptimize()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
	dst = binary.LittleEndian.AppendUint64(dst, topBits)
	dst = bm.AppendTo(dst)
	return compressDouble(dst, exceptions, cfg, depth-1, rng)
}

// encodeDoublePDE applies Pseudodecimal Encoding and cascades the digits
// and exponent columns back into the integer scheme pool (§4.2).
func encodeDoublePDE(dst []byte, src []float64, cfg *Config, depth int, rng *rand.Rand) []byte {
	digits, exps, patches, patchIdx := pde.Encode(src)
	bm := roaring.New()
	for _, i := range patchIdx {
		bm.Add(i)
	}
	bm.RunOptimize()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
	dst = compressInt(dst, digits, cfg, depth-1, rng)
	dst = compressInt(dst, exps, cfg, depth-1, rng)
	dst = bm.AppendTo(dst)
	for _, p := range patches {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p))
	}
	return dst
}

// DecompressDouble decodes one double stream, appending values to dst and
// returning the number of input bytes consumed.
func DecompressDouble(dst []float64, src []byte, cfg *Config) ([]float64, int, error) {
	c := cfg.normalized()
	return decompressDouble(dst, src, &c)
}

func decompressDouble(dst []float64, src []byte, cfg *Config) ([]float64, int, error) {
	if len(src) < 1 {
		return dst, 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeUncompressed:
		out, used, err := decodeDoublePlain(dst, body)
		return out, used + 1, err
	case CodeOneValue:
		if len(body) < 12 {
			return dst, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return dst, 0, ErrCorrupt
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(body[4:]))
		for i := 0; i < n; i++ {
			dst = append(dst, v)
		}
		return dst, 13, nil
	case CodeRLE:
		out, used, err := decodeDoubleRLE(dst, body, cfg)
		return out, used + 1, err
	case CodeDict:
		out, used, err := decodeDoubleDict(dst, body, cfg)
		return out, used + 1, err
	case CodeFrequency:
		out, used, err := decodeDoubleFrequency(dst, body, cfg)
		return out, used + 1, err
	case CodePDE:
		out, used, err := decodeDoublePDE(dst, body, cfg)
		return out, used + 1, err
	default:
		return dst, 0, ErrCorrupt
	}
}

func decodeDoublePlain(dst []float64, src []byte) ([]float64, int, error) {
	if len(src) < 4 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	if n > maxBlockValues || len(src) < 4+8*n {
		return dst, 0, ErrCorrupt
	}
	for i := 0; i < n; i++ {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(src[4+8*i:])))
	}
	return dst, 4 + 8*n, nil
}

func decodeDoubleRLE(dst []float64, src []byte, cfg *Config) ([]float64, int, error) {
	if len(src) < 8 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	runCount := int(binary.LittleEndian.Uint32(src[4:]))
	if n > cfg.maxN() || runCount > n {
		return dst, 0, ErrCorrupt
	}
	pos := 8
	values, used, err := decompressDouble(cfg.Scratch.getFloat64(), src[pos:], cfg)
	defer cfg.Scratch.putFloat64(values)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	lengths, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(lengths)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	if len(values) != runCount || len(lengths) != runCount {
		return dst, 0, ErrCorrupt
	}
	out := len(dst)
	dst = append(dst, make([]float64, n)...)
	if cfg.ScalarDecode {
		err = expandRunsScalarDouble(dst[out:], values, lengths)
	} else {
		err = expandRunsDouble(dst[out:], values, lengths)
	}
	if err != nil {
		return dst, 0, err
	}
	return dst, pos, nil
}

func expandRunsDouble(dst []float64, values []float64, lengths []int32) error {
	o := 0
	for r, v := range values {
		l := int(lengths[r])
		if l < 0 || o+l > len(dst) {
			return ErrCorrupt
		}
		target := o + l
		if l <= 16 {
			for o+4 <= len(dst) && o < target {
				dst[o] = v
				dst[o+1] = v
				dst[o+2] = v
				dst[o+3] = v
				o += 4
			}
			for o < target {
				dst[o] = v
				o++
			}
			o = target
			continue
		}
		run := dst[o:target]
		run[0] = v
		for filled := 1; filled < l; filled *= 2 {
			copy(run[filled:], run[:filled])
		}
		o = target
	}
	if o != len(dst) {
		return ErrCorrupt
	}
	return nil
}

func expandRunsScalarDouble(dst []float64, values []float64, lengths []int32) error {
	o := 0
	for r, v := range values {
		l := int(lengths[r])
		if l < 0 || o+l > len(dst) {
			return ErrCorrupt
		}
		for i := 0; i < l; i++ {
			dst[o] = v
			o++
		}
	}
	if o != len(dst) {
		return ErrCorrupt
	}
	return nil
}

func decodeDoubleDict(dst []float64, src []byte, cfg *Config) ([]float64, int, error) {
	if len(src) < 8 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	dictN := int(binary.LittleEndian.Uint32(src[4:]))
	if n > cfg.maxN() || dictN > n {
		return dst, 0, ErrCorrupt
	}
	pos := 8
	dict, used, err := decompressDouble(cfg.Scratch.getFloat64(), src[pos:], cfg)
	defer cfg.Scratch.putFloat64(dict)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	if len(dict) != dictN {
		return dst, 0, ErrCorrupt
	}
	codes, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(codes)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	if len(codes) != n {
		return dst, 0, ErrCorrupt
	}
	out := len(dst)
	dst = append(dst, make([]float64, n)...)
	o := dst[out:]
	if cfg.ScalarDecode {
		for i, c := range codes {
			if uint32(c) >= uint32(dictN) {
				return dst, 0, ErrCorrupt
			}
			o[i] = dict[c]
		}
		return dst, pos, nil
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		c0, c1, c2, c3 := codes[i], codes[i+1], codes[i+2], codes[i+3]
		if uint32(c0) >= uint32(dictN) || uint32(c1) >= uint32(dictN) ||
			uint32(c2) >= uint32(dictN) || uint32(c3) >= uint32(dictN) {
			return dst, 0, ErrCorrupt
		}
		o[i] = dict[c0]
		o[i+1] = dict[c1]
		o[i+2] = dict[c2]
		o[i+3] = dict[c3]
	}
	for ; i < n; i++ {
		c := codes[i]
		if uint32(c) >= uint32(dictN) {
			return dst, 0, ErrCorrupt
		}
		o[i] = dict[c]
	}
	return dst, pos, nil
}

func decodeDoubleFrequency(dst []float64, src []byte, cfg *Config) ([]float64, int, error) {
	if len(src) < 12 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	if n > cfg.maxN() {
		return dst, 0, ErrCorrupt
	}
	top := math.Float64frombits(binary.LittleEndian.Uint64(src[4:]))
	pos := 12
	bm, used, err := roaring.FromBytes(src[pos:])
	if err != nil {
		return dst, 0, ErrCorrupt
	}
	pos += used
	exceptions, used, err := decompressDouble(cfg.Scratch.getFloat64(), src[pos:], cfg)
	defer cfg.Scratch.putFloat64(exceptions)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	if bm.Cardinality()+len(exceptions) != n {
		return dst, 0, ErrCorrupt
	}
	out := len(dst)
	dst = append(dst, make([]float64, n)...)
	o := dst[out:]
	ei := 0
	next := 0
	okBM := true
	bm.ForEach(func(v uint32) bool {
		if int(v) >= n {
			okBM = false
			return false
		}
		for next < int(v) {
			o[next] = exceptions[ei]
			ei++
			next++
		}
		o[next] = top
		next++
		return true
	})
	if !okBM {
		return dst, 0, ErrCorrupt
	}
	for next < n {
		o[next] = exceptions[ei]
		ei++
		next++
	}
	return dst, pos, nil
}

func decodeDoublePDE(dst []float64, src []byte, cfg *Config) ([]float64, int, error) {
	if len(src) < 4 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	if n > cfg.maxN() {
		return dst, 0, ErrCorrupt
	}
	pos := 4
	digits, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(digits)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	exps, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(exps)
	if err != nil {
		return dst, 0, err
	}
	pos += used
	if len(digits) != n || len(exps) != n {
		return dst, 0, ErrCorrupt
	}
	bm, used, err := roaring.FromBytes(src[pos:])
	if err != nil {
		return dst, 0, ErrCorrupt
	}
	pos += used
	patchCount := bm.Cardinality()
	if len(src) < pos+8*patchCount {
		return dst, 0, ErrCorrupt
	}
	patches := make([]float64, patchCount)
	for i := range patches {
		patches[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[pos:]))
		pos += 8
	}
	// Validate the exponent column before trusting it as an index.
	exCount := 0
	for _, e := range exps {
		if e < 0 || e > pde.ExceptionExponent {
			return dst, 0, ErrCorrupt
		}
		if e == pde.ExceptionExponent {
			exCount++
		}
	}
	if exCount != patchCount {
		return dst, 0, ErrCorrupt
	}
	if cfg.ScalarDecode {
		return pde.DecodeScalar(dst, digits, exps, patches), pos, nil
	}
	return pde.Decode(dst, digits, exps, patches, bm.ToArray()), pos, nil
}
