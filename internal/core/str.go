package core

import (
	"encoding/binary"
	"math/rand"
	"slices"
	"time"

	"btrblocks/coldata"
	"btrblocks/internal/fsst"
	"btrblocks/internal/sample"
	"btrblocks/internal/stats"
)

// stringPoolOrder is the candidate order for string schemes — the string
// branch of Figure 3: One Value, Dictionary (optionally with an
// FSST-compressed pool), direct FSST, or Uncompressed.
var stringPoolOrder = []Code{CodeOneValue, CodeDict, CodeFSST}

// poolKind values inside a Dict payload.
const (
	poolRaw  = 0
	poolFSST = 1
)

// CompressString compresses a block of strings into a self-describing
// stream.
func CompressString(dst []byte, src coldata.Strings, cfg *Config) []byte {
	c := cfg.normalized()
	return compressString(dst, src, &c, c.MaxCascadeDepth, c.rng())
}

// ChooseString reports the scheme the selection algorithm picks for src
// and its estimated ratio.
func ChooseString(src coldata.Strings, cfg *Config) (Code, float64) {
	c := cfg.normalized()
	code, est, _ := pickString(src, &c, c.MaxCascadeDepth, c.rng())
	return code, est
}

func compressString(dst []byte, src coldata.Strings, cfg *Config, depth int, rng *rand.Rand) []byte {
	if cfg.OnDecision == nil {
		code, _, _ := pickString(src, cfg, depth, rng)
		return encodeStringAs(dst, src, code, cfg, depth, rng)
	}
	t0 := time.Now()
	code, est, cands := pickString(src, cfg, depth, rng)
	pickNanos := time.Since(t0).Nanoseconds()
	before := len(dst)
	dst = encodeStringAs(dst, src, code, cfg, depth, rng)
	cfg.OnDecision(Decision{
		Kind: KindString, Level: cfg.MaxCascadeDepth - depth, Code: code,
		Values: src.Len(), InputBytes: src.TotalBytes(), OutputBytes: len(dst) - before,
		EstimatedRatio: est, PickNanos: pickNanos, Candidates: cands,
	})
	return dst
}

// EstimateOnlyString mirrors EstimateOnlyInt for strings.
func EstimateOnlyString(src coldata.Strings, cfg *Config) {
	c := cfg.normalized()
	pickString(src, &c, c.MaxCascadeDepth, c.rng())
}

func pickString(src coldata.Strings, cfg *Config, depth int, rng *rand.Rand) (Code, float64, []CandidateEstimate) {
	if depth <= 0 || src.Len() == 0 {
		return CodeUncompressed, 1, nil
	}
	collect := cfg.OnDecision != nil
	cfg = quiet(cfg)
	st := stats.ComputeString(src)
	if st.Distinct == 1 && cfg.stringEnabled(CodeOneValue) {
		est := float64(src.TotalBytes()) / float64(9+st.MaxLen)
		var cands []CandidateEstimate
		if collect {
			cands = []CandidateEstimate{{Code: CodeOneValue, EstimatedRatio: est}}
		}
		return CodeOneValue, est, cands
	}
	smp := sample.Strings(src, cfg.Sample, rng)
	rawBytes := float64(smp.TotalBytes())
	best, bestRatio := CodeUncompressed, 1.0
	var cands []CandidateEstimate
	if collect {
		cands = append(cands, CandidateEstimate{Code: CodeUncompressed, EstimatedRatio: 1, SampleBytes: 5 + smp.TotalBytes()})
	}
	for _, code := range stringPoolOrder {
		if !cfg.stringEnabled(code) || !stringViable(code, &st) {
			continue
		}
		enc := encodeStringAs(nil, smp, code, cfg, depth, rng)
		ratio := rawBytes / float64(len(enc))
		if collect {
			cands = append(cands, CandidateEstimate{Code: code, EstimatedRatio: ratio, SampleBytes: len(enc)})
		}
		if ratio > bestRatio {
			best, bestRatio = code, ratio
		}
	}
	return best, bestRatio, cands
}

func stringViable(code Code, st *stats.String) bool {
	switch code {
	case CodeOneValue:
		return st.Distinct == 1
	case CodeDict:
		return st.Distinct > 1 && st.Distinct < st.N
	case CodeFSST:
		// FSST needs some redundancy in the bytes; on near-empty payloads
		// the table overhead dominates.
		return st.TotalLen >= 64
	default:
		return false
	}
}

func encodeStringAs(dst []byte, src coldata.Strings, code Code, cfg *Config, depth int, rng *rand.Rand) []byte {
	dst = append(dst, byte(code))
	switch code {
	case CodeUncompressed:
		return encodeStringPlain(dst, src)
	case CodeOneValue:
		v := src.View(0)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(src.Len()))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
		return append(dst, v...)
	case CodeDict:
		return encodeStringDict(dst, src, cfg, depth, rng)
	case CodeFSST:
		return encodeStringFSST(dst, src, cfg, depth, rng)
	}
	panic("unreachable scheme code " + code.String())
}

func encodeStringPlain(dst []byte, src coldata.Strings) []byte {
	n := src.Len()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src.Data)))
	for i := 0; i <= n; i++ {
		off := uint32(0)
		if len(src.Offsets) > 0 {
			off = src.Offsets[i]
		}
		dst = binary.LittleEndian.AppendUint32(dst, off)
	}
	return append(dst, src.Data...)
}

// encodeStringDict stores the sorted distinct strings as a pool (raw or
// FSST-compressed, whichever is smaller), the pool string lengths as a
// cascaded integer stream, and the per-row codes as a cascaded integer
// stream — which the selection algorithm typically sends to RLE or
// bit-packing.
func encodeStringDict(dst []byte, src coldata.Strings, cfg *Config, depth int, rng *rand.Rand) []byte {
	dictVals, codes := buildStringDict(src)
	n := src.Len()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(dictVals.Len()))

	lengths := make([]int32, dictVals.Len())
	for i := range lengths {
		lengths[i] = int32(dictVals.LenAt(i))
	}

	// Try FSST on the dictionary pool ("Dict+FSST" in Figure 3/4).
	pool := dictVals.Data
	useFSST := false
	var table *fsst.Table
	var encPool []byte
	if cfg.stringEnabled(CodeFSST) && depth > 1 && len(pool) >= 64 {
		table = fsst.Train([][]byte{pool})
		encPool = table.Encode(nil, pool)
		overhead := len(table.AppendTable(nil))
		useFSST = len(encPool)+overhead < len(pool)*95/100
	}
	if useFSST {
		dst = append(dst, poolFSST)
		dst = table.AppendTable(dst)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pool)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(encPool)))
		dst = append(dst, encPool...)
	} else {
		dst = append(dst, poolRaw)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pool)))
		dst = append(dst, pool...)
	}
	dst = compressInt(dst, lengths, cfg, depth-1, rng)
	return compressInt(dst, codes, cfg, depth-1, rng)
}

// buildStringDict returns the lexicographically sorted distinct strings
// and per-row codes.
func buildStringDict(src coldata.Strings) (coldata.Strings, []int32) {
	seen := make(map[string]int32, 1024)
	var distinct []string
	n := src.Len()
	for i := 0; i < n; i++ {
		// map[string(view)] lookups allocate only for new distinct values
		v := src.View(i)
		if _, ok := seen[string(v)]; !ok {
			val := string(v)
			seen[val] = 0
			distinct = append(distinct, val)
		}
	}
	slices.Sort(distinct)
	for i, v := range distinct {
		seen[v] = int32(i)
	}
	codes := make([]int32, n)
	for i := 0; i < n; i++ {
		codes[i] = seen[string(src.View(i))]
	}
	return coldata.MakeStrings(distinct), codes
}

// encodeStringFSST compresses the block's whole string payload with one
// trained symbol table and stores only the uncompressed string lengths
// next to it (§5: offsets of compressed strings are not needed when the
// block is decoded as one contiguous buffer).
func encodeStringFSST(dst []byte, src coldata.Strings, cfg *Config, depth int, rng *rand.Rand) []byte {
	n := src.Len()
	table := fsst.Train([][]byte{src.Data})
	enc := table.Encode(nil, src.Data)
	lengths := make([]int32, n)
	for i := range lengths {
		lengths[i] = int32(src.LenAt(i))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = table.AppendTable(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src.Data)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(enc)))
	dst = append(dst, enc...)
	return compressInt(dst, lengths, cfg, depth-1, rng)
}

// DecompressString decodes one string stream into a no-copy view column,
// returning the views and the number of input bytes consumed.
func DecompressString(src []byte, cfg *Config) (coldata.StringViews, int, error) {
	c := cfg.normalized()
	return decompressString(src, &c)
}

func decompressString(src []byte, cfg *Config) (coldata.StringViews, int, error) {
	var out coldata.StringViews
	if len(src) < 1 {
		return out, 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeUncompressed:
		out, used, err := decodeStringPlain(body)
		return out, used + 1, err
	case CodeOneValue:
		if len(body) < 8 {
			return out, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		l := int(binary.LittleEndian.Uint32(body[4:]))
		if n > cfg.maxN() || l < 0 || len(body) < 8+l {
			return out, 0, ErrCorrupt
		}
		pool := append([]byte(nil), body[8:8+l]...)
		views := make([]coldata.View, n)
		for i := range views {
			views[i] = coldata.View{Off: 0, Len: uint32(l)}
		}
		return coldata.StringViews{Views: views, Pool: pool}, 1 + 8 + l, nil
	case CodeDict:
		out, used, err := decodeStringDict(body, cfg)
		return out, used + 1, err
	case CodeFSST:
		out, used, err := decodeStringFSST(body, cfg)
		return out, used + 1, err
	default:
		return out, 0, ErrCorrupt
	}
}

func decodeStringPlain(src []byte) (coldata.StringViews, int, error) {
	var out coldata.StringViews
	if len(src) < 8 {
		return out, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	dataLen := int(binary.LittleEndian.Uint32(src[4:]))
	if n > maxBlockValues || dataLen < 0 {
		return out, 0, ErrCorrupt
	}
	need := 8 + 4*(n+1) + dataLen
	if len(src) < need {
		return out, 0, ErrCorrupt
	}
	offsets := make([]uint32, n+1)
	for i := range offsets {
		offsets[i] = binary.LittleEndian.Uint32(src[8+4*i:])
	}
	views := make([]coldata.View, n)
	for i := 0; i < n; i++ {
		if offsets[i] > offsets[i+1] || int(offsets[i+1]) > dataLen {
			return out, 0, ErrCorrupt
		}
		views[i] = coldata.View{Off: offsets[i], Len: offsets[i+1] - offsets[i]}
	}
	pool := append([]byte(nil), src[8+4*(n+1):need]...)
	return coldata.StringViews{Views: views, Pool: pool}, need, nil
}

func decodeStringDict(src []byte, cfg *Config) (coldata.StringViews, int, error) {
	var out coldata.StringViews
	if len(src) < 9 {
		return out, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	dictN := int(binary.LittleEndian.Uint32(src[4:]))
	if n > cfg.maxN() || dictN > n {
		return out, 0, ErrCorrupt
	}
	kind := src[8]
	pos := 9
	var pool []byte
	switch kind {
	case poolRaw:
		if len(src) < pos+4 {
			return out, 0, ErrCorrupt
		}
		l := int(binary.LittleEndian.Uint32(src[pos:]))
		pos += 4
		if l < 0 || len(src) < pos+l {
			return out, 0, ErrCorrupt
		}
		pool = append([]byte(nil), src[pos:pos+l]...)
		pos += l
	case poolFSST:
		table, used, err := fsst.TableFromBytes(src[pos:])
		if err != nil {
			return out, 0, ErrCorrupt
		}
		pos += used
		if len(src) < pos+8 {
			return out, 0, ErrCorrupt
		}
		rawLen := int(binary.LittleEndian.Uint32(src[pos:]))
		encLen := int(binary.LittleEndian.Uint32(src[pos+4:]))
		pos += 8
		if rawLen < 0 || encLen < 0 || len(src) < pos+encLen || rawLen > 8*encLen {
			// rawLen > 8*encLen is structurally impossible (an FSST code
			// expands to at most 8 bytes), so don't let a corrupt header
			// size the allocation.
			return out, 0, ErrCorrupt
		}
		pool, err = table.Decode(make([]byte, 0, rawLen), src[pos:pos+encLen])
		if err != nil || len(pool) != rawLen {
			return out, 0, ErrCorrupt
		}
		pos += encLen
	default:
		return out, 0, ErrCorrupt
	}
	lengths, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(lengths)
	if err != nil {
		return out, 0, err
	}
	pos += used
	if len(lengths) != dictN {
		return out, 0, ErrCorrupt
	}
	// Rebuild the dictionary's (offset, len) views over the pool.
	dictViews := make([]coldata.View, dictN)
	off := uint32(0)
	for i, l := range lengths {
		if l < 0 || int(off)+int(l) > len(pool) {
			return out, 0, ErrCorrupt
		}
		dictViews[i] = coldata.View{Off: off, Len: uint32(l)}
		off += uint32(l)
	}

	views := make([]coldata.View, n)
	// Fused Dict+RLE decompression (§5): when the code stream is RLE with
	// long runs, look up the dictionary per run and write runs of views
	// directly, skipping the intermediate codes array.
	if !cfg.DisableFuseDictRLE && !cfg.ScalarDecode && pos < len(src) && Code(src[pos]) == CodeRLE {
		runValues, runLengths, used, err := decodeRLEParts(src[pos:], cfg)
		if err != nil {
			return out, 0, err
		}
		defer cfg.Scratch.putInt32(runValues)
		defer cfg.Scratch.putInt32(runLengths)
		if n > 0 && len(runValues) > 0 && float64(n)/float64(len(runValues)) > 3 {
			pos += used
			o := 0
			for r, cv := range runValues {
				l := int(runLengths[r])
				if uint32(cv) >= uint32(dictN) || l < 0 || o+l > n {
					return out, 0, ErrCorrupt
				}
				v := dictViews[cv]
				for i := 0; i < l; i++ {
					views[o] = v
					o++
				}
			}
			if o != n {
				return out, 0, ErrCorrupt
			}
			return coldata.StringViews{Views: views, Pool: pool}, pos, nil
		}
		// short runs: fall through to the standard two-step decode below
	}
	codes, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(codes)
	if err != nil {
		return out, 0, err
	}
	pos += used
	if len(codes) != n {
		return out, 0, ErrCorrupt
	}
	for i, c := range codes {
		if uint32(c) >= uint32(dictN) {
			return out, 0, ErrCorrupt
		}
		views[i] = dictViews[c]
	}
	return coldata.StringViews{Views: views, Pool: pool}, pos, nil
}

// decodeRLEParts decodes only the run arrays of an RLE integer stream
// (for the fused Dict+RLE path), without expanding them.
func decodeRLEParts(src []byte, cfg *Config) (values, lengths []int32, consumed int, err error) {
	if len(src) < 9 || Code(src[0]) != CodeRLE {
		return nil, nil, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src[1:]))
	runCount := int(binary.LittleEndian.Uint32(src[5:]))
	if n > cfg.maxN() || runCount > n {
		return nil, nil, 0, ErrCorrupt
	}
	pos := 9
	values, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	if err != nil {
		cfg.Scratch.putInt32(values)
		return nil, nil, 0, err
	}
	pos += used
	lengths, used, err = decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	if err != nil {
		cfg.Scratch.putInt32(values)
		cfg.Scratch.putInt32(lengths)
		return nil, nil, 0, err
	}
	pos += used
	if len(values) != runCount || len(lengths) != runCount {
		cfg.Scratch.putInt32(values)
		cfg.Scratch.putInt32(lengths)
		return nil, nil, 0, ErrCorrupt
	}
	// On success the returned run arrays are arena-backed: the caller owns
	// them and returns them with putInt32 when the fused expansion is done.
	return values, lengths, pos, nil
}

func decodeStringFSST(src []byte, cfg *Config) (coldata.StringViews, int, error) {
	var out coldata.StringViews
	if len(src) < 4 {
		return out, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	if n > cfg.maxN() {
		return out, 0, ErrCorrupt
	}
	pos := 4
	table, used, err := fsst.TableFromBytes(src[pos:])
	if err != nil {
		return out, 0, ErrCorrupt
	}
	pos += used
	if len(src) < pos+8 {
		return out, 0, ErrCorrupt
	}
	rawLen := int(binary.LittleEndian.Uint32(src[pos:]))
	encLen := int(binary.LittleEndian.Uint32(src[pos+4:]))
	pos += 8
	if rawLen < 0 || encLen < 0 || len(src) < pos+encLen || rawLen > 8*encLen {
		// See decodeStringDict: cap the decode buffer by FSST's maximum
		// 8x expansion before allocating.
		return out, 0, ErrCorrupt
	}
	// One decode call over the whole block payload (§5: pass the first
	// offset and the summed length instead of per-string calls).
	pool, err := table.Decode(make([]byte, 0, rawLen), src[pos:pos+encLen])
	if err != nil || len(pool) != rawLen {
		return out, 0, ErrCorrupt
	}
	pos += encLen
	lengths, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
	defer cfg.Scratch.putInt32(lengths)
	if err != nil {
		return out, 0, err
	}
	pos += used
	if len(lengths) != n {
		return out, 0, ErrCorrupt
	}
	views := make([]coldata.View, n)
	off := uint32(0)
	for i, l := range lengths {
		if l < 0 || int(off)+int(l) > len(pool) {
			return out, 0, ErrCorrupt
		}
		views[i] = coldata.View{Off: off, Len: uint32(l)}
		off += uint32(l)
	}
	if int(off) != rawLen {
		return out, 0, ErrCorrupt
	}
	return coldata.StringViews{Views: views, Pool: pool}, pos, nil
}

// dictHeaderViews is the decoded dictionary part of a string Dict payload:
// the dictionary as views over its pool, plus the body offset where the
// codes stream begins. Used by compressed-data predicate evaluation.
type dictHeaderViews struct {
	dict     coldata.StringViews
	n        int
	codesOff int
}

// decodeStringDictViews decodes only the dictionary of a Dict payload
// (body excludes the scheme-code byte), leaving the codes stream untouched.
func decodeStringDictViews(body []byte, cfg *Config) (dictHeaderViews, error) {
	var out dictHeaderViews
	if len(body) < 9 {
		return out, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(body))
	dictN := int(binary.LittleEndian.Uint32(body[4:]))
	if n > cfg.maxN() || dictN > n {
		return out, ErrCorrupt
	}
	kind := body[8]
	pos := 9
	var pool []byte
	switch kind {
	case poolRaw:
		if len(body) < pos+4 {
			return out, ErrCorrupt
		}
		l := int(binary.LittleEndian.Uint32(body[pos:]))
		pos += 4
		if l < 0 || len(body) < pos+l {
			return out, ErrCorrupt
		}
		pool = body[pos : pos+l]
		pos += l
	case poolFSST:
		table, used, err := fsst.TableFromBytes(body[pos:])
		if err != nil {
			return out, ErrCorrupt
		}
		pos += used
		if len(body) < pos+8 {
			return out, ErrCorrupt
		}
		rawLen := int(binary.LittleEndian.Uint32(body[pos:]))
		encLen := int(binary.LittleEndian.Uint32(body[pos+4:]))
		pos += 8
		if rawLen < 0 || encLen < 0 || len(body) < pos+encLen || rawLen > 8*encLen {
			return out, ErrCorrupt
		}
		pool, err = table.Decode(make([]byte, 0, rawLen), body[pos:pos+encLen])
		if err != nil || len(pool) != rawLen {
			return out, ErrCorrupt
		}
		pos += encLen
	default:
		return out, ErrCorrupt
	}
	lengths, used, err := decompressInt(cfg.Scratch.getInt32(), body[pos:], cfg)
	defer cfg.Scratch.putInt32(lengths)
	if err != nil {
		return out, err
	}
	pos += used
	if len(lengths) != dictN {
		return out, ErrCorrupt
	}
	views := make([]coldata.View, dictN)
	off := uint32(0)
	for i, l := range lengths {
		if l < 0 || int(off)+int(l) > len(pool) {
			return out, ErrCorrupt
		}
		views[i] = coldata.View{Off: off, Len: uint32(l)}
		off += uint32(l)
	}
	out.dict = coldata.StringViews{Views: views, Pool: pool}
	out.n = n
	out.codesOff = pos
	return out, nil
}
