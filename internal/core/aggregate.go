package core

import (
	"encoding/binary"
	"math"

	"btrblocks/internal/roaring"
)

// Aggregate kernels: Count/Sum/Min/Max computed over one compressed
// stream without materializing the column where the scheme allows it —
// OneValue answers in O(1), RLE folds per run, Dict folds dictionary
// entries through the codes stream, Frequency splits into the top value
// and a recursive pass over the exceptions. Terminal bit-packed streams
// decode and fold.
//
// Determinism contract (the differential oracle depends on it): every
// path folds values with the same Fold/FoldRun/Merge operations a naive
// decode-then-fold evaluation would use, in the same row order within a
// block. Integer folds are exact (wrapping int64 addition is commutative,
// and a run's v*l equals l repeated additions mod 2^64), so integer fast
// paths may reorder freely. Float folds are order-sensitive, so the
// double paths walk rows in order even when the scheme could shortcut —
// they still skip materialization, which is the point. Min/Max are seeded
// from the first folded value; for doubles that means a leading NaN
// poisons Min/Max (later comparisons against NaN are false), and Sum
// includes NaNs — both documented, both identical to the naive fold.
// Count counts every row (NULL handling is the caller's job: these
// kernels see the physical stream). A zero Count leaves Sum/Min/Max at
// their zero values.

// IntAgg accumulates Count/Sum/Min/Max over int32 values.
type IntAgg struct {
	Count int
	Sum   int64
	Min   int32
	Max   int32
}

// Fold accumulates one value.
func (a *IntAgg) Fold(v int32) { a.FoldRun(v, 1) }

// FoldRun accumulates a run of l copies of v.
func (a *IntAgg) FoldRun(v int32, l int) {
	if l <= 0 {
		return
	}
	if a.Count == 0 {
		a.Min, a.Max = v, v
	} else {
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Sum += int64(v) * int64(l)
	a.Count += l
}

// Merge combines another accumulator into a.
func (a *IntAgg) Merge(o IntAgg) {
	if o.Count == 0 {
		return
	}
	if a.Count == 0 {
		a.Min, a.Max = o.Min, o.Max
	} else {
		if o.Min < a.Min {
			a.Min = o.Min
		}
		if o.Max > a.Max {
			a.Max = o.Max
		}
	}
	a.Sum += o.Sum
	a.Count += o.Count
}

// Int64Agg accumulates Count/Sum/Min/Max over int64 values.
type Int64Agg struct {
	Count int
	Sum   int64
	Min   int64
	Max   int64
}

// Fold accumulates one value.
func (a *Int64Agg) Fold(v int64) { a.FoldRun(v, 1) }

// FoldRun accumulates a run of l copies of v.
func (a *Int64Agg) FoldRun(v int64, l int) {
	if l <= 0 {
		return
	}
	if a.Count == 0 {
		a.Min, a.Max = v, v
	} else {
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Sum += v * int64(l)
	a.Count += l
}

// Merge combines another accumulator into a.
func (a *Int64Agg) Merge(o Int64Agg) {
	if o.Count == 0 {
		return
	}
	if a.Count == 0 {
		a.Min, a.Max = o.Min, o.Max
	} else {
		if o.Min < a.Min {
			a.Min = o.Min
		}
		if o.Max > a.Max {
			a.Max = o.Max
		}
	}
	a.Sum += o.Sum
	a.Count += o.Count
}

// DoubleAgg accumulates Count/Sum/Min/Max over float64 values.
type DoubleAgg struct {
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Fold accumulates one value. Folds are order-sensitive for floats; every
// evaluation path (compressed-domain and decode) folds in row order so
// results are bit-identical.
func (a *DoubleAgg) Fold(v float64) {
	if a.Count == 0 {
		a.Min, a.Max = v, v
	} else {
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Sum += v
	a.Count++
}

// Merge combines another accumulator into a (block order).
func (a *DoubleAgg) Merge(o DoubleAgg) {
	if o.Count == 0 {
		return
	}
	if a.Count == 0 {
		a.Min, a.Max = o.Min, o.Max
	} else {
		if o.Min < a.Min {
			a.Min = o.Min
		}
		if o.Max > a.Max {
			a.Max = o.Max
		}
	}
	a.Sum += o.Sum
	a.Count += o.Count
}

// AggregateInt folds one compressed int stream into an accumulator
// without materializing where the scheme allows. Returns the bytes
// consumed. st may be nil.
func AggregateInt(src []byte, st *SelectStats, cfg *Config) (IntAgg, int, error) {
	c := cfg.normalized()
	return aggregateInt(src, st.orDiscard(), &c)
}

func aggregateInt(src []byte, st *SelectStats, cfg *Config) (IntAgg, int, error) {
	var agg IntAgg
	if len(src) < 1 {
		return agg, 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeOneValue:
		if len(body) < 8 {
			return agg, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return agg, 0, ErrCorrupt
		}
		st.AggFast.Add(1)
		agg.FoldRun(int32(binary.LittleEndian.Uint32(body[4:])), n)
		return agg, 9, nil
	case CodeRLE:
		n := int(binary.LittleEndian.Uint32(body))
		values, lengths, used, err := decodeRLEParts(src, cfg)
		if err != nil {
			return agg, 0, err
		}
		defer cfg.Scratch.putInt32(values)
		defer cfg.Scratch.putInt32(lengths)
		st.AggFast.Add(1)
		off := 0
		for i, rv := range values {
			l := int(lengths[i])
			if l < 0 || off+l > n {
				return agg, 0, ErrCorrupt
			}
			agg.FoldRun(rv, l)
			off += l
		}
		if off != n {
			return agg, 0, ErrCorrupt
		}
		return agg, used, nil
	case CodeDict:
		if len(body) < 8 {
			return agg, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		dictN := int(binary.LittleEndian.Uint32(body[4:]))
		if n > cfg.maxN() || dictN > n {
			return agg, 0, ErrCorrupt
		}
		pos := 1 + 8
		dict, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
		defer cfg.Scratch.putInt32(dict)
		if err != nil {
			return agg, 0, err
		}
		if len(dict) != dictN {
			return agg, 0, ErrCorrupt
		}
		pos += used
		codes, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
		defer cfg.Scratch.putInt32(codes)
		if err != nil {
			return agg, 0, err
		}
		pos += used
		if len(codes) != n {
			return agg, 0, ErrCorrupt
		}
		st.AggFast.Add(1)
		for _, c := range codes {
			if int(c) >= dictN || c < 0 {
				return agg, 0, ErrCorrupt
			}
			agg.Fold(dict[c])
		}
		return agg, pos, nil
	case CodeFrequency:
		if len(body) < 8 {
			return agg, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return agg, 0, ErrCorrupt
		}
		top := int32(binary.LittleEndian.Uint32(body[4:]))
		pos := 1 + 8
		bm, used, err := roaring.FromBytes(src[pos:])
		if err != nil {
			return agg, 0, ErrCorrupt
		}
		pos += used
		excAgg, used, err := aggregateInt(src[pos:], st, cfg)
		if err != nil {
			return agg, 0, err
		}
		pos += used
		topCount := bm.Cardinality()
		if topCount+excAgg.Count != n {
			return agg, 0, ErrCorrupt
		}
		st.AggFast.Add(1)
		agg.FoldRun(top, topCount)
		agg.Merge(excAgg)
		return agg, pos, nil
	default:
		values, used, err := decompressInt(cfg.Scratch.getInt32(), src, cfg)
		defer cfg.Scratch.putInt32(values)
		if err != nil {
			return agg, 0, err
		}
		st.AggDecoded.Add(1)
		for _, v := range values {
			agg.Fold(v)
		}
		return agg, used, nil
	}
}

// AggregateInt64 folds one compressed int64 stream (see AggregateInt).
func AggregateInt64(src []byte, st *SelectStats, cfg *Config) (Int64Agg, int, error) {
	c := cfg.normalized()
	return aggregateInt64(src, st.orDiscard(), &c)
}

func aggregateInt64(src []byte, st *SelectStats, cfg *Config) (Int64Agg, int, error) {
	var agg Int64Agg
	if len(src) < 1 {
		return agg, 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeOneValue:
		if len(body) < 12 {
			return agg, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return agg, 0, ErrCorrupt
		}
		st.AggFast.Add(1)
		agg.FoldRun(int64(binary.LittleEndian.Uint64(body[4:])), n)
		return agg, 13, nil
	case CodeRLE:
		if len(body) < 8 {
			return agg, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		runCount := int(binary.LittleEndian.Uint32(body[4:]))
		if n > cfg.maxN() || runCount > n {
			return agg, 0, ErrCorrupt
		}
		pos := 1 + 8
		values, used, err := decompressInt64(cfg.Scratch.getInt64(), src[pos:], cfg)
		defer cfg.Scratch.putInt64(values)
		if err != nil {
			return agg, 0, err
		}
		pos += used
		lengths, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
		defer cfg.Scratch.putInt32(lengths)
		if err != nil {
			return agg, 0, err
		}
		pos += used
		if len(values) != runCount || len(lengths) != runCount {
			return agg, 0, ErrCorrupt
		}
		st.AggFast.Add(1)
		off := 0
		for i, rv := range values {
			l := int(lengths[i])
			if l < 0 || off+l > n {
				return agg, 0, ErrCorrupt
			}
			agg.FoldRun(rv, l)
			off += l
		}
		if off != n {
			return agg, 0, ErrCorrupt
		}
		return agg, pos, nil
	case CodeDict:
		if len(body) < 8 {
			return agg, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		dictN := int(binary.LittleEndian.Uint32(body[4:]))
		if n > cfg.maxN() || dictN > n {
			return agg, 0, ErrCorrupt
		}
		pos := 1 + 8
		dict, used, err := decompressInt64(cfg.Scratch.getInt64(), src[pos:], cfg)
		defer cfg.Scratch.putInt64(dict)
		if err != nil {
			return agg, 0, err
		}
		if len(dict) != dictN {
			return agg, 0, ErrCorrupt
		}
		pos += used
		codes, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
		defer cfg.Scratch.putInt32(codes)
		if err != nil {
			return agg, 0, err
		}
		pos += used
		if len(codes) != n {
			return agg, 0, ErrCorrupt
		}
		st.AggFast.Add(1)
		for _, c := range codes {
			if int(c) >= dictN || c < 0 {
				return agg, 0, ErrCorrupt
			}
			agg.Fold(dict[c])
		}
		return agg, pos, nil
	case CodeFrequency:
		if len(body) < 12 {
			return agg, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return agg, 0, ErrCorrupt
		}
		top := int64(binary.LittleEndian.Uint64(body[4:]))
		pos := 1 + 12
		bm, used, err := roaring.FromBytes(src[pos:])
		if err != nil {
			return agg, 0, ErrCorrupt
		}
		pos += used
		excAgg, used, err := aggregateInt64(src[pos:], st, cfg)
		if err != nil {
			return agg, 0, err
		}
		pos += used
		topCount := bm.Cardinality()
		if topCount+excAgg.Count != n {
			return agg, 0, ErrCorrupt
		}
		st.AggFast.Add(1)
		agg.FoldRun(top, topCount)
		agg.Merge(excAgg)
		return agg, pos, nil
	default:
		values, used, err := decompressInt64(cfg.Scratch.getInt64(), src, cfg)
		defer cfg.Scratch.putInt64(values)
		if err != nil {
			return agg, 0, err
		}
		st.AggDecoded.Add(1)
		for _, v := range values {
			agg.Fold(v)
		}
		return agg, used, nil
	}
}

// AggregateDouble folds one compressed double stream (see AggregateInt).
// Float folds are order-sensitive, so every path walks rows in order; the
// fast paths save the materialization, not the fold.
func AggregateDouble(src []byte, st *SelectStats, cfg *Config) (DoubleAgg, int, error) {
	c := cfg.normalized()
	return aggregateDouble(src, st.orDiscard(), &c)
}

func aggregateDouble(src []byte, st *SelectStats, cfg *Config) (DoubleAgg, int, error) {
	var agg DoubleAgg
	if len(src) < 1 {
		return agg, 0, ErrCorrupt
	}
	code := Code(src[0])
	body := src[1:]
	switch code {
	case CodeOneValue:
		if len(body) < 12 {
			return agg, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return agg, 0, ErrCorrupt
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(body[4:]))
		st.AggFast.Add(1)
		for i := 0; i < n; i++ {
			agg.Fold(v)
		}
		return agg, 13, nil
	case CodeRLE:
		if len(body) < 8 {
			return agg, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		runCount := int(binary.LittleEndian.Uint32(body[4:]))
		if n > cfg.maxN() || runCount > n {
			return agg, 0, ErrCorrupt
		}
		pos := 1 + 8
		values, used, err := decompressDouble(cfg.Scratch.getFloat64(), src[pos:], cfg)
		defer cfg.Scratch.putFloat64(values)
		if err != nil {
			return agg, 0, err
		}
		pos += used
		lengths, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
		defer cfg.Scratch.putInt32(lengths)
		if err != nil {
			return agg, 0, err
		}
		pos += used
		if len(values) != runCount || len(lengths) != runCount {
			return agg, 0, ErrCorrupt
		}
		st.AggFast.Add(1)
		off := 0
		for i, rv := range values {
			l := int(lengths[i])
			if l < 0 || off+l > n {
				return agg, 0, ErrCorrupt
			}
			for j := 0; j < l; j++ {
				agg.Fold(rv)
			}
			off += l
		}
		if off != n {
			return agg, 0, ErrCorrupt
		}
		return agg, pos, nil
	case CodeDict:
		if len(body) < 8 {
			return agg, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		dictN := int(binary.LittleEndian.Uint32(body[4:]))
		if n > cfg.maxN() || dictN > n {
			return agg, 0, ErrCorrupt
		}
		pos := 1 + 8
		dict, used, err := decompressDouble(cfg.Scratch.getFloat64(), src[pos:], cfg)
		defer cfg.Scratch.putFloat64(dict)
		if err != nil {
			return agg, 0, err
		}
		if len(dict) != dictN {
			return agg, 0, ErrCorrupt
		}
		pos += used
		codes, used, err := decompressInt(cfg.Scratch.getInt32(), src[pos:], cfg)
		defer cfg.Scratch.putInt32(codes)
		if err != nil {
			return agg, 0, err
		}
		pos += used
		if len(codes) != n {
			return agg, 0, ErrCorrupt
		}
		st.AggFast.Add(1)
		for _, c := range codes {
			if int(c) >= dictN || c < 0 {
				return agg, 0, ErrCorrupt
			}
			agg.Fold(dict[c])
		}
		return agg, pos, nil
	case CodeFrequency:
		if len(body) < 12 {
			return agg, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n > cfg.maxN() {
			return agg, 0, ErrCorrupt
		}
		top := math.Float64frombits(binary.LittleEndian.Uint64(body[4:]))
		pos := 1 + 12
		bm, used, err := roaring.FromBytes(src[pos:])
		if err != nil {
			return agg, 0, ErrCorrupt
		}
		pos += used
		// Row-order fold needs the exception values themselves, not a
		// recursive aggregate: decode the (small) exceptions stream and
		// interleave with the top-value bitmap in position order.
		exc, used, err := decompressDouble(cfg.Scratch.getFloat64(), src[pos:], cfg)
		defer cfg.Scratch.putFloat64(exc)
		if err != nil {
			return agg, 0, err
		}
		pos += used
		if bm.Cardinality()+len(exc) != n {
			return agg, 0, ErrCorrupt
		}
		st.AggFast.Add(1)
		ei := 0
		next := 0
		ok := true
		bm.ForEach(func(p uint32) bool {
			if int(p) >= n {
				ok = false
				return false
			}
			for next < int(p) {
				agg.Fold(exc[ei])
				ei++
				next++
			}
			agg.Fold(top)
			next++
			return true
		})
		if !ok {
			return agg, 0, ErrCorrupt
		}
		for next < n {
			agg.Fold(exc[ei])
			ei++
			next++
		}
		return agg, pos, nil
	default:
		values, used, err := decompressDouble(cfg.Scratch.getFloat64(), src, cfg)
		defer cfg.Scratch.putFloat64(values)
		if err != nil {
			return agg, 0, err
		}
		st.AggDecoded.Add(1)
		for _, v := range values {
			agg.Fold(v)
		}
		return agg, used, nil
	}
}
