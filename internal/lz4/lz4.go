// Package lz4 implements the LZ4 block format from scratch: token bytes
// with literal-length and match-length nibbles, 255-extension bytes, and
// 2-byte little-endian match offsets. It is used as one of the
// general-purpose codecs layered under the Parquet-like baseline, exactly
// as the paper layers LZ4 under Parquet.
package lz4

import (
	"encoding/binary"
	"errors"
)

// ErrCorrupt is returned for malformed compressed data.
var ErrCorrupt = errors.New("lz4: corrupt input")

const (
	minMatch  = 4
	hashBits  = 14
	hashTable = 1 << hashBits
	// The format requires the last match to start at least 12 bytes
	// before the end and the last 5 bytes to be literals.
	endMargin = 12
)

func hash4(u uint32) uint32 {
	return (u * 2654435761) >> (32 - hashBits)
}

// Encode compresses src and appends the result to dst, prefixed with a
// uvarint decompressed length (the raw block format itself carries none).
func Encode(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	var table [hashTable]int32
	for i := range table {
		table[i] = -1
	}
	s, lit := 0, 0
	limit := len(src) - endMargin
	for s < limit {
		u := binary.LittleEndian.Uint32(src[s:])
		h := hash4(u)
		cand := int(table[h])
		table[h] = int32(s)
		if cand < 0 || s-cand > 65535 || binary.LittleEndian.Uint32(src[cand:]) != u {
			s++
			continue
		}
		matchLen := minMatch
		// matches may extend up to the end margin
		maxLen := len(src) - 5 - s
		for matchLen < maxLen && src[cand+matchLen] == src[s+matchLen] {
			matchLen++
		}
		dst = emitSequence(dst, src[lit:s], s-cand, matchLen)
		s += matchLen
		lit = s
	}
	// trailing literals-only sequence
	return emitLastLiterals(dst, src[lit:])
}

func emitSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	mlToken := matchLen - minMatch
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	if mlToken >= 15 {
		token |= 15
	} else {
		token |= byte(mlToken)
	}
	dst = append(dst, token)
	dst = appendExtLen(dst, litLen)
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	return appendExtLen(dst, mlToken)
}

func emitLastLiterals(dst, literals []byte) []byte {
	litLen := len(literals)
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	dst = append(dst, token)
	dst = appendExtLen(dst, litLen)
	return append(dst, literals...)
}

// appendExtLen appends the 255-run extension bytes for a length field whose
// nibble was saturated at 15.
func appendExtLen(dst []byte, n int) []byte {
	if n < 15 {
		return dst
	}
	n -= 15
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// Decode decompresses src entirely and appends to dst.
func Decode(dst, src []byte) ([]byte, error) {
	want, read := binary.Uvarint(src)
	if read <= 0 || want > 1<<32 {
		return dst, ErrCorrupt
	}
	s := read
	base := len(dst)
	if want == 0 {
		if s != len(src) {
			return dst, ErrCorrupt
		}
		return dst, nil
	}
	for s < len(src) {
		token := src[s]
		s++
		// literals
		litLen := int(token >> 4)
		if litLen == 15 {
			var err error
			litLen, s, err = readExtLen(src, s, litLen)
			if err != nil {
				return dst, err
			}
		}
		if s+litLen > len(src) {
			return dst, ErrCorrupt
		}
		dst = append(dst, src[s:s+litLen]...)
		s += litLen
		if s == len(src) {
			break // last sequence has no match part
		}
		// match
		if s+2 > len(src) {
			return dst, ErrCorrupt
		}
		offset := int(binary.LittleEndian.Uint16(src[s:]))
		s += 2
		matchLen := int(token & 0x0f)
		if matchLen == 15 {
			var err error
			matchLen, s, err = readExtLen(src, s, matchLen)
			if err != nil {
				return dst, err
			}
		}
		matchLen += minMatch
		if offset == 0 || offset > len(dst)-base {
			return dst, ErrCorrupt
		}
		pos := len(dst) - offset
		for i := 0; i < matchLen; i++ {
			dst = append(dst, dst[pos+i])
		}
	}
	if len(dst)-base != int(want) {
		return dst, ErrCorrupt
	}
	return dst, nil
}

func readExtLen(src []byte, s, n int) (int, int, error) {
	for {
		if s >= len(src) {
			return 0, 0, ErrCorrupt
		}
		b := src[s]
		s++
		n += int(b)
		if b != 255 {
			return n, s, nil
		}
	}
}
