package lz4

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) int {
	t.Helper()
	enc := Encode(nil, src)
	dec, err := Decode(nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(dec))
	}
	return len(enc)
}

func TestRoundTrip(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("abcdefghijklm"),
		[]byte(strings.Repeat("0123456789abcdef", 4096)),
		bytes.Repeat([]byte{7}, 300000),
	}
	rng := rand.New(rand.NewSource(51))
	random := make([]byte, 70000)
	rng.Read(random)
	inputs = append(inputs, random)
	for _, src := range inputs {
		roundTrip(t, src)
	}
}

func TestExtensionLengths(t *testing.T) {
	// literal run > 15+255 and match run > 15+255 exercise extension bytes
	var src []byte
	rng := rand.New(rand.NewSource(52))
	lit := make([]byte, 700)
	rng.Read(lit)
	src = append(src, lit...)
	src = append(src, bytes.Repeat([]byte("Q"), 900)...)
	src = append(src, lit...)
	roundTrip(t, src)
}

func TestCompressionEffective(t *testing.T) {
	src := []byte(strings.Repeat("lorem ipsum dolor sit amet ", 2000))
	if size := roundTrip(t, src); size > len(src)/5 {
		t.Fatalf("repetitive text compressed only to %d/%d", size, len(src))
	}
}

func TestCorrupt(t *testing.T) {
	enc := Encode(nil, []byte(strings.Repeat("abcabcabd", 200)))
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(nil, enc[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 250 // wrong decompressed length
	if _, err := Decode(nil, bad); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestQuick(t *testing.T) {
	f := func(src []byte) bool {
		dec, err := Decode(nil, Encode(nil, src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
