package fastpfor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"btrblocks/internal/bitpack"
)

func roundTrip(t *testing.T, src []int32) []byte {
	t.Helper()
	enc := Encode(nil, src)
	dec, used, err := Decode(nil, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if used != len(enc) {
		t.Fatalf("consumed %d of %d", used, len(enc))
	}
	if len(dec) != len(src) {
		t.Fatalf("got %d values, want %d", len(dec), len(src))
	}
	for i := range src {
		if dec[i] != src[i] {
			t.Fatalf("value %d = %d, want %d", i, dec[i], src[i])
		}
	}
	return enc
}

func TestRoundTripBasic(t *testing.T) {
	for _, src := range [][]int32{
		nil,
		{0},
		{1, 2, 3},
		{math.MinInt32, 0, math.MaxInt32},
		{-7, -7, -7, -7},
	} {
		roundTrip(t, src)
	}
}

func TestOutliersBeatPlainFOR(t *testing.T) {
	// Mostly small values with rare huge outliers: patching should win
	// clearly over plain FOR, which must widen every value.
	rng := rand.New(rand.NewSource(7))
	src := make([]int32, 64000)
	for i := range src {
		src[i] = int32(rng.Intn(16))
		if i%512 == 0 {
			src[i] = int32(rng.Intn(1 << 30))
		}
	}
	pf := roundTrip(t, src)
	plain := bitpack.EncodeFOR(nil, src)
	if len(pf) >= len(plain) {
		t.Fatalf("fastpfor (%d bytes) should beat plain FOR (%d bytes) on outlier data", len(pf), len(plain))
	}
	if ratio := float64(len(src)*4) / float64(len(pf)); ratio < 4 {
		t.Fatalf("expected ratio > 4x on 4-bit data with rare outliers, got %.2f", ratio)
	}
}

func TestUniformDataNoRegression(t *testing.T) {
	// With no outliers the codec should degrade gracefully to ~plain FOR.
	rng := rand.New(rand.NewSource(8))
	src := make([]int32, 10000)
	for i := range src {
		src[i] = int32(rng.Intn(1 << 12))
	}
	pf := roundTrip(t, src)
	plain := bitpack.EncodeFOR(nil, src)
	if float64(len(pf)) > 1.1*float64(len(plain)) {
		t.Fatalf("fastpfor %d bytes vs plain %d bytes: more than 10%% worse on uniform data", len(pf), len(plain))
	}
}

func TestCorrupt(t *testing.T) {
	enc := Encode(nil, []int32{5, 5, 5, 1000000, 5})
	for cut := 0; cut < len(enc); cut++ {
		if cut == 4 {
			continue // valid empty stream prefix
		}
		if _, _, err := Decode(nil, enc[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[8] = 60 // b > 32
	if _, _, err := Decode(nil, bad); err == nil {
		t.Fatal("bad width not detected")
	}
}

func TestQuick(t *testing.T) {
	f := func(src []int32) bool {
		enc := Encode(nil, src)
		dec, used, err := Decode(nil, enc)
		if err != nil || used != len(enc) || len(dec) != len(src) {
			return false
		}
		for i := range src {
			if dec[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	src := make([]int32, 64000)
	for i := range src {
		src[i] = int32(rng.Intn(1 << 10))
		if i%256 == 0 {
			src[i] = int32(rng.Intn(1 << 28))
		}
	}
	enc := Encode(nil, src)
	dst := make([]int32, 0, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = Decode(dst[:0], enc)
		if err != nil {
			b.Fatal(err)
		}
	}
}
