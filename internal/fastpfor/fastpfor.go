// Package fastpfor implements a patched frame-of-reference codec for 32-bit
// integers in the spirit of SIMD-FastPFOR (Lemire & Boytsov): values are
// rebased on the block minimum and packed in 128-value blocks at a small bit
// width b chosen per block; the few values that do not fit ("exceptions")
// store their position and their high bits out of line, so outliers do not
// inflate the width of the whole block.
//
// Blocks reuse the bitpack layout invariants: a full block's low-bits
// payload is BlockLen*b bits rounded up to whole 64-bit words, so every
// block starts word-aligned and decodes through the width-specialized
// kernels in package bitpack. A final partial block (fewer than
// BlockLen values) and the §6.8 scalar ablation ([DecodeGeneric]) take
// the generic accumulator path instead.
package fastpfor

import (
	"encoding/binary"
	"errors"

	"btrblocks/internal/bitpack"
)

// BlockLen is the number of values per patched block.
const BlockLen = bitpack.BlockLen

// ErrCorrupt is returned when a stream is malformed.
var ErrCorrupt = errors.New("fastpfor: corrupt stream")

// Encode compresses src and appends the result to dst.
//
// Layout:
//
//	n:u32 base:u32 then per 128-value block:
//	  b:u8 maxb:u8 excCount:u8
//	  packed low bits (BlockLen*b bits, rounded to 64-bit words)
//	  exception positions (excCount bytes)
//	  packed exception high bits (excCount*(maxb-b) bits)
func Encode(dst []byte, src []int32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(src)))
	if len(src) == 0 {
		return dst
	}
	base := src[0]
	for _, v := range src {
		if v < base {
			base = v
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(base))

	var deltas [BlockLen]uint32
	var lows [BlockLen]uint32
	var highs [BlockLen]uint32
	var positions [BlockLen]byte
	for off := 0; off < len(src); off += BlockLen {
		end := off + BlockLen
		if end > len(src) {
			end = len(src)
		}
		blk := src[off:end]
		for i, v := range blk {
			deltas[i] = uint32(int64(v) - int64(base))
		}
		d := deltas[:len(blk)]
		b, maxb := chooseWidth(d)
		exc := 0
		for i, v := range d {
			lows[i] = v & lowMask(b)
			if bitpack.Width(v) > b {
				positions[exc] = byte(i)
				highs[exc] = v >> b
				exc++
			}
		}
		dst = append(dst, byte(b), byte(maxb), byte(exc))
		dst = bitpack.Pack(dst, lows[:len(blk)], b)
		dst = append(dst, positions[:exc]...)
		dst = bitpack.Pack(dst, highs[:exc], maxb-b)
	}
	return dst
}

// chooseWidth picks the packed width b minimizing the block's encoded size
// and returns it with the maximum width maxb.
func chooseWidth(d []uint32) (b, maxb uint) {
	var freq [33]int
	for _, v := range d {
		freq[bitpack.Width(v)]++
	}
	maxb = 32
	for maxb > 0 && freq[maxb] == 0 {
		maxb--
	}
	best := maxb
	bestBits := uint64(len(d)) * uint64(maxb)
	exceptions := 0
	for w := int(maxb) - 1; w >= 0; w-- {
		exceptions += freq[w+1]
		// cost: packed lows + positions (8 bits each) + packed highs
		bits := uint64(len(d))*uint64(w) +
			uint64(exceptions)*8 +
			uint64(exceptions)*uint64(maxb-uint(w))
		if bits < bestBits {
			bestBits = bits
			best = uint(w)
		}
	}
	return best, maxb
}

func lowMask(b uint) uint32 {
	if b >= 32 {
		return ^uint32(0)
	}
	return (1 << b) - 1
}

// Decode decompresses a stream produced by Encode, appending values to dst.
// It returns the extended dst and the number of bytes consumed. Full
// blocks route through bitpack's width-specialized kernels (both the low
// bits and the exception high bits are bit-packed streams).
func Decode(dst []int32, src []byte) ([]int32, int, error) {
	return decode(dst, src, bitpack.Unpack)
}

// DecodeGeneric is Decode on the generic unpack loop — the scalar side
// of the §6.8 ablation. Output is bit-identical to Decode.
func DecodeGeneric(dst []int32, src []byte) ([]int32, int, error) {
	return decode(dst, src, bitpack.UnpackGeneric)
}

func decode(dst []int32, src []byte, unpack func([]uint32, []byte, int, uint) (int, error)) ([]int32, int, error) {
	if len(src) < 4 {
		return dst, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src))
	pos := 4
	if n == 0 {
		return dst, pos, nil
	}
	if len(src) < 8 {
		return dst, 0, ErrCorrupt
	}
	// Each block carries a 3-byte header: reject counts the input cannot
	// possibly hold before allocating the output.
	if n < 0 || (n+BlockLen-1)/BlockLen*3 > len(src)-8 {
		return dst, 0, ErrCorrupt
	}
	base := int32(binary.LittleEndian.Uint32(src[pos:]))
	pos += 4

	var lows [BlockLen]uint32
	var highs [BlockLen]uint32
	out := len(dst)
	dst = append(dst, make([]int32, n)...)
	for got := 0; got < n; got += BlockLen {
		cnt := n - got
		if cnt > BlockLen {
			cnt = BlockLen
		}
		if pos+3 > len(src) {
			return dst, 0, ErrCorrupt
		}
		b := uint(src[pos])
		maxb := uint(src[pos+1])
		exc := int(src[pos+2])
		pos += 3
		if b > 32 || maxb > 32 || b > maxb || exc > cnt {
			return dst, 0, ErrCorrupt
		}
		used, err := unpack(lows[:cnt], src[pos:], cnt, b)
		if err != nil {
			return dst, 0, err
		}
		pos += used
		if pos+exc > len(src) {
			return dst, 0, ErrCorrupt
		}
		positions := src[pos : pos+exc]
		pos += exc
		used, err = unpack(highs[:exc], src[pos:], exc, maxb-b)
		if err != nil {
			return dst, 0, err
		}
		pos += used
		for i := 0; i < exc; i++ {
			p := int(positions[i])
			if p >= cnt {
				return dst, 0, ErrCorrupt
			}
			lows[p] |= highs[i] << b
		}
		// base + delta wraps mod 2^32 either way, so int32 addition is
		// exactly the old widen-add-truncate.
		blk := dst[out+got : out+got+cnt]
		for i := range blk {
			blk[i] = base + int32(lows[i])
		}
	}
	return dst, pos, nil
}
