package fastpfor_test

import (
	"fmt"

	"btrblocks/internal/fastpfor"
)

// FastPFOR packs each 128-value block at a width chosen for the common
// case; rare outliers ("exceptions") store their high bits out of line
// instead of inflating the width of the whole block.
func ExampleDecode() {
	src := make([]int32, 256)
	for i := range src {
		src[i] = int32(i % 16) // fits in 4 bits...
	}
	src[100] = 1 << 20 // ...except one outlier, patched as an exception

	enc := fastpfor.Encode(nil, src)
	dec, used, err := fastpfor.Decode(nil, enc)
	if err != nil {
		panic(err)
	}
	fmt.Println("roundtrip ok:", len(dec) == len(src) && dec[100] == 1<<20)
	fmt.Println("bytes consumed == len(enc):", used == len(enc))
	fmt.Println("compressed smaller than raw:", len(enc) < 4*len(src))
	// Output:
	// roundtrip ok: true
	// bytes consumed == len(enc): true
	// compressed smaller than raw: true
}
