// Package snappy implements the Snappy block format (the byte-oriented
// LZ77 codec Parquet files are commonly recompressed with). Both the
// encoder and decoder are written from scratch against the public format
// description: a uvarint length preamble followed by literal and copy
// elements with 1-, 2- or 4-byte offsets.
package snappy

import (
	"encoding/binary"
	"errors"
)

// ErrCorrupt is returned for malformed compressed data.
var ErrCorrupt = errors.New("snappy: corrupt input")

const (
	tagLiteral = 0x00
	tagCopy1   = 0x01
	tagCopy2   = 0x02
	tagCopy4   = 0x03

	hashBits  = 14
	hashTable = 1 << hashBits

	minMatch = 4
)

// MaxEncodedLen returns an upper bound on Encode's output size for an
// input of length n.
func MaxEncodedLen(n int) int {
	return 32 + n + n/6
}

func hash4(u uint32) uint32 {
	return (u * 0x1e35a7bd) >> (32 - hashBits)
}

// Encode compresses src and appends the result to dst.
func Encode(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	var table [hashTable]int32
	for i := range table {
		table[i] = -1
	}
	s := 0   // current position
	lit := 0 // start of pending literals
	limit := len(src) - minMatch
	for s <= limit {
		u := binary.LittleEndian.Uint32(src[s:])
		h := hash4(u)
		cand := int(table[h])
		table[h] = int32(s)
		if cand < 0 || s-cand > 1<<16-1 || binary.LittleEndian.Uint32(src[cand:]) != u {
			s++
			continue
		}
		// extend the match
		matchLen := minMatch
		for s+matchLen < len(src) && src[cand+matchLen] == src[s+matchLen] {
			matchLen++
		}
		dst = emitLiteral(dst, src[lit:s])
		dst = emitCopy(dst, s-cand, matchLen)
		s += matchLen
		lit = s
	}
	return emitLiteral(dst, src[lit:])
}

func emitLiteral(dst, lit []byte) []byte {
	n := len(lit)
	if n == 0 {
		return dst
	}
	switch {
	case n <= 60:
		dst = append(dst, byte(n-1)<<2|tagLiteral)
	case n <= 1<<8:
		dst = append(dst, 60<<2|tagLiteral, byte(n-1))
	case n <= 1<<16:
		dst = append(dst, 61<<2|tagLiteral, byte(n-1), byte((n-1)>>8))
	case n <= 1<<24:
		dst = append(dst, 62<<2|tagLiteral, byte(n-1), byte((n-1)>>8), byte((n-1)>>16))
	default:
		dst = append(dst, 63<<2|tagLiteral, byte(n-1), byte((n-1)>>8), byte((n-1)>>16), byte((n-1)>>24))
	}
	return append(dst, lit...)
}

func emitCopy(dst []byte, offset, length int) []byte {
	// Long matches are emitted as a chain of copies, longest-first.
	for length >= 68 {
		dst = append(dst, 63<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 64
	}
	if length > 64 {
		// emit a length-60 copy to leave >= 4 for the final element
		dst = append(dst, 59<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 60
	}
	if length >= 12 || offset >= 2048 || length < 4 {
		dst = append(dst, byte(length-1)<<2|tagCopy2, byte(offset), byte(offset>>8))
		return dst
	}
	// 1-byte-offset form: 3 offset high bits in the tag
	dst = append(dst, byte(offset>>8)<<5|byte(length-4)<<2|tagCopy1, byte(offset))
	return dst
}

// DecodedLen returns the decompressed length recorded in the preamble.
func DecodedLen(src []byte) (int, error) {
	n, read := binary.Uvarint(src)
	if read <= 0 || n > 1<<32 {
		return 0, ErrCorrupt
	}
	return int(n), nil
}

// Decode decompresses src entirely and appends to dst.
func Decode(dst, src []byte) ([]byte, error) {
	want, err := DecodedLen(src)
	if err != nil {
		return dst, err
	}
	_, read := binary.Uvarint(src)
	s := read
	base := len(dst)
	for s < len(src) {
		tag := src[s]
		var length, offset int
		switch tag & 0x03 {
		case tagLiteral:
			length = int(tag>>2) + 1
			s++
			if length > 60 {
				extra := length - 60
				if s+extra > len(src) {
					return dst, ErrCorrupt
				}
				length = 0
				for i := extra - 1; i >= 0; i-- {
					length = length<<8 | int(src[s+i])
				}
				length++
				s += extra
			}
			if s+length > len(src) {
				return dst, ErrCorrupt
			}
			dst = append(dst, src[s:s+length]...)
			s += length
			continue
		case tagCopy1:
			if s+2 > len(src) {
				return dst, ErrCorrupt
			}
			length = 4 + int(tag>>2)&0x07
			offset = int(tag&0xe0)<<3 | int(src[s+1])
			s += 2
		case tagCopy2:
			if s+3 > len(src) {
				return dst, ErrCorrupt
			}
			length = 1 + int(tag>>2)
			offset = int(binary.LittleEndian.Uint16(src[s+1:]))
			s += 3
		case tagCopy4:
			if s+5 > len(src) {
				return dst, ErrCorrupt
			}
			length = 1 + int(tag>>2)
			offset = int(binary.LittleEndian.Uint32(src[s+1:]))
			s += 5
		}
		if offset <= 0 || offset > len(dst)-base {
			return dst, ErrCorrupt
		}
		// Overlapping copies are legal (offset < length): copy byte-wise.
		pos := len(dst) - offset
		for i := 0; i < length; i++ {
			dst = append(dst, dst[pos+i])
		}
	}
	if len(dst)-base != want {
		return dst, ErrCorrupt
	}
	return dst, nil
}
