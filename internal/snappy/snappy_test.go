package snappy

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) int {
	t.Helper()
	enc := Encode(nil, src)
	if len(enc) > MaxEncodedLen(len(src)) {
		t.Fatalf("encoded %d exceeds MaxEncodedLen %d", len(enc), MaxEncodedLen(len(src)))
	}
	dec, err := Decode(nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(dec))
	}
	return len(enc)
}

func TestRoundTrip(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("abcd"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),
		[]byte(strings.Repeat("the quick brown fox ", 1000)),
		bytes.Repeat([]byte{0}, 100000),
	}
	rng := rand.New(rand.NewSource(41))
	random := make([]byte, 65536)
	rng.Read(random)
	inputs = append(inputs, random)
	for _, src := range inputs {
		roundTrip(t, src)
	}
}

func TestCompressionEffective(t *testing.T) {
	src := []byte(strings.Repeat("SELECT * FROM lineitem WHERE l_shipdate < DATE '1998-09-02'; ", 500))
	if size := roundTrip(t, src); size > len(src)/5 {
		t.Fatalf("repetitive text compressed only to %d/%d", size, len(src))
	}
}

func TestOverlappingCopies(t *testing.T) {
	// RLE-style data forces overlapping copies (offset < length).
	src := append([]byte("x"), bytes.Repeat([]byte("ab"), 5000)...)
	roundTrip(t, src)
}

func TestLongMatches(t *testing.T) {
	// matches > 64 bytes exercise the chained emitCopy path
	src := bytes.Repeat([]byte("z"), 1<<20)
	if size := roundTrip(t, src); size > 64000 {
		t.Fatalf("1 MiB of z compressed to only %d", size)
	}
}

func TestCorrupt(t *testing.T) {
	enc := Encode(nil, []byte(strings.Repeat("hello world ", 100)))
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(nil, enc[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	// declared length longer than actual output
	bad := append([]byte{200}, enc[1:]...)
	if _, err := Decode(nil, bad); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestQuick(t *testing.T) {
	f := func(src []byte) bool {
		dec, err := Decode(nil, Encode(nil, src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecode(b *testing.B) {
	var sb strings.Builder
	rng := rand.New(rand.NewSource(42))
	words := []string{"data", "lake", "scan", "column", "block", "the", "of", "compression"}
	for sb.Len() < 1<<20 {
		sb.WriteString(words[rng.Intn(len(words))])
		sb.WriteByte(' ')
	}
	src := []byte(sb.String())
	enc := Encode(nil, src)
	dst := make([]byte, 0, len(src))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = Decode(dst[:0], enc)
		if err != nil {
			b.Fatal(err)
		}
	}
}
