package query

// Differential oracle for the query engine: seeded generators (shared
// with the root parallel-equivalence harness via internal/testgen) sweep
// column shapes — 4 types × NULL density × run length × cardinality ×
// block-straddling sizes — and every (shape, plan) pair asserts the
// executor's selection vector is bit-identical to a naive evaluate-on-
// original-values reference, and its aggregates bit-identical to a
// per-block fold merged in block order (the documented Aggregate
// contract). Plans run at Parallelism 1 and GOMAXPROCS; restricted-
// scheme variants additionally FAIL if the compressed-domain path for
// the restricted scheme never fired — proof the fast paths are actually
// exercised, not silently falling back to decode-then-filter.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"btrblocks"
	"btrblocks/internal/roaring"
	"btrblocks/internal/testgen"
	"btrblocks/metadata"
)

// refCol is the oracle's view of a column: the original pre-compression
// values plus the NULL positions. Predicates never match NULL slots, and
// non-NULL slots round-trip exactly, so the original values are the
// ground truth the compressed evaluation must reproduce.
type refCol struct {
	typ  btrblocks.Type
	ints []int32
	i64  []int64
	dbl  []float64
	str  []string
	null map[int]bool
	rows int
}

func nullSet(nulls []int) map[int]bool {
	m := make(map[int]bool, len(nulls))
	for _, i := range nulls {
		m[i] = true
	}
	return m
}

// genRefCol draws one column shape and returns both the library Column
// and the oracle's reference view.
func genRefCol(rng *rand.Rand, typ btrblocks.Type, s testgen.Spec, name string) (btrblocks.Column, *refCol) {
	rc := &refCol{typ: typ, rows: s.Rows}
	var col btrblocks.Column
	var nulls []int
	switch typ {
	case btrblocks.TypeInt:
		rc.ints, nulls = testgen.IntValues(rng, s)
		col = btrblocks.IntColumn(name, rc.ints)
	case btrblocks.TypeInt64:
		rc.i64, nulls = testgen.Int64Values(rng, s)
		col = btrblocks.Int64Column(name, rc.i64)
	case btrblocks.TypeDouble:
		rc.dbl, nulls = testgen.DoubleValues(rng, s)
		col = btrblocks.DoubleColumn(name, rc.dbl)
	default:
		rc.str, nulls = testgen.StringValues(rng, s)
		col = btrblocks.StringColumn(name, rc.str)
	}
	rc.null = nullSet(nulls)
	for _, i := range nulls {
		if col.Nulls == nil {
			col.Nulls = btrblocks.NewNullMask()
		}
		col.Nulls.SetNull(i)
	}
	return col, rc
}

// buildQueryCol compresses a column and wraps it (with its metadata
// sidecar) as a queryable Col.
func buildQueryCol(t *testing.T, col btrblocks.Column, copt *btrblocks.Options) *Col {
	t.Helper()
	data, err := btrblocks.CompressColumn(col, copt)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	ix, err := btrblocks.ParseColumnIndex(data)
	if err != nil {
		t.Fatalf("parse index: %v", err)
	}
	m := metadata.Build(col, copt)
	return &Col{Index: ix, Data: data, Meta: &m}
}

// --- reference evaluation (independent of the executor's bind path) ---

func refLeafMatch(t *testing.T, n *Node, rc *refCol, i int) bool {
	t.Helper()
	fail := func(err error) bool { t.Fatalf("oracle literal parse: %v", err); return false }
	switch n.Op {
	case "notnull":
		return true
	case "eq":
		switch rc.typ {
		case btrblocks.TypeInt:
			v, err := parseInt32Lit(n.Value, "ref")
			if err != nil {
				return fail(err)
			}
			return rc.ints[i] == v
		case btrblocks.TypeInt64:
			v, err := parseInt64Lit(n.Value, "ref")
			if err != nil {
				return fail(err)
			}
			return rc.i64[i] == v
		case btrblocks.TypeDouble:
			v, err := parseDoubleLit(n.Value, "ref")
			if err != nil {
				return fail(err)
			}
			return math.Float64bits(rc.dbl[i]) == math.Float64bits(v)
		default:
			v, err := parseStringLit(n.Value, "ref")
			if err != nil {
				return fail(err)
			}
			return rc.str[i] == v
		}
	case "range":
		switch rc.typ {
		case btrblocks.TypeInt:
			lo, hi := int32(math.MinInt32), int32(math.MaxInt32)
			if n.Lo != nil {
				lo, _ = parseInt32Lit(n.Lo, "ref")
			}
			if n.Hi != nil {
				hi, _ = parseInt32Lit(n.Hi, "ref")
			}
			return rc.ints[i] >= lo && rc.ints[i] <= hi
		case btrblocks.TypeInt64:
			lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
			if n.Lo != nil {
				lo, _ = parseInt64Lit(n.Lo, "ref")
			}
			if n.Hi != nil {
				hi, _ = parseInt64Lit(n.Hi, "ref")
			}
			return rc.i64[i] >= lo && rc.i64[i] <= hi
		case btrblocks.TypeDouble:
			lo, hi := math.Inf(-1), math.Inf(1)
			if n.Lo != nil {
				lo, _ = parseDoubleLit(n.Lo, "ref")
			}
			if n.Hi != nil {
				hi, _ = parseDoubleLit(n.Hi, "ref")
			}
			return rc.dbl[i] >= lo && rc.dbl[i] <= hi
		default:
			lo := ""
			if n.Lo != nil {
				lo, _ = parseStringLit(n.Lo, "ref")
			}
			hi, _ := parseStringLit(n.Hi, "ref")
			return rc.str[i] >= lo && rc.str[i] <= hi
		}
	case "in":
		for _, raw := range n.Values {
			probe := &Node{Op: "eq", Column: n.Column, Value: raw}
			if refLeafMatch(t, probe, rc, i) {
				return true
			}
		}
		return false
	}
	t.Fatalf("oracle: unknown leaf op %q", n.Op)
	return false
}

func refEval(t *testing.T, n *Node, cols map[string]*refCol, rows int) *roaring.Bitmap {
	t.Helper()
	switch n.Op {
	case "and":
		out := refEval(t, n.Children[0], cols, rows)
		for _, c := range n.Children[1:] {
			out = roaring.And(out, refEval(t, c, cols, rows))
		}
		return out
	case "or":
		out := refEval(t, n.Children[0], cols, rows)
		for _, c := range n.Children[1:] {
			out = roaring.Or(out, refEval(t, c, cols, rows))
		}
		return out
	default:
		rc := cols[n.Column]
		out := roaring.New()
		for i := 0; i < rows; i++ {
			if rc.null[i] {
				continue
			}
			if refLeafMatch(t, n, rc, i) {
				out.Add(uint32(i))
			}
		}
		return out
	}
}

// refAggregate folds the reference values per block and merges the
// partials in block order — the executor's documented contract, so
// double Sum/Min/Max must agree bit for bit.
func refAggregate(rc *refCol, sel *roaring.Bitmap, blockSize int) btrblocks.Aggregate {
	total := btrblocks.Aggregate{Type: rc.typ}
	for lo := 0; lo < rc.rows; lo += blockSize {
		hi := lo + blockSize
		if hi > rc.rows {
			hi = rc.rows
		}
		part := btrblocks.Aggregate{Type: rc.typ}
		for i := lo; i < hi; i++ {
			if rc.null[i] || (sel != nil && !sel.Contains(uint32(i))) {
				continue
			}
			switch rc.typ {
			case btrblocks.TypeInt:
				part.FoldInt(rc.ints[i])
			case btrblocks.TypeInt64:
				part.FoldInt64(rc.i64[i])
			case btrblocks.TypeDouble:
				part.FoldDouble(rc.dbl[i])
			default:
				part.FoldString([]byte(rc.str[i]))
			}
		}
		total.Merge(part)
	}
	return total
}

// --- plan generation per type ---

func jNum(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func jStr(s string) json.RawMessage { return jNum(s) }

// sampleValues returns up to k distinct non-NULL literal encodings drawn
// from the column (finite doubles only — NaN gets its own plan).
func sampleValues(rc *refCol, k int) []json.RawMessage {
	seen := make(map[string]bool)
	var out []json.RawMessage
	for i := 0; i < rc.rows && len(out) < k; i++ {
		if rc.null[i] {
			continue
		}
		var raw json.RawMessage
		switch rc.typ {
		case btrblocks.TypeInt:
			raw = jNum(rc.ints[i])
		case btrblocks.TypeInt64:
			raw = jNum(rc.i64[i])
		case btrblocks.TypeDouble:
			if math.IsNaN(rc.dbl[i]) {
				continue
			}
			raw = jNum(rc.dbl[i])
		default:
			raw = jStr(rc.str[i])
		}
		if !seen[string(raw)] {
			seen[string(raw)] = true
			out = append(out, raw)
		}
	}
	return out
}

// missValue is a literal guaranteed absent from the generated pools.
func missValue(typ btrblocks.Type) json.RawMessage {
	switch typ {
	case btrblocks.TypeInt:
		return jNum(int32(-7)) // pools are non-negative
	case btrblocks.TypeInt64:
		return jNum(int64(12345)) // pools start at 1.6e12
	case btrblocks.TypeDouble:
		return jNum(-123456.5) // pools are non-negative two-decimal prices
	default:
		return jStr("zzz-not-generated")
	}
}

func rawLess(typ btrblocks.Type, a, b json.RawMessage) bool {
	switch typ {
	case btrblocks.TypeInt:
		x, _ := parseInt32Lit(a, "t")
		y, _ := parseInt32Lit(b, "t")
		return x < y
	case btrblocks.TypeInt64:
		x, _ := parseInt64Lit(a, "t")
		y, _ := parseInt64Lit(b, "t")
		return x < y
	case btrblocks.TypeDouble:
		x, _ := parseDoubleLit(a, "t")
		y, _ := parseDoubleLit(b, "t")
		return x < y
	default:
		x, _ := parseStringLit(a, "t")
		y, _ := parseStringLit(b, "t")
		return x < y
	}
}

// oraclePlans builds the predicate sweep for a column "a" of the given
// type with a companion int column "b" (for multi-column AND/OR).
func oraclePlans(rcA, rcB *refCol) []*Plan {
	typ := rcA.typ
	vs := sampleValues(rcA, 3)
	bs := sampleValues(rcB, 2)
	leafNotNull := &Node{Op: "notnull", Column: "a"}
	var plans []*Plan
	add := func(f *Node) { plans = append(plans, &Plan{Filter: f, Return: ReturnBitmap, Rows: true}) }

	add(leafNotNull)
	add(&Node{Op: "eq", Column: "a", Value: missValue(typ)})
	if typ != btrblocks.TypeString {
		// An empty range (lo > hi) must select nothing everywhere.
		add(&Node{Op: "range", Column: "a", Lo: jNum(5), Hi: jNum(-5)})
	}
	if typ == btrblocks.TypeDouble {
		// Bit-exact NaN probe: the canonical NaN never matches the
		// generator's payload NaN, and range bounds never match NaN rows.
		add(&Node{Op: "eq", Column: "a", Value: jStr("NaN")})
	}
	if len(vs) > 0 {
		add(&Node{Op: "eq", Column: "a", Value: vs[0]})
		inVals := append(append([]json.RawMessage{}, vs...), missValue(typ))
		add(&Node{Op: "in", Column: "a", Values: inVals})
		lo, hi := vs[0], vs[len(vs)-1]
		if rawLess(typ, hi, lo) {
			lo, hi = hi, lo
		}
		add(&Node{Op: "range", Column: "a", Lo: lo, Hi: hi})
		if typ != btrblocks.TypeString {
			// Open-ended range (no upper bound).
			add(&Node{Op: "range", Column: "a", Lo: lo})
		}
		if len(bs) > 0 {
			bLo, bHi := bs[0], bs[len(bs)-1]
			if rawLess(btrblocks.TypeInt, bHi, bLo) {
				bLo, bHi = bHi, bLo
			}
			add(&Node{Op: "and", Children: []*Node{
				{Op: "range", Column: "a", Lo: lo, Hi: hi},
				{Op: "range", Column: "b", Lo: bLo, Hi: bHi},
			}})
			add(&Node{Op: "or", Children: []*Node{
				{Op: "eq", Column: "a", Value: vs[0]},
				{Op: "eq", Column: "b", Value: bs[0]},
			}})
			add(&Node{Op: "and", Children: []*Node{
				{Op: "notnull", Column: "b"},
				{Op: "in", Column: "a", Values: inVals},
			}})
		}
	}
	// Aggregates over a filtered selection, plus a filter-free fold.
	aggs := []AggSpec{{Op: "count", Column: "a"}, {Op: "min", Column: "a"}, {Op: "max", Column: "a"}}
	if typ != btrblocks.TypeString {
		aggs = append(aggs, AggSpec{Op: "sum", Column: "a"})
	}
	if len(vs) > 0 {
		lo, hi := vs[0], vs[len(vs)-1]
		if rawLess(typ, hi, lo) {
			lo, hi = hi, lo
		}
		plans = append(plans, &Plan{
			Filter:     &Node{Op: "range", Column: "a", Lo: lo, Hi: hi},
			Aggregates: aggs,
			Return:     ReturnBitmap,
		})
	}
	plans = append(plans, &Plan{Aggregates: aggs, Return: ReturnBitmap})
	return plans
}

// checkPlan round-trips the plan through JSON (the same decoder the
// HTTP endpoint uses), executes it, and asserts selection and aggregates
// against the reference.
func checkPlan(t *testing.T, e *Executor, plan *Plan, refCols map[string]*refCol, rows, blockSize int, label string) {
	t.Helper()
	raw, err := json.Marshal(plan)
	if err != nil {
		t.Fatalf("%s: marshal plan: %v", label, err)
	}
	parsed, err := ParsePlan(raw)
	if err != nil {
		t.Fatalf("%s: ParsePlan(%s): %v", label, raw, err)
	}
	res, err := e.Run(t.Context(), parsed)
	if err != nil {
		t.Fatalf("%s: run %s: %v", label, raw, err)
	}

	var want *roaring.Bitmap
	if plan.Filter != nil {
		want = refEval(t, plan.Filter, refCols, rows)
	} else {
		want = roaring.New()
		want.AddRange(0, uint32(rows))
	}
	if res.Rows != rows {
		t.Fatalf("%s: rows = %d, want %d (plan %s)", label, res.Rows, rows, raw)
	}
	if res.Matched != int64(want.Cardinality()) {
		t.Fatalf("%s: matched = %d, want %d (plan %s)", label, res.Matched, want.Cardinality(), raw)
	}
	got, used, err := roaring.FromBytes(res.Bitmap)
	if err != nil || used != len(res.Bitmap) {
		t.Fatalf("%s: bad result bitmap: %v", label, err)
	}
	if !got.Equals(want) {
		t.Fatalf("%s: selection mismatch for plan %s: got %d rows, want %d",
			label, raw, got.Cardinality(), want.Cardinality())
	}
	if plan.Rows {
		ids := want.ToArray()
		if len(ids) > DefaultRowLimit {
			ids = ids[:DefaultRowLimit]
		}
		if len(res.RowIDs) != len(ids) {
			t.Fatalf("%s: row ids length %d, want %d", label, len(res.RowIDs), len(ids))
		}
		for i := range ids {
			if res.RowIDs[i] != ids[i] {
				t.Fatalf("%s: row id[%d] = %d, want %d", label, i, res.RowIDs[i], ids[i])
			}
		}
	}
	if len(plan.Aggregates) > 0 {
		var sel *roaring.Bitmap
		if plan.Filter != nil {
			sel = want
		}
		for i, spec := range plan.Aggregates {
			rc := refCols[spec.Column]
			refAgg := refAggregate(rc, sel, blockSize)
			wantRes := renderAgg(spec, rc.typ, refAgg, refAgg.Count)
			if res.Aggregates[i] != wantRes {
				t.Fatalf("%s: aggregate %s(%s) = %+v, want %+v (plan %s)",
					label, spec.Op, spec.Column, res.Aggregates[i], wantRes, raw)
			}
		}
	}
}

// TestOracleSweep is the main differential property: every generated
// shape × plan × worker count agrees exactly with the reference.
func TestOracleSweep(t *testing.T) {
	const blockSize = 1000
	types := []btrblocks.Type{btrblocks.TypeInt, btrblocks.TypeInt64, btrblocks.TypeDouble, btrblocks.TypeString}
	workers := []int{1, runtime.GOMAXPROCS(0)}
	for _, typ := range types {
		for si, spec := range testgen.Specs() {
			label := fmt.Sprintf("%v/%s", typ, spec.Label())
			rng := rand.New(rand.NewSource(int64(7700 + 100*int(typ) + si)))
			colA, rcA := genRefCol(rng, typ, spec, "a")
			bSpec := testgen.Spec{Rows: spec.Rows, NullDensity: 0.15, RunLen: 8, Cardinality: 50}
			colB, rcB := genRefCol(rng, btrblocks.TypeInt, bSpec, "b")
			copt := &btrblocks.Options{BlockSize: blockSize}
			src := MemSource{
				"a": buildQueryCol(t, colA, copt),
				"b": buildQueryCol(t, colB, copt),
			}
			refCols := map[string]*refCol{"a": rcA, "b": rcB}
			for _, w := range workers {
				e := &Executor{Source: src, Options: &btrblocks.Options{BlockSize: blockSize, Parallelism: w}}
				for _, plan := range oraclePlans(rcA, rcB) {
					checkPlan(t, e, plan, refCols, spec.Rows, blockSize, fmt.Sprintf("%s/w%d", label, w))
				}
			}
		}
	}
}

// TestOracleRestrictedSchemes pins each compressed-domain path: the
// column is compressed under a restricted scheme pool shaped so the
// picker chooses that scheme, and the test FAILS unless the matching
// fast-path counter fired — silently decoding everything would pass the
// differential check but not this one.
func TestOracleRestrictedSchemes(t *testing.T) {
	const rows = 3000
	const blockSize = 1000
	rng := rand.New(rand.NewSource(4242))

	constant := make([]int32, rows)
	for i := range constant {
		constant[i] = 42
	}
	runsVals := make([]int32, rows)
	for i := 0; i < rows; {
		v := int32(rng.Intn(5)) * 100
		l := 1 + rng.Intn(80)
		for j := 0; j < l && i < rows; j++ {
			runsVals[i] = v
			i++
		}
	}
	dictVals := make([]int32, rows)
	for i := range dictVals {
		dictVals[i] = int32(rng.Intn(50)) * 7
	}
	skewVals := make([]int32, rows)
	for i := range skewVals {
		if rng.Intn(100) < 92 {
			skewVals[i] = 7
		} else {
			skewVals[i] = int32(1000 + rng.Intn(100000))
		}
	}
	wideVals := make([]int32, rows)
	for i := range wideVals {
		wideVals[i] = int32(rng.Intn(1 << 20))
	}
	strVals := make([]string, rows)
	for i := range strVals {
		strVals[i] = fmt.Sprintf("node-%02d", rng.Intn(20))
	}

	cases := []struct {
		name  string
		col   btrblocks.Column
		rc    *refCol
		copt  *btrblocks.Options
		leaf  *Node
		fired func(Stats) int64
		// aggFast: this scheme has a compressed-domain aggregate fold
		// (OneValue/RLE/Dict/Frequency do; FOR/bitpack decodes by design).
		aggFast bool
	}{
		{
			name:    "onevalue",
			aggFast: true,
			col:     btrblocks.IntColumn("a", constant),
			rc:      &refCol{typ: btrblocks.TypeInt, ints: constant, null: map[int]bool{}, rows: rows},
			copt:    &btrblocks.Options{BlockSize: blockSize, IntSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeUncompressed}},
			leaf:    &Node{Op: "eq", Column: "a", Value: jNum(int32(42))},
			fired:   func(s Stats) int64 { return s.Paths.OneValue },
		},
		{
			name:    "rle",
			aggFast: true,
			col:     btrblocks.IntColumn("a", runsVals),
			rc:      &refCol{typ: btrblocks.TypeInt, ints: runsVals, null: map[int]bool{}, rows: rows},
			copt:    &btrblocks.Options{BlockSize: blockSize, IntSchemes: []btrblocks.Scheme{btrblocks.SchemeRLE, btrblocks.SchemeUncompressed}},
			leaf:    &Node{Op: "range", Column: "a", Lo: jNum(int32(100)), Hi: jNum(int32(300))},
			fired:   func(s Stats) int64 { return s.Paths.RLE },
		},
		{
			name:    "dict",
			aggFast: true,
			col:     btrblocks.IntColumn("a", dictVals),
			rc:      &refCol{typ: btrblocks.TypeInt, ints: dictVals, null: map[int]bool{}, rows: rows},
			copt:    &btrblocks.Options{BlockSize: blockSize, IntSchemes: []btrblocks.Scheme{btrblocks.SchemeDict, btrblocks.SchemeFastBP, btrblocks.SchemeUncompressed}},
			leaf:    &Node{Op: "in", Column: "a", Values: []json.RawMessage{jNum(int32(7)), jNum(int32(14)), jNum(int32(343))}},
			fired:   func(s Stats) int64 { return s.Paths.Dict },
		},
		{
			name:    "frequency",
			aggFast: true,
			col:     btrblocks.IntColumn("a", skewVals),
			rc:      &refCol{typ: btrblocks.TypeInt, ints: skewVals, null: map[int]bool{}, rows: rows},
			copt:    &btrblocks.Options{BlockSize: blockSize, IntSchemes: []btrblocks.Scheme{btrblocks.SchemeFrequency, btrblocks.SchemeUncompressed}},
			leaf:    &Node{Op: "eq", Column: "a", Value: jNum(int32(7))},
			fired:   func(s Stats) int64 { return s.Paths.Frequency },
		},
		{
			name:  "fastbp",
			col:   btrblocks.IntColumn("a", wideVals),
			rc:    &refCol{typ: btrblocks.TypeInt, ints: wideVals, null: map[int]bool{}, rows: rows},
			copt:  &btrblocks.Options{BlockSize: blockSize, IntSchemes: []btrblocks.Scheme{btrblocks.SchemeFastBP, btrblocks.SchemeUncompressed}},
			leaf:  &Node{Op: "range", Column: "a", Lo: jNum(int32(0)), Hi: jNum(int32(5000))},
			fired: func(s Stats) int64 { return s.Paths.FORScanned + s.Paths.FORSkipped },
		},
		{
			name:    "string-dict",
			aggFast: true,
			col:     btrblocks.StringColumn("a", strVals),
			rc:      &refCol{typ: btrblocks.TypeString, str: strVals, null: map[int]bool{}, rows: rows},
			copt:    &btrblocks.Options{BlockSize: blockSize, StringSchemes: []btrblocks.Scheme{btrblocks.SchemeDict, btrblocks.SchemeUncompressed}},
			leaf:    &Node{Op: "eq", Column: "a", Value: jStr("node-07")},
			fired:   func(s Stats) int64 { return s.Paths.Dict },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := MemSource{"a": buildQueryCol(t, tc.col, tc.copt)}
			// Query without metadata pruning so every block reaches the
			// kernel — the fired-path assertion must not be satisfied (or
			// dodged) by pruning.
			src["a"].Meta = nil
			e := &Executor{Source: src, Options: &btrblocks.Options{BlockSize: blockSize}}
			plan := &Plan{Filter: tc.leaf, Return: ReturnBitmap}
			raw, _ := json.Marshal(plan)
			parsed, err := ParsePlan(raw)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := e.Run(t.Context(), parsed)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			want := refEval(t, tc.leaf, map[string]*refCol{"a": tc.rc}, rows)
			got, _, err := roaring.FromBytes(res.Bitmap)
			if err != nil {
				t.Fatalf("bitmap: %v", err)
			}
			if !got.Equals(want) {
				t.Fatalf("selection mismatch: got %d want %d", got.Cardinality(), want.Cardinality())
			}
			if n := tc.fired(res.Stats); n == 0 {
				t.Fatalf("restricted scheme %s: compressed-domain path never fired (stats %+v)", tc.name, res.Stats.Paths)
			}
			// The filter-free aggregate over the same NULL-free column must
			// take the compressed-domain fold.
			aggPlan := &Plan{Aggregates: []AggSpec{{Op: "sum", Column: "a"}, {Op: "min", Column: "a"}, {Op: "max", Column: "a"}}}
			if tc.rc.typ == btrblocks.TypeString {
				aggPlan.Aggregates = aggPlan.Aggregates[1:]
			}
			ares, err := e.Run(t.Context(), aggPlan)
			if err != nil {
				t.Fatalf("agg run: %v", err)
			}
			refAgg := refAggregate(tc.rc, nil, blockSize)
			for i, spec := range aggPlan.Aggregates {
				wantRes := renderAgg(spec, tc.rc.typ, refAgg, refAgg.Count)
				if ares.Aggregates[i] != wantRes {
					t.Fatalf("agg %s: got %+v want %+v", spec.Op, ares.Aggregates[i], wantRes)
				}
			}
			if tc.aggFast && tc.rc.typ != btrblocks.TypeString && ares.Stats.Paths.AggFast == 0 {
				t.Fatalf("aggregate fast path never fired (stats %+v)", ares.Stats.Paths)
			}
			if !tc.aggFast && ares.Stats.Paths.AggDecoded == 0 {
				t.Fatalf("expected decode-fold fallback to fire (stats %+v)", ares.Stats.Paths)
			}
		})
	}
}

// TestOraclePruning pins the headline pruning claim: a range predicate
// over sorted timestamp data skips more than half the blocks via
// metadata bounds alone, with the result still exact.
func TestOraclePruning(t *testing.T) {
	const rows = 20_000
	const blockSize = 1000
	vals := make([]int64, rows)
	base := int64(1_600_000_000_000)
	for i := range vals {
		vals[i] = base + int64(i)*250 // sorted: 4 blocks per million ticks
	}
	col := btrblocks.Int64Column("ts", vals)
	copt := &btrblocks.Options{BlockSize: blockSize}
	src := MemSource{"ts": buildQueryCol(t, col, copt)}
	rc := &refCol{typ: btrblocks.TypeInt64, i64: vals, null: map[int]bool{}, rows: rows}
	e := &Executor{Source: src, Options: copt}

	lo, hi := vals[6200], vals[7800] // a window inside blocks 6..7
	leaf := &Node{Op: "range", Column: "ts", Lo: jNum(lo), Hi: jNum(hi)}
	plan := &Plan{Filter: leaf, Return: ReturnBitmap}
	res, err := e.Run(t.Context(), plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := refEval(t, leaf, map[string]*refCol{"ts": rc}, rows)
	got, _, err := roaring.FromBytes(res.Bitmap)
	if err != nil {
		t.Fatalf("bitmap: %v", err)
	}
	if !got.Equals(want) {
		t.Fatalf("selection mismatch: got %d want %d", got.Cardinality(), want.Cardinality())
	}
	if res.Stats.BlocksPruned*2 <= res.Stats.BlocksTotal {
		t.Fatalf("expected >50%% of blocks pruned on sorted data: pruned %d of %d",
			res.Stats.BlocksPruned, res.Stats.BlocksTotal)
	}
	// Sanity: the pruning stat is consistent.
	if res.Stats.BlocksPruned+res.Stats.BlocksScanned != res.Stats.BlocksTotal {
		t.Fatalf("stats don't add up: %+v", res.Stats)
	}
}

// TestSelectionFlowRestriction pins the AND selection-flow optimization:
// when the first conjunct matches a narrow sorted range, the second
// conjunct's scan is restricted to the blocks holding surviving rows.
func TestSelectionFlowRestriction(t *testing.T) {
	const rows = 10_000
	const blockSize = 1000
	sorted := make([]int32, rows)
	noise := make([]int32, rows)
	rng := rand.New(rand.NewSource(99))
	for i := range sorted {
		sorted[i] = int32(i)
		noise[i] = int32(rng.Intn(1000))
	}
	copt := &btrblocks.Options{BlockSize: blockSize}
	src := MemSource{
		"sorted": buildQueryCol(t, btrblocks.IntColumn("sorted", sorted), copt),
		"noise":  buildQueryCol(t, btrblocks.IntColumn("noise", noise), copt),
	}
	// Strip the noise column's metadata: any pruning it gets must come
	// from the flowed-in selection, not its own (useless) bounds.
	src["noise"].Meta = nil
	e := &Executor{Source: src, Options: copt}
	filter := &Node{Op: "and", Children: []*Node{
		{Op: "range", Column: "sorted", Lo: jNum(int32(2100)), Hi: jNum(int32(2900))},
		{Op: "range", Column: "noise", Lo: jNum(int32(0)), Hi: jNum(int32(500))},
	}}
	res, err := e.Run(t.Context(), &Plan{Filter: filter, Return: ReturnBitmap})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	refCols := map[string]*refCol{
		"sorted": {typ: btrblocks.TypeInt, ints: sorted, null: map[int]bool{}, rows: rows},
		"noise":  {typ: btrblocks.TypeInt, ints: noise, null: map[int]bool{}, rows: rows},
	}
	want := refEval(t, filter, refCols, rows)
	got, _, err := roaring.FromBytes(res.Bitmap)
	if err != nil {
		t.Fatalf("bitmap: %v", err)
	}
	if !got.Equals(want) {
		t.Fatalf("selection mismatch: got %d want %d", got.Cardinality(), want.Cardinality())
	}
	// sorted leaf: 10 blocks total, meta prunes to 1 (rows 2100..2900 live
	// in block 2). noise leaf: restriction limits it to that same block.
	// Totals: 20 blocks considered, 2 scanned.
	if res.Stats.BlocksScanned > 2 {
		t.Fatalf("selection flow failed to restrict: scanned %d blocks (stats %+v)",
			res.Stats.BlocksScanned, res.Stats)
	}
}

var _ = strconv.Itoa // keep strconv for quick debugging edits
