// Package query implements the multi-column query layer over compressed
// BtrBlocks columns: a JSON plan format (a filter tree of eq/range/in/
// notnull leaves under and/or nodes, plus count/sum/min/max aggregates),
// metadata-driven block pruning, and an executor that evaluates leaves
// in the compressed domain via btrblocks.Select and flows roaring
// selection vectors between predicates. The HTTP surfaces (btrserved
// /v1/query, btrrouted's scatter) parse plans here so every entry point
// shares one validator: a plan that parses and validates is safe to
// execute — bad plans fail with ErrPlan (mapped to HTTP 400), never a
// panic or a 500.
package query

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
)

// ErrPlan marks a malformed or unexecutable plan: syntax errors, unknown
// ops, type-mismatched literals, empty IN lists, unknown columns. The
// HTTP layer maps it to 400 Bad Request.
var ErrPlan = errors.New("query: bad plan")

// IsPlanError reports whether err is a client-side plan problem.
func IsPlanError(err error) bool { return errors.Is(err, ErrPlan) }

func planErrf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrPlan}, args...)...)
}

// Plan limits: they bound the work a hostile plan can demand before any
// column bytes are touched.
const (
	// MaxPlanBytes bounds the JSON plan body.
	MaxPlanBytes = 1 << 20
	// maxFilterDepth bounds and/or nesting.
	maxFilterDepth = 16
	// maxFilterNodes bounds the total filter tree size.
	maxFilterNodes = 128
	// maxInValues bounds one IN list.
	maxInValues = 1024
	// maxAggregates bounds the aggregate list.
	maxAggregates = 32
	// DefaultRowLimit caps returned row ids when the plan does not set
	// row_limit.
	DefaultRowLimit = 10_000
	// MaxRowLimit caps row_limit itself.
	MaxRowLimit = 1_000_000
)

// ReturnBitmap is the Plan.Return mode that ships the selection as
// roaring wire bytes (base64 in JSON) instead of row ids — the form the
// router's scatter legs use.
const ReturnBitmap = "bitmap"

// Plan is one query: an optional filter tree, optional aggregates, and
// output controls. The JSON form is the /v1/query request body.
type Plan struct {
	// Filter selects rows; nil selects every row.
	Filter *Node `json:"filter,omitempty"`
	// Aggregates are folded over the selected (non-NULL) rows.
	Aggregates []AggSpec `json:"aggregates,omitempty"`
	// Rows requests the selected row ids (up to RowLimit).
	Rows bool `json:"rows,omitempty"`
	// RowLimit caps returned row ids (default DefaultRowLimit).
	RowLimit int `json:"row_limit,omitempty"`
	// Return selects an extra output encoding: "" or ReturnBitmap.
	Return string `json:"return,omitempty"`
	// Selection, when set, is a base selection (roaring wire bytes) the
	// result is intersected with — how a router ships a previously merged
	// selection back down for aggregate legs.
	Selection []byte `json:"selection,omitempty"`
}

// Node is one filter-tree node. Internal nodes ("and", "or") use
// Children; leaves ("eq", "range", "in", "notnull") name a Column and
// carry literals as raw JSON, bound against the column's type at
// execution. Range bounds are inclusive; a missing numeric bound is
// unbounded on that side.
type Node struct {
	Op       string            `json:"op"`
	Children []*Node           `json:"children,omitempty"`
	Column   string            `json:"column,omitempty"`
	Value    json.RawMessage   `json:"value,omitempty"`
	Lo       json.RawMessage   `json:"lo,omitempty"`
	Hi       json.RawMessage   `json:"hi,omitempty"`
	Values   []json.RawMessage `json:"values,omitempty"`
}

// AggSpec is one requested aggregate: count, sum, min, or max over a
// column. Count counts non-NULL selected rows; sum is invalid for string
// columns.
type AggSpec struct {
	Op     string `json:"op"`
	Column string `json:"column"`
}

// ParsePlan decodes and validates a JSON plan. Every failure is an
// ErrPlan — unknown fields, trailing data, and structural problems are
// all client errors.
func ParsePlan(src []byte) (*Plan, error) {
	if len(src) > MaxPlanBytes {
		return nil, planErrf("plan exceeds %d bytes", MaxPlanBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(src))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, planErrf("%v", err)
	}
	if dec.More() {
		return nil, planErrf("trailing data after plan")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate checks the plan's structure (everything that can be checked
// without knowing column types; literals are bound at execution).
func (p *Plan) Validate() error {
	if p.Filter != nil {
		count := 0
		if err := validateNode(p.Filter, 1, &count); err != nil {
			return err
		}
	}
	if len(p.Aggregates) > maxAggregates {
		return planErrf("too many aggregates (%d > %d)", len(p.Aggregates), maxAggregates)
	}
	for i, a := range p.Aggregates {
		switch a.Op {
		case "count", "sum", "min", "max":
		default:
			return planErrf("aggregate %d: unknown op %q", i, a.Op)
		}
		if a.Column == "" {
			return planErrf("aggregate %d: missing column", i)
		}
	}
	if p.RowLimit < 0 {
		return planErrf("row_limit must be >= 0")
	}
	if p.RowLimit > MaxRowLimit {
		return planErrf("row_limit exceeds %d", MaxRowLimit)
	}
	switch p.Return {
	case "", ReturnBitmap:
	default:
		return planErrf("unknown return mode %q", p.Return)
	}
	if len(p.Columns()) == 0 {
		return planErrf("plan references no columns")
	}
	return nil
}

func validateNode(n *Node, depth int, count *int) error {
	if n == nil {
		return planErrf("null filter node")
	}
	if depth > maxFilterDepth {
		return planErrf("filter nested deeper than %d", maxFilterDepth)
	}
	*count++
	if *count > maxFilterNodes {
		return planErrf("filter has more than %d nodes", maxFilterNodes)
	}
	switch n.Op {
	case "and", "or":
		if len(n.Children) == 0 {
			return planErrf("%q needs children", n.Op)
		}
		if n.Column != "" {
			return planErrf("%q takes children, not a column", n.Op)
		}
		for _, c := range n.Children {
			if err := validateNode(c, depth+1, count); err != nil {
				return err
			}
		}
	case "eq":
		if err := needColumn(n); err != nil {
			return err
		}
		if n.Value == nil {
			return planErrf("eq on %q: missing value", n.Column)
		}
	case "range":
		if err := needColumn(n); err != nil {
			return err
		}
		if n.Lo == nil && n.Hi == nil {
			return planErrf("range on %q: needs lo and/or hi", n.Column)
		}
	case "in":
		if err := needColumn(n); err != nil {
			return err
		}
		if len(n.Values) == 0 {
			return planErrf("in on %q: empty value list", n.Column)
		}
		if len(n.Values) > maxInValues {
			return planErrf("in on %q: more than %d values", n.Column, maxInValues)
		}
	case "notnull":
		if err := needColumn(n); err != nil {
			return err
		}
	case "":
		return planErrf("filter node missing op")
	default:
		return planErrf("unknown filter op %q", n.Op)
	}
	return nil
}

func needColumn(n *Node) error {
	if n.Column == "" {
		return planErrf("%q needs a column", n.Op)
	}
	if len(n.Children) != 0 {
		return planErrf("%q takes a column, not children", n.Op)
	}
	return nil
}

// Columns returns every column the plan references, sorted.
func (p *Plan) Columns() []string {
	set := make(map[string]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.Column != "" {
			set[n.Column] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Filter)
	for _, a := range p.Aggregates {
		if a.Column != "" {
			set[a.Column] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sortStrings(out)
	return out
}

// Leaves returns the filter's leaf nodes in tree order (empty when the
// plan has no filter) — the unit the router scatters.
func (p *Plan) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		switch n.Op {
		case "and", "or":
			for _, c := range n.Children {
				walk(c)
			}
		default:
			out = append(out, n)
		}
	}
	walk(p.Filter)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// --- literal parsing (bind-time, typed) ---

// literalPreview bounds a raw literal for error messages.
func literalPreview(raw json.RawMessage) string {
	s := string(raw)
	if len(s) > 40 {
		s = s[:40] + "…"
	}
	return s
}

func parseInt32Lit(raw json.RawMessage, what string) (int32, error) {
	var num json.Number
	if err := json.Unmarshal(raw, &num); err != nil {
		return 0, planErrf("%s: want an integer, got %s", what, literalPreview(raw))
	}
	v, err := strconv.ParseInt(num.String(), 10, 32)
	if err != nil {
		return 0, planErrf("%s: %s is not an int32", what, num.String())
	}
	return int32(v), nil
}

func parseInt64Lit(raw json.RawMessage, what string) (int64, error) {
	var num json.Number
	if err := json.Unmarshal(raw, &num); err != nil {
		return 0, planErrf("%s: want an integer, got %s", what, literalPreview(raw))
	}
	v, err := strconv.ParseInt(num.String(), 10, 64)
	if err != nil {
		return 0, planErrf("%s: %s is not an int64", what, num.String())
	}
	return v, nil
}

// parseDoubleLit accepts a JSON number or a string parsed by
// strconv.ParseFloat — the string form is how NaN and ±Inf travel,
// since JSON itself cannot carry them.
func parseDoubleLit(raw json.RawMessage, what string) (float64, error) {
	var num json.Number
	if err := json.Unmarshal(raw, &num); err == nil {
		v, err := strconv.ParseFloat(num.String(), 64)
		if err != nil {
			return 0, planErrf("%s: %s is not a double", what, num.String())
		}
		return v, nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, planErrf("%s: %q is not a double", what, s)
		}
		return v, nil
	}
	return 0, planErrf("%s: want a double, got %s", what, literalPreview(raw))
}

func parseStringLit(raw json.RawMessage, what string) (string, error) {
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return "", planErrf("%s: want a string, got %s", what, literalPreview(raw))
	}
	return s, nil
}
