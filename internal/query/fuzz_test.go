package query

// Fuzz the plan decoder end to end: any byte string either fails with
// ErrPlan (the HTTP layer's 400) or parses into a plan that executes
// against a real compressed source without panicking. The seed corpus
// under testdata/fuzz/FuzzQueryPlan covers the interesting rejects —
// malformed JSON, unknown ops, type-mismatched literals, empty IN lists
// — plus valid plans so mutation explores both sides of the boundary.

import (
	"encoding/json"
	"sync"
	"testing"

	"btrblocks"
)

var fuzzSrcOnce = sync.OnceValues(func() (MemSource, error) {
	ints := make([]int32, 1500)
	strs := make([]string, 1500)
	for i := range ints {
		ints[i] = int32(i % 97)
		strs[i] = "k-" + string(rune('a'+i%26))
	}
	colI := btrblocks.IntColumn("a", ints)
	colI.Nulls = btrblocks.NewNullMask()
	colI.Nulls.SetNull(13)
	colS := btrblocks.StringColumn("s", strs)
	copt := &btrblocks.Options{BlockSize: 500}
	src := MemSource{}
	for _, col := range []btrblocks.Column{colI, colS} {
		data, err := btrblocks.CompressColumn(col, copt)
		if err != nil {
			return nil, err
		}
		ix, err := btrblocks.ParseColumnIndex(data)
		if err != nil {
			return nil, err
		}
		src[col.Name] = &Col{Index: ix, Data: data}
	}
	return src, nil
})

func FuzzQueryPlan(f *testing.F) {
	seeds := []string{
		// Valid plans.
		`{"filter":{"op":"eq","column":"a","value":7},"rows":true}`,
		`{"filter":{"op":"range","column":"a","lo":5,"hi":50},"return":"bitmap"}`,
		`{"filter":{"op":"in","column":"a","values":[1,2,3]},"aggregates":[{"op":"sum","column":"a"}]}`,
		`{"filter":{"op":"and","children":[{"op":"notnull","column":"a"},{"op":"eq","column":"s","value":"k-c"}]}}`,
		`{"filter":{"op":"or","children":[{"op":"eq","column":"a","value":1},{"op":"eq","column":"a","value":2}]},"row_limit":5,"rows":true}`,
		`{"aggregates":[{"op":"count","column":"a"},{"op":"min","column":"s"},{"op":"max","column":"s"}]}`,
		// Malformed JSON.
		`{`,
		`{"filter":`,
		`not json at all`,
		`{"filter":{"op":"eq","column":"a","value":7}}trailing`,
		// Unknown ops and fields.
		`{"filter":{"op":"xor","children":[]}}`,
		`{"filter":{"op":"eq","column":"a","value":1},"surprise":true}`,
		`{"filter":{"op":""}}`,
		// Type-mismatched literals.
		`{"filter":{"op":"eq","column":"a","value":"not-an-int"}}`,
		`{"filter":{"op":"eq","column":"a","value":3.5}}`,
		`{"filter":{"op":"eq","column":"a","value":99999999999999999999}}`,
		`{"filter":{"op":"eq","column":"s","value":12}}`,
		`{"filter":{"op":"range","column":"s","lo":"a"}}`,
		// Empty IN list, missing pieces, unknown columns.
		`{"filter":{"op":"in","column":"a","values":[]}}`,
		`{"filter":{"op":"range","column":"a"}}`,
		`{"filter":{"op":"eq","column":"nope","value":1}}`,
		`{"filter":{"op":"and","children":[]}}`,
		`{"rows":true}`,
		`{"filter":{"op":"eq","column":"a","value":1},"return":"csv"}`,
		`{"filter":{"op":"eq","column":"a","value":1},"row_limit":-4}`,
		`{"filter":{"op":"eq","column":"a","value":1},"selection":"bm9 invalid"}`,
		// Sum over a string column binds at execution, not validation.
		`{"aggregates":[{"op":"sum","column":"s"}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			if !IsPlanError(err) {
				t.Fatalf("ParsePlan error is not ErrPlan: %v", err)
			}
			return
		}
		src, serr := fuzzSrcOnce()
		if serr != nil {
			t.Fatalf("build fuzz source: %v", serr)
		}
		e := &Executor{Source: src, Options: &btrblocks.Options{BlockSize: 500}}
		res, err := e.Run(t.Context(), p)
		if err != nil {
			if !IsPlanError(err) {
				t.Fatalf("Run error is not ErrPlan: %v (plan %s)", err, data)
			}
			return
		}
		// A successful result must serialize — it becomes the 200 body.
		if _, err := json.Marshal(res); err != nil {
			t.Fatalf("result does not marshal: %v", err)
		}
	})
}
