package query

// NULL-semantics matrix: for every scheme family, value predicates
// (eq/range/in) never match NULL slots — even though the compressor is
// free to rewrite the stored value at a NULL position — NotNull composes
// under and/or, and aggregates over all-NULL data return the documented
// zero values (Count 0, empty Value for sum/min/max).

import (
	"encoding/json"
	"fmt"
	"testing"

	"btrblocks"
	"btrblocks/internal/roaring"
)

// nullCase builds one column per scheme family: rows%3==0 are NULL (the
// stored value at those slots is a decoy that WOULD match the probe if
// NULL masking leaked), the rest alternate between a matching and a
// non-matching value shaped to keep the target scheme attractive.
type nullCase struct {
	name  string
	col   btrblocks.Column
	copt  *btrblocks.Options
	typ   btrblocks.Type
	probe json.RawMessage // literal equal to the decoy AND to the even non-NULL rows
	lo    json.RawMessage // range bounds covering every stored value
	hi    json.RawMessage
}

func intNullCase(name string, scheme btrblocks.Scheme, matchV, otherV int32) nullCase {
	const rows = 2400
	vals := make([]int32, rows)
	col := btrblocks.IntColumn("a", vals)
	col.Nulls = btrblocks.NewNullMask()
	for i := range vals {
		if i%3 == 0 {
			vals[i] = matchV // decoy under a NULL
			col.Nulls.SetNull(i)
		} else if i%2 == 0 {
			vals[i] = matchV
		} else {
			vals[i] = otherV
		}
	}
	lo, hi := matchV, otherV
	if lo > hi {
		lo, hi = hi, lo
	}
	return nullCase{
		name:  name,
		col:   col,
		copt:  &btrblocks.Options{BlockSize: 500, IntSchemes: []btrblocks.Scheme{scheme, btrblocks.SchemeFastBP, btrblocks.SchemeUncompressed}},
		typ:   btrblocks.TypeInt,
		probe: jNum(matchV),
		lo:    jNum(lo),
		hi:    jNum(hi),
	}
}

func nullCases() []nullCase {
	cases := []nullCase{
		intNullCase("int-onevalue", btrblocks.SchemeOneValue, 42, 42),
		intNullCase("int-rle", btrblocks.SchemeRLE, 100, 100), // runs of one value + NULL holes
		intNullCase("int-dict", btrblocks.SchemeDict, 7, 9000),
		intNullCase("int-frequency", btrblocks.SchemeFrequency, 7, 123456),
		intNullCase("int-fastbp", btrblocks.SchemeFastBP, 1000, 500000),
	}

	const rows = 2400
	i64 := make([]int64, rows)
	colI64 := btrblocks.Int64Column("a", i64)
	colI64.Nulls = btrblocks.NewNullMask()
	for i := range i64 {
		i64[i] = 1_600_000_000_000 + int64(i%2)*5000
		if i%3 == 0 {
			colI64.Nulls.SetNull(i)
		}
	}
	cases = append(cases, nullCase{
		name:  "int64-default",
		col:   colI64,
		copt:  &btrblocks.Options{BlockSize: 500},
		typ:   btrblocks.TypeInt64,
		probe: jNum(int64(1_600_000_000_000)),
		lo:    jNum(int64(1_600_000_000_000)),
		hi:    jNum(int64(1_600_000_000_005_000)),
	})

	dbl := make([]float64, rows)
	colD := btrblocks.DoubleColumn("a", dbl)
	colD.Nulls = btrblocks.NewNullMask()
	for i := range dbl {
		dbl[i] = 19.99
		if i%2 == 1 {
			dbl[i] = 4.25
		}
		if i%3 == 0 {
			colD.Nulls.SetNull(i)
		}
	}
	cases = append(cases, nullCase{
		name:  "double-default",
		col:   colD,
		copt:  &btrblocks.Options{BlockSize: 500},
		typ:   btrblocks.TypeDouble,
		probe: jNum(19.99),
		lo:    jNum(0.0),
		hi:    jNum(100.0),
	})

	strs := make([]string, rows)
	colS := btrblocks.StringColumn("a", strs)
	colS.Nulls = btrblocks.NewNullMask()
	for i := range strs {
		strs[i] = "us-east-1"
		if i%2 == 1 {
			strs[i] = "eu-west-2"
		}
		if i%3 == 0 {
			colS.Nulls.SetNull(i)
		}
	}
	cases = append(cases, nullCase{
		name:  "string-default",
		col:   colS,
		copt:  &btrblocks.Options{BlockSize: 500},
		typ:   btrblocks.TypeString,
		probe: jStr("us-east-1"),
		lo:    jStr("a"),
		hi:    jStr("zz"),
	})
	return cases
}

func runNullPlan(t *testing.T, e *Executor, filter *Node) *roaring.Bitmap {
	t.Helper()
	raw, err := json.Marshal(&Plan{Filter: filter, Return: ReturnBitmap})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	p, err := ParsePlan(raw)
	if err != nil {
		t.Fatalf("parse %s: %v", raw, err)
	}
	res, err := e.Run(t.Context(), p)
	if err != nil {
		t.Fatalf("run %s: %v", raw, err)
	}
	bm, used, err := roaring.FromBytes(res.Bitmap)
	if err != nil || used != len(res.Bitmap) {
		t.Fatalf("bitmap: %v", err)
	}
	return bm
}

func TestNullSemanticsMatrix(t *testing.T) {
	for _, tc := range nullCases() {
		t.Run(tc.name, func(t *testing.T) {
			src := MemSource{"a": buildQueryCol(t, tc.col, tc.copt)}
			e := &Executor{Source: src, Options: tc.copt}

			total := caseRows(tc.col)
			wantNotNull := roaring.New()
			for i := 0; i < total; i++ {
				if !tc.col.Nulls.IsNull(i) {
					wantNotNull.Add(uint32(i))
				}
			}

			// NotNull selects exactly the non-NULL rows.
			gotNotNull := runNullPlan(t, e, &Node{Op: "notnull", Column: "a"})
			if !gotNotNull.Equals(wantNotNull) {
				t.Fatalf("notnull: got %d rows, want %d", gotNotNull.Cardinality(), wantNotNull.Cardinality())
			}

			// Value predicates never select a NULL slot, even when the slot's
			// stored decoy value matches the probe.
			for _, filter := range []*Node{
				{Op: "eq", Column: "a", Value: tc.probe},
				{Op: "range", Column: "a", Lo: tc.lo, Hi: tc.hi},
				{Op: "in", Column: "a", Values: []json.RawMessage{tc.probe}},
			} {
				got := runNullPlan(t, e, filter)
				leaked := roaring.AndNot(got, wantNotNull)
				if !leaked.IsEmpty() {
					t.Fatalf("%s predicate matched %d NULL slots (first: %v)",
						filter.Op, leaked.Cardinality(), leaked.ToArray()[:1])
				}
				// And composes: pred AND notnull == pred (notnull is implied).
				composed := runNullPlan(t, e, &Node{Op: "and", Children: []*Node{
					filter, {Op: "notnull", Column: "a"},
				}})
				if !composed.Equals(got) {
					t.Fatalf("%s AND notnull != %s: %d vs %d rows",
						filter.Op, filter.Op, composed.Cardinality(), got.Cardinality())
				}
			}
		})
	}
}

func caseRows(c btrblocks.Column) int {
	switch c.Type {
	case btrblocks.TypeInt:
		return len(c.Ints)
	case btrblocks.TypeInt64:
		return len(c.Ints64)
	case btrblocks.TypeDouble:
		return len(c.Doubles)
	default:
		return c.Strings.Len()
	}
}

// TestAggregatesAllNull pins the documented zero values: aggregates over
// a column whose every row is NULL return Count 0 and an empty Value for
// sum/min/max, for every type.
func TestAggregatesAllNull(t *testing.T) {
	const rows = 1200
	build := func(typ btrblocks.Type) btrblocks.Column {
		var col btrblocks.Column
		switch typ {
		case btrblocks.TypeInt:
			col = btrblocks.IntColumn("a", make([]int32, rows))
		case btrblocks.TypeInt64:
			col = btrblocks.Int64Column("a", make([]int64, rows))
		case btrblocks.TypeDouble:
			col = btrblocks.DoubleColumn("a", make([]float64, rows))
		default:
			col = btrblocks.StringColumn("a", make([]string, rows))
		}
		col.Nulls = btrblocks.NewNullMask()
		for i := 0; i < rows; i++ {
			col.Nulls.SetNull(i)
		}
		return col
	}
	for _, typ := range []btrblocks.Type{btrblocks.TypeInt, btrblocks.TypeInt64, btrblocks.TypeDouble, btrblocks.TypeString} {
		t.Run(fmt.Sprint(typ), func(t *testing.T) {
			copt := &btrblocks.Options{BlockSize: 500}
			src := MemSource{"a": buildQueryCol(t, build(typ), copt)}
			e := &Executor{Source: src, Options: copt}
			aggs := []AggSpec{{Op: "count", Column: "a"}, {Op: "min", Column: "a"}, {Op: "max", Column: "a"}}
			if typ != btrblocks.TypeString {
				aggs = append(aggs, AggSpec{Op: "sum", Column: "a"})
			}
			raw, _ := json.Marshal(&Plan{Aggregates: aggs})
			p, err := ParsePlan(raw)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := e.Run(t.Context(), p)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for i, spec := range aggs {
				got := res.Aggregates[i]
				if got.Count != 0 {
					t.Fatalf("%s over all-NULL: count = %d, want 0", spec.Op, got.Count)
				}
				wantValue := ""
				if spec.Op == "count" {
					wantValue = "0"
				}
				if got.Value != wantValue {
					t.Fatalf("%s over all-NULL: value = %q, want %q", spec.Op, got.Value, wantValue)
				}
			}
		})
	}
}
