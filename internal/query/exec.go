package query

import (
	"context"
	"math"
	"strconv"

	"btrblocks"
	"btrblocks/internal/obs"
	"btrblocks/internal/roaring"
	"btrblocks/metadata"
)

// Col is one queryable column: its parsed index, the compressed file
// bytes the index was parsed from, and (optionally) the block-statistics
// sidecar used for pruning. A nil Meta just disables pruning — results
// are identical either way.
type Col struct {
	Index *btrblocks.ColumnIndex
	Data  []byte
	Meta  *metadata.ColumnMeta
}

// Source resolves the columns a plan references. An unknown name should
// return an error the caller's HTTP layer knows how to map (ErrPlan for
// 400, a not-found error for 404).
type Source interface {
	Column(name string) (*Col, error)
}

// MemSource is an in-memory Source keyed by column name; unknown names
// are plan errors.
type MemSource map[string]*Col

// Column implements Source.
func (m MemSource) Column(name string) (*Col, error) {
	c := m[name]
	if c == nil {
		return nil, planErrf("unknown column %q", name)
	}
	return c, nil
}

// Executor runs plans against a Source. The zero Options is valid.
type Executor struct {
	Source  Source
	Options *btrblocks.Options
}

// Stats reports the work a query did: how many blocks its predicates
// could have touched, how many were pruned away (metadata bounds plus
// selection-flow restriction) versus scanned, and which compressed-domain
// evaluation paths fired. BlocksTotal counts per predicate — a column
// consulted by two leaves contributes its block count twice.
type Stats struct {
	Predicates    int64                 `json:"predicates"`
	BlocksTotal   int64                 `json:"blocks_total"`
	BlocksPruned  int64                 `json:"blocks_pruned"`
	BlocksScanned int64                 `json:"blocks_scanned"`
	Paths         btrblocks.SelectStats `json:"paths"`
}

// Add merges another stats value (used by the router's gather).
func (s *Stats) Add(o Stats) {
	s.Predicates += o.Predicates
	s.BlocksTotal += o.BlocksTotal
	s.BlocksPruned += o.BlocksPruned
	s.BlocksScanned += o.BlocksScanned
	s.Paths.Add(o.Paths)
}

// AggResult is one folded aggregate. Value is the rendered result —
// decimal for integer columns and counts, strconv 'g' format for doubles
// (NaN and ±Inf travel as strings; JSON cannot carry them as numbers),
// the raw string for string min/max — and empty when Count is 0 and the
// op has no meaningful value (min/max/sum over no rows).
type AggResult struct {
	Op     string `json:"op"`
	Column string `json:"column"`
	Type   string `json:"type"`
	Count  int64  `json:"count"`
	Value  string `json:"value,omitempty"`
}

// Result is a query's answer. Every field JSON-encodes cleanly (doubles
// ride in strings), so a result can always be written as a 200.
type Result struct {
	// Rows is the row count of the queried columns' shared row space.
	Rows int `json:"rows"`
	// Matched is the selection cardinality (Rows when there is no filter
	// and no base selection).
	Matched int64 `json:"matched"`
	// RowIDs lists selected row ids, ascending, up to the row limit;
	// present only when the plan asked for rows.
	RowIDs []uint32 `json:"row_ids,omitempty"`
	// RowsTruncated reports that RowIDs was capped by the row limit.
	RowsTruncated bool `json:"rows_truncated,omitempty"`
	// Bitmap is the selection in roaring wire bytes (return=bitmap).
	Bitmap []byte `json:"bitmap,omitempty"`
	// Aggregates mirror the plan's aggregate list, in order.
	Aggregates []AggResult `json:"aggregates,omitempty"`
	Stats      Stats       `json:"stats"`
}

// Run executes a validated plan. Errors wrapping ErrPlan are client
// errors (bad literals, unknown columns, row-count mismatches); anything
// else is a data problem from the underlying column (corruption,
// truncation) and keeps its identity for the HTTP error mapping.
func (e *Executor) Run(ctx context.Context, p *Plan) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	names := p.Columns()
	cols := make(map[string]*Col, len(names))
	rows := -1
	rowsFrom := ""
	for _, name := range names {
		c, err := e.Source.Column(name)
		if err != nil {
			return nil, err
		}
		if c == nil || c.Index == nil {
			return nil, planErrf("%q is not a column file", name)
		}
		cols[name] = c
		if rows == -1 {
			rows, rowsFrom = c.Index.Rows, name
		} else if c.Index.Rows != rows {
			return nil, planErrf("columns disagree on row count: %q has %d rows, %q has %d",
				rowsFrom, rows, name, c.Index.Rows)
		}
	}
	for _, a := range p.Aggregates {
		if a.Op == "sum" && cols[a.Column].Index.Type == btrblocks.TypeString {
			return nil, planErrf("sum over string column %q", a.Column)
		}
	}

	ctx, span := obs.StartChild(ctx, "query.exec")
	defer span.End()

	var base *btrblocks.Selection
	if len(p.Selection) > 0 {
		s, used, err := btrblocks.SelectionFromBytes(p.Selection)
		if err != nil || used != len(p.Selection) {
			err = planErrf("bad selection bytes")
			span.SetError(err)
			return nil, err
		}
		base = &s
	}

	res := &Result{Rows: rows}
	var sel *btrblocks.Selection
	if p.Filter != nil {
		s, err := e.evalNode(ctx, p.Filter, cols, base, &res.Stats)
		if err != nil {
			span.SetError(err)
			return nil, err
		}
		if base != nil {
			s = s.And(*base)
		}
		sel = &s
	} else if base != nil {
		sel = base
	}
	if sel != nil {
		res.Matched = int64(sel.Cardinality())
	} else {
		res.Matched = int64(rows)
	}
	span.SetAttrInt("matched", res.Matched)

	if len(p.Aggregates) > 0 {
		if err := e.runAggregates(ctx, p, cols, sel, res); err != nil {
			span.SetError(err)
			return nil, err
		}
	}

	if p.Rows {
		limit := p.RowLimit
		if limit == 0 {
			limit = DefaultRowLimit
		}
		if sel != nil {
			res.RowIDs = make([]uint32, 0, min(limit, int(res.Matched)))
			sel.ForEach(func(r uint32) bool {
				if len(res.RowIDs) >= limit {
					return false
				}
				res.RowIDs = append(res.RowIDs, r)
				return true
			})
		} else {
			n := min(limit, rows)
			res.RowIDs = make([]uint32, n)
			for i := range res.RowIDs {
				res.RowIDs[i] = uint32(i)
			}
		}
		res.RowsTruncated = int64(len(res.RowIDs)) < res.Matched
	}

	if p.Return == ReturnBitmap {
		if sel != nil {
			res.Bitmap = sel.AppendTo(nil)
		} else {
			bm := roaring.New()
			bm.AddRange(0, uint32(rows))
			res.Bitmap = bm.AppendTo(nil)
		}
	}
	return res, nil
}

// evalNode evaluates a filter node under an optional restriction: the
// result S satisfies matches∩restrict ⊆ S ⊆ matches, so intersecting at
// the top (or at each AND step) yields exact selections while letting
// leaves skip blocks the restriction already rules out. AND children
// are evaluated left to right with the running intersection as the next
// child's restriction — the "selection vector flows between predicates"
// path — and stop early once the intersection is empty.
func (e *Executor) evalNode(ctx context.Context, n *Node, cols map[string]*Col, restrict *btrblocks.Selection, st *Stats) (btrblocks.Selection, error) {
	switch n.Op {
	case "and":
		ctx, span := obs.StartChild(ctx, "query.and")
		span.SetAttrInt("children", int64(len(n.Children)))
		cur := restrict
		var acc btrblocks.Selection
		for i, child := range n.Children {
			cs, err := e.evalNode(ctx, child, cols, cur, st)
			if err != nil {
				span.SetError(err)
				span.End()
				return btrblocks.Selection{}, err
			}
			if i == 0 {
				acc = cs
			} else {
				acc = acc.And(cs)
			}
			cur = &acc
			if acc.IsEmpty() {
				break
			}
		}
		span.SetAttrInt("matched", int64(acc.Cardinality()))
		span.End()
		return acc, nil
	case "or":
		ctx, span := obs.StartChild(ctx, "query.or")
		span.SetAttrInt("children", int64(len(n.Children)))
		acc := btrblocks.NewSelection()
		for _, child := range n.Children {
			cs, err := e.evalNode(ctx, child, cols, restrict, st)
			if err != nil {
				span.SetError(err)
				span.End()
				return btrblocks.Selection{}, err
			}
			acc = acc.Or(cs)
		}
		span.SetAttrInt("matched", int64(acc.Cardinality()))
		span.End()
		return acc, nil
	default:
		return e.evalLeaf(ctx, n, cols[n.Column], restrict, st)
	}
}

// evalLeaf evaluates one predicate over one column: bind the literals
// against the column type, prune candidate blocks with the metadata
// sidecar and the flowed-in restriction, then evaluate the survivors in
// the compressed domain.
func (e *Executor) evalLeaf(ctx context.Context, n *Node, c *Col, restrict *btrblocks.Selection, st *Stats) (btrblocks.Selection, error) {
	bl, err := bindLeaf(n, c.Index.Type)
	if err != nil {
		return btrblocks.Selection{}, err
	}
	total := len(c.Index.Blocks)
	candidates := allBlockIDs(total)
	if m := usableMeta(c); m != nil && bl.prune != nil {
		candidates = bl.prune(m)
		if candidates == nil {
			candidates = []int{}
		}
	}
	if restrict != nil {
		candidates = intersectSorted(candidates, restrictBlocks(c.Index, restrict))
	}
	ctx, span := obs.StartChild(ctx, "query.pred")
	span.SetAttr("column", n.Column)
	span.SetAttr("op", n.Op)
	span.SetAttrInt("blocks_total", int64(total))
	span.SetAttrInt("blocks_scanned", int64(len(candidates)))
	sel, ps, err := c.Index.SelectBlocksContext(ctx, c.Data, bl.pred, candidates, e.Options)
	span.SetError(err)
	if err == nil {
		span.SetAttrInt("matched", int64(sel.Cardinality()))
	}
	span.End()
	st.Predicates++
	st.BlocksTotal += int64(total)
	st.BlocksScanned += int64(len(candidates))
	st.BlocksPruned += int64(total - len(candidates))
	st.Paths.Add(ps)
	return sel, err
}

// runAggregates folds each referenced column once and renders every
// requested aggregate from the shared fold. Count-only columns are
// answered from block headers and NULL bitmaps alone.
func (e *Executor) runAggregates(ctx context.Context, p *Plan, cols map[string]*Col, sel *btrblocks.Selection, res *Result) error {
	needsValues := make(map[string]bool)
	order := make([]string, 0, len(p.Aggregates))
	for _, a := range p.Aggregates {
		if _, seen := needsValues[a.Column]; !seen {
			order = append(order, a.Column)
		}
		needsValues[a.Column] = needsValues[a.Column] || a.Op != "count"
	}
	folded := make(map[string]btrblocks.Aggregate, len(order))
	counts := make(map[string]int64, len(order))
	for _, col := range order {
		c := cols[col]
		ctx, span := obs.StartChild(ctx, "query.agg")
		span.SetAttr("column", col)
		var err error
		if needsValues[col] {
			var agg btrblocks.Aggregate
			var ps btrblocks.SelectStats
			agg, ps, err = c.Index.AggregateBlocksContext(ctx, c.Data, nil, sel, e.Options)
			res.Stats.Paths.Add(ps)
			folded[col], counts[col] = agg, agg.Count
		} else {
			counts[col], err = c.Index.CountNotNullBlocksContext(ctx, c.Data, nil, sel, e.Options)
		}
		span.SetAttrInt("count", counts[col])
		span.SetError(err)
		span.End()
		if err != nil {
			return err
		}
	}
	res.Aggregates = make([]AggResult, len(p.Aggregates))
	for i, a := range p.Aggregates {
		res.Aggregates[i] = renderAgg(a, cols[a.Column].Index.Type, folded[a.Column], counts[a.Column])
	}
	return nil
}

// renderAgg renders one aggregate result; see AggResult for the Value
// encoding.
func renderAgg(spec AggSpec, typ btrblocks.Type, agg btrblocks.Aggregate, count int64) AggResult {
	out := AggResult{Op: spec.Op, Column: spec.Column, Type: typ.String(), Count: count}
	if spec.Op == "count" {
		out.Value = strconv.FormatInt(count, 10)
		return out
	}
	if count == 0 {
		return out
	}
	formatInt := func(v int64) string { return strconv.FormatInt(v, 10) }
	formatDouble := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	switch spec.Op {
	case "sum":
		switch typ {
		case btrblocks.TypeInt, btrblocks.TypeInt64:
			out.Value = formatInt(agg.IntSum)
		case btrblocks.TypeDouble:
			out.Value = formatDouble(agg.FloatSum)
		}
	case "min":
		switch typ {
		case btrblocks.TypeInt, btrblocks.TypeInt64:
			out.Value = formatInt(agg.IntMin)
		case btrblocks.TypeDouble:
			out.Value = formatDouble(agg.FloatMin)
		case btrblocks.TypeString:
			out.Value = agg.StrMin
		}
	case "max":
		switch typ {
		case btrblocks.TypeInt, btrblocks.TypeInt64:
			out.Value = formatInt(agg.IntMax)
		case btrblocks.TypeDouble:
			out.Value = formatDouble(agg.FloatMax)
		case btrblocks.TypeString:
			out.Value = agg.StrMax
		}
	}
	return out
}

// --- binding ---

// boundLeaf is a leaf bound against its column type: the typed predicate
// plus a pruner deriving candidate blocks from the metadata sidecar (nil
// when the predicate shape has no sound pruning rule — scan everything).
type boundLeaf struct {
	pred  btrblocks.Predicate
	prune func(*metadata.ColumnMeta) []int
}

// bindLeaf parses a leaf's literals against the column type. Pruning is
// conservative: it may keep blocks that contain no match (the kernel
// rejects them), but never drops a block that could — the property the
// metadata soundness tests pin down.
func bindLeaf(n *Node, typ btrblocks.Type) (boundLeaf, error) {
	what := n.Op + " on " + strconv.Quote(n.Column)
	switch n.Op {
	case "notnull":
		return boundLeaf{pred: btrblocks.NotNull(), prune: (*metadata.ColumnMeta).PruneNotNull}, nil
	case "eq":
		switch typ {
		case btrblocks.TypeInt:
			v, err := parseInt32Lit(n.Value, what)
			if err != nil {
				return boundLeaf{}, err
			}
			return boundLeaf{pred: btrblocks.IntEq(v), prune: func(m *metadata.ColumnMeta) []int {
				return m.PruneIntRange(v, v)
			}}, nil
		case btrblocks.TypeInt64:
			v, err := parseInt64Lit(n.Value, what)
			if err != nil {
				return boundLeaf{}, err
			}
			return boundLeaf{pred: btrblocks.Int64Eq(v), prune: func(m *metadata.ColumnMeta) []int {
				return m.PruneInt64Range(v, v)
			}}, nil
		case btrblocks.TypeDouble:
			v, err := parseDoubleLit(n.Value, what)
			if err != nil {
				return boundLeaf{}, err
			}
			bl := boundLeaf{pred: btrblocks.DoubleEq(v)}
			if !math.IsNaN(v) {
				// NaN blocks are widened to (-Inf, +Inf) in the metadata, so a
				// range prune keeps them; a NaN probe itself cannot range-prune.
				bl.prune = func(m *metadata.ColumnMeta) []int { return m.PruneDoubleRange(v, v) }
			}
			return bl, nil
		default:
			v, err := parseStringLit(n.Value, what)
			if err != nil {
				return boundLeaf{}, err
			}
			return boundLeaf{pred: btrblocks.StringEq(v), prune: func(m *metadata.ColumnMeta) []int {
				return m.PruneStringEquals(v)
			}}, nil
		}
	case "range":
		return bindRange(n, typ, what)
	case "in":
		return bindIn(n, typ, what)
	}
	return boundLeaf{}, planErrf("unknown filter op %q", n.Op)
}

func bindRange(n *Node, typ btrblocks.Type, what string) (boundLeaf, error) {
	switch typ {
	case btrblocks.TypeInt:
		lo, hi := int32(math.MinInt32), int32(math.MaxInt32)
		var err error
		if n.Lo != nil {
			if lo, err = parseInt32Lit(n.Lo, what+" lo"); err != nil {
				return boundLeaf{}, err
			}
		}
		if n.Hi != nil {
			if hi, err = parseInt32Lit(n.Hi, what+" hi"); err != nil {
				return boundLeaf{}, err
			}
		}
		return boundLeaf{pred: btrblocks.IntRange(lo, hi), prune: func(m *metadata.ColumnMeta) []int {
			return m.PruneIntRange(lo, hi)
		}}, nil
	case btrblocks.TypeInt64:
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		var err error
		if n.Lo != nil {
			if lo, err = parseInt64Lit(n.Lo, what+" lo"); err != nil {
				return boundLeaf{}, err
			}
		}
		if n.Hi != nil {
			if hi, err = parseInt64Lit(n.Hi, what+" hi"); err != nil {
				return boundLeaf{}, err
			}
		}
		return boundLeaf{pred: btrblocks.Int64Range(lo, hi), prune: func(m *metadata.ColumnMeta) []int {
			return m.PruneInt64Range(lo, hi)
		}}, nil
	case btrblocks.TypeDouble:
		lo, hi := math.Inf(-1), math.Inf(1)
		var err error
		if n.Lo != nil {
			if lo, err = parseDoubleLit(n.Lo, what+" lo"); err != nil {
				return boundLeaf{}, err
			}
		}
		if n.Hi != nil {
			if hi, err = parseDoubleLit(n.Hi, what+" hi"); err != nil {
				return boundLeaf{}, err
			}
		}
		if math.IsNaN(lo) || math.IsNaN(hi) {
			return boundLeaf{}, planErrf("%s: NaN range bound matches nothing", what)
		}
		return boundLeaf{pred: btrblocks.DoubleRange(lo, hi), prune: func(m *metadata.ColumnMeta) []int {
			return m.PruneDoubleRange(lo, hi)
		}}, nil
	default:
		if n.Hi == nil {
			return boundLeaf{}, planErrf("%s: string ranges need hi (no upper-unbounded form)", what)
		}
		lo := ""
		var err error
		if n.Lo != nil {
			if lo, err = parseStringLit(n.Lo, what+" lo"); err != nil {
				return boundLeaf{}, err
			}
		}
		hi, err := parseStringLit(n.Hi, what+" hi")
		if err != nil {
			return boundLeaf{}, err
		}
		// The metadata layer has no string-range rule (bounds are
		// prefix-truncated); string ranges scan every block.
		return boundLeaf{pred: btrblocks.StringRange(lo, hi)}, nil
	}
}

func bindIn(n *Node, typ btrblocks.Type, what string) (boundLeaf, error) {
	switch typ {
	case btrblocks.TypeInt:
		vs := make([]int32, len(n.Values))
		for i, raw := range n.Values {
			v, err := parseInt32Lit(raw, what)
			if err != nil {
				return boundLeaf{}, err
			}
			vs[i] = v
		}
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			lo, hi = min(lo, v), max(hi, v)
		}
		return boundLeaf{pred: btrblocks.IntIn(vs...), prune: func(m *metadata.ColumnMeta) []int {
			return m.PruneIntRange(lo, hi)
		}}, nil
	case btrblocks.TypeInt64:
		vs := make([]int64, len(n.Values))
		for i, raw := range n.Values {
			v, err := parseInt64Lit(raw, what)
			if err != nil {
				return boundLeaf{}, err
			}
			vs[i] = v
		}
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			lo, hi = min(lo, v), max(hi, v)
		}
		return boundLeaf{pred: btrblocks.Int64In(vs...), prune: func(m *metadata.ColumnMeta) []int {
			return m.PruneInt64Range(lo, hi)
		}}, nil
	case btrblocks.TypeDouble:
		vs := make([]float64, len(n.Values))
		hasNaN := false
		for i, raw := range n.Values {
			v, err := parseDoubleLit(raw, what)
			if err != nil {
				return boundLeaf{}, err
			}
			vs[i] = v
			hasNaN = hasNaN || math.IsNaN(v)
		}
		bl := boundLeaf{pred: btrblocks.DoubleIn(vs...)}
		if !hasNaN {
			lo, hi := vs[0], vs[0]
			for _, v := range vs {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			bl.prune = func(m *metadata.ColumnMeta) []int { return m.PruneDoubleRange(lo, hi) }
		}
		return bl, nil
	default:
		vs := make([]string, len(n.Values))
		for i, raw := range n.Values {
			v, err := parseStringLit(raw, what)
			if err != nil {
				return boundLeaf{}, err
			}
			vs[i] = v
		}
		return boundLeaf{pred: btrblocks.StringIn(vs...), prune: func(m *metadata.ColumnMeta) []int {
			var out []int
			for _, v := range vs {
				out = unionSorted(out, m.PruneStringEquals(v))
			}
			if out == nil {
				out = []int{}
			}
			return out
		}}, nil
	}
}

// --- block-list helpers ---

// usableMeta returns the column's metadata sidecar only when it agrees
// with the index's block layout — a stale sidecar silently disables
// pruning instead of corrupting results.
func usableMeta(c *Col) *metadata.ColumnMeta {
	m := c.Meta
	if m == nil || m.Type != c.Index.Type || len(m.Blocks) != len(c.Index.Blocks) {
		return nil
	}
	for i, b := range m.Blocks {
		if b.Rows != c.Index.Blocks[i].Rows {
			return nil
		}
	}
	return m
}

func allBlockIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// restrictBlocks lists the blocks holding at least one selected row, in
// one ordered pass over the selection.
func restrictBlocks(ix *btrblocks.ColumnIndex, r *btrblocks.Selection) []int {
	out := []int{}
	bi := 0
	r.ForEach(func(row uint32) bool {
		for bi < len(ix.Blocks) && int(row) >= ix.Blocks[bi].StartRow+ix.Blocks[bi].Rows {
			bi++
		}
		if bi >= len(ix.Blocks) {
			return false
		}
		if int(row) >= ix.Blocks[bi].StartRow {
			if len(out) == 0 || out[len(out)-1] != bi {
				out = append(out, bi)
			}
		}
		return true
	})
	return out
}

func intersectSorted(a, b []int) []int {
	out := []int{}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
