// Package s3sim simulates the cloud environment of the paper's end-to-end
// cost evaluation (§6.7): an object store in front of a compute instance
// with a fixed-bandwidth network. Decompression time is *measured* by
// actually running the format's decoder on the stored bytes with the
// requested parallelism; transfer time and request counts are modeled
// from the documented S3/EC2 parameters. Scan cost is then
// duration·instance-rate + GETs·request-rate, and the throughput metrics
// T_r (uncompressed bytes / scan time) and T_c (compressed bytes / scan
// time) fall out exactly as §6.7 defines them.
package s3sim

import (
	"errors"
	"sync"
	"time"
)

// Model holds the cloud cost and performance parameters.
type Model struct {
	// NetworkGbps is the instance network bandwidth (c5n.18xlarge: 100).
	NetworkGbps float64
	// GetLatency is the per-request first-byte latency.
	GetLatency time.Duration
	// ChunkBytes is the fetch granularity (the S3 performance guidelines
	// recommend 8–16 MB; the paper uses 16 MB).
	ChunkBytes int
	// InstanceDollarsPerHour is the compute cost (c5n.18xlarge: $3.89).
	InstanceDollarsPerHour float64
	// DollarsPer1000GET is the S3 request cost ($0.0004).
	DollarsPer1000GET float64
}

// Default returns the paper's test setup: c5n.18xlarge with 100 Gbit
// networking, 16 MB chunks, $3.89/h and $0.0004 per 1000 GETs.
func Default() Model {
	return Model{
		NetworkGbps:            100,
		GetLatency:             30 * time.Millisecond,
		ChunkBytes:             16 << 20,
		InstanceDollarsPerHour: 3.89,
		DollarsPer1000GET:      0.0004,
	}
}

// Store is the in-memory object store.
type Store struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{objects: make(map[string][]byte)}
}

// Put stores an object.
func (s *Store) Put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[key] = data
}

// Get fetches an object (nil if absent).
func (s *Store) Get(key string) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.objects[key]
}

// Size returns an object's size in bytes, or -1 if absent.
func (s *Store) Size(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if d, ok := s.objects[key]; ok {
		return len(d)
	}
	return -1
}

// TotalBytes sums all object sizes.
func (s *Store) TotalBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, d := range s.objects {
		total += len(d)
	}
	return total
}

// Object identifies one object to scan. DependentRequests adds extra
// sequential round trips before the data arrives — the Parquet
// single-column case needs three dependent GETs (footer length, footer,
// column chunk), §6.7.
type Object struct {
	Key               string
	DependentRequests int
}

// ScanResult aggregates a simulated scan.
type ScanResult struct {
	CompressedBytes   int
	UncompressedBytes int
	Requests          int
	// TransferSeconds is the modeled network time.
	TransferSeconds float64
	// DecompressSeconds is the measured CPU time for decoding everything
	// at the requested parallelism.
	DecompressSeconds float64
	// ScanSeconds is the pipelined total: max(transfer, decompression)
	// plus the dependent-request latency chains.
	ScanSeconds float64
	// CostDollars is instance time plus request cost.
	CostDollars float64
}

// TrGbps is decompression throughput over uncompressed size — the
// consumer-visible metric of Figure 8.
func (r *ScanResult) TrGbps() float64 {
	if r.ScanSeconds == 0 {
		return 0
	}
	return float64(r.UncompressedBytes) * 8 / 1e9 / r.ScanSeconds
}

// TcGbps is throughput over compressed size — the metric that must exceed
// the network bandwidth for a scan to be network-bound (§6.7).
func (r *ScanResult) TcGbps() float64 {
	if r.ScanSeconds == 0 {
		return 0
	}
	return float64(r.CompressedBytes) * 8 / 1e9 / r.ScanSeconds
}

// ErrMissingObject is returned when a scan references an absent key.
var ErrMissingObject = errors.New("s3sim: missing object")

// Scan simulates loading and decompressing the given objects with
// `threads` workers. decode must decompress one object's bytes and return
// the uncompressed size it produced; its wall time is measured for real.
func (m Model) Scan(store *Store, objects []Object, threads int, decode func(key string, data []byte) (int, error)) (*ScanResult, error) {
	if threads <= 0 {
		threads = 1
	}
	res := &ScanResult{}
	maxChain := 0
	for _, obj := range objects {
		data := store.Get(obj.Key)
		if data == nil {
			return nil, ErrMissingObject
		}
		res.CompressedBytes += len(data)
		chunks := (len(data) + m.ChunkBytes - 1) / m.ChunkBytes
		if chunks == 0 {
			chunks = 1
		}
		res.Requests += chunks + obj.DependentRequests
		if obj.DependentRequests > maxChain {
			maxChain = obj.DependentRequests
		}
	}

	// measured decompression at the requested parallelism
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	work := make(chan Object)
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for obj := range work {
				n, err := decode(obj.Key, store.Get(obj.Key))
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				res.UncompressedBytes += n
				mu.Unlock()
			}
		}()
	}
	for _, obj := range objects {
		work <- obj
	}
	close(work)
	wg.Wait()
	res.DecompressSeconds = time.Since(start).Seconds()
	if firstErr != nil {
		return nil, firstErr
	}

	res.TransferSeconds = float64(res.CompressedBytes) * 8 / (m.NetworkGbps * 1e9)
	// Transfer and decompression pipeline against each other; dependent
	// request chains serialize in front of the pipeline.
	res.ScanSeconds = maxF(res.TransferSeconds, res.DecompressSeconds) +
		float64(maxChain)*m.GetLatency.Seconds()
	res.CostDollars = res.ScanSeconds/3600*m.InstanceDollarsPerHour +
		float64(res.Requests)/1000*m.DollarsPer1000GET
	return res, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
