package s3sim

import (
	"testing"
	"time"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.Put("a", make([]byte, 100))
	s.Put("b", make([]byte, 50))
	if s.Size("a") != 100 || s.Size("b") != 50 || s.Size("c") != -1 {
		t.Fatal("sizes wrong")
	}
	if s.TotalBytes() != 150 {
		t.Fatal("total wrong")
	}
	if s.Get("c") != nil {
		t.Fatal("phantom object")
	}
}

func TestScanRequestCounting(t *testing.T) {
	m := Default()
	s := NewStore()
	s.Put("big", make([]byte, 40<<20)) // 40 MB -> 3 GETs of 16 MB
	s.Put("tiny", make([]byte, 100))   // 1 GET
	res, err := m.Scan(s, []Object{{Key: "big"}, {Key: "tiny", DependentRequests: 2}}, 2,
		func(key string, data []byte) (int, error) { return len(data) * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 3+1+2 {
		t.Fatalf("requests = %d, want 6", res.Requests)
	}
	if res.CompressedBytes != 40<<20+100 {
		t.Fatalf("compressed bytes = %d", res.CompressedBytes)
	}
	if res.UncompressedBytes != 2*(40<<20+100) {
		t.Fatalf("uncompressed bytes = %d", res.UncompressedBytes)
	}
}

func TestScanCostModel(t *testing.T) {
	m := Model{
		NetworkGbps:            1, // slow network dominates
		ChunkBytes:             16 << 20,
		InstanceDollarsPerHour: 3.6, // $0.001/s
		DollarsPer1000GET:      0.4, // $0.0004/GET
	}
	s := NewStore()
	s.Put("obj", make([]byte, 125_000_000)) // 1 Gbit -> 1 s at 1 Gbps
	res, err := m.Scan(s, []Object{{Key: "obj"}}, 1,
		func(key string, data []byte) (int, error) { return len(data), nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.TransferSeconds < 0.99 || res.TransferSeconds > 1.01 {
		t.Fatalf("transfer = %f s, want 1", res.TransferSeconds)
	}
	// scan time >= transfer time (pipelined against measured decode)
	if res.ScanSeconds < res.TransferSeconds {
		t.Fatal("scan cannot be faster than the network")
	}
	wantCost := res.ScanSeconds/3600*3.6 + float64(res.Requests)/1000*0.4
	if diff := res.CostDollars - wantCost; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("cost = %f, want %f", res.CostDollars, wantCost)
	}
	if res.TcGbps() > 1.01 {
		t.Fatalf("Tc %.2f cannot exceed network bandwidth on a network-bound scan", res.TcGbps())
	}
}

func TestCPUBoundScan(t *testing.T) {
	// A deliberately slow decoder makes the scan CPU-bound: T_c must drop
	// below the network bandwidth — the paper's core argument.
	m := Default()
	s := NewStore()
	s.Put("obj", make([]byte, 1<<20))
	res, err := m.Scan(s, []Object{{Key: "obj"}}, 1,
		func(key string, data []byte) (int, error) {
			time.Sleep(50 * time.Millisecond)
			return len(data) * 3, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScanSeconds < 0.05 {
		t.Fatalf("scan %f s must include measured decode time", res.ScanSeconds)
	}
	if res.TcGbps() >= m.NetworkGbps {
		t.Fatal("CPU-bound scan cannot saturate the network")
	}
	if res.TrGbps() <= res.TcGbps() {
		t.Fatal("Tr must exceed Tc when data compresses")
	}
}

func TestMissingObject(t *testing.T) {
	m := Default()
	s := NewStore()
	if _, err := m.Scan(s, []Object{{Key: "nope"}}, 1,
		func(string, []byte) (int, error) { return 0, nil }); err != ErrMissingObject {
		t.Fatalf("err = %v", err)
	}
}

func TestDependentRequestLatency(t *testing.T) {
	m := Default()
	s := NewStore()
	s.Put("col", make([]byte, 1000))
	noDep, err := m.Scan(s, []Object{{Key: "col"}}, 1,
		func(key string, data []byte) (int, error) { return len(data), nil })
	if err != nil {
		t.Fatal(err)
	}
	withDep, err := m.Scan(s, []Object{{Key: "col", DependentRequests: 2}}, 1,
		func(key string, data []byte) (int, error) { return len(data), nil })
	if err != nil {
		t.Fatal(err)
	}
	if withDep.ScanSeconds <= noDep.ScanSeconds {
		t.Fatal("dependent requests must add latency")
	}
}
