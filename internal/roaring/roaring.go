// Package roaring implements Roaring bitmaps (Lemire et al.): compressed
// bitmaps over 32-bit keys that switch container representation based on
// local density. Three container kinds are supported — sorted arrays for
// sparse chunks, 8 KiB bitmaps for dense chunks, and run containers for
// clustered chunks — matching the CRoaring design the paper uses for NULL
// and exception tracking.
package roaring

import (
	"encoding/binary"
	"errors"
	"math/bits"
	"sort"
)

// arrayMaxCard is the cardinality above which an array container converts
// to a bitmap container (as in the Roaring format spec).
const arrayMaxCard = 4096

// ErrCorrupt is returned when deserializing malformed bytes.
var ErrCorrupt = errors.New("roaring: corrupt stream")

// Bitmap is a compressed set of uint32 values. The zero value is an empty
// bitmap ready for use.
type Bitmap struct {
	keys       []uint16
	containers []container
}

type container interface {
	add(v uint16) container
	remove(v uint16) container
	contains(v uint16) bool
	card() int
	// forEach calls f for each value in ascending order until f returns
	// false; it reports whether iteration ran to completion.
	forEach(f func(uint16) bool) bool
	// kind returns one of kindArray, kindBitmap, kindRun.
	kind() byte
}

const (
	kindArray  byte = 0
	kindBitmap byte = 1
	kindRun    byte = 2
)

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

// FromSlice builds a bitmap from (not necessarily sorted) values.
func FromSlice(values []uint32) *Bitmap {
	b := New()
	for _, v := range values {
		b.Add(v)
	}
	return b
}

func (b *Bitmap) containerIndex(key uint16) (int, bool) {
	i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= key })
	return i, i < len(b.keys) && b.keys[i] == key
}

// Add inserts v into the bitmap.
func (b *Bitmap) Add(v uint32) {
	key := uint16(v >> 16)
	low := uint16(v)
	i, ok := b.containerIndex(key)
	if ok {
		b.containers[i] = b.containers[i].add(low)
		return
	}
	b.insertContainerAt(i, key, arrayContainer{low})
}

func (b *Bitmap) insertContainerAt(i int, key uint16, c container) {
	b.keys = append(b.keys, 0)
	copy(b.keys[i+1:], b.keys[i:])
	b.keys[i] = key
	b.containers = append(b.containers, nil)
	copy(b.containers[i+1:], b.containers[i:])
	b.containers[i] = c
}

// AddRange inserts all values in [lo, hi). It works a container at a
// time — word fills on bitmap containers, one splice on array
// containers, interval merges on run containers — instead of one
// sorted-insert per value, and produces the same canonical container
// kinds as point Adds (array up to arrayMaxCard, bitmap beyond), so a
// range-built bitmap serializes byte-identically to an Add-built one.
func (b *Bitmap) AddRange(lo, hi uint32) {
	if hi <= lo {
		return
	}
	last := hi - 1 // inclusive from here on
	for key := lo >> 16; ; key++ {
		clo, chi := uint16(0), uint16(0xFFFF)
		if key == lo>>16 {
			clo = uint16(lo)
		}
		if key == last>>16 {
			chi = uint16(last)
		}
		i, ok := b.containerIndex(uint16(key))
		if ok {
			b.containers[i] = addRangeTo(b.containers[i], clo, chi)
		} else {
			b.insertContainerAt(i, uint16(key), newRangeContainer(clo, chi))
		}
		if key == last>>16 {
			return
		}
	}
}

// newRangeContainer builds a fresh container holding [lo, hi], in the
// same representation point Adds would have produced.
func newRangeContainer(lo, hi uint16) container {
	n := int(hi) - int(lo) + 1
	if n > arrayMaxCard {
		bc := newBitmapContainer()
		bc.setRange(lo, hi)
		return bc
	}
	a := make(arrayContainer, 0, n)
	for v := uint32(lo); v <= uint32(hi); v++ {
		a = append(a, uint16(v))
	}
	return a
}

func addRangeTo(c container, lo, hi uint16) container {
	switch cc := c.(type) {
	case arrayContainer:
		return cc.addRange(lo, hi)
	case *bitmapContainer:
		cc.setRange(lo, hi)
		return cc
	case runContainer:
		return cc.addRange(lo, hi)
	}
	return c
}

// Remove deletes v from the bitmap if present.
func (b *Bitmap) Remove(v uint32) {
	key := uint16(v >> 16)
	i, ok := b.containerIndex(key)
	if !ok {
		return
	}
	c := b.containers[i].remove(uint16(v))
	if c.card() == 0 {
		b.keys = append(b.keys[:i], b.keys[i+1:]...)
		b.containers = append(b.containers[:i], b.containers[i+1:]...)
		return
	}
	b.containers[i] = c
}

// Contains reports whether v is in the bitmap.
func (b *Bitmap) Contains(v uint32) bool {
	i, ok := b.containerIndex(uint16(v >> 16))
	return ok && b.containers[i].contains(uint16(v))
}

// Cardinality returns the number of values in the bitmap.
func (b *Bitmap) Cardinality() int {
	n := 0
	for _, c := range b.containers {
		n += c.card()
	}
	return n
}

// IsEmpty reports whether the bitmap contains no values. Containers are
// never left empty (Remove deletes a drained container and FromBytes
// drops empty ones), so this is O(1) on the container directory instead
// of a full cardinality walk.
func (b *Bitmap) IsEmpty() bool { return len(b.keys) == 0 }

// ForEach calls f for every value in ascending order until f returns false.
func (b *Bitmap) ForEach(f func(uint32) bool) {
	for i, c := range b.containers {
		base := uint32(b.keys[i]) << 16
		if !c.forEach(func(low uint16) bool { return f(base | uint32(low)) }) {
			return
		}
	}
}

// ToArray returns all values in ascending order.
func (b *Bitmap) ToArray() []uint32 {
	out := make([]uint32, 0, b.Cardinality())
	b.ForEach(func(v uint32) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Equals reports whether two bitmaps contain the same set of values.
func (b *Bitmap) Equals(o *Bitmap) bool {
	if b.Cardinality() != o.Cardinality() {
		return false
	}
	eq := true
	b.ForEach(func(v uint32) bool {
		if !o.Contains(v) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	n := New()
	b.ForEach(func(v uint32) bool {
		n.Add(v)
		return true
	})
	return n
}

// Or returns the union of b and o as a new bitmap.
func Or(b, o *Bitmap) *Bitmap {
	n := b.Clone()
	o.ForEach(func(v uint32) bool {
		n.Add(v)
		return true
	})
	return n
}

// And returns the intersection of b and o as a new bitmap.
func And(b, o *Bitmap) *Bitmap {
	n := New()
	b.ForEach(func(v uint32) bool {
		if o.Contains(v) {
			n.Add(v)
		}
		return true
	})
	return n
}

// AndNot returns b \ o as a new bitmap.
func AndNot(b, o *Bitmap) *Bitmap {
	n := New()
	b.ForEach(func(v uint32) bool {
		if !o.Contains(v) {
			n.Add(v)
		}
		return true
	})
	return n
}

// Rank returns the number of values <= v.
func (b *Bitmap) Rank(v uint32) int {
	n := 0
	b.ForEach(func(x uint32) bool {
		if x > v {
			return false
		}
		n++
		return true
	})
	return n
}

// RunOptimize converts containers to run containers where that is smaller.
func (b *Bitmap) RunOptimize() {
	for i, c := range b.containers {
		runs := countRuns(c)
		runBytes := 2 + 4*runs
		var curBytes int
		switch c.kind() {
		case kindArray:
			curBytes = 2 * c.card()
		case kindBitmap:
			curBytes = 8192
		default:
			continue
		}
		if runBytes < curBytes {
			b.containers[i] = toRun(c)
		}
	}
}

func countRuns(c container) int {
	runs := 0
	prev := -2
	c.forEach(func(v uint16) bool {
		if int(v) != prev+1 {
			runs++
		}
		prev = int(v)
		return true
	})
	return runs
}

func toRun(c container) runContainer {
	var rc runContainer
	prev := -2
	c.forEach(func(v uint16) bool {
		if int(v) == prev+1 {
			rc[len(rc)-1].length++
		} else {
			rc = append(rc, interval{start: v})
		}
		prev = int(v)
		return true
	})
	return rc
}

// --- array container ---

type arrayContainer []uint16

func (a arrayContainer) kind() byte { return kindArray }
func (a arrayContainer) card() int  { return len(a) }

func (a arrayContainer) contains(v uint16) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

func (a arrayContainer) add(v uint16) container {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	if i < len(a) && a[i] == v {
		return a
	}
	if len(a)+1 > arrayMaxCard {
		bc := newBitmapContainer()
		for _, x := range a {
			bc.set(x)
		}
		bc.set(v)
		return bc
	}
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = v
	return a
}

// addRange inserts [lo, hi] with one splice, converting to a bitmap
// container when the merged cardinality crosses arrayMaxCard (the same
// threshold point Adds convert at).
func (a arrayContainer) addRange(lo, hi uint16) container {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= lo })
	j := sort.Search(len(a), func(i int) bool { return a[i] > hi })
	rangeLen := int(hi) - int(lo) + 1
	merged := len(a) - (j - i) + rangeLen
	if merged > arrayMaxCard {
		bc := newBitmapContainer()
		for _, x := range a {
			bc.set(x)
		}
		bc.setRange(lo, hi)
		return bc
	}
	var out arrayContainer
	if cap(a) >= merged {
		out = a[:merged] // splice in place, like add's append path
	} else {
		newCap := merged + merged/4
		if newCap > arrayMaxCard {
			newCap = arrayMaxCard
		}
		out = make(arrayContainer, merged, newCap)
		copy(out, a[:i])
	}
	copy(out[i+rangeLen:], a[j:]) // memmove-safe when out aliases a
	for v, k := uint32(lo), i; v <= uint32(hi); v, k = v+1, k+1 {
		out[k] = uint16(v)
	}
	return out
}

func (a arrayContainer) remove(v uint16) container {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	if i >= len(a) || a[i] != v {
		return a
	}
	return append(a[:i], a[i+1:]...)
}

func (a arrayContainer) forEach(f func(uint16) bool) bool {
	for _, v := range a {
		if !f(v) {
			return false
		}
	}
	return true
}

// --- bitmap container ---

type bitmapContainer struct {
	words [1024]uint64
	n     int
}

func newBitmapContainer() *bitmapContainer { return &bitmapContainer{} }

func (b *bitmapContainer) kind() byte { return kindBitmap }
func (b *bitmapContainer) card() int  { return b.n }

func (b *bitmapContainer) set(v uint16) {
	w, bit := v>>6, uint(v&63)
	if b.words[w]&(1<<bit) == 0 {
		b.words[w] |= 1 << bit
		b.n++
	}
}

// setRange sets every bit in [lo, hi] with word-wide masks.
func (b *bitmapContainer) setRange(lo, hi uint16) {
	w1, w2 := int(lo>>6), int(hi>>6)
	for w := w1; w <= w2; w++ {
		mask := ^uint64(0)
		if w == w1 {
			mask &= ^uint64(0) << (lo & 63)
		}
		if w == w2 {
			mask &= ^uint64(0) >> (63 - hi&63)
		}
		b.n += bits.OnesCount64(mask &^ b.words[w])
		b.words[w] |= mask
	}
}

func (b *bitmapContainer) contains(v uint16) bool {
	return b.words[v>>6]&(1<<uint(v&63)) != 0
}

func (b *bitmapContainer) add(v uint16) container {
	b.set(v)
	return b
}

func (b *bitmapContainer) remove(v uint16) container {
	w, bit := v>>6, uint(v&63)
	if b.words[w]&(1<<bit) != 0 {
		b.words[w] &^= 1 << bit
		b.n--
	}
	if b.n < arrayMaxCard {
		a := make(arrayContainer, 0, b.n)
		b.forEach(func(v uint16) bool {
			a = append(a, v)
			return true
		})
		return a
	}
	return b
}

func (b *bitmapContainer) forEach(f func(uint16) bool) bool {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !f(uint16(wi<<6 + bit)) {
				return false
			}
			w &= w - 1
		}
	}
	return true
}

// --- run container ---

type interval struct {
	start  uint16
	length uint16 // run covers [start, start+length]
}

type runContainer []interval

func (r runContainer) kind() byte { return kindRun }

func (r runContainer) card() int {
	n := 0
	for _, iv := range r {
		n += int(iv.length) + 1
	}
	return n
}

func (r runContainer) contains(v uint16) bool {
	i := sort.Search(len(r), func(i int) bool { return r[i].start > v })
	if i == 0 {
		return false
	}
	iv := r[i-1]
	return uint32(v) <= uint32(iv.start)+uint32(iv.length)
}

func (r runContainer) add(v uint16) container {
	// Runs are built by RunOptimize/deserialization; point inserts convert
	// back to the dynamic representation first.
	a := make(arrayContainer, 0, r.card())
	r.forEach(func(x uint16) bool {
		a = append(a, x)
		return true
	})
	var c container = a
	if len(a) > arrayMaxCard {
		bc := newBitmapContainer()
		for _, x := range a {
			bc.set(x)
		}
		c = bc
	}
	return c.add(v)
}

// addRange merges [lo, hi] into the interval list, coalescing
// overlapping and adjacent runs, and stays a run container.
func (r runContainer) addRange(lo, hi uint16) container {
	out := make(runContainer, 0, len(r)+1)
	k := 0
	for k < len(r) && uint32(r[k].start)+uint32(r[k].length)+1 < uint32(lo) {
		out = append(out, r[k])
		k++
	}
	start, end := uint32(lo), uint32(hi)
	for k < len(r) && uint32(r[k].start) <= end+1 {
		if uint32(r[k].start) < start {
			start = uint32(r[k].start)
		}
		if e := uint32(r[k].start) + uint32(r[k].length); e > end {
			end = e
		}
		k++
	}
	out = append(out, interval{start: uint16(start), length: uint16(end - start)})
	return append(out, r[k:]...)
}

func (r runContainer) remove(v uint16) container {
	a := make(arrayContainer, 0, r.card())
	r.forEach(func(x uint16) bool {
		a = append(a, x)
		return true
	})
	return a.remove(v)
}

func (r runContainer) forEach(f func(uint16) bool) bool {
	for _, iv := range r {
		for v := uint32(iv.start); v <= uint32(iv.start)+uint32(iv.length); v++ {
			if !f(uint16(v)) {
				return false
			}
		}
	}
	return true
}

// --- serialization ---

// AppendTo serializes the bitmap and appends it to dst. Layout:
//
//	nContainers:u16 then per container:
//	  key:u16 kind:u8 payload
//	  array:  card:u16 values (card × u16)
//	  bitmap: 8192 bytes
//	  run:    nRuns:u16 runs (nRuns × (start:u16 len:u16))
func (b *Bitmap) AppendTo(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(b.keys)))
	for i, c := range b.containers {
		dst = binary.LittleEndian.AppendUint16(dst, b.keys[i])
		dst = append(dst, c.kind())
		switch cc := c.(type) {
		case arrayContainer:
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(cc)))
			for _, v := range cc {
				dst = binary.LittleEndian.AppendUint16(dst, v)
			}
		case *bitmapContainer:
			for _, w := range cc.words {
				dst = binary.LittleEndian.AppendUint64(dst, w)
			}
		case runContainer:
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(cc)))
			for _, iv := range cc {
				dst = binary.LittleEndian.AppendUint16(dst, iv.start)
				dst = binary.LittleEndian.AppendUint16(dst, iv.length)
			}
		}
	}
	return dst
}

// SerializedSize returns the exact byte size AppendTo would produce.
func (b *Bitmap) SerializedSize() int {
	size := 2
	for _, c := range b.containers {
		size += 3
		switch cc := c.(type) {
		case arrayContainer:
			size += 2 + 2*len(cc)
		case *bitmapContainer:
			size += 8192
		case runContainer:
			size += 2 + 4*len(cc)
		}
	}
	return size
}

// FromBytes deserializes a bitmap from src, returning it and the number of
// bytes consumed.
func FromBytes(src []byte) (*Bitmap, int, error) {
	if len(src) < 2 {
		return nil, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint16(src))
	pos := 2
	b := New()
	prevKey := -1
	for i := 0; i < n; i++ {
		if pos+3 > len(src) {
			return nil, 0, ErrCorrupt
		}
		key := binary.LittleEndian.Uint16(src[pos:])
		kind := src[pos+2]
		pos += 3
		if int(key) <= prevKey {
			return nil, 0, ErrCorrupt
		}
		prevKey = int(key)
		var c container
		switch kind {
		case kindArray:
			if pos+2 > len(src) {
				return nil, 0, ErrCorrupt
			}
			card := int(binary.LittleEndian.Uint16(src[pos:]))
			pos += 2
			if pos+2*card > len(src) || card > arrayMaxCard {
				return nil, 0, ErrCorrupt
			}
			a := make(arrayContainer, card)
			for j := range a {
				a[j] = binary.LittleEndian.Uint16(src[pos:])
				pos += 2
			}
			for j := 1; j < len(a); j++ {
				if a[j] <= a[j-1] {
					return nil, 0, ErrCorrupt
				}
			}
			c = a
		case kindBitmap:
			if pos+8192 > len(src) {
				return nil, 0, ErrCorrupt
			}
			bc := newBitmapContainer()
			for j := 0; j < 1024; j++ {
				bc.words[j] = binary.LittleEndian.Uint64(src[pos:])
				bc.n += bits.OnesCount64(bc.words[j])
				pos += 8
			}
			c = bc
		case kindRun:
			if pos+2 > len(src) {
				return nil, 0, ErrCorrupt
			}
			nr := int(binary.LittleEndian.Uint16(src[pos:]))
			pos += 2
			if pos+4*nr > len(src) {
				return nil, 0, ErrCorrupt
			}
			rc := make(runContainer, nr)
			for j := range rc {
				rc[j].start = binary.LittleEndian.Uint16(src[pos:])
				rc[j].length = binary.LittleEndian.Uint16(src[pos+2:])
				pos += 4
			}
			for j := 1; j < len(rc); j++ {
				if uint32(rc[j].start) <= uint32(rc[j-1].start)+uint32(rc[j-1].length) {
					return nil, 0, ErrCorrupt
				}
			}
			c = rc
		default:
			return nil, 0, ErrCorrupt
		}
		if c.card() == 0 {
			// AppendTo never writes an empty container; tolerate one in the
			// input but drop it so the no-empty-containers invariant (which
			// IsEmpty relies on) holds for deserialized bitmaps too.
			continue
		}
		b.keys = append(b.keys, key)
		b.containers = append(b.containers, c)
	}
	return b, pos, nil
}
