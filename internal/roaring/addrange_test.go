package roaring

import (
	"bytes"
	"math/rand"
	"testing"
)

// naiveAddRange is the reference semantics AddRange must match.
func naiveAddRange(b *Bitmap, lo, hi uint32) {
	for v := uint64(lo); v < uint64(hi); v++ {
		b.Add(uint32(v))
	}
}

// TestAddRangeEquivalence drives AddRange through container-boundary and
// promotion cases and checks both set equality with per-value Adds and
// byte equality of the serialized form (query results compare bitmaps
// byte for byte, so range-built and add-built bitmaps must serialize
// identically).
func TestAddRangeEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		ranges [][2]uint32
	}{
		{"empty", [][2]uint32{{10, 10}, {10, 5}}},
		{"single", [][2]uint32{{7, 8}}},
		{"small-array", [][2]uint32{{100, 200}}},
		{"promotes-to-bitmap", [][2]uint32{{0, 5000}}},
		{"exact-arrayMaxCard", [][2]uint32{{0, arrayMaxCard}}},
		{"one-past-arrayMaxCard", [][2]uint32{{0, arrayMaxCard + 1}}},
		{"crosses-chunk", [][2]uint32{{65530, 65600}}},
		{"spans-three-chunks", [][2]uint32{{60000, 200000}}},
		{"full-chunk", [][2]uint32{{65536, 131072}}},
		{"chunk-tail", [][2]uint32{{65535, 65536}}},
		{"overlapping", [][2]uint32{{100, 300}, {200, 500}, {50, 150}}},
		{"adjacent", [][2]uint32{{100, 200}, {200, 300}}},
		{"disjoint-then-bridge", [][2]uint32{{10, 20}, {40, 50}, {15, 45}}},
		{"array-grows-past-max", [][2]uint32{{0, 3000}, {3500, 6000}}},
		{"high-end", [][2]uint32{{0xFFFFFF00, 0xFFFFFFFF}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fast, slow := New(), New()
			for _, r := range tc.ranges {
				fast.AddRange(r[0], r[1])
				naiveAddRange(slow, r[0], r[1])
			}
			if !fast.Equals(slow) {
				t.Fatalf("sets differ: fast card %d, slow card %d",
					fast.Cardinality(), slow.Cardinality())
			}
			if !bytes.Equal(fast.AppendTo(nil), slow.AppendTo(nil)) {
				t.Fatal("serialized bytes differ between range-built and add-built bitmaps")
			}
		})
	}
}

// TestAddRangeOverExisting merges ranges into pre-populated containers of
// every kind: array, bitmap, and run (via RunOptimize).
func TestAddRangeOverExisting(t *testing.T) {
	seed := func() (*Bitmap, *Bitmap) {
		fast, slow := New(), New()
		for _, v := range []uint32{5, 90, 250, 66000} {
			fast.Add(v)
			slow.Add(v)
		}
		return fast, slow
	}

	t.Run("into-array", func(t *testing.T) {
		fast, slow := seed()
		fast.AddRange(80, 260)
		naiveAddRange(slow, 80, 260)
		if !fast.Equals(slow) || !bytes.Equal(fast.AppendTo(nil), slow.AppendTo(nil)) {
			t.Fatal("array merge diverged")
		}
	})
	t.Run("into-bitmap", func(t *testing.T) {
		fast, slow := seed()
		fast.AddRange(0, 5000) // promotes chunk 0 to a bitmap container
		naiveAddRange(slow, 0, 5000)
		fast.AddRange(4000, 6000)
		naiveAddRange(slow, 4000, 6000)
		if !fast.Equals(slow) || !bytes.Equal(fast.AppendTo(nil), slow.AppendTo(nil)) {
			t.Fatal("bitmap merge diverged")
		}
	})
	t.Run("into-run", func(t *testing.T) {
		b := New()
		b.AddRange(100, 200)
		b.AddRange(300, 400)
		b.RunOptimize()
		for _, r := range [][2]uint32{{150, 350}, {50, 90}, {500, 600}, {399, 501}} {
			b.AddRange(r[0], r[1])
		}
		want := New()
		for _, r := range [][2]uint32{{100, 200}, {300, 400}, {150, 350}, {50, 90}, {500, 600}, {399, 501}} {
			naiveAddRange(want, r[0], r[1])
		}
		if !b.Equals(want) {
			t.Fatalf("run merge diverged: card %d want %d", b.Cardinality(), want.Cardinality())
		}
	})
}

// TestAddRangeRandomized cross-checks random mixes of Add and AddRange
// against the naive implementation.
func TestAddRangeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		fast, slow := New(), New()
		for op := 0; op < 30; op++ {
			if rng.Intn(3) == 0 {
				v := uint32(rng.Intn(1 << 18))
				fast.Add(v)
				slow.Add(v)
				continue
			}
			lo := uint32(rng.Intn(1 << 18))
			hi := lo + uint32(rng.Intn(9000))
			fast.AddRange(lo, hi)
			naiveAddRange(slow, lo, hi)
		}
		if !fast.Equals(slow) {
			t.Fatalf("trial %d: sets diverged", trial)
		}
		if !bytes.Equal(fast.AppendTo(nil), slow.AppendTo(nil)) {
			t.Fatalf("trial %d: serialized bytes diverged", trial)
		}
	}
}
