package roaring

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddContains(t *testing.T) {
	b := New()
	values := []uint32{0, 1, 65535, 65536, 1 << 20, 1<<31 + 5, 0xFFFFFFFF}
	for _, v := range values {
		b.Add(v)
	}
	for _, v := range values {
		if !b.Contains(v) {
			t.Fatalf("missing %d", v)
		}
	}
	if b.Contains(2) || b.Contains(65537) {
		t.Fatal("contains value never added")
	}
	if b.Cardinality() != len(values) {
		t.Fatalf("cardinality %d, want %d", b.Cardinality(), len(values))
	}
	b.Add(0) // duplicate
	if b.Cardinality() != len(values) {
		t.Fatal("duplicate add changed cardinality")
	}
}

func TestArrayToBitmapPromotion(t *testing.T) {
	b := New()
	for i := uint32(0); i < 5000; i++ {
		b.Add(i * 2)
	}
	if b.Cardinality() != 5000 {
		t.Fatalf("cardinality %d", b.Cardinality())
	}
	if b.containers[0].kind() != kindBitmap {
		t.Fatal("container should have promoted to bitmap")
	}
	for i := uint32(0); i < 5000; i++ {
		if !b.Contains(i * 2) {
			t.Fatalf("missing %d after promotion", i*2)
		}
		if b.Contains(i*2 + 1) {
			t.Fatalf("phantom %d after promotion", i*2+1)
		}
	}
}

func TestRemoveAndDemotion(t *testing.T) {
	b := New()
	for i := uint32(0); i < 6000; i++ {
		b.Add(i)
	}
	for i := uint32(0); i < 6000; i += 2 {
		b.Remove(i)
	}
	if b.Cardinality() != 3000 {
		t.Fatalf("cardinality %d", b.Cardinality())
	}
	if b.containers[0].kind() != kindArray {
		t.Fatal("container should have demoted to array")
	}
	b2 := New()
	b2.Add(5)
	b2.Remove(5)
	if !b2.IsEmpty() || len(b2.keys) != 0 {
		t.Fatal("empty container should be dropped")
	}
	b2.Remove(77) // removing absent value is a no-op
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	b := FromSlice([]uint32{9, 3, 1 << 17, 5})
	want := []uint32{3, 5, 9, 1 << 17}
	if got := b.ToArray(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ToArray = %v, want %v", got, want)
	}
	var seen []uint32
	b.ForEach(func(v uint32) bool {
		seen = append(seen, v)
		return len(seen) < 2
	})
	if len(seen) != 2 {
		t.Fatalf("early stop failed, saw %v", seen)
	}
}

func TestSetOps(t *testing.T) {
	a := FromSlice([]uint32{1, 2, 3, 100000})
	b := FromSlice([]uint32{2, 3, 4})
	if got := Or(a, b).ToArray(); !reflect.DeepEqual(got, []uint32{1, 2, 3, 4, 100000}) {
		t.Fatalf("Or = %v", got)
	}
	if got := And(a, b).ToArray(); !reflect.DeepEqual(got, []uint32{2, 3}) {
		t.Fatalf("And = %v", got)
	}
	if got := AndNot(a, b).ToArray(); !reflect.DeepEqual(got, []uint32{1, 100000}) {
		t.Fatalf("AndNot = %v", got)
	}
}

func TestRank(t *testing.T) {
	b := FromSlice([]uint32{10, 20, 30})
	for _, tc := range []struct {
		v    uint32
		want int
	}{{5, 0}, {10, 1}, {15, 1}, {30, 3}, {1000, 3}} {
		if got := b.Rank(tc.v); got != tc.want {
			t.Fatalf("Rank(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestRunOptimizeRoundTrip(t *testing.T) {
	b := New()
	b.AddRange(100, 10000) // long run: should become a run container
	b.Add(50000)
	before := b.ToArray()
	b.RunOptimize()
	if b.containers[0].kind() != kindRun {
		t.Fatal("expected run container after RunOptimize")
	}
	if !reflect.DeepEqual(b.ToArray(), before) {
		t.Fatal("RunOptimize changed contents")
	}
	if sz := b.SerializedSize(); sz > 100 {
		t.Fatalf("run-optimized serialized size %d too large for one run", sz)
	}
	// Point update to a run container must still work.
	b.Add(55)
	if !b.Contains(55) || !b.Contains(100) || !b.Contains(9999) {
		t.Fatal("add after run optimize broke contents")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := New()
	for i := 0; i < 20000; i++ {
		b.Add(rng.Uint32() % 200000)
	}
	b.AddRange(300000, 301000)
	b.RunOptimize()

	data := b.AppendTo(nil)
	if len(data) != b.SerializedSize() {
		t.Fatalf("SerializedSize=%d, actual=%d", b.SerializedSize(), len(data))
	}
	got, used, err := FromBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(data) {
		t.Fatalf("consumed %d of %d", used, len(data))
	}
	if !got.Equals(b) {
		t.Fatal("round trip mismatch")
	}
}

func TestDeserializeCorrupt(t *testing.T) {
	b := FromSlice([]uint32{1, 2, 3, 70000})
	data := b.AppendTo(nil)
	for cut := 0; cut < len(data); cut++ {
		if cut == 2 {
			continue // 2-byte prefix saying "0 containers" is valid
		}
		if _, _, err := FromBytes(data[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	bad := append([]byte(nil), data...)
	bad[4] = 9 // invalid container kind
	if _, _, err := FromBytes(bad); err == nil {
		t.Fatal("bad kind not detected")
	}
}

func TestQuickSetSemantics(t *testing.T) {
	f := func(values []uint32) bool {
		b := FromSlice(values)
		ref := map[uint32]bool{}
		for _, v := range values {
			ref[v] = true
		}
		if b.Cardinality() != len(ref) {
			return false
		}
		for v := range ref {
			if !b.Contains(v) {
				return false
			}
		}
		data := b.AppendTo(nil)
		got, _, err := FromBytes(data)
		return err == nil && got.Equals(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
