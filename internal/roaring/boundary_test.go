package roaring

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
)

// boundarySets builds adversarial value sets that cross every container
// representation and every 16-bit key edge: values hugging 0xFFFF/0x10000
// boundaries, dense spans that promote array→bitmap, long runs that
// RunOptimize converts, and sparse high-key outliers.
func boundarySets(seed int64) [][]uint32 {
	rng := rand.New(rand.NewSource(seed))
	var sets [][]uint32

	// Edge values around every representable container boundary we use.
	edges := []uint32{
		0, 1, 0xFFFE, 0xFFFF, 0x10000, 0x10001,
		0x1FFFF, 0x20000, 0x2FFFF, 0x30000,
		0xFFFF0000, 0xFFFFFFFE, 0xFFFFFFFF,
	}
	sets = append(sets, edges)

	// A dense span straddling a key boundary: promotes to bitmap containers
	// on both sides of the 0xFFFF/0x10000 crossing.
	var dense []uint32
	for v := uint32(0xFFFF - 5000); v < 0x10000+5000; v++ {
		dense = append(dense, v)
	}
	sets = append(sets, dense)

	// Runs separated by single-value gaps: RunOptimize turns these into
	// run containers whose intervals end exactly at container capacity.
	var runs []uint32
	for base := uint32(0); base < 3; base++ {
		start := base << 16
		for v := start; v < start+300; v++ {
			runs = append(runs, v)
		}
		runs = append(runs, start+0xFFFF) // last slot of the container
	}
	sets = append(sets, runs)

	// Random mixtures clustered near boundaries, plus uniform noise.
	for i := 0; i < 4; i++ {
		var mix []uint32
		for j := 0; j < 2000; j++ {
			switch rng.Intn(3) {
			case 0:
				mix = append(mix, uint32(0xFFFF)+uint32(rng.Intn(64))-32)
			case 1:
				mix = append(mix, rng.Uint32()%0x40000)
			default:
				mix = append(mix, rng.Uint32())
			}
		}
		sets = append(sets, mix)
	}
	// Empty and singleton sets keep the degenerate shapes covered.
	sets = append(sets, nil, []uint32{0x10000})
	return sets
}

func bitmapOf(values []uint32, optimize bool) (*Bitmap, map[uint32]bool) {
	b := New()
	ref := make(map[uint32]bool, len(values))
	for _, v := range values {
		b.Add(v)
		ref[v] = true
	}
	if optimize {
		b.RunOptimize()
	}
	return b, ref
}

func sortedKeys(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func assertEqualsRef(t *testing.T, name string, got *Bitmap, want map[uint32]bool) {
	t.Helper()
	if got.Cardinality() != len(want) {
		t.Fatalf("%s: cardinality %d, want %d", name, got.Cardinality(), len(want))
	}
	for _, v := range sortedKeys(want) {
		if !got.Contains(v) {
			t.Fatalf("%s: missing %#x", name, v)
		}
	}
	// And the other direction: nothing extra.
	got.ForEach(func(v uint32) bool {
		if !want[v] {
			t.Fatalf("%s: extra %#x", name, v)
		}
		return true
	})
}

// TestSetOpsBoundaryEquivalence checks And/Or/AndNot against a map-based
// reference across every pairing of the adversarial boundary sets, with
// and without run optimization on either operand.
func TestSetOpsBoundaryEquivalence(t *testing.T) {
	sets := boundarySets(7)
	for i, va := range sets {
		for j, vb := range sets {
			for _, optA := range []bool{false, true} {
				for _, optB := range []bool{false, true} {
					a, refA := bitmapOf(va, optA)
					b, refB := bitmapOf(vb, optB)

					or := make(map[uint32]bool)
					and := make(map[uint32]bool)
					andNot := make(map[uint32]bool)
					for v := range refA {
						or[v] = true
						if refB[v] {
							and[v] = true
						} else {
							andNot[v] = true
						}
					}
					for v := range refB {
						or[v] = true
					}

					tag := func(op string) string {
						return op
					}
					assertEqualsRef(t, tag("Or"), Or(a, b), or)
					assertEqualsRef(t, tag("And"), And(a, b), and)
					assertEqualsRef(t, tag("AndNot"), AndNot(a, b), andNot)

					// Operands must be untouched by the set operations.
					assertEqualsRef(t, "operand a", a, refA)
					assertEqualsRef(t, "operand b", b, refB)
					_ = i
					_ = j
				}
			}
		}
	}
}

// TestIsEmptyShortCircuit pins the container-directory fast path: IsEmpty
// must agree with Cardinality()==0 through adds, removes that drain
// containers, and serialization round trips.
func TestIsEmptyShortCircuit(t *testing.T) {
	b := New()
	if !b.IsEmpty() {
		t.Fatal("new bitmap not empty")
	}
	values := []uint32{0, 0xFFFF, 0x10000, 0x12345, 0xFFFFFFFF}
	for _, v := range values {
		b.Add(v)
		if b.IsEmpty() {
			t.Fatalf("IsEmpty true after Add(%#x)", v)
		}
	}
	for _, v := range values {
		b.Remove(v)
	}
	if !b.IsEmpty() {
		t.Fatal("IsEmpty false after removing every value")
	}
	if got := b.Cardinality(); got != 0 {
		t.Fatalf("cardinality %d after removing every value", got)
	}

	// A dense container drained one by one must drop its container entry.
	for v := uint32(0); v < 5000; v++ {
		b.Add(v)
	}
	for v := uint32(0); v < 5000; v++ {
		b.Remove(v)
	}
	if !b.IsEmpty() {
		t.Fatal("IsEmpty false after draining a bitmap container")
	}

	// Round trip of an empty bitmap stays empty.
	rt, _, err := FromBytes(New().AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !rt.IsEmpty() {
		t.Fatal("deserialized empty bitmap not empty")
	}
}

// TestFromBytesDropsEmptyContainers feeds FromBytes a hand-built stream
// holding an empty array container: the value set is empty, so IsEmpty
// must hold even though the wire stream declared a container.
func TestFromBytesDropsEmptyContainers(t *testing.T) {
	var src []byte
	src = binary.LittleEndian.AppendUint16(src, 1) // one container
	src = binary.LittleEndian.AppendUint16(src, 0) // key 0
	src = append(src, 0)                           // kindArray
	src = binary.LittleEndian.AppendUint16(src, 0) // card 0
	b, used, err := FromBytes(src)
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if used != len(src) {
		t.Fatalf("consumed %d of %d bytes", used, len(src))
	}
	if !b.IsEmpty() || b.Cardinality() != 0 {
		t.Fatal("empty container leaked into the bitmap")
	}
}
