// Package pde implements Pseudodecimal Encoding (§4 of the BtrBlocks
// paper): a lossless compression transform for IEEE 754 doubles that
// rewrites each value as a pair of small integers — significant digits
// (with sign) and a decimal exponent — such that digits * 10^-exp
// reproduces the exact input bits. Doubles that have no such compact
// decimal representation (high-precision values, ±Inf, NaN, -0.0) are kept
// verbatim as "patches" tracked by an exception bitmap.
package pde

import "math"

const (
	// MaxExponent is the largest decimal exponent the encoder probes
	// (10^-22 is the last power of ten exactly representable as a double).
	MaxExponent = 22
	// ExceptionExponent marks a value stored as a patch.
	ExceptionExponent = 23
)

// frac10[e] == 10^-e. Dividing by a power of ten during encoding and
// multiplying during decoding must use the identical constant so the
// round trip is bit-identical; a static table also avoids recomputation
// (footnote 1 in the paper).
var frac10 = [MaxExponent + 1]float64{
	1.0, 0.1, 0.01, 0.001, 0.0001, 0.00001, 0.000001,
	1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12, 1e-13, 1e-14,
	1e-15, 1e-16, 1e-17, 1e-18, 1e-19, 1e-20, 1e-21, 1e-22,
}

// Decimal is the pseudodecimal form of a single double. If Exp ==
// ExceptionExponent the value could not be encoded and Patch holds the
// original double.
type Decimal struct {
	Digits int32
	Exp    int32
	Patch  float64
}

// EncodeSingle converts one double into its pseudodecimal representation
// (Listing 2 of the paper). ok is false when the value must be patched.
func EncodeSingle(input float64) (d Decimal, ok bool) {
	neg := input < 0
	dbl := input
	if neg {
		dbl = -input
	}
	// -0.0 would encode as +0.0 (sign lives in the digits integer),
	// so it must be patched to stay bit-identical. NaN fails every
	// comparison below and ±Inf never multiplies back exactly, so both
	// fall through to the patch path naturally; the explicit signbit
	// check is only needed for the negative-zero overload.
	if input == 0 && math.Signbit(input) {
		return Decimal{Exp: ExceptionExponent, Patch: input}, false
	}
	for exp := 0; exp <= MaxExponent; exp++ {
		cd := dbl / frac10[exp]
		digits := math.Round(cd)
		if digits > math.MaxInt32 {
			break // digits no longer fit in 32 bits; larger exp only grows them
		}
		if digits*frac10[exp] == dbl {
			di := int32(digits)
			if neg {
				di = -di
			}
			return Decimal{Digits: di, Exp: int32(exp)}, true
		}
	}
	return Decimal{Exp: ExceptionExponent, Patch: input}, false
}

// DecodeSingle reconstructs the double for an encoded (non-patch) Decimal.
func DecodeSingle(d Decimal) float64 {
	digits := d.Digits
	neg := digits < 0
	if neg {
		digits = -digits
	}
	v := float64(digits) * frac10[d.Exp]
	if neg {
		v = -v
	}
	return v
}

// Encode converts a block of doubles into three parallel outputs: the
// significant digits, the exponents (ExceptionExponent for patches), and
// the patch values in input order. patchIdx receives the index of every
// patched position. The digit/exponent slices always have len(src) entries
// so downstream cascades see aligned columns.
func Encode(src []float64) (digits, exps []int32, patches []float64, patchIdx []uint32) {
	digits = make([]int32, len(src))
	exps = make([]int32, len(src))
	for i, v := range src {
		d, ok := EncodeSingle(v)
		if !ok {
			exps[i] = ExceptionExponent
			patches = append(patches, v)
			patchIdx = append(patchIdx, uint32(i))
			continue
		}
		digits[i] = d.Digits
		exps[i] = d.Exp
	}
	return digits, exps, patches, patchIdx
}

// Decode reconstructs the original doubles from Encode's outputs,
// appending to dst. The patch positions must be sorted ascending (Encode
// produces them that way). Mirroring §5 of the paper, the hot path decodes
// four values per iteration and only falls back to the patch-aware scalar
// path for groups that contain an exception.
func Decode(dst []float64, digits, exps []int32, patches []float64, patchIdx []uint32) []float64 {
	n := len(digits)
	out := len(dst)
	dst = append(dst, make([]float64, n)...)
	o := dst[out:]
	pi := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		// Fast path: a branch-free check whether this group of four has
		// any exception, analogous to the vectorized bitmap probe.
		if exps[i]|exps[i+1]|exps[i+2]|exps[i+3] < ExceptionExponent {
			o[i] = decodeOne(digits[i], exps[i])
			o[i+1] = decodeOne(digits[i+1], exps[i+1])
			o[i+2] = decodeOne(digits[i+2], exps[i+2])
			o[i+3] = decodeOne(digits[i+3], exps[i+3])
			continue
		}
		for j := i; j < i+4; j++ {
			if exps[j] == ExceptionExponent {
				o[j] = patches[pi]
				pi++
			} else {
				o[j] = decodeOne(digits[j], exps[j])
			}
		}
	}
	for ; i < n; i++ {
		if exps[i] == ExceptionExponent {
			o[i] = patches[pi]
			pi++
		} else {
			o[i] = decodeOne(digits[i], exps[i])
		}
	}
	_ = patchIdx
	return dst
}

func decodeOne(digits, exp int32) float64 {
	if digits < 0 {
		return -(float64(-digits) * frac10[exp])
	}
	return float64(digits) * frac10[exp]
}

// DecodeScalar is the naive per-element decoder used for the §6.8
// scalar-ablation experiments.
func DecodeScalar(dst []float64, digits, exps []int32, patches []float64) []float64 {
	pi := 0
	for i := range digits {
		if exps[i] == ExceptionExponent {
			dst = append(dst, patches[pi])
			pi++
			continue
		}
		dst = append(dst, decodeOne(digits[i], exps[i]))
	}
	return dst
}
