package pde

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeSingleExamples(t *testing.T) {
	// The paper's running examples.
	d, ok := EncodeSingle(3.25)
	if !ok || d.Digits != 325 || d.Exp != 2 {
		t.Fatalf("3.25 -> (%d,%d), want (325,2)", d.Digits, d.Exp)
	}
	// 0.99 is stored as 0.98999...; (99, 2) must still suffice.
	d, ok = EncodeSingle(0.99)
	if !ok || d.Digits != 99 || d.Exp != 2 {
		t.Fatalf("0.99 -> (%d,%d), want (99,2)", d.Digits, d.Exp)
	}
	d, ok = EncodeSingle(-6.425)
	if !ok || d.Digits != -6425 || d.Exp != 3 {
		t.Fatalf("-6.425 -> (%d,%d), want (-6425,3)", d.Digits, d.Exp)
	}
	d, ok = EncodeSingle(0)
	if !ok || d.Digits != 0 || d.Exp != 0 {
		t.Fatalf("0 -> (%d,%d), want (0,0)", d.Digits, d.Exp)
	}
}

func TestSpecialValuesArePatched(t *testing.T) {
	for _, v := range []float64{
		math.Copysign(0, -1), // -0.0
		math.Inf(1), math.Inf(-1),
		math.NaN(),
		5.5e-42,
		1e300,
		math.Pi,
		float64(math.MaxInt32) * 10, // digits overflow at exp 0 and beyond
	} {
		if _, ok := EncodeSingle(v); ok {
			t.Fatalf("%v should be a patch", v)
		}
	}
}

func TestBoundaryDigits(t *testing.T) {
	// Largest representable digits value must encode; one above must not.
	d, ok := EncodeSingle(float64(math.MaxInt32))
	if !ok || d.Digits != math.MaxInt32 || d.Exp != 0 {
		t.Fatalf("MaxInt32: got (%d,%d) ok=%v", d.Digits, d.Exp, ok)
	}
	if d, ok = EncodeSingle(-float64(math.MaxInt32)); !ok || d.Digits != -math.MaxInt32 {
		t.Fatalf("-MaxInt32: got (%d,%d) ok=%v", d.Digits, d.Exp, ok)
	}
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestRoundTripBitExact(t *testing.T) {
	src := []float64{
		3.5, 3.5, 18, 18, 3.5, 3.5,
		0.989999999999999991118215802999, // 0.99 as stored
		-0.0, 0.0, math.NaN(), math.Inf(1), math.Inf(-1),
		5.5e-42, 1e22, 83.2833, 3.05, 9.5999,
		-123.456, math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	digits, exps, patches, idx := Encode(src)
	if len(digits) != len(src) || len(exps) != len(src) {
		t.Fatal("aligned outputs must match input length")
	}
	if len(patches) != len(idx) {
		t.Fatal("patch values and indexes must align")
	}
	dec := Decode(nil, digits, exps, patches, idx)
	for i := range src {
		if !bitsEqual(dec[i], src[i]) {
			t.Fatalf("value %d: %x != %x (%v vs %v)",
				i, math.Float64bits(dec[i]), math.Float64bits(src[i]), dec[i], src[i])
		}
	}
	// Scalar ablation decoder must agree.
	dec2 := DecodeScalar(nil, digits, exps, patches)
	for i := range src {
		if !bitsEqual(dec2[i], src[i]) {
			t.Fatalf("scalar decode value %d mismatch", i)
		}
	}
}

func TestExponentBounds(t *testing.T) {
	src := []float64{1e-22, 1e-23, 12345.6789}
	digits, exps, _, _ := Encode(src)
	if exps[0] != 22 || digits[0] != 1 {
		t.Fatalf("1e-22 -> (%d,%d), want (1,22)", digits[0], exps[0])
	}
	for i, e := range exps {
		if e < 0 || e > ExceptionExponent {
			t.Fatalf("exponent %d out of bounds at %d", e, i)
		}
	}
}

func TestPricingDataEncodesCompactly(t *testing.T) {
	// Monetary values like $3.25, $0.99: the scheme's motivating case.
	rng := rand.New(rand.NewSource(21))
	src := make([]float64, 64000)
	for i := range src {
		src[i] = float64(rng.Intn(10000)) / 100
	}
	digits, exps, patches, idx := Encode(src)
	if len(patches) != 0 {
		t.Fatalf("pricing data should have no patches, got %d", len(patches))
	}
	dec := Decode(nil, digits, exps, patches, idx)
	for i := range src {
		if !bitsEqual(dec[i], src[i]) {
			t.Fatalf("value %d mismatch", i)
		}
	}
	// Most prices should find a small exponent (x.yz -> (xyz, 2)); a few
	// need a larger one because e.g. 81.1/0.1 rounds before it matches
	// bit-exactly. The encoder always picks the smallest exact exponent.
	small := 0
	for _, e := range exps {
		if e <= 2 {
			small++
		}
	}
	if float64(small) < 0.8*float64(len(exps)) {
		t.Fatalf("only %d/%d prices found exp <= 2", small, len(exps))
	}
}

func TestQuickBitExact(t *testing.T) {
	f := func(raw []uint64) bool {
		src := make([]float64, len(raw))
		for i, b := range raw {
			src[i] = math.Float64frombits(b)
		}
		digits, exps, patches, idx := Encode(src)
		dec := Decode(nil, digits, exps, patches, idx)
		if len(dec) != len(src) {
			return false
		}
		for i := range src {
			if !bitsEqual(dec[i], src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecimalDoubles(t *testing.T) {
	// Doubles that come from small decimals must always encode (no patch).
	f := func(mantissa int32, exp8 uint8) bool {
		exp := int(exp8 % (MaxExponent + 1))
		if mantissa == math.MinInt32 {
			mantissa++
		}
		v := float64(mantissa) * frac10[exp]
		if v == 0 && math.Signbit(v) {
			return true // -0.0 from mantissa<0 rounding; patched by design
		}
		d, ok := EncodeSingle(v)
		if !ok {
			return false
		}
		return bitsEqual(DecodeSingle(d), v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	src := make([]float64, 64000)
	for i := range src {
		src[i] = float64(rng.Intn(100000)) / 100
	}
	digits, exps, patches, idx := Encode(src)
	dst := make([]float64, 0, len(src))
	b.SetBytes(int64(len(src) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Decode(dst[:0], digits, exps, patches, idx)
	}
}
