// Package pbi generates a deterministic synthetic stand-in for the Public
// BI Benchmark (Ghita et al., CIDR 2020), the 43-table real-world corpus
// the paper evaluates on. The real data cannot be shipped, so this
// generator reproduces the distributional features the paper identifies
// as driving its results (see DESIGN.md §4): a string-heavy volume mix,
// structured strings with shared prefixes, heavy-hitter skew with
// exponentially decaying tails, long runs from denormalized joins,
// one-value columns, two-decimal pricing doubles, PDE-hostile
// high-precision coordinates, and NULL-heavy columns. The named columns
// of Table 3 and Table 4 are generated individually with the
// characteristics the paper reports for them.
package pbi

import (
	"fmt"
	"math"
	"math/rand"

	"btrblocks"
	"btrblocks/coldata"
	"btrblocks/internal/pde"
)

// Dataset is one generated table: a name and its columns.
type Dataset struct {
	Name  string
	Chunk btrblocks.Chunk
}

// NamedColumn is one generated column with its provenance.
type NamedColumn struct {
	Dataset string
	Name    string
	Col     btrblocks.Column
}

// ---- primitive generators ----

var cities = []string{
	"PHOENIX", "RALEIGH", "BETHESDA", "ATHENS", "CURITIBA", "MACEIO",
	"NEW YORK", "SAO PAULO", "AUSTIN", "BOSTON", "SEATTLE", "DENVER",
	"PORTLAND", "CHICAGO", "HOUSTON", "MIAMI", "ATLANTA", "DETROIT",
}

var streets = []string{
	"E MAYO BLVD", "W MAIN ST", "N CENTRAL AVE", "S BROADWAY",
	"OAK STREET", "ELM AVENUE", "PARK ROAD", "LAKE DRIVE",
}

var words = []string{
	"the", "of", "and", "data", "report", "total", "value", "state",
	"federal", "county", "service", "provider", "annual", "quarterly",
	"program", "health", "public", "energy", "school", "transport",
}

// zipfIndex draws an index in [0, n) with a heavy-hitter distribution:
// index 0 dominates and the tail decays exponentially — the "one dominant
// value" pattern §2.2 reports for real columns.
func zipfIndex(rng *rand.Rand, n int) int {
	for i := 0; i < n-1; i++ {
		if rng.Float64() < 0.5 {
			return i
		}
	}
	return n - 1
}

func oneValueInts(n int, v int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func runInts(rng *rand.Rand, n, card, minRun, maxRun int) []int32 {
	out := make([]int32, 0, n)
	for len(out) < n {
		v := int32(rng.Intn(card))
		l := minRun + rng.Intn(maxRun-minRun+1)
		for k := 0; k < l && len(out) < n; k++ {
			out = append(out, v)
		}
	}
	return out
}

func smallRangeInts(rng *rand.Rand, n, lo, width int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(lo + rng.Intn(width))
	}
	return out
}

// ibgeCodes models Brazilian municipality codes: 7-digit identifiers from
// a moderate dictionary (the Uberlandia/Eixo cod_ibge_da_ue columns).
func ibgeCodes(rng *rand.Rand, n int) []int32 {
	dict := make([]int32, 600)
	for i := range dict {
		dict[i] = int32(1200000 + rng.Intn(4000000))
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = dict[zipfIndex(rng, len(dict))]
	}
	return out
}

// supplyCounts models Medicare TOTAL_DAY_SUPPLY: wide-range positive
// integers with skew toward small values and occasional large outliers.
func supplyCounts(rng *rand.Rand, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		v := math.Exp(rng.Float64() * 10.5)
		out[i] = int32(v)
	}
	return out
}

func price2(rng *rand.Rand, cents int) float64 {
	return float64(rng.Intn(cents)) / 100
}

// cleanPrice draws a two-decimal price whose pseudodecimal form uses
// exponent <= 2 — like real monetary data, which is entered as decimals.
// (Roughly one in eight cents/100 divisions only round-trips bit-exactly
// at a larger exponent; those values would be decimal-looking but not
// decimal-clean and real price columns do not contain them.)
func cleanPrice(rng *rand.Rand, cents int) float64 {
	for {
		v := price2(rng, cents)
		if d, ok := pde.EncodeSingle(v); ok && d.Exp <= 2 {
			return v
		}
	}
}

// pricingDoubles: two-decimal monetary values, high cardinality — the
// Pseudodecimal sweet spot.
func pricingDoubles(rng *rand.Rand, n, maxCents int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = cleanPrice(rng, maxCents)
	}
	return out
}

// runPricingDoubles: pricing data arriving in long runs (denormalized
// joins) — both RLE and PDE compress it, RLE better.
func runPricingDoubles(rng *rand.Rand, n, card, minRun, maxRun int) []float64 {
	dict := make([]float64, card)
	for i := range dict {
		dict[i] = price2(rng, 10_000_00)
	}
	out := make([]float64, 0, n)
	for len(out) < n {
		v := dict[rng.Intn(card)]
		l := minRun + rng.Intn(maxRun-minRun+1)
		for k := 0; k < l && len(out) < n; k++ {
			out = append(out, v)
		}
	}
	return out
}

// coordinateDoubles: high-precision longitude-like values — PDE-hostile,
// XOR-codec-friendly (shared high bits, repeated values).
func coordinateDoubles(rng *rand.Rand, n int) []float64 {
	dict := make([]float64, n/4+1)
	for i := range dict {
		dict[i] = -74.0 + rng.Float64()
	}
	out := make([]float64, n)
	for i := range out {
		if rng.Float64() < 0.5 {
			out[i] = dict[rng.Intn(len(dict))]
		} else {
			out[i] = -74.0 + rng.Float64()
		}
	}
	return out
}

// dictDoubles: few distinct doubles, zipf-distributed.
func dictDoubles(rng *rand.Rand, n, card int) []float64 {
	dict := make([]float64, card)
	for i := range dict {
		dict[i] = price2(rng, 100000)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = dict[zipfIndex(rng, card)]
	}
	return out
}

// zeroHeavyDoubles: mostly zero with exponential-tail exceptions — the
// Telco charge columns.
func zeroHeavyDoubles(rng *rand.Rand, n int, zeroFrac float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		if rng.Float64() >= zeroFrac {
			out[i] = price2(rng, 1000000)
		}
	}
	return out
}

// mixedPrecisionDoubles: telephone-minute style values with ~4 decimal
// digits, moderately unique — PDE-decent territory (Telco/TOTAL_MINS_P1).
func mixedPrecisionDoubles(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(rng.Intn(10000000)) / 10000
	}
	return out
}

// phasedInts models within-block distribution drift: an early constant
// phase (e.g. a default value before a feature shipped) followed by
// high-cardinality values. A contiguous sample that lands in one phase
// misjudges the whole block — the failure mode that makes single-range
// sampling lose in Figure 5.
func phasedInts(rng *rand.Rand, n int) []int32 {
	out := make([]int32, n)
	split := n / 3
	for i := split; i < n; i++ {
		out[i] = rng.Int31n(1 << 24)
	}
	return out
}

// phasedStrings: one repeated value early, then unique structured values.
// A contiguous sample in the early phase wildly overestimates dictionary
// compression; the unique tail makes FSST the clear global winner.
func phasedStrings(rng *rand.Rand, n int) coldata.Strings {
	out := coldata.NewStringsBuilder(n, 0)
	split := n / 3
	for i := 0; i < split; i++ {
		out = out.Append("UNKNOWN")
	}
	for i := split; i < n; i++ {
		out = out.Append(fmt.Sprintf("record-%d/%s", i, cities[rng.Intn(len(cities))]))
	}
	return out
}

// freqPhasedDoubles: the first 60% of the block is one constant value
// (a default), the rest incompressible noise. Globally Frequency encoding
// wins clearly; any contiguous sample lands in one phase and picks either
// Dictionary (constant phase) or Uncompressed (noise phase), both far
// from optimal — the sharpest separator between contiguous-range and
// multi-run sampling.
func freqPhasedDoubles(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	split := n * 6 / 10
	for i := 0; i < split; i++ {
		out[i] = 19.99
	}
	for i := split; i < n; i++ {
		out[i] = rng.NormFloat64() * 1e9
	}
	return out
}

// freqPhasedInts is the integer analog of freqPhasedDoubles.
func freqPhasedInts(rng *rand.Rand, n int) []int32 {
	out := make([]int32, n)
	split := n * 6 / 10
	for i := 0; i < split; i++ {
		out[i] = 404
	}
	for i := split; i < n; i++ {
		out[i] = rng.Int31()
	}
	return out
}

// randomDoubles: full-precision uniform — incompressible (CMS/25).
func randomDoubles(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 1e6
	}
	return out
}

func dictStrings(rng *rand.Rand, n int, dict []string) coldata.Strings {
	out := coldata.NewStringsBuilder(n, 0)
	for i := 0; i < n; i++ {
		out = out.Append(dict[zipfIndex(rng, len(dict))])
	}
	return out
}

func runStrings(rng *rand.Rand, n int, dict []string, minRun, maxRun int) coldata.Strings {
	out := coldata.NewStringsBuilder(n, 0)
	for out.Len() < n {
		v := dict[rng.Intn(len(dict))]
		l := minRun + rng.Intn(maxRun-minRun+1)
		for k := 0; k < l && out.Len() < n; k++ {
			out = out.Append(v)
		}
	}
	return out
}

// addressStrings: structured, high-cardinality strings with shared
// vocabulary — Dict+FSST territory (PanCreactomy STREET1).
func addressStrings(rng *rand.Rand, n int) coldata.Strings {
	out := coldata.NewStringsBuilder(n, 0)
	for i := 0; i < n; i++ {
		out = out.Append(fmt.Sprintf("%d %s", 100+rng.Intn(9900), streets[rng.Intn(len(streets))]))
	}
	return out
}

func cityStrings(rng *rand.Rand, n int, nullFrac float64) (coldata.Strings, *btrblocks.NullMask) {
	out := coldata.NewStringsBuilder(n, 0)
	var nulls *btrblocks.NullMask
	for i := 0; i < n; i++ {
		if rng.Float64() < nullFrac {
			if nulls == nil {
				nulls = btrblocks.NewNullMask()
			}
			nulls.SetNull(i)
			out = out.Append("null")
			continue
		}
		out = out.Append(cities[zipfIndex(rng, len(cities))])
	}
	return out, nulls
}

func urlStrings(rng *rand.Rand, n, card int) coldata.Strings {
	dict := make([]string, card)
	for i := range dict {
		dict[i] = fmt.Sprintf("https://public.tableau.com/views/workbook-%d/sheet-%d?lang=en", rng.Intn(card/2+1), i%17)
	}
	out := coldata.NewStringsBuilder(n, 0)
	for i := 0; i < n; i++ {
		out = out.Append(dict[rng.Intn(card)])
	}
	return out
}

func commentStrings(rng *rand.Rand, n, nWords int) coldata.Strings {
	out := coldata.NewStringsBuilder(n, 0)
	for i := 0; i < n; i++ {
		s := ""
		for w := 0; w < 2+rng.Intn(nWords); w++ {
			if w > 0 {
				s += " "
			}
			s += words[rng.Intn(len(words))]
		}
		out = out.Append(s)
	}
	return out
}

// ---- Table 3 / §6.5 named double columns ----

// Table3Columns generates the 12 large Public BI double columns of Table 3
// with the per-column characteristics the paper's results imply: run
// lengths, cardinality, decimal precision and outlier structure.
func Table3Columns(rows int, seed int64) []NamedColumn {
	rng := rand.New(rand.NewSource(seed))
	mk := func(ds, name string, vals []float64) NamedColumn {
		return NamedColumn{Dataset: ds, Name: name, Col: btrblocks.DoubleColumn(ds+"/"+name, vals)}
	}
	return []NamedColumn{
		// high-cardinality large decimals; PDE mild win over dict
		mk("CommonGovernment", "10", pricingDoubles(rng, rows, 2_000_000_000)),
		// long runs of few pricing values: RLE >> PDE >> rest
		mk("CommonGovernment", "26", runPricingDoubles(rng, rows, 40, 100, 400)),
		// medium runs of pricing values
		mk("CommonGovernment", "30", runPricingDoubles(rng, rows, 400, 4, 16)),
		// high-cardinality small-precision decimals, no runs: PDE best
		mk("CommonGovernment", "31", pricingDoubles(rng, rows, 100_000)),
		// very long runs: RLE best, PDE second
		mk("CommonGovernment", "40", runPricingDoubles(rng, rows, 25, 300, 900)),
		// near-random values with moderate precision: everything ~1-2x
		mk("Arade", "4", mixedPrecisionDoubles(rng, rows)),
		// longitude coordinates: PDE fails, XOR codecs win
		mk("NYC", "29", coordinateDoubles(rng, rows)),
		// recurring values + noise: chimp128/dict moderate
		mk("CMSProvider", "1", dictDoubles(rng, rows, rows/8)),
		// moderate-cardinality pricing: PDE > dict
		mk("CMSProvider", "9", pricingDoubles(rng, rows, 40_000_00)),
		// incompressible noise
		mk("CMSProvider", "25", randomDoubles(rng, rows)),
		mk("Medicare1", "1", dictDoubles(rng, rows, rows/8)),
		mk("Medicare1", "9", pricingDoubles(rng, rows, 50_000_00)),
	}
}

// ---- Table 4 named columns ----

// Table4Columns generates the random column sample of Table 4 with each
// column's type and distribution shape.
func Table4Columns(rows int, seed int64) []NamedColumn {
	rng := rand.New(rand.NewSource(seed))
	out := []NamedColumn{}
	add := func(ds, name string, col btrblocks.Column) {
		col.Name = ds + "/" + name
		out = append(out, NamedColumn{Dataset: ds, Name: name, Col: col})
	}

	// strings
	libdom, nulls := cityStrings(rng, rows, 0.9) // almost all null
	c := btrblocks.StringsColumn("", libdom)
	c.Nulls = nulls
	add("SalariesFrance", "LIBDOM1", c)
	add("MulheresMil", "ped", btrblocks.StringsColumn("", dictStrings(rng, rows, []string{"", "S", "N"})))
	add("Redfin2", "property_type", btrblocks.StringsColumn("", runStrings(rng, rows, []string{"All Residential", "Condo", "Single Family", "Townhouse"}, 50, 400)))
	add("Motos", "Medio", btrblocks.StringsColumn("", dictStrings(rng, rows, []string{"CABLE", "CABLE."})))
	add("NYC", "Community Board", btrblocks.StringsColumn("", dictStrings(rng, rows, boroughBoards())))
	add("PanCreactomy1", "N_STREET1", btrblocks.StringsColumn("", addressStrings(rng, rows)))
	pc, pn := cityStrings(rng, rows, 0.1)
	c = btrblocks.StringsColumn("", pc)
	c.Nulls = pn
	add("Provider", "nppes_provider_city", c)
	pc2, pn2 := cityStrings(rng, rows, 0.1)
	c = btrblocks.StringsColumn("", pc2)
	c.Nulls = pn2
	add("PanCreactomy1", "N_CITY", c)
	add("Uberlandia", "municipio_da_ue", btrblocks.StringsColumn("", dictStrings(rng, rows, []string{"Maceió", "Curitiba", "Uberlândia", "São Paulo", "Belo Horizonte", "Recife"})))

	// integers
	add("RealEstate1", "New Build?", btrblocks.IntColumn("", oneValueInts(rows, 0)))
	add("Medicare1", "TOTAL_DAY_SUPPLY", btrblocks.IntColumn("", supplyCounts(rng, rows)))
	add("Uberlandia", "cod_ibge_da_ue", btrblocks.IntColumn("", ibgeCodes(rng, rows)))
	add("Eixo", "cod_ibge_da_ue", btrblocks.IntColumn("", ibgeCodes(rng, rows)))

	// doubles
	add("Telco", "CHARGD_SMS_P3", btrblocks.DoubleColumn("", zeroHeavyDoubles(rng, rows, 0.85)))
	add("Telco", "TOTA_OUTGOING_REV_P3", btrblocks.DoubleColumn("", zeroHeavyDoubles(rng, rows, 0.8)))
	add("Telco", "RECHRG_USED_P1", btrblocks.DoubleColumn("", dictDoubles(rng, rows, rows/3)))
	add("Motos", "InversionQ", btrblocks.DoubleColumn("", zeroHeavyDoubles(rng, rows, 0.7)))
	add("Telco", "TOTAL_MINS_P1", btrblocks.DoubleColumn("", mixedPrecisionDoubles(rng, rows)))

	rm, rn := nullableDoubles(rng, rows, 0.6)
	c = btrblocks.DoubleColumn("", rm)
	c.Nulls = rn
	add("Redfin4", "median_sale_price_mom", c)
	return out
}

func boroughBoards() []string {
	var out []string
	for _, b := range []string{"BRONX", "QUEENS", "BROOKLYN", "MANHATTAN", "STATEN ISLAND"} {
		for i := 1; i <= 12; i++ {
			out = append(out, fmt.Sprintf("%02d %s", i, b))
		}
	}
	return out
}

func nullableDoubles(rng *rand.Rand, n int, nullFrac float64) ([]float64, *btrblocks.NullMask) {
	out := make([]float64, n)
	nulls := btrblocks.NewNullMask()
	for i := range out {
		if rng.Float64() < nullFrac {
			nulls.SetNull(i)
			continue
		}
		out[i] = float64(rng.Intn(2000)-1000) / 1000
	}
	return out, nulls
}

// ---- the corpus ----

// corpusSpec lists the generated datasets. Sizes are weighted so the
// volume mix approximates the paper's 71.5% strings / 14.4% doubles /
// 14.1% integers (Table 2, PBI column).
var corpusNames = []string{
	"Arade", "Bimbo", "CMSProvider", "CityMaxCapita", "CommonGovernment",
	"Corporations", "Eixo", "Euro2016", "Food", "Generico", "HashTags",
	"Hatred", "MLB", "MedPayment1", "Medicare1", "Motos", "MulheresMil",
	"NYC", "PanCreactomy1", "PhysicianCommon", "Physicians", "Provider",
	"RealEstate1", "Redfin1", "Redfin2", "Redfin3", "Redfin4", "Rentabilidad",
	"Romance", "SalariesFrance", "TableroSistemaPenal", "Taxpayer", "Telco",
	"TrainsUK1", "TrainsUK2", "USCensus", "Uberlandia", "Wins", "YaleLanguages",
}

// Largest5Names are the stand-ins for the five largest PBI workbooks used
// by Figure 1 and Table 5.
var Largest5Names = []string{"CommonGovernment", "Generico", "Medicare1", "Physicians", "CMSProvider"}

// Corpus generates the full synthetic PBI corpus with rowsPerTable rows
// per dataset. Generation is deterministic for a seed.
func Corpus(rowsPerTable int, seed int64) []Dataset {
	out := make([]Dataset, 0, len(corpusNames))
	for i, name := range corpusNames {
		out = append(out, Dataset{
			Name:  name,
			Chunk: genDataset(name, rowsPerTable, seed+int64(i)*1000),
		})
	}
	return out
}

// Largest5 generates only the five largest datasets (for the S3
// experiments), with proportionally more rows.
func Largest5(rowsPerTable int, seed int64) []Dataset {
	out := make([]Dataset, 0, 5)
	for i, name := range Largest5Names {
		out = append(out, Dataset{
			Name:  name,
			Chunk: genDataset(name, rowsPerTable, seed+int64(i)*7777),
		})
	}
	return out
}

// genDataset builds one table with the string-heavy column mix.
func genDataset(name string, rows int, seed int64) btrblocks.Chunk {
	rng := rand.New(rand.NewSource(seed))
	var cols []btrblocks.Column

	addStr := func(n string, s coldata.Strings, nulls *btrblocks.NullMask) {
		c := btrblocks.StringsColumn(name+"/"+n, s)
		c.Nulls = nulls
		cols = append(cols, c)
	}

	// Strings: ~6 columns covering the observed shapes.
	addStr("category", dictStrings(rng, rows, cities[:6+rng.Intn(8)]), nil)
	addStr("status", runStrings(rng, rows, []string{"ACTIVE", "CLOSED", "PENDING", "UNKNOWN"}, 20, 200), nil)
	addStr("url", urlStrings(rng, rows, 200+rng.Intn(3000)), nil)
	addStr("address", addressStrings(rng, rows), nil)
	cs, cn := cityStrings(rng, rows, 0.15)
	addStr("city", cs, cn)
	addStr("comment", commentStrings(rng, rows, 6), nil)

	// Integers: keys with runs, small ranges, a one-value column.
	cols = append(cols,
		btrblocks.IntColumn(name+"/id_run", runInts(rng, rows, rows/50+2, 2, 30)),
		btrblocks.IntColumn(name+"/year", smallRangeInts(rng, rows, 1990, 35)),
		btrblocks.IntColumn(name+"/flag", oneValueInts(rows, int32(rng.Intn(2)))),
	)

	// Doubles: pricing, zero-heavy, dictionary-like.
	cols = append(cols,
		btrblocks.DoubleColumn(name+"/amount", pricingDoubles(rng, rows, 5_000_000)),
		btrblocks.DoubleColumn(name+"/rate", dictDoubles(rng, rows, 50+rng.Intn(500))),
		btrblocks.DoubleColumn(name+"/charge", zeroHeavyDoubles(rng, rows, 0.7+rng.Float64()*0.25)),
	)

	// Phase-shifted columns: real tables drift within a block (defaults
	// before a feature existed, appended time ranges). These are what
	// separate the sampling strategies of Figure 5. Alternate the drift
	// shape across datasets so drift stays a minority of the corpus.
	if len(name)%2 == 0 {
		addStr("phase_label", phasedStrings(rng, rows), nil)
		cols = append(cols, btrblocks.IntColumn(name+"/phase_id", phasedInts(rng, rows)))
	} else {
		cols = append(cols,
			btrblocks.IntColumn(name+"/default_code", freqPhasedInts(rng, rows)),
			btrblocks.DoubleColumn(name+"/default_reading", freqPhasedDoubles(rng, rows)),
		)
	}
	return btrblocks.Chunk{Columns: cols}
}
