package pbi

import (
	"testing"

	"btrblocks"
)

func TestCorpusShape(t *testing.T) {
	corpus := Corpus(2000, 1)
	if len(corpus) != len(corpusNames) {
		t.Fatalf("%d datasets, want %d", len(corpus), len(corpusNames))
	}
	for _, ds := range corpus {
		if ds.Chunk.NumRows() != 2000 {
			t.Fatalf("%s has %d rows", ds.Name, ds.Chunk.NumRows())
		}
		for _, col := range ds.Chunk.Columns {
			if col.Len() != 2000 {
				t.Fatalf("%s/%s has %d rows", ds.Name, col.Name, col.Len())
			}
		}
	}
}

func TestCorpusIsStringHeavy(t *testing.T) {
	// §6.1: PBI is ~71.5% strings by volume; the stand-in corpus must be
	// clearly string-dominated too.
	corpus := Corpus(5000, 2)
	byType := map[btrblocks.Type]int{}
	total := 0
	for _, ds := range corpus {
		for _, col := range ds.Chunk.Columns {
			byType[col.Type] += col.UncompressedBytes()
			total += col.UncompressedBytes()
		}
	}
	strFrac := float64(byType[btrblocks.TypeString]) / float64(total)
	if strFrac < 0.5 || strFrac > 0.9 {
		t.Fatalf("string volume fraction %.2f outside [0.5, 0.9]", strFrac)
	}
}

func TestDeterminism(t *testing.T) {
	a := Corpus(1000, 7)
	b := Corpus(1000, 7)
	for i := range a {
		for ci := range a[i].Chunk.Columns {
			ca, cb := a[i].Chunk.Columns[ci], b[i].Chunk.Columns[ci]
			switch ca.Type {
			case btrblocks.TypeInt:
				for j := range ca.Ints {
					if ca.Ints[j] != cb.Ints[j] {
						t.Fatalf("nondeterministic int at %s[%d]", ca.Name, j)
					}
				}
			case btrblocks.TypeString:
				if !ca.Strings.Equal(cb.Strings) {
					t.Fatalf("nondeterministic strings at %s", ca.Name)
				}
			}
		}
	}
}

func TestTable3ColumnCharacteristics(t *testing.T) {
	cols := Table3Columns(64000, 3)
	if len(cols) != 12 {
		t.Fatalf("%d table-3 columns", len(cols))
	}
	byName := map[string]btrblocks.Column{}
	for _, nc := range cols {
		if nc.Col.Len() != 64000 {
			t.Fatalf("%s/%s wrong length", nc.Dataset, nc.Name)
		}
		byName[nc.Dataset+"/"+nc.Name] = nc.Col
	}
	// Gov/26 and Gov/40 must have long runs; Gov/31 must not.
	runLen := func(col btrblocks.Column) float64 {
		runs := 1
		for i := 1; i < len(col.Doubles); i++ {
			if col.Doubles[i] != col.Doubles[i-1] {
				runs++
			}
		}
		return float64(len(col.Doubles)) / float64(runs)
	}
	if r := runLen(byName["CommonGovernment/26"]); r < 50 {
		t.Fatalf("Gov/26 avg run %.1f, want long runs", r)
	}
	if r := runLen(byName["CommonGovernment/31"]); r > 1.5 {
		t.Fatalf("Gov/31 avg run %.1f, want no runs", r)
	}
}

func TestTable4ColumnsIncludeExpectedNames(t *testing.T) {
	cols := Table4Columns(10000, 4)
	want := map[string]bool{
		"RealEstate1/New Build?":        false,
		"Motos/Medio":                   false,
		"SalariesFrance/LIBDOM1":        false,
		"Telco/TOTAL_MINS_P1":           false,
		"Redfin4/median_sale_price_mom": false,
	}
	for _, nc := range cols {
		key := nc.Dataset + "/" + nc.Name
		if _, ok := want[key]; ok {
			want[key] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("missing column %s", k)
		}
	}
	// New Build? is the all-one-value column
	for _, nc := range cols {
		if nc.Dataset == "RealEstate1" {
			for _, v := range nc.Col.Ints {
				if v != 0 {
					t.Fatal("New Build? must be all zeros")
				}
			}
		}
	}
}

func TestLargest5(t *testing.T) {
	ds := Largest5(1000, 5)
	if len(ds) != 5 {
		t.Fatalf("%d datasets", len(ds))
	}
	for i, d := range ds {
		if d.Name != Largest5Names[i] {
			t.Fatalf("dataset %d = %s", i, d.Name)
		}
	}
}
