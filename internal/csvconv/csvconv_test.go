package csvconv

import (
	"strings"
	"testing"

	"btrblocks"
)

const sampleCSV = `id,price,city
1,3.25,PHOENIX
2,0.99,RALEIGH
3,,BETHESDA
,18.5,null
5,-6.425,ATHENS
`

func parseSample(t *testing.T) *btrblocks.Chunk {
	t.Helper()
	chunk, err := ReadChunk(strings.NewReader(sampleCSV),
		[]btrblocks.Type{btrblocks.TypeInt, btrblocks.TypeDouble, btrblocks.TypeString})
	if err != nil {
		t.Fatal(err)
	}
	return chunk
}

func TestReadChunk(t *testing.T) {
	chunk := parseSample(t)
	if chunk.NumRows() != 5 {
		t.Fatalf("rows = %d", chunk.NumRows())
	}
	id := chunk.Columns[0]
	if id.Name != "id" || id.Ints[0] != 1 || id.Ints[4] != 5 {
		t.Fatalf("id column wrong: %+v", id.Ints)
	}
	if !id.Nulls.IsNull(3) || id.Nulls.NullCount() != 1 {
		t.Fatal("id null handling wrong")
	}
	price := chunk.Columns[1]
	if price.Doubles[0] != 3.25 || price.Doubles[4] != -6.425 {
		t.Fatal("price values wrong")
	}
	if !price.Nulls.IsNull(2) {
		t.Fatal("price null missing")
	}
	city := chunk.Columns[2]
	if city.Strings.At(0) != "PHOENIX" {
		t.Fatal("city wrong")
	}
	if !city.Nulls.IsNull(3) {
		t.Fatal("city 'null' literal should be NULL")
	}
}

func TestRoundTripCSV(t *testing.T) {
	chunk := parseSample(t)
	var sb strings.Builder
	if err := WriteChunk(&sb, chunk); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChunk(strings.NewReader(sb.String()),
		[]btrblocks.Type{btrblocks.TypeInt, btrblocks.TypeDouble, btrblocks.TypeString})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != chunk.NumRows() {
		t.Fatal("row count changed")
	}
	for r := 0; r < 5; r++ {
		if back.Columns[1].Nulls.IsNull(r) != chunk.Columns[1].Nulls.IsNull(r) {
			t.Fatalf("null mask changed at %d", r)
		}
		if !chunk.Columns[1].Nulls.IsNull(r) && back.Columns[1].Doubles[r] != chunk.Columns[1].Doubles[r] {
			t.Fatalf("price changed at %d", r)
		}
	}
}

func TestParseType(t *testing.T) {
	for in, want := range map[string]btrblocks.Type{
		"int": btrblocks.TypeInt, "INTEGER": btrblocks.TypeInt,
		"double": btrblocks.TypeDouble, "float64": btrblocks.TypeDouble,
		"string": btrblocks.TypeString, " text ": btrblocks.TypeString,
	} {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Fatalf("ParseType(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestErrors(t *testing.T) {
	if _, err := ReadChunk(strings.NewReader("a,b\n1,2\n"),
		[]btrblocks.Type{btrblocks.TypeInt}); err == nil {
		t.Fatal("schema arity mismatch accepted")
	}
	if _, err := ReadChunk(strings.NewReader("a\nnotanumber\n"),
		[]btrblocks.Type{btrblocks.TypeInt}); err == nil {
		t.Fatal("bad int accepted")
	}
	if _, err := ReadChunk(strings.NewReader("a\nnotanumber\n"),
		[]btrblocks.Type{btrblocks.TypeDouble}); err == nil {
		t.Fatal("bad double accepted")
	}
}
