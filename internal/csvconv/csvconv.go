// Package csvconv converts CSV data to and from the typed in-memory
// column format — the first step of the paper's compression-speed
// comparison ("from CSV", §6.4) and the input path of the CLI tool.
package csvconv

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"btrblocks"
	"btrblocks/coldata"
)

// ParseType parses a schema type name.
func ParseType(s string) (btrblocks.Type, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "int", "integer", "int32":
		return btrblocks.TypeInt, nil
	case "int64", "bigint", "long", "timestamp":
		return btrblocks.TypeInt64, nil
	case "double", "float", "float64":
		return btrblocks.TypeDouble, nil
	case "string", "str", "text":
		return btrblocks.TypeString, nil
	}
	return 0, fmt.Errorf("csvconv: unknown type %q", s)
}

// ReadChunk parses CSV from r into a chunk. The first record is the
// header (column names); types gives one type per column. Empty cells and
// the literal "null" become NULLs.
func ReadChunk(r io.Reader, types []btrblocks.Type) (*btrblocks.Chunk, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvconv: reading header: %w", err)
	}
	if len(header) != len(types) {
		return nil, fmt.Errorf("csvconv: %d columns in header, %d types", len(header), len(types))
	}
	cols := make([]btrblocks.Column, len(header))
	for i, name := range header {
		cols[i] = btrblocks.Column{Name: name, Type: types[i]}
		if types[i] == btrblocks.TypeString {
			cols[i].Strings = coldata.NewStringsBuilder(0, 0)
		}
	}
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvconv: row %d: %w", row+2, err)
		}
		for i, cell := range rec {
			col := &cols[i]
			isNull := cell == "" || cell == "null" || cell == "NULL"
			if isNull {
				if col.Nulls == nil {
					col.Nulls = btrblocks.NewNullMask()
				}
				col.Nulls.SetNull(row)
			}
			switch col.Type {
			case btrblocks.TypeInt:
				var v int64
				if !isNull {
					v, err = strconv.ParseInt(cell, 10, 32)
					if err != nil {
						return nil, fmt.Errorf("csvconv: row %d col %q: %w", row+2, col.Name, err)
					}
				}
				col.Ints = append(col.Ints, int32(v))
			case btrblocks.TypeInt64:
				var v int64
				if !isNull {
					v, err = strconv.ParseInt(cell, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("csvconv: row %d col %q: %w", row+2, col.Name, err)
					}
				}
				col.Ints64 = append(col.Ints64, v)
			case btrblocks.TypeDouble:
				var v float64
				if !isNull {
					v, err = strconv.ParseFloat(cell, 64)
					if err != nil {
						return nil, fmt.Errorf("csvconv: row %d col %q: %w", row+2, col.Name, err)
					}
				}
				col.Doubles = append(col.Doubles, v)
			case btrblocks.TypeString:
				if isNull {
					col.Strings = col.Strings.Append("")
				} else {
					col.Strings = col.Strings.Append(cell)
				}
			}
		}
		row++
	}
	return &btrblocks.Chunk{Columns: cols}, nil
}

// WriteChunk writes a chunk as CSV with a header row. NULLs are written
// as empty cells.
func WriteChunk(w io.Writer, chunk *btrblocks.Chunk) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(chunk.Columns))
	for i := range chunk.Columns {
		header[i] = chunk.Columns[i].Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rows := chunk.NumRows()
	rec := make([]string, len(chunk.Columns))
	for r := 0; r < rows; r++ {
		for i := range chunk.Columns {
			col := &chunk.Columns[i]
			if col.Nulls.IsNull(r) {
				rec[i] = ""
				continue
			}
			switch col.Type {
			case btrblocks.TypeInt:
				rec[i] = strconv.FormatInt(int64(col.Ints[r]), 10)
			case btrblocks.TypeInt64:
				rec[i] = strconv.FormatInt(col.Ints64[r], 10)
			case btrblocks.TypeDouble:
				rec[i] = strconv.FormatFloat(col.Doubles[r], 'g', -1, 64)
			case btrblocks.TypeString:
				rec[i] = col.Strings.At(r)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ChunkToCSVBytes renders a chunk to CSV in memory (used by the
// compression-speed experiment to measure the "from CSV" path).
func ChunkToCSVBytes(chunk *btrblocks.Chunk) ([]byte, error) {
	var sb strings.Builder
	if err := WriteChunk(&sb, chunk); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}
