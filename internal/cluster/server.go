package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"btrblocks/internal/blockstore"
	"btrblocks/internal/obs"
	"btrblocks/internal/query"
)

// Server is the HTTP surface of a Router. It speaks the blockstore wire
// protocol — the same paths, parameters, and response shapes as a
// single btrserved node — so an unmodified blockstore.Client pointed at
// the router sees one logical store backed by the whole cluster:
//
//	GET  /healthz                      liveness
//	GET  /v1/files[?file=NAME]         merged file metadata (JSON)
//	GET  /v1/raw/NAME                  raw bytes from any replica; honors Range
//	GET  /v1/block?file=N&block=I      block via hedged replica fetch
//	     [&format=json|binary]         (default json; binary = BTBK)
//	GET  /v1/count-eq?file=N&value=V   pushed-down count, replica failover
//	GET  /v1/count-eq?value=V          scatter-gather count over every column
//	GET  /v1/nodes                     per-node health and client counters
//	GET  /v1/spans                     retained router spans (JSON)
//	GET  /metrics                      Prometheus text exposition
//	POST /v1/query                     JSON query plan, scatter-gathered per leaf
//	POST /v1/invalidate/NAME           fan invalidation out to the replicas
type Server struct {
	router *Router
	mux    *http.ServeMux
	log    *slog.Logger
}

// NewServer wraps a router. log may be nil to disable request logging.
func NewServer(r *Router, log *slog.Logger) *Server {
	s := &Server{router: r, mux: http.NewServeMux(), log: log}
	s.handle("/healthz", s.handleHealthz)
	s.handle("/v1/files", s.handleFiles)
	s.handle("/v1/raw/", s.handleRaw)
	s.handle("/v1/block", s.handleBlock)
	s.handle("/v1/count-eq", s.handleCountEq)
	s.handle("/v1/nodes", s.handleNodes)
	s.handle("/v1/spans", s.handleSpans)
	s.handle("/metrics", s.handleMetrics)
	s.handleWith("/v1/query", s.handleQuery, http.MethodPost)
	s.handleWith("/v1/invalidate/", s.handleInvalidate, http.MethodPost)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) handle(route string, h http.HandlerFunc) {
	s.handleWith(route, h, http.MethodGet, http.MethodHead)
}

// handleWith wraps a route with the same middleware shape as btrserved:
// per-route counters and latency, a request ID echoed as X-Request-ID,
// and a server span continuing any inbound W3C traceparent.
func (s *Server) handleWith(route string, h http.HandlerFunc, methods ...string) {
	ep := s.router.metrics.endpoint(route)
	allowed := make(map[string]bool, len(methods))
	for _, m := range methods {
		allowed[m] = true
	}
	s.mux.HandleFunc(route, func(w http.ResponseWriter, r *http.Request) {
		if !allowed[r.Method] {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		ctx := obs.WithRequestID(r.Context(), rid)
		ctx, span := s.router.spans.StartRemote(ctx, "btrrouted"+route, r.Header.Get(obs.TraceparentHeader))
		span.SetAttr("request_id", rid)
		r = r.WithContext(ctx)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)
		ep.latency.Observe(elapsed)
		ep.requests.Add(1)
		if sw.status/100 != 2 && sw.status != http.StatusPartialContent &&
			sw.status != http.StatusNotModified {
			ep.errors.Add(1)
			span.SetError(fmt.Errorf("status %d", sw.status))
		}
		span.SetAttrInt("status", int64(sw.status))
		span.End()
		if s.log != nil {
			s.log.Info("request",
				"request_id", rid,
				"route", route,
				"method", r.Method,
				"path", r.URL.RequestURI(),
				"status", sw.status,
				"duration_us", elapsed.Microseconds(),
			)
		}
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// fail maps a routed error to an HTTP status. When the underlying
// replica responses carry a status (all replicas failed the same way),
// the first one is propagated — a file absent everywhere stays 404 and
// a block damaged on every replica stays 422 — so clients keep the
// single-node failure semantics. Errors with no HTTP cause (no replica
// reachable) map to 502.
func (s *Server) fail(w http.ResponseWriter, err error) {
	var he *blockstore.HTTPError
	if errors.As(err, &he) {
		http.Error(w, err.Error(), he.Status)
		return
	}
	if blockstore.IsEndpointDown(err) {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	http.Error(w, err.Error(), http.StatusBadGateway)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleFiles(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("file"); name != "" {
		meta, err := s.router.FileMeta(r.Context(), name)
		if err != nil {
			s.fail(w, err)
			return
		}
		writeJSON(w, []blockstore.FileMeta{*meta})
		return
	}
	files, err := s.router.Files(r.Context())
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, files)
}

func (s *Server) handleRaw(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/raw/")
	data, err := s.router.Raw(r.Context(), name)
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	// ServeContent provides Range (206) and HEAD on the replica's bytes.
	http.ServeContent(w, r, "", time.Time{}, bytes.NewReader(data))
}

func (s *Server) handleBlock(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("file")
	if name == "" {
		http.Error(w, "missing file parameter", http.StatusBadRequest)
		return
	}
	idx, err := strconv.Atoi(q.Get("block"))
	if err != nil {
		http.Error(w, "missing or bad block parameter", http.StatusBadRequest)
		return
	}
	blk, err := s.router.FetchBlock(r.Context(), name, idx)
	if err != nil {
		s.fail(w, err)
		return
	}
	switch q.Get("format") {
	case "", "json":
		writeJSON(w, blk.Payload())
	case "binary":
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(blk.EncodeBinary())
	default:
		http.Error(w, "format must be json or binary", http.StatusBadRequest)
	}
}

func (s *Server) handleCountEq(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if !q.Has("value") {
		http.Error(w, "missing value parameter", http.StatusBadRequest)
		return
	}
	value := q.Get("value")
	if name := q.Get("file"); name != "" {
		res, err := s.router.CountEq(r.Context(), name, value)
		if err != nil {
			s.fail(w, err)
			return
		}
		writeJSON(w, res)
		return
	}
	res, err := s.router.CountEqScatter(r.Context(), value)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, res)
}

// ClusterStatus is the GET /v1/nodes response.
type ClusterStatus struct {
	Replicas int          `json:"replicas"`
	Nodes    []NodeStatus `json:"nodes"`
}

func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, ClusterStatus{
		Replicas: s.router.mem.Replicas(),
		Nodes:    s.router.mem.Statuses(),
	})
}

func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if !s.router.spans.Enabled() {
		http.Error(w, "span recording disabled", http.StatusNotFound)
		return
	}
	var f obs.SpanFilter
	q := r.URL.Query()
	f.TraceID = q.Get("trace")
	if v := q.Get("min_dur"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			http.Error(w, "bad min_dur parameter", http.StatusBadRequest)
			return
		}
		f.MinDuration = d
	}
	writeJSON(w, s.router.spans.Snapshot(f))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.router.metrics.WriteTo(w)
	s.router.spans.WritePromLines(w, "btrrouted")
}

// handleQuery serves POST /v1/query with single-node semantics: plan
// problems are 400s, a column file absent on every replica is 404, a
// block damaged on every replica is 422, no replica reachable is 502.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, query.MaxPlanBytes))
	if err != nil {
		http.Error(w, "reading plan: "+err.Error(), http.StatusBadRequest)
		return
	}
	p, err := query.ParsePlan(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.router.Query(r.Context(), p)
	if err != nil {
		if query.IsPlanError(err) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.fail(w, err)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/invalidate/")
	if name == "" {
		http.Error(w, "missing file name", http.StatusBadRequest)
		return
	}
	res, err := s.router.Invalidate(r.Context(), name)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, res)
}
