package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"btrblocks"
	"btrblocks/internal/blockstore"
)

// Through the router, every file reads complete and bit-correct even
// though each node only holds its R-way share of the corpus.
func TestRouterFetchesWholeCorpus(t *testing.T) {
	contents, cols := testCorpus(t)
	names := []string{"n1", "n2", "n3"}
	_, perNode := placeCorpus(t, contents, names, 2)
	_, specs := startNodes(t, names, perNode, blockstore.Config{})
	r := newTestRouter(t, specs, Config{Replicas: 2, DisableHedge: true})

	files, err := r.Files(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(contents) {
		t.Fatalf("Files lists %d entries, corpus has %d", len(files), len(contents))
	}
	for name, col := range cols {
		blocks := blockCount(t, contents[name])
		verifyColumn(t, col, blocks, func(b int) (*blockstore.BlockValues, error) {
			return r.FetchBlock(testCtx, name, b)
		})
	}
	if got := r.Metrics().BlockFetches.Load(); got == 0 {
		t.Error("block fetch counter did not move")
	}
}

// Killing one replica's server mid-cluster must not fail any read: the
// router fails over to the surviving replica.
func TestRouterFailoverOnDeadReplica(t *testing.T) {
	contents, cols := testCorpus(t)
	names := []string{"n1", "n2", "n3"}
	ring, perNode := placeCorpus(t, contents, names, 2)
	nodes, specs := startNodes(t, names, perNode, blockstore.Config{})
	r := newTestRouter(t, specs, Config{Replicas: 2, DisableHedge: true, AttemptTimeout: 2 * time.Second})

	const victim = "t/i.btr"
	dead := ring.Place(victim, 2)[0]
	nodes[dead].srv.Close()

	blocks := blockCount(t, contents[victim])
	verifyColumn(t, cols[victim], blocks, func(b int) (*blockstore.BlockValues, error) {
		return r.FetchBlock(testCtx, victim, b)
	})
	if got := r.Metrics().Failovers.Load(); got == 0 {
		t.Error("no failover counted though the primary of some blocks was dead")
	}
	// The pushed-down count fails over the same way.
	res, err := r.CountEq(testCtx, victim, "1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := btrblocks.CountEqualInt32(contents[victim], 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("count through router %d, local %d", res.Count, want)
	}
}

// A replica answering 422 (corrupt) fails over AND triggers a
// cross-replica repair that heals the damaged copy in place.
func TestRouterDamageFailoverAndRepair(t *testing.T) {
	contents, cols := testCorpus(t)
	names := []string{"n1", "n2", "n3"}
	ring, perNode := placeCorpus(t, contents, names, 2)

	const victim = "t/s.btr"
	badBlock := 1
	placed := ring.Place(victim, 2)
	// Rotation makes placed[badBlock % 2] the primary for badBlock, so
	// damaging that copy guarantees the routed read observes the 422.
	damagedNode := placed[badBlock%len(placed)]
	perNode[damagedNode][victim] = flipBlockByte(t, contents[victim], badBlock)

	nodes, specs := startNodes(t, names, perNode, blockstore.Config{QuarantineThreshold: 1})
	r := newTestRouter(t, specs, Config{Replicas: 2, DisableHedge: true})

	// Sanity: the damaged node really refuses the block.
	if _, err := nodes[damagedNode].cl.Block(testCtx, victim, badBlock); !blockstore.IsBlockDamage(err) {
		t.Fatalf("damaged replica served block: %v", err)
	}

	// The routed read is still bit-correct.
	blocks := blockCount(t, contents[victim])
	verifyColumn(t, cols[victim], blocks, func(b int) (*blockstore.BlockValues, error) {
		return r.FetchBlock(testCtx, victim, b)
	})
	m := r.Metrics()
	if m.DamageDetected.Load() == 0 {
		t.Fatal("router read past damage without detecting it")
	}

	// The repair loop pushes the good copy back onto the damaged node.
	waitFor(t, 10*time.Second, "replica heal", func() bool {
		_, err := nodes[damagedNode].cl.Block(testCtx, victim, badBlock)
		return err == nil
	})
	verifyColumn(t, cols[victim], blocks, func(b int) (*blockstore.BlockValues, error) {
		return nodes[damagedNode].cl.Block(testCtx, victim, b)
	})
	if m.RepairsSucceeded.Load() == 0 {
		t.Error("repairs_succeeded is zero after the heal")
	}
}

// The router's HTTP surface keeps single-node error semantics: a file
// absent everywhere stays 404, a bad probe stays 400, and damage on
// every replica stays 422.
func TestRouterServerStatusPropagation(t *testing.T) {
	contents, _ := testCorpus(t)
	names := []string{"n1", "n2", "n3"}
	ring, perNode := placeCorpus(t, contents, names, 2)

	const victim = "t/l.btr"
	// Damage every replica of one block so the routed fetch cannot
	// succeed anywhere.
	for _, ni := range ring.Place(victim, 2) {
		perNode[ni][victim] = flipBlockByte(t, contents[victim], 0)
	}
	_, specs := startNodes(t, names, perNode, blockstore.Config{QuarantineThreshold: 1})
	r := newTestRouter(t, specs, Config{Replicas: 2, DisableHedge: true})
	srv := httptest.NewServer(NewServer(r, nil))
	t.Cleanup(srv.Close)

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, _ := get("/v1/files?file=no/such.btr"); code != http.StatusNotFound {
		t.Errorf("missing file: got %d, want 404", code)
	}
	if code, _ := get("/v1/block?file=no/such.btr&block=0"); code != http.StatusNotFound {
		t.Errorf("block of missing file: got %d, want 404", code)
	}
	if code, _ := get("/v1/count-eq?file=t/i.btr&value=not-an-int"); code != http.StatusBadRequest {
		t.Errorf("bad probe: got %d, want 400", code)
	}
	// Out-of-range blocks are 400 on a single node; the router keeps that.
	if code, _ := get("/v1/block?file=t/i.btr&block=999"); code != http.StatusBadRequest {
		t.Errorf("out-of-range block: got %d, want 400", code)
	}
	code, body := get("/v1/block?file=" + victim + "&block=0")
	if code != http.StatusUnprocessableEntity && code != http.StatusGone {
		t.Errorf("block damaged on every replica: got %d (%s), want 422/410", code, strings.TrimSpace(body))
	}
}

// The scatter-gather count merges per-file pushed-down counts across
// the cluster and matches local ground truth; probe-incompatible
// columns are skipped, not failed.
func TestRouterScatterCountMatchesLocal(t *testing.T) {
	contents, cols := testCorpus(t)
	names := []string{"n1", "n2", "n3"}
	_, perNode := placeCorpus(t, contents, names, 2)
	_, specs := startNodes(t, names, perNode, blockstore.Config{})
	r := newTestRouter(t, specs, Config{Replicas: 2, DisableHedge: true})

	// A string probe asks only the string column.
	probe := cols["t/s.btr"].Strings.At(1)
	sc, err := r.CountEqScatter(testCtx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Partial {
		t.Fatalf("scatter partial: %+v", sc)
	}
	want, err := btrblocks.CountEqualString(contents["t/s.btr"], probe, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Count != want {
		t.Fatalf("scatter %q: got %d, want %d", probe, sc.Count, want)
	}
	if sc.Files != 1 {
		t.Fatalf("string probe scattered to %d files, want 1", sc.Files)
	}

	// An int probe asks the int, bigint, and double columns.
	sc, err = r.CountEqScatter(testCtx, "42")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Partial {
		t.Fatalf("scatter partial: %+v", sc)
	}
	if sc.Files != 4 {
		t.Fatalf("probe 42 scattered to %d files, want 4 (int, bigint, double, string)", sc.Files)
	}
	wantTotal := 0
	for _, name := range []string{"t/i.btr", "t/l.btr", "t/d.btr", "t/s.btr"} {
		res, err := countLocal(contents[name], cols[name].Type, "42")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantTotal += res
	}
	if sc.Count != wantTotal {
		t.Fatalf("scatter 42: got %d, want %d", sc.Count, wantTotal)
	}
	if r.Metrics().ScatterQueries.Load() != 2 {
		t.Errorf("scatter query counter: %d, want 2", r.Metrics().ScatterQueries.Load())
	}
}

func countLocal(data []byte, typ btrblocks.Type, value string) (int, error) {
	switch typ {
	case btrblocks.TypeInt:
		return btrblocks.CountEqualInt32(data, 42, nil)
	case btrblocks.TypeInt64:
		return btrblocks.CountEqualInt64(data, 42, nil)
	case btrblocks.TypeDouble:
		return btrblocks.CountEqualDouble(data, 42, nil)
	default:
		return btrblocks.CountEqualString(data, value, nil)
	}
}

// An unmodified blockstore.Client pointed at the router server sees one
// logical store: listing, meta, raw, blocks, counts, invalidation.
func TestRouterServesBlockstoreWireProtocol(t *testing.T) {
	contents, cols := testCorpus(t)
	names := []string{"n1", "n2", "n3"}
	_, perNode := placeCorpus(t, contents, names, 2)
	_, specs := startNodes(t, names, perNode, blockstore.Config{})
	r := newTestRouter(t, specs, Config{Replicas: 2, DisableHedge: true})
	srv := httptest.NewServer(NewServer(r, nil))
	t.Cleanup(srv.Close)
	cl := blockstore.NewClient(srv.URL)

	if err := cl.Healthz(testCtx); err != nil {
		t.Fatal(err)
	}
	files, err := cl.Files(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(contents) {
		t.Fatalf("client lists %d files, corpus has %d", len(files), len(contents))
	}
	const name = "t/d.btr"
	meta, err := cl.FileMeta(testCtx, name)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Blocks != blockCount(t, contents[name]) {
		t.Fatalf("meta blocks %d, want %d", meta.Blocks, blockCount(t, contents[name]))
	}
	raw, err := cl.Raw(testCtx, name)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(contents[name]) {
		t.Fatal("raw bytes through router differ from the stored file")
	}
	part, err := cl.RawRange(testCtx, name, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if string(part) != string(contents[name][4:20]) {
		t.Fatal("ranged raw bytes differ")
	}
	verifyColumn(t, cols[name], meta.Blocks, func(b int) (*blockstore.BlockValues, error) {
		return cl.Block(testCtx, name, b)
	})
	// JSON block format agrees with the binary one.
	verifyColumn(t, cols[name], meta.Blocks, func(b int) (*blockstore.BlockValues, error) {
		return cl.BlockJSON(testCtx, name, b)
	})
	col := cols[name]
	rows, _, err := cl.ScanColumn(testCtx, name, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rows != col.Len() {
		t.Fatalf("scan rows %d, want %d", rows, col.Len())
	}
	if _, err := cl.Invalidate(testCtx, name); err != nil {
		t.Fatal(err)
	}

	// /v1/nodes reports every member up with client counters.
	resp, err := http.Get(srv.URL + "/v1/nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Replicas != 2 || len(status.Nodes) != 3 {
		t.Fatalf("cluster status: %+v", status)
	}
	for _, n := range status.Nodes {
		if !n.Up {
			t.Errorf("node %s reported down", n.Name)
		}
	}

	// /metrics renders the btrrouted families.
	text, err := cl.MetricsText(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"btrrouted_block_fetches_total",
		"btrrouted_replica_requests_total",
		"btrrouted_http_requests_total",
		"btrrouted_nodes_up",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// The prober flips nodes down and back up, driving the gauge and the
// transition counter.
func TestMembershipProbeTransitions(t *testing.T) {
	contents, _ := testCorpus(t)
	names := []string{"n1", "n2"}
	_, perNode := placeCorpus(t, contents, names, 2)
	nodes, specs := startNodes(t, names, perNode, blockstore.Config{})
	r := newTestRouter(t, specs, Config{Replicas: 2, DisableHedge: true, ProbeTimeout: time.Second})

	mem := r.Membership()
	mem.ProbeOnce(testCtx)
	if got := r.Metrics().NodesUp.Load(); got != 2 {
		t.Fatalf("nodes_up %d, want 2", got)
	}
	nodes[1].srv.Close()
	mem.ProbeOnce(testCtx)
	if got := r.Metrics().NodesUp.Load(); got != 1 {
		t.Fatalf("nodes_up %d after kill, want 1", got)
	}
	if got := r.Metrics().ProbeTransitions.Load(); got != 1 {
		t.Fatalf("probe transitions %d, want 1", got)
	}
	var down *Node
	for _, n := range mem.Nodes() {
		if n.Name == "n2" {
			down = n
		}
	}
	if down.Up() {
		t.Fatal("killed node still reported up")
	}
}
