package cluster

import (
	"context"
	"fmt"
	"time"

	"btrblocks"
	"btrblocks/internal/obs"
)

// Cross-replica repair: when a replica answers a read with 422
// (corrupt) or 410 (quarantined), the router enqueues a repair task.
// The repair worker fetches the file's raw bytes from a healthy
// replica, deep-verifies them locally, and pushes them to the damaged
// node via PUT /v1/repair/NAME — which re-verifies before atomically
// installing, so a racing second corruption cannot displace a good
// copy. This replaces the single-node posture of PR 4 (quarantine and
// wait for an operator) with convergence: the cluster heals itself
// while scans keep succeeding off the other replica.

// repairTask asks the worker to heal one file on one damaged node.
type repairTask struct {
	file string
	node *Node
}

func (t repairTask) key() string { return t.file + "\x00" + t.node.Name }

// enqueueRepair schedules a repair unless the same (file, node) pair is
// already pending. Never blocks: a full queue drops the task (counted),
// and the next damaged read of the file re-enqueues it.
func (r *Router) enqueueRepair(file string, node *Node) {
	t := repairTask{file: file, node: node}
	r.pendingMu.Lock()
	if r.pending[t.key()] {
		r.pendingMu.Unlock()
		return
	}
	r.pending[t.key()] = true
	r.pendingMu.Unlock()
	select {
	case r.repairCh <- t:
		r.metrics.RepairsQueued.Add(1)
	default:
		r.clearPending(t)
		r.metrics.RepairsDropped.Add(1)
		r.log.Warn("repair queue full, task dropped", "file", file, "node", node.Name)
	}
}

func (r *Router) clearPending(t repairTask) {
	r.pendingMu.Lock()
	delete(r.pending, t.key())
	r.pendingMu.Unlock()
}

// repairLoop drains the repair queue until Close.
func (r *Router) repairLoop() {
	for {
		select {
		case <-r.quit:
			return
		case t := <-r.repairCh:
			r.runRepair(t)
		}
	}
}

// runRepair attempts one repair task up to the attempt budget, backing
// off between attempts. The whole task is one root span in the router's
// recorder so the heal shows up next to the scan that triggered it.
func (r *Router) runRepair(t repairTask) {
	defer r.clearPending(t)
	ctx, span := r.spans.StartRoot(context.Background(), "router.repair")
	span.SetAttr("file", t.file)
	span.SetAttr("node", t.node.Name)
	defer span.End()

	var lastErr error
	for attempt := 0; attempt < r.cfg.RepairAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-r.quit:
				span.SetError(fmt.Errorf("router closing"))
				r.metrics.RepairsFailed.Add(1)
				return
			case <-time.After(r.cfg.RepairBackoff):
			}
		}
		actx, cancel := context.WithTimeout(ctx, r.cfg.RepairTimeout)
		bytes, err := r.repairOnce(actx, t)
		cancel()
		if err == nil {
			span.SetAttrInt("bytes", int64(bytes))
			span.SetAttrInt("attempts", int64(attempt+1))
			r.metrics.RepairsSucceeded.Add(1)
			r.log.Info("replica repaired", "file", t.file, "node", t.node.Name, "bytes", bytes)
			return
		}
		lastErr = err
	}
	span.SetError(lastErr)
	r.metrics.RepairsFailed.Add(1)
	r.log.Warn("repair failed", "file", t.file, "node", t.node.Name, "err", lastErr.Error())
}

// repairOnce is one healing attempt: find a donor replica with a copy
// that deep-verifies, then push it to the damaged node. The damaged
// node itself never donates, and a donor whose copy fails verification
// is skipped — two damaged replicas must not trade bad bytes.
func (r *Router) repairOnce(ctx context.Context, t repairTask) (int, error) {
	ctx, span := obs.StartChild(ctx, "repair.attempt")
	defer span.End()
	var lastErr error
	for _, donor := range r.orderFor(t.file, 0) {
		if donor == t.node {
			continue
		}
		data, err := donor.Client.Raw(ctx, t.file)
		if err != nil {
			lastErr = fmt.Errorf("donor %s: %w", donor.Name, err)
			continue
		}
		if rep := btrblocks.Verify(data, &btrblocks.VerifyOptions{Deep: true}); !rep.OK {
			lastErr = fmt.Errorf("donor %s: copy fails verification: %s", donor.Name, firstVerifyError(rep))
			continue
		}
		res, err := t.node.Client.Repair(ctx, t.file, data)
		if err != nil {
			span.SetError(err)
			return 0, fmt.Errorf("push to %s: %w", t.node.Name, err)
		}
		span.SetAttr("donor", donor.Name)
		return res.Bytes, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no donor replica for %s", t.file)
	}
	span.SetError(lastErr)
	return 0, lastErr
}

// firstVerifyError summarizes a failed verification report.
func firstVerifyError(rep *btrblocks.VerifyReport) string {
	if len(rep.Errors) > 0 {
		return rep.Errors[0]
	}
	return "payload damage"
}
