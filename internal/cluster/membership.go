package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"btrblocks/internal/blockstore"
)

// Node is one cluster member: a stable name (the placement key), the
// HTTP endpoint it currently answers on, and the fault-tolerant client
// the router talks to it through. Health is probed periodically by the
// Membership and consulted on every routing decision.
type Node struct {
	Name     string
	Endpoint string
	Client   *blockstore.Client

	up        atomic.Bool
	lastProbe atomic.Int64 // unixnano of the last completed probe
}

// Up reports whether the node's last health probe succeeded. Nodes
// start optimistic (up) so traffic flows before the first probe lands.
func (n *Node) Up() bool { return n.up.Load() }

// NodeStatus is the JSON view of one node (served at /v1/nodes).
type NodeStatus struct {
	Name     string                 `json:"name"`
	Endpoint string                 `json:"endpoint"`
	Up       bool                   `json:"up"`
	Client   blockstore.ClientStats `json:"client"`
}

// ParseNodeSpec splits a "name=url" node spec; a bare URL gets its
// host:port as the name. Names are the consistent-hash placement keys,
// so give nodes explicit stable names whenever endpoints are dynamic.
func ParseNodeSpec(spec string) (name, endpoint string, err error) {
	spec = strings.TrimSpace(spec)
	if i := strings.Index(spec, "="); i >= 0 && !strings.HasPrefix(spec, "http") {
		name, endpoint = spec[:i], spec[i+1:]
	} else {
		endpoint = spec
	}
	if endpoint == "" {
		return "", "", fmt.Errorf("cluster: empty node endpoint in %q", spec)
	}
	u, err := url.Parse(endpoint)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", "", fmt.Errorf("cluster: bad node endpoint %q (want http://host:port)", endpoint)
	}
	if name == "" {
		name = u.Host
	}
	return name, strings.TrimSuffix(endpoint, "/"), nil
}

// Membership owns the node set, the placement ring over their names,
// and the background health-probe loop.
type Membership struct {
	nodes    []*Node
	ring     *Ring
	replicas int

	probeInterval time.Duration
	probeTimeout  time.Duration
	log           *slog.Logger
	metrics       *Metrics

	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// newMembership builds the node set and ring from "name=url" specs.
func newMembership(specs []string, replicas, vnodes int, httpClient *http.Client,
	clientOpts func(name string) []blockstore.ClientOption,
	probeInterval, probeTimeout time.Duration, log *slog.Logger, m *Metrics) (*Membership, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: at least one node is required")
	}
	if replicas <= 0 {
		replicas = 2
	}
	if replicas > len(specs) {
		replicas = len(specs)
	}
	names := make([]string, 0, len(specs))
	nodes := make([]*Node, 0, len(specs))
	for _, spec := range specs {
		name, endpoint, err := ParseNodeSpec(spec)
		if err != nil {
			return nil, err
		}
		opts := []blockstore.ClientOption{}
		if httpClient != nil {
			opts = append(opts, blockstore.WithHTTPClient(httpClient))
		}
		if clientOpts != nil {
			opts = append(opts, clientOpts(name)...)
		}
		n := &Node{Name: name, Endpoint: endpoint, Client: blockstore.NewClient(endpoint, opts...)}
		n.up.Store(true)
		names = append(names, name)
		nodes = append(nodes, n)
	}
	ring, err := NewRing(names, vnodes)
	if err != nil {
		return nil, err
	}
	mem := &Membership{
		nodes:         nodes,
		ring:          ring,
		replicas:      replicas,
		probeInterval: probeInterval,
		probeTimeout:  probeTimeout,
		log:           log,
		metrics:       m,
		quit:          make(chan struct{}),
	}
	mem.metrics.NodesUp.Store(int64(len(nodes)))
	return mem, nil
}

// start launches the probe loop (idempotent).
func (m *Membership) start() {
	if m.probeInterval <= 0 {
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.probeInterval)
		defer t.Stop()
		for {
			select {
			case <-m.quit:
				return
			case <-t.C:
				m.ProbeOnce(context.Background())
			}
		}
	}()
}

// close stops the probe loop.
func (m *Membership) close() {
	m.once.Do(func() { close(m.quit) })
	m.wg.Wait()
}

// ProbeOnce health-checks every node concurrently and updates their
// up/down state, logging transitions. Exposed so tests and the router's
// startup can force a probe instead of waiting out the interval.
func (m *Membership) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, n := range m.nodes {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, m.probeTimeout)
			defer cancel()
			err := n.Client.ProbeHealth(pctx)
			n.lastProbe.Store(time.Now().UnixNano())
			up := err == nil
			if n.up.Swap(up) != up {
				m.metrics.ProbeTransitions.Add(1)
				if up {
					m.log.Info("node up", "node", n.Name, "endpoint", n.Endpoint)
				} else {
					m.log.Warn("node down", "node", n.Name, "endpoint", n.Endpoint, "err", err.Error())
				}
			}
		}(n)
	}
	wg.Wait()
	var live int64
	for _, n := range m.nodes {
		if n.Up() {
			live++
		}
	}
	m.metrics.NodesUp.Store(live)
}

// Nodes returns every member.
func (m *Membership) Nodes() []*Node { return m.nodes }

// Replicas returns the replication factor R.
func (m *Membership) Replicas() int { return m.replicas }

// Ring returns the placement ring.
func (m *Membership) Ring() *Ring { return m.ring }

// Place returns the R nodes responsible for a file, in ring preference
// order regardless of health (callers reorder by health).
func (m *Membership) Place(name string) []*Node {
	idx := m.ring.Place(name, m.replicas)
	out := make([]*Node, len(idx))
	for i, id := range idx {
		out[i] = m.nodes[id]
	}
	return out
}

// Statuses snapshots every node's health and client counters.
func (m *Membership) Statuses() []NodeStatus {
	out := make([]NodeStatus, len(m.nodes))
	for i, n := range m.nodes {
		out[i] = NodeStatus{Name: n.Name, Endpoint: n.Endpoint, Up: n.Up(), Client: n.Client.Stats()}
	}
	return out
}
