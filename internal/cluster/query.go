package cluster

// Scatter-gather execution of query plans (internal/query's format)
// across the cluster. The scatter unit is the filter leaf: each leaf is
// a single-column sub-plan answered by any replica of that column's
// file (with the usual failover and repair enqueueing), returning its
// selection as roaring wire bytes. The router re-walks the filter tree
// locally, merging leaf bitmaps with And/Or, then pushes aggregates
// down per column with the merged selection attached — so replicas
// fold only the rows the filter kept, and the router never touches
// column bytes itself.

import (
	"context"
	"fmt"
	"sync"

	"btrblocks/internal/obs"
	"btrblocks/internal/query"
	"btrblocks/internal/roaring"
)

// Query executes a validated plan against the cluster. Results are
// bit-identical to a single btrserved node hosting every referenced
// file: leaf selections are exact, the merge mirrors the executor's
// And/Or semantics, and aggregate legs fold under the merged selection.
// Any leg failing on every replica fails the query with that leg's
// error (so a file damaged everywhere still surfaces as 422).
func (r *Router) Query(ctx context.Context, p *query.Plan) (*query.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r.metrics.PlanQueries.Add(1)
	ctx, span := obs.StartChild(ctx, "query.scatter")
	defer span.End()

	rows := -1
	rowsFrom := ""
	checkRows := func(legRows int, column string) error {
		if rows == -1 {
			rows, rowsFrom = legRows, column
			return nil
		}
		if legRows != rows {
			return fmt.Errorf("%w: columns disagree on row count: %q has %d rows, %q has %d",
				query.ErrPlan, rowsFrom, rows, column, legRows)
		}
		return nil
	}

	res := &query.Result{}
	var sel *roaring.Bitmap

	// Scatter the filter leaves; gather bitmaps keyed by leaf node. The
	// plan's base selection rides along on every leg, so leaves can skip
	// blocks it already rules out and the leg results come back already
	// intersected with it.
	leaves := p.Leaves()
	if len(leaves) > 0 {
		bitmaps := make([]*roaring.Bitmap, len(leaves))
		legStats := make([]query.Stats, len(leaves))
		errs := make([]error, len(leaves))
		legRows := make([]int, len(leaves))
		sem := make(chan struct{}, r.cfg.ScatterWorkers)
		var wg sync.WaitGroup
		for i, leaf := range leaves {
			wg.Add(1)
			go func(i int, leaf *query.Node) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				bitmaps[i], legRows[i], legStats[i], errs[i] = r.queryLeaf(ctx, p, leaf)
			}(i, leaf)
		}
		wg.Wait()
		for i, leaf := range leaves {
			if errs[i] != nil {
				span.SetError(errs[i])
				return nil, errs[i]
			}
			if err := checkRows(legRows[i], leaf.Column); err != nil {
				span.SetError(err)
				return nil, err
			}
			res.Stats.Add(legStats[i])
		}
		byLeaf := make(map[*query.Node]*roaring.Bitmap, len(leaves))
		for i, leaf := range leaves {
			byLeaf[leaf] = bitmaps[i]
		}
		sel = mergeFilter(p.Filter, byLeaf)
	} else if len(p.Selection) > 0 {
		// No filter: the base selection alone drives row output and
		// aggregate restriction, exactly as in the single-node executor.
		bm, used, err := roaring.FromBytes(p.Selection)
		if err != nil || used != len(p.Selection) {
			err = fmt.Errorf("%w: bad selection bytes", query.ErrPlan)
			span.SetError(err)
			return nil, err
		}
		sel = bm
	}

	var selBytes []byte
	if sel != nil {
		selBytes = sel.AppendTo(nil)
	}

	if len(p.Aggregates) > 0 {
		aggs, aggRows, err := r.queryAggregates(ctx, p, selBytes, res)
		if err != nil {
			span.SetError(err)
			return nil, err
		}
		for col, n := range aggRows {
			if err := checkRows(n, col); err != nil {
				span.SetError(err)
				return nil, err
			}
		}
		res.Aggregates = aggs
	}

	res.Rows = rows
	if sel != nil {
		res.Matched = int64(sel.Cardinality())
	} else {
		res.Matched = int64(rows)
	}
	span.SetAttrInt("matched", res.Matched)
	span.SetAttrInt("legs", int64(len(leaves)))

	if p.Rows {
		limit := p.RowLimit
		if limit == 0 {
			limit = query.DefaultRowLimit
		}
		if sel != nil {
			res.RowIDs = make([]uint32, 0, min(limit, int(res.Matched)))
			sel.ForEach(func(row uint32) bool {
				if len(res.RowIDs) >= limit {
					return false
				}
				res.RowIDs = append(res.RowIDs, row)
				return true
			})
		} else {
			n := min(limit, rows)
			res.RowIDs = make([]uint32, n)
			for i := range res.RowIDs {
				res.RowIDs[i] = uint32(i)
			}
		}
		res.RowsTruncated = int64(len(res.RowIDs)) < res.Matched
	}

	if p.Return == query.ReturnBitmap {
		if sel != nil {
			res.Bitmap = selBytes
		} else {
			bm := roaring.New()
			bm.AddRange(0, uint32(rows))
			res.Bitmap = bm.AppendTo(nil)
		}
	}
	return res, nil
}

// queryLeaf runs one filter leaf as a single-column sub-plan against
// the leaf column's replicas, returning the leaf's selection bitmap,
// the column's row count, and the leg's executor stats.
func (r *Router) queryLeaf(ctx context.Context, p *query.Plan, leaf *query.Node) (*roaring.Bitmap, int, query.Stats, error) {
	r.metrics.PlanQueryLegs.Add(1)
	ctx, span := obs.StartChild(ctx, "query.leg")
	span.SetAttr("column", leaf.Column)
	span.SetAttr("op", leaf.Op)
	defer span.End()

	sub := &query.Plan{Filter: leaf, Return: query.ReturnBitmap, Selection: p.Selection}
	legRes, err := failover(r, ctx, leaf.Column, "query", func(n *Node) (*query.Result, error) {
		return n.Client.Query(ctx, sub)
	})
	if err != nil {
		span.SetError(err)
		return nil, 0, query.Stats{}, err
	}
	bm, used, err := roaring.FromBytes(legRes.Bitmap)
	if err != nil || used != len(legRes.Bitmap) {
		err = fmt.Errorf("cluster: query leg %s: bad bitmap in response", leaf.Column)
		span.SetError(err)
		return nil, 0, query.Stats{}, err
	}
	span.SetAttrInt("matched", int64(bm.Cardinality()))
	return bm, legRes.Rows, legRes.Stats, nil
}

// queryAggregates pushes the plan's aggregates down per referenced
// column (one leg per column, folding every op over that column in one
// pass) with the merged selection attached, and reassembles the results
// in the plan's aggregate order. Returns the per-column row counts for
// the caller's consistency check.
func (r *Router) queryAggregates(ctx context.Context, p *query.Plan, selBytes []byte, res *query.Result) ([]query.AggResult, map[string]int, error) {
	order := make([]string, 0, len(p.Aggregates))
	specs := make(map[string][]query.AggSpec)
	slots := make(map[string][]int)
	for i, a := range p.Aggregates {
		if _, seen := specs[a.Column]; !seen {
			order = append(order, a.Column)
		}
		specs[a.Column] = append(specs[a.Column], a)
		slots[a.Column] = append(slots[a.Column], i)
	}

	results := make([]*query.Result, len(order))
	errs := make([]error, len(order))
	sem := make(chan struct{}, r.cfg.ScatterWorkers)
	var wg sync.WaitGroup
	for i, col := range order {
		wg.Add(1)
		go func(i int, col string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r.metrics.PlanQueryLegs.Add(1)
			ctx, span := obs.StartChild(ctx, "query.agg-leg")
			span.SetAttr("column", col)
			defer span.End()
			sub := &query.Plan{Aggregates: specs[col], Selection: selBytes}
			results[i], errs[i] = failover(r, ctx, col, "query-agg", func(n *Node) (*query.Result, error) {
				return n.Client.Query(ctx, sub)
			})
			span.SetError(errs[i])
		}(i, col)
	}
	wg.Wait()

	out := make([]query.AggResult, len(p.Aggregates))
	aggRows := make(map[string]int, len(order))
	for i, col := range order {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
		legRes := results[i]
		if len(legRes.Aggregates) != len(specs[col]) {
			return nil, nil, fmt.Errorf("cluster: aggregate leg %s: %d results for %d specs",
				col, len(legRes.Aggregates), len(specs[col]))
		}
		aggRows[col] = legRes.Rows
		res.Stats.Add(legRes.Stats)
		for j, slot := range slots[col] {
			out[slot] = legRes.Aggregates[j]
		}
	}
	return out, aggRows, nil
}

// mergeFilter re-walks the filter tree, combining the gathered leaf
// bitmaps with the same And/Or semantics the single-node executor
// applies — leaf selections are exact, so the merge is too.
func mergeFilter(n *query.Node, byLeaf map[*query.Node]*roaring.Bitmap) *roaring.Bitmap {
	switch n.Op {
	case "and":
		acc := mergeFilter(n.Children[0], byLeaf)
		for _, c := range n.Children[1:] {
			acc = roaring.And(acc, mergeFilter(c, byLeaf))
		}
		return acc
	case "or":
		acc := mergeFilter(n.Children[0], byLeaf)
		for _, c := range n.Children[1:] {
			acc = roaring.Or(acc, mergeFilter(c, byLeaf))
		}
		return acc
	default:
		return byLeaf[n]
	}
}
