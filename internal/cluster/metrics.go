package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"btrblocks/internal/obs"
)

// Metrics holds the router's operational counters: scatter-gather and
// failover behavior, hedged-request outcomes, repair-loop progress, and
// per-replica request series. All hot-path fields are atomics; rendered
// as Prometheus text with the btrrouted_ prefix by WriteTo.
type Metrics struct {
	BlockFetches     atomic.Int64 // logical block fetches routed
	Failovers        atomic.Int64 // extra replica attempts after a failure
	DamageDetected   atomic.Int64 // replica responses classified as block damage (422/410)
	Hedges           atomic.Int64 // hedge legs fired after the latency budget
	HedgeWins        atomic.Int64 // fetches won by the hedge leg
	ScatterQueries   atomic.Int64 // cross-file scatter-gather count queries
	PlanQueries      atomic.Int64 // query plans routed via /v1/query
	PlanQueryLegs    atomic.Int64 // per-leaf and per-column sub-queries scattered
	RepairsQueued    atomic.Int64
	RepairsSucceeded atomic.Int64
	RepairsFailed    atomic.Int64 // given up after the attempt budget
	RepairsDropped   atomic.Int64 // queue full; task discarded
	NodesUp          atomic.Int64 // gauge: nodes whose last probe succeeded
	ProbeTransitions atomic.Int64 // up<->down flips observed by the prober

	// Per-replica series, labeled by node name.
	ReplicaRequests obs.CounterGroup
	ReplicaErrors   obs.CounterGroup
	ReplicaLatency  obs.HistogramGroup // successful fetch latency

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64
	latency  obs.Histogram
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: make(map[string]*endpointMetrics)}
}

func (m *Metrics) endpoint(route string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.endpoints[route]
	if ep == nil {
		ep = &endpointMetrics{}
		m.endpoints[route] = ep
	}
	return ep
}

// RouteSnapshot summarizes one router HTTP route.
type RouteSnapshot struct {
	Route    string                `json:"route"`
	Requests int64                 `json:"requests"`
	Errors   int64                 `json:"errors"`
	Latency  obs.HistogramSnapshot `json:"latency"`
}

// Routes summarizes every router HTTP route, sorted by route.
func (m *Metrics) Routes() []RouteSnapshot {
	m.mu.Lock()
	routes := make([]string, 0, len(m.endpoints))
	for r := range m.endpoints {
		routes = append(routes, r)
	}
	eps := make(map[string]*endpointMetrics, len(m.endpoints))
	for r, ep := range m.endpoints {
		eps[r] = ep
	}
	m.mu.Unlock()
	sort.Strings(routes)
	out := make([]RouteSnapshot, len(routes))
	for i, r := range routes {
		out[i] = RouteSnapshot{
			Route:    r,
			Requests: eps[r].requests.Load(),
			Errors:   eps[r].errors.Load(),
			Latency:  eps[r].latency.Snapshot(),
		}
	}
	return out
}

// WriteTo renders the metrics in Prometheus text exposition format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("btrrouted_block_fetches_total", "Logical block fetches routed across replicas.", m.BlockFetches.Load())
	counter("btrrouted_failovers_total", "Extra replica attempts after a replica failure.", m.Failovers.Load())
	counter("btrrouted_damage_detected_total", "Replica responses classified as block damage (422 corrupt / 410 quarantined).", m.DamageDetected.Load())
	counter("btrrouted_hedged_requests_total", "Hedge legs fired after the per-replica latency budget.", m.Hedges.Load())
	counter("btrrouted_hedge_wins_total", "Block fetches won by the hedge leg.", m.HedgeWins.Load())
	counter("btrrouted_scatter_queries_total", "Cross-file scatter-gather count queries.", m.ScatterQueries.Load())
	counter("btrrouted_query_plans_total", "Query plans routed via /v1/query.", m.PlanQueries.Load())
	counter("btrrouted_query_legs_total", "Per-leaf and per-column sub-queries scattered to replicas.", m.PlanQueryLegs.Load())
	counter("btrrouted_repairs_queued_total", "Cross-replica repair tasks enqueued.", m.RepairsQueued.Load())
	counter("btrrouted_repairs_succeeded_total", "Repairs that pushed a verified good copy onto the damaged replica.", m.RepairsSucceeded.Load())
	counter("btrrouted_repairs_failed_total", "Repairs abandoned after the attempt budget.", m.RepairsFailed.Load())
	counter("btrrouted_repairs_dropped_total", "Repair tasks dropped because the queue was full.", m.RepairsDropped.Load())
	gauge("btrrouted_nodes_up", "Nodes whose last health probe succeeded.", m.NodesUp.Load())
	counter("btrrouted_probe_transitions_total", "Node up/down transitions observed by the health prober.", m.ProbeTransitions.Load())

	fmt.Fprintf(cw, "# HELP btrrouted_replica_requests_total Replica fetch attempts by node.\n# TYPE btrrouted_replica_requests_total counter\n")
	m.ReplicaRequests.WritePromLines(cw, "btrrouted_replica_requests_total", "node")
	fmt.Fprintf(cw, "# HELP btrrouted_replica_errors_total Failed replica fetch attempts by node.\n# TYPE btrrouted_replica_errors_total counter\n")
	m.ReplicaErrors.WritePromLines(cw, "btrrouted_replica_errors_total", "node")
	fmt.Fprintf(cw, "# HELP btrrouted_replica_request_duration_seconds Successful replica fetch latency by node.\n# TYPE btrrouted_replica_request_duration_seconds histogram\n")
	m.ReplicaLatency.WritePromLines(cw, "btrrouted_replica_request_duration_seconds", "node")

	m.mu.Lock()
	routes := make([]string, 0, len(m.endpoints))
	for r := range m.endpoints {
		routes = append(routes, r)
	}
	eps := make(map[string]*endpointMetrics, len(m.endpoints))
	for r, ep := range m.endpoints {
		eps[r] = ep
	}
	m.mu.Unlock()
	sort.Strings(routes)

	fmt.Fprintf(cw, "# HELP btrrouted_http_requests_total HTTP requests by route.\n# TYPE btrrouted_http_requests_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(cw, "btrrouted_http_requests_total{route=%q} %d\n", r, eps[r].requests.Load())
	}
	fmt.Fprintf(cw, "# HELP btrrouted_http_errors_total Non-2xx HTTP responses by route.\n# TYPE btrrouted_http_errors_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(cw, "btrrouted_http_errors_total{route=%q} %d\n", r, eps[r].errors.Load())
	}
	fmt.Fprintf(cw, "# HELP btrrouted_http_request_duration_seconds Request latency by route.\n# TYPE btrrouted_http_request_duration_seconds histogram\n")
	for _, r := range routes {
		eps[r].latency.WritePromLines(cw, "btrrouted_http_request_duration_seconds", fmt.Sprintf("route=%q", r))
	}
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
