package cluster

import (
	"net/http"
	"runtime"
	"testing"
	"time"

	"btrblocks/internal/blockstore"
)

// delayTransport injects a fixed latency before every round trip —
// seeded, deterministic replica skew for the hedge tests.
type delayTransport struct {
	d time.Duration
}

func (t delayTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	select {
	case <-time.After(t.d):
	case <-req.Context().Done():
		return nil, req.Context().Err()
	}
	return http.DefaultTransport.RoundTrip(req)
}

// hedgeCluster builds a 2-node cluster (R=2, so every file is on both)
// with per-node injected latency and an instant hedge budget.
func hedgeCluster(t *testing.T, delays map[string]time.Duration) (*Router, map[string][]byte, []*testNode) {
	t.Helper()
	contents, _ := testCorpus(t)
	names := []string{"n1", "n2"}
	_, perNode := placeCorpus(t, contents, names, 2)
	nodes, specs := startNodes(t, names, perNode, blockstore.Config{})
	r := newTestRouter(t, specs, Config{
		Replicas:        2,
		HedgeInitial:    time.Millisecond,
		HedgeMinSamples: 1 << 30, // pin the budget to HedgeInitial
		ClientOptions: func(name string) []blockstore.ClientOption {
			if d, ok := delays[name]; ok && d > 0 {
				return []blockstore.ClientOption{
					blockstore.WithHTTPClient(&http.Client{Transport: delayTransport{d: d}}),
				}
			}
			return nil
		},
	})
	return r, contents, nodes
}

// primaryFor returns the primary replica's name for (file, block) under
// healthy 2-way rotation.
func primaryFor(r *Router, name string, block int) string {
	return r.orderFor(name, block)[0].Name
}

// With a slow primary and a fast secondary, the hedge leg fires and
// wins; the result is still a single, correct block.
func TestHedgeSecondaryWins(t *testing.T) {
	const file = "t/i.btr"
	// Build the cluster first to learn block 0's primary, then rebuild
	// with that node slowed. Placement is deterministic, so the second
	// cluster places identically.
	probe, _, _ := hedgeCluster(t, nil)
	slow := primaryFor(probe, file, 0)
	r, _, _ := hedgeCluster(t, map[string]time.Duration{slow: 80 * time.Millisecond})

	blk, err := r.FetchBlock(testCtx, file, 0)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Rows == 0 {
		t.Fatal("empty block")
	}
	m := r.Metrics()
	if m.Hedges.Load() != 1 {
		t.Fatalf("hedges %d, want 1", m.Hedges.Load())
	}
	if m.HedgeWins.Load() != 1 {
		t.Fatalf("hedge wins %d, want 1 (secondary should beat the %v primary)", m.HedgeWins.Load(), 80*time.Millisecond)
	}
	// Exactly one primary leg and one hedge leg — nothing double-fired.
	total := int64(0)
	for _, n := range []string{"n1", "n2"} {
		total += m.ReplicaRequests.At(n).Load()
	}
	if total != 2 {
		t.Fatalf("replica requests %d, want 2 (primary + hedge)", total)
	}
}

// With a fast primary and a slow secondary, the hedge fires but the
// primary wins — no hedge win is recorded and the result is correct.
func TestHedgePrimaryWins(t *testing.T) {
	const file = "t/i.btr"
	probe, _, _ := hedgeCluster(t, nil)
	primary := primaryFor(probe, file, 0)
	secondary := "n1"
	if primary == "n1" {
		secondary = "n2"
	}
	// Primary answers after 30ms (past the 1ms hedge budget, so the
	// hedge fires), secondary after 300ms (so the primary still wins).
	r, _, _ := hedgeCluster(t, map[string]time.Duration{
		primary:   30 * time.Millisecond,
		secondary: 300 * time.Millisecond,
	})

	blk, err := r.FetchBlock(testCtx, file, 0)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Rows == 0 {
		t.Fatal("empty block")
	}
	m := r.Metrics()
	if m.Hedges.Load() != 1 {
		t.Fatalf("hedges %d, want 1", m.Hedges.Load())
	}
	if m.HedgeWins.Load() != 0 {
		t.Fatalf("hedge wins %d, want 0 (primary should win)", m.HedgeWins.Load())
	}
}

// Cancelled loser legs must not leak goroutines or double-deliver:
// after a burst of hedged fetches, the goroutine count settles back and
// every fetch produced exactly one result.
func TestHedgeLoserCancellationNoLeak(t *testing.T) {
	const file = "t/s.btr"
	probe, contents, _ := hedgeCluster(t, nil)
	slow := primaryFor(probe, file, 0)
	blocks := blockCount(t, contents[file])
	// Slow node loses every hedge race on the blocks it is primary for.
	r, _, _ := hedgeCluster(t, map[string]time.Duration{slow: 60 * time.Millisecond})

	before := runtime.NumGoroutine()
	const rounds = 30
	fetches := 0
	for i := 0; i < rounds; i++ {
		blk, err := r.FetchBlock(testCtx, file, i%blocks)
		if err != nil {
			t.Fatal(err)
		}
		if blk.Rows == 0 {
			t.Fatal("empty block")
		}
		fetches++
	}
	m := r.Metrics()
	if got := m.BlockFetches.Load(); got != int64(fetches) {
		t.Fatalf("block fetches %d, want %d — a fetch was double-counted", got, fetches)
	}
	// Total legs = one primary per fetch + one per fired hedge. More
	// would mean a leg double-fired; fewer, a lost result.
	legs := m.ReplicaRequests.At("n1").Load() + m.ReplicaRequests.At("n2").Load()
	if legs != int64(fetches)+m.Hedges.Load() {
		t.Fatalf("replica legs %d, want %d fetches + %d hedges", legs, fetches, m.Hedges.Load())
	}
	// Cancelled losers are not endpoint failures: nothing may have been
	// down-marked or failed over on this healthy cluster.
	if m.Failovers.Load() != 0 {
		t.Fatalf("failovers %d on a healthy cluster — loser cancellation was treated as failure", m.Failovers.Load())
	}
	// Loser legs are cancelled and drain into the buffered channel; the
	// goroutine count must settle back near the baseline.
	waitFor(t, 5*time.Second, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+3
	})
}

// A hedge leg that fails must not fail the fetch while the primary is
// still in flight — the primary's answer wins.
func TestHedgeFailureDoesNotAbortPrimary(t *testing.T) {
	contents, _ := testCorpus(t)
	names := []string{"n1", "n2"}
	_, perNode := placeCorpus(t, contents, names, 2)

	const file = "t/d.btr"
	// Find block 0's primary under rotation, then damage the OTHER
	// node's copy: the hedge leg will hit the damaged replica and 422
	// while the slow primary still answers correctly.
	pr, _, _ := hedgeCluster(t, nil)
	primary := primaryFor(pr, file, 0)
	secondary := "n1"
	if primary == "n1" {
		secondary = "n2"
	}
	for i, n := range names {
		if n == secondary {
			perNode[i][file] = flipBlockByte(t, contents[file], 0)
		}
	}
	_, specs := startNodes(t, names, perNode, blockstore.Config{QuarantineThreshold: 1})
	r := newTestRouter(t, specs, Config{
		Replicas:        2,
		HedgeInitial:    time.Millisecond,
		HedgeMinSamples: 1 << 30,
		ClientOptions: func(name string) []blockstore.ClientOption {
			if name == primary {
				return []blockstore.ClientOption{
					blockstore.WithHTTPClient(&http.Client{Transport: delayTransport{d: 50 * time.Millisecond}}),
				}
			}
			return nil
		},
	})

	blk, err := r.FetchBlock(testCtx, file, 0)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Rows == 0 {
		t.Fatal("empty block")
	}
	// The damaged hedge leg was detected and queued for repair.
	m := r.Metrics()
	if m.Hedges.Load() == 0 {
		t.Fatal("hedge never fired")
	}
	if m.DamageDetected.Load() == 0 {
		t.Fatal("damaged hedge replica not detected")
	}
}
