package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"btrblocks"
	"btrblocks/internal/blockstore"
)

// testCorpus builds a small multi-block corpus: one column file per
// type (3 blocks each) plus NULLs, keyed by store-relative name.
func testCorpus(t *testing.T) (map[string][]byte, map[string]btrblocks.Column) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	const n = 3000
	nulls := btrblocks.NewNullMask()
	for i := 0; i < n; i += 7 {
		nulls.SetNull(i)
	}
	ints := make([]int32, n)
	ints64 := make([]int64, n)
	doubles := make([]float64, n)
	strs := make([]string, n)
	for i := 0; i < n; i++ {
		ints[i] = int32(rng.Intn(100))
		ints64[i] = int64(rng.Intn(100)) << 33
		doubles[i] = float64(rng.Intn(1000)) / 8
		strs[i] = fmt.Sprintf("city-%d", rng.Intn(25))
	}
	cols := map[string]btrblocks.Column{
		"t/i.btr": btrblocks.IntColumn("i", ints),
		"t/l.btr": btrblocks.Int64Column("l", ints64),
		"t/d.btr": btrblocks.DoubleColumn("d", doubles),
		"t/s.btr": btrblocks.StringColumn("s", strs),
	}
	contents := make(map[string][]byte)
	for name, col := range cols {
		col.Nulls = nulls
		cols[name] = col
		data, err := btrblocks.CompressColumn(col, &btrblocks.Options{BlockSize: 1000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		contents[name] = data
	}
	return contents, cols
}

// placeCorpus distributes a corpus over node-local content maps using
// the same ring the router under test will build.
func placeCorpus(t *testing.T, contents map[string][]byte, names []string, replicas int) (*Ring, []map[string][]byte) {
	t.Helper()
	ring, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	perNode := make([]map[string][]byte, len(names))
	for i := range perNode {
		perNode[i] = make(map[string][]byte)
	}
	for name, data := range contents {
		for _, ni := range ring.Place(name, replicas) {
			perNode[ni][name] = data
		}
	}
	return ring, perNode
}

// testNode is one httptest-backed cluster member.
type testNode struct {
	name  string
	store *blockstore.Store
	srv   *httptest.Server
	cl    *blockstore.Client
}

// startNodes serves each node-local content map over httptest and
// returns the nodes plus their "name=url" specs.
func startNodes(t *testing.T, names []string, perNode []map[string][]byte, storeCfg blockstore.Config) ([]*testNode, []string) {
	t.Helper()
	nodes := make([]*testNode, len(names))
	specs := make([]string, len(names))
	for i, name := range names {
		store, err := blockstore.NewStore(perNode[i], storeCfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(store.Close)
		srv := httptest.NewServer(blockstore.NewServer(store))
		t.Cleanup(srv.Close)
		nodes[i] = &testNode{name: name, store: store, srv: srv, cl: blockstore.NewClient(srv.URL)}
		specs[i] = name + "=" + srv.URL
	}
	return nodes, specs
}

// newTestRouter builds and starts a router over the specs with
// test-friendly defaults: no background prober (tests call ProbeOnce
// when they need health state), fast repair, quiet logs.
func newTestRouter(t *testing.T, specs []string, cfg Config) *Router {
	t.Helper()
	cfg.Nodes = specs
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = 5 * time.Second
	}
	if cfg.RepairBackoff == 0 {
		cfg.RepairBackoff = 10 * time.Millisecond
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(testWriter{t}, &slog.HandlerOptions{Level: slog.LevelError}))
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(r.Close)
	return r
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(p))
	return len(p), nil
}

// blockCount returns the number of blocks in a compressed column file.
func blockCount(t *testing.T, data []byte) int {
	t.Helper()
	ix, err := btrblocks.ParseColumnIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	return len(ix.Blocks)
}

// flipBlockByte corrupts one byte inside the given block's payload,
// returning a damaged copy.
func flipBlockByte(t *testing.T, data []byte, block int) []byte {
	t.Helper()
	ix, err := btrblocks.ParseColumnIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]byte(nil), data...)
	out[ix.Blocks[block].DataOffset()] ^= 0xFF
	return out
}

// verifyColumn fetches every block via fetch and checks each value and
// NULL position against the ground-truth column.
func verifyColumn(t *testing.T, col btrblocks.Column, blocks int, fetch func(b int) (*blockstore.BlockValues, error)) {
	t.Helper()
	rows := 0
	for b := 0; b < blocks; b++ {
		blk, err := fetch(b)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if blk.StartRow != rows {
			t.Fatalf("block %d starts at %d, want %d", b, blk.StartRow, rows)
		}
		isNull := make(map[int]bool, len(blk.Nulls))
		for _, p := range blk.Nulls {
			isNull[p] = true
		}
		for i := 0; i < blk.Rows; i++ {
			r := rows + i
			if col.Nulls != nil && col.Nulls.IsNull(r) {
				if !isNull[i] {
					t.Fatalf("row %d is NULL but served as valid", r)
				}
				continue
			}
			if isNull[i] {
				t.Fatalf("row %d served as NULL but is valid", r)
			}
			switch col.Type {
			case btrblocks.TypeInt:
				if blk.Ints[i] != col.Ints[r] {
					t.Fatalf("row %d: got %d, want %d", r, blk.Ints[i], col.Ints[r])
				}
			case btrblocks.TypeInt64:
				if blk.Ints64[i] != col.Ints64[r] {
					t.Fatalf("row %d: got %d, want %d", r, blk.Ints64[i], col.Ints64[r])
				}
			case btrblocks.TypeDouble:
				if blk.Doubles[i] != col.Doubles[r] {
					t.Fatalf("row %d: got %v, want %v", r, blk.Doubles[i], col.Doubles[r])
				}
			case btrblocks.TypeString:
				if blk.Strings[i] != col.Strings.At(r) {
					t.Fatalf("row %d: got %q, want %q", r, blk.Strings[i], col.Strings.At(r))
				}
			}
		}
		rows += blk.Rows
	}
	if rows != col.Len() {
		t.Fatalf("blocks cover %d rows, column has %d", rows, col.Len())
	}
}

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var testCtx = context.Background()
