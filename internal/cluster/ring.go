// Package cluster turns a set of independent btrserved nodes into a
// replicated blockstore: a consistent-hash Ring places every column
// file on R of N nodes, a Membership tracks node health with periodic
// probes, and a Router scatter-gathers block fetches and pushed-down
// counts across the cluster — failing over between replicas, hedging
// slow reads against a second replica, and pushing verified good copies
// back onto replicas whose bytes failed their CRC (cross-replica
// repair, the promotion of the single-node quarantine/self-healing
// machinery from PR 4).
//
// Placement is by node *name*, not endpoint, so a cluster whose nodes
// restart on new ports (or move hosts) keeps the same file→replica
// mapping as long as the names are stable. Writers use the same Ring to
// decide where to put files; the Router uses it to decide where to read
// them from.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the ring points per node when Ring is built
// with vnodes <= 0. 128 points keep the per-node share of keys within a
// few percent of uniform for small clusters without making ring walks
// expensive.
const DefaultVirtualNodes = 128

type ringPoint struct {
	hash uint64
	node int // index into names
}

// Ring is a consistent-hash ring over node names with virtual nodes.
// Immutable after construction; builds are cheap enough to rebuild on
// membership change.
type Ring struct {
	names  []string
	points []ringPoint
}

// NewRing builds a ring over the given node names (order is
// insignificant; placement depends only on the name set). vnodes <= 0
// uses DefaultVirtualNodes.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n)
		}
		seen[n] = true
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{
		names:  append([]string(nil), names...),
		points: make([]ringPoint, 0, len(names)*vnodes),
	}
	for i, name := range r.names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(name + "#" + strconv.Itoa(v)),
				node: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Ties broken by node index so the walk order is deterministic
		// regardless of input order.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Nodes returns the node names the ring was built over.
func (r *Ring) Nodes() []string { return append([]string(nil), r.names...) }

// ringHash is FNV-1a over the key — stable across processes and Go
// versions, which placement requires (writers and routers must agree).
func ringHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Place returns the indices of the n distinct nodes responsible for
// key, clockwise from the key's hash. n is capped at the node count.
// The first index is the key's primary; the rest are its replicas in
// preference order.
func (r *Ring) Place(key string, n int) []int {
	if n <= 0 {
		n = 1
	}
	if n > len(r.names) {
		n = len(r.names)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// PlaceNames is Place returning node names.
func (r *Ring) PlaceNames(key string, n int) []string {
	idx := r.Place(key, n)
	out := make([]string, len(idx))
	for i, id := range idx {
		out[i] = r.names[id]
	}
	return out
}
