package cluster

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"btrblocks/internal/blockstore"
)

// TestClusterChaosSeeded is the in-suite version of the btrrouted
// smoke's chaos phases: over a seeded 3-node cluster it (1) flips a
// byte on one replica of a random file, (2) closes one node that is
// not the damaged file's surviving good copy while scans run
// concurrently, and asserts every scan keeps returning complete,
// bit-correct results and the flipped replica heals — in any
// interleaving the seed produces.
func TestClusterChaosSeeded(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(1337))
	contents, cols := testCorpus(t)
	names := []string{"n1", "n2", "n3"}
	ring, perNode := placeCorpus(t, contents, names, 2)

	// Pick a seeded victim file and damage one of its replicas — the
	// one rotation makes primary for the flipped block, so routed reads
	// deterministically observe the damage.
	fileNames := make([]string, 0, len(contents))
	for name := range contents {
		fileNames = append(fileNames, name)
	}
	sort.Strings(fileNames)
	victimFile := fileNames[rng.Intn(len(fileNames))]
	badBlock := rng.Intn(blockCount(t, contents[victimFile]))
	placed := ring.Place(victimFile, 2)
	damagedNode := placed[badBlock%len(placed)]
	donorNode := placed[0]
	if donorNode == damagedNode {
		donorNode = placed[1]
	}
	perNode[damagedNode][victimFile] = flipBlockByte(t, contents[victimFile], badBlock)

	nodes, specs := startNodes(t, names, perNode, blockstore.Config{QuarantineThreshold: 1})
	r := newTestRouter(t, specs, Config{
		Replicas:       2,
		DisableHedge:   true,
		AttemptTimeout: 2 * time.Second,
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   time.Second,
		DownTTL:        200 * time.Millisecond,
	})

	// The kill victim must not be the damaged file's only good copy —
	// the donor must survive so repair can converge.
	killIdx := rng.Intn(len(nodes))
	for killIdx == donorNode {
		killIdx = rng.Intn(len(nodes))
	}

	// Concurrent scan workers hammer the whole corpus through the
	// router while the chaos happens.
	var (
		stop     atomic.Bool
		scans    atomic.Int64
		failures atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				name := fileNames[(int(scans.Add(1))+w)%len(fileNames)]
				col := cols[name]
				blocks := blockCount(t, contents[name])
				for b := 0; b < blocks; b++ {
					blk, err := r.FetchBlock(testCtx, name, b)
					if err != nil {
						t.Errorf("scan %s block %d: %v", name, b, err)
						failures.Add(1)
						return
					}
					if blk.StartRow+blk.Rows > col.Len() {
						t.Errorf("scan %s block %d: rows out of range", name, b)
						failures.Add(1)
						return
					}
				}
			}
		}(w)
	}

	// Let scans run, then kill a node mid-flight.
	waitFor(t, 5*time.Second, "scans to start", func() bool { return scans.Load() > 5 })
	nodes[killIdx].srv.Close()
	preKill := scans.Load()
	waitFor(t, 10*time.Second, "scans to continue past the kill", func() bool {
		return failures.Load() > 0 || scans.Load() > preKill+10
	})
	stop.Store(true)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d scans failed around the chaos", failures.Load())
	}

	// Every file still reads complete and bit-correct off the survivors.
	for name, col := range cols {
		blocks := blockCount(t, contents[name])
		verifyColumn(t, col, blocks, func(b int) (*blockstore.BlockValues, error) {
			return r.FetchBlock(testCtx, name, b)
		})
	}

	// The damaged replica heals unless the chaos killed it — repair
	// needs the damaged node alive to accept the push.
	if killIdx != damagedNode {
		waitFor(t, 10*time.Second, "flipped replica to heal", func() bool {
			_, err := nodes[damagedNode].cl.Block(testCtx, victimFile, badBlock)
			return err == nil
		})
		verifyColumn(t, cols[victimFile], blockCount(t, contents[victimFile]), func(b int) (*blockstore.BlockValues, error) {
			return nodes[damagedNode].cl.Block(testCtx, victimFile, b)
		})
		if r.Metrics().RepairsSucceeded.Load() == 0 {
			t.Error("no successful repair recorded")
		}
	}

	// The prober noticed the death.
	waitFor(t, 5*time.Second, "prober to mark the killed node down", func() bool {
		return r.Metrics().NodesUp.Load() == int64(len(nodes)-1)
	})
	if r.Metrics().Failovers.Load() == 0 {
		t.Error("no failovers counted across the chaos")
	}
}
