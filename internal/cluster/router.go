package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"btrblocks/internal/blockstore"
	"btrblocks/internal/obs"
)

// Config configures a Router. Zero values pick production-ready
// defaults; tests override the hedge knobs to force deterministic
// behavior.
type Config struct {
	// Nodes are the cluster members as "name=url" specs (ParseNodeSpec).
	Nodes []string
	// Replicas is the replication factor R (default 2, capped at N).
	Replicas int
	// VirtualNodes is the ring points per node (default
	// DefaultVirtualNodes).
	VirtualNodes int

	// HTTPClient, when set, backs every node client (tests install
	// fault-injecting transports; ClientOptions can override per node).
	HTTPClient *http.Client
	// ClientOptions, when set, appends per-node client options (applied
	// after the router's own, so tests can override anything).
	ClientOptions func(name string) []blockstore.ClientOption
	// AttemptTimeout bounds each HTTP attempt to a replica (default 5s).
	AttemptTimeout time.Duration
	// Retries is the per-request retry budget of each node client
	// (default 1 — the router's own failover is the real retry).
	Retries int
	// DownThreshold marks a node client down after that many consecutive
	// failed requests (default 3; see blockstore.WithEndpointDown).
	DownThreshold int
	// DownTTL is the fail-fast window of a down-marked client (default 5s).
	DownTTL time.Duration

	// ProbeInterval is the health-probe period (default 1s; <0 disables
	// the background prober).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration

	// DisableHedge turns hedged block fetches off entirely.
	DisableHedge bool
	// HedgeInitial is the hedge budget before a replica has
	// HedgeMinSamples latency observations (default 25ms).
	HedgeInitial time.Duration
	// HedgeMin/HedgeMax clamp the p95-derived hedge budget
	// (defaults 1ms / 250ms).
	HedgeMin time.Duration
	HedgeMax time.Duration
	// HedgeMinSamples is how many latency samples a replica needs before
	// its p95 replaces HedgeInitial (default 16).
	HedgeMinSamples int

	// RepairAttempts bounds how often one repair task is tried before it
	// is dropped (default 3).
	RepairAttempts int
	// RepairBackoff separates attempts of one repair task (default 250ms).
	RepairBackoff time.Duration
	// RepairQueue bounds the pending repair queue (default 64).
	RepairQueue int
	// RepairTimeout bounds one repair attempt end to end (default 30s).
	RepairTimeout time.Duration

	// ScatterWorkers bounds concurrent per-file queries in scatter
	// operations (default 8).
	ScatterWorkers int

	// Log receives router events (default slog.Default()).
	Log *slog.Logger
	// Spans, when set, records router spans (fetch legs, repairs, HTTP
	// requests via Server).
	Spans *obs.SpanRecorder
}

func (c *Config) withDefaults() {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = 5 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	if c.DownThreshold == 0 {
		c.DownThreshold = 3
	}
	if c.DownTTL == 0 {
		c.DownTTL = 5 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.HedgeInitial == 0 {
		c.HedgeInitial = 25 * time.Millisecond
	}
	if c.HedgeMin == 0 {
		c.HedgeMin = time.Millisecond
	}
	if c.HedgeMax == 0 {
		c.HedgeMax = 250 * time.Millisecond
	}
	if c.HedgeMinSamples == 0 {
		c.HedgeMinSamples = 16
	}
	if c.RepairAttempts <= 0 {
		c.RepairAttempts = 3
	}
	if c.RepairBackoff == 0 {
		c.RepairBackoff = 250 * time.Millisecond
	}
	if c.RepairQueue <= 0 {
		c.RepairQueue = 64
	}
	if c.RepairTimeout <= 0 {
		c.RepairTimeout = 30 * time.Second
	}
	if c.ScatterWorkers <= 0 {
		c.ScatterWorkers = 8
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
}

// Router reads from a replicated blockstore cluster: every fetch walks
// the file's replicas in health-first ring order, failing over on
// errors, hedging slow primaries with a second replica, and feeding
// damage it observes (422 corrupt / 410 quarantined) into the repair
// loop, which pushes verified good copies back onto damaged replicas.
type Router struct {
	cfg     Config
	mem     *Membership
	metrics *Metrics
	log     *slog.Logger
	spans   *obs.SpanRecorder

	repairCh  chan repairTask
	pendingMu sync.Mutex
	pending   map[string]bool

	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewRouter validates the config and builds the node set. Call Start to
// launch the health prober and repair worker, Close to stop them.
func NewRouter(cfg Config) (*Router, error) {
	cfg.withDefaults()
	m := NewMetrics()
	clientOpts := func(name string) []blockstore.ClientOption {
		opts := []blockstore.ClientOption{
			blockstore.WithAttemptTimeout(cfg.AttemptTimeout),
			blockstore.WithRetries(cfg.Retries),
			blockstore.WithEndpointDown(cfg.DownThreshold, cfg.DownTTL),
		}
		if cfg.ClientOptions != nil {
			opts = append(opts, cfg.ClientOptions(name)...)
		}
		return opts
	}
	mem, err := newMembership(cfg.Nodes, cfg.Replicas, cfg.VirtualNodes, cfg.HTTPClient,
		clientOpts, cfg.ProbeInterval, cfg.ProbeTimeout, cfg.Log, m)
	if err != nil {
		return nil, err
	}
	return &Router{
		cfg:      cfg,
		mem:      mem,
		metrics:  m,
		log:      cfg.Log,
		spans:    cfg.Spans,
		repairCh: make(chan repairTask, cfg.RepairQueue),
		pending:  make(map[string]bool),
		quit:     make(chan struct{}),
	}, nil
}

// Start launches the health prober and the repair worker.
func (r *Router) Start() {
	r.mem.start()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.repairLoop()
	}()
}

// Close stops the background loops and waits for them.
func (r *Router) Close() {
	r.once.Do(func() { close(r.quit) })
	r.mem.close()
	r.wg.Wait()
}

// Metrics returns the router's counters.
func (r *Router) Metrics() *Metrics { return r.metrics }

// Membership returns the node set and ring.
func (r *Router) Membership() *Membership { return r.mem }

// orderFor returns a file's replicas in fetch-preference order: healthy
// nodes first (rotated by rot so concurrent block fetches of one file
// spread load across its replicas), then down nodes as a last resort —
// a probe can be stale, and a "down" replica that answers still beats
// a failed scan.
func (r *Router) orderFor(name string, rot int) []*Node {
	placed := r.mem.Place(name)
	up := make([]*Node, 0, len(placed))
	down := make([]*Node, 0)
	for _, n := range placed {
		if n.Up() {
			up = append(up, n)
		} else {
			down = append(down, n)
		}
	}
	if len(up) > 1 && rot > 0 {
		k := rot % len(up)
		rotated := make([]*Node, 0, len(up))
		rotated = append(rotated, up[k:]...)
		rotated = append(rotated, up[:k]...)
		up = rotated
	}
	return append(up, down...)
}

// legResult is one replica fetch attempt's outcome.
type legResult struct {
	blk   *blockstore.BlockValues
	err   error
	node  *Node
	hedge bool
}

// FetchBlock fetches one decoded block, walking the file's replicas:
// the primary is asked first; if it has not answered within the hedge
// budget (the primary replica's observed p95 fetch latency, clamped) a
// hedge leg fires against the next replica and the first success wins,
// the loser cancelled. Failures — including block damage, which also
// enqueues a repair — fail over to the remaining replicas. The fetch
// fails only when every replica has failed.
func (r *Router) FetchBlock(ctx context.Context, name string, idx int) (*blockstore.BlockValues, error) {
	r.metrics.BlockFetches.Add(1)
	replicas := r.orderFor(name, idx)
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: no replicas for %s", name)
	}
	lctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser leg as soon as a winner returns

	// Buffered to the replica count: a cancelled loser's send never
	// blocks, so no goroutine outlives the fetch.
	results := make(chan legResult, len(replicas))
	next, inFlight := 0, 0
	launch := func(hedge bool) bool {
		if next >= len(replicas) {
			return false
		}
		n := replicas[next]
		next++
		inFlight++
		go r.fetchLeg(lctx, n, name, idx, hedge, results)
		return true
	}
	launch(false)

	var hedgeC <-chan time.Time
	if !r.cfg.DisableHedge && len(replicas) > 1 {
		t := time.NewTimer(r.hedgeBudget(replicas[0]))
		defer t.Stop()
		hedgeC = t.C
	}

	var errs []error
	for inFlight > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil // one hedge leg per fetch
			if launch(true) {
				r.metrics.Hedges.Add(1)
			}
		case res := <-results:
			inFlight--
			if res.err == nil {
				if res.hedge {
					r.metrics.HedgeWins.Add(1)
				}
				return res.blk, nil
			}
			if blockstore.IsBlockDamage(res.err) {
				r.metrics.DamageDetected.Add(1)
				r.enqueueRepair(name, res.node)
			}
			errs = append(errs, fmt.Errorf("%s: %w", res.node.Name, res.err))
			if launch(false) {
				r.metrics.Failovers.Add(1)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("cluster: block %d of %s: all %d replicas failed: %w",
		idx, name, len(replicas), errors.Join(errs...))
}

// fetchLeg is one replica attempt, run in its own goroutine. Latency is
// observed per node (feeding the hedge budget) and the attempt gets its
// own replica.fetch child span.
func (r *Router) fetchLeg(ctx context.Context, n *Node, name string, idx int, hedge bool, out chan<- legResult) {
	fctx, span := obs.StartChild(ctx, "replica.fetch")
	span.SetAttr("node", n.Name)
	span.SetAttr("file", name)
	span.SetAttrInt("block", int64(idx))
	if hedge {
		span.SetAttr("hedge", "true")
	}
	r.metrics.ReplicaRequests.Add(n.Name, 1)
	start := time.Now()
	blk, err := n.Client.Block(fctx, name, idx)
	if err != nil {
		r.metrics.ReplicaErrors.Add(n.Name, 1)
		span.SetError(err)
	} else {
		r.metrics.ReplicaLatency.At(n.Name).Observe(time.Since(start))
	}
	span.End()
	out <- legResult{blk: blk, err: err, node: n, hedge: hedge}
}

// hedgeBudget derives the hedge deadline from the primary replica's
// latency history: its p95 clamped to [HedgeMin, HedgeMax], or
// HedgeInitial until enough samples exist.
func (r *Router) hedgeBudget(primary *Node) time.Duration {
	h := r.metrics.ReplicaLatency.At(primary.Name)
	if h.Count() < int64(r.cfg.HedgeMinSamples) {
		return r.cfg.HedgeInitial
	}
	b := h.Quantile(0.95)
	if b < r.cfg.HedgeMin {
		b = r.cfg.HedgeMin
	}
	if b > r.cfg.HedgeMax {
		b = r.cfg.HedgeMax
	}
	return b
}

// failover runs op against a file's replicas in preference order until
// one succeeds. Block damage reported by a replica enqueues a repair
// before failing over.
func failover[T any](r *Router, ctx context.Context, name, what string, op func(*Node) (T, error)) (T, error) {
	var zero T
	replicas := r.orderFor(name, 0)
	if len(replicas) == 0 {
		return zero, fmt.Errorf("cluster: no replicas for %s", name)
	}
	var errs []error
	for i, n := range replicas {
		if i > 0 {
			r.metrics.Failovers.Add(1)
		}
		if ctx.Err() != nil {
			return zero, ctx.Err()
		}
		out, err := op(n)
		if err == nil {
			return out, nil
		}
		if blockstore.IsBlockDamage(err) {
			r.metrics.DamageDetected.Add(1)
			r.enqueueRepair(name, n)
		}
		errs = append(errs, fmt.Errorf("%s: %w", n.Name, err))
	}
	return zero, fmt.Errorf("cluster: %s %s: all %d replicas failed: %w",
		what, name, len(replicas), errors.Join(errs...))
}

// FileMeta fetches one file's metadata from any of its replicas.
func (r *Router) FileMeta(ctx context.Context, name string) (*blockstore.FileMeta, error) {
	return failover(r, ctx, name, "meta", func(n *Node) (*blockstore.FileMeta, error) {
		return n.Client.FileMeta(ctx, name)
	})
}

// Raw fetches a file's raw compressed bytes from any of its replicas.
func (r *Router) Raw(ctx context.Context, name string) ([]byte, error) {
	return failover(r, ctx, name, "raw", func(n *Node) ([]byte, error) {
		return n.Client.Raw(ctx, name)
	})
}

// CountEq pushes an equality count down to any replica of one file.
func (r *Router) CountEq(ctx context.Context, name, value string) (*blockstore.CountEqResult, error) {
	return failover(r, ctx, name, "count-eq", func(n *Node) (*blockstore.CountEqResult, error) {
		return n.Client.CountEq(ctx, name, value)
	})
}

// Invalidate fans a cache invalidation out to every replica of a file
// (writers publish through this after replacing a file on all replicas).
// It fails if any replica the prober considers up rejects it.
func (r *Router) Invalidate(ctx context.Context, name string) (*blockstore.InvalidateResult, error) {
	var last *blockstore.InvalidateResult
	var errs []error
	for _, n := range r.mem.Place(name) {
		res, err := n.Client.Invalidate(ctx, name)
		if err != nil {
			if !n.Up() {
				continue // a down replica misses the invalidation; repair re-converges it
			}
			errs = append(errs, fmt.Errorf("%s: %w", n.Name, err))
			continue
		}
		last = res
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("cluster: invalidate %s: %w", name, errors.Join(errs...))
	}
	if last == nil {
		return nil, fmt.Errorf("cluster: invalidate %s: no replica reachable", name)
	}
	return last, nil
}

// Files returns the union of every reachable node's file listing,
// sorted by name. It fails only when no node answers.
func (r *Router) Files(ctx context.Context) ([]blockstore.FileMeta, error) {
	nodes := r.mem.Nodes()
	type nodeFiles struct {
		files []blockstore.FileMeta
		err   error
	}
	results := make([]nodeFiles, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			files, err := n.Client.Files(ctx)
			results[i] = nodeFiles{files: files, err: err}
		}(i, n)
	}
	wg.Wait()
	merged := make(map[string]blockstore.FileMeta)
	ok := false
	var errs []error
	for i, res := range results {
		if res.err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", nodes[i].Name, res.err))
			continue
		}
		ok = true
		for _, f := range res.files {
			merged[f.Name] = f
		}
	}
	if !ok {
		return nil, fmt.Errorf("cluster: files: no node answered: %w", errors.Join(errs...))
	}
	out := make([]blockstore.FileMeta, 0, len(merged))
	for _, f := range merged {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// FileCount is one file's contribution to a scatter-gather count.
type FileCount struct {
	File  string `json:"file"`
	Count int    `json:"count"`
	Rows  int    `json:"rows"`
	// Err carries the per-file failure when the count could not be
	// answered by any replica (the scatter is then partial).
	Err string `json:"error,omitempty"`
}

// ScatterCount is the merged result of pushing one equality predicate
// down to every file in the cluster.
type ScatterCount struct {
	Value   string      `json:"value"`
	Files   int         `json:"files"`
	Count   int         `json:"count"`
	Rows    int         `json:"rows"`
	Partial bool        `json:"partial,omitempty"`
	PerFile []FileCount `json:"per_file"`
}

// CountEqScatter pushes one equality predicate down to every column
// file the value parses as a probe for (scatter) and merges the
// per-file counts (gather). Columns whose type cannot represent the
// value are skipped — an int probe asks the integer columns, a string
// probe the string columns — mirroring what a caller iterating
// /v1/count-eq per matching file would do. Per-file failures mark the
// result partial instead of failing the whole scatter.
func (r *Router) CountEqScatter(ctx context.Context, value string) (*ScatterCount, error) {
	r.metrics.ScatterQueries.Add(1)
	all, err := r.Files(ctx)
	if err != nil {
		return nil, err
	}
	files := make([]blockstore.FileMeta, 0, len(all))
	for _, f := range all {
		if f.Kind == "column" && probeParses(f.Type, value) {
			files = append(files, f)
		}
	}
	out := &ScatterCount{Value: value, Files: len(files), PerFile: make([]FileCount, len(files))}
	sem := make(chan struct{}, r.cfg.ScatterWorkers)
	var wg sync.WaitGroup
	for i, f := range files {
		wg.Add(1)
		go func(i int, f blockstore.FileMeta) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fc := FileCount{File: f.Name, Rows: f.Rows}
			res, err := r.CountEq(ctx, f.Name, value)
			if err != nil {
				fc.Err = err.Error()
			} else {
				fc.Count = res.Count
			}
			out.PerFile[i] = fc
		}(i, f)
	}
	wg.Wait()
	for _, fc := range out.PerFile {
		out.Count += fc.Count
		out.Rows += fc.Rows
		if fc.Err != "" {
			out.Partial = true
		}
	}
	return out, nil
}

// probeParses reports whether value is a valid probe for a column of
// the given wire type name (the server rejects mismatched probes with
// 400, so the scatter filters them out up front).
func probeParses(typ, value string) bool {
	switch typ {
	case "integer":
		_, err := strconv.ParseInt(value, 10, 32)
		return err == nil
	case "bigint":
		_, err := strconv.ParseInt(value, 10, 64)
		return err == nil
	case "double":
		_, err := strconv.ParseFloat(value, 64)
		return err == nil
	case "string":
		return true
	}
	return false
}
