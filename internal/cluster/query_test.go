package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"btrblocks"
	"btrblocks/internal/blockstore"
	"btrblocks/internal/query"
	"btrblocks/metadata"
)

// addSidecars appends a BTRM sidecar for every corpus column, so nodes
// hosting both files prune with it.
func addSidecars(t *testing.T, contents map[string][]byte, cols map[string]btrblocks.Column) {
	t.Helper()
	opt := &btrblocks.Options{BlockSize: 1000}
	for name, col := range cols {
		m := metadata.Build(col, opt)
		contents[name+blockstore.MetaSuffix] = m.AppendTo(nil)
	}
}

// oracleSource builds the single-node view of the whole corpus the
// routed result must match bit for bit.
func oracleSource(t *testing.T, contents map[string][]byte) query.MemSource {
	t.Helper()
	src := query.MemSource{}
	for name, data := range contents {
		if strings.HasSuffix(name, blockstore.MetaSuffix) {
			continue
		}
		ix, err := btrblocks.ParseColumnIndex(data)
		if err != nil {
			t.Fatal(err)
		}
		c := &query.Col{Index: ix, Data: data}
		if mb, ok := contents[name+blockstore.MetaSuffix]; ok {
			m, _, err := metadata.FromBytes(mb)
			if err != nil {
				t.Fatal(err)
			}
			c.Meta = &m
		}
		src[name] = c
	}
	return src
}

func scatterPlan() *query.Plan {
	return &query.Plan{
		Filter: &query.Node{Op: "and", Children: []*query.Node{
			{Op: "range", Column: "t/i.btr", Lo: json.RawMessage("20"), Hi: json.RawMessage("60")},
			{Op: "or", Children: []*query.Node{
				{Op: "eq", Column: "t/s.btr", Value: json.RawMessage(`"city-7"`)},
				{Op: "in", Column: "t/s.btr", Values: []json.RawMessage{
					json.RawMessage(`"city-3"`), json.RawMessage(`"city-11"`)}},
			}},
		}},
		Aggregates: []query.AggSpec{
			{Op: "count", Column: "t/l.btr"},
			{Op: "sum", Column: "t/d.btr"},
			{Op: "min", Column: "t/i.btr"},
			{Op: "max", Column: "t/s.btr"},
		},
		Rows:   true,
		Return: query.ReturnBitmap,
	}
}

// checkSameResult asserts the routed answer matches the single-node
// oracle on every output field.
func checkSameResult(t *testing.T, got, want *query.Result) {
	t.Helper()
	if got.Rows != want.Rows || got.Matched != want.Matched {
		t.Fatalf("rows/matched: got %d/%d want %d/%d", got.Rows, got.Matched, want.Rows, want.Matched)
	}
	if len(got.RowIDs) != len(want.RowIDs) {
		t.Fatalf("row ids: got %d want %d", len(got.RowIDs), len(want.RowIDs))
	}
	for i := range got.RowIDs {
		if got.RowIDs[i] != want.RowIDs[i] {
			t.Fatalf("row id %d: got %d want %d", i, got.RowIDs[i], want.RowIDs[i])
		}
	}
	if !bytes.Equal(got.Bitmap, want.Bitmap) {
		t.Fatal("bitmaps differ")
	}
	if len(got.Aggregates) != len(want.Aggregates) {
		t.Fatalf("aggregates: got %d want %d", len(got.Aggregates), len(want.Aggregates))
	}
	for i, a := range got.Aggregates {
		if a != want.Aggregates[i] {
			t.Fatalf("aggregate %d: got %+v want %+v", i, a, want.Aggregates[i])
		}
	}
}

// TestQueryScatterGather routes a multi-column and/or plan with
// aggregates across a 3-node cluster and checks the gathered result is
// bit-identical to one executor over the whole corpus.
func TestQueryScatterGather(t *testing.T) {
	contents, cols := testCorpus(t)
	addSidecars(t, contents, cols)
	names := []string{"n1", "n2", "n3"}
	_, perNode := placeCorpus(t, contents, names, 2)
	_, specs := startNodes(t, names, perNode, blockstore.Config{})
	r := newTestRouter(t, specs, Config{Replicas: 2})

	p := scatterPlan()
	got, err := r.Query(t.Context(), p)
	if err != nil {
		t.Fatal(err)
	}
	e := &query.Executor{Source: oracleSource(t, contents)}
	want, err := e.Run(t.Context(), p)
	if err != nil {
		t.Fatal(err)
	}
	checkSameResult(t, got, want)
	if got.Matched == 0 {
		t.Fatal("test plan matched nothing; corpus or plan is broken")
	}
	// 3 filter leaves + 4 aggregate columns = 7 scattered legs.
	if n := r.Metrics().PlanQueryLegs.Load(); n != 7 {
		t.Fatalf("scattered %d legs, want 7", n)
	}
	if r.Metrics().PlanQueries.Load() != 1 {
		t.Fatalf("PlanQueries = %d, want 1", r.Metrics().PlanQueries.Load())
	}
}

// TestQueryHTTPFailover serves the router over HTTP with one replica of
// one column damaged: the routed query must fail over to the good
// replica and still match the oracle, and the wire surface must keep
// single-node error semantics (bad plan → 400, unknown column → 404).
func TestQueryHTTPFailover(t *testing.T) {
	contents, cols := testCorpus(t)
	addSidecars(t, contents, cols)
	names := []string{"n1", "n2", "n3"}
	ring, perNode := placeCorpus(t, contents, names, 2)
	victim := "t/i.btr"
	damagedNode := ring.Place(victim, 2)[0]
	perNode[damagedNode][victim] = flipBlockByte(t, contents[victim], 1)
	_, specs := startNodes(t, names, perNode, blockstore.Config{})
	r := newTestRouter(t, specs, Config{Replicas: 2})

	srv := httptest.NewServer(NewServer(r, nil))
	t.Cleanup(srv.Close)
	cl := blockstore.NewClient(srv.URL)

	p := scatterPlan()
	got, err := cl.Query(t.Context(), p)
	if err != nil {
		t.Fatal(err)
	}
	e := &query.Executor{Source: oracleSource(t, contents)}
	want, err := e.Run(t.Context(), p)
	if err != nil {
		t.Fatal(err)
	}
	checkSameResult(t, got, want)
	if r.Metrics().DamageDetected.Load() == 0 {
		t.Fatal("damaged replica went unnoticed")
	}

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"bad-plan", `{"filter":{"op":"like"}}`, http.StatusBadRequest},
		{"unknown-column", `{"filter":{"op":"notnull","column":"t/none.btr"}}`, http.StatusNotFound},
	} {
		resp, err := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}
