package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("ds-%d/col-%d.btr", i%37, i)
	}
	return keys
}

// Placement must be a pure function of the name set — independent of
// the order nodes were listed in, and stable across ring rebuilds.
func TestRingPlacementDeterministic(t *testing.T) {
	a, err := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n4", "n2", "n1", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range ringKeys(500) {
		pa := a.PlaceNames(key, 2)
		pb := b.PlaceNames(key, 2)
		if len(pa) != len(pb) {
			t.Fatalf("%s: %v vs %v", key, pa, pb)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%s: placement depends on input order: %v vs %v", key, pa, pb)
			}
		}
	}
}

// Place must return R distinct nodes, capped at the cluster size.
func TestRingDistinctReplicas(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range ringKeys(300) {
		for _, n := range []int{1, 2, 3, 7} {
			placed := r.Place(key, n)
			want := n
			if want > 3 {
				want = 3
			}
			if len(placed) != want {
				t.Fatalf("%s: Place(%d) returned %d nodes", key, n, len(placed))
			}
			seen := make(map[int]bool)
			for _, ni := range placed {
				if seen[ni] {
					t.Fatalf("%s: duplicate replica %d in %v", key, ni, placed)
				}
				seen[ni] = true
			}
		}
	}
}

// With virtual nodes, the per-node share of primaries stays within a
// reasonable band of uniform.
func TestRingDistribution(t *testing.T) {
	names := []string{"n1", "n2", "n3", "n4", "n5"}
	r, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	keys := ringKeys(5000)
	for _, key := range keys {
		counts[r.Place(key, 1)[0]]++
	}
	mean := len(keys) / len(names)
	for ni, c := range counts {
		if c < mean/3 || c > mean*3 {
			t.Errorf("node %d owns %d of %d keys (mean %d) — distribution too skewed", ni, c, len(keys), mean)
		}
	}
	if len(counts) != len(names) {
		t.Fatalf("only %d of %d nodes own any keys", len(counts), len(names))
	}
}

// The consistent-hashing contract: removing one node must not change
// the primary of any key whose primary was a different node.
func TestRingRemovalStability(t *testing.T) {
	before, err := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	keys := ringKeys(2000)
	for _, key := range keys {
		was := before.PlaceNames(key, 1)[0]
		now := after.PlaceNames(key, 1)[0]
		if was == "n4" {
			moved++
			continue
		}
		if now != was {
			t.Fatalf("%s: primary moved %s -> %s though n4 was not its primary", key, was, now)
		}
	}
	if moved == 0 || moved > len(keys)/2 {
		t.Fatalf("%d of %d keys had n4 as primary — expected roughly a quarter", moved, len(keys))
	}
}

func TestParseNodeSpec(t *testing.T) {
	cases := []struct {
		spec, name, endpoint string
		wantErr              bool
	}{
		{spec: "n1=http://h1:8080", name: "n1", endpoint: "http://h1:8080"},
		{spec: " n2=http://h2:9090/ ", name: "n2", endpoint: "http://h2:9090"},
		{spec: "http://h3:7070", name: "h3:7070", endpoint: "http://h3:7070"},
		{spec: "", wantErr: true},
		{spec: "n4=", wantErr: true},
		{spec: "n5=not-a-url", wantErr: true},
	}
	for _, c := range cases {
		name, endpoint, err := ParseNodeSpec(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("%q: expected error, got %q %q", c.spec, name, endpoint)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if name != c.name || endpoint != c.endpoint {
			t.Errorf("%q: got (%q, %q), want (%q, %q)", c.spec, name, endpoint, c.name, c.endpoint)
		}
	}
}

func TestNewRingRejectsBadNames(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty name set accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate name accepted")
	}
}
