package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadMixedWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	type item struct {
		v uint64
		w uint
	}
	var items []item
	w := NewWriter(nil)
	for i := 0; i < 10000; i++ {
		width := uint(1 + rng.Intn(64))
		v := rng.Uint64()
		if width < 64 {
			v &= (1 << width) - 1
		}
		items = append(items, item{v, width})
		w.WriteBits(v, width)
	}
	buf := w.Bytes()
	r := NewReader(buf)
	for i, it := range items {
		got, err := r.ReadBits(it.w)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got != it.v {
			t.Fatalf("item %d (width %d): got %#x want %#x", i, it.w, got, it.v)
		}
	}
}

func TestSingleBits(t *testing.T) {
	w := NewWriter(nil)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Bits() != uint64(len(pattern)) {
		t.Fatalf("Bits() = %d", w.Bits())
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestShortBuffer(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadBits(16); err != ErrShortBuffer {
		t.Fatalf("expected ErrShortBuffer, got %v", err)
	}
	// 64-bit read from empty
	r = NewReader(nil)
	if _, err := r.ReadBits(64); err != ErrShortBuffer {
		t.Fatalf("expected ErrShortBuffer, got %v", err)
	}
}

func TestWideReadAfterPartialConsume(t *testing.T) {
	// Regression shape: leave the accumulator nearly full, then read 64
	// bits — must not drop high bits.
	w := NewWriter(nil)
	w.WriteBits(1, 1)
	w.WriteBits(0xDEADBEEFCAFEF00D, 64)
	r := NewReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("first bit wrong")
	}
	got, err := r.ReadBits(64)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("got %#x", got)
	}
}

func TestZeroWidthWrite(t *testing.T) {
	w := NewWriter(nil)
	w.WriteBits(123, 0)
	w.WriteBits(5, 3)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(0); v != 0 {
		t.Fatal("zero-width read must be 0")
	}
	if v, _ := r.ReadBits(3); v != 5 {
		t.Fatal("payload after zero-width write wrong")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		w := NewWriter(nil)
		want := make([]uint64, n)
		ws := make([]uint, n)
		for i := 0; i < n; i++ {
			width := uint(widths[i]%64) + 1
			v := vals[i]
			if width < 64 {
				v &= (1 << width) - 1
			}
			want[i], ws[i] = v, width
			w.WriteBits(v, width)
		}
		r := NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			got, err := r.ReadBits(ws[i])
			if err != nil || got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
