// Package bitio provides MSB-first bit stream readers and writers used by
// the bit-granular codecs (Gorilla, Chimp, FPC and friends).
package bitio

import "errors"

// ErrShortBuffer is returned when a Reader runs out of input bits.
var ErrShortBuffer = errors.New("bitio: short buffer")

// Writer accumulates bits MSB-first into a byte slice.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned in the low `n` bits
	n    uint   // number of pending bits in cur (< 8)
	bits uint64 // total bits written
}

// NewWriter returns a Writer that appends to buf.
func NewWriter(buf []byte) *Writer {
	return &Writer{buf: buf}
}

// WriteBit writes a single bit (any nonzero b means 1).
func (w *Writer) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

// WriteBits writes the low `width` bits of v, most significant first.
// width must be <= 64.
func (w *Writer) WriteBits(v uint64, width uint) {
	if width == 0 {
		return
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	w.bits += uint64(width)
	for width > 0 {
		free := 8 - w.n
		if width <= free {
			w.cur = (w.cur << width) | v
			w.n += width
			if w.n == 8 {
				w.buf = append(w.buf, byte(w.cur))
				w.cur, w.n = 0, 0
			}
			return
		}
		// take the top `free` bits of v
		take := v >> (width - free)
		w.cur = (w.cur << free) | take
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.n = 0, 0
		width -= free
		if width < 64 {
			v &= (1 << width) - 1
		}
	}
}

// Bits reports the total number of bits written so far.
func (w *Writer) Bits() uint64 { return w.bits }

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
// The Writer must not be used after calling Bytes.
func (w *Writer) Bytes() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.n)))
		w.cur, w.n = 0, 0
	}
	return w.buf
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int // next byte index
	cur uint64
	n   uint // valid bits in cur (low bits)
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// ReadBits reads `width` bits (<= 64) and returns them right-aligned.
func (r *Reader) ReadBits(width uint) (uint64, error) {
	if width > 32 {
		// Split wide reads so the refill loop below never shifts valid
		// bits out of the 64-bit accumulator.
		hi, err := r.ReadBits(width - 32)
		if err != nil {
			return 0, err
		}
		lo, err := r.ReadBits(32)
		if err != nil {
			return 0, err
		}
		return hi<<32 | lo, nil
	}
	for r.n < width {
		if r.pos >= len(r.buf) {
			return 0, ErrShortBuffer
		}
		r.cur = (r.cur << 8) | uint64(r.buf[r.pos])
		r.pos++
		r.n += 8
	}
	return r.readAvail(width)
}

// readAvail extracts width bits from cur; caller guarantees r.n >= width.
func (r *Reader) readAvail(width uint) (uint64, error) {
	if width == 0 {
		return 0, nil
	}
	v := (r.cur >> (r.n - width))
	if width < 64 {
		v &= (1 << width) - 1
	}
	r.n -= width
	return v, nil
}
